#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace hdcs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, GammaMeanAndVariance) {
  // Gamma(shape k, scale s): mean k*s, variance k*s^2.
  Rng rng(13);
  const int n = 50000;
  double sum = 0, sumsq = 0;
  const double k = 0.5, s = 2.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.gamma(k, s);
    EXPECT_GT(x, 0.0);
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, k * s, 0.05);
  EXPECT_NEAR(var, k * s * s, 0.15);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[rng.categorical(w)] += 1;
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(23);
  Rng child = parent.fork();
  // Child stream differs from the parent's continuation.
  EXPECT_NE(child.next_u64(), parent.next_u64());
}

}  // namespace
}  // namespace hdcs
