#include <gtest/gtest.h>

#include "util/config.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace hdcs {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t x\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("xyz", ','), (std::vector<std::string>{"xyz"}));
}

TEST(Strings, SplitWs) {
  EXPECT_EQ(split_ws("  a\t b  c "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_upper("aBc"), "ABC");
  EXPECT_TRUE(iequals("Hello", "hELLO"));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
}

TEST(Strings, ParseNumbers) {
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64(" -7 "), -7);
  EXPECT_THROW(parse_i64("4x"), InputError);
  EXPECT_THROW(parse_i64(""), InputError);
  EXPECT_DOUBLE_EQ(parse_f64("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_f64("1e3"), 1000.0);
  EXPECT_THROW(parse_f64("abc"), InputError);
}

TEST(Strings, ParseBool) {
  EXPECT_TRUE(parse_bool("true"));
  EXPECT_TRUE(parse_bool("Yes"));
  EXPECT_TRUE(parse_bool("1"));
  EXPECT_FALSE(parse_bool("off"));
  EXPECT_FALSE(parse_bool("FALSE"));
  EXPECT_THROW(parse_bool("maybe"), InputError);
}

TEST(Config, ParsesKeyValueLines) {
  auto cfg = Config::parse(
      "# comment\n"
      "database = /tmp/db.fasta\n"
      "  threads =  8 \n"
      "; another comment\n"
      "\n"
      "verbose = true\n"
      "timeout = 2.5\n");
  EXPECT_EQ(cfg.get_str("database"), "/tmp/db.fasta");
  EXPECT_EQ(cfg.get_i64("threads"), 8);
  EXPECT_TRUE(cfg.get_bool("verbose"));
  EXPECT_DOUBLE_EQ(cfg.get_f64("timeout"), 2.5);
}

TEST(Config, KeysAreCaseInsensitive) {
  auto cfg = Config::parse("Algorithm = Smith-Waterman\n");
  EXPECT_TRUE(cfg.has("ALGORITHM"));
  EXPECT_EQ(cfg.get_str("algorithm"), "Smith-Waterman");
}

TEST(Config, LaterKeysOverride) {
  auto cfg = Config::parse("k = 1\nk = 2\n");
  EXPECT_EQ(cfg.get_i64("k"), 2);
}

TEST(Config, MissingKeyThrowsWithName) {
  auto cfg = Config::parse("a = 1\n");
  try {
    (void)cfg.get_str("nope");
    FAIL() << "expected InputError";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
  }
}

TEST(Config, DefaultedGetters) {
  auto cfg = Config::parse("a = 1\n");
  EXPECT_EQ(cfg.get_i64("missing", 99), 99);
  EXPECT_EQ(cfg.get_str("missing", "dflt"), "dflt");
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_DOUBLE_EQ(cfg.get_f64("missing", 0.5), 0.5);
  EXPECT_EQ(cfg.get_i64("a", 99), 1);
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::parse("this is not a kv line\n"), InputError);
  EXPECT_THROW(Config::parse("= value\n"), InputError);
}

TEST(Config, ValueMayContainEquals) {
  auto cfg = Config::parse("expr = a=b=c\n");
  EXPECT_EQ(cfg.get_str("expr"), "a=b=c");
}

TEST(Config, RoundTripsThroughToString) {
  auto cfg = Config::parse("b = 2\na = 1\n");
  auto cfg2 = Config::parse(cfg.to_string());
  EXPECT_EQ(cfg2.get_i64("a"), 1);
  EXPECT_EQ(cfg2.get_i64("b"), 2);
  EXPECT_EQ(cfg2.keys(), (std::vector<std::string>{"a", "b"}));
}

TEST(Config, TypedGetterNamesKeyOnBadValue) {
  auto cfg = Config::parse("threads = lots\n");
  try {
    (void)cfg.get_i64("threads");
    FAIL() << "expected InputError";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("threads"), std::string::npos);
  }
}

}  // namespace
}  // namespace hdcs
