#include "dist/scheduler_core.hpp"

#include <gtest/gtest.h>

#include "tests/toy_problem.hpp"
#include "util/error.hpp"

namespace hdcs::dist {
namespace {

using test::ToySumAlgorithm;
using test::ToySumDataManager;

SchedulerConfig small_config() {
  SchedulerConfig cfg;
  cfg.lease_timeout = 10.0;
  cfg.bounds.min_ops = 1;
  cfg.bounds.max_ops = 1e9;
  return cfg;
}

/// Run a unit through the real algorithm and hand the result back.
ResultUnit execute(const WorkUnit& unit, std::span<const std::byte> problem_data) {
  ToySumAlgorithm algo;
  algo.initialize(problem_data);
  ResultUnit r;
  r.problem_id = unit.problem_id;
  r.unit_id = unit.unit_id;
  r.stage = unit.stage;
  r.payload = algo.process(unit);
  return r;
}

TEST(SchedulerCore, RejectsNullPolicyAndProblem) {
  EXPECT_THROW(SchedulerCore(small_config(), nullptr), InputError);
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(100));
  EXPECT_THROW(core.submit_problem(nullptr), InputError);
}

TEST(SchedulerCore, SingleClientRunsProblemToCompletion) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(100));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto cid = core.client_joined("c1", 1e6, 0.0);

  double t = 0;
  while (!core.problem_complete(pid)) {
    auto unit = core.request_work(cid, t);
    ASSERT_TRUE(unit.has_value()) << "scheduler stalled";
    EXPECT_EQ(unit->problem_id, pid);
    core.submit_result(cid, execute(*unit, data), t + 1);
    t += 1;
  }
  EXPECT_EQ(test::read_u64_result(core.final_result(pid)), dm->expected());
  EXPECT_EQ(core.stats().units_issued, 10u);
  EXPECT_EQ(core.stats().results_accepted, 10u);
  EXPECT_EQ(core.stats().units_reissued, 0u);
}

TEST(SchedulerCore, UnitsCarryUniqueIncreasingIds) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(100));
  auto dm = std::make_shared<ToySumDataManager>(500);
  core.submit_problem(dm);
  auto cid = core.client_joined("c1", 1e6, 0.0);
  UnitId prev = 0;
  for (int i = 0; i < 5; ++i) {
    auto unit = core.request_work(cid, 0.0);
    ASSERT_TRUE(unit);
    EXPECT_GT(unit->unit_id, prev);
    prev = unit->unit_id;
  }
}

TEST(SchedulerCore, DuplicateResultDropped) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(1000));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto cid = core.client_joined("c1", 1e6, 0.0);

  auto unit = core.request_work(cid, 0.0);
  ASSERT_TRUE(unit);
  auto result = execute(*unit, data);
  EXPECT_TRUE(core.submit_result(cid, result, 1.0));
  EXPECT_FALSE(core.submit_result(cid, result, 2.0));  // duplicate
  EXPECT_EQ(core.stats().duplicate_results_dropped, 1u);
  EXPECT_TRUE(core.problem_complete(pid));
}

TEST(SchedulerCore, UnknownResultDroppedAsStale) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(1000));
  core.submit_problem(std::make_shared<ToySumDataManager>(1000));
  auto cid = core.client_joined("c1", 1e6, 0.0);
  ResultUnit bogus;
  bogus.problem_id = 999;
  bogus.unit_id = 1;
  EXPECT_FALSE(core.submit_result(cid, bogus, 0.0));
  EXPECT_EQ(core.stats().stale_results_dropped, 1u);
}

TEST(SchedulerCore, ExpiredLeaseIsReissued) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(1000));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto slow = core.client_joined("slow", 1e6, 0.0);
  auto fast = core.client_joined("fast", 1e6, 0.0);

  auto unit = core.request_work(slow, 0.0);
  ASSERT_TRUE(unit);
  // Lease timeout is 10s; at t=20 the unit expires.
  core.tick(20.0);
  auto reissued = core.request_work(fast, 21.0);
  ASSERT_TRUE(reissued);
  EXPECT_EQ(reissued->unit_id, unit->unit_id);
  EXPECT_EQ(core.stats().units_reissued, 1u);

  EXPECT_TRUE(core.submit_result(fast, execute(*reissued, data), 22.0));
  EXPECT_TRUE(core.problem_complete(pid));
  // The slow client's late duplicate is dropped.
  EXPECT_FALSE(core.submit_result(slow, execute(*unit, data), 23.0));
}

TEST(SchedulerCore, LateResultFromOriginalOwnerAcceptedBeforeReissue) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(1000));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto c1 = core.client_joined("c1", 1e6, 0.0);

  auto unit = core.request_work(c1, 0.0);
  ASSERT_TRUE(unit);
  core.tick(20.0);  // expired, sitting in the requeue
  // Original owner submits late, before anyone picked up the reissue.
  EXPECT_TRUE(core.submit_result(c1, execute(*unit, data), 21.0));
  EXPECT_TRUE(core.problem_complete(pid));
  // The requeued copy must be gone: another client gets nothing.
  auto c2 = core.client_joined("c2", 1e6, 21.0);
  EXPECT_FALSE(core.request_work(c2, 22.0).has_value());
}

TEST(SchedulerCore, ClientLeftRequeuesItsUnits) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(500));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto leaver = core.client_joined("leaver", 1e6, 0.0);
  auto stayer = core.client_joined("stayer", 1e6, 0.0);

  auto u1 = core.request_work(leaver, 0.0);
  auto u2 = core.request_work(leaver, 0.0);
  ASSERT_TRUE(u1 && u2);
  core.client_left(leaver, 1.0);

  // The stayer gets both units back (reissues) and finishes the problem.
  while (!core.problem_complete(pid)) {
    auto unit = core.request_work(stayer, 2.0);
    ASSERT_TRUE(unit);
    core.submit_result(stayer, execute(*unit, data), 3.0);
  }
  EXPECT_EQ(test::read_u64_result(core.final_result(pid)), dm->expected());
  EXPECT_THROW(core.request_work(leaver, 4.0), InputError);
}

TEST(SchedulerCore, ClientTimeoutExpiresSilentClients) {
  auto cfg = small_config();
  cfg.client_timeout = 30.0;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(500));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  core.submit_problem(dm);
  auto quiet = core.client_joined("quiet", 1e6, 0.0);
  auto unit = core.request_work(quiet, 0.0);
  ASSERT_TRUE(unit);

  core.tick(31.0);
  EXPECT_EQ(core.stats().clients_expired, 1u);
  EXPECT_EQ(core.active_client_count(), 0);
  // Its unit is available again.
  auto c2 = core.client_joined("fresh", 1e6, 31.0);
  auto reissued = core.request_work(c2, 32.0);
  ASSERT_TRUE(reissued);
  EXPECT_EQ(reissued->unit_id, unit->unit_id);
}

TEST(SchedulerCore, HeartbeatKeepsClientAlive) {
  auto cfg = small_config();
  cfg.client_timeout = 30.0;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(500));
  core.submit_problem(std::make_shared<ToySumDataManager>(1000));
  auto cid = core.client_joined("c1", 1e6, 0.0);
  core.heartbeat(cid, 25.0);
  core.tick(40.0);  // 15s since heartbeat < 30s timeout
  EXPECT_EQ(core.active_client_count(), 1);
}

TEST(SchedulerCore, EwmaTracksObservedThroughput) {
  auto cfg = small_config();
  cfg.ewma_alpha = 0.5;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(1000));
  auto dm = std::make_shared<ToySumDataManager>(100000);
  core.submit_problem(dm);
  auto data = dm->problem_data();
  auto cid = core.client_joined("c1", 1e6, 0.0);

  // Complete a unit of 1000 ops in 2 seconds -> 500 ops/s.
  auto unit = core.request_work(cid, 0.0);
  ASSERT_TRUE(unit);
  core.submit_result(cid, execute(*unit, data), 2.0);
  const auto* stats = core.client_stats(cid);
  ASSERT_NE(stats, nullptr);
  EXPECT_NEAR(stats->ewma_ops_per_sec, 500.0, 1e-6);

  // Second unit in 1 second -> rate 1000; EWMA(0.5) -> 750.
  auto unit2 = core.request_work(cid, 2.0);
  ASSERT_TRUE(unit2);
  core.submit_result(cid, execute(*unit2, data), 3.0);
  EXPECT_NEAR(stats->ewma_ops_per_sec, 750.0, 1e-6);
}

TEST(SchedulerCore, StagedProblemBlocksAtBarrier) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(100));
  auto dm = std::make_shared<ToySumDataManager>(400, 0, /*stages=*/2);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto cid = core.client_joined("c1", 1e6, 0.0);

  // Drain stage 0 units (200 ops in 2 units of 100).
  auto u1 = core.request_work(cid, 0.0);
  auto u2 = core.request_work(cid, 0.0);
  ASSERT_TRUE(u1 && u2);
  EXPECT_EQ(u1->stage, 0u);
  EXPECT_EQ(u2->stage, 0u);
  // Barrier: no stage-1 unit until both results are in.
  EXPECT_FALSE(core.request_work(cid, 0.0).has_value());
  core.submit_result(cid, execute(*u1, data), 1.0);
  EXPECT_FALSE(core.request_work(cid, 1.0).has_value());
  core.submit_result(cid, execute(*u2, data), 2.0);

  auto u3 = core.request_work(cid, 3.0);
  ASSERT_TRUE(u3);
  EXPECT_EQ(u3->stage, 1u);
  core.submit_result(cid, execute(*u3, data), 3.5);

  while (!core.problem_complete(pid)) {
    auto unit = core.request_work(cid, 4.0);
    ASSERT_TRUE(unit);
    core.submit_result(cid, execute(*unit, data), 5.0);
  }
  EXPECT_EQ(test::read_u64_result(core.final_result(pid)), dm->expected());
}

TEST(SchedulerCore, MultiProblemInterleavingFillsBarrierIdleTime) {
  // Two staged problems: when one is stage-blocked the scheduler serves
  // the other — the mechanism behind running 6 DPRml instances (Fig. 2).
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(100));
  auto dm_a = std::make_shared<ToySumDataManager>(200, 0, /*stages=*/2);
  auto dm_b = std::make_shared<ToySumDataManager>(200, 7, /*stages=*/2);
  auto pa = core.submit_problem(dm_a);
  auto pb = core.submit_problem(dm_b);
  auto data_a = dm_a->problem_data();
  auto data_b = dm_b->problem_data();
  auto cid = core.client_joined("c1", 1e6, 0.0);

  // Take stage-0 unit from A (A has one more stage-0 unit).
  auto ua = core.request_work(cid, 0.0);
  ASSERT_TRUE(ua);
  // Round-robin: next requests drain both problems' stage 0 units, then
  // hit both barriers — but only after serving from B too.
  bool served_b = false;
  std::vector<WorkUnit> held;
  while (auto u = core.request_work(cid, 0.0)) {
    if (u->problem_id == pb) served_b = true;
    held.push_back(*u);
    if (held.size() > 10) break;
  }
  EXPECT_TRUE(served_b) << "scheduler never interleaved problem B";

  // Finish everything.
  auto finish = [&](const WorkUnit& u) {
    core.submit_result(cid, execute(u, u.problem_id == pa ? data_a : data_b), 1.0);
  };
  finish(*ua);
  for (const auto& u : held) finish(u);
  while (!core.all_complete()) {
    auto u = core.request_work(cid, 2.0);
    ASSERT_TRUE(u);
    finish(*u);
  }
  EXPECT_EQ(test::read_u64_result(core.final_result(pa)), dm_a->expected());
  EXPECT_EQ(test::read_u64_result(core.final_result(pb)), dm_b->expected());
}

TEST(SchedulerCore, RequeuedUnitsServedBeforeFreshOnes) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(100));
  auto dm = std::make_shared<ToySumDataManager>(10000);
  core.submit_problem(dm);
  auto c1 = core.client_joined("c1", 1e6, 0.0);
  auto u1 = core.request_work(c1, 0.0);
  ASSERT_TRUE(u1);
  core.client_left(c1, 1.0);  // u1 requeued

  auto c2 = core.client_joined("c2", 1e6, 1.0);
  auto u2 = core.request_work(c2, 2.0);
  ASSERT_TRUE(u2);
  EXPECT_EQ(u2->unit_id, u1->unit_id) << "requeued unit should be served first";
}

TEST(SchedulerCore, HedgingRescuesStragglerBeforeLeaseExpiry) {
  auto cfg = small_config();
  cfg.lease_timeout = 1000.0;  // expiry alone would take ages
  cfg.hedge_endgame = true;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(500));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto slow = core.client_joined("slow", 1e6, 0.0);
  auto fast = core.client_joined("fast", 1e6, 0.0);

  // The straggler takes a unit and never returns it.
  auto stuck = core.request_work(slow, 0.0);
  ASSERT_TRUE(stuck);
  // The fast client drains the rest...
  auto u2 = core.request_work(fast, 1.0);
  ASSERT_TRUE(u2);
  core.submit_result(fast, execute(*u2, data), 2.0);
  // ...and then, instead of idling until t=1000, is hedged the stuck unit.
  auto hedged = core.request_work(fast, 3.0);
  ASSERT_TRUE(hedged);
  EXPECT_EQ(hedged->unit_id, stuck->unit_id);
  EXPECT_EQ(core.stats().units_hedged, 1u);

  core.submit_result(fast, execute(*hedged, data), 4.0);
  EXPECT_TRUE(core.problem_complete(pid));
  EXPECT_EQ(test::read_u64_result(core.final_result(pid)), dm->expected());
  // The straggler's eventual result is a harmless duplicate.
  EXPECT_FALSE(core.submit_result(slow, execute(*stuck, data), 900.0));
}

TEST(SchedulerCore, HedgingBoundedByAttemptCap) {
  auto cfg = small_config();
  cfg.lease_timeout = 1000.0;
  cfg.hedge_endgame = true;
  cfg.max_hedges_per_unit = 1;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(1000));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  core.submit_problem(dm);
  auto c1 = core.client_joined("c1", 1e6, 0.0);
  auto c2 = core.client_joined("c2", 1e6, 0.0);
  auto c3 = core.client_joined("c3", 1e6, 0.0);

  auto original = core.request_work(c1, 0.0);  // attempt 1
  ASSERT_TRUE(original);
  auto hedge1 = core.request_work(c2, 1.0);  // attempt 2 (= 1 + cap)
  ASSERT_TRUE(hedge1);
  EXPECT_EQ(hedge1->unit_id, original->unit_id);
  // Cap reached: no further hedging, and no self-steal either.
  EXPECT_FALSE(core.request_work(c3, 2.0).has_value());
  EXPECT_FALSE(core.request_work(c2, 3.0).has_value());
}

TEST(SchedulerCore, HedgingOffByDefault) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(1000));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  core.submit_problem(dm);
  auto c1 = core.client_joined("c1", 1e6, 0.0);
  auto c2 = core.client_joined("c2", 1e6, 0.0);
  ASSERT_TRUE(core.request_work(c1, 0.0));
  EXPECT_FALSE(core.request_work(c2, 1.0).has_value());
  EXPECT_EQ(core.stats().units_hedged, 0u);
}

TEST(SchedulerCore, PoisonUnitQuarantinedAfterAttemptCap) {
  auto cfg = small_config();
  cfg.max_attempts_per_unit = 3;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(1000));
  auto dm = std::make_shared<ToySumDataManager>(1000);  // one unit total
  auto pid = core.submit_problem(dm);
  auto cid = core.client_joined("c1", 1e6, 0.0);

  // A unit that crashes every donor that touches it: take it, let the
  // lease expire, repeat. Each expiry burns one attempt.
  double t = 0;
  for (int attempt = 1; attempt <= 3; ++attempt) {
    auto unit = core.request_work(cid, t);
    ASSERT_TRUE(unit) << "attempt " << attempt;
    t += 20.0;       // lease_timeout is 10s
    core.tick(t);    // expires the lease
    // tick() also expires the silent client; re-join to keep requesting.
    if (core.active_client_count() == 0) {
      cid = core.client_joined("c1", 1e6, t);
    }
  }
  // Attempt cap burned: the unit is quarantined, not reissued.
  EXPECT_FALSE(core.request_work(cid, t + 1).has_value());
  EXPECT_EQ(core.stats().units_quarantined, 1u);
  EXPECT_FALSE(core.problem_complete(pid));
  // Quarantined units are parked, not in flight.
  EXPECT_EQ(core.in_flight_units(), 0u);
}

TEST(SchedulerCore, QuarantinedUnitRescuedByGenuineLateResult) {
  auto cfg = small_config();
  cfg.max_attempts_per_unit = 1;  // quarantine on the first failure
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(1000));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto cid = core.client_joined("c1", 1e6, 0.0);

  auto unit = core.request_work(cid, 0.0);
  ASSERT_TRUE(unit);
  core.tick(20.0);  // expired -> straight to quarantine (cap = 1)
  EXPECT_EQ(core.stats().units_quarantined, 1u);

  // The "dead" donor was merely slow: its genuine result still lands, and
  // the problem completes instead of being stuck in quarantine forever.
  EXPECT_TRUE(core.submit_result(cid, execute(*unit, data), 30.0));
  EXPECT_TRUE(core.problem_complete(pid));
  EXPECT_EQ(test::read_u64_result(core.final_result(pid)), dm->expected());
}

TEST(SchedulerCore, NoQuarantineWhenCapUnset) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(1000));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  core.submit_problem(dm);

  double t = 0;
  for (int i = 0; i < 6; ++i) {
    auto cid = core.client_joined("c", 1e6, t);
    ASSERT_TRUE(core.request_work(cid, t).has_value()) << "round " << i;
    t += 20.0;
    core.tick(t);
  }
  EXPECT_EQ(core.stats().units_quarantined, 0u);
  EXPECT_GE(core.stats().units_reissued, 5u);
}

TEST(SchedulerCore, ClientCrashAttemptsCountTowardQuarantine) {
  auto cfg = small_config();
  cfg.max_attempts_per_unit = 2;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(1000));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  core.submit_problem(dm);

  // Two donors take the unit and leave without finishing it: client_left
  // requeues count as failed attempts just like lease expiries.
  auto c1 = core.client_joined("c1", 1e6, 0.0);
  ASSERT_TRUE(core.request_work(c1, 0.0));
  core.client_left(c1, 1.0);
  auto c2 = core.client_joined("c2", 1e6, 2.0);
  ASSERT_TRUE(core.request_work(c2, 2.0));
  core.client_left(c2, 3.0);

  auto c3 = core.client_joined("c3", 1e6, 4.0);
  EXPECT_FALSE(core.request_work(c3, 4.0).has_value());
  EXPECT_EQ(core.stats().units_quarantined, 1u);
}

TEST(SchedulerCore, FinalResultBeforeCompletionThrows) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(100));
  auto pid = core.submit_problem(std::make_shared<ToySumDataManager>(1000));
  EXPECT_THROW(core.final_result(pid), Error);
  EXPECT_THROW(core.final_result(999), InputError);
}

TEST(SchedulerCore, GranularityBoundsClampPolicy) {
  auto cfg = small_config();
  cfg.bounds.min_ops = 50;
  cfg.bounds.max_ops = 120;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(1e9));
  auto dm = std::make_shared<ToySumDataManager>(10000);
  core.submit_problem(dm);
  auto cid = core.client_joined("c1", 1e6, 0.0);
  auto unit = core.request_work(cid, 0.0);
  ASSERT_TRUE(unit);
  EXPECT_LE(unit->cost_ops, 120.0);
  EXPECT_GE(unit->cost_ops, 1.0);
}

TEST(SchedulerCore, PerClientOutstandingCapLimitsInFlight) {
  auto cfg = small_config();
  cfg.max_outstanding_per_client = 2;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(100));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto cid = core.client_joined("greedy", 1e6, 0.0);

  // The cap bites on the third concurrent request...
  auto u1 = core.request_work(cid, 0.0);
  auto u2 = core.request_work(cid, 0.0);
  ASSERT_TRUE(u1);
  ASSERT_TRUE(u2);
  EXPECT_FALSE(core.request_work(cid, 0.0));
  EXPECT_EQ(core.stats().work_requests_unserved, 1u);
  // ...but never wedges anyone else or overall progress: a second client
  // still gets work, and completing a unit frees a slot.
  auto other = core.client_joined("other", 1e6, 0.0);
  EXPECT_TRUE(core.request_work(other, 0.0));
  EXPECT_TRUE(core.submit_result(cid, execute(*u1, data), 1.0));
  EXPECT_TRUE(core.request_work(cid, 1.0));

  // Cap 0 (the default) means unbounded.
  SchedulerCore open(small_config(), std::make_unique<FixedGranularity>(100));
  auto dm2 = std::make_shared<ToySumDataManager>(1000);
  open.submit_problem(dm2);
  auto cid2 = open.client_joined("c", 1e6, 0.0);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(open.request_work(cid2, 0.0));
  (void)pid;
}

}  // namespace
}  // namespace hdcs::dist
