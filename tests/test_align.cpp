#include "bio/align.hpp"

#include <gtest/gtest.h>

#include "bio/seqgen.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hdcs::bio {
namespace {

ScoringScheme simple_dna() { return ScoringScheme::dna(2, -1, 2, 1); }

TEST(NeedlemanWunsch, IdenticalSequencesScoreFullMatch) {
  auto s = simple_dna();
  EXPECT_EQ(nw_score("ACGTACGT", "ACGTACGT", s), 16);
}

TEST(NeedlemanWunsch, EmptyVsNonEmptyIsOneGap) {
  auto s = simple_dna();  // gap(L) = 2 + L*1
  EXPECT_EQ(nw_score("", "ACGT", s), -(2 + 4));
  EXPECT_EQ(nw_score("ACGT", "", s), -(2 + 4));
  EXPECT_EQ(nw_score("", "", s), 0);
}

TEST(NeedlemanWunsch, SingleMismatchVsGapChoice) {
  auto s = simple_dna();
  // ACGT vs AGGT: one mismatch (-1) + 3 matches (6) = 5.
  EXPECT_EQ(nw_score("ACGT", "AGGT", s), 5);
}

TEST(NeedlemanWunsch, AffineGapPreferredOverTwoOpens) {
  // A long gap must cost open + L*extend, not 2 opens.
  ScoringScheme s = ScoringScheme::dna(2, -5, 10, 1);
  // ACGTACGT vs ACGT + 4 deleted: 4 matches (8) - (10 + 4) = -6.
  EXPECT_EQ(nw_score("ACGTACGT", "ACGT", s), 8 - 14);
}

TEST(NeedlemanWunsch, SymmetricInArguments) {
  auto s = ScoringScheme::blosum62();
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    auto a = random_residues(rng, 20 + i, Alphabet::kProtein);
    auto b = random_residues(rng, 25, Alphabet::kProtein);
    EXPECT_EQ(nw_score(a, b, s), nw_score(b, a, s));
  }
}

TEST(NeedlemanWunsch, TracebackMatchesScore) {
  auto s = ScoringScheme::blosum62();
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    auto a = random_residues(rng, 30, Alphabet::kProtein);
    auto b = mutate(rng, a, Alphabet::kProtein, 0.2, 0.05);
    auto res = nw_align(a, b, s);
    EXPECT_EQ(res.score, nw_score(a, b, s));
    // Re-score the traceback alignment by hand.
    ASSERT_EQ(res.aligned_a.size(), res.aligned_b.size());
    std::int64_t rescore = 0;
    bool in_gap_a = false, in_gap_b = false;
    for (std::size_t k = 0; k < res.aligned_a.size(); ++k) {
      char ca = res.aligned_a[k], cb = res.aligned_b[k];
      if (ca == '-') {
        rescore -= in_gap_a ? s.gap_extend() : s.gap_open() + s.gap_extend();
        in_gap_a = true;
        in_gap_b = false;
      } else if (cb == '-') {
        rescore -= in_gap_b ? s.gap_extend() : s.gap_open() + s.gap_extend();
        in_gap_b = true;
        in_gap_a = false;
      } else {
        rescore += s.score(ca, cb);
        in_gap_a = in_gap_b = false;
      }
    }
    EXPECT_EQ(rescore, res.score) << "a=" << a << " b=" << b;
    // Stripping gaps recovers the inputs.
    std::string stripped_a, stripped_b;
    for (char c : res.aligned_a) {
      if (c != '-') stripped_a.push_back(c);
    }
    for (char c : res.aligned_b) {
      if (c != '-') stripped_b.push_back(c);
    }
    EXPECT_EQ(stripped_a, a);
    EXPECT_EQ(stripped_b, b);
  }
}

TEST(SmithWaterman, NonNegativeAndZeroForDisjointAlphabetUse) {
  ScoringScheme s = ScoringScheme::dna(2, -3, 5, 2);
  EXPECT_EQ(sw_score("AAAA", "TTTT", s), 0);
  EXPECT_GE(sw_score("ACGT", "ACGT", s), 0);
}

TEST(SmithWaterman, FindsEmbeddedMotif) {
  auto s = simple_dna();
  // The motif ACGTACGT is embedded in noise on both sides.
  std::string a = "TTTTTTACGTACGTTTTTTT";
  std::string b = "GGGGACGTACGTGGGG";
  EXPECT_EQ(sw_score(a, b, s), 16);  // 8 matches * 2
  auto res = sw_align(a, b, s);
  EXPECT_EQ(res.score, 16);
  EXPECT_EQ(res.aligned_a, "ACGTACGT");
  EXPECT_EQ(res.aligned_b, "ACGTACGT");
  EXPECT_EQ(a.substr(res.a_begin, res.a_end - res.a_begin), "ACGTACGT");
}

TEST(SmithWaterman, LocalAtLeastGlobal) {
  auto s = ScoringScheme::blosum62();
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    auto a = random_residues(rng, 40, Alphabet::kProtein);
    auto b = random_residues(rng, 40, Alphabet::kProtein);
    EXPECT_GE(sw_score(a, b, s), std::max<std::int64_t>(0, nw_score(a, b, s)));
  }
}

TEST(SemiGlobal, FreeEndsInSubjectOnly) {
  auto s = simple_dna();
  // Query fully matches inside a long subject: no end-gap penalty.
  std::string query = "ACGTACGT";
  std::string subject = "TTTTTTTTACGTACGTTTTTTTTT";
  EXPECT_EQ(semiglobal_score(query, subject, s), 16);
  // Global pays for the flanks.
  EXPECT_LT(nw_score(query, subject, s), 16);
}

TEST(SemiGlobal, EqualsGlobalForEqualLengthFullMatch) {
  auto s = simple_dna();
  EXPECT_EQ(semiglobal_score("ACGT", "ACGT", s), nw_score("ACGT", "ACGT", s));
}

TEST(SemiGlobal, AtLeastGlobalAlways) {
  auto s = ScoringScheme::blosum62();
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    auto a = random_residues(rng, 20, Alphabet::kProtein);
    auto b = random_residues(rng, 35, Alphabet::kProtein);
    EXPECT_GE(semiglobal_score(a, b, s), nw_score(a, b, s));
  }
}

TEST(Banded, WideBandMatchesFullNw) {
  auto s = ScoringScheme::blosum62();
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    auto a = random_residues(rng, 30, Alphabet::kProtein);
    auto b = mutate(rng, a, Alphabet::kProtein, 0.1, 0.03);
    std::size_t band = std::max(a.size(), b.size());  // full band
    EXPECT_EQ(banded_nw_score(a, b, s, band), nw_score(a, b, s));
  }
}

TEST(Banded, NarrowBandLowerBoundsFullScore) {
  auto s = simple_dna();
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    auto a = random_residues(rng, 50, Alphabet::kDna);
    auto b = mutate(rng, a, Alphabet::kDna, 0.1, 0.02);
    std::size_t diff = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    auto banded = banded_nw_score(a, b, s, diff + 3);
    EXPECT_LE(banded, nw_score(a, b, s));
  }
}

TEST(Banded, BandTooNarrowThrows) {
  auto s = simple_dna();
  EXPECT_THROW(banded_nw_score("A", "ACGTACGT", s, 2), InputError);
}

TEST(Banded, IdenticalSequencesPerfectWithTinyBand) {
  auto s = simple_dna();
  std::string a(100, 'A');
  EXPECT_EQ(banded_nw_score(a, a, s, 1), 200);
}

TEST(AlignScore, DispatchesAllModes) {
  auto s = simple_dna();
  std::string a = "ACGTACGTAA", b = "ACGTTCGTAA";
  EXPECT_EQ(align_score(AlignMode::kGlobal, a, b, s), nw_score(a, b, s));
  EXPECT_EQ(align_score(AlignMode::kLocal, a, b, s), sw_score(a, b, s));
  EXPECT_EQ(align_score(AlignMode::kSemiGlobal, a, b, s), semiglobal_score(a, b, s));
  EXPECT_EQ(align_score(AlignMode::kBanded, a, b, s, 12),
            banded_nw_score(a, b, s, 12));
}

TEST(AlignScore, BandWideningIsSurfacedInDiagnostics) {
  auto s = simple_dna();
  std::string a = "ACGTACGTACGTACGT", b = "ACG";  // length gap of 13

  // Requested band cannot bridge |n-m|: align_score widens instead of
  // throwing (banded_nw_score itself still throws) and reports it.
  AlignDiagnostics diag;
  auto score = align_score(AlignMode::kBanded, a, b, s, 2, &diag);
  EXPECT_TRUE(diag.band_widened);
  EXPECT_EQ(diag.effective_band, 14u);  // |n-m| + 1
  EXPECT_EQ(score, banded_nw_score(a, b, s, 14));

  // A sufficient band is used as requested.
  diag = AlignDiagnostics{};
  align_score(AlignMode::kBanded, a, b, s, 15, &diag);
  EXPECT_FALSE(diag.band_widened);
  EXPECT_EQ(diag.effective_band, 15u);

  // Non-banded modes leave the diagnostics untouched (defaults).
  diag.effective_band = 999;
  diag.band_widened = true;
  align_score(AlignMode::kLocal, a, b, s, 0, &diag);
  EXPECT_FALSE(diag.band_widened);
  EXPECT_EQ(diag.effective_band, 0u);
}

TEST(AlignMode, ParseAndPrint) {
  EXPECT_EQ(parse_align_mode("smith-waterman"), AlignMode::kLocal);
  EXPECT_EQ(parse_align_mode("NW"), AlignMode::kGlobal);
  EXPECT_EQ(parse_align_mode("glocal"), AlignMode::kSemiGlobal);
  EXPECT_EQ(parse_align_mode("banded"), AlignMode::kBanded);
  EXPECT_THROW(parse_align_mode("mystery"), InputError);
  EXPECT_STREQ(to_string(AlignMode::kLocal), "local");
}

TEST(PercentIdentity, CountsMatchedColumns) {
  EXPECT_DOUBLE_EQ(percent_identity("ACGT", "ACGT"), 100.0);
  EXPECT_DOUBLE_EQ(percent_identity("A--T", "ACGT"), 50.0);  // 2 of 4 columns
  EXPECT_THROW(percent_identity("AC", "ACG"), InputError);
}

TEST(CostModel, ProductOfLengths) {
  EXPECT_DOUBLE_EQ(alignment_cost_ops(10, 20), 200.0);
  EXPECT_DOUBLE_EQ(alignment_cost_ops(0, 20), 0.0);
}

}  // namespace
}  // namespace hdcs::bio
