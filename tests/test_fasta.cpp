#include "bio/fasta.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hdcs::bio {
namespace {

TEST(Fasta, ParsesMultipleRecords) {
  auto seqs = parse_fasta(
      ">seq1 first sequence\n"
      "ACGT\n"
      "ACGT\n"
      ">seq2\n"
      "GGCC\n",
      Alphabet::kDna);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].id, "seq1");
  EXPECT_EQ(seqs[0].description, "first sequence");
  EXPECT_EQ(seqs[0].residues, "ACGTACGT");
  EXPECT_EQ(seqs[1].id, "seq2");
  EXPECT_EQ(seqs[1].description, "");
  EXPECT_EQ(seqs[1].residues, "GGCC");
}

TEST(Fasta, LowerCaseNormalizedAndUMappedToT) {
  auto seqs = parse_fasta(">s\nacgu\n", Alphabet::kDna);
  EXPECT_EQ(seqs[0].residues, "ACGT");
}

TEST(Fasta, LegacyCommentLinesIgnored) {
  auto seqs = parse_fasta(">s\n;comment\nACGT\n", Alphabet::kDna);
  EXPECT_EQ(seqs[0].residues, "ACGT");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  EXPECT_THROW(parse_fasta("ACGT\n>s\nACGT\n", Alphabet::kDna), InputError);
}

TEST(Fasta, RejectsEmptyInput) {
  EXPECT_THROW(parse_fasta("", Alphabet::kDna), InputError);
  EXPECT_THROW(parse_fasta("\n\n", Alphabet::kDna), InputError);
}

TEST(Fasta, RejectsEmptySequence) {
  EXPECT_THROW(parse_fasta(">only_header\n", Alphabet::kDna), InputError);
}

TEST(Fasta, RejectsInvalidResidues) {
  EXPECT_THROW(parse_fasta(">s\nACGJ\n", Alphabet::kDna), InputError);
  // J is invalid for protein too.
  EXPECT_THROW(parse_fasta(">s\nMKLJ\n", Alphabet::kProtein), InputError);
}

TEST(Fasta, ProteinAccepted) {
  auto seqs = parse_fasta(">p\nMKLVN\n", Alphabet::kProtein);
  EXPECT_EQ(seqs[0].residues, "MKLVN");
}

TEST(Fasta, AutoDetectsAlphabet) {
  Alphabet detected;
  auto dna = parse_fasta_auto(">s\nACGTACGTAC\n", &detected);
  EXPECT_EQ(detected, Alphabet::kDna);
  auto prot = parse_fasta_auto(">p\nMKLVNWYHED\n", &detected);
  EXPECT_EQ(detected, Alphabet::kProtein);
  EXPECT_EQ(prot[0].residues, "MKLVNWYHED");
}

TEST(Fasta, RoundTripsThroughWriter) {
  std::vector<Sequence> seqs;
  seqs.push_back({"id1", "desc here", std::string(150, 'A')});
  seqs.push_back({"id2", "", "ACGTACGT"});
  auto text = to_fasta(seqs, 70);
  auto parsed = parse_fasta(text, Alphabet::kDna);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].id, "id1");
  EXPECT_EQ(parsed[0].description, "desc here");
  EXPECT_EQ(parsed[0].residues, seqs[0].residues);
  EXPECT_EQ(parsed[1].residues, "ACGTACGT");
}

TEST(Fasta, WrappingAtRequestedWidth) {
  std::vector<Sequence> seqs = {{"s", "", std::string(25, 'G')}};
  auto text = to_fasta(seqs, 10);
  // 25 residues at width 10 -> lines of 10, 10, 5.
  EXPECT_NE(text.find("GGGGGGGGGG\nGGGGGGGGGG\nGGGGG\n"), std::string::npos);
}

TEST(Fasta, TotalResidues) {
  std::vector<Sequence> seqs = {{"a", "", "ACGT"}, {"b", "", "GG"}};
  EXPECT_EQ(total_residues(seqs), 6u);
  EXPECT_EQ(total_residues({}), 0u);
}

TEST(SequenceHelpers, ReverseComplement) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");
  EXPECT_EQ(reverse_complement("AACG"), "CGTT");
  EXPECT_EQ(reverse_complement(""), "");
  EXPECT_THROW(reverse_complement("ACGX"), InputError);
}

TEST(SequenceHelpers, DnaIndexRoundTrip) {
  EXPECT_EQ(dna_index('A'), 0);
  EXPECT_EQ(dna_index('C'), 1);
  EXPECT_EQ(dna_index('G'), 2);
  EXPECT_EQ(dna_index('T'), 3);
  EXPECT_EQ(dna_index('U'), 3);
  EXPECT_EQ(dna_index('N'), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dna_index(dna_base(i)), i);
  EXPECT_THROW(dna_base(4), InputError);
}

TEST(SequenceHelpers, GuessAlphabet) {
  EXPECT_EQ(guess_alphabet("ACGTACGTAC"), Alphabet::kDna);
  EXPECT_EQ(guess_alphabet("MKWYHEDRQS"), Alphabet::kProtein);
  // Mostly DNA with one odd char still counts as DNA (>= 90%).
  EXPECT_EQ(guess_alphabet("ACGTACGTACGTACGTACGW"), Alphabet::kDna);
}

}  // namespace
}  // namespace hdcs::bio
