// Checkpoint/restore: a server restart in the middle of a computation must
// lose nothing — merged progress survives via DataManager snapshots, and
// in-flight units survive because the scheduler persists their payloads.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "bio/seqgen.hpp"
#include "dboot/dboot.hpp"
#include "dist/checkpoint_file.hpp"
#include "dist/client.hpp"
#include "dist/scheduler_core.hpp"
#include "dist/server.hpp"
#include "dprml/dprml.hpp"
#include "dsearch/dsearch.hpp"
#include "obs/metrics.hpp"
#include "phylo/simulate.hpp"
#include "tests/toy_problem.hpp"
#include "util/rng.hpp"
#include "util/vfs.hpp"

namespace hdcs::dist {
namespace {

using test::ToySumDataManager;

SchedulerConfig cfg() {
  SchedulerConfig c;
  c.lease_timeout = 1e6;
  c.bounds.min_ops = 1;
  return c;
}

/// Drive `core` for `steps` request/submit cycles using the toy algorithm.
template <typename Exec>
void drive(SchedulerCore& core, ClientId cid, Exec&& execute, int steps,
           double& t) {
  for (int i = 0; i < steps; ++i) {
    auto unit = core.request_work(cid, t);
    if (!unit) return;
    core.materialize_unit_blobs(*unit);
    core.submit_result(cid, execute(*unit), t + 0.5);
    t += 1;
  }
}

TEST(Checkpoint, ToyProblemSurvivesRestartMidRun) {
  test::register_toy_algorithm();
  auto make_dm = [] {
    return std::make_shared<ToySumDataManager>(100000, 7, /*stages=*/3);
  };

  // Uninterrupted reference run.
  std::uint64_t expected = make_dm()->expected();

  // Run 1: do part of the work, leave units in flight, checkpoint.
  SchedulerCore core1(cfg(), std::make_unique<FixedGranularity>(5000));
  auto dm1 = make_dm();
  core1.submit_problem(dm1);
  auto data = dm1->problem_data();
  test::ToySumAlgorithm algo;
  algo.initialize(data);
  auto execute = [&](const WorkUnit& u) {
    ResultUnit r;
    r.problem_id = u.problem_id;
    r.unit_id = u.unit_id;
    r.stage = u.stage;
    r.payload = algo.process(u);
    return r;
  };
  auto c1 = core1.client_joined("c1", 1e6, 0.0);
  double t = 0;
  drive(core1, c1, execute, 3, t);
  // Take two more units WITHOUT submitting: in-flight at checkpoint time.
  ASSERT_TRUE(core1.request_work(c1, t));
  ASSERT_TRUE(core1.request_work(c1, t));
  ByteWriter w;
  core1.checkpoint(w);
  auto blob = w.take();
  // The first core "crashes" here.

  // Run 2: fresh core, same problem inputs, restore, finish.
  SchedulerCore core2(cfg(), std::make_unique<FixedGranularity>(5000));
  auto dm2 = make_dm();
  auto pid2 = core2.submit_problem(dm2);
  ByteReader r{std::span<const std::byte>(blob)};
  core2.restore(r);
  r.expect_end();

  auto c2 = core2.client_joined("fresh-donor", 1e6, 0.0);
  int spins = 0;
  while (!core2.problem_complete(pid2)) {
    auto unit = core2.request_work(c2, t);
    ASSERT_TRUE(unit) << "restored core stalled";
    core2.submit_result(c2, execute(*unit), t + 0.5);
    t += 1;
    ASSERT_LT(++spins, 10000);
  }
  EXPECT_EQ(test::read_u64_result(core2.final_result(pid2)), expected);
  // The two in-flight units were re-delivered, not lost.
  EXPECT_GE(core2.stats().units_reissued, 2u);
}

TEST(Checkpoint, RestoreValidatesShape) {
  test::register_toy_algorithm();
  SchedulerCore core(cfg(), std::make_unique<FixedGranularity>(100));
  core.submit_problem(std::make_shared<ToySumDataManager>(1000));
  ByteWriter w;
  core.checkpoint(w);
  auto blob = w.take();

  // Restoring into a core with a different problem count fails.
  SchedulerCore empty(cfg(), std::make_unique<FixedGranularity>(100));
  ByteReader r1{std::span<const std::byte>(blob)};
  EXPECT_THROW(empty.restore(r1), ProtocolError);

  // Restoring into a core that already made progress fails.
  SchedulerCore busy(cfg(), std::make_unique<FixedGranularity>(100));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  busy.submit_problem(dm);
  auto cid = busy.client_joined("c", 1e6, 0.0);
  ASSERT_TRUE(busy.request_work(cid, 0.0));
  ByteReader r2{std::span<const std::byte>(blob)};
  EXPECT_THROW(busy.restore(r2), ProtocolError);
}

TEST(Checkpoint, DSearchResumeMatchesUninterrupted) {
  dsearch::register_algorithm();
  Rng rng(21);
  auto queries = bio::make_queries(rng, 2, 60, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 40;
  spec.mean_length = 80;
  auto database = bio::make_database(rng, spec, queries);
  dsearch::DSearchConfig dcfg;
  dcfg.top_k = 8;
  auto reference = dsearch::search_serial(queries, database, dcfg);

  auto run_halves = [&] {
    SchedulerCore core1(cfg(), std::make_unique<FixedGranularity>(2e5));
    auto dm1 = std::make_shared<dsearch::DSearchDataManager>(queries, database,
                                                             dcfg);
    core1.submit_problem(dm1);
    dsearch::DSearchAlgorithm algo;
    auto data = dm1->problem_data();
    algo.initialize(data);
    auto execute = [&](const WorkUnit& u) {
      ResultUnit r;
      r.problem_id = u.problem_id;
      r.unit_id = u.unit_id;
      r.stage = u.stage;
      r.payload = algo.process(u);
      return r;
    };
    auto c1 = core1.client_joined("c1", 1e6, 0.0);
    double t = 0;
    drive(core1, c1, execute, 2, t);
    ASSERT_TRUE(core1.request_work(c1, t));  // one unit left in flight

    ByteWriter w;
    core1.checkpoint(w);
    auto blob = w.take();

    SchedulerCore core2(cfg(), std::make_unique<FixedGranularity>(2e5));
    auto dm2 = std::make_shared<dsearch::DSearchDataManager>(queries, database,
                                                             dcfg);
    auto pid2 = core2.submit_problem(dm2);
    ByteReader r{std::span<const std::byte>(blob)};
    core2.restore(r);
    auto c2 = core2.client_joined("c2", 1e6, 0.0);
    while (!core2.problem_complete(pid2)) {
      auto unit = core2.request_work(c2, t);
      ASSERT_TRUE(unit);
      core2.materialize_unit_blobs(*unit);
      core2.submit_result(c2, execute(*unit), t);
      t += 1;
    }
    EXPECT_EQ(dm2->result(), reference);
  };
  run_halves();
}

TEST(Checkpoint, DPRmlResumeMidStageMatchesSerial) {
  dprml::register_algorithm();
  Rng rng(23);
  auto tree = phylo::random_tree(rng, {7, 0.12, "t"});
  auto model = phylo::SubstModel::jc69();
  auto aln = phylo::simulate_alignment(rng, tree, model,
                                       phylo::RateModel::uniform(), {250});
  dprml::DPRmlConfig pcfg;
  pcfg.model_spec = "JC69";
  pcfg.branch_tolerance = 1e-3;
  pcfg.refine_passes = 1;
  pcfg.use_eval_cache = false;
  auto serial = dprml::build_tree_serial(aln, pcfg);

  SchedulerCore core1(cfg(), std::make_unique<FixedGranularity>(1.0));
  auto dm1 = std::make_shared<dprml::DPRmlDataManager>(aln, pcfg);
  core1.submit_problem(dm1);
  dprml::DPRmlAlgorithm algo;
  auto data = dm1->problem_data();
  algo.initialize(data);
  auto execute = [&](const WorkUnit& u) {
    ResultUnit r;
    r.problem_id = u.problem_id;
    r.unit_id = u.unit_id;
    r.stage = u.stage;
    r.payload = algo.process(u);
    return r;
  };
  auto c1 = core1.client_joined("c1", 1e6, 0.0);
  double t = 0;
  // Get into the middle of an eval stage, with one candidate in flight.
  drive(core1, c1, execute, 4, t);
  core1.request_work(c1, t);  // may be nullopt at a barrier — also fine

  ByteWriter w;
  core1.checkpoint(w);
  auto blob = w.take();

  SchedulerCore core2(cfg(), std::make_unique<FixedGranularity>(1.0));
  auto dm2 = std::make_shared<dprml::DPRmlDataManager>(aln, pcfg);
  auto pid2 = core2.submit_problem(dm2);
  ByteReader r{std::span<const std::byte>(blob)};
  core2.restore(r);
  auto c2 = core2.client_joined("c2", 1e6, 0.0);
  int spins = 0;
  while (!core2.problem_complete(pid2)) {
    auto unit = core2.request_work(c2, t);
    t += 1;
    if (!unit) {
      ASSERT_LT(++spins, 100000) << "restored DPRml stalled";
      continue;
    }
    core2.materialize_unit_blobs(*unit);
    core2.submit_result(c2, execute(*unit), t);
  }
  auto resumed = dm2->result();
  EXPECT_EQ(resumed.newick, serial.newick);
  EXPECT_DOUBLE_EQ(resumed.log_likelihood, serial.log_likelihood);
}

TEST(Checkpoint, ServerLevelRestartOverTcp) {
  test::register_toy_algorithm();
  ServerConfig scfg;
  scfg.scheduler.bounds.min_ops = 1000;
  scfg.policy_spec = "fixed:400000";
  scfg.tick_interval_s = 0.05;
  scfg.no_work_retry_s = 0.02;

  std::uint64_t expected = ToySumDataManager(2000000, 5).expected();
  std::vector<std::byte> blob;

  {
    Server server(scfg);
    server.start();
    auto dm = std::make_shared<ToySumDataManager>(2000000, 5);
    server.submit_problem(dm);
    // One donor does a single unit, then we checkpoint and "crash".
    ClientConfig ccfg;
    ccfg.server_port = server.port();
    ccfg.name = "early-bird";
    ccfg.crash_after_units = 2;  // computes one, crashes on the 2nd
    Client(ccfg).run();
    blob = server.checkpoint();
    server.stop();
  }
  {
    Server server(scfg);
    auto dm = std::make_shared<ToySumDataManager>(2000000, 5);
    auto pid = server.submit_problem(dm);
    server.restore_checkpoint(blob);
    server.start();
    ClientConfig ccfg;
    ccfg.server_port = server.port();
    ccfg.name = "finisher";
    Client(ccfg).run();
    ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
    EXPECT_EQ(test::read_u64_result(server.final_result(pid)), expected);
    server.stop();
  }
}

TEST(Checkpoint, HedgedDuplicateInFlightAcrossRestoreDropped) {
  test::register_toy_algorithm();
  auto c = cfg();
  c.hedge_endgame = true;
  SchedulerCore core1(c, std::make_unique<FixedGranularity>(1000));
  auto dm1 = std::make_shared<ToySumDataManager>(1000, 3);  // one unit
  core1.submit_problem(dm1);
  auto data = dm1->problem_data();
  test::ToySumAlgorithm algo;
  algo.initialize(data);
  auto execute = [&](const WorkUnit& u) {
    ResultUnit r;
    r.problem_id = u.problem_id;
    r.unit_id = u.unit_id;
    r.stage = u.stage;
    r.payload = algo.process(u);
    return r;
  };

  // Two donors race the same unit (endgame hedge), then the server dies
  // with the hedged unit still in flight.
  auto slow = core1.client_joined("slow", 1e6, 0.0);
  auto fast = core1.client_joined("fast", 1e6, 0.0);
  auto original = core1.request_work(slow, 0.0);
  ASSERT_TRUE(original);
  auto hedged = core1.request_work(fast, 1.0);
  ASSERT_TRUE(hedged);
  ASSERT_EQ(hedged->unit_id, original->unit_id);
  ByteWriter w;
  core1.checkpoint(w);
  auto blob = w.take();

  SchedulerCore core2(c, std::make_unique<FixedGranularity>(1000));
  auto dm2 = std::make_shared<ToySumDataManager>(1000, 3);
  auto pid2 = core2.submit_problem(dm2);
  ByteReader r{std::span<const std::byte>(blob)};
  EXPECT_EQ(core2.restore(r), 1u);  // one lease record for the hedged unit

  // A fresh donor finishes the restored unit; both old racers' buffered
  // results then arrive late (resubmitted after their reconnect) and are
  // dropped as duplicates. Stats stay exact: one accept, two drops.
  auto fresh = core2.client_joined("fresh", 1e6, 2.0);
  auto reissued = core2.request_work(fresh, 2.0);
  ASSERT_TRUE(reissued);
  EXPECT_EQ(reissued->unit_id, original->unit_id);
  EXPECT_TRUE(core2.submit_result(fresh, execute(*reissued), 3.0));
  EXPECT_TRUE(core2.problem_complete(pid2));

  auto late1 = core2.client_joined("slow-rejoined", 1e6, 4.0);
  auto late2 = core2.client_joined("fast-rejoined", 1e6, 4.0);
  EXPECT_FALSE(core2.submit_result(late1, execute(*original), 5.0));
  EXPECT_FALSE(core2.submit_result(late2, execute(*hedged), 5.0));
  EXPECT_EQ(core2.stats().results_accepted, 1u);
  EXPECT_EQ(core2.stats().duplicate_results_dropped, 2u);
  EXPECT_EQ(test::read_u64_result(core2.final_result(pid2)),
            ToySumDataManager(1000, 3).expected());
}

TEST(Checkpoint, RestoreIdGapPreventsCrossRestartCollisions) {
  test::register_toy_algorithm();
  SchedulerCore core1(cfg(), std::make_unique<FixedGranularity>(1000));
  auto dm1 = std::make_shared<ToySumDataManager>(10000);
  core1.submit_problem(dm1);
  auto data = dm1->problem_data();
  test::ToySumAlgorithm algo;
  algo.initialize(data);
  auto c1 = core1.client_joined("c1", 1e6, 0.0);

  ByteWriter w;
  core1.checkpoint(w);
  auto blob = w.take();
  // Units issued AFTER the checkpoint: their ids die with the crash.
  auto post = core1.request_work(c1, 1.0);
  ASSERT_TRUE(post);

  SchedulerCore core2(cfg(), std::make_unique<FixedGranularity>(1000));
  auto dm2 = std::make_shared<ToySumDataManager>(10000);
  core2.submit_problem(dm2);
  ByteReader r{std::span<const std::byte>(blob)};
  core2.restore(r);

  // New ids jump by kRestoreIdGap, so the lost post-checkpoint id can
  // never be reassigned to different work.
  auto c2 = core2.client_joined("c2", 1e6, 2.0);
  auto fresh = core2.request_work(c2, 2.0);
  ASSERT_TRUE(fresh);
  EXPECT_GE(fresh->unit_id, SchedulerCore::kRestoreIdGap);
  EXPECT_NE(fresh->unit_id, post->unit_id);

  // A reconnecting donor's buffered result for the lost unit is dropped
  // as stale — never merged into the wrong unit.
  ResultUnit stale;
  stale.problem_id = post->problem_id;
  stale.unit_id = post->unit_id;
  stale.stage = post->stage;
  stale.payload = algo.process(*post);
  EXPECT_FALSE(core2.submit_result(c2, stale, 3.0));
  EXPECT_GE(core2.stats().stale_results_dropped, 1u);
}

TEST(Checkpoint, AttemptCountsAndQuarantineSurviveRestore) {
  test::register_toy_algorithm();
  auto c = cfg();
  c.lease_timeout = 10.0;
  c.max_attempts_per_unit = 2;
  SchedulerCore core1(c, std::make_unique<FixedGranularity>(1000));
  auto dm1 = std::make_shared<ToySumDataManager>(1000);
  core1.submit_problem(dm1);
  auto data = dm1->problem_data();
  test::ToySumAlgorithm algo;
  algo.initialize(data);

  // Burn attempt 1 before the crash.
  auto c1 = core1.client_joined("c1", 1e6, 0.0);
  auto unit = core1.request_work(c1, 0.0);
  ASSERT_TRUE(unit);
  core1.tick(20.0);  // expired: attempt 1 of 2 burned, unit requeued
  ByteWriter w;
  core1.checkpoint(w);
  auto blob = w.take();

  // The restored core remembers the burned attempt: one more failure
  // quarantines the unit instead of starting the count over.
  SchedulerCore core2(c, std::make_unique<FixedGranularity>(1000));
  auto dm2 = std::make_shared<ToySumDataManager>(1000);
  auto pid2 = core2.submit_problem(dm2);
  ByteReader r{std::span<const std::byte>(blob)};
  core2.restore(r);
  auto c2 = core2.client_joined("c2", 1e6, 21.0);
  ASSERT_TRUE(core2.request_work(c2, 21.0));  // attempt 2
  core2.tick(40.0);
  EXPECT_EQ(core2.stats().units_quarantined, 1u);
  auto c3 = core2.client_joined("c3", 1e6, 41.0);
  EXPECT_FALSE(core2.request_work(c3, 41.0).has_value());

  // Quarantine itself round-trips: a third incarnation still refuses to
  // reissue the unit, and a genuine late result still rescues it.
  ByteWriter w2;
  core2.checkpoint(w2);
  auto blob2 = w2.take();
  SchedulerCore core3(c, std::make_unique<FixedGranularity>(1000));
  auto dm3 = std::make_shared<ToySumDataManager>(1000);
  auto pid3 = core3.submit_problem(dm3);
  ByteReader r2{std::span<const std::byte>(blob2)};
  core3.restore(r2);
  auto c4 = core3.client_joined("c4", 1e6, 50.0);
  EXPECT_FALSE(core3.request_work(c4, 50.0).has_value());
  ResultUnit genuine;
  genuine.problem_id = unit->problem_id;
  genuine.unit_id = unit->unit_id;
  genuine.stage = unit->stage;
  genuine.payload = algo.process(*unit);
  EXPECT_TRUE(core3.submit_result(c4, genuine, 51.0));
  EXPECT_TRUE(core3.problem_complete(pid3));
  EXPECT_EQ(test::read_u64_result(core3.final_result(pid3)),
            dm1->expected());
  (void)pid2;
}

TEST(CheckpointFile, RoundTripAndMissingFile) {
  std::string path = testing::TempDir() + "hdcs_ckpt_roundtrip.bin";
  std::remove(path.c_str());
  EXPECT_EQ(read_checkpoint_file(path), std::nullopt);

  ByteWriter w;
  w.str("durable scheduler state");
  w.u64(123456789);
  auto payload = w.take();
  write_checkpoint_file(path, payload);
  auto back = read_checkpoint_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
  std::remove(path.c_str());
}

TEST(CheckpointFile, AtomicOverwriteKeepsLatest) {
  std::string path = testing::TempDir() + "hdcs_ckpt_overwrite.bin";
  ByteWriter w1;
  w1.str("first");
  write_checkpoint_file(path, w1.data());
  ByteWriter w2;
  w2.str("second checkpoint, longer than the first");
  write_checkpoint_file(path, w2.data());
  auto back = read_checkpoint_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::vector<std::byte>(w2.data().begin(), w2.data().end()), *back);
  std::remove(path.c_str());
}

TEST(CheckpointFile, CorruptionAndTruncationDetected) {
  std::string path = testing::TempDir() + "hdcs_ckpt_corrupt.bin";
  ByteWriter w;
  w.str("state that must not be trusted after bit rot");
  write_checkpoint_file(path, w.data());

  // Flip one payload byte in place: CRC must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);  // inside the payload (header is 16 bytes)
    char b = 0;
    f.seekg(20);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(20);
    f.write(&b, 1);
  }
  EXPECT_THROW(read_checkpoint_file(path), ProtocolError);

  // Truncate the file mid-payload: also detected, not fed to restore().
  write_checkpoint_file(path, w.data());
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    ByteWriter part;
    part.u32(0x484b4350);  // valid magic, then nothing
    f.write(reinterpret_cast<const char*>(part.data().data()),
            static_cast<std::streamsize>(part.data().size()));
  }
  EXPECT_THROW(read_checkpoint_file(path), ProtocolError);
  std::remove(path.c_str());
}

TEST(Checkpoint, ServerAutosavesAndRestoresFromDisk) {
  test::register_toy_algorithm();
  std::string path = testing::TempDir() + "hdcs_ckpt_server.bin";
  std::remove(path.c_str());

  ServerConfig scfg;
  scfg.scheduler.bounds.min_ops = 1000;
  scfg.policy_spec = "fixed:400000";
  scfg.tick_interval_s = 0.02;
  scfg.no_work_retry_s = 0.02;
  scfg.checkpoint_path = path;
  scfg.checkpoint_interval_s = 0.05;

  std::uint64_t expected = ToySumDataManager(2000000, 5).expected();
  auto& saves = obs::Registry::global().counter("checkpoint.saves");
  std::uint64_t saves_before = saves.value();

  {
    Server server(scfg);
    server.start();
    auto dm = std::make_shared<ToySumDataManager>(2000000, 5);
    server.submit_problem(dm);
    ClientConfig ccfg;
    ccfg.server_port = server.port();
    ccfg.name = "early-bird";
    ccfg.crash_after_units = 2;  // computes one unit, vanishes on the 2nd
    Client(ccfg).run();
    // Wait for the housekeeping loop's periodic autosave to hit disk.
    for (int i = 0; i < 200 && saves.value() == saves_before; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(saves.value(), saves_before);
    server.save_checkpoint();  // deterministic final state for phase two
    server.stop();             // "kill -9": nothing else is carried over
  }
  {
    Server server(scfg);  // restore_on_start = true reads the file
    auto dm = std::make_shared<ToySumDataManager>(2000000, 5);
    auto pid = server.submit_problem(dm);
    server.start();
    ClientConfig ccfg;
    ccfg.server_port = server.port();
    ccfg.name = "finisher";
    Client(ccfg).run();
    ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
    EXPECT_EQ(test::read_u64_result(server.final_result(pid)), expected);
    server.stop();
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, DBootSnapshotRoundTrips) {
  Rng rng(31);
  auto tree = phylo::random_tree(rng, {6, 0.15, "t"});
  auto model = phylo::SubstModel::jc69();
  auto aln = phylo::simulate_alignment(rng, tree, model,
                                       phylo::RateModel::uniform(), {200});
  dboot::DBootConfig bcfg;
  bcfg.replicates = 20;
  dboot::DBootDataManager dm(aln, bcfg);
  SizeHint hint{1.0};
  ASSERT_TRUE(dm.next_unit(hint));  // one replicate handed out

  ByteWriter w;
  dm.snapshot(w);
  dboot::DBootDataManager dm2(aln, bcfg);
  ByteReader r{std::span<const std::byte>(w.data())};
  dm2.restore(r);
  r.expect_end();
  // The restored manager continues from replicate 1, not 0.
  auto unit = dm2.next_unit(hint);
  ASSERT_TRUE(unit);
  ByteReader pr(unit->payload);
  EXPECT_EQ(pr.u64(), 1u);
}

TEST(CheckpointFile, WriteFailureLeavesOldCheckpointAndNoTmp) {
  std::string path = testing::TempDir() + "hdcs_ckpt_faultclean.bin";
  std::remove(path.c_str());
  ByteWriter w1;
  w1.str("the good old state");
  write_checkpoint_file(path, w1.data());

  ByteWriter w2;
  w2.str("the state the dying disk rejects");
  {
    vfs::StorageFaultSpec spec;
    spec.write_error_prob = 1.0;
    spec.path_filter = "hdcs_ckpt_faultclean";
    vfs::ScopedStorageFaultPlan scoped(spec);
    EXPECT_THROW(write_checkpoint_file(path, w2.data()), IoError);
  }
  // The failed save must not have touched the durable copy, and its tmp
  // must be cleaned up (a tmp graveyard eats the disk budget).
  auto back = read_checkpoint_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::vector<std::byte>(w1.data().begin(), w1.data().end()), *back);
  EXPECT_FALSE(vfs::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(CheckpointFile, FaultStormFuzzNeverServesGarbage) {
  // Seeded storms over the tmp+fsync+rename save path, torn renames
  // included: afterwards the file is either the old checkpoint, the new
  // one, or detectably corrupt (ProtocolError) — never silently wrong and
  // never a crash.
  ByteWriter old_w;
  old_w.str("old but consistent scheduler state");
  const auto old_payload =
      std::vector<std::byte>(old_w.data().begin(), old_w.data().end());
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    std::string path = testing::TempDir() + "hdcs_ckpt_fuzz.bin";
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    write_checkpoint_file(path, old_payload);

    ByteWriter new_w;
    new_w.str("new state, seed ");
    new_w.u64(seed);
    const auto new_payload =
        std::vector<std::byte>(new_w.data().begin(), new_w.data().end());
    bool saved = false;
    {
      vfs::StorageFaultSpec spec;
      spec.seed = seed;
      spec.open_error_prob = 0.15;
      spec.write_error_prob = 0.2;
      spec.short_write_prob = 0.15;
      spec.sync_error_prob = 0.2;
      spec.rename_error_prob = 0.15;
      spec.torn_rename_prob = 0.2;
      spec.path_filter = "hdcs_ckpt_fuzz";
      vfs::ScopedStorageFaultPlan scoped(spec);
      try {
        write_checkpoint_file(path, new_payload);
        saved = true;
      } catch (const IoError&) {
      }
    }
    try {
      auto back = read_checkpoint_file(path);
      ASSERT_TRUE(back.has_value()) << "seed " << seed;
      if (saved) {
        EXPECT_EQ(*back, new_payload) << "seed " << seed;
      } else {
        EXPECT_TRUE(*back == old_payload || *back == new_payload)
            << "seed " << seed;
      }
    } catch (const ProtocolError&) {
      // A torn rename left a truncated envelope: detected, not consumed.
      EXPECT_FALSE(saved) << "seed " << seed;
    }
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
}

}  // namespace
}  // namespace hdcs::dist
