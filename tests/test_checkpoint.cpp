// Checkpoint/restore: a server restart in the middle of a computation must
// lose nothing — merged progress survives via DataManager snapshots, and
// in-flight units survive because the scheduler persists their payloads.

#include <gtest/gtest.h>

#include "bio/seqgen.hpp"
#include "dboot/dboot.hpp"
#include "dist/client.hpp"
#include "dist/scheduler_core.hpp"
#include "dist/server.hpp"
#include "dprml/dprml.hpp"
#include "dsearch/dsearch.hpp"
#include "phylo/simulate.hpp"
#include "tests/toy_problem.hpp"
#include "util/rng.hpp"

namespace hdcs::dist {
namespace {

using test::ToySumDataManager;

SchedulerConfig cfg() {
  SchedulerConfig c;
  c.lease_timeout = 1e6;
  c.bounds.min_ops = 1;
  return c;
}

/// Drive `core` for `steps` request/submit cycles using the toy algorithm.
template <typename Exec>
void drive(SchedulerCore& core, ClientId cid, Exec&& execute, int steps,
           double& t) {
  for (int i = 0; i < steps; ++i) {
    auto unit = core.request_work(cid, t);
    if (!unit) return;
    core.submit_result(cid, execute(*unit), t + 0.5);
    t += 1;
  }
}

TEST(Checkpoint, ToyProblemSurvivesRestartMidRun) {
  test::register_toy_algorithm();
  auto make_dm = [] {
    return std::make_shared<ToySumDataManager>(100000, 7, /*stages=*/3);
  };

  // Uninterrupted reference run.
  std::uint64_t expected = make_dm()->expected();

  // Run 1: do part of the work, leave units in flight, checkpoint.
  SchedulerCore core1(cfg(), std::make_unique<FixedGranularity>(5000));
  auto dm1 = make_dm();
  core1.submit_problem(dm1);
  auto data = dm1->problem_data();
  test::ToySumAlgorithm algo;
  algo.initialize(data);
  auto execute = [&](const WorkUnit& u) {
    ResultUnit r;
    r.problem_id = u.problem_id;
    r.unit_id = u.unit_id;
    r.stage = u.stage;
    r.payload = algo.process(u);
    return r;
  };
  auto c1 = core1.client_joined("c1", 1e6, 0.0);
  double t = 0;
  drive(core1, c1, execute, 3, t);
  // Take two more units WITHOUT submitting: in-flight at checkpoint time.
  ASSERT_TRUE(core1.request_work(c1, t));
  ASSERT_TRUE(core1.request_work(c1, t));
  ByteWriter w;
  core1.checkpoint(w);
  auto blob = w.take();
  // The first core "crashes" here.

  // Run 2: fresh core, same problem inputs, restore, finish.
  SchedulerCore core2(cfg(), std::make_unique<FixedGranularity>(5000));
  auto dm2 = make_dm();
  auto pid2 = core2.submit_problem(dm2);
  ByteReader r{std::span<const std::byte>(blob)};
  core2.restore(r);
  r.expect_end();

  auto c2 = core2.client_joined("fresh-donor", 1e6, 0.0);
  int spins = 0;
  while (!core2.problem_complete(pid2)) {
    auto unit = core2.request_work(c2, t);
    ASSERT_TRUE(unit) << "restored core stalled";
    core2.submit_result(c2, execute(*unit), t + 0.5);
    t += 1;
    ASSERT_LT(++spins, 10000);
  }
  EXPECT_EQ(test::read_u64_result(core2.final_result(pid2)), expected);
  // The two in-flight units were re-delivered, not lost.
  EXPECT_GE(core2.stats().units_reissued, 2u);
}

TEST(Checkpoint, RestoreValidatesShape) {
  test::register_toy_algorithm();
  SchedulerCore core(cfg(), std::make_unique<FixedGranularity>(100));
  core.submit_problem(std::make_shared<ToySumDataManager>(1000));
  ByteWriter w;
  core.checkpoint(w);
  auto blob = w.take();

  // Restoring into a core with a different problem count fails.
  SchedulerCore empty(cfg(), std::make_unique<FixedGranularity>(100));
  ByteReader r1{std::span<const std::byte>(blob)};
  EXPECT_THROW(empty.restore(r1), ProtocolError);

  // Restoring into a core that already made progress fails.
  SchedulerCore busy(cfg(), std::make_unique<FixedGranularity>(100));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  busy.submit_problem(dm);
  auto cid = busy.client_joined("c", 1e6, 0.0);
  ASSERT_TRUE(busy.request_work(cid, 0.0));
  ByteReader r2{std::span<const std::byte>(blob)};
  EXPECT_THROW(busy.restore(r2), ProtocolError);
}

TEST(Checkpoint, DSearchResumeMatchesUninterrupted) {
  dsearch::register_algorithm();
  Rng rng(21);
  auto queries = bio::make_queries(rng, 2, 60, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 40;
  spec.mean_length = 80;
  auto database = bio::make_database(rng, spec, queries);
  dsearch::DSearchConfig dcfg;
  dcfg.top_k = 8;
  auto reference = dsearch::search_serial(queries, database, dcfg);

  auto run_halves = [&] {
    SchedulerCore core1(cfg(), std::make_unique<FixedGranularity>(2e5));
    auto dm1 = std::make_shared<dsearch::DSearchDataManager>(queries, database,
                                                             dcfg);
    core1.submit_problem(dm1);
    dsearch::DSearchAlgorithm algo;
    auto data = dm1->problem_data();
    algo.initialize(data);
    auto execute = [&](const WorkUnit& u) {
      ResultUnit r;
      r.problem_id = u.problem_id;
      r.unit_id = u.unit_id;
      r.stage = u.stage;
      r.payload = algo.process(u);
      return r;
    };
    auto c1 = core1.client_joined("c1", 1e6, 0.0);
    double t = 0;
    drive(core1, c1, execute, 2, t);
    ASSERT_TRUE(core1.request_work(c1, t));  // one unit left in flight

    ByteWriter w;
    core1.checkpoint(w);
    auto blob = w.take();

    SchedulerCore core2(cfg(), std::make_unique<FixedGranularity>(2e5));
    auto dm2 = std::make_shared<dsearch::DSearchDataManager>(queries, database,
                                                             dcfg);
    auto pid2 = core2.submit_problem(dm2);
    ByteReader r{std::span<const std::byte>(blob)};
    core2.restore(r);
    auto c2 = core2.client_joined("c2", 1e6, 0.0);
    while (!core2.problem_complete(pid2)) {
      auto unit = core2.request_work(c2, t);
      ASSERT_TRUE(unit);
      core2.submit_result(c2, execute(*unit), t);
      t += 1;
    }
    EXPECT_EQ(dm2->result(), reference);
  };
  run_halves();
}

TEST(Checkpoint, DPRmlResumeMidStageMatchesSerial) {
  dprml::register_algorithm();
  Rng rng(23);
  auto tree = phylo::random_tree(rng, {7, 0.12, "t"});
  auto model = phylo::SubstModel::jc69();
  auto aln = phylo::simulate_alignment(rng, tree, model,
                                       phylo::RateModel::uniform(), {250});
  dprml::DPRmlConfig pcfg;
  pcfg.model_spec = "JC69";
  pcfg.branch_tolerance = 1e-3;
  pcfg.refine_passes = 1;
  pcfg.use_eval_cache = false;
  auto serial = dprml::build_tree_serial(aln, pcfg);

  SchedulerCore core1(cfg(), std::make_unique<FixedGranularity>(1.0));
  auto dm1 = std::make_shared<dprml::DPRmlDataManager>(aln, pcfg);
  core1.submit_problem(dm1);
  dprml::DPRmlAlgorithm algo;
  auto data = dm1->problem_data();
  algo.initialize(data);
  auto execute = [&](const WorkUnit& u) {
    ResultUnit r;
    r.problem_id = u.problem_id;
    r.unit_id = u.unit_id;
    r.stage = u.stage;
    r.payload = algo.process(u);
    return r;
  };
  auto c1 = core1.client_joined("c1", 1e6, 0.0);
  double t = 0;
  // Get into the middle of an eval stage, with one candidate in flight.
  drive(core1, c1, execute, 4, t);
  core1.request_work(c1, t);  // may be nullopt at a barrier — also fine

  ByteWriter w;
  core1.checkpoint(w);
  auto blob = w.take();

  SchedulerCore core2(cfg(), std::make_unique<FixedGranularity>(1.0));
  auto dm2 = std::make_shared<dprml::DPRmlDataManager>(aln, pcfg);
  auto pid2 = core2.submit_problem(dm2);
  ByteReader r{std::span<const std::byte>(blob)};
  core2.restore(r);
  auto c2 = core2.client_joined("c2", 1e6, 0.0);
  int spins = 0;
  while (!core2.problem_complete(pid2)) {
    auto unit = core2.request_work(c2, t);
    t += 1;
    if (!unit) {
      ASSERT_LT(++spins, 100000) << "restored DPRml stalled";
      continue;
    }
    core2.submit_result(c2, execute(*unit), t);
  }
  auto resumed = dm2->result();
  EXPECT_EQ(resumed.newick, serial.newick);
  EXPECT_DOUBLE_EQ(resumed.log_likelihood, serial.log_likelihood);
}

TEST(Checkpoint, ServerLevelRestartOverTcp) {
  test::register_toy_algorithm();
  ServerConfig scfg;
  scfg.scheduler.bounds.min_ops = 1000;
  scfg.policy_spec = "fixed:400000";
  scfg.tick_interval_s = 0.05;
  scfg.no_work_retry_s = 0.02;

  std::uint64_t expected = ToySumDataManager(2000000, 5).expected();
  std::vector<std::byte> blob;

  {
    Server server(scfg);
    server.start();
    auto dm = std::make_shared<ToySumDataManager>(2000000, 5);
    server.submit_problem(dm);
    // One donor does a single unit, then we checkpoint and "crash".
    ClientConfig ccfg;
    ccfg.server_port = server.port();
    ccfg.name = "early-bird";
    ccfg.crash_after_units = 2;  // computes one, crashes on the 2nd
    Client(ccfg).run();
    blob = server.checkpoint();
    server.stop();
  }
  {
    Server server(scfg);
    auto dm = std::make_shared<ToySumDataManager>(2000000, 5);
    auto pid = server.submit_problem(dm);
    server.restore_checkpoint(blob);
    server.start();
    ClientConfig ccfg;
    ccfg.server_port = server.port();
    ccfg.name = "finisher";
    Client(ccfg).run();
    ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
    EXPECT_EQ(test::read_u64_result(server.final_result(pid)), expected);
    server.stop();
  }
}

TEST(Checkpoint, DBootSnapshotRoundTrips) {
  Rng rng(31);
  auto tree = phylo::random_tree(rng, {6, 0.15, "t"});
  auto model = phylo::SubstModel::jc69();
  auto aln = phylo::simulate_alignment(rng, tree, model,
                                       phylo::RateModel::uniform(), {200});
  dboot::DBootConfig bcfg;
  bcfg.replicates = 20;
  dboot::DBootDataManager dm(aln, bcfg);
  SizeHint hint{1.0};
  ASSERT_TRUE(dm.next_unit(hint));  // one replicate handed out

  ByteWriter w;
  dm.snapshot(w);
  dboot::DBootDataManager dm2(aln, bcfg);
  ByteReader r{std::span<const std::byte>(w.data())};
  dm2.restore(r);
  r.expect_end();
  // The restored manager continues from replicate 1, not 0.
  auto unit = dm2.next_unit(hint);
  ASSERT_TRUE(unit);
  ByteReader pr(unit->payload);
  EXPECT_EQ(pr.u64(), 1u);
}

}  // namespace
}  // namespace hdcs::dist
