#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "net/bulk.hpp"
#include "net/fault.hpp"
#include "net/frame_reader.hpp"
#include "net/message.hpp"
#include "net/socket.hpp"
#include "util/rng.hpp"

namespace hdcs::net {
namespace {

/// Listener + connected client/server stream pair over loopback.
struct Pair {
  TcpListener listener = TcpListener::bind(0);
  TcpStream client;
  TcpStream server;

  Pair() {
    std::thread t([&] { client = TcpStream::connect("127.0.0.1", listener.port()); });
    auto accepted = listener.accept(2000);
    t.join();
    if (!accepted) throw IoError("accept timed out in test fixture");
    server = std::move(*accepted);
  }
};

TEST(Socket, EphemeralPortAssigned) {
  auto listener = TcpListener::bind(0);
  EXPECT_GT(listener.port(), 0);
}

TEST(Socket, AcceptTimesOutWithoutClient) {
  auto listener = TcpListener::bind(0);
  EXPECT_EQ(listener.accept(50), std::nullopt);
}

TEST(Socket, ConnectRefusedThrows) {
  auto listener = TcpListener::bind(0);
  std::uint16_t port = listener.port();
  listener.close();
  EXPECT_THROW(TcpStream::connect("127.0.0.1", port), IoError);
}

TEST(Socket, SendRecvRoundTrip) {
  Pair p;
  std::string msg = "hello over loopback";
  p.client.send_all(as_bytes(msg));
  std::vector<std::byte> buf(msg.size());
  p.server.recv_all(buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf.data()), buf.size()), msg);
}

TEST(Socket, RecvAllThrowsConnectionClosedOnEof) {
  Pair p;
  p.client.close();
  std::vector<std::byte> buf(4);
  EXPECT_THROW(p.server.recv_all(buf), ConnectionClosed);
}

TEST(Socket, ReadableReflectsPendingData) {
  Pair p;
  EXPECT_FALSE(p.server.readable(10));
  p.client.send_all(as_bytes("x"));
  EXPECT_TRUE(p.server.readable(500));
}

TEST(Message, RoundTripsFrame) {
  Pair p;
  Message out;
  out.type = MessageType::kRequestWork;
  out.correlation = 77;
  ByteWriter w;
  w.str("payload");
  out.payload = w.take();

  write_message(p.client, out);
  Message in = read_message(p.server);
  EXPECT_EQ(in.type, MessageType::kRequestWork);
  EXPECT_EQ(in.correlation, 77u);
  auto r = in.reader();
  EXPECT_EQ(r.str(), "payload");
}

TEST(Message, EmptyPayloadOk) {
  Pair p;
  Message out;
  out.type = MessageType::kHeartbeatAck;
  out.correlation = 1;
  write_message(p.client, out);
  Message in = read_message(p.server);
  EXPECT_EQ(in.type, MessageType::kHeartbeatAck);
  EXPECT_TRUE(in.payload.empty());
}

TEST(Message, BadMagicThrowsProtocolError) {
  Pair p;
  // A full v2 header's worth of garbage (24 bytes): read_message must
  // reject it on the magic, not block waiting for more header.
  std::vector<std::byte> garbage(kFrameHeaderBytes, std::byte{0x5a});
  p.client.send_all(garbage);
  try {
    read_message(p.server);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    // The offending magic is reported in hex, not decimal.
    EXPECT_NE(std::string(e.what()).find("0x5a5a5a5a"), std::string::npos)
        << e.what();
  }
}

TEST(Message, CorruptedPayloadFailsFrameCrc) {
  Pair p;
  // A well-formed v2 frame whose payload CRC doesn't match its payload:
  // corruption is detected at the frame layer, never delivered.
  ByteWriter w;
  std::string body = "payload-bytes";
  w.u32(kMagic);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(MessageType::kHeartbeat));
  w.u64(9);
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.u32(crc32(as_bytes(body)) ^ 0x1u);
  p.client.send_all(w.data());
  p.client.send_all(as_bytes(body));
  EXPECT_THROW(read_message(p.server), ProtocolError);
}

TEST(Message, SequentialFramesPreserved) {
  Pair p;
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.type = MessageType::kHeartbeat;
    m.correlation = static_cast<std::uint64_t>(i);
    write_message(p.client, m);
  }
  for (int i = 0; i < 10; ++i) {
    Message m = read_message(p.server);
    EXPECT_EQ(m.correlation, static_cast<std::uint64_t>(i));
  }
}

TEST(Message, ToStringCoversTypes) {
  EXPECT_STREQ(to_string(MessageType::kHello), "Hello");
  EXPECT_STREQ(to_string(MessageType::kWorkAssignment), "WorkAssignment");
  EXPECT_STREQ(to_string(static_cast<MessageType>(999)), "Unknown");
}

TEST(Bulk, Crc32KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE reference value).
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Bulk, RoundTripsLargeBlob) {
  Pair p;
  Rng rng(1);
  std::vector<std::byte> blob(3 * kBulkChunk + 12345);
  for (auto& b : blob) b = static_cast<std::byte>(rng.next_u64() & 0xff);

  std::thread sender([&] { send_blob(p.client, blob); });
  auto received = recv_blob(p.server);
  sender.join();
  EXPECT_EQ(received, blob);
}

TEST(Bulk, EmptyBlobOk) {
  Pair p;
  std::thread sender([&] { send_blob(p.client, {}); });
  auto received = recv_blob(p.server);
  sender.join();
  EXPECT_TRUE(received.empty());
}

TEST(Bulk, OversizeBlobRejected) {
  Pair p;
  std::vector<std::byte> blob(1024);
  std::thread sender([&] {
    try {
      send_blob(p.client, blob);
    } catch (const IoError&) {
      // receiver may close early; ignore
    }
  });
  EXPECT_THROW(recv_blob(p.server, 512), IoError);
  p.server.close();
  sender.join();
}

TEST(Bulk, CorruptedPayloadFailsCrc) {
  Pair p;
  // Hand-craft a blob frame with a wrong CRC.
  ByteWriter header;
  std::string body = "abcdefgh";
  header.u64(body.size());
  header.u32(crc32(as_bytes(body)) ^ 0xffffffffu);
  p.client.send_all(header.data());
  p.client.send_all(as_bytes(body));
  EXPECT_THROW(recv_blob(p.server), ProtocolError);
}

// ---- FrameReader: the incremental parser must match the blocking path ----

/// One message per type the protocol defines, across every accepted frame
/// version, with payload sizes from empty through several-KB random bytes.
std::vector<Message> frame_reader_corpus() {
  const MessageType kTypes[] = {
      MessageType::kHello,          MessageType::kRequestWork,
      MessageType::kSubmitResult,   MessageType::kHeartbeat,
      MessageType::kFetchProblemData, MessageType::kGoodbye,
      MessageType::kFetchStats,     MessageType::kFetchBlobs,
      MessageType::kReplicaHello,   MessageType::kHelloAck,
      MessageType::kWorkAssignment, MessageType::kNoWorkAvailable,
      MessageType::kProblemData,    MessageType::kResultAck,
      MessageType::kHeartbeatAck,   MessageType::kShutdown,
      MessageType::kStatsSnapshot,  MessageType::kBlobData,
      MessageType::kReplicaSnapshot, MessageType::kWalAppend,
      MessageType::kRetryLater,     MessageType::kError,
  };
  Rng rng(2024);
  std::vector<Message> corpus;
  std::uint64_t correlation = 1;
  for (std::uint16_t version = kMinProtocolVersion;
       version <= kProtocolVersion; ++version) {
    for (MessageType type : kTypes) {
      Message m;
      m.type = type;
      m.version = version;
      m.correlation = correlation++;
      std::size_t len = static_cast<std::size_t>(rng.next_u64() % 4096);
      if (correlation % 5 == 0) len = 0;  // empty payloads are legal
      m.payload.resize(len);
      for (auto& b : m.payload) {
        b = static_cast<std::byte>(rng.next_u64() & 0xff);
      }
      corpus.push_back(std::move(m));
    }
  }
  return corpus;
}

std::vector<std::byte> concat_frames(const std::vector<Message>& msgs) {
  std::vector<std::byte> wire;
  for (const auto& m : msgs) {
    auto frame = encode_frame(m);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  return wire;
}

void expect_same_messages(const std::vector<Message>& got,
                          const std::vector<Message>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].type, want[i].type) << "message " << i;
    EXPECT_EQ(got[i].version, want[i].version) << "message " << i;
    EXPECT_EQ(got[i].correlation, want[i].correlation) << "message " << i;
    EXPECT_EQ(got[i].payload, want[i].payload) << "message " << i;
  }
}

TEST(FrameReader, EncodeFrameMatchesWriteMessageBytes) {
  // encode_frame (event-loop write path) and write_message (blocking path)
  // must put identical bytes on the wire for every type and version.
  Pair p;
  for (const auto& m : frame_reader_corpus()) {
    write_message(p.client, m);
    auto encoded = encode_frame(m);
    std::vector<std::byte> sent(encoded.size());
    p.server.recv_all(sent);
    EXPECT_EQ(sent, encoded) << to_string(m.type) << " v" << m.version;
  }
}

TEST(FrameReader, OneByteAtATimeDecodesEveryTypeAndVersion) {
  auto corpus = frame_reader_corpus();
  auto wire = concat_frames(corpus);
  FrameReader reader;
  std::vector<Message> got;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    reader.feed(std::span(&wire[i], 1), got);
  }
  EXPECT_FALSE(reader.mid_frame());
  EXPECT_EQ(reader.pending_bytes(), 0u);
  expect_same_messages(got, corpus);
}

TEST(FrameReader, RandomSplitPointsDecodeIdentically) {
  auto corpus = frame_reader_corpus();
  auto wire = concat_frames(corpus);
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    FrameReader reader;
    std::vector<Message> got;
    std::size_t off = 0;
    while (off < wire.size()) {
      // Mostly small slices (exercising header/payload boundaries), with
      // occasional multi-frame gulps.
      std::size_t n = 1 + static_cast<std::size_t>(
                              rng.next_u64() % (round % 3 == 0 ? 7 : 997));
      n = std::min(n, wire.size() - off);
      reader.feed(std::span(wire).subspan(off, n), got);
      off += n;
    }
    EXPECT_FALSE(reader.mid_frame()) << "round " << round;
    expect_same_messages(got, corpus);
  }
}

TEST(FrameReader, AgreesWithBlockingReadMessage) {
  // The same byte stream through both paths: read_message over a socket
  // and FrameReader over random slices must produce identical decodes.
  auto corpus = frame_reader_corpus();
  Pair p;
  std::thread sender([&] {
    for (const auto& m : corpus) write_message(p.client, m);
    p.client.shutdown_write();
  });
  std::vector<Message> blocking;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    blocking.push_back(read_message(p.server));
  }
  sender.join();
  FrameReader reader;
  std::vector<Message> incremental;
  auto wire = concat_frames(corpus);
  Rng rng(13);
  std::size_t off = 0;
  while (off < wire.size()) {
    std::size_t n = std::min<std::size_t>(1 + rng.next_u64() % 61,
                                          wire.size() - off);
    reader.feed(std::span(wire).subspan(off, n), incremental);
    off += n;
  }
  expect_same_messages(incremental, blocking);
}

TEST(FrameReader, MidFrameFlagTracksPartialFrames) {
  Message m;
  m.type = MessageType::kHeartbeat;
  m.correlation = 9;
  m.payload.resize(10, std::byte{0x41});
  auto wire = encode_frame(m);
  FrameReader reader;
  std::vector<Message> got;
  EXPECT_FALSE(reader.mid_frame());
  reader.feed(std::span(wire).first(1), got);
  EXPECT_TRUE(reader.mid_frame());  // header started
  reader.feed(std::span(wire).subspan(1, kFrameHeaderBytes), got);
  EXPECT_TRUE(reader.mid_frame());  // payload started
  EXPECT_EQ(reader.pending_bytes(), kFrameHeaderBytes + 1);
  reader.feed(std::span(wire).subspan(kFrameHeaderBytes + 1), got);
  EXPECT_FALSE(reader.mid_frame());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, m.payload);
}

TEST(FrameReader, RejectsBadMagicLikeBlockingPath) {
  std::vector<std::byte> garbage(kFrameHeaderBytes, std::byte{0x5a});
  FrameReader reader;
  std::vector<Message> got;
  try {
    reader.feed(garbage, got);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("0x5a5a5a5a"), std::string::npos)
        << e.what();
  }
}

TEST(FrameReader, RejectsPayloadCorruptionLikeBlockingPath) {
  Message m;
  m.type = MessageType::kSubmitResult;
  m.correlation = 4;
  m.payload.resize(64, std::byte{0x7});
  auto wire = encode_frame(m);
  wire[kFrameHeaderBytes + 5] ^= std::byte{0x20};  // flip a payload byte
  FrameReader reader;
  std::vector<Message> got;
  try {
    reader.feed(wire, got);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("SubmitResult"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(got.empty());
}

TEST(Fault, NoPlanInstalledByDefault) {
  EXPECT_EQ(installed_fault_plan(), nullptr);
}

TEST(Fault, DeterministicDecisionSequence) {
  FaultSpec spec;
  spec.seed = 42;
  spec.connect_refuse_prob = 0.5;
  FaultPlan a(spec);
  FaultPlan b(spec);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.refuse_connect(), b.refuse_connect()) << "draw " << i;
  }
}

TEST(Fault, ConnectRefusalInjected) {
  auto listener = TcpListener::bind(0);  // real listener: refusal is injected
  FaultSpec spec;
  spec.connect_refuse_prob = 1.0;
  ScopedFaultPlan scoped(spec);
  EXPECT_THROW(TcpStream::connect("127.0.0.1", listener.port()), IoError);
}

TEST(Fault, RecvDisconnectInjected) {
  Pair p;
  FaultSpec spec;
  spec.recv_disconnect_prob = 1.0;
  ScopedFaultPlan scoped(spec);
  p.client.send_all(as_bytes("data"));
  std::vector<std::byte> buf(4);
  EXPECT_THROW(p.server.recv_all(buf), ConnectionClosed);
}

TEST(Fault, TruncatedSendTearsFrameButPeerDetectsIt) {
  Pair p;
  Message out;
  out.type = MessageType::kHeartbeat;
  out.correlation = 5;
  ByteWriter w;
  w.str("some payload so there is something to truncate");
  out.payload = w.take();
  {
    FaultSpec spec;
    spec.send_truncate_prob = 1.0;
    ScopedFaultPlan scoped(spec);
    EXPECT_THROW(write_message(p.client, out), IoError);
  }
  // The peer sees a torn frame: either mid-read EOF or a CRC mismatch,
  // both surface as an exception — never a silently short message.
  EXPECT_THROW(read_message(p.server), Error);
}

TEST(Fault, CorruptionCaughtByFrameCrc) {
  Pair p;
  Message out;
  out.type = MessageType::kSubmitResult;
  out.correlation = 3;
  ByteWriter w;
  w.str("result bytes that must not be silently altered");
  out.payload = w.take();
  write_message(p.client, out);
  // EOF after the frame so a corrupted payload_len can't block the read.
  p.client.shutdown_write();
  FaultSpec spec;
  spec.corrupt_prob = 1.0;
  ScopedFaultPlan scoped(spec);
  // Every recv flips a byte; whichever part of the frame it hits (header
  // or payload), read_message must refuse to deliver the message.
  EXPECT_THROW(read_message(p.server), Error);
}

TEST(Fault, ZeroProbabilityPlanIsTransparent) {
  Pair p;
  FaultSpec spec;  // all probabilities zero
  ScopedFaultPlan scoped(spec);
  Message out;
  out.type = MessageType::kHeartbeat;
  out.correlation = 11;
  write_message(p.client, out);
  Message in = read_message(p.server);
  EXPECT_EQ(in.correlation, 11u);
}

}  // namespace
}  // namespace hdcs::net
