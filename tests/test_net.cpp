#include <gtest/gtest.h>

#include <thread>

#include "net/bulk.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"
#include "net/socket.hpp"
#include "util/rng.hpp"

namespace hdcs::net {
namespace {

/// Listener + connected client/server stream pair over loopback.
struct Pair {
  TcpListener listener = TcpListener::bind(0);
  TcpStream client;
  TcpStream server;

  Pair() {
    std::thread t([&] { client = TcpStream::connect("127.0.0.1", listener.port()); });
    auto accepted = listener.accept(2000);
    t.join();
    if (!accepted) throw IoError("accept timed out in test fixture");
    server = std::move(*accepted);
  }
};

TEST(Socket, EphemeralPortAssigned) {
  auto listener = TcpListener::bind(0);
  EXPECT_GT(listener.port(), 0);
}

TEST(Socket, AcceptTimesOutWithoutClient) {
  auto listener = TcpListener::bind(0);
  EXPECT_EQ(listener.accept(50), std::nullopt);
}

TEST(Socket, ConnectRefusedThrows) {
  auto listener = TcpListener::bind(0);
  std::uint16_t port = listener.port();
  listener.close();
  EXPECT_THROW(TcpStream::connect("127.0.0.1", port), IoError);
}

TEST(Socket, SendRecvRoundTrip) {
  Pair p;
  std::string msg = "hello over loopback";
  p.client.send_all(as_bytes(msg));
  std::vector<std::byte> buf(msg.size());
  p.server.recv_all(buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf.data()), buf.size()), msg);
}

TEST(Socket, RecvAllThrowsConnectionClosedOnEof) {
  Pair p;
  p.client.close();
  std::vector<std::byte> buf(4);
  EXPECT_THROW(p.server.recv_all(buf), ConnectionClosed);
}

TEST(Socket, ReadableReflectsPendingData) {
  Pair p;
  EXPECT_FALSE(p.server.readable(10));
  p.client.send_all(as_bytes("x"));
  EXPECT_TRUE(p.server.readable(500));
}

TEST(Message, RoundTripsFrame) {
  Pair p;
  Message out;
  out.type = MessageType::kRequestWork;
  out.correlation = 77;
  ByteWriter w;
  w.str("payload");
  out.payload = w.take();

  write_message(p.client, out);
  Message in = read_message(p.server);
  EXPECT_EQ(in.type, MessageType::kRequestWork);
  EXPECT_EQ(in.correlation, 77u);
  auto r = in.reader();
  EXPECT_EQ(r.str(), "payload");
}

TEST(Message, EmptyPayloadOk) {
  Pair p;
  Message out;
  out.type = MessageType::kHeartbeatAck;
  out.correlation = 1;
  write_message(p.client, out);
  Message in = read_message(p.server);
  EXPECT_EQ(in.type, MessageType::kHeartbeatAck);
  EXPECT_TRUE(in.payload.empty());
}

TEST(Message, BadMagicThrowsProtocolError) {
  Pair p;
  // A full v2 header's worth of garbage (24 bytes): read_message must
  // reject it on the magic, not block waiting for more header.
  std::vector<std::byte> garbage(kFrameHeaderBytes, std::byte{0x5a});
  p.client.send_all(garbage);
  try {
    read_message(p.server);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    // The offending magic is reported in hex, not decimal.
    EXPECT_NE(std::string(e.what()).find("0x5a5a5a5a"), std::string::npos)
        << e.what();
  }
}

TEST(Message, CorruptedPayloadFailsFrameCrc) {
  Pair p;
  // A well-formed v2 frame whose payload CRC doesn't match its payload:
  // corruption is detected at the frame layer, never delivered.
  ByteWriter w;
  std::string body = "payload-bytes";
  w.u32(kMagic);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(MessageType::kHeartbeat));
  w.u64(9);
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.u32(crc32(as_bytes(body)) ^ 0x1u);
  p.client.send_all(w.data());
  p.client.send_all(as_bytes(body));
  EXPECT_THROW(read_message(p.server), ProtocolError);
}

TEST(Message, SequentialFramesPreserved) {
  Pair p;
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.type = MessageType::kHeartbeat;
    m.correlation = static_cast<std::uint64_t>(i);
    write_message(p.client, m);
  }
  for (int i = 0; i < 10; ++i) {
    Message m = read_message(p.server);
    EXPECT_EQ(m.correlation, static_cast<std::uint64_t>(i));
  }
}

TEST(Message, ToStringCoversTypes) {
  EXPECT_STREQ(to_string(MessageType::kHello), "Hello");
  EXPECT_STREQ(to_string(MessageType::kWorkAssignment), "WorkAssignment");
  EXPECT_STREQ(to_string(static_cast<MessageType>(999)), "Unknown");
}

TEST(Bulk, Crc32KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE reference value).
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Bulk, RoundTripsLargeBlob) {
  Pair p;
  Rng rng(1);
  std::vector<std::byte> blob(3 * kBulkChunk + 12345);
  for (auto& b : blob) b = static_cast<std::byte>(rng.next_u64() & 0xff);

  std::thread sender([&] { send_blob(p.client, blob); });
  auto received = recv_blob(p.server);
  sender.join();
  EXPECT_EQ(received, blob);
}

TEST(Bulk, EmptyBlobOk) {
  Pair p;
  std::thread sender([&] { send_blob(p.client, {}); });
  auto received = recv_blob(p.server);
  sender.join();
  EXPECT_TRUE(received.empty());
}

TEST(Bulk, OversizeBlobRejected) {
  Pair p;
  std::vector<std::byte> blob(1024);
  std::thread sender([&] {
    try {
      send_blob(p.client, blob);
    } catch (const IoError&) {
      // receiver may close early; ignore
    }
  });
  EXPECT_THROW(recv_blob(p.server, 512), IoError);
  p.server.close();
  sender.join();
}

TEST(Bulk, CorruptedPayloadFailsCrc) {
  Pair p;
  // Hand-craft a blob frame with a wrong CRC.
  ByteWriter header;
  std::string body = "abcdefgh";
  header.u64(body.size());
  header.u32(crc32(as_bytes(body)) ^ 0xffffffffu);
  p.client.send_all(header.data());
  p.client.send_all(as_bytes(body));
  EXPECT_THROW(recv_blob(p.server), ProtocolError);
}

TEST(Fault, NoPlanInstalledByDefault) {
  EXPECT_EQ(installed_fault_plan(), nullptr);
}

TEST(Fault, DeterministicDecisionSequence) {
  FaultSpec spec;
  spec.seed = 42;
  spec.connect_refuse_prob = 0.5;
  FaultPlan a(spec);
  FaultPlan b(spec);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.refuse_connect(), b.refuse_connect()) << "draw " << i;
  }
}

TEST(Fault, ConnectRefusalInjected) {
  auto listener = TcpListener::bind(0);  // real listener: refusal is injected
  FaultSpec spec;
  spec.connect_refuse_prob = 1.0;
  ScopedFaultPlan scoped(spec);
  EXPECT_THROW(TcpStream::connect("127.0.0.1", listener.port()), IoError);
}

TEST(Fault, RecvDisconnectInjected) {
  Pair p;
  FaultSpec spec;
  spec.recv_disconnect_prob = 1.0;
  ScopedFaultPlan scoped(spec);
  p.client.send_all(as_bytes("data"));
  std::vector<std::byte> buf(4);
  EXPECT_THROW(p.server.recv_all(buf), ConnectionClosed);
}

TEST(Fault, TruncatedSendTearsFrameButPeerDetectsIt) {
  Pair p;
  Message out;
  out.type = MessageType::kHeartbeat;
  out.correlation = 5;
  ByteWriter w;
  w.str("some payload so there is something to truncate");
  out.payload = w.take();
  {
    FaultSpec spec;
    spec.send_truncate_prob = 1.0;
    ScopedFaultPlan scoped(spec);
    EXPECT_THROW(write_message(p.client, out), IoError);
  }
  // The peer sees a torn frame: either mid-read EOF or a CRC mismatch,
  // both surface as an exception — never a silently short message.
  EXPECT_THROW(read_message(p.server), Error);
}

TEST(Fault, CorruptionCaughtByFrameCrc) {
  Pair p;
  Message out;
  out.type = MessageType::kSubmitResult;
  out.correlation = 3;
  ByteWriter w;
  w.str("result bytes that must not be silently altered");
  out.payload = w.take();
  write_message(p.client, out);
  // EOF after the frame so a corrupted payload_len can't block the read.
  p.client.shutdown_write();
  FaultSpec spec;
  spec.corrupt_prob = 1.0;
  ScopedFaultPlan scoped(spec);
  // Every recv flips a byte; whichever part of the frame it hits (header
  // or payload), read_message must refuse to deliver the message.
  EXPECT_THROW(read_message(p.server), Error);
}

TEST(Fault, ZeroProbabilityPlanIsTransparent) {
  Pair p;
  FaultSpec spec;  // all probabilities zero
  ScopedFaultPlan scoped(spec);
  Message out;
  out.type = MessageType::kHeartbeat;
  out.correlation = 11;
  write_message(p.client, out);
  Message in = read_message(p.server);
  EXPECT_EQ(in.correlation, 11u);
}

}  // namespace
}  // namespace hdcs::net
