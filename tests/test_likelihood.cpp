#include "phylo/likelihood.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "phylo/distance.hpp"
#include "phylo/simulate.hpp"
#include "util/error.hpp"

namespace hdcs::phylo {
namespace {

std::shared_ptr<const SubstModel> jc() {
  return std::make_shared<SubstModel>(SubstModel::jc69());
}

TEST(Likelihood, TwoTaxaMatchesHandComputation) {
  // Tree: root with two leaves at branch lengths ta, tb. Site likelihood =
  // sum_x pi_x P(x->a) P(x->b). With JC this is computable by hand.
  Alignment aln;
  aln.names = {"a", "b"};
  aln.rows = {"AAAA", "AAAT"};  // 3 matches, 1 mismatch
  auto model = jc();
  LikelihoodEngine engine(compress(aln), model, RateModel::uniform());

  Tree tree;
  int root = tree.add_node(-1, 0);
  tree.add_node(root, 0.1, "a");
  tree.add_node(root, 0.2, "b");

  double t = 0.3;  // reversibility: only the path length a-b matters
  double p_same = 0.25 + 0.75 * std::exp(-4.0 * t / 3.0);
  double p_diff = 0.25 - 0.25 * std::exp(-4.0 * t / 3.0);
  // site L(match) = sum_x pi_x P_xa P_xb = 0.25 * P(a==b along t) per
  // reversibility: L = pi_a * P_ab(t) summed properly = 0.25 * p_same for
  // a match column, 0.25 * p_diff for a mismatch column.
  double expected = 3 * std::log(0.25 * p_same) + std::log(0.25 * p_diff);
  EXPECT_NEAR(engine.log_likelihood(tree), expected, 1e-10);
}

TEST(Likelihood, BranchLengthPositionIrrelevantForTwoTaxa) {
  // Reversibility: moving length between the two root branches changes
  // nothing as long as the path length is constant.
  Alignment aln;
  aln.names = {"a", "b"};
  aln.rows = {"ACGTACGTGG", "ACTTACGAGG"};
  auto model = jc();
  LikelihoodEngine engine(compress(aln), model, RateModel::uniform());

  auto make_tree = [](double ta, double tb) {
    Tree t;
    int root = t.add_node(-1, 0);
    t.add_node(root, ta, "a");
    t.add_node(root, tb, "b");
    return t;
  };
  auto t1 = make_tree(0.05, 0.25);
  auto t2 = make_tree(0.15, 0.15);
  auto t3 = make_tree(0.30, 0.00);
  double l1 = engine.log_likelihood(t1);
  EXPECT_NEAR(engine.log_likelihood(t2), l1, 1e-9);
  EXPECT_NEAR(engine.log_likelihood(t3), l1, 1e-9);
}

TEST(Likelihood, PatternCompressionInvariance) {
  // logL must be identical whether or not columns repeat (weights do the
  // work). Build an alignment with heavy repetition and compare against
  // the same alignment with columns de-duplicated manually via weights.
  Rng rng(5);
  auto tree = random_tree(rng, {6, 0.1, "t"});
  auto model = jc();
  auto aln = simulate_alignment(rng, tree, *model, RateModel::uniform(), {40});
  // Duplicate the alignment columns 3x.
  Alignment tripled = aln;
  for (auto& row : tripled.rows) row = row + row + row;

  LikelihoodEngine e1(compress(aln), model, RateModel::uniform());
  LikelihoodEngine e3(compress(tripled), model, RateModel::uniform());
  EXPECT_NEAR(e3.log_likelihood(tree), 3.0 * e1.log_likelihood(tree), 1e-8);
}

TEST(Likelihood, MissingDataGivesHigherLikelihoodThanMismatch) {
  auto model = jc();
  Tree tree;
  int root = tree.add_node(-1, 0);
  tree.add_node(root, 0.1, "a");
  tree.add_node(root, 0.1, "b");

  Alignment match{{"a", "b"}, {"A", "A"}};
  Alignment miss{{"a", "b"}, {"A", "-"}};
  Alignment mismatch{{"a", "b"}, {"A", "T"}};
  LikelihoodEngine em(compress(match), model, RateModel::uniform());
  LikelihoodEngine eg(compress(miss), model, RateModel::uniform());
  LikelihoodEngine ex(compress(mismatch), model, RateModel::uniform());
  double lm = em.log_likelihood(tree);
  double lg = eg.log_likelihood(tree);
  double lx = ex.log_likelihood(tree);
  // Missing data marginalizes to the stationary probability of the
  // observed base: exactly log(0.25) — above a match column (which still
  // pays P(no change)) and far above a mismatch column.
  EXPECT_NEAR(lg, std::log(0.25), 1e-12);
  EXPECT_GT(lg, lm);
  EXPECT_GT(lm, lx);
}

TEST(Likelihood, GammaRatesChangeLikelihood) {
  Rng rng(7);
  auto tree = random_tree(rng, {5, 0.15, "t"});
  auto model = jc();
  auto aln = simulate_alignment(rng, tree, *model, RateModel::uniform(), {200});
  LikelihoodEngine uniform(compress(aln), model, RateModel::uniform());
  LikelihoodEngine gamma(compress(aln), model, RateModel::gamma(0.3, 4));
  EXPECT_NE(uniform.log_likelihood(tree), gamma.log_likelihood(tree));
}

TEST(Likelihood, OptimizeBranchImprovesAndIsStable) {
  Rng rng(11);
  auto tree = random_tree(rng, {6, 0.1, "t"});
  auto model = jc();
  auto aln = simulate_alignment(rng, tree, *model, RateModel::uniform(), {300});
  LikelihoodEngine engine(compress(aln), model, RateModel::uniform());

  // Perturb one branch badly, then re-optimize it.
  auto edges = tree.edge_nodes();
  int victim = edges[2];
  double before_perturb = engine.log_likelihood(tree);
  tree.set_branch_length(victim, 5.0);
  double perturbed = engine.log_likelihood(tree);
  EXPECT_LT(perturbed, before_perturb);
  double after = engine.optimize_branch(tree, victim, 1e-6);
  EXPECT_GE(after, before_perturb - 1e-6);
  // Re-optimizing an optimal branch changes (almost) nothing.
  double again = engine.optimize_branch(tree, victim, 1e-6);
  EXPECT_NEAR(again, after, 1e-6);
}

TEST(Likelihood, OptimizeAllBranchesRecoversFromBadStart) {
  Rng rng(13);
  auto true_tree = random_tree(rng, {6, 0.12, "t"});
  auto model = jc();
  auto aln = simulate_alignment(rng, true_tree, *model, RateModel::uniform(), {400});
  LikelihoodEngine engine(compress(aln), model, RateModel::uniform());

  double true_logl = engine.log_likelihood(true_tree);
  // Same topology, all branch lengths wrong.
  auto bad = Tree::parse_newick(true_tree.to_newick());
  for (int e : bad.edge_nodes()) bad.set_branch_length(e, 1.0);
  EXPECT_LT(engine.log_likelihood(bad), true_logl);
  double recovered = engine.optimize_all_branches(bad, 3, 1e-5);
  // ML lengths fit the sample at least as well as the generating lengths.
  EXPECT_GE(recovered, true_logl - 0.5);
}

TEST(Likelihood, TrueTopologyBeatsRandomTopology) {
  Rng rng(17);
  auto true_tree = random_tree(rng, {8, 0.1, "t"});
  auto model = jc();
  auto aln = simulate_alignment(rng, true_tree, *model, RateModel::uniform(), {600});
  LikelihoodEngine engine(compress(aln), model, RateModel::uniform());

  // A different random topology over the same taxa, same optimisation love.
  Rng rng2(999);
  auto other = random_tree(rng2, {8, 0.1, "t"});
  if (rf_distance(true_tree, other) == 0) {
    GTEST_SKIP() << "random topology happened to match";
  }
  auto fit_true = Tree::parse_newick(true_tree.to_newick());
  double l_true = engine.optimize_all_branches(fit_true, 2, 1e-4);
  double l_other = engine.optimize_all_branches(other, 2, 1e-4);
  EXPECT_GT(l_true, l_other);
}

TEST(Likelihood, EvalCountAccumulates) {
  Alignment aln{{"a", "b"}, {"ACGT", "ACGT"}};
  auto model = jc();
  LikelihoodEngine engine(compress(aln), model, RateModel::uniform());
  Tree tree;
  int root = tree.add_node(-1, 0);
  tree.add_node(root, 0.1, "a");
  tree.add_node(root, 0.1, "b");
  EXPECT_EQ(engine.eval_count(), 0u);
  engine.log_likelihood(tree);
  engine.log_likelihood(tree);
  EXPECT_EQ(engine.eval_count(), 2u);
  EXPECT_GT(engine.cost_per_eval(2), 0.0);
}

TEST(Likelihood, ApiErrors) {
  Alignment aln{{"a", "b"}, {"A", "A"}};
  auto model = jc();
  LikelihoodEngine engine(compress(aln), model, RateModel::uniform());
  Tree tree;
  int root = tree.add_node(-1, 0);
  tree.add_node(root, 0.1, "a");
  tree.add_node(root, 0.1, "b");
  EXPECT_THROW(engine.optimize_branch(tree, tree.root()), InputError);

  // Leaf missing from the alignment.
  Tree bad;
  int r2 = bad.add_node(-1, 0);
  bad.add_node(r2, 0.1, "a");
  bad.add_node(r2, 0.1, "zzz");
  EXPECT_THROW(engine.log_likelihood(bad), InputError);

  EXPECT_THROW(LikelihoodEngine(compress(aln), nullptr, RateModel::uniform()),
               InputError);
}

TEST(Distance, JcDistanceBasics) {
  Alignment aln;
  aln.names = {"a", "b", "c"};
  aln.rows = {"AAAAAAAAAA", "AAAAAAAAAA", "AAAAATTTTT"};
  auto d = jc_distance_matrix(aln);
  EXPECT_DOUBLE_EQ(d[0][1], 0.0);
  EXPECT_GT(d[0][2], 0.0);
  EXPECT_DOUBLE_EQ(d[0][2], d[2][0]);
  // p = 0.5 -> d = -3/4 ln(1/3).
  EXPECT_NEAR(d[0][2], -0.75 * std::log(1.0 - 4.0 * 0.5 / 3.0), 1e-12);
}

TEST(Distance, SaturatedPairsCapped) {
  Alignment aln;
  aln.names = {"a", "b"};
  aln.rows = {"AAAA", "TTTT"};  // p = 1 > 3/4
  auto d = jc_distance_matrix(aln, 5.0);
  EXPECT_DOUBLE_EQ(d[0][1], 5.0);
}

TEST(Distance, NeighborJoiningRecoversAdditiveTree) {
  // Distances measured on a known tree are additive; NJ must recover the
  // topology exactly.
  Rng rng(23);
  auto true_tree = random_tree(rng, {8, 0.15, "t"});
  // Build the additive distance matrix by summing path lengths through
  // the lowest common ancestor.
  auto names = true_tree.leaf_names();
  std::vector<int> leaf_ids = true_tree.leaves();
  auto ancestors = [&](int node) {
    std::vector<int> up;  // node itself, then each ancestor up to the root
    while (true) {
      up.push_back(node);
      if (node == true_tree.root()) break;
      node = true_tree.parent(node);
    }
    return up;
  };
  std::size_t n = names.size();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      auto up_i = ancestors(leaf_ids[i]);
      std::set<int> set_i(up_i.begin(), up_i.end());
      int lca = leaf_ids[j];
      while (!set_i.count(lca)) lca = true_tree.parent(lca);
      double dist = 0;
      for (int a = leaf_ids[i]; a != lca; a = true_tree.parent(a)) {
        dist += true_tree.branch_length(a);
      }
      for (int b = leaf_ids[j]; b != lca; b = true_tree.parent(b)) {
        dist += true_tree.branch_length(b);
      }
      d[i][j] = d[j][i] = dist;
    }
  }
  auto nj = neighbor_joining(d, names);
  EXPECT_EQ(rf_distance(nj, true_tree), 0);
}

TEST(Distance, NjFromSimulatedAlignmentCloseToTruth) {
  Rng rng(29);
  auto true_tree = random_tree(rng, {10, 0.08, "t"});
  auto model = SubstModel::jc69();
  auto aln = simulate_alignment(rng, true_tree, model, RateModel::uniform(), {8000});
  auto nj = nj_tree(aln);
  // Long sequences: topology should be recovered or nearly so (random
  // trees can contain very short internal branches, so allow a couple of
  // unresolved splits).
  EXPECT_LE(rf_distance(nj, true_tree), 4);
}

TEST(Distance, NjInputValidation) {
  EXPECT_THROW(neighbor_joining({{0}}, {"a"}), InputError);
  EXPECT_THROW(neighbor_joining({{0, 1}, {1, 0}}, {"a", "b"}), InputError);
  std::vector<std::vector<double>> bad = {{0, 1}, {1, 0}, {1, 1}};
  EXPECT_THROW(neighbor_joining(bad, {"a", "b", "c"}), InputError);
}

TEST(Simulate, AlignmentShapeAndDeterminism) {
  Rng rng1(31), rng2(31);
  auto tree = random_tree(rng1, {7, 0.1, "t"});
  auto tree2 = random_tree(rng2, {7, 0.1, "t"});
  EXPECT_EQ(tree.to_newick(), tree2.to_newick());

  auto model = SubstModel::jc69();
  auto a1 = simulate_alignment(rng1, tree, model, RateModel::uniform(), {100});
  auto a2 = simulate_alignment(rng2, tree2, model, RateModel::uniform(), {100});
  EXPECT_EQ(a1.rows, a2.rows);
  EXPECT_EQ(a1.taxon_count(), 7u);
  EXPECT_EQ(a1.site_count(), 100u);
}

TEST(Simulate, CloseTaxaAreMoreSimilar) {
  // Two leaves on a cherry with tiny branches vs a distant leaf.
  auto tree = Tree::parse_newick("((a:0.01,b:0.01):0.5,c:0.5,d:0.5);");
  Rng rng(37);
  auto model = SubstModel::jc69();
  auto aln = simulate_alignment(rng, tree, model, RateModel::uniform(), {1000});
  auto d = jc_distance_matrix(aln);
  std::size_t a = 0, b = 1, c = 2;
  ASSERT_EQ(aln.names[a], "a");
  ASSERT_EQ(aln.names[b], "b");
  EXPECT_LT(d[a][b], d[a][c]);
}

TEST(Simulate, InvalidSpecs) {
  Rng rng(1);
  EXPECT_THROW(random_tree(rng, {2, 0.1, "t"}), InputError);
  auto tree = Tree::three_taxon("a", "b", "c");
  auto model = SubstModel::jc69();
  EXPECT_THROW(simulate_alignment(rng, tree, model, RateModel::uniform(), {0}),
               InputError);
}

}  // namespace
}  // namespace hdcs::phylo
