#include <gtest/gtest.h>

#include <cmath>

#include "phylo/matrix4.hpp"
#include "phylo/optimize.hpp"
#include "util/error.hpp"

namespace hdcs::phylo {
namespace {

TEST(Matrix4, IdentityAndMultiply) {
  Matrix4 id = Matrix4::identity();
  Matrix4 a;
  int v = 1;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) a(i, j) = v++;
  }
  EXPECT_EQ(Matrix4::max_abs_diff(a * id, a), 0.0);
  EXPECT_EQ(Matrix4::max_abs_diff(id * a, a), 0.0);
}

TEST(Matrix4, TransposeInvolution) {
  Matrix4 a;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) a(i, j) = i * 4 + j;
  }
  EXPECT_EQ(Matrix4::max_abs_diff(a.transpose().transpose(), a), 0.0);
  EXPECT_DOUBLE_EQ(a.transpose()(1, 2), a(2, 1));
}

TEST(SymEigen, ReconstructsDiagonalMatrix) {
  Matrix4 d;
  d(0, 0) = -3;
  d(1, 1) = 2;
  d(2, 2) = 0.5;
  d(3, 3) = 7;
  auto eig = sym_eigen(d);
  EXPECT_NEAR(eig.values[0], -3, 1e-12);
  EXPECT_NEAR(eig.values[3], 7, 1e-12);
}

TEST(SymEigen, FactorizationHolds) {
  // Symmetric matrix with known structure.
  Matrix4 a;
  double vals[4][4] = {{4, 1, 0.5, 0}, {1, 3, 1, 0.25}, {0.5, 1, 2, 1}, {0, 0.25, 1, 1}};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) a(i, j) = vals[i][j];
  }
  auto eig = sym_eigen(a);
  // Rebuild A = V diag(w) V^T.
  Matrix4 rebuilt;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double sum = 0;
      for (int k = 0; k < 4; ++k) {
        sum += eig.vectors(i, k) * eig.values[static_cast<std::size_t>(k)] *
               eig.vectors(j, k);
      }
      rebuilt(i, j) = sum;
    }
  }
  EXPECT_LT(Matrix4::max_abs_diff(rebuilt, a), 1e-10);
  // V orthogonal.
  Matrix4 vtv = eig.vectors.transpose() * eig.vectors;
  EXPECT_LT(Matrix4::max_abs_diff(vtv, Matrix4::identity()), 1e-10);
  // Eigenvalues ascending.
  for (int i = 1; i < 4; ++i) {
    EXPECT_LE(eig.values[static_cast<std::size_t>(i - 1)],
              eig.values[static_cast<std::size_t>(i)]);
  }
}

TEST(Brent, FindsQuadraticMinimum) {
  auto res = brent_minimize([](double x) { return (x - 2.5) * (x - 2.5) + 1; },
                            0.0, 10.0, 1e-8);
  EXPECT_NEAR(res.x, 2.5, 1e-6);
  EXPECT_NEAR(res.value, 1.0, 1e-10);
}

TEST(Brent, HandlesMinimumAtBoundary) {
  auto res = brent_minimize([](double x) { return x; }, 1.0, 5.0, 1e-8);
  EXPECT_NEAR(res.x, 1.0, 1e-5);
}

TEST(Brent, NonSmoothFunction) {
  auto res = brent_minimize([](double x) { return std::fabs(x - 1.7); }, 0.0, 4.0,
                            1e-8);
  EXPECT_NEAR(res.x, 1.7, 1e-5);
}

TEST(Brent, RejectsBadInterval) {
  EXPECT_THROW(brent_minimize([](double x) { return x; }, 2.0, 1.0), InputError);
}

TEST(LogGamma, KnownValues) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);           // Gamma(1) = 1
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);           // Gamma(2) = 1
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);  // Gamma(5) = 24
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  EXPECT_THROW(log_gamma(0.0), InputError);
}

TEST(GammaP, KnownValues) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  // Monotone increasing in x.
  EXPECT_LT(gamma_p(0.5, 0.5), gamma_p(0.5, 1.5));
  // P(a, inf) -> 1.
  EXPECT_NEAR(gamma_p(3.0, 100.0), 1.0, 1e-12);
}

TEST(GammaPInverse, RoundTripsGammaP) {
  for (double a : {0.3, 1.0, 2.5}) {
    for (double p : {0.1, 0.5, 0.9}) {
      double x = gamma_p_inverse(a, p);
      EXPECT_NEAR(gamma_p(a, x), p, 1e-8) << "a=" << a << " p=" << p;
    }
  }
  EXPECT_DOUBLE_EQ(gamma_p_inverse(1.0, 0.0), 0.0);
  EXPECT_THROW(gamma_p_inverse(1.0, 1.0), InputError);
}

TEST(DiscreteGamma, MeanIsOne) {
  for (double alpha : {0.2, 0.5, 1.0, 2.0, 10.0}) {
    for (int k : {1, 2, 4, 8}) {
      auto rates = discrete_gamma_rates(alpha, k);
      ASSERT_EQ(rates.size(), static_cast<std::size_t>(k));
      double mean = 0;
      for (double r : rates) mean += r / k;
      EXPECT_NEAR(mean, 1.0, 1e-8) << "alpha=" << alpha << " k=" << k;
      // Rates strictly increasing across categories.
      for (int i = 1; i < k; ++i) {
        EXPECT_GT(rates[static_cast<std::size_t>(i)],
                  rates[static_cast<std::size_t>(i - 1)]);
      }
    }
  }
}

TEST(DiscreteGamma, SmallAlphaIsMoreSkewed) {
  auto low = discrete_gamma_rates(0.2, 4);   // strong heterogeneity
  auto high = discrete_gamma_rates(10.0, 4);  // near-uniform
  EXPECT_LT(low.front(), high.front());
  EXPECT_GT(low.back(), high.back());
  EXPECT_NEAR(high.front(), 1.0, 0.5);  // alpha=10: rates cluster near 1
}

TEST(DiscreteGamma, YangReferenceValues) {
  // Yang (1994) Table: alpha = 0.5, k = 4 mean category rates.
  auto rates = discrete_gamma_rates(0.5, 4);
  EXPECT_NEAR(rates[0], 0.0334, 0.001);
  EXPECT_NEAR(rates[1], 0.2519, 0.001);
  EXPECT_NEAR(rates[2], 0.8203, 0.001);
  EXPECT_NEAR(rates[3], 2.8944, 0.001);
}

TEST(DiscreteGamma, InvalidInputs) {
  EXPECT_THROW(discrete_gamma_rates(0.0, 4), InputError);
  EXPECT_THROW(discrete_gamma_rates(1.0, 0), InputError);
}

}  // namespace
}  // namespace hdcs::phylo
