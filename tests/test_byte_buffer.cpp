#include "util/byte_buffer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace hdcs {
namespace {

TEST(ByteBuffer, RoundTripsPrimitives) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(-123456789012345ll);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -123456789012345ll);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, RoundTripsSpecialDoubles) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-std::numeric_limits<double>::infinity());
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());

  ByteReader r(w.data());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(r.f64()));
  double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

TEST(ByteBuffer, RoundTripsStringsAndBytes) {
  ByteWriter w;
  w.str("hello");
  w.str("");
  w.str(std::string("with\0null", 9));
  std::vector<std::byte> blob = {std::byte{1}, std::byte{2}, std::byte{3}};
  w.bytes(blob);

  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string("with\0null", 9));
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, RoundTripsVectors) {
  ByteWriter w;
  w.f64_vec({1.5, -2.5, 0.0});
  w.u32_vec({1, 2, 3});
  w.u64_vec({});
  w.str_vec({"a", "bb", ""});

  ByteReader r(w.data());
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(r.u32_vec(), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(r.u64_vec().empty());
  EXPECT_EQ(r.str_vec(), (std::vector<std::string>{"a", "bb", ""}));
}

TEST(ByteBuffer, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  const auto& buf = w.data();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(buf[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(buf[3]), 0x01);
}

TEST(ByteBuffer, UnderflowThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW(r.u8(), SerializationError);
}

TEST(ByteBuffer, TruncatedStringThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow
  ByteReader r(w.data());
  EXPECT_THROW(r.str(), SerializationError);
}

TEST(ByteBuffer, ExpectEndCatchesTrailingBytes) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_end(), SerializationError);
  r.u8();
  EXPECT_NO_THROW(r.expect_end());
}

TEST(ByteBuffer, RawBorrowsWithoutCopy) {
  ByteWriter w;
  w.raw(as_bytes("abcdef"));
  ByteReader r(w.data());
  auto view = r.raw(3);
  EXPECT_EQ(view.data(), w.data().data());
  EXPECT_EQ(r.remaining(), 3u);
}

}  // namespace
}  // namespace hdcs
