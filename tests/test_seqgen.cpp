#include "bio/seqgen.hpp"

#include <gtest/gtest.h>

#include "bio/align.hpp"
#include "util/error.hpp"

namespace hdcs::bio {
namespace {

TEST(SeqGen, RandomResiduesValidAndDeterministic) {
  Rng a(42), b(42);
  auto s1 = random_residues(a, 500, Alphabet::kProtein);
  auto s2 = random_residues(b, 500, Alphabet::kProtein);
  EXPECT_EQ(s1, s2);
  for (char c : s1) EXPECT_TRUE(is_valid_residue(c, Alphabet::kProtein));
  // No ambiguity codes in generated data.
  EXPECT_EQ(s1.find('X'), std::string::npos);
  EXPECT_EQ(s1.find('B'), std::string::npos);
}

TEST(SeqGen, DnaUsesAcgtOnly) {
  Rng rng(7);
  auto s = random_residues(rng, 1000, Alphabet::kDna);
  for (char c : s) {
    EXPECT_NE(std::string_view("ACGT").find(c), std::string_view::npos);
  }
}

TEST(SeqGen, MutateZeroRatesIsIdentity) {
  Rng rng(1);
  std::string orig = random_residues(rng, 100, Alphabet::kDna);
  EXPECT_EQ(mutate(rng, orig, Alphabet::kDna, 0.0, 0.0), orig);
}

TEST(SeqGen, MutateChangesRoughlyExpectedFraction) {
  Rng rng(3);
  std::string orig = random_residues(rng, 5000, Alphabet::kProtein);
  auto mutated = mutate(rng, orig, Alphabet::kProtein, 0.2, 0.0);
  ASSERT_EQ(mutated.size(), orig.size());
  std::size_t diff = 0;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    if (orig[i] != mutated[i]) ++diff;
  }
  // 20% mutation rate, but a mutation can draw the same residue (1/20).
  double expected = 0.2 * (1.0 - 1.0 / 20);
  EXPECT_NEAR(diff / double(orig.size()), expected, 0.03);
}

TEST(SeqGen, MutateNeverReturnsEmpty) {
  Rng rng(5);
  auto out = mutate(rng, "A", Alphabet::kDna, 0.0, 1.0);
  EXPECT_FALSE(out.empty());
}

TEST(SeqGen, DatabaseContainsPlantedHomologs) {
  Rng rng(11);
  auto queries = make_queries(rng, 2, 100, Alphabet::kProtein);
  DatabaseSpec spec;
  spec.num_sequences = 50;
  spec.mean_length = 120;
  spec.planted_homologs_per_query = 3;
  auto db = make_database(rng, spec, queries);
  EXPECT_EQ(db.size(), 50u + 2 * 3);

  int homologs = 0;
  for (const auto& s : db) {
    if (s.id.rfind("hom_", 0) == 0) ++homologs;
    EXPECT_GE(s.residues.size(), 1u);
  }
  EXPECT_EQ(homologs, 6);
}

TEST(SeqGen, HomologsScoreAboveBackground) {
  // The planted-family construction must actually create detectable
  // similarity, or DSEARCH ranking tests would be meaningless.
  Rng rng(13);
  auto queries = make_queries(rng, 1, 150, Alphabet::kProtein);
  DatabaseSpec spec;
  spec.num_sequences = 30;
  spec.mean_length = 150;
  spec.planted_homologs_per_query = 3;
  spec.mutation_rate = 0.15;
  auto db = make_database(rng, spec, queries);

  auto scheme = ScoringScheme::blosum62();
  std::int64_t worst_homolog = INT64_MAX;
  std::int64_t best_background = INT64_MIN;
  for (const auto& s : db) {
    auto score = sw_score(queries[0].residues, s.residues, scheme);
    if (s.id.rfind("hom_", 0) == 0) {
      worst_homolog = std::min(worst_homolog, score);
    } else {
      best_background = std::max(best_background, score);
    }
  }
  EXPECT_GT(worst_homolog, best_background);
}

TEST(SeqGen, MinLengthRespected) {
  Rng rng(17);
  DatabaseSpec spec;
  spec.num_sequences = 200;
  spec.mean_length = 60;
  spec.min_length = 50;
  auto db = make_database(rng, spec, {});
  for (const auto& s : db) EXPECT_GE(s.residues.size(), 50u);
}

TEST(SeqGen, BadSpecRejected) {
  Rng rng(1);
  DatabaseSpec spec;
  spec.mean_length = 10;
  spec.min_length = 50;
  EXPECT_THROW(make_database(rng, spec, {}), InputError);
}

}  // namespace
}  // namespace hdcs::bio
