// Observability layer: metrics registry, JSONL tracing, MSG_STATS.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "dist/client.hpp"
#include "dist/server.hpp"
#include "dist/wire.hpp"
#include "net/message.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fleet.hpp"
#include "sim/sim_driver.hpp"
#include "tests/toy_problem.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace hdcs::obs {
namespace {

TEST(Metrics, CounterConcurrentWriters) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPer = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPer);
}

TEST(Metrics, HistogramConcurrentObservers) {
  Histogram h({1.0, 10.0, 100.0});
  constexpr int kThreads = 4;
  constexpr int kPer = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) h.observe(static_cast<double>(t * 30 + 1));
    });
  }
  for (auto& t : threads) t.join();
  auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPer);
  std::uint64_t bucket_total = 0;
  for (auto c : s.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(Metrics, HistogramQuantilesAndBounds) {
  Histogram h(Histogram::latency_bounds());
  for (int i = 0; i < 100; ++i) h.observe(0.001);
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  auto s = h.snapshot();
  EXPECT_LE(s.quantile(0.5), 0.002);
  EXPECT_GE(s.quantile(0.99), 1.0);
  EXPECT_NEAR(s.mean(), (100 * 0.001 + 10 * 5.0) / 110.0, 1e-9);
  EXPECT_THROW(Histogram({}), InputError);
  EXPECT_THROW(Histogram({2.0, 1.0}), InputError);
}

TEST(Metrics, RegistryStableReferencesAcrossReset) {
  auto& reg = Registry::global();
  Counter& a = reg.counter("test.obs.stable");
  Counter& b = reg.counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  a.inc(7);
  reg.reset_values();
  EXPECT_EQ(a.value(), 0u);  // reference survives, value cleared
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, RegistryConcurrentFindOrCreate) {
  auto& reg = Registry::global();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (int i = 0; i < 1000; ++i) reg.counter("test.obs.race").inc();
      reg.histogram("test.obs.race_h", Histogram::latency_bounds()).observe(0.01);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(reg.counter("test.obs.race").value(), 8000u);
}

TEST(Metrics, RenderFormats) {
  auto& reg = Registry::global();
  reg.counter("test.obs.render").inc(5);
  reg.gauge("test.obs.render_g").set(2.5);
  reg.histogram("test.obs.render_h", {1.0}).observe(0.5);
  auto text = reg.render_text();
  EXPECT_NE(text.find("test.obs.render 5"), std::string::npos);
  auto json = reg.render_json();
  EXPECT_NE(json.find("\"test.obs.render\":5"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos);
}

TEST(Jsonl, RoundTripScalars) {
  auto fields = parse_flat_json(
      R"({"s":"a\"b\\c\n","n":-12.5,"i":42,"b":true,"z":null})");
  EXPECT_EQ(fields.at("s").as_string(), "a\"b\\c\n");
  EXPECT_DOUBLE_EQ(fields.at("n").as_number(), -12.5);
  EXPECT_DOUBLE_EQ(fields.at("i").as_number(), 42);
  EXPECT_TRUE(fields.at("b").b);
  EXPECT_EQ(fields.at("z").kind, JsonValue::Kind::kNull);
}

TEST(Jsonl, EscapeThenParse) {
  std::string nasty = "tab\t quote\" slash\\ newline\n ctrl\x01";
  std::string line = "{\"k\":\"" + json_escape(nasty) + "\"}";
  EXPECT_EQ(parse_flat_json(line).at("k").as_string(), nasty);
}

TEST(Jsonl, MalformedInputThrows) {
  EXPECT_THROW(parse_flat_json("not json"), ProtocolError);
  EXPECT_THROW(parse_flat_json("{\"k\":}"), ProtocolError);
  EXPECT_THROW(parse_flat_json("{\"k\":1"), ProtocolError);
  EXPECT_THROW(parse_flat_json("{\"k\":{\"nested\":1}}"), ProtocolError);
}

TEST(Tracer, MemoryRoundTripCarriesSchemaVersion) {
  Tracer tracer;
  tracer.to_memory();
  tracer.event(1.5, "unit_issued").u64("client", 3).num("cost_ops", 1e6);
  tracer.event(2.0, "unit_completed")
      .u64("client", 3)
      .str("note", "done \"ok\"")
      .boolean("cached", false);
  auto lines = tracer.lines();
  ASSERT_EQ(lines.size(), 2u);

  auto rec = parse_trace_line(lines[0]);
  EXPECT_EQ(rec.schema, kTraceSchemaVersion);
  EXPECT_DOUBLE_EQ(rec.t, 1.5);
  EXPECT_EQ(rec.ev, "unit_issued");
  EXPECT_DOUBLE_EQ(rec.number("client"), 3);
  EXPECT_DOUBLE_EQ(rec.number("cost_ops"), 1e6);

  auto rec2 = parse_trace_line(lines[1]);
  EXPECT_EQ(rec2.text("note"), "done \"ok\"");
  EXPECT_FALSE(rec2.fields.at("cached").b);
}

TEST(Tracer, FileSinkWritesJsonl) {
  std::string path = testing::TempDir() + "hdcs_trace_test.jsonl";
  std::remove(path.c_str());
  {
    Tracer tracer;
    tracer.open(path);
    tracer.event(0.25, "checkpoint").u64("problems", 2);
    tracer.close();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto rec = parse_trace_line(line);
  EXPECT_EQ(rec.ev, "checkpoint");
  EXPECT_DOUBLE_EQ(rec.number("problems"), 2);
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(Tracer, DisabledTracerIsANoOp) {
  Tracer tracer;  // no sink
  EXPECT_FALSE(tracer.enabled());
  tracer.event(1.0, "unit_issued").u64("client", 1).str("k", "v");
  EXPECT_TRUE(tracer.lines().empty());
}

TEST(Tracer, ConcurrentEmitters) {
  Tracer tracer;
  tracer.to_memory();
  constexpr int kThreads = 8;
  constexpr int kPer = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        tracer.event(static_cast<double>(i), "unit_issued")
            .u64("client", static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  auto lines = tracer.lines();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads) * kPer);
  for (const auto& line : lines) {
    auto rec = parse_trace_line(line);  // every line individually valid
    EXPECT_EQ(rec.schema, kTraceSchemaVersion);
  }
}

TEST(Tracer, LogMirrorEmitsStructuredEvents) {
  Tracer tracer;
  tracer.to_memory();
  mirror_logs_to_tracer(&tracer);
  LOG_WARN("observability test message " << 42);
  mirror_logs_to_tracer(nullptr);  // restore plain stderr logging
  LOG_WARN("not mirrored");
  auto lines = tracer.lines();
  ASSERT_EQ(lines.size(), 1u);
  auto rec = parse_trace_line(lines[0]);
  EXPECT_EQ(rec.ev, "log");
  EXPECT_EQ(rec.text("level"), "WARN");
  EXPECT_EQ(rec.text("msg"), "observability test message 42");
}

}  // namespace
}  // namespace hdcs::obs

namespace hdcs::dist {
namespace {

TEST(Wire, FetchStatsRoundTrip) {
  FetchStatsPayload p;
  p.include_clients = false;
  auto decoded = decode_fetch_stats(encode_fetch_stats(p, 17));
  EXPECT_FALSE(decoded.include_clients);

  StatsSnapshotPayload snap;
  snap.json = R"({"schema":1,"metrics":{}})";
  auto m = encode_stats_snapshot(snap, 17);
  EXPECT_EQ(m.correlation, 17u);
  EXPECT_EQ(decode_stats_snapshot(m).json, snap.json);
  EXPECT_THROW(decode_fetch_stats(m), ProtocolError);
}

TEST(MsgStats, LiveServerServesSnapshot) {
  test::register_toy_algorithm();
  ServerConfig cfg;
  cfg.scheduler.bounds.min_ops = 1000;
  cfg.policy_spec = "adaptive:0.05";
  cfg.tick_interval_s = 0.05;
  cfg.no_work_retry_s = 0.02;
  Server server(cfg);
  server.start();
  auto dm = std::make_shared<test::ToySumDataManager>(500000);
  auto pid = server.submit_problem(dm);

  ClientConfig ccfg;
  ccfg.server_port = server.port();
  ccfg.name = "stats-worker";
  Client(ccfg).run();
  ASSERT_TRUE(server.wait_for_problem(pid, 30.0));

  // A bare monitoring connection (no Hello) asks for MSG_STATS.
  auto stream = net::TcpStream::connect("127.0.0.1", server.port());
  net::write_message(stream, encode_fetch_stats(FetchStatsPayload{}, 99));
  auto reply = net::read_message(stream);
  EXPECT_EQ(reply.type, net::MessageType::kStatsSnapshot);
  EXPECT_EQ(reply.correlation, 99u);
  auto snap = decode_stats_snapshot(reply);

  EXPECT_NE(snap.json.find("\"scheduler\":{"), std::string::npos);
  EXPECT_NE(snap.json.find("\"units_issued\":"), std::string::npos);
  EXPECT_NE(snap.json.find("\"stats-worker\""), std::string::npos);
  EXPECT_NE(snap.json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(snap.json.find("net.frames_received"), std::string::npos);
  EXPECT_NE(snap.json.find("server.handle_s.RequestWork"), std::string::npos);
  EXPECT_NE(snap.json.find("\"units_pending\":"), std::string::npos);
  // Histograms export computed quantiles alongside their raw buckets.
  EXPECT_NE(snap.json.find("\"quantiles\":{\"p50\":"), std::string::npos);
  // A v5 donor completed units, so the per-phase span histograms exist.
  EXPECT_NE(snap.json.find("\"unit.compute_s\":"), std::string::npos);
  EXPECT_NE(snap.json.find("\"unit.submit_s\":"), std::string::npos);

  // The in-process accessor sees the same per-client table.
  auto clients = server.client_stats();
  ASSERT_EQ(clients.size(), 1u);
  EXPECT_EQ(clients[0].name, "stats-worker");
  EXPECT_GT(clients[0].stats.units_completed, 0);
  EXPECT_FALSE(clients[0].active);  // said Goodbye after completion
  server.stop();
}

TEST(MsgStats, ServerTraceRecordsFullClientLifecycle) {
  test::register_toy_algorithm();
  obs::Tracer tracer;
  tracer.to_memory();
  ServerConfig cfg;
  cfg.scheduler.bounds.min_ops = 1000;
  cfg.policy_spec = "fixed:100000";
  cfg.tick_interval_s = 0.05;
  cfg.no_work_retry_s = 0.02;
  cfg.tracer = &tracer;
  Server server(cfg);
  server.start();
  auto dm = std::make_shared<test::ToySumDataManager>(400000);
  auto pid = server.submit_problem(dm);

  ClientConfig ccfg;
  ccfg.server_port = server.port();
  ccfg.name = "traced";
  Client(ccfg).run();
  ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
  server.stop();

  auto lines = tracer.lines();
  ASSERT_FALSE(lines.empty());
  int joined = 0, left = 0, issued = 0, completed = 0;
  for (const auto& line : lines) {
    auto rec = obs::parse_trace_line(line);
    EXPECT_EQ(rec.schema, obs::kTraceSchemaVersion);
    if (rec.ev == "client_joined") ++joined;
    if (rec.ev == "client_left") ++left;
    if (rec.ev == "unit_issued") ++issued;
    if (rec.ev == "unit_completed") ++completed;
  }
  EXPECT_EQ(joined, 1);
  EXPECT_EQ(left, 1);  // Goodbye + handler teardown must not double-emit
  EXPECT_EQ(issued, 4);  // 400000 ops in fixed:100000 units
  EXPECT_EQ(completed, 4);
}

TEST(MsgStats, UnitProfileSharedSchemaAcrossServerAndSim) {
  test::register_toy_algorithm();

  // Real TCP run: one v5 donor against a live server, trace collected.
  obs::Tracer server_tracer;
  server_tracer.to_memory();
  {
    ServerConfig cfg;
    cfg.scheduler.bounds.min_ops = 1000;
    cfg.policy_spec = "fixed:100000";
    cfg.tick_interval_s = 0.05;
    cfg.no_work_retry_s = 0.02;
    cfg.tracer = &server_tracer;
    Server server(cfg);
    server.start();
    auto pid = server.submit_problem(std::make_shared<test::ToySumDataManager>(400000));
    ClientConfig ccfg;
    ccfg.server_port = server.port();
    ccfg.name = "profiled";
    Client(ccfg).run();
    ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
    server.stop();
  }

  // Simulated run (virtual clock), same workload shape.
  obs::Tracer sim_tracer;
  sim_tracer.to_memory();
  {
    sim::SimConfig simcfg;
    simcfg.reference_ops_per_sec = 1e6;
    simcfg.scheduler.lease_timeout = 1e5;
    simcfg.scheduler.bounds.min_ops = 1;
    simcfg.policy_spec = "fixed:100000";
    simcfg.tracer = &sim_tracer;
    sim::SimDriver sim(simcfg, sim::lab_fleet(2));
    sim.add_problem(std::make_shared<test::ToySumDataManager>(400000));
    sim.run();
  }

  // Decomposition invariant: the six phases tile the lease. Wall-clock
  // runs may carry a small residual (the donor's queue_wait starts before
  // the lease clock); virtual-time runs tile it exactly (the 1e-6 slack is
  // only the %.9g rounding of the JSONL encoder).
  auto check_sums = [](const std::vector<std::string>& lines, double tol) {
    int profiles = 0;
    for (const auto& line : lines) {
      auto rec = obs::parse_trace_line(line);
      if (rec.ev != "unit_profile") continue;
      ++profiles;
      double sum = rec.number("queue_wait_s") + rec.number("blob_fetch_s") +
                   rec.number("decompress_s") + rec.number("compute_s") +
                   rec.number("encode_s") + rec.number("submit_s");
      EXPECT_NEAR(sum, rec.number("elapsed_s"), tol);
      EXPECT_GE(rec.number("submit_s"), 0.0);
    }
    return profiles;
  };
  EXPECT_GT(check_sums(server_tracer.lines(), 10e-3), 0);
  EXPECT_GT(check_sums(sim_tracer.lines(), 1e-6), 0);

  // The pinned schema: both emitters must produce unit_profile with
  // exactly these fields so one tool (trace_summary --critical-path,
  // --perfetto) can read either trace.
  auto profile_fields = [](const std::vector<std::string>& lines) {
    std::vector<std::string> keys;
    for (const auto& line : lines) {
      auto rec = obs::parse_trace_line(line);
      if (rec.ev != "unit_profile") continue;
      for (const auto& [k, v] : rec.fields) {
        if (k != "schema" && k != "t" && k != "ev") keys.push_back(k);
      }
      return keys;  // fields is an ordered map: keys come out sorted
    }
    return keys;
  };
  auto server_keys = profile_fields(server_tracer.lines());
  auto sim_keys = profile_fields(sim_tracer.lines());
  std::vector<std::string> expected_keys = {
      "blob_fetch_s", "client", "compute_s",   "decompress_s",
      "elapsed_s",    "encode_s", "problem",   "queue_wait_s",
      "saturations",  "stage",  "submit_s",    "threads", "unit"};
  EXPECT_EQ(server_keys, expected_keys);
  EXPECT_EQ(sim_keys, expected_keys);
}

TEST(MsgStats, CheckpointEventsShareSchemaAcrossServerAndSim) {
  test::register_toy_algorithm();
  std::string path = ::testing::TempDir() + "hdcs_obs_ckpt.bin";
  std::remove(path.c_str());
  auto& saves = obs::Registry::global().counter("checkpoint.saves");
  auto& requeued =
      obs::Registry::global().counter("checkpoint.restore_units_requeued");
  std::uint64_t saves_before = saves.value();
  std::uint64_t requeued_before = requeued.value();

  // Server (wall clock): save once with a unit in flight, restart from the
  // file, and collect the checkpoint_saved / checkpoint_restored events.
  obs::Tracer server_tracer;
  server_tracer.to_memory();
  ServerConfig cfg;
  cfg.scheduler.bounds.min_ops = 1000;
  cfg.policy_spec = "fixed:100000";
  cfg.tick_interval_s = 0.05;
  cfg.no_work_retry_s = 0.02;
  cfg.tracer = &server_tracer;
  cfg.checkpoint_path = path;
  {
    Server server(cfg);
    server.start();
    server.submit_problem(std::make_shared<test::ToySumDataManager>(400000));
    ClientConfig ccfg;
    ccfg.server_port = server.port();
    ccfg.name = "saver";
    ccfg.crash_after_units = 1;  // leaves its unit in flight
    Client(ccfg).run();
    ASSERT_TRUE(server.save_checkpoint());
    server.stop();
  }
  {
    Server server(cfg);  // restore_on_start picks the file up
    server.submit_problem(std::make_shared<test::ToySumDataManager>(400000));
    server.start();
    server.stop();
  }
  EXPECT_GE(saves.value(), saves_before + 1);
  EXPECT_GE(requeued.value(), requeued_before + 1);
  EXPECT_GT(obs::Registry::global().gauge("checkpoint.bytes").value(), 0.0);

  // Simulator (virtual clock): periodic autosaves during a toy run.
  obs::Tracer sim_tracer;
  sim_tracer.to_memory();
  sim::SimConfig simcfg;
  simcfg.reference_ops_per_sec = 1e6;
  simcfg.scheduler.lease_timeout = 1e5;
  simcfg.scheduler.bounds.min_ops = 1;
  simcfg.policy_spec = "adaptive:5";
  simcfg.tracer = &sim_tracer;
  simcfg.checkpoint_interval_s = 0.25;  // well inside the virtual makespan
  sim::SimDriver sim(simcfg, sim::lab_fleet(4));
  sim.add_problem(std::make_shared<test::ToySumDataManager>(5000000));
  auto outcome = sim.run();
  EXPECT_GT(outcome.checkpoints_saved, 0u);

  // The pinned schema: both emitters must produce checkpoint_saved with
  // exactly these fields so one tool can read either trace.
  auto saved_fields = [](const std::vector<std::string>& lines,
                         const char* ev) {
    std::vector<std::string> keys;
    for (const auto& line : lines) {
      auto rec = obs::parse_trace_line(line);
      if (rec.ev != ev) continue;
      for (const auto& [k, v] : rec.fields) {
        if (k != "schema" && k != "t" && k != "ev") keys.push_back(k);
      }
      return keys;  // fields is an ordered map: keys come out sorted
    }
    return keys;
  };
  auto server_keys = saved_fields(server_tracer.lines(), "checkpoint_saved");
  auto sim_keys = saved_fields(sim_tracer.lines(), "checkpoint_saved");
  ASSERT_FALSE(server_keys.empty()) << "server emitted no checkpoint_saved";
  ASSERT_FALSE(sim_keys.empty()) << "sim emitted no checkpoint_saved";
  EXPECT_EQ(server_keys, sim_keys);
  std::vector<std::string> expected_keys = {"bytes", "problems",
                                            "units_in_flight"};
  EXPECT_EQ(server_keys, expected_keys);

  auto restored_keys =
      saved_fields(server_tracer.lines(), "checkpoint_restored");
  std::vector<std::string> expected_restore = {"problems", "units_quarantined",
                                               "units_requeued"};
  EXPECT_EQ(restored_keys, expected_restore);
  std::remove(path.c_str());
}

TEST(MsgStats, QuarantineSurfacedInStatsSnapshot) {
  test::register_toy_algorithm();
  ServerConfig cfg;
  cfg.scheduler.bounds.min_ops = 1000;
  cfg.policy_spec = "fixed:100000";
  cfg.tick_interval_s = 0.05;
  cfg.no_work_retry_s = 0.02;
  Server server(cfg);
  server.start();
  server.submit_problem(std::make_shared<test::ToySumDataManager>(400000));

  auto stream = net::TcpStream::connect("127.0.0.1", server.port());
  net::write_message(stream, encode_fetch_stats(FetchStatsPayload{}, 7));
  auto snap = decode_stats_snapshot(net::read_message(stream));
  EXPECT_NE(snap.json.find("\"units_quarantined\":"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace hdcs::dist
