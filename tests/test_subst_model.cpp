#include "phylo/subst_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace hdcs::phylo {
namespace {

std::vector<SubstModel> all_models() {
  Vec4 pi = {0.35, 0.15, 0.20, 0.30};
  std::vector<SubstModel> models;
  models.push_back(SubstModel::jc69());
  models.push_back(SubstModel::f81(pi));
  models.push_back(SubstModel::k80(2.5));
  models.push_back(SubstModel::hky85(pi, 3.0));
  models.push_back(SubstModel::f84(pi, 1.5));
  models.push_back(SubstModel::tn93(pi, 4.0, 2.0));
  models.push_back(SubstModel::gtr(pi, {1.2, 3.1, 0.8, 1.1, 4.0, 1.0}));
  return models;
}

TEST(SubstModel, TransitionProbsAtZeroIsIdentity) {
  for (const auto& m : all_models()) {
    auto p = m.transition_probs(0.0);
    EXPECT_LT(Matrix4::max_abs_diff(p, Matrix4::identity()), 1e-9) << m.name();
  }
}

TEST(SubstModel, RowsAreProbabilityDistributions) {
  for (const auto& m : all_models()) {
    for (double t : {0.01, 0.1, 1.0, 5.0}) {
      auto p = m.transition_probs(t);
      for (int i = 0; i < 4; ++i) {
        double row = 0;
        for (int j = 0; j < 4; ++j) {
          EXPECT_GE(p(i, j), 0.0) << m.name();
          row += p(i, j);
        }
        EXPECT_NEAR(row, 1.0, 1e-9) << m.name() << " t=" << t;
      }
    }
  }
}

TEST(SubstModel, StationaryDistributionPreserved) {
  for (const auto& m : all_models()) {
    auto p = m.transition_probs(0.7);
    const Vec4& pi = m.pi();
    for (int j = 0; j < 4; ++j) {
      double sum = 0;
      for (int i = 0; i < 4; ++i) sum += pi[static_cast<std::size_t>(i)] * p(i, j);
      EXPECT_NEAR(sum, pi[static_cast<std::size_t>(j)], 1e-9) << m.name();
    }
  }
}

TEST(SubstModel, LongBranchConvergesToStationary) {
  for (const auto& m : all_models()) {
    auto p = m.transition_probs(500.0);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(p(i, j), m.pi()[static_cast<std::size_t>(j)], 1e-6) << m.name();
      }
    }
  }
}

TEST(SubstModel, DetailedBalance) {
  // Time reversibility: pi_i P_ij(t) = pi_j P_ji(t).
  for (const auto& m : all_models()) {
    auto p = m.transition_probs(0.31);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(m.pi()[static_cast<std::size_t>(i)] * p(i, j),
                    m.pi()[static_cast<std::size_t>(j)] * p(j, i), 1e-10)
            << m.name();
      }
    }
  }
}

TEST(SubstModel, MeanRateNormalizedToOne) {
  for (const auto& m : all_models()) {
    double mu = 0;
    for (int i = 0; i < 4; ++i) {
      mu -= m.pi()[static_cast<std::size_t>(i)] * m.rate_matrix()(i, i);
    }
    EXPECT_NEAR(mu, 1.0, 1e-10) << m.name();
  }
}

TEST(SubstModel, ChapmanKolmogorov) {
  // P(s) P(t) = P(s + t).
  for (const auto& m : all_models()) {
    auto lhs = m.transition_probs(0.2) * m.transition_probs(0.5);
    auto rhs = m.transition_probs(0.7);
    EXPECT_LT(Matrix4::max_abs_diff(lhs, rhs), 1e-9) << m.name();
  }
}

TEST(SubstModel, Jc69ClosedForm) {
  // JC69: P(same) = 1/4 + 3/4 e^{-4t/3}; P(diff) = 1/4 - 1/4 e^{-4t/3}.
  auto m = SubstModel::jc69();
  for (double t : {0.05, 0.3, 1.2}) {
    auto p = m.transition_probs(t);
    double same = 0.25 + 0.75 * std::exp(-4.0 * t / 3.0);
    double diff = 0.25 - 0.25 * std::exp(-4.0 * t / 3.0);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(p(i, j), i == j ? same : diff, 1e-10) << "t=" << t;
      }
    }
  }
}

TEST(SubstModel, K80ClosedForm) {
  // K80 with kappa: transitions (A<->G, C<->T) differ from transversions.
  double kappa = 2.5;
  auto m = SubstModel::k80(kappa);
  double t = 0.4;
  auto p = m.transition_probs(t);
  // Closed form (rate matrix normalized to mean rate 1):
  // beta = 2/(kappa+2); alpha = kappa*beta (transition rate param).
  double beta = 1.0 / (0.25 * kappa + 0.5);
  double alpha = kappa * beta / 4.0;
  beta /= 4.0;
  double e1 = std::exp(-4.0 * beta * t);
  double e2 = std::exp(-2.0 * (alpha + beta) * t);
  double p_same = 0.25 + 0.25 * e1 + 0.5 * e2;
  double p_transition = 0.25 + 0.25 * e1 - 0.5 * e2;
  double p_transversion = 0.25 - 0.25 * e1;
  EXPECT_NEAR(p(0, 0), p_same, 1e-9);
  EXPECT_NEAR(p(0, 2), p_transition, 1e-9);    // A->G
  EXPECT_NEAR(p(0, 1), p_transversion, 1e-9);  // A->C
  EXPECT_NEAR(p(1, 3), p_transition, 1e-9);    // C->T
}

TEST(SubstModel, HigherKappaMoreTransitions) {
  auto low = SubstModel::k80(1.0);
  auto high = SubstModel::k80(10.0);
  auto pl = low.transition_probs(0.3);
  auto ph = high.transition_probs(0.3);
  EXPECT_GT(ph(0, 2), pl(0, 2));  // A->G transition more likely
  EXPECT_LT(ph(0, 1), pl(0, 1));  // A->C transversion less likely
}

TEST(SubstModel, InvalidParametersRejected) {
  EXPECT_THROW(SubstModel::k80(0.0), InputError);
  EXPECT_THROW(SubstModel::f81({0.5, 0.5, 0.2, -0.2}), InputError);
  EXPECT_THROW(SubstModel::f81({0.3, 0.3, 0.3, 0.3}), InputError);  // sum != 1
  EXPECT_THROW(SubstModel::tn93({0.25, 0.25, 0.25, 0.25}, -1, 2), InputError);
  EXPECT_THROW(SubstModel({}, {0.25, 0.25, 0.25, 0.25}, {1, 1, 0, 1, 1, 1}),
               InputError);
  auto m = SubstModel::jc69();
  EXPECT_THROW((void)m.transition_probs(-0.1), InputError);
}

TEST(RateModel, UniformAndGammaMeans) {
  EXPECT_NEAR(RateModel::uniform().mean_rate(), 1.0, 1e-12);
  EXPECT_NEAR(RateModel::gamma(0.5, 4).mean_rate(), 1.0, 1e-8);
  EXPECT_NEAR(RateModel::gamma(2.0, 8).mean_rate(), 1.0, 1e-8);
}

TEST(RateModel, InvariantSitesComposition) {
  auto rm = RateModel::gamma(0.5, 4).with_invariant(0.2);
  EXPECT_EQ(rm.category_count(), 5u);
  EXPECT_DOUBLE_EQ(rm.rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rm.probs[0], 0.2);
  EXPECT_NEAR(rm.mean_rate(), 1.0, 1e-8);
  EXPECT_THROW(rm.with_invariant(1.0), InputError);
  EXPECT_THROW(rm.with_invariant(-0.1), InputError);
}

TEST(ModelSpec, ParsesNamesAndModifiers) {
  Config params;
  params.set("kappa", "3.0");
  params.set("alpha", "0.7");
  params.set("pinv", "0.15");

  auto plain = ModelSpec::parse("JC69", params);
  EXPECT_EQ(plain.model->name(), "JC69");
  EXPECT_EQ(plain.rates.category_count(), 1u);

  auto gamma = ModelSpec::parse("HKY85+G4", params);
  EXPECT_EQ(gamma.model->name(), "HKY85");
  EXPECT_EQ(gamma.rates.category_count(), 4u);

  auto gamma8 = ModelSpec::parse("GTR+G8", params);
  EXPECT_EQ(gamma8.rates.category_count(), 8u);

  auto inv = ModelSpec::parse("K80+I", params);
  EXPECT_EQ(inv.rates.category_count(), 2u);
  EXPECT_DOUBLE_EQ(inv.rates.probs[0], 0.15);

  auto both = ModelSpec::parse("TN93+G4+I", params);
  EXPECT_EQ(both.rates.category_count(), 5u);
  EXPECT_NEAR(both.rates.mean_rate(), 1.0, 1e-8);
}

TEST(ModelSpec, CaseInsensitiveAndAliases) {
  Config params;
  EXPECT_EQ(ModelSpec::parse("jc", params).model->name(), "JC69");
  EXPECT_EQ(ModelSpec::parse("k2p", params).model->name(), "K80");
  EXPECT_EQ(ModelSpec::parse("hky+g4", params).model->name(), "HKY85");
}

TEST(ModelSpec, BaseFrequenciesFromConfig) {
  Config params;
  params.set("basefreq", "0.4,0.1,0.2,0.3");
  auto spec = ModelSpec::parse("F81", params);
  EXPECT_DOUBLE_EQ(spec.model->pi()[0], 0.4);
  EXPECT_DOUBLE_EQ(spec.model->pi()[3], 0.3);
}

TEST(ModelSpec, RejectsUnknown) {
  Config params;
  EXPECT_THROW(ModelSpec::parse("WAG", params), InputError);
  EXPECT_THROW(ModelSpec::parse("HKY85+X", params), InputError);
  EXPECT_THROW(ModelSpec::parse("", params), InputError);
  params.set("basefreq", "0.5,0.5");
  EXPECT_THROW(ModelSpec::parse("F81", params), InputError);
}

}  // namespace
}  // namespace hdcs::phylo
