#include "phylo/tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace hdcs::phylo {
namespace {

TEST(Tree, ThreeTaxonShape) {
  auto t = Tree::three_taxon("a", "b", "c", 0.2);
  EXPECT_EQ(t.node_count(), 4);
  EXPECT_EQ(t.leaf_count(), 3);
  EXPECT_EQ(t.at(t.root()).children.size(), 3u);
  EXPECT_EQ(t.edge_nodes().size(), 3u);  // 2*3 - 3
  auto names = t.leaf_names();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Tree, NewickRoundTrip) {
  std::string nwk = "((a:0.1,b:0.2):0.05,c:0.3,d:0.4);";
  auto t = Tree::parse_newick(nwk);
  EXPECT_EQ(t.leaf_count(), 4);
  // Short precision prints the friendly decimals back.
  EXPECT_EQ(t.to_newick(6), "((a:0.1,b:0.2):0.05,c:0.3,d:0.4);");
  // Default (full) precision round-trips doubles exactly: parse-print-parse
  // is a fixed point.
  auto t2 = Tree::parse_newick(t.to_newick());
  EXPECT_EQ(t2.to_newick(), t.to_newick());
  EXPECT_DOUBLE_EQ(t2.branch_length(*t2.find_leaf("a")), 0.1);
}

TEST(Tree, NewickWithoutBranchLengths) {
  auto t = Tree::parse_newick("((a,b),c);");
  EXPECT_EQ(t.leaf_count(), 3);
  EXPECT_DOUBLE_EQ(t.branch_length(*t.find_leaf("a")), 0.0);
}

TEST(Tree, NewickScientificNotationAndWhitespace) {
  auto t = Tree::parse_newick(" ( a : 1e-3 , b : 2.5E-2 ) ;");
  EXPECT_NEAR(t.branch_length(*t.find_leaf("a")), 1e-3, 1e-12);
  EXPECT_NEAR(t.branch_length(*t.find_leaf("b")), 2.5e-2, 1e-12);
}

TEST(Tree, NewickInternalLabelsIgnored) {
  auto t = Tree::parse_newick("((a:1,b:1)label95:0.5,c:1);");
  EXPECT_EQ(t.leaf_count(), 3);
}

TEST(Tree, NewickErrors) {
  EXPECT_THROW(Tree::parse_newick(""), InputError);
  EXPECT_THROW(Tree::parse_newick("((a,b);"), InputError);       // unbalanced
  EXPECT_THROW(Tree::parse_newick("(a,b));"), InputError);       // trailing
  EXPECT_THROW(Tree::parse_newick("(a:,b);"), InputError);       // missing length
  EXPECT_THROW(Tree::parse_newick("(a:-1,b);"), InputError);     // negative
  EXPECT_THROW(Tree::parse_newick("(,b);"), InputError);         // empty name
}

TEST(Tree, PostorderChildrenBeforeParents) {
  auto t = Tree::parse_newick("((a:1,b:1):1,(c:1,d:1):1,e:1);");
  auto order = t.postorder();
  EXPECT_EQ(order.size(), static_cast<std::size_t>(t.node_count()));
  EXPECT_EQ(order.back(), t.root());
  std::vector<int> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (int node = 0; node < t.node_count(); ++node) {
    for (int child : t.at(node).children) {
      EXPECT_LT(position[static_cast<std::size_t>(child)],
                position[static_cast<std::size_t>(node)]);
    }
  }
}

TEST(Tree, EdgeCountFollowsLeafCount) {
  // Unrooted n-leaf binary tree: 2n-3 edges.
  auto t = Tree::three_taxon("t0", "t1", "t2");
  for (int n = 4; n <= 10; ++n) {
    auto edges = t.edge_nodes();
    t.insert_leaf_on_edge(edges[0], "t" + std::to_string(n - 1), 0.1);
    EXPECT_EQ(t.leaf_count(), n);
    EXPECT_EQ(t.edge_nodes().size(), static_cast<std::size_t>(2 * n - 3));
  }
}

TEST(Tree, InsertLeafSplitsBranchLengths) {
  auto t = Tree::three_taxon("a", "b", "c", 0.3);
  int a = *t.find_leaf("a");
  int leaf = t.insert_leaf_on_edge(a, "d", 0.07, 0.25);
  EXPECT_EQ(t.at(leaf).name, "d");
  EXPECT_DOUBLE_EQ(t.branch_length(leaf), 0.07);
  int mid = t.parent(leaf);
  // 0.3 split 25% above / 75% below.
  EXPECT_NEAR(t.branch_length(mid), 0.075, 1e-12);
  EXPECT_NEAR(t.branch_length(a), 0.225, 1e-12);
  EXPECT_EQ(t.parent(a), mid);
  // Total length conserved (+ pendant).
  EXPECT_NEAR(t.total_length(), 0.3 + 0.3 + 0.3 + 0.07, 1e-12);
}

TEST(Tree, InsertLeafErrors) {
  auto t = Tree::three_taxon("a", "b", "c");
  EXPECT_THROW(t.insert_leaf_on_edge(t.root(), "d", 0.1), InputError);
  EXPECT_THROW(t.insert_leaf_on_edge(1, "d", -0.1), InputError);
  EXPECT_THROW(t.insert_leaf_on_edge(1, "d", 0.1, 0.0), InputError);
  EXPECT_THROW(t.insert_leaf_on_edge(1, "d", 0.1, 1.0), InputError);
}

TEST(Tree, RemoveLeafInvertsInsert) {
  auto t = Tree::three_taxon("a", "b", "c", 0.3);
  std::string before = t.to_newick();
  int a = *t.find_leaf("a");
  t.insert_leaf_on_edge(a, "d", 0.07, 0.5);
  t.remove_leaf(*t.find_leaf("d"));
  EXPECT_EQ(t.to_newick(), before);
}

TEST(Tree, RemoveLeafFromDeeperTree) {
  auto t = Tree::parse_newick("((a:1,b:2):3,(c:4,d:5):6,e:7);");
  t.remove_leaf(*t.find_leaf("b"));
  EXPECT_EQ(t.leaf_count(), 4);
  // a's branch spliced through the removed internal node: 1 + 3.
  EXPECT_DOUBLE_EQ(t.branch_length(*t.find_leaf("a")), 4.0);
  auto names = t.leaf_names();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "c", "d", "e"}));
}

TEST(Tree, NniSwapsSubtrees) {
  auto t = Tree::parse_newick("((a:1,b:1):1,c:1,d:1);");
  auto internal = t.internal_edges();
  ASSERT_EQ(internal.size(), 1u);
  auto before = t.to_newick();
  t.nni(internal[0], 0);
  EXPECT_NE(t.to_newick(), before);
  EXPECT_EQ(t.leaf_count(), 4);
  // NNI is an involution when applied with the same variant... after the
  // swap the moved child sits in the sibling slot; applying variant 0
  // again must restore the topology (RF distance 0).
  auto after_once = Tree::parse_newick(t.to_newick());
  t.nni(internal[0], 0);
  EXPECT_EQ(rf_distance(t, Tree::parse_newick(before)), 0);
  (void)after_once;
}

TEST(Tree, NniVariantsDifferent) {
  auto t1 = Tree::parse_newick("((a:1,b:1):1,c:1,d:1);");
  auto t2 = Tree::parse_newick("((a:1,b:1):1,c:1,d:1);");
  auto internal = t1.internal_edges();
  t1.nni(internal[0], 0);
  t2.nni(internal[0], 1);
  // On 4 taxa there are exactly 3 topologies; original + 2 NNI variants
  // cover all of them, pairwise distinct.
  auto orig = Tree::parse_newick("((a:1,b:1):1,c:1,d:1);");
  EXPECT_GT(rf_distance(t1, orig), 0);
  EXPECT_GT(rf_distance(t2, orig), 0);
  EXPECT_GT(rf_distance(t1, t2), 0);
}

TEST(Tree, NniErrors) {
  auto t = Tree::parse_newick("((a:1,b:1):1,c:1,d:1);");
  EXPECT_THROW(t.nni(*t.find_leaf("a"), 0), InputError);  // leaf edge
  EXPECT_THROW(t.nni(t.root(), 0), InputError);
  EXPECT_THROW(t.nni(t.internal_edges()[0], 2), InputError);
}

TEST(RfDistance, IdenticalTreesZero) {
  auto a = Tree::parse_newick("((a:1,b:1):1,(c:1,d:1):1,e:1);");
  auto b = Tree::parse_newick("((a:2,b:2):2,(c:2,d:2):2,e:2);");  // lengths differ
  EXPECT_EQ(rf_distance(a, b), 0);
}

TEST(RfDistance, RotatedChildOrderZero) {
  auto a = Tree::parse_newick("((a:1,b:1):1,(c:1,d:1):1,e:1);");
  auto b = Tree::parse_newick("(e:1,(d:1,c:1):1,(b:1,a:1):1);");
  EXPECT_EQ(rf_distance(a, b), 0);
}

TEST(RfDistance, DifferentTopologiesPositive) {
  auto a = Tree::parse_newick("((a:1,b:1):1,(c:1,d:1):1,e:1);");
  auto b = Tree::parse_newick("((a:1,c:1):1,(b:1,d:1):1,e:1);");
  EXPECT_GT(rf_distance(a, b), 0);
}

TEST(RfDistance, DisjointLeafSetsThrow) {
  auto a = Tree::parse_newick("((a:1,b:1):1,c:1);");
  auto b = Tree::parse_newick("((a:1,b:1):1,x:1);");
  EXPECT_THROW(rf_distance(a, b), InputError);
}

TEST(Tree, TotalLength) {
  auto t = Tree::parse_newick("((a:1,b:2):3,c:4);");
  EXPECT_DOUBLE_EQ(t.total_length(), 10.0);
}

TEST(Tree, FindLeaf) {
  auto t = Tree::three_taxon("x", "y", "z");
  EXPECT_TRUE(t.find_leaf("y").has_value());
  EXPECT_FALSE(t.find_leaf("w").has_value());
}

}  // namespace
}  // namespace hdcs::phylo
