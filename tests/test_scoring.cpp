#include "bio/scoring.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hdcs::bio {
namespace {

TEST(Blosum62, KnownEntries) {
  auto s = ScoringScheme::blosum62();
  // Spot checks against the published matrix.
  EXPECT_EQ(s.score('A', 'A'), 4);
  EXPECT_EQ(s.score('W', 'W'), 11);
  EXPECT_EQ(s.score('A', 'R'), -1);
  EXPECT_EQ(s.score('C', 'C'), 9);
  EXPECT_EQ(s.score('E', 'Q'), 2);
  EXPECT_EQ(s.score('G', 'I'), -4);
  EXPECT_EQ(s.score('Y', 'F'), 3);
  EXPECT_EQ(s.score('X', 'X'), -1);
}

TEST(Blosum62, SymmetricOverResidues) {
  auto s = ScoringScheme::blosum62();
  const std::string_view letters = "ARNDCQEGHILKMFPSTWYVBZX";
  for (char a : letters) {
    for (char b : letters) {
      EXPECT_EQ(s.score(a, b), s.score(b, a)) << a << " vs " << b;
    }
  }
}

TEST(Blosum62, DiagonalIsRowMaximum) {
  // Identity scores are the best substitution for each residue.
  auto s = ScoringScheme::blosum62();
  const std::string_view letters = "ARNDCQEGHILKMFPSTWYV";
  for (char a : letters) {
    for (char b : letters) {
      if (a != b) {
        EXPECT_GT(s.score(a, a), s.score(a, b)) << a << " vs " << b;
      }
    }
  }
}

TEST(Pam250, KnownEntries) {
  auto s = ScoringScheme::pam250();
  EXPECT_EQ(s.score('W', 'W'), 17);
  EXPECT_EQ(s.score('C', 'C'), 12);
  EXPECT_EQ(s.score('A', 'A'), 2);
  EXPECT_EQ(s.score('W', 'C'), -8);
  EXPECT_EQ(s.score('F', 'Y'), 7);
}

TEST(Pam250, Symmetric) {
  auto s = ScoringScheme::pam250();
  const std::string_view letters = "ARNDCQEGHILKMFPSTWYVBZX";
  for (char a : letters) {
    for (char b : letters) {
      EXPECT_EQ(s.score(a, b), s.score(b, a));
    }
  }
}

TEST(DnaScheme, MatchMismatchAndN) {
  auto s = ScoringScheme::dna(5, -4, 10, 1);
  EXPECT_EQ(s.score('A', 'A'), 5);
  EXPECT_EQ(s.score('G', 'G'), 5);
  EXPECT_EQ(s.score('A', 'T'), -4);
  EXPECT_EQ(s.score('N', 'A'), 0);
  EXPECT_EQ(s.score('T', 'N'), 0);
  EXPECT_EQ(s.gap_open(), 10);
  EXPECT_EQ(s.gap_extend(), 1);
}

TEST(ScoringScheme, FromNameDispatch) {
  EXPECT_EQ(ScoringScheme::from_name("BLOSUM62").name(), "blosum62");
  EXPECT_EQ(ScoringScheme::from_name("pam250").name(), "pam250");
  EXPECT_EQ(ScoringScheme::from_name("dna").name(), "dna");
  EXPECT_THROW(ScoringScheme::from_name("blosum999"), InputError);
}

TEST(ScoringScheme, FromNameGapOverrides) {
  auto s = ScoringScheme::from_name("blosum62", 5, 2);
  EXPECT_EQ(s.gap_open(), 5);
  EXPECT_EQ(s.gap_extend(), 2);
  auto d = ScoringScheme::from_name("blosum62");
  EXPECT_EQ(d.gap_open(), 11);
  EXPECT_EQ(d.gap_extend(), 1);
}

TEST(ScoringScheme, NegativeGapPenaltyRejected) {
  EXPECT_THROW(ScoringScheme::dna(5, -4, -1, 1), InputError);
  EXPECT_THROW(ScoringScheme::dna(5, -4, 1, -1), InputError);
}

TEST(ScoringScheme, UnknownCharactersScoreWorst) {
  auto s = ScoringScheme::blosum62();
  // '*' or digits fall into the out-of-range bucket = table minimum (-8...
  // for blosum62 the minimum is -4).
  EXPECT_EQ(s.score('*', 'A'), -4);
  EXPECT_EQ(s.score('A', '*'), -4);
}

TEST(ScoringScheme, AlphabetTagged) {
  EXPECT_EQ(ScoringScheme::blosum62().alphabet(), Alphabet::kProtein);
  EXPECT_EQ(ScoringScheme::dna().alphabet(), Alphabet::kDna);
}

}  // namespace
}  // namespace hdcs::bio
