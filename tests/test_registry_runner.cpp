#include <gtest/gtest.h>

#include "dist/local_runner.hpp"
#include "dist/registry.hpp"
#include "tests/toy_problem.hpp"
#include "util/error.hpp"

namespace hdcs::dist {
namespace {

using test::ToySumAlgorithm;
using test::ToySumDataManager;

TEST(AlgorithmRegistry, RegisterCreateAndList) {
  AlgorithmRegistry registry;  // private instance, not the global one
  EXPECT_FALSE(registry.contains("toy"));
  registry.register_algorithm("toy",
                              [] { return std::make_unique<ToySumAlgorithm>(); });
  EXPECT_TRUE(registry.contains("toy"));
  auto instance = registry.create("toy");
  EXPECT_NE(instance, nullptr);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"toy"}));
}

TEST(AlgorithmRegistry, DuplicateNameRejectedButReplaceAllowed) {
  AlgorithmRegistry registry;
  registry.register_algorithm("a", [] { return std::make_unique<ToySumAlgorithm>(); });
  EXPECT_THROW(registry.register_algorithm(
                   "a", [] { return std::make_unique<ToySumAlgorithm>(); }),
               InputError);
  EXPECT_NO_THROW(registry.replace(
      "a", [] { return std::make_unique<ToySumAlgorithm>(); }));
}

TEST(AlgorithmRegistry, UnknownNameThrowsWithName) {
  AlgorithmRegistry registry;
  try {
    (void)registry.create("who-is-this");
    FAIL() << "expected InputError";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("who-is-this"), std::string::npos);
  }
}

TEST(AlgorithmRegistry, GlobalRegistryIsProcessWide) {
  test::register_toy_algorithm();
  EXPECT_TRUE(AlgorithmRegistry::global().contains(test::kToyAlgorithmName));
}

TEST(LocalRunner, UnknownAlgorithmFailsUpfront) {
  class OrphanDm final : public DataManager {
   public:
    std::string algorithm_name() const override { return "no-such-algo"; }
    std::vector<std::byte> problem_data() const override { return {}; }
    std::optional<WorkUnit> next_unit(const SizeHint&) override { return {}; }
    void accept_result(const ResultUnit&) override {}
    bool is_complete() const override { return false; }
    std::vector<std::byte> final_result() const override { return {}; }
  };
  OrphanDm dm;
  EXPECT_THROW(run_locally(dm), InputError);
}

TEST(LocalRunner, StalledDataManagerDiagnosed) {
  // A DataManager that reports incomplete but produces no units is a bug;
  // the serial runner must say so instead of spinning.
  class StuckDm final : public DataManager {
   public:
    std::string algorithm_name() const override {
      return test::kToyAlgorithmName;
    }
    std::vector<std::byte> problem_data() const override {
      ByteWriter w;
      w.u64(0);
      return w.take();
    }
    std::optional<WorkUnit> next_unit(const SizeHint&) override {
      return std::nullopt;  // never produces anything
    }
    void accept_result(const ResultUnit&) override {}
    bool is_complete() const override { return false; }  // ...yet never done
    std::vector<std::byte> final_result() const override { return {}; }
  };
  test::register_toy_algorithm();
  StuckDm dm;
  EXPECT_THROW(run_locally(dm), Error);
}

TEST(LocalRunner, TinyHintStillTerminates) {
  test::register_toy_algorithm();
  ToySumDataManager dm(1000);
  LocalRunStats stats;
  auto result = run_locally(dm, 0.5, &stats);  // sub-element hint -> 1 op units
  EXPECT_EQ(test::read_u64_result(result), dm.expected());
  EXPECT_EQ(stats.units, 1000u);
}

TEST(SnapshotContract, DefaultDataManagerRefuses) {
  class PlainDm final : public DataManager {
   public:
    std::string algorithm_name() const override { return "x"; }
    std::vector<std::byte> problem_data() const override { return {}; }
    std::optional<WorkUnit> next_unit(const SizeHint&) override { return {}; }
    void accept_result(const ResultUnit&) override {}
    bool is_complete() const override { return true; }
    std::vector<std::byte> final_result() const override { return {}; }
  };
  PlainDm dm;
  EXPECT_FALSE(dm.supports_snapshot());
  ByteWriter w;
  EXPECT_THROW(dm.snapshot(w), Error);
  ByteReader r{std::span<const std::byte>(w.data())};
  EXPECT_THROW(dm.restore(r), Error);
}

}  // namespace
}  // namespace hdcs::dist
