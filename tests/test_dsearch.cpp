#include "dsearch/dsearch.hpp"

#include <gtest/gtest.h>

#include "bio/seqgen.hpp"
#include "dist/local_runner.hpp"
#include "dist/scheduler_core.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hdcs::dsearch {
namespace {

struct Workload {
  std::vector<bio::Sequence> queries;
  std::vector<bio::Sequence> database;
};

Workload make_workload(std::uint64_t seed, std::size_t db_size = 60,
                       std::size_t n_queries = 2) {
  Rng rng(seed);
  Workload w;
  w.queries = bio::make_queries(rng, n_queries, 80, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = db_size;
  spec.mean_length = 100;
  spec.planted_homologs_per_query = 4;
  w.database = bio::make_database(rng, spec, w.queries);
  return w;
}

DSearchConfig default_config() {
  DSearchConfig c;
  c.mode = bio::AlignMode::kLocal;
  c.scoring = "blosum62";
  c.top_k = 10;
  return c;
}

TEST(DSearchConfig, ParsesFromConfigFile) {
  auto cfg = Config::parse(
      "algorithm = smith-waterman\n"
      "scoring = pam250\n"
      "gap_open = 8\n"
      "gap_extend = 2\n"
      "top_k = 5\n");
  auto c = DSearchConfig::from_config(cfg);
  EXPECT_EQ(c.mode, bio::AlignMode::kLocal);
  EXPECT_EQ(c.scoring, "pam250");
  EXPECT_EQ(c.top_k, 5u);
  auto scheme = c.make_scheme();
  EXPECT_EQ(scheme.gap_open(), 8);
  EXPECT_EQ(scheme.gap_extend(), 2);
}

TEST(DSearchConfig, DefaultsAndValidation) {
  auto c = DSearchConfig::from_config(Config::parse(""));
  EXPECT_EQ(c.mode, bio::AlignMode::kLocal);
  EXPECT_EQ(c.scoring, "blosum62");
  EXPECT_THROW(DSearchConfig::from_config(Config::parse("top_k = 0\n")), InputError);
  EXPECT_THROW(DSearchConfig::from_config(Config::parse("scoring = nope\n")),
               InputError);
  EXPECT_THROW(DSearchConfig::from_config(Config::parse("algorithm = warp\n")),
               InputError);
}

TEST(DSearchSerial, PlantedHomologsRankTop) {
  auto w = make_workload(1);
  auto result = search_serial(w.queries, w.database, default_config());
  ASSERT_EQ(result.size(), w.queries.size());
  for (std::size_t q = 0; q < result.size(); ++q) {
    ASSERT_GE(result[q].size(), 4u);
    // The 4 planted homologs of query q must occupy the top 4 slots.
    for (int rank = 0; rank < 4; ++rank) {
      EXPECT_EQ(result[q][static_cast<std::size_t>(rank)].db_id.rfind(
                    "hom_" + std::to_string(q) + "_", 0),
                0u)
          << "query " << q << " rank " << rank << " = "
          << result[q][static_cast<std::size_t>(rank)].db_id;
    }
    // Ranked by score descending.
    for (std::size_t r = 1; r < result[q].size(); ++r) {
      EXPECT_GE(result[q][r - 1].score, result[q][r].score);
    }
  }
}

TEST(DSearchSerial, TopKRespected) {
  auto w = make_workload(2, 30, 1);
  auto config = default_config();
  config.top_k = 3;
  auto result = search_serial(w.queries, w.database, config);
  EXPECT_EQ(result[0].size(), 3u);
}

TEST(DSearchWire, SequencesRoundTrip) {
  auto w = make_workload(3, 5, 1);
  ByteWriter writer;
  encode_sequences(writer, w.database);
  ByteReader r(writer.data());
  auto decoded = decode_sequences(r);
  ASSERT_EQ(decoded.size(), w.database.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].id, w.database[i].id);
    EXPECT_EQ(decoded[i].residues, w.database[i].residues);
  }
}

TEST(DSearchWire, ConfigAndResultRoundTrip) {
  DSearchConfig c;
  c.mode = bio::AlignMode::kBanded;
  c.scoring = "pam250";
  c.gap_open = 7;
  c.top_k = 42;
  c.band = 9;
  ByteWriter w;
  encode_config(w, c);
  SearchResult result = {{{"id1", 100}, {"id2", -5}}, {}};
  encode_result(w, result);

  ByteReader r(w.data());
  auto c2 = decode_config(r);
  EXPECT_EQ(c2.mode, bio::AlignMode::kBanded);
  EXPECT_EQ(c2.scoring, "pam250");
  EXPECT_EQ(c2.gap_open, 7);
  EXPECT_EQ(c2.top_k, 42u);
  EXPECT_EQ(c2.band, 9u);
  auto r2 = decode_result(r);
  EXPECT_EQ(r2, result);
  r.expect_end();
}

TEST(DSearchMerge, TopKMergeIsExact) {
  // Merging chunked top-k lists equals computing top-k globally.
  SearchResult global(1);
  SearchResult merged(1);
  Rng rng(4);
  std::vector<Hit> all;
  for (int i = 0; i < 100; ++i) {
    all.push_back({"s" + std::to_string(i),
                   static_cast<std::int64_t>(rng.next_below(50))});
  }
  // Global top-10.
  global[0] = all;
  std::sort(global[0].begin(), global[0].end());
  global[0].resize(10);
  // Chunked in 7 uneven pieces, each pre-truncated to top-10.
  std::size_t pos = 0;
  std::size_t chunk_sizes[] = {3, 20, 1, 30, 16, 10, 20};
  for (std::size_t sz : chunk_sizes) {
    SearchResult piece(1);
    for (std::size_t i = 0; i < sz; ++i) piece[0].push_back(all[pos++]);
    std::sort(piece[0].begin(), piece[0].end());
    if (piece[0].size() > 10) piece[0].resize(10);
    merge_topk(merged, piece, 10);
  }
  ASSERT_EQ(pos, all.size());
  EXPECT_EQ(merged[0], global[0]);
}

TEST(DSearchMerge, MismatchedQueryCountThrows) {
  SearchResult a(2), b(3);
  EXPECT_THROW(merge_topk(a, b, 5), Error);
}

TEST(DSearchStats, MomentsAndZScores) {
  QueryScoreStats s;
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.z_score(10), 0.0);  // degenerate: no data
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.z_score(9.0), 2.0);

  // Merging equals adding everything to one accumulator.
  QueryScoreStats a, b, merged;
  for (double x : {1.0, 2.0, 3.0}) a.add(x);
  for (double x : {10.0, 20.0}) b.add(x);
  merged = a;
  merged.merge(b);
  QueryScoreStats direct;
  for (double x : {1.0, 2.0, 3.0, 10.0, 20.0}) direct.add(x);
  EXPECT_DOUBLE_EQ(merged.mean(), direct.mean());
  EXPECT_DOUBLE_EQ(merged.stddev(), direct.stddev());
}

TEST(DSearchStats, HomologsAreManySigmaAboveBackground) {
  // Use a larger database so the planted homologs don't dominate the
  // background variance themselves.
  auto w = make_workload(31, 300);
  std::vector<QueryScoreStats> stats;
  auto result = search_serial(w.queries, w.database, default_config(), &stats);
  ASSERT_EQ(stats.size(), w.queries.size());
  for (std::size_t q = 0; q < result.size(); ++q) {
    EXPECT_EQ(stats[q].count, w.database.size());
    // Top hit (a planted homolog) should be far out in the tail; a typical
    // background score should not.
    double top_z = stats[q].z_score(static_cast<double>(result[q][0].score));
    EXPECT_GT(top_z, 4.0) << "query " << q;
    double mid_z = stats[q].z_score(stats[q].mean());
    EXPECT_NEAR(mid_z, 0.0, 1e-9);
  }
}

TEST(DSearchStats, DistributedStatsMatchSerial) {
  auto w = make_workload(33);
  auto config = default_config();
  std::vector<QueryScoreStats> serial_stats;
  search_serial(w.queries, w.database, config, &serial_stats);

  register_algorithm();
  DSearchDataManager dm(w.queries, w.database, config);
  dist::run_locally(dm, 150000);  // several chunks
  const auto& dist_stats = dm.score_statistics();
  ASSERT_EQ(dist_stats.size(), serial_stats.size());
  for (std::size_t q = 0; q < dist_stats.size(); ++q) {
    EXPECT_EQ(dist_stats[q].count, serial_stats[q].count);
    EXPECT_DOUBLE_EQ(dist_stats[q].sum, serial_stats[q].sum);
    EXPECT_DOUBLE_EQ(dist_stats[q].sum_squares, serial_stats[q].sum_squares);
  }
}

TEST(DSearchDataManager, LocalRunMatchesSerial) {
  auto w = make_workload(5);
  auto config = default_config();
  auto serial = search_serial(w.queries, w.database, config);

  register_algorithm();
  DSearchDataManager dm(w.queries, w.database, config);
  dist::LocalRunStats stats;
  auto bytes = dist::run_locally(dm, 200000, &stats);
  ByteReader r{std::span<const std::byte>(bytes)};
  auto distributed = decode_result(r);
  EXPECT_EQ(distributed, serial);
  EXPECT_GT(stats.units, 1u) << "database should have been chunked";
}

TEST(DSearchDataManager, ThreadedLocalRunIsByteIdenticalToSerial) {
  auto w = make_workload(11);
  auto config = default_config();
  register_algorithm();

  DSearchDataManager serial_dm(w.queries, w.database, config);
  auto serial_bytes = dist::run_locally(serial_dm, 150000);

  for (std::size_t threads : {2, 4}) {
    DSearchDataManager dm(w.queries, w.database, config);
    auto bytes = dist::run_locally(dm, 150000, nullptr,
                                   dist::AlgorithmRegistry::global(), threads);
    EXPECT_EQ(bytes, serial_bytes) << threads << " threads";
  }
}

TEST(DSearchAlgorithm, SetParallelismKeepsPayloadByteIdentical) {
  // Within-unit threading (donor --threads) must not change a single byte
  // of the submitted payload, for every alignment mode.
  auto w = make_workload(13);
  for (auto mode : {bio::AlignMode::kLocal, bio::AlignMode::kGlobal,
                    bio::AlignMode::kSemiGlobal, bio::AlignMode::kBanded}) {
    auto config = default_config();
    config.mode = mode;
    DSearchDataManager dm(w.queries, w.database, config);
    auto data = dm.problem_data();
    auto unit = dm.next_unit(dist::SizeHint{1e18});  // whole db, one unit
    ASSERT_TRUE(unit);

    DSearchAlgorithm serial_algo;
    serial_algo.initialize(data);
    auto serial_payload = serial_algo.process(*unit);

    DSearchAlgorithm threaded_algo;
    threaded_algo.initialize(data);
    threaded_algo.set_parallelism(3);
    EXPECT_EQ(threaded_algo.process(*unit), serial_payload)
        << "mode=" << static_cast<int>(mode);
  }
}

TEST(DSearchDataManager, ChunkSizesFollowHint) {
  auto w = make_workload(6, 100, 1);
  DSearchDataManager dm(w.queries, w.database, default_config());
  // Tiny hint -> single-sequence chunks; each unit carries >= 1 sequence.
  dist::SizeHint tiny{1.0};
  auto unit = dm.next_unit(tiny);
  ASSERT_TRUE(unit);
  // The chunk rides in the unit's content-addressed blob, not the payload.
  ASSERT_EQ(unit->blobs.size(), 1u);
  ByteReader r(unit->blobs[0].bytes);
  auto chunk = decode_sequences(r);
  EXPECT_EQ(chunk.size(), 1u);

  // Huge hint -> everything remaining in one chunk.
  dist::SizeHint huge{1e18};
  auto unit2 = dm.next_unit(huge);
  ASSERT_TRUE(unit2);
  ASSERT_EQ(unit2->blobs.size(), 1u);
  ByteReader r2(unit2->blobs[0].bytes);
  auto chunk2 = decode_sequences(r2);
  EXPECT_EQ(chunk2.size(), w.database.size() - 1);
  EXPECT_FALSE(dm.next_unit(huge).has_value());
  EXPECT_FALSE(dm.is_complete());  // results still outstanding
}

TEST(DSearchDataManager, CostProportionalToResidues) {
  auto w = make_workload(7, 50, 2);
  DSearchDataManager dm(w.queries, w.database, default_config());
  double total_cost = 0;
  dist::SizeHint hint{50000.0};
  while (auto unit = dm.next_unit(hint)) total_cost += unit->cost_ops;
  std::size_t q_len = bio::total_residues(w.queries);
  std::size_t db_len = bio::total_residues(w.database);
  EXPECT_DOUBLE_EQ(total_cost, static_cast<double>(q_len) * db_len);
  EXPECT_DOUBLE_EQ(dm.remaining_ops_estimate(), 0.0);
}

TEST(DSearchDataManager, InputValidation) {
  auto w = make_workload(8, 5, 1);
  EXPECT_THROW(DSearchDataManager({}, w.database, default_config()), InputError);
  EXPECT_THROW(DSearchDataManager(w.queries, {}, default_config()), InputError);
}

TEST(DSearchDistributed, SchedulerCoreMultiClientMatchesSerial) {
  auto w = make_workload(9);
  auto config = default_config();
  auto serial = search_serial(w.queries, w.database, config);

  register_algorithm();
  dist::SchedulerConfig scfg;
  scfg.lease_timeout = 1e6;
  scfg.bounds.min_ops = 1;
  dist::SchedulerCore core(scfg, std::make_unique<dist::AdaptiveThroughput>(1.0));
  auto dm = std::make_shared<DSearchDataManager>(w.queries, w.database, config);
  auto pid = core.submit_problem(dm);

  // Three simulated clients with different speeds pull work round-robin.
  auto c1 = core.client_joined("fast", 1e6, 0.0);
  auto c2 = core.client_joined("slow", 1e4, 0.0);
  auto c3 = core.client_joined("mid", 1e5, 0.0);
  auto data = dm->problem_data();

  DSearchAlgorithm a1, a2, a3;
  a1.initialize(data);
  a2.initialize(data);
  a3.initialize(data);
  DSearchAlgorithm* algos[] = {&a1, &a2, &a3};
  dist::ClientId clients[] = {c1, c2, c3};

  double t = 0;
  int turn = 0;
  while (!core.problem_complete(pid)) {
    auto cid = clients[turn % 3];
    auto* algo = algos[turn % 3];
    ++turn;
    auto unit = core.request_work(cid, t);
    if (!unit) continue;
    core.materialize_unit_blobs(*unit);
    dist::ResultUnit result;
    result.problem_id = unit->problem_id;
    result.unit_id = unit->unit_id;
    result.stage = unit->stage;
    result.payload = algo->process(*unit);
    core.submit_result(cid, result, t + 0.5);
    t += 1;
  }
  EXPECT_EQ(dm->result(), serial);
  EXPECT_GT(core.stats().units_issued, 2u);
}

}  // namespace
}  // namespace hdcs::dsearch
