// Parameterized property tests: invariants that must hold across whole
// families of inputs (kernels x schemes, models x times, policies x loads,
// random scheduler histories), not just hand-picked cases.

#include <gtest/gtest.h>

#include <cmath>

#include "bio/align.hpp"
#include "bio/align_batch.hpp"
#include "bio/fasta.hpp"
#include "bio/seqgen.hpp"
#include "dist/scheduler_core.hpp"
#include "phylo/likelihood.hpp"
#include "phylo/simulate.hpp"
#include "tests/toy_problem.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace hdcs {
namespace {

// ---------------------------------------------------------------------------
// Alignment kernel properties across scoring schemes.
// ---------------------------------------------------------------------------

struct KernelCase {
  const char* scheme;
  bio::Alphabet alphabet;
};

class AlignKernelProperties : public ::testing::TestWithParam<KernelCase> {};

TEST_P(AlignKernelProperties, ScoreOrderingInvariants) {
  auto [scheme_name, alphabet] = GetParam();
  auto scheme = bio::ScoringScheme::from_name(scheme_name);
  Rng rng(101);
  for (int i = 0; i < 20; ++i) {
    auto a = bio::random_residues(rng, 20 + rng.next_below(60), alphabet);
    auto b = bio::random_residues(rng, 20 + rng.next_below(60), alphabet);

    auto global = bio::nw_score(a, b, scheme);
    auto local = bio::sw_score(a, b, scheme);
    auto semi = bio::semiglobal_score(a, b, scheme);

    // Relaxing end-gap constraints can only help.
    EXPECT_GE(semi, global);
    EXPECT_GE(local, std::max<std::int64_t>(0, global));
    EXPECT_GE(local, 0);

    // Symmetry of the substitution-based kernels.
    EXPECT_EQ(global, bio::nw_score(b, a, scheme));
    EXPECT_EQ(local, bio::sw_score(b, a, scheme));

    // A wide band degenerates to full global DP.
    auto band = std::max(a.size(), b.size());
    EXPECT_EQ(bio::banded_nw_score(a, b, scheme, band), global);
    // Narrower bands can only lower the score.
    std::size_t diff = a.size() > b.size() ? a.size() - b.size()
                                           : b.size() - a.size();
    EXPECT_LE(bio::banded_nw_score(a, b, scheme, diff + 2), global);
  }
}

TEST_P(AlignKernelProperties, SelfAlignmentIsRowMaximum) {
  auto [scheme_name, alphabet] = GetParam();
  auto scheme = bio::ScoringScheme::from_name(scheme_name);
  Rng rng(103);
  for (int i = 0; i < 10; ++i) {
    auto a = bio::random_residues(rng, 40, alphabet);
    // Self-alignment: no kernel may beat the sum of diagonal scores, and
    // global must achieve exactly it (no gaps needed).
    std::int64_t diag = 0;
    for (char c : a) diag += scheme.score(c, c);
    EXPECT_EQ(bio::nw_score(a, a, scheme), diag);
    EXPECT_EQ(bio::sw_score(a, a, scheme), diag);
    EXPECT_EQ(bio::semiglobal_score(a, a, scheme), diag);
  }
}

TEST_P(AlignKernelProperties, MutatedCopyScoresBetweenSelfAndRandom) {
  auto [scheme_name, alphabet] = GetParam();
  auto scheme = bio::ScoringScheme::from_name(scheme_name);
  Rng rng(107);
  for (int i = 0; i < 10; ++i) {
    auto a = bio::random_residues(rng, 80, alphabet);
    auto close = bio::mutate(rng, a, alphabet, 0.05, 0.01);
    auto far = bio::random_residues(rng, 80, alphabet);
    EXPECT_GT(bio::sw_score(a, close, scheme), bio::sw_score(a, far, scheme));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AlignKernelProperties,
    ::testing::Values(KernelCase{"blosum62", bio::Alphabet::kProtein},
                      KernelCase{"pam250", bio::Alphabet::kProtein},
                      KernelCase{"dna", bio::Alphabet::kDna}),
    [](const auto& info) { return std::string(info.param.scheme); });

// ---------------------------------------------------------------------------
// Batch kernel layer (bio/align_batch.hpp): the vectorized/profile kernels
// must be bit-identical to the scalar reference kernels for every mode,
// scheme, and db shape — including ragged lane blocks, empty subjects, and
// scores past the int16 saturation ceiling.
// ---------------------------------------------------------------------------

class BatchKernelProperties : public ::testing::TestWithParam<KernelCase> {};

TEST_P(BatchKernelProperties, BatchMatchesScalarAcrossModes) {
  auto [scheme_name, alphabet] = GetParam();
  auto scheme = bio::ScoringScheme::from_name(scheme_name);
  Rng rng(211);
  bio::AlignScratch scratch;
  for (int rep = 0; rep < 6; ++rep) {
    auto query = bio::random_residues(rng, 10 + rng.next_below(70), alphabet);
    bio::QueryProfile profile(query, scheme);
    // 37 subjects + one empty: two full lane blocks plus a ragged tail.
    std::vector<std::string> db_store;
    for (int i = 0; i < 37; ++i) {
      db_store.push_back(
          bio::random_residues(rng, rng.next_below(90), alphabet));
    }
    db_store.emplace_back();
    std::vector<std::string_view> db(db_store.begin(), db_store.end());
    for (auto mode : {bio::AlignMode::kLocal, bio::AlignMode::kGlobal,
                      bio::AlignMode::kSemiGlobal, bio::AlignMode::kBanded}) {
      auto got = bio::batch_align_scores(mode, profile, db, scheme,
                                         /*band=*/8, scratch);
      ASSERT_EQ(got.size(), db.size());
      for (std::size_t i = 0; i < db.size(); ++i) {
        EXPECT_EQ(got[i], bio::align_score(mode, query, db[i], scheme, 8))
            << scheme_name << " mode=" << static_cast<int>(mode)
            << " subject=" << i << " rep=" << rep;
      }
    }
  }
}

TEST_P(BatchKernelProperties, SaturationFallsBackToExactScalar) {
  auto [scheme_name, alphabet] = GetParam();
  auto scheme = bio::ScoringScheme::from_name(scheme_name);
  // A homopolymer of the highest-self-scoring residue saturates the int16
  // lanes at a length small enough to keep the scalar re-run cheap.
  char rich = 'A';
  for (char c = 'B'; c <= 'Z'; ++c) {
    if (scheme.score(c, c) > scheme.score(rich, rich)) rich = c;
  }
  int self = scheme.score(rich, rich);
  ASSERT_GT(self, 0);
  std::size_t len = 32000 / static_cast<std::size_t>(self) + 64;
  std::string query(len, rich);

  Rng rng(223);
  std::vector<std::string> db_store;
  db_store.push_back(query);  // self-match: score = len * self > kSat16
  db_store.push_back(bio::random_residues(rng, 300, alphabet));
  std::vector<std::string_view> db(db_store.begin(), db_store.end());

  bio::QueryProfile profile(query, scheme);
  bio::AlignScratch scratch;
  bio::BatchMetrics metrics;
  auto got = bio::batch_align_scores(bio::AlignMode::kLocal, profile, db,
                                     scheme, 0, scratch, &metrics);
  if (simd_tier() != SimdTier::kScalar) {
    // The scalar tier never enters the int16 lanes, so nothing saturates.
    EXPECT_GE(metrics.saturations, 1u) << scheme_name;
  }
  EXPECT_EQ(got[0], static_cast<std::int64_t>(len) * self) << scheme_name;
  EXPECT_EQ(got[1], bio::sw_score(query, db[1], scheme)) << scheme_name;
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, BatchKernelProperties,
    ::testing::Values(KernelCase{"blosum62", bio::Alphabet::kProtein},
                      KernelCase{"pam250", bio::Alphabet::kProtein},
                      KernelCase{"dna", bio::Alphabet::kDna}),
    [](const auto& info) { return std::string(info.param.scheme); });

// ---------------------------------------------------------------------------
// Substitution model properties across the whole GTR family and t values.
// ---------------------------------------------------------------------------

class SubstModelProperties : public ::testing::TestWithParam<const char*> {
 protected:
  phylo::ModelSpec spec() const {
    Config params;
    params.set("kappa", "2.7");
    params.set("alpha", "0.4");
    params.set("pinv", "0.2");
    params.set("basefreq", "0.31,0.19,0.23,0.27");
    params.set("gtr_rates", "1.1,2.9,0.7,1.3,4.1,1.0");
    return phylo::ModelSpec::parse(GetParam(), params);
  }
};

TEST_P(SubstModelProperties, StochasticMatrixAtManyTimes) {
  auto model = spec().model;
  for (double t : {1e-6, 1e-3, 0.05, 0.3, 1.0, 3.0, 20.0}) {
    auto p = model->transition_probs(t);
    for (int i = 0; i < 4; ++i) {
      double row = 0;
      for (int j = 0; j < 4; ++j) {
        EXPECT_GE(p(i, j), 0.0) << GetParam() << " t=" << t;
        row += p(i, j);
      }
      EXPECT_NEAR(row, 1.0, 1e-8) << GetParam() << " t=" << t;
    }
  }
}

TEST_P(SubstModelProperties, ReversibilityAndSemigroup) {
  auto model = spec().model;
  const auto& pi = model->pi();
  for (double t : {0.02, 0.4, 1.7}) {
    auto p = model->transition_probs(t);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(pi[static_cast<std::size_t>(i)] * p(i, j),
                    pi[static_cast<std::size_t>(j)] * p(j, i), 1e-9)
            << GetParam();
      }
    }
    auto half = model->transition_probs(t / 2);
    EXPECT_LT(phylo::Matrix4::max_abs_diff(half * half, p), 1e-8) << GetParam();
  }
}

TEST_P(SubstModelProperties, RateModelMeanIsOne) {
  auto s = spec();
  EXPECT_NEAR(s.rates.mean_rate(), 1.0, 1e-8) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Models, SubstModelProperties,
                         ::testing::Values("JC69", "F81", "K80", "HKY85", "F84",
                                           "TN93", "GTR", "HKY85+G4", "GTR+G8",
                                           "K80+I", "TN93+G4+I"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '+') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Likelihood invariances on random trees.
// ---------------------------------------------------------------------------

class LikelihoodInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LikelihoodInvariance, ChildOrderIrrelevant) {
  Rng rng(GetParam());
  auto tree = phylo::random_tree(rng, {7, 0.1, "t"});
  auto model = std::make_shared<phylo::SubstModel>(phylo::SubstModel::jc69());
  auto aln = phylo::simulate_alignment(rng, tree, *model,
                                       phylo::RateModel::uniform(), {120});
  phylo::LikelihoodEngine engine(phylo::compress(aln), model,
                                 phylo::RateModel::uniform());
  double reference = engine.log_likelihood(tree);

  // Same topology written with rotated child order parses to a different
  // node arena; logL must not change.
  auto rebuilt = phylo::Tree::parse_newick(tree.to_newick());
  EXPECT_NEAR(engine.log_likelihood(rebuilt), reference, 1e-9);
}

TEST_P(LikelihoodInvariance, InsertThenRemoveLeafRestoresLikelihood) {
  Rng rng(GetParam() + 1000);
  auto tree = phylo::random_tree(rng, {6, 0.1, "t"});
  auto model = std::make_shared<phylo::SubstModel>(phylo::SubstModel::jc69());
  auto aln = phylo::simulate_alignment(rng, tree, *model,
                                       phylo::RateModel::uniform(), {100});
  // Alignment also needs the extra taxon: give it a random row.
  aln.names.push_back("extra");
  aln.rows.push_back(bio::random_residues(rng, 100, bio::Alphabet::kDna));

  phylo::LikelihoodEngine engine(phylo::compress(aln), model,
                                 phylo::RateModel::uniform());
  double before = engine.log_likelihood(tree);
  auto edges = tree.edge_nodes();
  int edge = edges[rng.next_below(edges.size())];
  int leaf = tree.insert_leaf_on_edge(edge, "extra", 0.05);
  tree.remove_leaf(leaf);
  EXPECT_NEAR(engine.log_likelihood(tree), before, 1e-9);
}

TEST_P(LikelihoodInvariance, GammaWithAlphaInfinityApproachesUniform) {
  Rng rng(GetParam() + 2000);
  auto tree = phylo::random_tree(rng, {5, 0.12, "t"});
  auto model = std::make_shared<phylo::SubstModel>(phylo::SubstModel::jc69());
  auto aln = phylo::simulate_alignment(rng, tree, *model,
                                       phylo::RateModel::uniform(), {150});
  phylo::LikelihoodEngine uniform(phylo::compress(aln), model,
                                  phylo::RateModel::uniform());
  phylo::LikelihoodEngine near_uniform(phylo::compress(aln), model,
                                       phylo::RateModel::gamma(500.0, 4));
  EXPECT_NEAR(near_uniform.log_likelihood(tree), uniform.log_likelihood(tree),
              0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LikelihoodInvariance,
                         ::testing::Values(11u, 23u, 37u, 59u));

// ---------------------------------------------------------------------------
// Scheduler correctness under randomized client histories.
// ---------------------------------------------------------------------------

class SchedulerRandomHistory : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerRandomHistory, AlwaysProducesTheExactSum) {
  test::register_toy_algorithm();
  Rng rng(GetParam());

  dist::SchedulerConfig cfg;
  cfg.lease_timeout = 50.0;
  cfg.bounds.min_ops = 1;
  dist::SchedulerCore core(cfg, std::make_unique<dist::AdaptiveThroughput>(5.0));
  auto dm = std::make_shared<test::ToySumDataManager>(
      200000 + rng.next_below(100000), rng.next_below(1000),
      /*stages=*/1 + static_cast<int>(rng.next_below(4)));
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();

  struct Sim {
    dist::ClientId id;
    bool alive = true;
  };
  std::vector<Sim> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back({core.client_joined("c" + std::to_string(i),
                                          1e4 * (1 + rng.next_below(10)), 0.0)});
  }

  test::ToySumAlgorithm algo;
  algo.initialize(data);

  double t = 0;
  int stalls = 0;
  while (!core.problem_complete(pid)) {
    t += 1;
    core.tick(t);

    // Random misbehaviour: a client may crash (lose its leases), a new
    // client may join.
    if (rng.next_double() < 0.02) {
      auto& victim = clients[rng.next_below(clients.size())];
      if (victim.alive) {
        victim.alive = false;  // silent crash: leases must time out
      }
    }
    if (rng.next_double() < 0.02) {
      clients.push_back({core.client_joined("late" + std::to_string(t),
                                            1e4 * (1 + rng.next_below(10)), t)});
    }

    bool progressed = false;
    for (auto& c : clients) {
      if (!c.alive) continue;
      auto unit = core.request_work(c.id, t);
      if (!unit) continue;
      // Randomly drop some results (simulates in-flight loss).
      if (rng.next_double() < 0.05) continue;
      dist::ResultUnit r;
      r.problem_id = unit->problem_id;
      r.unit_id = unit->unit_id;
      r.stage = unit->stage;
      r.payload = algo.process(*unit);
      core.submit_result(c.id, r, t + 0.5);
      progressed = true;
    }
    if (!progressed) {
      ASSERT_LT(++stalls, 100000) << "scheduler deadlocked at t=" << t;
    }
    // Ensure at least one live client exists so the run can finish.
    bool any_alive = false;
    for (auto& c : clients) any_alive |= c.alive;
    if (!any_alive) {
      clients.push_back({core.client_joined("rescue", 1e5, t)});
    }
  }

  EXPECT_EQ(test::read_u64_result(core.final_result(pid)), dm->expected());
  const auto& stats = core.stats();
  EXPECT_EQ(stats.results_accepted, dm->result_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerRandomHistory,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// Format round-trips under random inputs.
// ---------------------------------------------------------------------------

class RoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripFuzz, FastaPreservesRandomSequences) {
  Rng rng(GetParam());
  std::vector<bio::Sequence> seqs;
  auto n = 1 + rng.next_below(10);
  for (std::uint64_t i = 0; i < n; ++i) {
    bio::Sequence s;
    s.id = "seq_" + std::to_string(i);
    if (rng.next_double() < 0.5) s.description = "desc " + std::to_string(i);
    s.residues = bio::random_residues(rng, 1 + rng.next_below(400),
                                      bio::Alphabet::kProtein);
    seqs.push_back(std::move(s));
  }
  auto parsed = bio::parse_fasta(bio::to_fasta(seqs, 1 + rng.next_below(99)),
                                 bio::Alphabet::kProtein);
  ASSERT_EQ(parsed.size(), seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(parsed[i].id, seqs[i].id);
    EXPECT_EQ(parsed[i].residues, seqs[i].residues);
  }
}

TEST_P(RoundTripFuzz, NewickPreservesRandomTrees) {
  Rng rng(GetParam() + 500);
  auto tree = phylo::random_tree(
      rng, {3 + static_cast<int>(rng.next_below(40)), 0.2, "taxon"});
  auto reparsed = phylo::Tree::parse_newick(tree.to_newick());
  EXPECT_EQ(reparsed.to_newick(), tree.to_newick());
  EXPECT_EQ(phylo::rf_distance(reparsed, tree), 0);
  EXPECT_NEAR(reparsed.total_length(), tree.total_length(), 1e-9);
}

TEST_P(RoundTripFuzz, ByteBufferSurvivesRandomMixedPayloads) {
  Rng rng(GetParam() + 900);
  ByteWriter w;
  std::vector<int> kinds;
  std::vector<std::uint64_t> u64s;
  std::vector<double> doubles;
  std::vector<std::string> strings;
  for (int i = 0; i < 200; ++i) {
    switch (rng.next_below(3)) {
      case 0: {
        kinds.push_back(0);
        u64s.push_back(rng.next_u64());
        w.u64(u64s.back());
        break;
      }
      case 1: {
        kinds.push_back(1);
        doubles.push_back(rng.normal(0, 1e6));
        w.f64(doubles.back());
        break;
      }
      default: {
        kinds.push_back(2);
        std::string s;
        auto len = rng.next_below(50);
        for (std::uint64_t k = 0; k < len; ++k) {
          s.push_back(static_cast<char>(rng.next_below(256)));
        }
        strings.push_back(s);
        w.str(s);
        break;
      }
    }
  }
  ByteReader r(w.data());
  std::size_t iu = 0, id = 0, is = 0;
  for (int kind : kinds) {
    if (kind == 0) {
      EXPECT_EQ(r.u64(), u64s[iu++]);
    } else if (kind == 1) {
      EXPECT_DOUBLE_EQ(r.f64(), doubles[id++]);
    } else {
      EXPECT_EQ(r.str(), strings[is++]);
    }
  }
  r.expect_end();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripFuzz,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u, 60u));

}  // namespace
}  // namespace hdcs
