// Cross-tier equivalence for the runtime SIMD dispatch (util/simd.hpp).
//
// Every kernel behind the dispatch — the batch alignment lanes and the
// likelihood partials combine — must produce results bit-identical to the
// scalar reference under every tier the host can run. These tests pin each
// tier with ScopedSimdTier and compare against ground truth, covering the
// cases the smoke benches don't: empty/one-residue subjects, batches that
// don't fill a lane group, odd remainders, int16 saturation straddling both
// rails, and gap costs that fail the boundary precheck.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <string_view>
#include <vector>

#include "bio/align.hpp"
#include "bio/align_batch.hpp"
#include "bio/seqgen.hpp"
#include "phylo/likelihood.hpp"
#include "phylo/partials_kernels.hpp"
#include "phylo/simulate.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace hdcs {
namespace {

std::vector<SimdTier> available_tiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier t : {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2}) {
    if (simd_tier_available(t)) tiers.push_back(t);
  }
  return tiers;
}

TEST(SimdDispatch, ParseRoundTripsAndRejectsJunk) {
  SimdTier t = SimdTier::kAvx2;
  EXPECT_TRUE(parse_simd_tier("scalar", &t));
  EXPECT_EQ(t, SimdTier::kScalar);
  EXPECT_TRUE(parse_simd_tier("sse2", &t));
  EXPECT_EQ(t, SimdTier::kSse2);
  EXPECT_TRUE(parse_simd_tier("avx2", &t));
  EXPECT_EQ(t, SimdTier::kAvx2);
  EXPECT_FALSE(parse_simd_tier("avx512", &t));
  EXPECT_FALSE(parse_simd_tier("", &t));
  for (SimdTier tier : available_tiers()) {
    SimdTier back = SimdTier::kScalar;
    EXPECT_TRUE(parse_simd_tier(to_string(tier), &back));
    EXPECT_EQ(back, tier);
  }
}

TEST(SimdDispatch, ScopedOverrideSetsAndRestores) {
  const SimdTier before = simd_tier();
  {
    ScopedSimdTier pin(SimdTier::kScalar);
    EXPECT_EQ(simd_tier(), SimdTier::kScalar);
    {
      ScopedSimdTier inner(SimdTier::kSse2);
      EXPECT_EQ(simd_tier(), SimdTier::kSse2);
    }
    EXPECT_EQ(simd_tier(), SimdTier::kScalar);
  }
  EXPECT_EQ(simd_tier(), before);
}

TEST(SimdDispatch, RequestsAboveDetectedClampDown) {
  ScopedSimdTier pin(SimdTier::kAvx2);
  EXPECT_LE(static_cast<int>(simd_tier()),
            static_cast<int>(simd_tier_detected()));
}

// ---------------------------------------------------------------------------
// Batch alignment: every tier vs the per-pair scalar kernels.
// ---------------------------------------------------------------------------

constexpr bio::AlignMode kModes[] = {bio::AlignMode::kLocal,
                                     bio::AlignMode::kGlobal,
                                     bio::AlignMode::kSemiGlobal};

// Assert batch_align_scores == align_score per pair under every tier.
void expect_all_tiers_match(std::string_view query,
                            const std::vector<std::string>& db_store,
                            const bio::ScoringScheme& scheme,
                            std::uint64_t* saturations = nullptr) {
  std::vector<std::string_view> db(db_store.begin(), db_store.end());
  bio::QueryProfile profile(query, scheme);
  bio::AlignScratch scratch;
  for (bio::AlignMode mode : kModes) {
    std::vector<std::int64_t> expected;
    expected.reserve(db.size());
    for (auto subject : db) {
      expected.push_back(bio::align_score(mode, query, subject, scheme));
    }
    for (SimdTier tier : available_tiers()) {
      ScopedSimdTier pin(tier);
      bio::BatchMetrics metrics;
      auto got =
          bio::batch_align_scores(mode, profile, db, scheme, 0, scratch, &metrics);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], expected[i])
            << "mode " << static_cast<int>(mode) << " tier " << to_string(tier)
            << " subject " << i << " (len " << db[i].size() << ")";
      }
      if (saturations) *saturations += metrics.saturations;
    }
  }
}

TEST(SimdBatchAlign, FuzzRaggedBatchesMatchScalarUnderEveryTier) {
  Rng rng(17);
  auto scheme = bio::ScoringScheme::blosum62();
  // Lengths chosen to hit: empty, single residue, lane-count boundaries
  // (15/16/17 subjects), odd lengths, and wide ragged spreads.
  const std::size_t batch_sizes[] = {1, 7, 15, 16, 17, 33};
  for (std::size_t subjects : batch_sizes) {
    auto query =
        bio::random_residues(rng, 40 + rng.next_below(80), bio::Alphabet::kProtein);
    std::vector<std::string> db;
    for (std::size_t i = 0; i < subjects; ++i) {
      std::size_t len;
      switch (rng.next_below(5)) {
        case 0: len = 0; break;
        case 1: len = 1; break;
        case 2: len = 2 + rng.next_below(7); break;       // short odd/even mix
        default: len = 20 + rng.next_below(180); break;   // ragged bulk
      }
      db.push_back(bio::random_residues(rng, len, bio::Alphabet::kProtein));
    }
    expect_all_tiers_match(query, db, scheme);
  }
}

TEST(SimdBatchAlign, EmptyQueryAndEmptyDatabase) {
  auto scheme = bio::ScoringScheme::blosum62();
  expect_all_tiers_match("", {"ACDEFGH", "", "KLMNP"}, scheme);
  expect_all_tiers_match("ACDEFGH", {}, scheme);
}

TEST(SimdBatchAlign, LocalSaturationStraddlesUpperRail) {
  // match=100 drives identical-sequence SW scores to 100*len: len 310 stays
  // below kSat16 (31000), len 330 crosses it (33000) and must be re-run in
  // int64 — both must still equal the scalar kernel exactly.
  auto scheme = bio::ScoringScheme::dna(100, -4, 10, 1);
  std::string query(340, 'A');
  std::vector<std::string> db = {std::string(310, 'A'), std::string(330, 'A'),
                                 std::string(318, 'A'), std::string(322, 'A')};
  std::uint64_t saturations = 0;
  expect_all_tiers_match(query, db, scheme, &saturations);
  // The lane tiers (not scalar) must have detected at least one saturated
  // lane; the exact count depends on which tiers this host can run.
  if (simd_tier_detected() != SimdTier::kScalar) {
    EXPECT_GT(saturations, 0u);
  }
}

TEST(SimdBatchAlign, GlobalScoresStraddleLowerRail) {
  // mismatch=-400 with cheap-ish gaps: the best NW path for all-mismatch
  // pairs is two full-length gaps costing -(10 + len*70)*2, which crosses
  // kFloor16 = -16000 near len 114. Lanes below the rail must be re-run;
  // lanes just above must stay exact in int16.
  auto scheme = bio::ScoringScheme::dna(2, -400, 10, 70);
  std::string query(130, 'A');
  std::vector<std::string> db = {std::string(100, 'C'), std::string(110, 'C'),
                                 std::string(120, 'C'), std::string(130, 'C')};
  std::uint64_t saturations = 0;
  expect_all_tiers_match(query, db, scheme, &saturations);
  if (simd_tier_detected() != SimdTier::kScalar) {
    EXPECT_GT(saturations, 0u);
  }
}

TEST(SimdBatchAlign, HugeGapExtendFailsBoundaryPrecheckSafely) {
  // gap_extend=4000 makes NW/semi-global init cells unrepresentable in
  // int16 for subjects longer than ~2 residues; those lanes must take the
  // exact path up front (not rail-and-retry) and still match scalar.
  auto scheme = bio::ScoringScheme::dna(2, -1, 10, 4000);
  Rng rng(23);
  std::string query = bio::random_residues(rng, 30, bio::Alphabet::kDna);
  std::vector<std::string> db;
  for (std::size_t len : {0u, 1u, 2u, 3u, 10u, 40u}) {
    db.push_back(bio::random_residues(rng, len, bio::Alphabet::kDna));
  }
  expect_all_tiers_match(query, db, scheme);
}

// ---------------------------------------------------------------------------
// Likelihood partials: tiers share summation order, so doubles must be
// bit-identical — not merely close.
// ---------------------------------------------------------------------------

TEST(SimdPartialsKernel, TiersAgreeBitForBitOnOddCounts) {
  using phylo::PartialsCombineFn;
  Rng rng(31);
  double pm[16];
  for (double& v : pm) v = 0.01 + 0.99 * rng.next_double();
  for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u, 33u}) {
    std::vector<double> child(count * 4);
    for (double& v : child) v = rng.next_double();
    std::vector<double> ref;
    for (bool assign : {true, false}) {
      bool first_tier = true;
      for (SimdTier tier : available_tiers()) {
        std::vector<double> node(count * 4, 0.5);
        PartialsCombineFn fn = phylo::partials_combine_for(tier);
        ASSERT_NE(fn, nullptr);
        fn(pm, child.data(), node.data(), count, assign);
        if (first_tier) {
          ref = node;
          first_tier = false;
        } else {
          for (std::size_t i = 0; i < node.size(); ++i) {
            ASSERT_EQ(node[i], ref[i])
                << "tier " << to_string(tier) << " count " << count
                << " assign " << assign << " cell " << i;
          }
        }
      }
    }
  }
}

TEST(SimdLikelihood, LogLikelihoodBitIdenticalAcrossTiers) {
  Rng rng(41);
  auto tree = phylo::random_tree(rng, {12, 0.1, "t"});
  auto model = std::make_shared<phylo::SubstModel>(phylo::SubstModel::jc69());
  auto rates = phylo::RateModel::gamma(0.5, 4);
  auto aln = phylo::simulate_alignment(rng, tree, *model, rates, {300});
  phylo::LikelihoodEngine engine(phylo::compress(aln), model, rates);

  bool have_ref = false;
  double ref = 0;
  for (SimdTier tier : available_tiers()) {
    ScopedSimdTier pin(tier);
    double ll = engine.log_likelihood(tree);
    EXPECT_TRUE(std::isfinite(ll));
    if (!have_ref) {
      ref = ll;
      have_ref = true;
    } else {
      EXPECT_EQ(ll, ref) << "tier " << to_string(tier);
    }
  }
}

}  // namespace
}  // namespace hdcs
