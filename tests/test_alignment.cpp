#include "phylo/alignment.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hdcs::phylo {
namespace {

Alignment small() {
  Alignment a;
  a.names = {"t1", "t2", "t3"};
  a.rows = {"ACGTAC", "ACGTAC", "ACTTAC"};
  return a;
}

TEST(Alignment, ValidateAcceptsGoodAlignment) {
  EXPECT_NO_THROW(small().validate());
}

TEST(Alignment, ValidateRejectsBadShapes) {
  auto a = small();
  a.rows[1] = "ACGT";
  EXPECT_THROW(a.validate(), InputError);

  auto b = small();
  b.names[1] = "t1";  // duplicate
  EXPECT_THROW(b.validate(), InputError);

  auto c = small();
  c.rows[0][2] = 'J';
  EXPECT_THROW(c.validate(), InputError);

  Alignment empty;
  EXPECT_THROW(empty.validate(), InputError);

  auto d = small();
  d.names[2] = "";
  EXPECT_THROW(d.validate(), InputError);
}

TEST(Alignment, GapsAndNAllowed) {
  Alignment a;
  a.names = {"x", "y"};
  a.rows = {"AC-TN", "ACGT-"};
  EXPECT_NO_THROW(a.validate());
}

TEST(Alignment, FastaRoundTrip) {
  auto a = small();
  auto b = Alignment::from_fasta(a.to_fasta());
  EXPECT_EQ(b.names, a.names);
  EXPECT_EQ(b.rows, a.rows);
}

TEST(Alignment, FastaAcceptsGapsLowercase) {
  auto a = Alignment::from_fasta(">s1\nac-t\n>s2\nACGT\n");
  EXPECT_EQ(a.rows[0], "AC-T");
}

TEST(Alignment, PhylipRoundTrip) {
  auto a = small();
  auto b = Alignment::from_phylip(a.to_phylip());
  EXPECT_EQ(b.names, a.names);
  EXPECT_EQ(b.rows, a.rows);
}

TEST(Alignment, PhylipErrors) {
  EXPECT_THROW(Alignment::from_phylip("not a header"), InputError);
  EXPECT_THROW(Alignment::from_phylip("2 4\nt1 ACGT\n"), InputError);  // missing row
  EXPECT_THROW(Alignment::from_phylip("1 8\nt1 ACGT\n"), InputError);  // short row
}

TEST(Compress, MergesIdenticalColumns) {
  Alignment a;
  a.names = {"x", "y"};
  //          0123456
  a.rows = {"AAGTAGA", "CCGTCGC"};
  // Columns: (A,C) x4 at 0,1,4,6; (G,G) x2 at 2,5; (T,T) at 3.
  auto p = compress(a);
  EXPECT_EQ(p.taxa, 2u);
  EXPECT_EQ(p.patterns, 3u);
  EXPECT_DOUBLE_EQ(p.site_count(), 7.0);
  // First-occurrence order: (A,C), (G,G), (T,T).
  EXPECT_DOUBLE_EQ(p.weights[0], 4.0);
  EXPECT_DOUBLE_EQ(p.weights[1], 2.0);
  EXPECT_DOUBLE_EQ(p.weights[2], 1.0);
  EXPECT_EQ(p.code(0, 0), 0);  // A
  EXPECT_EQ(p.code(0, 1), 1);  // C
  EXPECT_EQ(p.code(1, 0), 2);  // G
}

TEST(Compress, GapAndNBecomeMissing) {
  Alignment a;
  a.names = {"x", "y"};
  a.rows = {"A-N", "AAA"};
  auto p = compress(a);
  EXPECT_EQ(p.code(0, 0), 0);
  EXPECT_EQ(p.code(1, 0), kMissing);
  // '-' and 'N' code identically, so those two columns compress together.
  EXPECT_EQ(p.patterns, 2u);
  EXPECT_DOUBLE_EQ(p.weights[1], 2.0);
}

TEST(Compress, TaxonIndexLookup) {
  auto p = compress(small());
  EXPECT_EQ(p.taxon_index("t2"), 1u);
  EXPECT_THROW((void)p.taxon_index("nope"), InputError);
}

TEST(Compress, AllUniqueColumnsNoCompression) {
  Alignment a;
  a.names = {"x", "y"};
  a.rows = {"ACGT", "AAAA"};
  auto p = compress(a);
  EXPECT_EQ(p.patterns, 4u);
}

}  // namespace
}  // namespace hdcs::phylo
