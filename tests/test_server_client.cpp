// End-to-end integration: real Server + real Clients over loopback TCP.

#include <gtest/gtest.h>

#include <thread>

#include "dist/client.hpp"
#include "dist/local_runner.hpp"
#include "dist/server.hpp"
#include "tests/toy_problem.hpp"
#include "util/logging.hpp"

namespace hdcs::dist {
namespace {

using test::ToySumDataManager;

ServerConfig quick_server_config() {
  ServerConfig cfg;
  cfg.scheduler.lease_timeout = 60.0;
  cfg.scheduler.bounds.min_ops = 1000;
  cfg.policy_spec = "adaptive:0.05";  // tiny units keep the test fast
  cfg.tick_interval_s = 0.05;
  cfg.no_work_retry_s = 0.02;
  test::register_toy_algorithm();
  return cfg;
}

ClientConfig client_config(std::uint16_t port, const std::string& name) {
  ClientConfig cfg;
  cfg.server_port = port;
  cfg.name = name;
  return cfg;
}

TEST(LocalRunner, MatchesDirectComputation) {
  test::register_toy_algorithm();
  ToySumDataManager dm(123456);
  LocalRunStats stats;
  auto result = run_locally(dm, 10000, &stats);
  EXPECT_EQ(test::read_u64_result(result), dm.expected());
  EXPECT_EQ(stats.units, 13u);  // ceil(123456 / 10000)
  EXPECT_DOUBLE_EQ(stats.total_cost_ops, 123456.0);
}

TEST(LocalRunner, StagedProblemRunsToCompletion) {
  test::register_toy_algorithm();
  ToySumDataManager dm(50000, 3, /*stages=*/5);
  auto result = run_locally(dm, 3000);
  EXPECT_EQ(test::read_u64_result(result), dm.expected());
}

TEST(ServerClient, SingleClientCompletesProblem) {
  Server server(quick_server_config());
  server.start();
  auto dm = std::make_shared<ToySumDataManager>(2000000);
  auto pid = server.submit_problem(dm);

  Client client(client_config(server.port(), "worker-0"));
  auto stats = client.run();

  ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
  EXPECT_EQ(test::read_u64_result(server.final_result(pid)), dm->expected());
  EXPECT_GT(stats.units_processed, 0u);
  server.stop();
}

TEST(ServerClient, MultipleConcurrentClients) {
  Server server(quick_server_config());
  server.start();
  auto dm = std::make_shared<ToySumDataManager>(8000000);
  auto pid = server.submit_problem(dm);

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<ClientRunStats> stats(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client(client_config(server.port(), "worker-" + std::to_string(i)));
      stats[i] = client.run();
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
  EXPECT_EQ(test::read_u64_result(server.final_result(pid)), dm->expected());

  std::uint64_t total_units = 0;
  for (const auto& s : stats) total_units += s.units_processed;
  EXPECT_EQ(total_units, server.stats().results_accepted);
  server.stop();
}

TEST(ServerClient, MultipleProblemsServedToOneClient) {
  Server server(quick_server_config());
  server.start();
  auto dm1 = std::make_shared<ToySumDataManager>(1000000, 0);
  auto dm2 = std::make_shared<ToySumDataManager>(1500000, 42);
  auto p1 = server.submit_problem(dm1);
  auto p2 = server.submit_problem(dm2);

  Client client(client_config(server.port(), "solo"));
  client.run();

  ASSERT_TRUE(server.wait_for_all(30.0));
  EXPECT_EQ(test::read_u64_result(server.final_result(p1)), dm1->expected());
  EXPECT_EQ(test::read_u64_result(server.final_result(p2)), dm2->expected());
  server.stop();
}

TEST(ServerClient, StagedProblemOverTcp) {
  Server server(quick_server_config());
  server.start();
  auto dm = std::make_shared<ToySumDataManager>(1000000, 0, /*stages=*/4);
  auto pid = server.submit_problem(dm);

  std::thread t1([&] { Client(client_config(server.port(), "a")).run(); });
  std::thread t2([&] { Client(client_config(server.port(), "b")).run(); });
  t1.join();
  t2.join();

  ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
  EXPECT_EQ(test::read_u64_result(server.final_result(pid)), dm->expected());
  server.stop();
}

TEST(ServerClient, CrashedClientWorkIsReissued) {
  auto cfg = quick_server_config();
  cfg.scheduler.lease_timeout = 0.3;  // fast reissue after the crash
  Server server(cfg);
  server.start();
  auto dm = std::make_shared<ToySumDataManager>(4000000);
  auto pid = server.submit_problem(dm);

  // The crasher vanishes after computing its first unit (no result sent).
  auto crasher_cfg = client_config(server.port(), "crasher");
  crasher_cfg.crash_after_units = 1;
  Client crasher(crasher_cfg);
  auto crash_stats = crasher.run();
  EXPECT_EQ(crash_stats.units_processed, 0u);  // nothing submitted

  Client survivor(client_config(server.port(), "survivor"));
  survivor.run();

  ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
  EXPECT_EQ(test::read_u64_result(server.final_result(pid)), dm->expected());
  server.stop();
}

TEST(ServerClient, DistributedResultMatchesLocalRunner) {
  test::register_toy_algorithm();
  // Ground truth via the serial runner.
  ToySumDataManager serial(3000000, 9);
  auto serial_result = run_locally(serial, 100000);

  Server server(quick_server_config());
  server.start();
  auto dm = std::make_shared<ToySumDataManager>(3000000, 9);
  auto pid = server.submit_problem(dm);
  std::thread t1([&] { Client(client_config(server.port(), "a")).run(); });
  std::thread t2([&] { Client(client_config(server.port(), "b")).run(); });
  std::thread t3([&] { Client(client_config(server.port(), "c")).run(); });
  t1.join();
  t2.join();
  t3.join();
  ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
  EXPECT_EQ(server.final_result(pid), serial_result);
  server.stop();
}

TEST(ServerClient, HeartbeatsKeepSlowClientAlive) {
  // A client whose unit takes longer than the server's client timeout must
  // survive via its heartbeat connection; without heartbeats, the same
  // setup expires the client and reissues its lease.
  auto run_with = [](bool heartbeats) {
    auto cfg = quick_server_config();
    cfg.scheduler.client_timeout = 0.3;
    cfg.heartbeat_interval_s = 0.1;
    cfg.tick_interval_s = 0.05;
    cfg.policy_spec = "fixed:30000000";  // one big unit
    Server server(cfg);
    server.start();
    auto dm = std::make_shared<ToySumDataManager>(30000000);
    auto pid = server.submit_problem(dm);

    auto ccfg = client_config(server.port(), heartbeats ? "beater" : "silent");
    ccfg.throttle = 12.0;  // stretch compute well past the client timeout
    ccfg.send_heartbeats = heartbeats;
    Client(ccfg).run();

    server.wait_for_problem(pid, 30.0);
    auto stats = server.stats();
    server.stop();
    return stats;
  };

  auto with_hb = run_with(true);
  EXPECT_EQ(with_hb.clients_expired, 0u)
      << "heartbeating client must not be expired";
  auto without_hb = run_with(false);
  EXPECT_GE(without_hb.clients_expired, 1u)
      << "silent client should have been expired by the timeout";
}

TEST(ServerClient, ThrottledClientReportsLowerBenchmark) {
  // The throttle knob exists so one box can emulate heterogeneous donors;
  // check it scales the self-reported benchmark.
  double full = Client::measure_benchmark();
  EXPECT_GT(full, 0.0);
}

TEST(ServerClient, DonorPoolContributesAllCpus) {
  // A dual-CPU donor (like the paper's cluster nodes) runs one client per
  // CPU; together they must complete the problem, each contributing.
  Server server(quick_server_config());
  server.start();
  auto dm = std::make_shared<ToySumDataManager>(6000000);
  auto pid = server.submit_problem(dm);

  ClientConfig base = client_config(server.port(), "cluster-node-3");
  auto stats = Client::run_pool(base, 2);
  ASSERT_EQ(stats.size(), 2u);

  ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
  EXPECT_EQ(test::read_u64_result(server.final_result(pid)), dm->expected());
  EXPECT_GT(stats[0].units_processed + stats[1].units_processed, 0u);
  EXPECT_THROW(Client::run_pool(base, 0), InputError);
  server.stop();
}

TEST(Server, StopIsIdempotentAndStartableOnce) {
  Server server(quick_server_config());
  server.start();
  EXPECT_GT(server.port(), 0);
  server.stop();
  server.stop();  // no crash
}

}  // namespace
}  // namespace hdcs::dist
