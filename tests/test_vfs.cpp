// Storage-fault vfs layer: clean-path RAII semantics, every injection
// point (open/write/short-write/sync/rename/torn-rename/unlink), the
// deterministic capacity ledger (ENOSPC + credit-back on unlink), path
// filtering, and seed determinism.

#include "util/vfs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace hdcs::vfs {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  std::string dir = testing::TempDir() + name;
  fs::remove_all(dir);
  make_dirs(dir);
  return dir;
}

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = std::byte(s[i]);
  return out;
}

TEST(Vfs, CreateWriteSyncReadRoundTrip) {
  std::string dir = fresh_dir("vfs_roundtrip");
  std::string path = dir + "/file.bin";
  auto payload = bytes_of("hello durable world");
  {
    File f = File::create(path);
    ASSERT_TRUE(f.valid());
    f.write_all(payload);
    f.sync();
    f.close();
    EXPECT_FALSE(f.valid());
  }
  EXPECT_EQ(read_file(path), payload);
  EXPECT_TRUE(exists(path));
  EXPECT_FALSE(read_file_if_exists(dir + "/missing").has_value());
  EXPECT_THROW(read_file(dir + "/missing"), IoError);
}

TEST(Vfs, AppendExtendsExistingFile) {
  std::string dir = fresh_dir("vfs_append");
  std::string path = dir + "/log";
  {
    File f = File::create(path);
    f.write_all(bytes_of("abc"));
    f.close();
  }
  {
    File f = File::append(path);
    f.write_all(bytes_of("def"));
    f.close();
  }
  EXPECT_EQ(read_file(path), bytes_of("abcdef"));
  EXPECT_THROW((void)File::append(dir + "/missing"), IoError);
  File created = File::append(dir + "/missing", /*create_missing=*/true);
  EXPECT_TRUE(created.valid());
}

TEST(Vfs, OpenErrorInjection) {
  std::string dir = fresh_dir("vfs_openerr");
  StorageFaultSpec spec;
  spec.open_error_prob = 1.0;
  ScopedStorageFaultPlan scoped(spec);
  EXPECT_THROW((void)File::create(dir + "/f"), IoError);
  EXPECT_GE(scoped.plan().stats().open_errors, 1u);
}

TEST(Vfs, WriteErrorInjectionLandsNothing) {
  std::string dir = fresh_dir("vfs_writeerr");
  std::string path = dir + "/f";
  StorageFaultSpec spec;
  spec.write_error_prob = 1.0;
  ScopedStorageFaultPlan scoped(spec);
  File f = File::create(path);
  EXPECT_THROW(f.write_all(bytes_of("doomed payload")), IoError);
  f.close();
  EXPECT_EQ(fs::file_size(path), 0u);
  EXPECT_GE(scoped.plan().stats().write_errors, 1u);
}

TEST(Vfs, ShortWriteLandsStrictPrefix) {
  std::string dir = fresh_dir("vfs_short");
  std::string path = dir + "/f";
  auto payload = bytes_of("0123456789abcdef0123456789abcdef");
  StorageFaultSpec spec;
  spec.short_write_prob = 1.0;
  ScopedStorageFaultPlan scoped(spec);
  File f = File::create(path);
  EXPECT_THROW(f.write_all(payload), IoError);
  f.close();
  // read_file is never faulted, so the on-disk state is observable even
  // with the plan still installed: a strict prefix of the payload.
  auto on_disk = read_file(path);
  EXPECT_LT(on_disk.size(), payload.size());
  EXPECT_TRUE(std::equal(on_disk.begin(), on_disk.end(), payload.begin()));
  EXPECT_GE(scoped.plan().stats().short_writes, 1u);
}

TEST(Vfs, SyncFailurePoisonsHandle) {
  std::string dir = fresh_dir("vfs_syncerr");
  std::string path = dir + "/f";
  StorageFaultSpec spec;
  spec.sync_error_prob = 1.0;
  ScopedStorageFaultPlan scoped(spec);
  File f = File::create(path);
  f.write_all(bytes_of("x"));
  EXPECT_THROW(f.sync(), IoError);
  // fsyncgate: the handle is poisoned — further mutation throws without
  // touching the kernel (the plan records exactly one injected fault).
  EXPECT_THROW(f.sync(), IoError);
  EXPECT_THROW(f.write_all(bytes_of("y")), IoError);
  EXPECT_EQ(scoped.plan().stats().sync_errors, 1u);
}

TEST(Vfs, CapacityLedgerEnospcAndCreditBack) {
  std::string dir = fresh_dir("vfs_capacity");
  std::string path = dir + "/f";
  StorageFaultSpec spec;
  spec.disk_capacity_bytes = 100;
  ScopedStorageFaultPlan scoped(spec);
  std::vector<std::byte> sixty(60, std::byte{0xaa});
  {
    File f = File::create(path);
    f.write_all(sixty);  // fits: 60/100
    EXPECT_EQ(scoped.plan().live_bytes(), 60u);
    // Second 60 does not fit: the remaining 40 land, then ENOSPC.
    EXPECT_THROW(f.write_all(sixty), IoError);
    f.close();
  }
  EXPECT_EQ(scoped.plan().live_bytes(), 100u);
  EXPECT_GE(scoped.plan().stats().enospc, 1u);
  EXPECT_EQ(fs::file_size(path), 100u);  // the disk really filled mid-write
  // Unlink credits the ledger back — compaction genuinely frees space.
  EXPECT_TRUE(remove_file(path));
  EXPECT_EQ(scoped.plan().live_bytes(), 0u);
  File again = File::create(path);
  again.write_all(sixty);  // fits again after the credit
  again.close();
}

TEST(Vfs, TruncatingCreateResetsCharge) {
  std::string dir = fresh_dir("vfs_trunc_create");
  std::string path = dir + "/f";
  StorageFaultSpec spec;
  spec.disk_capacity_bytes = 100;
  ScopedStorageFaultPlan scoped(spec);
  std::vector<std::byte> eighty(80, std::byte{0x11});
  {
    File f = File::create(path);
    f.write_all(eighty);
    f.close();
  }
  EXPECT_EQ(scoped.plan().live_bytes(), 80u);
  {
    // O_TRUNC re-create: the old 80 bytes are gone from the disk and must
    // be gone from the ledger too.
    File f = File::create(path);
    EXPECT_EQ(scoped.plan().live_bytes(), 0u);
    f.write_all(eighty);
    f.close();
  }
  EXPECT_EQ(scoped.plan().live_bytes(), 80u);
}

TEST(Vfs, PathFilterLimitsFaultsAndCharges) {
  std::string dir = fresh_dir("vfs_filter");
  StorageFaultSpec spec;
  spec.write_error_prob = 1.0;
  spec.path_filter = "walstorm";
  ScopedStorageFaultPlan scoped(spec);
  File clean = File::create(dir + "/results.txt");
  clean.write_all(bytes_of("safe"));  // outside the filter: never faulted
  clean.close();
  File dirty = File::create(dir + "/walstorm.seg");
  EXPECT_THROW(dirty.write_all(bytes_of("doomed")), IoError);
  dirty.close();
}

TEST(Vfs, RenameErrorLeavesDestinationUntouched) {
  std::string dir = fresh_dir("vfs_renameerr");
  std::string src = dir + "/src";
  std::string dst = dir + "/dst";
  {
    File f = File::create(src);
    f.write_all(bytes_of("payload"));
    f.close();
  }
  StorageFaultSpec spec;
  spec.rename_error_prob = 1.0;
  ScopedStorageFaultPlan scoped(spec);
  EXPECT_THROW(rename_file(src, dst), IoError);
  EXPECT_TRUE(exists(src));
  EXPECT_FALSE(exists(dst));
  EXPECT_GE(scoped.plan().stats().rename_errors, 1u);
}

TEST(Vfs, TornRenameLeavesTruncatedDestination) {
  std::string dir = fresh_dir("vfs_torn");
  std::string src = dir + "/src";
  std::string dst = dir + "/dst";
  auto payload = bytes_of("0123456789abcdef0123456789abcdef");
  {
    File f = File::create(src);
    f.write_all(payload);
    f.close();
  }
  StorageFaultSpec spec;
  spec.torn_rename_prob = 1.0;
  ScopedStorageFaultPlan scoped(spec);
  EXPECT_THROW(rename_file(src, dst), IoError);
  // The crash-on-non-atomic-fs model: source consumed, destination holds a
  // strict prefix — a reader must detect this via its CRC envelope.
  EXPECT_FALSE(exists(src));
  ASSERT_TRUE(exists(dst));
  auto torn = read_file(dst);
  ASSERT_LT(torn.size(), payload.size());
  EXPECT_TRUE(std::equal(torn.begin(), torn.end(), payload.begin()));
  EXPECT_GE(scoped.plan().stats().torn_renames, 1u);
}

TEST(Vfs, UnlinkErrorKeepsFileAndCharge) {
  std::string dir = fresh_dir("vfs_unlinkerr");
  std::string path = dir + "/f";
  StorageFaultSpec spec;
  spec.unlink_error_prob = 1.0;
  spec.disk_capacity_bytes = 1000;
  ScopedStorageFaultPlan scoped(spec);
  {
    File f = File::create(path);
    f.write_all(std::vector<std::byte>(10, std::byte{0x7f}));
    f.close();
  }
  EXPECT_EQ(scoped.plan().live_bytes(), 10u);
  EXPECT_FALSE(remove_file(path));
  EXPECT_TRUE(exists(path));
  EXPECT_EQ(scoped.plan().live_bytes(), 10u);  // charge stays with the file
  EXPECT_GE(scoped.plan().stats().unlink_errors, 1u);
}

TEST(Vfs, DirBytesSumsFlatRegularFiles) {
  std::string dir = fresh_dir("vfs_dirbytes");
  EXPECT_EQ(dir_bytes(dir + "/missing"), 0u);
  {
    File a = File::create(dir + "/a");
    a.write_all(std::vector<std::byte>(30, std::byte{1}));
    a.close();
    File b = File::create(dir + "/b");
    b.write_all(std::vector<std::byte>(12, std::byte{2}));
    b.close();
  }
  EXPECT_EQ(dir_bytes(dir), 42u);
}

TEST(Vfs, SameSeedSameStorm) {
  StorageFaultSpec spec;
  spec.seed = 99;
  spec.write_error_prob = 0.5;
  StorageFaultPlan a(spec);
  StorageFaultPlan b(spec);
  for (int i = 0; i < 200; ++i) {
    std::size_t ka = 0, kb = 0;
    EXPECT_EQ(a.write_fault("p", 64, ka), b.write_fault("p", 64, kb));
    EXPECT_EQ(ka, kb);
  }
  EXPECT_EQ(a.stats().write_errors, b.stats().write_errors);
}

}  // namespace
}  // namespace hdcs::vfs
