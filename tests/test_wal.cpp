// WAL durability edges: record codec, segment rotation + recovery,
// compaction, torn/corrupt tail fuzzing (recovery must stop at the last
// valid record, never crash), replayed-core == live-core equivalence, the
// epoch fence, and the client's session-surviving reconnect backoff.

#include "dist/wal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dist/client.hpp"
#include "dist/scheduler_core.hpp"
#include "tests/toy_problem.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/vfs.hpp"

namespace hdcs::dist {
namespace {

using test::ToySumAlgorithm;
using test::ToySumDataManager;

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  std::string dir = testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

SchedulerConfig small_config() {
  SchedulerConfig cfg;
  cfg.lease_timeout = 100.0;
  cfg.bounds.min_ops = 1;
  cfg.bounds.max_ops = 1e9;
  return cfg;
}

ResultUnit execute(const WorkUnit& unit, std::span<const std::byte> problem_data) {
  ToySumAlgorithm algo;
  algo.initialize(problem_data);
  ResultUnit r;
  r.problem_id = unit.problem_id;
  r.unit_id = unit.unit_id;
  r.stage = unit.stage;
  r.epoch = unit.epoch;
  r.payload = algo.process(unit);
  return r;
}

WalRecord sample_record(WalOp op, std::uint64_t lsn) {
  WalRecord rec;
  rec.lsn = lsn;
  rec.op = op;
  rec.now = 1.25 * static_cast<double>(lsn);
  switch (op) {
    case WalOp::kClientJoined:
      rec.name = "lab3-pc07";
      rec.benchmark = 5.25e7;
      break;
    case WalOp::kClientLeft:
    case WalOp::kHeartbeat:
    case WalOp::kRequestWork:
      rec.arg = 17;
      break;
    case WalOp::kEpoch:
      rec.arg = 4;
      break;
    case WalOp::kSubmitResult: {
      rec.arg = 17;
      rec.result.problem_id = 2;
      rec.result.unit_id = 33;
      rec.result.stage = 1;
      ByteWriter w;
      w.str("result payload");
      rec.result.payload = w.take();
      rec.result.payload_crc = 0xfeedf00d;
      rec.result.epoch = 3;
      break;
    }
    case WalOp::kTick:
      break;
  }
  return rec;
}

TEST(Wal, RecordCodecRoundTripsEveryOp) {
  for (auto op : {WalOp::kClientJoined, WalOp::kClientLeft, WalOp::kHeartbeat,
                  WalOp::kRequestWork, WalOp::kSubmitResult, WalOp::kTick,
                  WalOp::kEpoch}) {
    auto rec = sample_record(op, 42);
    auto back = decode_wal_record(encode_wal_record(rec));
    EXPECT_EQ(back.lsn, rec.lsn);
    EXPECT_EQ(back.op, rec.op);
    EXPECT_DOUBLE_EQ(back.now, rec.now);
    EXPECT_EQ(back.arg, rec.arg);
    EXPECT_EQ(back.name, rec.name);
    EXPECT_DOUBLE_EQ(back.benchmark, rec.benchmark);
    if (op == WalOp::kSubmitResult) {
      EXPECT_EQ(back.result.problem_id, rec.result.problem_id);
      EXPECT_EQ(back.result.unit_id, rec.result.unit_id);
      EXPECT_EQ(back.result.stage, rec.result.stage);
      EXPECT_EQ(back.result.payload, rec.result.payload);
      EXPECT_EQ(back.result.payload_crc, rec.result.payload_crc);
      EXPECT_EQ(back.result.epoch, rec.result.epoch);
    }
  }
}

TEST(Wal, RecordCodecRejectsCorruption) {
  auto bytes = encode_wal_record(sample_record(WalOp::kSubmitResult, 1));
  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_THROW(decode_wal_record(truncated), Error);
  auto bad_op = bytes;
  bad_op[8] = std::byte{0xff};  // op byte follows the u64 lsn
  EXPECT_THROW(decode_wal_record(bad_op), ProtocolError);
}

TEST(Wal, AppendRotateReopenRecovers) {
  std::string dir = fresh_dir("wal_rotate");
  constexpr int kRecords = 60;
  {
    WalLog wal({dir, 1024});  // tiny segments to force several rotations
    auto rec0 = wal.take_recovery();
    EXPECT_FALSE(rec0.base_snapshot.has_value());
    EXPECT_TRUE(rec0.tail.empty());
    EXPECT_EQ(rec0.next_lsn, 1u);
    for (int i = 0; i < kRecords; ++i) {
      auto lsn = wal.append(sample_record(
          static_cast<WalOp>(1 + i % 7), 0));  // 0 = assign next lsn
      EXPECT_EQ(lsn, static_cast<std::uint64_t>(i + 1));
    }
    EXPECT_GT(wal.segment_count(), 1u);  // rotation actually happened
    wal.sync();
  }
  WalLog wal({dir, 1024});
  auto rec = wal.take_recovery();
  EXPECT_FALSE(rec.base_snapshot.has_value());
  ASSERT_EQ(rec.tail.size(), static_cast<std::size_t>(kRecords));
  EXPECT_GT(rec.segments_scanned, 1u);
  EXPECT_EQ(rec.torn_bytes_truncated, 0u);
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(rec.tail[static_cast<std::size_t>(i)].lsn,
              static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(rec.tail[static_cast<std::size_t>(i)].op,
              static_cast<WalOp>(1 + i % 7));
  }
  EXPECT_EQ(wal.next_lsn(), static_cast<std::uint64_t>(kRecords + 1));
  // Appending a wrong explicit lsn (a standby fed a gapped stream) throws.
  EXPECT_THROW(wal.append(sample_record(WalOp::kTick, 5)), ProtocolError);
}

TEST(Wal, CompactionFoldsTailIntoBase) {
  std::string dir = fresh_dir("wal_compact");
  std::vector<std::byte> snapshot;
  for (int i = 0; i < 100; ++i) snapshot.push_back(std::byte{std::uint8_t(i)});
  {
    WalLog wal({dir, 1024});
    (void)wal.take_recovery();
    for (int i = 0; i < 10; ++i) wal.append(sample_record(WalOp::kTick, 0));
    wal.compact(snapshot, 1.0);
    EXPECT_EQ(wal.segment_count(), 1u);  // old segments unlinked
    for (int i = 0; i < 3; ++i) wal.append(sample_record(WalOp::kHeartbeat, 0));
    wal.sync();
  }
  WalLog wal({dir, 1024});
  auto rec = wal.take_recovery();
  ASSERT_TRUE(rec.base_snapshot.has_value());
  EXPECT_EQ(*rec.base_snapshot, snapshot);
  ASSERT_EQ(rec.tail.size(), 3u);  // only the post-compaction records
  EXPECT_EQ(rec.tail[0].lsn, 11u);
  EXPECT_EQ(rec.next_lsn, 14u);
}

TEST(Wal, ResetAdoptsPrimarySnapshotAndLsn) {
  std::string dir = fresh_dir("wal_reset");
  std::vector<std::byte> snapshot(32, std::byte{0xab});
  {
    WalLog wal({dir, 4096});
    (void)wal.take_recovery();
    for (int i = 0; i < 5; ++i) wal.append(sample_record(WalOp::kTick, 0));
    // Replication sync: discard local history, adopt the primary's base
    // and stream position.
    wal.reset(snapshot, 500, 2.0);
    EXPECT_EQ(wal.next_lsn(), 500u);
    wal.append(sample_record(WalOp::kTick, 500));
    wal.sync();
  }
  WalLog wal({dir, 4096});
  auto rec = wal.take_recovery();
  ASSERT_TRUE(rec.base_snapshot.has_value());
  EXPECT_EQ(*rec.base_snapshot, snapshot);
  ASSERT_EQ(rec.tail.size(), 1u);
  EXPECT_EQ(rec.tail[0].lsn, 500u);
}

/// Copy a pristine WAL directory into a scratch one for corruption.
void clone_dir(const std::string& from, const std::string& to) {
  fs::remove_all(to);
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from)) {
    fs::copy_file(entry.path(), fs::path(to) / entry.path().filename());
  }
}

std::size_t recovered_count(const std::string& dir) {
  WalLog wal({dir, 1024});
  auto rec = wal.take_recovery();
  // Whatever survives must be an lsn-contiguous prefix from 1.
  for (std::size_t i = 0; i < rec.tail.size(); ++i) {
    EXPECT_EQ(rec.tail[i].lsn, static_cast<std::uint64_t>(i + 1));
  }
  return rec.tail.size();
}

TEST(Wal, TornAndBitFlippedTailsNeverCrashRecovery) {
  // Build a multi-segment log, then attack the newest segment with every
  // truncation length and a sweep of single-bit flips (including frames
  // straddling the segment boundary via the *previous* segment's tail).
  // Recovery must never throw and must always yield an lsn-contiguous
  // prefix of what was written.
  std::string pristine = fresh_dir("wal_fuzz_pristine");
  constexpr std::size_t kRecords = 40;
  {
    WalLog wal({pristine, 1024});
    (void)wal.take_recovery();
    for (std::size_t i = 0; i < kRecords; ++i) {
      wal.append(sample_record(static_cast<WalOp>(1 + i % 7), 0));
    }
    wal.sync();
  }
  ASSERT_EQ(recovered_count(pristine), kRecords);

  // Newest-first segment paths (recovery sorts by the lsn in the name).
  std::vector<std::string> segs;
  for (const auto& entry : fs::directory_iterator(pristine)) {
    if (entry.path().filename().string().rfind("wal-", 0) == 0) {
      segs.push_back(entry.path().string());
    }
  }
  std::sort(segs.begin(), segs.end());
  ASSERT_GE(segs.size(), 2u);

  std::string work = testing::TempDir() + "wal_fuzz_work";
  auto mutate = [&](const std::string& seg, auto&& fn) {
    clone_dir(pristine, work);
    std::string target =
        work + "/" + fs::path(seg).filename().string();
    auto size = fs::file_size(target);
    fn(target, size);
    std::size_t n = 0;
    EXPECT_NO_THROW(n = recovered_count(work)) << target;
    EXPECT_LE(n, kRecords);
  };

  // Truncations: every length of the last segment, plus a torn tail of the
  // *previous* segment (which orphans the whole last segment).
  const std::string& last = segs.back();
  auto last_size = fs::file_size(last);
  for (std::uintmax_t cut = 0; cut < last_size; ++cut) {
    mutate(last, [&](const std::string& target, std::uintmax_t) {
      fs::resize_file(target, cut);
    });
  }
  mutate(segs[segs.size() - 2], [&](const std::string& target,
                                    std::uintmax_t size) {
    ASSERT_GT(size, 3u);
    fs::resize_file(target, size - 3);
  });

  // Bit flips: deterministic sample of byte offsets across the last two
  // segments (length fields, CRCs, lsns, and payload bytes all get hit).
  Rng rng(99);
  for (const std::string& seg : {segs[segs.size() - 2], last}) {
    auto size = fs::file_size(seg);
    for (int trial = 0; trial < 48; ++trial) {
      auto at = static_cast<std::uintmax_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
      auto bit = static_cast<int>(rng.uniform_int(0, 7));
      mutate(seg, [&](const std::string& target, std::uintmax_t) {
        std::fstream f(target, std::ios::in | std::ios::out | std::ios::binary);
        f.seekg(static_cast<std::streamoff>(at));
        char c = 0;
        f.get(c);
        c = static_cast<char>(c ^ (1 << bit));
        f.seekp(static_cast<std::streamoff>(at));
        f.put(c);
      });
    }
  }
  fs::remove_all(pristine);
  fs::remove_all(work);
}

TEST(Wal, ReplayedCoreMatchesLiveCoreFieldForField) {
  // Drive a live core through joins, leases, submissions, heartbeats,
  // ticks, a departure and an epoch bump, logging each mutation exactly
  // like the server does. Replaying base + tail into a fresh core with the
  // same problems must land in a byte-identical exact snapshot.
  std::string dir = fresh_dir("wal_replay");
  SchedulerCore live(small_config(), std::make_unique<FixedGranularity>(40));
  auto pid = live.submit_problem(std::make_shared<ToySumDataManager>(400));
  auto problem_data = ToySumDataManager(400).problem_data();

  {
    WalLog wal({dir, 4096});
    (void)wal.take_recovery();
    ByteWriter base;
    live.snapshot_exact(base);
    wal.compact(base.data(), 0.0);

    auto log = [&](WalRecord rec) {
      rec.lsn = 0;
      wal.append(rec);
    };
    double t = 1.0;
    WalRecord join;
    join.op = WalOp::kClientJoined;
    join.now = t;
    join.name = "donor-a";
    join.benchmark = 1e6;
    auto a = live.client_joined(join.name, join.benchmark, t);
    join.arg = a;
    log(join);
    join.name = "donor-b";
    auto b = live.client_joined(join.name, join.benchmark, t += 0.5);
    join.now = t;
    join.arg = b;
    log(join);

    for (int round = 0; round < 6; ++round) {
      for (ClientId c : {a, b}) {
        t += 0.25;
        auto unit = live.request_work(c, t);
        WalRecord req;
        req.op = WalOp::kRequestWork;
        req.now = t;
        req.arg = c;
        log(req);
        if (!unit) continue;
        t += 0.25;
        auto result = execute(*unit, problem_data);
        WalRecord sub;
        sub.op = WalOp::kSubmitResult;
        sub.now = t;
        sub.arg = c;
        sub.result = result;
        live.submit_result(c, result, t);
        log(sub);
      }
      t += 0.1;
      live.heartbeat(a, t);
      WalRecord hb;
      hb.op = WalOp::kHeartbeat;
      hb.now = t;
      hb.arg = a;
      log(hb);
      t += 0.1;
      live.tick(t);
      WalRecord tick;
      tick.op = WalOp::kTick;
      tick.now = t;
      log(tick);
    }
    t += 0.5;
    live.client_left(b, t);
    WalRecord left;
    left.op = WalOp::kClientLeft;
    left.now = t;
    left.arg = b;
    log(left);
    t += 0.5;
    live.bump_epoch(live.epoch() + 1);
    WalRecord ep;
    ep.op = WalOp::kEpoch;
    ep.now = t;
    ep.arg = live.epoch();
    log(ep);
    wal.sync();
  }

  SchedulerCore replayed(small_config(),
                         std::make_unique<FixedGranularity>(40));
  auto pid2 = replayed.submit_problem(std::make_shared<ToySumDataManager>(400));
  ASSERT_EQ(pid2, pid);
  WalLog wal({dir, 4096});
  auto rec = wal.take_recovery();
  ASSERT_TRUE(rec.base_snapshot.has_value());
  ByteReader r{std::span<const std::byte>(*rec.base_snapshot)};
  replayed.restore_exact(r);
  EXPECT_GT(rec.tail.size(), 10u);
  for (const auto& record : rec.tail) apply_wal_record(replayed, record);

  ByteWriter live_snap, replay_snap;
  live.snapshot_exact(live_snap);
  replayed.snapshot_exact(replay_snap);
  EXPECT_EQ(live_snap.data().size(), replay_snap.data().size());
  EXPECT_TRUE(std::equal(live_snap.data().begin(), live_snap.data().end(),
                         replay_snap.data().begin(), replay_snap.data().end()))
      << "replayed core diverged from the live core";
  fs::remove_all(dir);
}

TEST(Wal, EpochFenceRejectsDeposedPrimaryResults) {
  SchedulerCore core(small_config(), std::make_unique<FixedGranularity>(50));
  core.submit_problem(std::make_shared<ToySumDataManager>(200));
  auto problem_data = ToySumDataManager(200).problem_data();
  auto c = core.client_joined("donor", 1e6, 0.0);

  auto unit = core.request_work(c, 1.0);
  ASSERT_TRUE(unit.has_value());
  EXPECT_EQ(unit->epoch, 1u);  // leases carry the current term
  auto stale = execute(*unit, problem_data);

  // A standby promoted: the term advances, the old lease's echo is fenced.
  core.bump_epoch(2);
  EXPECT_FALSE(core.submit_result(c, stale, 2.0));
  EXPECT_EQ(core.stats().results_rejected_stale_epoch, 1u);

  // Fresh lease under the new term is accepted...
  auto unit2 = core.request_work(c, 3.0);
  ASSERT_TRUE(unit2.has_value());
  EXPECT_EQ(unit2->epoch, 2u);
  EXPECT_TRUE(core.submit_result(c, execute(*unit2, problem_data), 4.0));

  // ...and a legacy (pre-v6) donor result with epoch 0 is never fenced.
  auto unit3 = core.request_work(c, 5.0);
  ASSERT_TRUE(unit3.has_value());
  auto legacy = execute(*unit3, problem_data);
  legacy.epoch = 0;
  EXPECT_TRUE(core.submit_result(c, legacy, 6.0));

  // Terms are monotonic.
  EXPECT_THROW(core.bump_epoch(1), ProtocolError);
}

TEST(Wal, ReconnectBackoffResetsOnlyAfterHealthySession) {
  ReconnectBackoff backoff(0.1, 1.0, 3);
  EXPECT_DOUBLE_EQ(backoff.current_delay(), 0.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.1);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.2);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.4);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.8);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 1.0);  // capped
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 1.0);

  // Reconnecting alone does not reset: two acks then a lost session keep
  // the escalation (the streak restarts, not the delay).
  EXPECT_FALSE(backoff.heartbeat_ok());
  EXPECT_FALSE(backoff.heartbeat_ok());
  backoff.session_lost();
  EXPECT_FALSE(backoff.heartbeat_ok());
  EXPECT_FALSE(backoff.heartbeat_ok());
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 1.0);  // still escalated
  backoff.session_lost();

  // Three consecutive acks prove the session healthy and reset the delay,
  // so the donor that survived one blip pays the short initial wait again.
  EXPECT_FALSE(backoff.heartbeat_ok());
  EXPECT_FALSE(backoff.heartbeat_ok());
  EXPECT_TRUE(backoff.heartbeat_ok());
  EXPECT_DOUBLE_EQ(backoff.current_delay(), 0.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.1);

  // reset_beats <= 0 disables the reset entirely.
  ReconnectBackoff never(0.1, 1.0, 0);
  (void)never.next_delay();
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(never.heartbeat_ok());
  EXPECT_DOUBLE_EQ(never.next_delay(), 0.2);
}

TEST(Wal, FsyncFailureEntersFailedStateNotSilence) {
  // The pre-v7 bug: close_segment ignored ::fsync's return value. Now an
  // injected fsync failure must surface as the failed state — append and
  // sync refuse — instead of being silently swallowed.
  std::string dir = fresh_dir("wal_fsyncgate");
  WalLog wal({dir, 1 << 20});
  (void)wal.take_recovery();
  wal.append(sample_record(WalOp::kTick, 0));
  {
    vfs::StorageFaultSpec spec;
    spec.sync_error_prob = 1.0;
    spec.path_filter = "wal_fsyncgate";
    vfs::ScopedStorageFaultPlan scoped(spec);
    EXPECT_THROW(wal.sync(), IoError);
  }
  EXPECT_TRUE(wal.failed());
  // fsyncgate: no retry path exists — both mutations refuse even though
  // the injection plan is gone.
  EXPECT_THROW(wal.sync(), IoError);
  EXPECT_THROW(wal.append(sample_record(WalOp::kTick, 0)), IoError);
}

TEST(Wal, WriteFailureMarksFailedAndCompactRebuilds) {
  std::string dir = fresh_dir("wal_rebuild");
  std::vector<std::byte> snapshot(64, std::byte{0xcd});
  WalLog wal({dir, 1 << 20});
  (void)wal.take_recovery();
  for (int i = 0; i < 4; ++i) wal.append(sample_record(WalOp::kTick, 0));
  wal.sync();
  {
    vfs::StorageFaultSpec spec;
    spec.write_error_prob = 1.0;
    spec.path_filter = "wal_rebuild";
    vfs::ScopedStorageFaultPlan scoped(spec);
    EXPECT_THROW(wal.append(sample_record(WalOp::kTick, 0)), IoError);
    EXPECT_GE(scoped.plan().stats().write_errors, 1u);
  }
  EXPECT_TRUE(wal.failed());
  const std::uint64_t lsn_after_failure = wal.next_lsn();
  EXPECT_EQ(lsn_after_failure, 5u);  // the failed append assigned no lsn

  // compact() is the recovery path out of the failed state: the snapshot
  // captures everything (including whatever the broken segments lost), so
  // a successful rebuild makes the log clean again.
  wal.compact(snapshot, 9.0);
  EXPECT_FALSE(wal.failed());
  wal.append(sample_record(WalOp::kHeartbeat, 0));
  wal.sync();

  WalLog reopened({dir, 1 << 20});
  auto rec = reopened.take_recovery();
  ASSERT_TRUE(rec.base_snapshot.has_value());
  EXPECT_EQ(*rec.base_snapshot, snapshot);
  ASSERT_EQ(rec.tail.size(), 1u);
  EXPECT_EQ(rec.tail[0].op, WalOp::kHeartbeat);
}

TEST(Wal, FaultStormFuzzRecoveryNeverCrashes) {
  // Seeded storms over every WAL operation: whatever the storm did, a
  // clean reopen must yield an lsn-contiguous tail and a consistent
  // next_lsn — shorter history is acceptable, crashes and gaps are not.
  // (torn_rename is exercised against the checkpoint envelope in
  // test_checkpoint.cpp; the WAL's base.ckpt write goes through the same
  // envelope and would surface as ProtocolError, a different contract.)
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    std::string dir = fresh_dir("wal_fuzz");
    vfs::StorageFaultSpec spec;
    spec.seed = seed;
    spec.write_error_prob = 0.08;
    spec.short_write_prob = 0.05;
    spec.sync_error_prob = 0.08;
    spec.open_error_prob = 0.03;
    spec.unlink_error_prob = 0.10;
    spec.path_filter = "wal_fuzz";
    std::vector<std::byte> snapshot(48, std::byte{0x5e});
    {
      vfs::ScopedStorageFaultPlan scoped(spec);
      std::unique_ptr<WalLog> wal;
      try {
        wal = std::make_unique<WalLog>(WalConfig{dir, 1024});
        (void)wal->take_recovery();
      } catch (const IoError&) {
        continue;  // the storm killed the open itself; nothing to verify
      }
      for (int i = 0; i < 80; ++i) {
        try {
          wal->append(sample_record(static_cast<WalOp>(1 + i % 7), 0));
          if (i % 9 == 0) wal->sync();
        } catch (const IoError&) {
          ASSERT_TRUE(wal->failed());
          try {
            wal->compact(snapshot, static_cast<double>(i));
          } catch (const IoError&) {
            // Still failed; keep trying — later iterations re-attempt.
          }
        }
        if (i == 40) {
          try {
            wal->compact(snapshot, 40.0);
          } catch (const IoError&) {
          }
        }
      }
    }
    // Plan uninstalled: recovery on the real bytes the storm left behind.
    WalLog reopened({dir, 1024});
    auto rec = reopened.take_recovery();
    for (std::size_t i = 1; i < rec.tail.size(); ++i) {
      ASSERT_EQ(rec.tail[i].lsn, rec.tail[i - 1].lsn + 1)
          << "lsn gap after storm seed " << seed;
    }
    if (!rec.tail.empty()) {
      EXPECT_EQ(rec.next_lsn, rec.tail.back().lsn + 1);
    }
    reopened.append(sample_record(WalOp::kTick, 0));  // log is writable again
    reopened.sync();
  }
}

}  // namespace
}  // namespace hdcs::dist
