#include "dboot/dboot.hpp"

#include <gtest/gtest.h>

#include "bio/seqgen.hpp"
#include "dist/local_runner.hpp"
#include "phylo/simulate.hpp"
#include "sim/sim_driver.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hdcs::dboot {
namespace {

/// Alignment with a clear, well-supported topology.
phylo::Alignment strong_signal_alignment(std::uint64_t seed, int taxa,
                                         std::size_t sites,
                                         phylo::Tree* truth = nullptr) {
  Rng rng(seed);
  auto tree = phylo::random_tree(rng, {taxa, 0.15, "t"});
  auto model = phylo::SubstModel::jc69();
  auto aln = phylo::simulate_alignment(rng, tree, model,
                                       phylo::RateModel::uniform(), {sites});
  if (truth) *truth = tree;
  return aln;
}

TEST(DBootConfig, ParsesAndValidates) {
  auto c = DBootConfig::from_config(Config::parse("replicates = 50\nseed = 9\n"));
  EXPECT_EQ(c.replicates, 50u);
  EXPECT_EQ(c.seed, 9u);
  EXPECT_THROW(DBootConfig::from_config(Config::parse("replicates = 0\n")),
               InputError);
}

TEST(TreeSplits, FourTaxonTreeHasOneSplit) {
  auto tree = phylo::Tree::parse_newick("((a:1,b:1):1,c:1,d:1);");
  auto splits = tree_splits(tree);
  ASSERT_EQ(splits.size(), 1u);
  // Canonical side excludes 'a' (smallest name): {c, d}.
  EXPECT_TRUE(splits.count(Split{"c", "d"}));
}

TEST(TreeSplits, OrientationIndependent) {
  auto t1 = phylo::Tree::parse_newick("((a:1,b:1):1,(c:1,d:1):1,e:1);");
  auto t2 = phylo::Tree::parse_newick("(e:1,(d:1,c:1):1,(b:1,a:1):1);");
  EXPECT_EQ(tree_splits(t1), tree_splits(t2));
  EXPECT_EQ(tree_splits(t1).size(), 2u);  // 5 taxa -> 2 internal edges
}

TEST(Resample, DeterministicPerReplicateIndependentOfBatching) {
  auto aln = strong_signal_alignment(1, 6, 100);
  auto a = resample_alignment(aln, 7, 3);
  auto b = resample_alignment(aln, 7, 3);
  EXPECT_EQ(a.rows, b.rows);
  // Different replicate index -> different resample (overwhelmingly).
  auto c = resample_alignment(aln, 7, 4);
  EXPECT_NE(a.rows, c.rows);
  // Columns of the resample are columns of the original (spot check:
  // column content preserved across taxa).
  EXPECT_EQ(a.taxon_count(), aln.taxon_count());
  EXPECT_EQ(a.site_count(), aln.site_count());
}

TEST(DBootSerial, StrongSignalGivesHighSupport) {
  phylo::Tree truth;
  auto aln = strong_signal_alignment(3, 8, 1500, &truth);
  DBootConfig cfg;
  cfg.replicates = 60;
  auto result = bootstrap_serial(aln, cfg);
  EXPECT_EQ(result.replicates, 60u);
  ASSERT_FALSE(result.support.empty());
  // With 1500 sites of clean signal, every reference split should be
  // recovered by a healthy majority of replicates.
  for (const auto& [split, count] : result.support) {
    EXPECT_GE(result.support_percent(split), 60.0)
        << "weakly supported split of size " << split.size();
  }
}

TEST(DBootSerial, NoiseGivesWeakSupport) {
  // Random unrelated sequences: reference splits are phantoms; their
  // support must be low.
  Rng rng(5);
  phylo::Alignment aln;
  for (int i = 0; i < 8; ++i) {
    aln.names.push_back("r" + std::to_string(i));
    aln.rows.push_back(bio::random_residues(rng, 300, bio::Alphabet::kDna));
  }
  DBootConfig cfg;
  cfg.replicates = 40;
  auto result = bootstrap_serial(aln, cfg);
  double total = 0;
  for (const auto& [split, count] : result.support) {
    total += result.support_percent(split);
  }
  double mean_support = total / static_cast<double>(result.support.size());
  EXPECT_LT(mean_support, 55.0);
}

TEST(DBootWire, ResultRoundTrip) {
  DBootResult r;
  r.reference_newick = "((a:1,b:1):1,c:1,d:1);";
  r.replicates = 10;
  r.support[Split{"c", "d"}] = 7;
  r.support[Split{"x", "y", "z"}] = 2;
  ByteWriter w;
  encode_dboot_result(w, r);
  ByteReader reader(w.data());
  auto decoded = decode_dboot_result(reader);
  EXPECT_EQ(decoded.reference_newick, r.reference_newick);
  EXPECT_EQ(decoded.replicates, 10u);
  EXPECT_EQ(decoded.support, r.support);
  EXPECT_DOUBLE_EQ(decoded.support_percent(Split{"c", "d"}), 70.0);
  EXPECT_DOUBLE_EQ(decoded.support_percent(Split{"nope"}), 0.0);
}

TEST(DBootDataManager, LocalRunMatchesSerial) {
  auto aln = strong_signal_alignment(7, 7, 400);
  DBootConfig cfg;
  cfg.replicates = 30;
  auto serial = bootstrap_serial(aln, cfg);

  register_algorithm();
  DBootDataManager dm(aln, cfg);
  dist::LocalRunStats stats;
  auto bytes = dist::run_locally(dm, 1e5, &stats);  // a few replicates per unit
  ByteReader r{std::span<const std::byte>(bytes)};
  auto distributed = decode_dboot_result(r);
  EXPECT_EQ(distributed.reference_newick, serial.reference_newick);
  EXPECT_EQ(distributed.replicates, serial.replicates);
  EXPECT_EQ(distributed.support, serial.support);
  EXPECT_GT(stats.units, 1u);
}

TEST(DBootDataManager, BatchingFollowsHint) {
  auto aln = strong_signal_alignment(9, 6, 200);
  DBootConfig cfg;
  cfg.replicates = 20;
  DBootDataManager dm(aln, cfg);
  dist::SizeHint one{1.0};
  auto u1 = dm.next_unit(one);
  ASSERT_TRUE(u1);
  ByteReader r(u1->payload);
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), 1u);  // single replicate

  dist::SizeHint all{1e18};
  auto u2 = dm.next_unit(all);
  ASSERT_TRUE(u2);
  ByteReader r2(u2->payload);
  EXPECT_EQ(r2.u64(), 1u);
  EXPECT_EQ(r2.u64(), 20u);  // the rest in one unit
  EXPECT_FALSE(dm.next_unit(all).has_value());
}

TEST(DBootDataManager, RejectsTinyAlignments) {
  phylo::Alignment aln;
  aln.names = {"a", "b", "c"};
  aln.rows = {"ACGT", "ACGT", "ACGT"};
  EXPECT_THROW(DBootDataManager(aln, DBootConfig{}), InputError);
}

TEST(DBootSim, SimulatedFleetMatchesSerialExactly) {
  register_algorithm();
  auto aln = strong_signal_alignment(11, 7, 300);
  DBootConfig cfg;
  cfg.replicates = 40;
  auto serial = bootstrap_serial(aln, cfg);

  sim::SimConfig sim_cfg;
  sim_cfg.reference_ops_per_sec = 1e6;
  sim_cfg.scheduler.lease_timeout = 1e5;
  sim_cfg.scheduler.bounds.min_ops = 1;
  sim_cfg.policy_spec = "adaptive:2";
  sim::SimDriver driver(sim_cfg, sim::lab_fleet(5));
  auto dm = std::make_shared<DBootDataManager>(aln, cfg);
  driver.add_problem(dm);
  driver.run();

  auto result = dm->result();
  EXPECT_EQ(result.support, serial.support);
  EXPECT_EQ(result.replicates, serial.replicates);
}

}  // namespace
}  // namespace hdcs::dboot
