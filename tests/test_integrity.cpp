// Result integrity: replication, quorum voting, donor reputation and the
// client-table hygiene that rides along. Donors cannot be trusted to return
// correct bytes — a lying donor corrupts a payload and signs its lie with a
// matching digest, so only cross-donor digest votes can catch it. These
// tests drive SchedulerCore directly (no transport) with scripted honest
// and lying donors.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "dist/scheduler_core.hpp"
#include "net/bulk.hpp"
#include "obs/trace.hpp"
#include "tests/toy_problem.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"

namespace hdcs::dist {
namespace {

using test::ToySumAlgorithm;
using test::ToySumDataManager;

SchedulerConfig integrity_config(int replicas = 2, int quorum = 0) {
  SchedulerConfig cfg;
  cfg.lease_timeout = 10.0;
  cfg.bounds.min_ops = 1;
  cfg.bounds.max_ops = 1e9;
  cfg.replication_factor = replicas;
  cfg.quorum = quorum;
  cfg.spot_check_rate = 0.0;  // deterministic unless a test opts in
  return cfg;
}

/// Run a unit through the real algorithm; the digest rides the result like
/// a real donor's SubmitResult frame.
ResultUnit execute(const WorkUnit& unit, std::span<const std::byte> problem_data) {
  ToySumAlgorithm algo;
  algo.initialize(problem_data);
  ResultUnit r;
  r.problem_id = unit.problem_id;
  r.unit_id = unit.unit_id;
  r.stage = unit.stage;
  r.payload = algo.process(unit);
  r.payload_crc = net::crc32(std::span<const std::byte>(r.payload));
  return r;
}

/// A lying donor: flip one byte, then recompute the digest over the lie so
/// the transport-level self-check passes — only voting can catch it.
ResultUnit corrupt(ResultUnit r) {
  r.payload.front() ^= std::byte{0x5a};
  r.payload_crc = net::crc32(std::span<const std::byte>(r.payload));
  return r;
}

int count_events(const obs::Tracer& tracer, const std::string& ev) {
  int n = 0;
  for (const auto& line : tracer.lines()) {
    if (obs::parse_trace_line(line).ev == ev) ++n;
  }
  return n;
}

TEST(SchedulerIntegrity, ReplicatedUnitAcceptedOnlyOnQuorum) {
  SchedulerCore core(integrity_config(2, 2),
                     std::make_unique<FixedGranularity>(500));
  auto dm = std::make_shared<ToySumDataManager>(500);  // one unit
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto c1 = core.client_joined("c1", 1e6, 0.0);
  auto c2 = core.client_joined("c2", 1e6, 0.0);

  auto unit = core.request_work(c1, 0.0);
  ASSERT_TRUE(unit);
  auto replica = core.request_work(c2, 0.0);
  ASSERT_TRUE(replica);
  EXPECT_EQ(replica->unit_id, unit->unit_id);  // the queued second copy
  EXPECT_EQ(replica->payload, unit->payload);

  // The first vote records but must not merge: quorum is 2.
  EXPECT_TRUE(core.submit_result(c1, execute(*unit, data), 1.0));
  EXPECT_FALSE(core.problem_complete(pid));
  EXPECT_EQ(core.stats().results_accepted, 0u);

  EXPECT_TRUE(core.submit_result(c2, execute(*replica, data), 2.0));
  EXPECT_TRUE(core.problem_complete(pid));
  EXPECT_EQ(test::read_u64_result(core.final_result(pid)), dm->expected());

  const auto& s = core.stats();
  EXPECT_EQ(s.units_issued, 2u);  // both copies count as issuances
  EXPECT_EQ(s.units_replicated, 1u);
  EXPECT_EQ(s.replicas_issued, 1u);
  EXPECT_EQ(s.votes_recorded, 2u);
  EXPECT_EQ(s.vote_quorums, 1u);
  EXPECT_EQ(s.results_accepted, 1u);
  EXPECT_EQ(s.vote_mismatches, 0u);
  EXPECT_EQ(s.results_rejected_mismatch, 0u);

  // Both voters won; reputation moves up from the 0.5 prior.
  ASSERT_NE(core.reputation("c1"), nullptr);
  EXPECT_EQ(core.reputation("c1")->vote_wins, 1u);
  EXPECT_DOUBLE_EQ(core.reputation("c1")->score, 0.6);
  EXPECT_EQ(core.reputation("c2")->vote_wins, 1u);

  // Resubmission after the quorum is an ordinary duplicate.
  EXPECT_FALSE(core.submit_result(c1, execute(*unit, data), 3.0));
  EXPECT_EQ(core.stats().duplicate_results_dropped, 1u);
}

TEST(SchedulerIntegrity, ReplicasGoToDistinctDonors) {
  SchedulerCore core(integrity_config(2, 2),
                     std::make_unique<FixedGranularity>(500));
  core.submit_problem(std::make_shared<ToySumDataManager>(500));
  auto c1 = core.client_joined("c1", 1e6, 0.0);

  auto unit = core.request_work(c1, 0.0);
  ASSERT_TRUE(unit);
  // The only other copy in the system is this unit's replica, and c1 must
  // never be handed its own replica — one donor voting twice is no vote.
  EXPECT_FALSE(core.request_work(c1, 1.0));
  auto c2 = core.client_joined("c2", 1e6, 2.0);
  auto replica = core.request_work(c2, 2.0);
  ASSERT_TRUE(replica);
  EXPECT_EQ(replica->unit_id, unit->unit_id);
}

TEST(SchedulerIntegrity, LyingDonorLosesVoteAndTieBreakerResolves) {
  obs::Tracer tracer;
  tracer.to_memory();
  SchedulerCore core(integrity_config(2, 2),
                     std::make_unique<FixedGranularity>(500));
  core.set_tracer(&tracer);
  auto dm = std::make_shared<ToySumDataManager>(500);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto honest1 = core.client_joined("honest1", 1e6, 0.0);
  auto liar = core.client_joined("liar", 1e6, 0.0);
  auto honest2 = core.client_joined("honest2", 1e6, 0.0);

  auto unit = core.request_work(honest1, 0.0);
  ASSERT_TRUE(unit);
  auto replica = core.request_work(liar, 0.0);
  ASSERT_TRUE(replica);

  // The lie is recorded as a vote (it is self-consistent), then the honest
  // vote arrives: 1 vs 1, no quorum — a tie-breaker replica is queued.
  EXPECT_TRUE(core.submit_result(liar, corrupt(execute(*replica, data)), 1.0));
  EXPECT_TRUE(core.submit_result(honest1, execute(*unit, data), 2.0));
  EXPECT_FALSE(core.problem_complete(pid));
  EXPECT_EQ(core.stats().vote_mismatches, 1u);

  auto tie_breaker = core.request_work(honest2, 3.0);
  ASSERT_TRUE(tie_breaker);
  EXPECT_EQ(tie_breaker->unit_id, unit->unit_id);
  EXPECT_TRUE(core.submit_result(honest2, execute(*tie_breaker, data), 4.0));

  EXPECT_TRUE(core.problem_complete(pid));
  EXPECT_EQ(test::read_u64_result(core.final_result(pid)), dm->expected());
  EXPECT_EQ(core.stats().vote_quorums, 1u);
  EXPECT_EQ(core.stats().results_rejected_mismatch, 1u);

  // Reputation: winners up, the liar down (0.5 -> 0.4 with alpha 0.2).
  EXPECT_DOUBLE_EQ(core.reputation("liar")->score, 0.4);
  EXPECT_EQ(core.reputation("liar")->vote_losses, 1u);
  EXPECT_FALSE(core.reputation("liar")->blacklisted);  // blacklist_after=3
  EXPECT_EQ(core.reputation("honest1")->vote_wins, 1u);
  EXPECT_EQ(core.reputation("honest2")->vote_wins, 1u);

  EXPECT_EQ(count_events(tracer, "unit_replicated"), 1);
  EXPECT_EQ(count_events(tracer, "vote_recorded"), 3);
  EXPECT_EQ(count_events(tracer, "vote_mismatch"), 1);
  EXPECT_EQ(count_events(tracer, "vote_quorum"), 1);
  EXPECT_EQ(count_events(tracer, "result_rejected"), 1);
  bool saw_vote_lost = false;
  for (const auto& line : tracer.lines()) {
    if (line.find("\"reason\":\"vote_lost\"") != std::string::npos &&
        line.find("\"name\":\"liar\"") != std::string::npos) {
      saw_vote_lost = true;
    }
  }
  EXPECT_TRUE(saw_vote_lost);
}

TEST(SchedulerIntegrity, WireDigestMismatchRejectedAndUnitReissued) {
  // Transport-level certification, independent of replication: a result
  // whose digest does not cover its bytes never reaches the merge.
  SchedulerCore core(integrity_config(1),
                     std::make_unique<FixedGranularity>(500));
  auto dm = std::make_shared<ToySumDataManager>(500);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto c1 = core.client_joined("c1", 1e6, 0.0);
  auto c2 = core.client_joined("c2", 1e6, 0.0);

  auto unit = core.request_work(c1, 0.0);
  ASSERT_TRUE(unit);
  auto bad = execute(*unit, data);
  bad.payload_crc ^= 0xdeadbeefu;  // digest no longer covers the payload
  EXPECT_FALSE(core.submit_result(c1, bad, 1.0));
  EXPECT_EQ(core.stats().results_rejected_digest, 1u);
  EXPECT_FALSE(core.problem_complete(pid));

  // The submitting donor's lease was failed; the unit comes back as a
  // reissue and an honest donor completes it.
  auto reissued = core.request_work(c2, 2.0);
  ASSERT_TRUE(reissued);
  EXPECT_EQ(reissued->unit_id, unit->unit_id);
  EXPECT_EQ(core.stats().units_reissued, 1u);
  EXPECT_TRUE(core.submit_result(c2, execute(*reissued, data), 3.0));
  EXPECT_TRUE(core.problem_complete(pid));
  EXPECT_EQ(test::read_u64_result(core.final_result(pid)), dm->expected());
}

TEST(SchedulerIntegrity, RepeatOffenderBlacklistedAndRefusedWork) {
  obs::Tracer tracer;
  tracer.to_memory();
  auto cfg = integrity_config(2, 2);
  cfg.blacklist_after = 2;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(100));
  core.set_tracer(&tracer);
  auto dm = std::make_shared<ToySumDataManager>(200);  // two units
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto liar = core.client_joined("liar", 1e6, 0.0);
  auto h1 = core.client_joined("h1", 1e6, 0.0);
  auto h2 = core.client_joined("h2", 1e6, 0.0);

  // The liar loses the vote on two consecutive units.
  for (int round = 0; round < 2; ++round) {
    double t = round * 10.0;
    auto unit = core.request_work(liar, t);
    ASSERT_TRUE(unit);
    auto replica = core.request_work(h1, t);
    ASSERT_TRUE(replica);
    EXPECT_TRUE(core.submit_result(liar, corrupt(execute(*unit, data)), t + 1));
    EXPECT_TRUE(core.submit_result(h1, execute(*replica, data), t + 2));
    auto tie_breaker = core.request_work(h2, t + 3);
    ASSERT_TRUE(tie_breaker);
    EXPECT_TRUE(core.submit_result(h2, execute(*tie_breaker, data), t + 4));
  }
  EXPECT_TRUE(core.problem_complete(pid));
  EXPECT_EQ(test::read_u64_result(core.final_result(pid)), dm->expected());

  ASSERT_NE(core.reputation("liar"), nullptr);
  EXPECT_TRUE(core.reputation("liar")->blacklisted);
  EXPECT_EQ(core.reputation("liar")->vote_losses, 2u);
  EXPECT_EQ(core.stats().donors_blacklisted, 1u);
  EXPECT_EQ(count_events(tracer, "donor_blacklisted"), 1);

  // A banned donor gets no work and its results are refused.
  auto unserved_before = core.stats().work_requests_unserved;
  EXPECT_FALSE(core.request_work(liar, 30.0));
  EXPECT_EQ(core.stats().work_requests_unserved, unserved_before + 1);
  ResultUnit late;
  late.problem_id = pid;
  late.unit_id = 999;
  EXPECT_FALSE(core.submit_result(liar, late, 31.0));
  EXPECT_EQ(core.stats().results_rejected_blacklisted, 1u);

  // The blacklist follows the donor *name* across reconnects.
  auto liar2 = core.client_joined("liar", 1e6, 32.0);
  EXPECT_FALSE(core.request_work(liar2, 33.0));

  // The per-client snapshot (MSG_STATS / hdcs_top) carries the verdict.
  bool flagged = false;
  for (const auto& row : core.all_client_stats()) {
    if (row.name == "liar") {
      EXPECT_TRUE(row.blacklisted);
      EXPECT_EQ(row.vote_losses, 2u);
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(SchedulerIntegrity, TrustedDonorsRunUnreplicated) {
  SchedulerCore core(integrity_config(2, 2),
                     std::make_unique<FixedGranularity>(100));
  auto dm = std::make_shared<ToySumDataManager>(1000);  // ten units
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto c1 = core.client_joined("c1", 1e6, 0.0);
  auto c2 = core.client_joined("c2", 1e6, 0.0);

  // Five clean agreed votes lift both donors past the 0.8 trust threshold
  // (0.5 prior, alpha 0.2: 5 wins -> ~0.836).
  for (int round = 0; round < 5; ++round) {
    double t = round * 10.0;
    auto unit = core.request_work(c1, t);
    ASSERT_TRUE(unit);
    auto replica = core.request_work(c2, t);
    ASSERT_TRUE(replica);
    EXPECT_TRUE(core.submit_result(c1, execute(*unit, data), t + 1));
    EXPECT_TRUE(core.submit_result(c2, execute(*replica, data), t + 2));
  }
  EXPECT_EQ(core.stats().units_replicated, 5u);
  EXPECT_GE(core.reputation("c1")->score, 0.8);

  // With spot_check_rate 0 a trusted donor's next unit is not replicated:
  // its single result merges immediately.
  auto unit = core.request_work(c1, 60.0);
  ASSERT_TRUE(unit);
  EXPECT_EQ(core.stats().units_replicated, 5u);  // unchanged
  auto accepted_before = core.stats().results_accepted;
  EXPECT_TRUE(core.submit_result(c1, execute(*unit, data), 61.0));
  EXPECT_EQ(core.stats().results_accepted, accepted_before + 1);
  EXPECT_EQ(core.stats().spot_checks, 0u);
  EXPECT_FALSE(core.problem_complete(pid));  // nine units down, one merged solo
}

TEST(SchedulerIntegrity, SpotChecksStillAuditTrustedDonors) {
  auto cfg = integrity_config(2, 2);
  cfg.spot_check_rate = 1.0;  // audit every trusted issuance
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(100));
  auto dm = std::make_shared<ToySumDataManager>(1000);
  core.submit_problem(dm);
  auto data = dm->problem_data();
  auto c1 = core.client_joined("c1", 1e6, 0.0);
  auto c2 = core.client_joined("c2", 1e6, 0.0);

  for (int round = 0; round < 5; ++round) {
    double t = round * 10.0;
    auto unit = core.request_work(c1, t);
    ASSERT_TRUE(unit);
    auto replica = core.request_work(c2, t);
    ASSERT_TRUE(replica);
    EXPECT_TRUE(core.submit_result(c1, execute(*unit, data), t + 1));
    EXPECT_TRUE(core.submit_result(c2, execute(*replica, data), t + 2));
  }
  ASSERT_TRUE(core.reputation("c1")->score >= 0.8);
  EXPECT_EQ(core.stats().spot_checks, 0u);  // untrusted phase replicates anyway

  // Trusted now, but every draw is an audit: the unit is replicated and
  // needs a second vote before it merges.
  auto unit = core.request_work(c1, 60.0);
  ASSERT_TRUE(unit);
  EXPECT_EQ(core.stats().spot_checks, 1u);
  EXPECT_EQ(core.stats().units_replicated, 6u);
  EXPECT_TRUE(core.submit_result(c1, execute(*unit, data), 61.0));
  EXPECT_EQ(core.stats().vote_quorums, 5u);  // still waiting on the auditor
  auto audit = core.request_work(c2, 62.0);
  ASSERT_TRUE(audit);
  EXPECT_EQ(audit->unit_id, unit->unit_id);
  EXPECT_TRUE(core.submit_result(c2, execute(*audit, data), 63.0));
  EXPECT_EQ(core.stats().vote_quorums, 6u);
}

TEST(SchedulerIntegrity, LostReplicaDoesNotBurnAttemptsOrQuarantine) {
  // Satellite pin (hedging x quarantine x replication): losing one *copy*
  // of a replicated unit must not inflate `attempt` — under the old
  // single-lease accounting this flow would quarantine a healthy unit at
  // max_attempts_per_unit=1.
  auto cfg = integrity_config(2, 2);
  cfg.max_attempts_per_unit = 1;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(500));
  auto dm = std::make_shared<ToySumDataManager>(500);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto c1 = core.client_joined("c1", 1e6, 0.0);
  auto c2 = core.client_joined("c2", 1e6, 0.0);

  auto unit = core.request_work(c1, 0.0);
  ASSERT_TRUE(unit);
  auto replica = core.request_work(c2, 5.0);  // lease deadline 15
  ASSERT_TRUE(replica);
  EXPECT_TRUE(core.submit_result(c1, execute(*unit, data), 6.0));  // vote 1

  // c2's replica lease expires with c1's vote alive: the unit is healthy,
  // so the lost copy is replaced instead of burning the attempt cap.
  core.tick(16.0);
  EXPECT_EQ(core.stats().units_quarantined, 0u);
  EXPECT_EQ(core.stats().units_reissued, 0u);

  auto c3 = core.client_joined("c3", 1e6, 17.0);
  auto replacement = core.request_work(c3, 17.0);
  ASSERT_TRUE(replacement);
  EXPECT_EQ(replacement->unit_id, unit->unit_id);
  EXPECT_TRUE(core.submit_result(c3, execute(*replacement, data), 18.0));
  EXPECT_TRUE(core.problem_complete(pid));
  EXPECT_EQ(test::read_u64_result(core.final_result(pid)), dm->expected());
  EXPECT_EQ(core.stats().units_quarantined, 0u);
}

TEST(SchedulerIntegrity, LostHedgeDoesNotBurnAttemptsOrQuarantine) {
  auto cfg = integrity_config(1);
  cfg.hedge_endgame = true;
  cfg.max_attempts_per_unit = 1;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(500));
  auto dm = std::make_shared<ToySumDataManager>(500);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto c1 = core.client_joined("c1", 1e6, 0.0);
  auto c2 = core.client_joined("c2", 1e6, 0.0);

  auto unit = core.request_work(c1, 0.0);
  ASSERT_TRUE(unit);
  auto hedge = core.request_work(c2, 1.0);  // nothing fresh -> hedge copy
  ASSERT_TRUE(hedge);
  EXPECT_EQ(hedge->unit_id, unit->unit_id);
  EXPECT_EQ(core.stats().units_hedged, 1u);

  // The hedger crashes; its copy is dropped for free — the primary lease
  // is untouched and the attempt cap never fires.
  core.client_left(c2, 2.0);
  EXPECT_EQ(core.stats().units_quarantined, 0u);
  EXPECT_TRUE(core.submit_result(c1, execute(*unit, data), 3.0));
  EXPECT_TRUE(core.problem_complete(pid));
  EXPECT_EQ(core.stats().units_reissued, 0u);
  EXPECT_EQ(core.stats().units_quarantined, 0u);
}

TEST(SchedulerIntegrity, VoteStateSurvivesCheckpointRestore) {
  auto cfg = integrity_config(2, 2);
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(500));
  auto dm = std::make_shared<ToySumDataManager>(500);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto c1 = core.client_joined("c1", 1e6, 0.0);
  auto c2 = core.client_joined("c2", 1e6, 0.0);

  auto unit = core.request_work(c1, 0.0);
  ASSERT_TRUE(unit);
  ASSERT_TRUE(core.request_work(c2, 0.0));  // replica leased to c2
  EXPECT_TRUE(core.submit_result(c1, execute(*unit, data), 1.0));  // one vote in

  ByteWriter w;
  core.checkpoint(w);
  auto blob = w.take();

  // Crash. The restored core must resume the vote — c1's recorded digest
  // still counts, so ONE more agreeing vote reaches quorum (re-trusting a
  // single donor with the whole unit would defeat replication).
  SchedulerCore restored(cfg, std::make_unique<FixedGranularity>(500));
  auto dm2 = std::make_shared<ToySumDataManager>(500);
  auto pid2 = restored.submit_problem(dm2);
  ASSERT_EQ(pid2, pid);
  ByteReader r{std::span<const std::byte>(blob)};
  EXPECT_EQ(restored.restore(r), 1u);

  auto c3 = restored.client_joined("c3", 1e6, 100.0);
  auto copy = restored.request_work(c3, 100.0);
  ASSERT_TRUE(copy);
  EXPECT_EQ(copy->unit_id, unit->unit_id);
  EXPECT_EQ(copy->payload, unit->payload);
  EXPECT_FALSE(restored.problem_complete(pid2));
  EXPECT_TRUE(
      restored.submit_result(c3, execute(*copy, dm2->problem_data()), 101.0));
  EXPECT_TRUE(restored.problem_complete(pid2));
  EXPECT_EQ(test::read_u64_result(restored.final_result(pid2)), dm2->expected());
  EXPECT_EQ(restored.stats().vote_quorums, 1u);
  // The pre-crash voter is settled as a winner in the restored core.
  ASSERT_NE(restored.reputation("c1"), nullptr);
  EXPECT_EQ(restored.reputation("c1")->vote_wins, 1u);
}

TEST(SchedulerIntegrity, ReputationLedgerSurvivesCheckpointRestore) {
  auto cfg = integrity_config(2, 2);
  cfg.blacklist_after = 1;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(500));
  auto dm = std::make_shared<ToySumDataManager>(500);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  auto liar = core.client_joined("liar", 1e6, 0.0);
  auto h1 = core.client_joined("h1", 1e6, 0.0);
  auto h2 = core.client_joined("h2", 1e6, 0.0);

  auto unit = core.request_work(liar, 0.0);
  ASSERT_TRUE(unit);
  auto replica = core.request_work(h1, 0.0);
  ASSERT_TRUE(replica);
  EXPECT_TRUE(core.submit_result(liar, corrupt(execute(*unit, data)), 1.0));
  EXPECT_TRUE(core.submit_result(h1, execute(*replica, data), 2.0));
  auto tie_breaker = core.request_work(h2, 3.0);
  ASSERT_TRUE(tie_breaker);
  EXPECT_TRUE(core.submit_result(h2, execute(*tie_breaker, data), 4.0));
  ASSERT_TRUE(core.problem_complete(pid));
  ASSERT_TRUE(core.reputation("liar")->blacklisted);

  ByteWriter w;
  core.checkpoint(w);
  auto blob = w.take();

  // A liar must not launder its record by crashing the server.
  SchedulerCore restored(cfg, std::make_unique<FixedGranularity>(500));
  restored.submit_problem(std::make_shared<ToySumDataManager>(500));
  ByteReader r{std::span<const std::byte>(blob)};
  restored.restore(r);
  ASSERT_NE(restored.reputation("liar"), nullptr);
  EXPECT_TRUE(restored.reputation("liar")->blacklisted);
  EXPECT_EQ(restored.reputation("liar")->vote_losses, 1u);
  EXPECT_DOUBLE_EQ(restored.reputation("liar")->score,
                   core.reputation("liar")->score);
  EXPECT_EQ(restored.reputation("h1")->vote_wins, 1u);

  auto liar2 = restored.client_joined("liar", 1e6, 100.0);
  EXPECT_FALSE(restored.request_work(liar2, 100.0));
}

TEST(SchedulerIntegrity, DepartedClientRowsEvictedAfterRetention) {
  auto cfg = integrity_config(1);
  cfg.client_retention_s = 50.0;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(500));
  auto dm = std::make_shared<ToySumDataManager>(500);
  core.submit_problem(dm);
  auto data = dm->problem_data();
  auto gone = core.client_joined("gone", 1e6, 0.0);
  auto stays = core.client_joined("stays", 1e6, 0.0);

  auto unit = core.request_work(gone, 0.0);
  ASSERT_TRUE(unit);
  EXPECT_TRUE(core.submit_result(gone, execute(*unit, data), 1.0));
  core.client_left(gone, 1.0);
  core.heartbeat(stays, 100.0);

  // Inside the retention window the departed row is still visible.
  core.tick(40.0);
  EXPECT_EQ(core.all_client_stats().size(), 2u);

  // Past it, the row is evicted; the aggregate completion count survives.
  core.tick(100.0);
  auto rows = core.all_client_stats();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "stays");  // active rows are never evicted
  EXPECT_EQ(core.stats().clients_evicted, 1u);
  EXPECT_EQ(core.evicted_units_completed(), 1u);
}

TEST(SchedulerIntegrity, RetentionZeroKeepsDepartedRowsForever) {
  auto cfg = integrity_config(1);
  cfg.client_retention_s = 0.0;
  SchedulerCore core(cfg, std::make_unique<FixedGranularity>(500));
  core.submit_problem(std::make_shared<ToySumDataManager>(500));
  auto gone = core.client_joined("gone", 1e6, 0.0);
  core.client_left(gone, 1.0);
  core.tick(1e9);
  EXPECT_EQ(core.all_client_stats().size(), 1u);
  EXPECT_EQ(core.stats().clients_evicted, 0u);
}

TEST(SchedulerIntegrity, ConfigValidation) {
  auto bad = [](auto mutate) {
    auto cfg = integrity_config(2, 2);
    mutate(cfg);
    EXPECT_THROW(SchedulerCore(cfg, std::make_unique<FixedGranularity>(100)),
                 InputError);
  };
  bad([](SchedulerConfig& c) { c.replication_factor = 0; });
  bad([](SchedulerConfig& c) { c.quorum = 3; });  // > replication_factor
  bad([](SchedulerConfig& c) { c.quorum = -1; });
  bad([](SchedulerConfig& c) { c.spot_check_rate = 1.5; });
  bad([](SchedulerConfig& c) { c.reputation_alpha = 0.0; });
  bad([](SchedulerConfig& c) { c.max_tie_breakers = -1; });
}

}  // namespace
}  // namespace hdcs::dist
