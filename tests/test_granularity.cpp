#include "dist/granularity.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hdcs::dist {
namespace {

ClientStats fast_client() {
  ClientStats s;
  s.benchmark_ops_per_sec = 1e8;
  s.ewma_ops_per_sec = 2e8;
  return s;
}

ClientStats fresh_client(double benchmark) {
  ClientStats s;
  s.benchmark_ops_per_sec = benchmark;
  return s;
}

TEST(ClientStats, RateEstimatePrefersMeasuredRate) {
  auto s = fast_client();
  EXPECT_DOUBLE_EQ(s.rate_estimate(), 2e8);
  s.ewma_ops_per_sec = 0;
  EXPECT_DOUBLE_EQ(s.rate_estimate(), 1e8);
}

TEST(FixedGranularity, ConstantRegardlessOfClient) {
  FixedGranularity policy(5e6);
  EXPECT_DOUBLE_EQ(policy.target_ops(fast_client(), 1e9, 10), 5e6);
  EXPECT_DOUBLE_EQ(policy.target_ops(fresh_client(1e3), 0, 1), 5e6);
}

TEST(GuidedSelfScheduling, DecreasesWithRemainingWork) {
  GuidedSelfScheduling policy(2.0);
  auto c = fast_client();
  double big = policy.target_ops(c, 1e9, 10);
  double small = policy.target_ops(c, 1e6, 10);
  EXPECT_DOUBLE_EQ(big, 1e9 / 20);
  EXPECT_DOUBLE_EQ(small, 1e6 / 20);
  EXPECT_GT(big, small);
}

TEST(GuidedSelfScheduling, UnknownRemainingFallsBackToRate) {
  GuidedSelfScheduling policy;
  auto c = fast_client();
  EXPECT_DOUBLE_EQ(policy.target_ops(c, 0, 4), c.rate_estimate() * 10.0);
}

TEST(AdaptiveThroughput, SizesToClientRate) {
  AdaptiveThroughput policy(15.0);
  auto fast = fast_client();           // 2e8 ops/s
  auto slow = fresh_client(1e6);       // 1e6 ops/s
  double fast_ops = policy.target_ops(fast, 0, 1);
  double slow_ops = policy.target_ops(slow, 0, 1);
  EXPECT_DOUBLE_EQ(fast_ops, 2e8 * 15);
  EXPECT_DOUBLE_EQ(slow_ops, 1e6 * 15);
  // The paper's point: a 200x faster machine gets a 200x bigger unit.
  EXPECT_NEAR(fast_ops / slow_ops, 200.0, 1e-9);
}

TEST(AdaptiveThroughput, ShrinksUnitsNearTheTail) {
  AdaptiveThroughput policy(15.0);
  auto c = fast_client();  // would ask for 3e9 ops
  // Only 1e6 ops remain across 10 clients: cap at remaining/clients.
  EXPECT_DOUBLE_EQ(policy.target_ops(c, 1e6, 10), 1e5);
}

TEST(AdaptiveThroughput, UnknownClientGetsBootstrapSize) {
  AdaptiveThroughput policy(10.0);
  ClientStats unknown;  // no benchmark, no ewma
  EXPECT_DOUBLE_EQ(policy.target_ops(unknown, 0, 1), 1e6 * 10.0);
}

TEST(MakePolicy, ParsesSpecs) {
  EXPECT_EQ(make_policy("fixed:1000")->name(), "fixed");
  EXPECT_EQ(make_policy("guided")->name(), "guided");
  EXPECT_EQ(make_policy("guided:3")->name(), "guided");
  EXPECT_EQ(make_policy("adaptive")->name(), "adaptive");
  EXPECT_EQ(make_policy("adaptive:30")->name(), "adaptive");
}

TEST(MakePolicy, RejectsBadSpecs) {
  EXPECT_THROW(make_policy("fixed"), InputError);       // missing ops
  EXPECT_THROW(make_policy("unknown"), InputError);
  EXPECT_THROW(make_policy("fixed:abc"), InputError);
}

TEST(MakePolicy, AdaptiveSecondsApplied) {
  auto p = make_policy("adaptive:30");
  auto* adaptive = dynamic_cast<AdaptiveThroughput*>(p.get());
  ASSERT_NE(adaptive, nullptr);
  EXPECT_DOUBLE_EQ(adaptive->target_seconds(), 30.0);
}

}  // namespace
}  // namespace hdcs::dist
