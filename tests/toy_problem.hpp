#pragma once
// A minimal Problem used across the dist/sim/integration tests:
// sum of f(i) = i*i mod p over [0, n), partitioned into ranges.
//
// Also provides a *staged* variant whose stage k+1 units can only be
// generated after every stage-k result arrived — the shape of DPRml, used
// to test barrier handling and the multi-problem interleaving that Fig. 2
// depends on.

#include <cstdint>
#include <optional>

#include "dist/algorithm.hpp"
#include "dist/data_manager.hpp"
#include "dist/registry.hpp"
#include "util/byte_buffer.hpp"

namespace hdcs::test {

inline constexpr const char* kToyAlgorithmName = "toy-sum";

inline std::uint64_t toy_f(std::uint64_t i) { return (i * i) % 1000003ull; }

class ToySumAlgorithm final : public dist::Algorithm {
 public:
  void initialize(std::span<const std::byte> problem_data) override {
    ByteReader r(problem_data);
    offset_ = r.u64();
    r.expect_end();
  }

  std::vector<std::byte> process(const dist::WorkUnit& unit) override {
    ByteReader r(unit.payload);
    std::uint64_t begin = r.u64();
    std::uint64_t end = r.u64();
    r.expect_end();
    std::uint64_t sum = 0;
    for (std::uint64_t i = begin; i < end; ++i) sum += toy_f(i + offset_);
    ByteWriter w;
    w.u64(sum);
    return w.take();
  }

 private:
  std::uint64_t offset_ = 0;
};

/// Partition [0, n) into ranges of ~hint.target_ops elements (1 op = 1
/// element). `stages` > 1 makes it a staged problem: the range is split
/// into `stages` equal phases with a barrier between them.
class ToySumDataManager final : public dist::DataManager {
 public:
  ToySumDataManager(std::uint64_t n, std::uint64_t offset = 0, int stages = 1)
      : n_(n), offset_(offset), stages_(stages) {
    if (stages_ < 1) stages_ = 1;
  }

  [[nodiscard]] std::string algorithm_name() const override {
    return kToyAlgorithmName;
  }

  [[nodiscard]] std::vector<std::byte> problem_data() const override {
    ByteWriter w;
    w.u64(offset_);
    return w.take();
  }

  std::optional<dist::WorkUnit> next_unit(const dist::SizeHint& hint) override {
    std::uint64_t stage_end = stage_limit(current_stage_);
    if (cursor_ >= stage_end) {
      // Stage exhausted: barrier until all its results are merged.
      if (outstanding_ > 0) return std::nullopt;
      if (current_stage_ + 1 >= stages_) return std::nullopt;  // all generated
      ++current_stage_;
      stage_end = stage_limit(current_stage_);
    }
    auto span = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(hint.target_ops));
    std::uint64_t end = std::min(cursor_ + span, stage_end);

    dist::WorkUnit unit;
    unit.stage = static_cast<std::uint32_t>(current_stage_);
    unit.cost_ops = static_cast<double>(end - cursor_);
    ByteWriter w;
    w.u64(cursor_);
    w.u64(end);
    unit.payload = w.take();
    cursor_ = end;
    ++outstanding_;
    return unit;
  }

  void accept_result(const dist::ResultUnit& result) override {
    ByteReader r(result.payload);
    sum_ += r.u64();
    r.expect_end();
    --outstanding_;
    ++results_;
  }

  [[nodiscard]] bool is_complete() const override {
    return current_stage_ == stages_ - 1 && cursor_ >= n_ && outstanding_ == 0;
  }

  [[nodiscard]] std::vector<std::byte> final_result() const override {
    ByteWriter w;
    w.u64(sum_);
    return w.take();
  }

  [[nodiscard]] double remaining_ops_estimate() const override {
    return static_cast<double>(n_ - cursor_);
  }

  [[nodiscard]] std::uint64_t result_count() const { return results_; }

  [[nodiscard]] bool supports_snapshot() const override { return true; }
  void snapshot(ByteWriter& w) const override {
    w.u64(cursor_);
    w.i32(current_stage_);
    w.i32(outstanding_);
    w.u64(sum_);
    w.u64(results_);
  }
  void restore(ByteReader& r) override {
    cursor_ = r.u64();
    current_stage_ = r.i32();
    outstanding_ = r.i32();
    sum_ = r.u64();
    results_ = r.u64();
  }

  /// Ground truth, computed directly.
  [[nodiscard]] std::uint64_t expected() const {
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < n_; ++i) sum += toy_f(i + offset_);
    return sum;
  }

 private:
  [[nodiscard]] std::uint64_t stage_limit(int stage) const {
    return (stage + 1 == stages_) ? n_ : n_ / stages_ * (stage + 1);
  }

  std::uint64_t n_;
  std::uint64_t offset_;
  int stages_;
  std::uint64_t cursor_ = 0;
  int current_stage_ = 0;
  int outstanding_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t results_ = 0;
};

/// Decode a single-u64 result buffer (the toy problem's final_result()).
inline std::uint64_t read_u64_result(std::vector<std::byte> buffer) {
  ByteReader r{std::span<const std::byte>(buffer)};
  std::uint64_t v = r.u64();
  r.expect_end();
  return v;
}

/// Idempotently register the toy algorithm in the global registry.
inline void register_toy_algorithm() {
  dist::AlgorithmRegistry::global().replace(
      kToyAlgorithmName, [] { return std::make_unique<ToySumAlgorithm>(); });
}

}  // namespace hdcs::test
