#include "phylo/model_fit.hpp"

#include <gtest/gtest.h>

#include "phylo/distance.hpp"
#include "phylo/likelihood.hpp"
#include "phylo/simulate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace hdcs::phylo {
namespace {

TEST(EmpiricalFrequencies, CountsBasesIgnoringGaps) {
  Alignment aln;
  aln.names = {"x", "y"};
  aln.rows = {"AAAC--GG", "AAACNNGG"};
  auto pi = empirical_base_frequencies(aln);
  // Counts: A=6, C=2, G=4, T=0 over 12 unambiguous bases (+pseudo-counts).
  EXPECT_NEAR(pi[0], 6.5 / 14.0, 1e-12);
  EXPECT_NEAR(pi[1], 2.5 / 14.0, 1e-12);
  EXPECT_NEAR(pi[2], 4.5 / 14.0, 1e-12);
  EXPECT_NEAR(pi[3], 0.5 / 14.0, 1e-12);
  double sum = pi[0] + pi[1] + pi[2] + pi[3];
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Pseudo-counts keep every frequency positive (usable in models).
  EXPECT_GT(pi[3], 0.0);
}

TEST(FitScalar, RecoversGeneratingKappa) {
  // Simulate under K80 with kappa = 4; the ML profile on the true tree
  // must peak near 4.
  Rng rng(41);
  auto tree = random_tree(rng, {10, 0.1, "t"});
  auto model = SubstModel::k80(4.0);
  auto aln = simulate_alignment(rng, tree, model, RateModel::uniform(), {3000});
  auto patterns = compress(aln);

  auto fit = fit_scalar(patterns, tree, "K80", Config(), "kappa", 0.5, 20.0);
  EXPECT_NEAR(fit.value, 4.0, 0.8);
  EXPECT_GT(fit.evaluations, 3);

  // The fitted kappa cannot fit worse than a mis-specified one.
  Config wrong;
  wrong.set("kappa", "1.0");
  auto spec = ModelSpec::parse("K80", wrong);
  LikelihoodEngine engine(patterns, spec.model, spec.rates);
  Tree copy = tree;
  EXPECT_GE(fit.log_likelihood, engine.log_likelihood(copy));
}

TEST(FitScalar, RecoversGammaAlphaRoughly) {
  Rng rng(43);
  auto tree = random_tree(rng, {8, 0.15, "t"});
  auto model = SubstModel::jc69();
  auto rates = RateModel::gamma(0.4, 4);
  auto aln = simulate_alignment(rng, tree, model, rates, {4000});
  auto patterns = compress(aln);

  auto fit = fit_scalar(patterns, tree, "JC69+G4", Config(), "alpha", 0.05, 10.0);
  // Alpha is notoriously noisy; just require the right order of magnitude
  // and better fit than a rate-homogeneous model.
  EXPECT_GT(fit.value, 0.1);
  EXPECT_LT(fit.value, 1.5);

  auto uniform_spec = ModelSpec::parse("JC69", Config());
  LikelihoodEngine uniform(patterns, uniform_spec.model, uniform_spec.rates);
  Tree copy = tree;
  EXPECT_GT(fit.log_likelihood, uniform.log_likelihood(copy));
}

TEST(FitScalar, InputValidation) {
  Alignment aln;
  aln.names = {"a", "b", "c", "d"};
  aln.rows = {"ACGT", "ACGT", "ACGA", "ACTA"};
  auto patterns = compress(aln);
  auto tree = Tree::parse_newick("((a:0.1,b:0.1):0.1,c:0.1,d:0.1);");
  EXPECT_THROW(fit_scalar(patterns, tree, "K80", Config(), "kappa", 5.0, 1.0),
               InputError);
}

TEST(ModelFreeParameters, CountsMatchTextbook) {
  Config equal;  // equal frequencies
  EXPECT_EQ(model_free_parameters("JC69", equal), 0);
  EXPECT_EQ(model_free_parameters("K80", equal), 1);
  EXPECT_EQ(model_free_parameters("HKY85", equal), 1);
  EXPECT_EQ(model_free_parameters("GTR", equal), 5);
  EXPECT_EQ(model_free_parameters("JC69+G4", equal), 1);
  EXPECT_EQ(model_free_parameters("HKY85+G4+I", equal), 3);

  Config unequal;
  unequal.set("basefreq", "0.4,0.1,0.2,0.3");
  EXPECT_EQ(model_free_parameters("F81", unequal), 3);
  EXPECT_EQ(model_free_parameters("HKY85", unequal), 4);
  EXPECT_EQ(model_free_parameters("TN93+G4", unequal), 6);
  EXPECT_EQ(model_free_parameters("GTR+G4+I", unequal), 10);
  EXPECT_THROW(model_free_parameters("WAG", equal), InputError);
}

TEST(RankModels, PicksRicherModelOnlyWhenDataJustifiesIt) {
  // Data simulated under plain JC69: AIC must NOT prefer parameter-heavy
  // models (their logL gain is ~0 but they pay the penalty).
  Rng rng(47);
  auto tree = random_tree(rng, {8, 0.1, "t"});
  auto model = SubstModel::jc69();
  auto aln = simulate_alignment(rng, tree, model, RateModel::uniform(), {2000});
  auto patterns = compress(aln);

  Config params;
  params.set("kappa", "1.0");  // true value under JC
  auto ranking = rank_models(patterns, tree, {"JC69", "K80", "HKY85+G4"}, params);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking.front().spec, "JC69");
  // AIC ascending.
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_LE(ranking[i - 1].aic, ranking[i].aic);
  }
}

TEST(RankModels, DetectsTransitionBias) {
  // Data simulated with a strong transition bias (kappa = 6): K80 with the
  // fitted kappa must beat JC69 decisively despite its extra parameter.
  Rng rng(53);
  auto tree = random_tree(rng, {10, 0.12, "t"});
  auto model = SubstModel::k80(6.0);
  auto aln = simulate_alignment(rng, tree, model, RateModel::uniform(), {2000});
  auto patterns = compress(aln);

  auto fit = fit_scalar(patterns, tree, "K80", Config(), "kappa", 0.5, 20.0);
  Config params;
  params.set("kappa", format_f64(fit.value, 10));
  auto ranking = rank_models(patterns, tree, {"JC69", "K80"}, params);
  EXPECT_EQ(ranking.front().spec, "K80");
  EXPECT_LT(ranking[0].aic + 10, ranking[1].aic) << "bias should be decisive";
  // BIC agrees on strongly-supported choices.
  EXPECT_LT(ranking[0].bic, ranking[1].bic);
}

TEST(RankModels, EmptyCandidateListRejected) {
  Alignment aln;
  aln.names = {"a", "b", "c", "d"};
  aln.rows = {"ACGT", "ACGT", "ACGA", "ACTA"};
  auto tree = Tree::parse_newick("((a:0.1,b:0.1):0.1,c:0.1,d:0.1);");
  EXPECT_THROW(rank_models(compress(aln), tree, {}, Config()), InputError);
}

}  // namespace
}  // namespace hdcs::phylo
