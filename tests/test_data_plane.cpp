// The content-addressed bulk-data plane: LZ codec, donor blob cache,
// protocol-v4 blob transfer, v3 flattening compatibility, and the headline
// dedup property — a database chunk crosses the wire to a given donor at
// most once, even under replication and across server restarts.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "bio/seqgen.hpp"
#include "dist/client.hpp"
#include "dist/local_runner.hpp"
#include "dist/server.hpp"
#include "dist/wire.hpp"
#include "dprml/dprml.hpp"
#include "dsearch/dsearch.hpp"
#include "net/blob_cache.hpp"
#include "net/bulk.hpp"
#include "net/compress.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"
#include "net/socket.hpp"
#include "util/vfs.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phylo/simulate.hpp"
#include "sim/sim_driver.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hdcs {
namespace {

namespace fs = std::filesystem;

std::vector<std::byte> bytes_of(std::string_view s) {
  auto span = as_bytes(s);
  return {span.begin(), span.end()};
}

/// Repetitive text an LZ codec must shrink.
std::vector<std::byte> compressible_blob(std::size_t repeats) {
  std::string s;
  for (std::size_t i = 0; i < repeats; ++i) {
    s += "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ";
  }
  return bytes_of(s);
}

/// Uniform random bytes: incompressible by construction.
std::vector<std::byte> random_blob(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  return v;
}

/// Loopback stream pair (same fixture shape as test_net.cpp).
struct Pair {
  net::TcpListener listener = net::TcpListener::bind(0);
  net::TcpStream client;
  net::TcpStream server;

  Pair() {
    std::thread t([&] {
      client = net::TcpStream::connect("127.0.0.1", listener.port());
    });
    auto accepted = listener.accept(2000);
    t.join();
    if (!accepted) throw IoError("accept timed out in test fixture");
    server = std::move(*accepted);
  }
};

/// Unique scratch directory under the build tree, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("hdcs_data_plane_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// ---------------------------------------------------------------- codec --

TEST(Compress, RoundTripsCompressibleData) {
  auto raw = compressible_blob(200);
  auto packed = net::lz_compress(raw);
  ASSERT_TRUE(packed.has_value());
  EXPECT_LT(packed->size(), raw.size());
  EXPECT_EQ(net::lz_decompress(*packed, raw.size()), raw);
}

TEST(Compress, IncompressibleDataReturnsNullopt) {
  auto raw = random_blob(7, 64 * 1024);
  EXPECT_EQ(net::lz_compress(raw), std::nullopt);
}

TEST(Compress, EmptyAndTinyInputs) {
  EXPECT_EQ(net::lz_compress(std::vector<std::byte>{}), std::nullopt);
  auto tiny = bytes_of("ab");
  EXPECT_EQ(net::lz_compress(tiny), std::nullopt);  // can't beat 2 bytes
  // But whatever compresses must round-trip, including 1-char runs.
  auto runs = bytes_of(std::string(500, 'A'));
  auto packed = net::lz_compress(runs);
  ASSERT_TRUE(packed.has_value());
  EXPECT_EQ(net::lz_decompress(*packed, runs.size()), runs);
}

TEST(Compress, MalformedInputThrowsInsteadOfOverrunning) {
  auto raw = compressible_blob(50);
  auto packed = net::lz_compress(raw);
  ASSERT_TRUE(packed.has_value());

  // Wrong expected size: decoder must notice, not write out of range.
  EXPECT_THROW(net::lz_decompress(*packed, raw.size() + 1), ProtocolError);
  EXPECT_THROW(net::lz_decompress(*packed, raw.size() - 1), ProtocolError);

  // Truncations at every prefix length must throw, never crash.
  for (std::size_t keep = 0; keep < packed->size(); ++keep) {
    std::span<const std::byte> prefix(packed->data(), keep);
    EXPECT_THROW(net::lz_decompress(prefix, raw.size()), ProtocolError)
        << "prefix length " << keep;
  }

  // A match offset of zero (self-reference before any output) is invalid.
  // token: literal len 0, match len 4; offset u16 = 0.
  std::vector<std::byte> bad = {std::byte{0x00}, std::byte{0x00},
                                std::byte{0x00}};
  EXPECT_THROW(net::lz_decompress(bad, 4), ProtocolError);
}

TEST(Compress, FuzzedGarbageNeverCrashes) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    auto junk = random_blob(rng.next_u64(), 1 + rng.next_below(256));
    try {
      auto out = net::lz_decompress(junk, 128);
      EXPECT_EQ(out.size(), 128u);  // if it decodes, the contract holds
    } catch (const ProtocolError&) {
      // expected for most inputs
    }
  }
}

// ----------------------------------------------------------- blob cache --

TEST(BlobCache, LruEvictsOldestUnderMemoryBudget) {
  net::BlobCacheConfig cfg;
  cfg.memory_budget_bytes = 3000;
  net::BlobCache cache(cfg);

  std::vector<std::uint64_t> digests;
  for (int i = 0; i < 4; ++i) {
    auto blob = random_blob(1000 + i, 1000);
    digests.push_back(net::blob_digest(blob));
    cache.put(digests.back(), std::move(blob));
  }
  // 4 KB inserted into a 3 KB budget: the first blob is gone.
  EXPECT_LE(cache.memory_bytes(), cfg.memory_budget_bytes);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.get(digests[0]), std::nullopt);
  for (int i = 1; i < 4; ++i) {
    EXPECT_TRUE(cache.get(digests[i]).has_value()) << "blob " << i;
  }

  // Touch digest[1] (most recent now), insert another: digest[2] is LRU.
  ASSERT_TRUE(cache.get(digests[1]).has_value());
  auto blob = random_blob(2000, 1000);
  cache.put(net::blob_digest(blob), std::move(blob));
  EXPECT_EQ(cache.get(digests[2]), std::nullopt);
  EXPECT_TRUE(cache.get(digests[1]).has_value());
}

TEST(BlobCache, DiskTierSurvivesRestart) {
  ScratchDir dir("disk_tier");
  auto blob = compressible_blob(30);
  auto digest = net::blob_digest(blob);

  {
    net::BlobCacheConfig cfg;
    cfg.disk_dir = dir.path.string();
    net::BlobCache cache(cfg);
    cache.put(digest, blob);
  }
  // A fresh cache over the same directory adopts the blob.
  net::BlobCacheConfig cfg;
  cfg.disk_dir = dir.path.string();
  net::BlobCache revived(cfg);
  auto hit = revived.get(digest);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, blob);
  EXPECT_EQ(revived.stats().hits, 1u);
}

TEST(BlobCache, CorruptDiskEntryDroppedThenRefetchable) {
  ScratchDir dir("corrupt");
  net::BlobCacheConfig cfg;
  cfg.memory_budget_bytes = 100;  // too small: force disk-only residence
  cfg.disk_dir = dir.path.string();
  net::BlobCache cache(cfg);

  auto blob = random_blob(5, 4096);
  auto digest = net::blob_digest(blob);
  cache.put(digest, blob);
  ASSERT_EQ(cache.memory_bytes(), 0u);  // evicted from memory immediately

  // Scribble on the cached file — the next get must detect the digest
  // mismatch, drop the entry and report a miss (caller re-fetches).
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.blob",
                static_cast<unsigned long long>(digest));
  {
    std::ofstream f(dir.path / name,
                    std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(100);
    f.put('\x5a');
  }
  EXPECT_EQ(cache.get(digest), std::nullopt);
  EXPECT_EQ(cache.stats().corrupt_dropped, 1u);
  EXPECT_FALSE(fs::exists(dir.path / name));  // dropped, not left to rot

  // Re-fetch path: a fresh put restores service.
  cache.put(digest, blob);
  auto again = cache.get(digest);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, blob);
}

TEST(BlobCache, DiskWriteFailureCountedNeverTornOnDisk) {
  ScratchDir dir("disk_fault");
  net::BlobCacheConfig cfg;
  cfg.disk_dir = dir.path.string();
  net::BlobCache cache(cfg);
  auto blob = compressible_blob(31);
  auto digest = net::blob_digest(blob);
  {
    vfs::StorageFaultSpec spec;
    spec.write_error_prob = 1.0;
    spec.path_filter = "disk_fault";
    vfs::ScopedStorageFaultPlan scoped(spec);
    cache.put(digest, blob);  // disk tier fails; memory tier still serves
  }
  EXPECT_EQ(cache.stats().disk_write_failures, 1u);
  EXPECT_EQ(cache.disk_bytes(), 0u);  // nothing half-written was kept
  auto hit = cache.get(digest);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, blob);
  // No tmp corpse and no torn .blob file in the directory.
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    ADD_FAILURE() << "unexpected file survived the failed disk put: "
                  << entry.path();
  }
  // A restart over the same directory sees a clean (empty) disk tier.
  net::BlobCache revived(cfg);
  EXPECT_EQ(revived.get(digest), std::nullopt);
}

TEST(BlobCache, DiskFaultStormNeverServesCorruptBlobs) {
  // Storms over the disk tier (torn renames included): every get() must
  // return either the true bytes or a miss — the digest re-check turns
  // whatever the storm left on disk into a re-fetch, never a wrong input.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ScratchDir dir("disk_storm");
    net::BlobCacheConfig cfg;
    cfg.memory_budget_bytes = 4096;  // small: force disk round-trips
    cfg.disk_dir = dir.path.string();
    net::BlobCache cache(cfg);
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> blobs;
    for (int i = 0; i < 8; ++i) {
      auto blob = random_blob(seed * 100 + static_cast<std::uint64_t>(i), 2048);
      blobs.emplace_back(net::blob_digest(blob), blob);
    }
    {
      vfs::StorageFaultSpec spec;
      spec.seed = seed;
      spec.write_error_prob = 0.2;
      spec.short_write_prob = 0.15;
      spec.sync_error_prob = 0.2;
      spec.rename_error_prob = 0.15;
      spec.torn_rename_prob = 0.2;
      spec.path_filter = "disk_storm";
      vfs::ScopedStorageFaultPlan scoped(spec);
      for (const auto& [digest, blob] : blobs) cache.put(digest, blob);
      for (const auto& [digest, blob] : blobs) {
        auto hit = cache.get(digest);
        if (hit) EXPECT_EQ(*hit, blob) << "seed " << seed;
      }
    }
    // And with the storm over, a revived cache over the same directory
    // still serves only verified bytes.
    net::BlobCache revived(cfg);
    for (const auto& [digest, blob] : blobs) {
      auto hit = revived.get(digest);
      if (hit) EXPECT_EQ(*hit, blob) << "seed " << seed;
    }
  }
}

// ----------------------------------------------------- v4 blob transfer --

TEST(BulkV4, CompressedRoundTripReportsWireSavings) {
  Pair p;
  auto raw = compressible_blob(300);
  net::BlobWireInfo info;
  std::thread sender([&] { info = net::send_blob_v4(p.client, raw); });
  auto got = net::recv_blob_v4(p.server);
  sender.join();
  EXPECT_EQ(got, raw);
  EXPECT_TRUE(info.compressed);
  EXPECT_EQ(info.raw_bytes, raw.size());
  EXPECT_LT(info.wire_bytes, info.raw_bytes);
}

TEST(BulkV4, IncompressibleSentStored) {
  Pair p;
  auto raw = random_blob(3, 32 * 1024);
  net::BlobWireInfo info;
  std::thread sender([&] { info = net::send_blob_v4(p.client, raw); });
  auto got = net::recv_blob_v4(p.server);
  sender.join();
  EXPECT_EQ(got, raw);
  EXPECT_FALSE(info.compressed);
  EXPECT_GE(info.wire_bytes, info.raw_bytes);  // header overhead only
}

TEST(BulkV4, EmptyBlobRoundTrips) {
  Pair p;
  std::vector<std::byte> empty;
  std::thread sender([&] { net::send_blob_v4(p.client, empty); });
  EXPECT_EQ(net::recv_blob_v4(p.server), empty);
  sender.join();
}

TEST(BulkV4, OversizeRejectedBeforeAllocation) {
  Pair p;
  auto raw = random_blob(11, 64 * 1024);
  std::thread sender([&] {
    try {
      net::send_blob_v4(p.client, raw);
    } catch (const std::exception&) {
      // receiver may close early; either way the send must not hang
    }
  });
  EXPECT_THROW(net::recv_blob_v4(p.server, /*max_bytes=*/1024), IoError);
  p.server.close();
  sender.join();
}

TEST(BulkV4, CorruptionUnderFaultPlanDetectedNeverMerged) {
  // With every recv corrupting one byte, a transfer must either throw or
  // (if the flip landed outside this stream's frames) deliver exact bytes
  // — wrong data must never come back looking like success.
  auto raw = compressible_blob(100);
  int detected = 0;
  for (int i = 0; i < 8; ++i) {
    Pair p;  // built before the plan: connects stay clean
    net::ScopedFaultPlan plan({.seed = 1000 + static_cast<std::uint64_t>(i),
                               .corrupt_prob = 1.0});
    std::thread sender([&] {
      try {
        net::send_blob_v4(p.client, raw);
      } catch (const std::exception&) {
      }
      // EOF after the real bytes: a corrupted-but-plausible wire_size must
      // end in ConnectionClosed, not a forever-blocking recv.
      p.client.close();
    });
    try {
      auto got = net::recv_blob_v4(p.server);
      EXPECT_EQ(got, raw);
    } catch (const ProtocolError&) {
      ++detected;
    } catch (const IoError&) {
      ++detected;  // corrupted length tripping the size guard, or EOF
    }
    sender.join();
  }
  EXPECT_GT(detected, 0) << "fault plan never fired";
}

TEST(BulkV4, TruncatedSendSurfacesAsError) {
  auto raw = compressible_blob(100);
  Pair p;
  net::ScopedFaultPlan plan({.seed = 42, .send_truncate_prob = 1.0});
  std::thread sender([&] {
    try {
      net::send_blob_v4(p.client, raw);
    } catch (const std::exception&) {
    }
  });
  EXPECT_THROW(net::recv_blob_v4(p.server), std::exception);
  sender.join();
}

// ------------------------------------------------------------ wire v3/v4 --

TEST(WireV4, WorkAssignmentCarriesBlobRefsNotBytes) {
  dist::WorkUnit unit;
  unit.problem_id = 3;
  unit.unit_id = 17;
  unit.stage = 2;
  unit.cost_ops = 1234.5;
  unit.payload = bytes_of("header-fields");
  unit.blobs.push_back(dist::make_work_blob(compressible_blob(10)));
  unit.blobs.push_back(dist::make_work_blob(bytes_of("second blob")));

  auto m = dist::encode_work_assignment(unit, 9, net::kProtocolVersion);
  EXPECT_EQ(m.version, net::kProtocolVersion);
  auto back = dist::decode_work_assignment(m);
  EXPECT_EQ(back.unit_id, unit.unit_id);
  EXPECT_EQ(back.payload, unit.payload);
  ASSERT_EQ(back.blobs.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.blobs[i].digest, unit.blobs[i].digest);
    EXPECT_EQ(back.blobs[i].size, unit.blobs[i].size);
    EXPECT_TRUE(back.blobs[i].bytes.empty()) << "refs only on the wire";
  }
}

TEST(WireV4, V3EncodingOfFlattenedUnitIsLegacyShape) {
  // What the server sends a v3 donor: blobs flattened onto the payload,
  // encoded with the legacy (payload-only) codec.
  dist::WorkUnit unit;
  unit.problem_id = 1;
  unit.unit_id = 5;
  unit.cost_ops = 10;
  unit.payload = bytes_of("prefix");
  auto blob = bytes_of("blob-body");
  dist::WorkUnit flat = unit;
  flat.payload.insert(flat.payload.end(), blob.begin(), blob.end());

  auto m = dist::encode_work_assignment(flat, 1, /*version=*/3);
  EXPECT_EQ(m.version, 3);
  auto back = dist::decode_work_assignment(m);
  EXPECT_TRUE(back.blobs.empty());
  EXPECT_EQ(back.payload, flat.payload);
}

TEST(WireV4, FetchBlobsAndBlobDataRoundTrip) {
  dist::FetchBlobsPayload req;
  req.client_id = 7;
  req.digests = {0x1111, 0xffffffffffffffffull, 3};
  auto reqm = dist::encode_fetch_blobs(req, 21);
  auto reqb = dist::decode_fetch_blobs(reqm);
  EXPECT_EQ(reqb.client_id, req.client_id);
  EXPECT_EQ(reqb.digests, req.digests);

  dist::BlobDataPayload rep;
  rep.blobs = {{0x1111, true}, {0xffffffffffffffffull, false}, {3, true}};
  auto repm = dist::encode_blob_data(rep, 21);
  auto repb = dist::decode_blob_data(repm);
  ASSERT_EQ(repb.blobs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(repb.blobs[i].digest, rep.blobs[i].digest);
    EXPECT_EQ(repb.blobs[i].present, rep.blobs[i].present);
  }
}

// -------------------------------------------- algorithm flatten parity --

TEST(DPRmlDataPlane, SharedTreeUnitDecodesBlobAndFlattenedFormsAlike) {
  // Drive a whole DPRml build; every blob-bearing unit (shared stage tree)
  // must produce byte-identical results whether the tree arrives as
  // blobs[0] (v4 donors) or flattened onto the payload (v3 donors).
  Rng rng(31);
  auto tree = phylo::random_tree(rng, {6, 0.12, "t"});
  auto aln = phylo::simulate_alignment(rng, tree, phylo::SubstModel::jc69(),
                                       phylo::RateModel::uniform(), {200});
  dprml::DPRmlConfig config;
  config.model_spec = "JC69";
  config.branch_tolerance = 1e-3;
  config.eval_passes = 1;
  config.refine_passes = 1;
  config.use_eval_cache = false;

  dprml::DPRmlDataManager dm(aln, config);
  dprml::DPRmlAlgorithm algo;
  algo.initialize(dm.problem_data());

  dist::SizeHint hint;
  hint.target_ops = 1e18;  // one unit per stage batch keeps the loop short
  int blob_units = 0;
  int spins = 0;
  while (!dm.is_complete()) {
    auto unit = dm.next_unit(hint);
    if (!unit) {
      ASSERT_LT(++spins, 100000) << "data manager stalled";
      continue;
    }
    auto blob_form = algo.process(*unit);
    if (!unit->blobs.empty()) {
      ++blob_units;
      dist::WorkUnit flat = *unit;
      for (const auto& b : flat.blobs) {
        flat.payload.insert(flat.payload.end(), b.bytes.begin(),
                            b.bytes.end());
      }
      flat.blobs.clear();
      EXPECT_EQ(algo.process(flat), blob_form) << "unit " << unit->unit_id;
    }
    dist::ResultUnit r;
    r.problem_id = unit->problem_id;
    r.unit_id = unit->unit_id;
    r.stage = unit->stage;
    r.payload = std::move(blob_form);
    dm.accept_result(r);
  }
  EXPECT_GT(blob_units, 0) << "no shared-tree units exercised";
}

// --------------------------------------------------- TCP compatibility --

struct DSearchCase {
  std::vector<bio::Sequence> queries;
  std::vector<bio::Sequence> database;
  dsearch::DSearchConfig config;
};

DSearchCase dsearch_case(std::uint64_t seed, std::size_t db_size = 48) {
  Rng rng(seed);
  DSearchCase c;
  c.queries = bio::make_queries(rng, 2, 60, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = db_size;
  spec.mean_length = 80;
  spec.planted_homologs_per_query = 3;
  c.database = bio::make_database(rng, spec, c.queries);
  c.config.top_k = 8;
  return c;
}

dist::ServerConfig dsearch_server_config() {
  dist::ServerConfig cfg;
  cfg.scheduler.lease_timeout = 60.0;
  cfg.scheduler.bounds.min_ops = 1000;
  cfg.policy_spec = "fixed:200000";
  cfg.tick_interval_s = 0.05;
  cfg.no_work_retry_s = 0.02;
  dsearch::register_algorithm();
  return cfg;
}

dist::ClientConfig donor_config(std::uint16_t port, const std::string& name) {
  dist::ClientConfig cfg;
  cfg.server_port = port;
  cfg.name = name;
  return cfg;
}

TEST(DataPlaneTcp, V3DonorCompletesBlobBackedProblem) {
  auto c = dsearch_case(311);
  auto serial = dsearch::search_serial(c.queries, c.database, c.config);

  dist::Server server(dsearch_server_config());
  server.start();
  auto dm = std::make_shared<dsearch::DSearchDataManager>(c.queries,
                                                          c.database, c.config);
  auto pid = server.submit_problem(dm);

  auto cfg = donor_config(server.port(), "legacy-donor");
  cfg.protocol_version = 3;  // speaks the pre-blob protocol end to end
  dist::Client donor(cfg);
  auto stats = donor.run();

  ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
  EXPECT_GT(stats.units_processed, 0u);
  EXPECT_EQ(dm->result(), serial);
  server.stop();
}

TEST(DataPlaneTcp, MixedV3AndV4DonorsAgree) {
  auto c = dsearch_case(313);
  auto serial = dsearch::search_serial(c.queries, c.database, c.config);

  dist::Server server(dsearch_server_config());
  server.start();
  auto dm = std::make_shared<dsearch::DSearchDataManager>(c.queries,
                                                          c.database, c.config);
  auto pid = server.submit_problem(dm);

  auto legacy_cfg = donor_config(server.port(), "v3-donor");
  legacy_cfg.protocol_version = 3;
  std::thread legacy([&] { dist::Client(legacy_cfg).run(); });
  std::thread modern(
      [&] { dist::Client(donor_config(server.port(), "v4-donor")).run(); });
  legacy.join();
  modern.join();

  ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
  EXPECT_EQ(dm->result(), serial);
  server.stop();
}

TEST(DataPlaneTcp, MixedFleetProfilesComeOnlyFromV5Donors) {
  // v3 + v4 + v5 donors against one server: the merged result is
  // byte-identical to the serial reference, and every span profile the
  // trace records came from the v5 donor — exactly one per completion it
  // contributed, none from the legacy donors.
  auto c = dsearch_case(331, 96);
  auto serial = dsearch::search_serial(c.queries, c.database, c.config);

  obs::Tracer tracer;
  tracer.to_memory();
  auto scfg = dsearch_server_config();
  scfg.tracer = &tracer;
  dist::Server server(scfg);
  server.start();
  auto dm = std::make_shared<dsearch::DSearchDataManager>(c.queries,
                                                          c.database, c.config);
  auto pid = server.submit_problem(dm);

  auto v3_cfg = donor_config(server.port(), "v3-donor");
  v3_cfg.protocol_version = 3;
  auto v4_cfg = donor_config(server.port(), "v4-donor");
  v4_cfg.protocol_version = 4;
  auto v5_cfg = donor_config(server.port(), "v5-donor");  // default: v5
  std::thread t3([&] { dist::Client(v3_cfg).run(); });
  std::thread t4([&] { dist::Client(v4_cfg).run(); });
  std::thread t5([&] { dist::Client(v5_cfg).run(); });
  t3.join();
  t4.join();
  t5.join();

  ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
  EXPECT_EQ(dm->result(), serial);
  server.stop();

  std::set<std::uint64_t> v5_ids;
  std::uint64_t v5_completed = 0, profiles = 0;
  for (const auto& line : tracer.lines()) {
    auto rec = obs::parse_trace_line(line);
    if (rec.ev == "client_joined") {
      if (rec.text("name") == "v5-donor") {
        v5_ids.insert(static_cast<std::uint64_t>(rec.number("client")));
      }
    } else if (rec.ev == "unit_completed") {
      if (v5_ids.count(static_cast<std::uint64_t>(rec.number("client")))) {
        v5_completed += 1;
      }
    } else if (rec.ev == "unit_profile") {
      profiles += 1;
      EXPECT_TRUE(v5_ids.count(static_cast<std::uint64_t>(rec.number("client"))))
          << "span profile attributed to a legacy donor";
      EXPECT_GE(rec.number("submit_s"), 0.0);
    }
  }
  EXPECT_EQ(profiles, v5_completed);
  EXPECT_GT(profiles + v5_completed, 0u)
      << "v5 donor never completed a unit; widen the workload";
}

// ------------------------------------------------------- dedup headline --

struct BulkSnapshot {
  std::uint64_t sent, hits, raw, wire;
  static BulkSnapshot take() {
    auto& m = net::bulk_plane_metrics();
    return {m.blobs_sent.value(), m.blobs_cache_hit.value(),
            m.bytes_raw.value(), m.bytes_wire.value()};
  }
};

TEST(DataPlaneTcp, ReplicatedChunksTransferOncePerDonorAndReuseAcrossRuns) {
  // The acceptance scenario: DSEARCH over real TCP, four donors,
  // replication_factor 2 — every database chunk reaches a given donor at
  // most once (asserted via the bulk counters), and results match the
  // serial reference bit for bit. Then a NEW server run over the same
  // inputs with replication_factor 4 finds the donors' disk caches warm:
  // chunks already held are never re-downloaded.
  auto c = dsearch_case(317);
  auto serial = dsearch::search_serial(c.queries, c.database, c.config);

  ScratchDir cache_root("dedup");
  constexpr int kDonors = 4;
  auto donor_cfg = [&](std::uint16_t port, int i) {
    auto cfg = donor_config(port, "donor-" + std::to_string(i));
    cfg.blob_cache_dir =
        (cache_root.path / ("donor-" + std::to_string(i))).string();
    return cfg;
  };
  auto run_fleet = [&](dist::Server& server) {
    std::vector<std::thread> threads;
    for (int i = 0; i < kDonors; ++i) {
      threads.emplace_back(
          [&, i] { dist::Client(donor_cfg(server.port(), i)).run(); });
    }
    for (auto& t : threads) t.join();
  };
  auto integrity_server_config = [&](int replicas) {
    auto cfg = dsearch_server_config();
    cfg.scheduler.replication_factor = replicas;
    cfg.scheduler.quorum = replicas;
    cfg.scheduler.spot_check_rate = 0.0;
    cfg.scheduler.reputation_trust_threshold = 1e9;  // never skip replication
    return cfg;
  };

  // How many of the four donors actually won work in a phase is a
  // scheduling race (a fast pair can drain a small queue before the
  // others ask), so expectations are derived from observed
  // participation: a donor that completed at least one unit fetched the
  // problem-data blob plus its chunks, leaving a non-empty cache dir.
  auto donors_with_warm_cache = [&] {
    std::uint64_t warm = 0;
    for (int i = 0; i < kDonors; ++i) {
      fs::path dir = donor_cfg(0, i).blob_cache_dir;
      if (fs::exists(dir) && !fs::is_empty(dir)) ++warm;
    }
    return warm;
  };

  // ---- Phase A: cold caches, replication 2 ----
  std::uint64_t units_a = 0;
  std::uint64_t participants_a = 0;
  {
    dist::Server server(integrity_server_config(2));
    server.start();
    auto dm = std::make_shared<dsearch::DSearchDataManager>(
        c.queries, c.database, c.config);
    auto pid = server.submit_problem(dm);

    auto before = BulkSnapshot::take();
    run_fleet(server);
    ASSERT_TRUE(server.wait_for_problem(pid, 60.0));
    auto after = BulkSnapshot::take();
    auto stats = server.stats();
    server.stop();

    EXPECT_EQ(dm->result(), serial);
    units_a = stats.units_issued;
    participants_a = donors_with_warm_cache();
    EXPECT_GE(participants_a, 2u);  // replication 2 needs >= 2 donors
    EXPECT_EQ(stats.units_reissued, 0u);
    // Cold caches: zero hits, and exactly one transfer per issued unit
    // (its chunk) plus one problem-data blob per participating donor. Any
    // double transfer of a chunk to the same donor would break this
    // equality.
    EXPECT_EQ(after.hits - before.hits, 0u);
    EXPECT_EQ(after.sent - before.sent, units_a + participants_a);
    EXPECT_GT(after.raw - before.raw, 0u);
    EXPECT_LE(after.wire - before.wire, after.raw - before.raw);
  }

  // ---- Phase B: new server, same inputs, replication 4, warm disks ----
  {
    dist::Server server(integrity_server_config(4));
    server.start();
    auto dm = std::make_shared<dsearch::DSearchDataManager>(
        c.queries, c.database, c.config);
    auto pid = server.submit_problem(dm);

    auto before = BulkSnapshot::take();
    run_fleet(server);
    ASSERT_TRUE(server.wait_for_problem(pid, 60.0));
    auto after = BulkSnapshot::take();
    auto stats = server.stats();
    server.stop();

    EXPECT_EQ(dm->result(), serial);
    EXPECT_EQ(stats.units_reissued, 0u);
    // Replication 4 with 4 donors forces every chunk onto every donor, so
    // participation is total and the ledger is exact: the fixed policy
    // re-creates identical chunks, each (donor, chunk) pair that phase A
    // already transferred is a disk hit now, every other pair downloads
    // once, and the problem-data blob is a hit exactly where phase A
    // fetched it.
    auto units_b = stats.units_issued;
    EXPECT_EQ(units_b, 2 * units_a);
    EXPECT_EQ(after.hits - before.hits, units_a + participants_a);
    EXPECT_EQ(after.sent - before.sent,
              (units_b - units_a) + (kDonors - participants_a));
  }
}

// ------------------------------------------------------------ simulator --

TEST(DataPlaneSim, SharedTreeBlobsDedupAndCompressInVirtualFleet) {
  // DPRml in the simulator: every eval unit of a stage shares one tree
  // blob, so a fleet must see cache hits (dedup) and a wire byte count
  // below the raw byte count (compression) — mirrored in both the
  // process-global bulk counters and the SimOutcome.
  dprml::register_algorithm();
  Rng rng(41);
  auto tree = phylo::random_tree(rng, {7, 0.12, "t"});
  auto aln = phylo::simulate_alignment(rng, tree, phylo::SubstModel::jc69(),
                                       phylo::RateModel::uniform(), {240});
  dprml::DPRmlConfig config;
  config.model_spec = "JC69";
  config.branch_tolerance = 1e-3;
  config.eval_passes = 1;
  config.refine_passes = 1;
  config.use_eval_cache = false;

  sim::SimConfig cfg;
  cfg.reference_ops_per_sec = 1e6;
  cfg.scheduler.lease_timeout = 1e5;
  cfg.scheduler.bounds.min_ops = 1;
  cfg.policy_spec = "adaptive:5";
  cfg.no_work_retry_s = 0.25;

  sim::SimDriver driver(cfg, sim::lab_fleet(5));
  driver.add_problem(std::make_shared<dprml::DPRmlDataManager>(aln, config));

  auto before = BulkSnapshot::take();
  auto out = driver.run();
  auto after = BulkSnapshot::take();

  EXPECT_GT(out.blobs_sent, 0u);
  EXPECT_GT(out.blob_cache_hits, 0u) << "shared stage trees must dedup";
  EXPECT_GT(out.blob_bytes_raw, 0.0);
  EXPECT_LT(out.blob_bytes_wire, out.blob_bytes_raw)
      << "newick trees are compressible";
  // The sim feeds the same process-global counters as the real server.
  EXPECT_EQ(after.sent - before.sent, out.blobs_sent);
  EXPECT_EQ(after.hits - before.hits, out.blob_cache_hits);
}

}  // namespace
}  // namespace hdcs
