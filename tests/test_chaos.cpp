// Chaos: the whole system — TCP server, resilient donors, checkpointing —
// driven through injected network faults, donor churn, and a server
// kill/restart that recovers only from the on-disk checkpoint. The final
// merged answers must be byte-identical to a fault-free local run: faults
// and crashes may cost time, never correctness.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bio/seqgen.hpp"
#include "dist/client.hpp"
#include "dist/local_runner.hpp"
#include "dist/server.hpp"
#include "dprml/dprml.hpp"
#include "dsearch/dsearch.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phylo/simulate.hpp"
#include "sim/sim_driver.hpp"
#include "tests/toy_problem.hpp"
#include "util/rng.hpp"
#include "util/vfs.hpp"

namespace hdcs::dist {
namespace {

/// Reserve a loopback port the restarted server can come back on. (Bind an
/// ephemeral port, read it, release it — fine for a single-process test.)
std::uint16_t pick_port() {
  auto listener = net::TcpListener::bind(0);
  std::uint16_t port = listener.port();
  listener.close();
  return port;
}

std::uint64_t total_injected_faults() {
  auto& reg = obs::Registry::global();
  return reg.counter("net.fault.connects_refused").value() +
         reg.counter("net.fault.recv_disconnects").value() +
         reg.counter("net.fault.sends_truncated").value() +
         reg.counter("net.fault.bytes_corrupted").value() +
         reg.counter("net.fault.delays_injected").value();
}

/// CI artifact hook: when HDCS_TRACE_DIR is set, persist a test's in-memory
/// trace to <dir>/<name>.jsonl. The chaos CI jobs upload those timelines
/// and lint every line with `trace_summary --json`, so a schema drift in
/// either emitter fails the job even if no assertion here noticed.
void dump_trace(const obs::Tracer& tracer, const std::string& name) {
  const char* dir = std::getenv("HDCS_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::filesystem::create_directories(dir);
  std::ofstream out(std::filesystem::path(dir) / (name + ".jsonl"));
  for (const auto& line : tracer.lines()) out << line << '\n';
}

TEST(Chaos, RealWorkloadsSurviveServerKillDonorChurnAndFrameFaults) {
  dsearch::register_algorithm();
  dprml::register_algorithm();

  // --- Build the two workloads and their fault-free reference answers.
  Rng rng(117);
  auto queries = bio::make_queries(rng, 2, 60, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 40;
  spec.mean_length = 80;
  auto database = bio::make_database(rng, spec, queries);
  dsearch::DSearchConfig dcfg;
  dcfg.top_k = 8;

  auto tree = phylo::random_tree(rng, {7, 0.12, "t"});
  auto aln = phylo::simulate_alignment(rng, tree, phylo::SubstModel::jc69(),
                                       phylo::RateModel::uniform(), {250});
  dprml::DPRmlConfig pcfg;
  pcfg.model_spec = "JC69";
  pcfg.branch_tolerance = 1e-3;
  pcfg.eval_passes = 1;
  pcfg.refine_passes = 1;
  pcfg.use_eval_cache = false;

  std::vector<std::byte> ref_ds, ref_ml;
  {
    dsearch::DSearchDataManager dm(queries, database, dcfg);
    ref_ds = run_locally(dm, 2e5);
  }
  {
    dprml::DPRmlDataManager dm(aln, pcfg);
    ref_ml = run_locally(dm, 1.0);
  }

  // --- Server config: aggressive ticks, short leases, durable autosave.
  std::string ckpt = testing::TempDir() + "hdcs_chaos_ckpt.bin";
  std::remove(ckpt.c_str());
  ServerConfig scfg;
  scfg.port = pick_port();
  scfg.scheduler.bounds.min_ops = 1;
  scfg.scheduler.lease_timeout = 1.5;
  scfg.scheduler.client_timeout = 1.5;
  scfg.scheduler.hedge_endgame = true;
  scfg.policy_spec = "adaptive:0.02";
  scfg.tick_interval_s = 0.02;
  scfg.no_work_retry_s = 0.02;
  scfg.checkpoint_path = ckpt;
  scfg.checkpoint_interval_s = 0.05;

  auto& saves = obs::Registry::global().counter("checkpoint.saves");
  std::uint64_t saves_before = saves.value();
  std::uint64_t faults_before = total_injected_faults();

  // --- The storm: every TCP operation in the process rides through this.
  net::FaultSpec storm;
  storm.seed = 2026;
  storm.connect_refuse_prob = 0.10;
  storm.recv_disconnect_prob = 0.01;
  storm.send_truncate_prob = 0.01;
  storm.corrupt_prob = 0.01;
  storm.delay_prob = 0.05;
  storm.delay_max_s = 0.002;
  net::ScopedFaultPlan scoped(storm);

  auto server = std::make_unique<Server>(scfg);
  server->start();
  auto dm_ds =
      std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg);
  auto dm_ml = std::make_shared<dprml::DPRmlDataManager>(aln, pcfg);
  auto pid_ds = server->submit_problem(dm_ds);
  auto pid_ml = server->submit_problem(dm_ml);

  // --- Resilient donors: retry forever, must never exit on a fault.
  constexpr int kDonors = 3;
  std::vector<std::thread> donors;
  std::vector<ClientRunStats> donor_stats(kDonors);
  std::atomic<int> donor_failures{0};
  for (int i = 0; i < kDonors; ++i) {
    donors.emplace_back([&, i] {
      ClientConfig ccfg;
      ccfg.server_port = scfg.port;
      ccfg.name = "resilient-" + std::to_string(i);
      ccfg.max_connect_attempts = 0;  // service mode: outlast any outage
      try {
        donor_stats[static_cast<std::size_t>(i)] = Client(ccfg).run();
      } catch (const Error&) {
        donor_failures.fetch_add(1);
      }
    });
  }
  // --- Churn: donors that crash mid-lease, over and over.
  std::atomic<bool> stop_churn{false};
  std::thread churn([&] {
    int n = 0;
    while (!stop_churn.load()) {
      ClientConfig ccfg;
      ccfg.server_port = scfg.port;
      ccfg.name = "churn-" + std::to_string(n++);
      ccfg.crash_after_units = 2;
      ccfg.send_heartbeats = false;
      ccfg.max_connect_attempts = 3;
      try {
        Client(ccfg).run();
      } catch (const Error&) {
        // Churn donors are *expected* casualties (refused connects, etc.).
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  // --- Let progress and at least one durable autosave accumulate...
  for (int i = 0; i < 500 && saves.value() == saves_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GT(saves.value(), saves_before) << "no autosave reached disk";
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // --- ...then kill the server. Everything in memory is gone; donors are
  // mid-loop and must fall back to reconnect-with-backoff.
  server.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // --- Restart on the same port from the on-disk checkpoint only.
  server = std::make_unique<Server>(scfg);
  auto dm_ds2 =
      std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg);
  auto dm_ml2 = std::make_shared<dprml::DPRmlDataManager>(aln, pcfg);
  auto pid_ds2 = server->submit_problem(dm_ds2);
  auto pid_ml2 = server->submit_problem(dm_ml2);
  ASSERT_EQ(pid_ds2, pid_ds);  // same submit order -> same problem ids
  ASSERT_EQ(pid_ml2, pid_ml);
  server->start();  // restore_on_start reads the autosaved checkpoint

  ASSERT_TRUE(server->wait_for_problem(pid_ds2, 120.0)) << "DSEARCH stalled";
  ASSERT_TRUE(server->wait_for_problem(pid_ml2, 120.0)) << "DPRml stalled";
  stop_churn.store(true);
  for (auto& t : donors) t.join();
  churn.join();

  // --- Byte-identical answers despite kill, churn, and frame faults.
  EXPECT_EQ(server->final_result(pid_ds2), ref_ds);
  EXPECT_EQ(server->final_result(pid_ml2), ref_ml);

  // --- No resilient donor exited; the outage forced real reconnects.
  EXPECT_EQ(donor_failures.load(), 0);
  std::uint64_t reconnects = 0;
  for (const auto& s : donor_stats) reconnects += s.reconnects;
  EXPECT_GE(reconnects, 1u);

  // --- Faults actually fired, were detected, and were never merged.
  EXPECT_GT(total_injected_faults(), faults_before);
  server->stop();
  std::remove(ckpt.c_str());
}

int count_events(const obs::Tracer& tracer, const std::string& ev) {
  int n = 0;
  for (const auto& line : tracer.lines()) {
    if (obs::parse_trace_line(line).ev == ev) ++n;
  }
  return n;
}

TEST(Chaos, LyingDonorsCannotCorruptResultsAcrossServerRestart) {
  // 20% of the fleet lies deterministically: one donor in five corrupts
  // every payload it produces — each lie carrying a *matching* digest, so
  // only replication voting can catch it. Mid-run the server is killed and
  // restarted from its checkpoint (partial votes and the reputation ledger
  // ride the file). The merged answers must still be byte-identical to
  // fault-free local runs, and the liar must end up blacklisted.
  dsearch::register_algorithm();
  dprml::register_algorithm();

  Rng rng(211);
  auto queries = bio::make_queries(rng, 2, 60, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 40;
  spec.mean_length = 80;
  auto database = bio::make_database(rng, spec, queries);
  dsearch::DSearchConfig dcfg;
  dcfg.top_k = 8;
  auto tree = phylo::random_tree(rng, {7, 0.12, "t"});
  auto aln = phylo::simulate_alignment(rng, tree, phylo::SubstModel::jc69(),
                                       phylo::RateModel::uniform(), {250});
  dprml::DPRmlConfig pcfg;
  pcfg.model_spec = "JC69";
  pcfg.branch_tolerance = 1e-3;
  pcfg.eval_passes = 1;
  pcfg.refine_passes = 1;
  pcfg.use_eval_cache = false;

  std::vector<std::byte> ref_ds, ref_ml;
  {
    dsearch::DSearchDataManager dm(queries, database, dcfg);
    ref_ds = run_locally(dm, 2e5);
  }
  {
    dprml::DPRmlDataManager dm(aln, pcfg);
    ref_ml = run_locally(dm, 1.0);
  }

  std::string ckpt = testing::TempDir() + "hdcs_chaos_integrity_ckpt.bin";
  std::remove(ckpt.c_str());
  obs::Tracer tracer;  // shared across both server incarnations
  tracer.to_memory();
  ServerConfig scfg;
  scfg.port = pick_port();
  scfg.scheduler.bounds.min_ops = 1;
  scfg.scheduler.lease_timeout = 2.0;
  scfg.scheduler.client_timeout = 2.0;
  scfg.scheduler.hedge_endgame = true;
  scfg.scheduler.replication_factor = 2;
  scfg.scheduler.quorum = 2;
  scfg.scheduler.blacklist_after = 2;
  scfg.scheduler.spot_check_rate = 0.05;
  scfg.policy_spec = "adaptive:0.02";
  scfg.tick_interval_s = 0.02;
  scfg.no_work_retry_s = 0.02;
  scfg.checkpoint_path = ckpt;
  scfg.checkpoint_interval_s = 0.05;
  scfg.tracer = &tracer;

  auto& saves = obs::Registry::global().counter("checkpoint.saves");
  std::uint64_t saves_before = saves.value();

  auto server = std::make_unique<Server>(scfg);
  server->start();
  auto pid_ds = server->submit_problem(
      std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg));
  auto pid_ml =
      server->submit_problem(std::make_shared<dprml::DPRmlDataManager>(aln, pcfg));

  constexpr int kDonors = 5;  // donor 0 lies on every unit it touches
  std::vector<std::thread> donors;
  std::atomic<int> donor_failures{0};
  for (int i = 0; i < kDonors; ++i) {
    donors.emplace_back([&, i] {
      ClientConfig ccfg;
      ccfg.server_port = scfg.port;
      ccfg.name = i == 0 ? "liar" : "honest-" + std::to_string(i);
      ccfg.max_connect_attempts = 0;  // outlast the restart
      if (i == 0) {
        ccfg.corrupt_rate = 1.0;
        ccfg.corrupt_seed = 7;
      }
      try {
        Client(ccfg).run();
      } catch (const Error&) {
        donor_failures.fetch_add(1);
      }
    });
  }

  // Progress + one durable autosave, then kill: votes mid-flight and the
  // liar's accumulating loss record survive only through the checkpoint.
  for (int i = 0; i < 500 && saves.value() == saves_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GT(saves.value(), saves_before) << "no autosave reached disk";
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto rejected_before_kill = server->stats().results_rejected_mismatch;
  server.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  server = std::make_unique<Server>(scfg);
  auto pid_ds2 = server->submit_problem(
      std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg));
  auto pid_ml2 =
      server->submit_problem(std::make_shared<dprml::DPRmlDataManager>(aln, pcfg));
  ASSERT_EQ(pid_ds2, pid_ds);
  ASSERT_EQ(pid_ml2, pid_ml);
  server->start();  // restore_on_start reads the autosaved checkpoint

  ASSERT_TRUE(server->wait_for_problem(pid_ds2, 120.0)) << "DSEARCH stalled";
  ASSERT_TRUE(server->wait_for_problem(pid_ml2, 120.0)) << "DPRml stalled";
  for (auto& t : donors) t.join();
  EXPECT_EQ(donor_failures.load(), 0);

  // Byte-identical despite a 20% lying fleet and a mid-run restart.
  EXPECT_EQ(server->final_result(pid_ds2), ref_ds);
  EXPECT_EQ(server->final_result(pid_ml2), ref_ml);

  // Corrupt payloads were outvoted, never merged, and the liar was caught.
  auto rejected_total =
      rejected_before_kill + server->stats().results_rejected_mismatch;
  EXPECT_GT(rejected_total, 0u);
  EXPECT_GE(count_events(tracer, "donor_blacklisted"), 1);
  bool liar_banned = false;
  for (const auto& line : tracer.lines()) {
    if (obs::parse_trace_line(line).ev == "donor_blacklisted" &&
        line.find("\"name\":\"liar\"") != std::string::npos) {
      liar_banned = true;
    }
  }
  EXPECT_TRUE(liar_banned);
  server->stop();
  std::remove(ckpt.c_str());
  dump_trace(tracer, "chaos_lying_donors_tcp_restart");
}

TEST(Chaos, LyingDonorsInSimulatedFleetMatchFaultFreeRuns) {
  // The simulator drives the same SchedulerCore: 2 of 10 machines lie on
  // every unit. Both applications' final payloads must be byte-identical
  // to fault-free local runs, with the liars outvoted and blacklisted.
  dsearch::register_algorithm();
  dprml::register_algorithm();

  Rng rng(223);
  auto queries = bio::make_queries(rng, 2, 60, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 30;
  spec.mean_length = 80;
  auto database = bio::make_database(rng, spec, queries);
  dsearch::DSearchConfig dcfg;
  dcfg.top_k = 8;
  auto tree = phylo::random_tree(rng, {6, 0.12, "t"});
  auto aln = phylo::simulate_alignment(rng, tree, phylo::SubstModel::jc69(),
                                       phylo::RateModel::uniform(), {200});
  dprml::DPRmlConfig pcfg;
  pcfg.model_spec = "JC69";
  pcfg.branch_tolerance = 1e-3;
  pcfg.eval_passes = 1;
  pcfg.refine_passes = 1;
  pcfg.use_eval_cache = false;

  std::vector<std::byte> ref_ds, ref_ml;
  {
    dsearch::DSearchDataManager dm(queries, database, dcfg);
    ref_ds = run_locally(dm, 2e4);
  }
  {
    dprml::DPRmlDataManager dm(aln, pcfg);
    ref_ml = run_locally(dm, 1.0);
  }

  obs::Tracer tracer;
  tracer.to_memory();
  sim::SimConfig simcfg;
  simcfg.reference_ops_per_sec = 1e6;
  simcfg.scheduler.lease_timeout = 1e5;
  simcfg.scheduler.bounds.min_ops = 1;
  simcfg.scheduler.replication_factor = 2;
  simcfg.scheduler.quorum = 2;
  simcfg.scheduler.blacklist_after = 2;
  simcfg.scheduler.spot_check_rate = 0.05;
  simcfg.policy_spec = "adaptive:0.02";  // many units -> many votes
  simcfg.no_work_retry_s = 0.25;
  simcfg.tracer = &tracer;

  auto fleet = sim::lab_fleet(10);
  fleet[0].corrupt_rate = 1.0;  // 20% of the fleet lies deterministically
  fleet[1].corrupt_rate = 1.0;
  sim::SimDriver sim(simcfg, fleet);
  auto pid_ds = sim.add_problem(
      std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg));
  auto pid_ml =
      sim.add_problem(std::make_shared<dprml::DPRmlDataManager>(aln, pcfg));
  auto outcome = sim.run();

  EXPECT_EQ(outcome.final_results.at(pid_ds), ref_ds);
  EXPECT_EQ(outcome.final_results.at(pid_ml), ref_ml);
  EXPECT_GT(outcome.scheduler.results_rejected_mismatch, 0u);
  EXPECT_GE(outcome.scheduler.donors_blacklisted, 1u);
  EXPECT_GE(count_events(tracer, "donor_blacklisted"), 1);
  EXPECT_GT(outcome.scheduler.vote_quorums, 0u);
  dump_trace(tracer, "chaos_lying_donors_sim");
}

TEST(Chaos, VoteTraceSchemaSharedAcrossServerAndSim) {
  // Pinned schema: the TCP server (wall clock) and the simulator (virtual
  // clock) must emit replication/vote events with exactly the same fields,
  // so one trace tool reads either. Both runs include a lying donor so
  // every event type actually fires.
  test::register_toy_algorithm();

  // Server half: two donors at first, so the liar is guaranteed to be the
  // second voter on every early unit; a third joins to break the ties.
  obs::Tracer server_tracer;
  server_tracer.to_memory();
  {
    ServerConfig cfg;
    cfg.scheduler.bounds.min_ops = 1000;
    cfg.scheduler.replication_factor = 2;
    cfg.scheduler.quorum = 2;
    cfg.scheduler.blacklist_after = 1;
    cfg.policy_spec = "fixed:1000";
    cfg.tick_interval_s = 0.02;
    cfg.no_work_retry_s = 0.02;
    cfg.tracer = &server_tracer;
    Server server(cfg);
    server.start();
    auto pid = server.submit_problem(std::make_shared<test::ToySumDataManager>(4000));

    auto donor = [&](const std::string& name, double corrupt_rate) {
      ClientConfig ccfg;
      ccfg.server_port = server.port();
      ccfg.name = name;
      ccfg.corrupt_rate = corrupt_rate;
      ccfg.corrupt_seed = 11;
      return std::thread([ccfg] { Client(ccfg).run(); });
    };
    auto liar = donor("liar", 1.0);
    auto h1 = donor("h1", 0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    auto h2 = donor("h2", 0.0);
    ASSERT_TRUE(server.wait_for_problem(pid, 60.0));
    liar.join();
    h1.join();
    h2.join();
    server.stop();
  }

  // Simulator half: three machines, one lying.
  obs::Tracer sim_tracer;
  sim_tracer.to_memory();
  {
    sim::SimConfig simcfg;
    simcfg.reference_ops_per_sec = 1e6;
    simcfg.scheduler.lease_timeout = 1e5;
    simcfg.scheduler.bounds.min_ops = 1;
    simcfg.scheduler.replication_factor = 2;
    simcfg.scheduler.quorum = 2;
    simcfg.scheduler.blacklist_after = 1;
    simcfg.policy_spec = "fixed:250000";
    simcfg.tracer = &sim_tracer;
    auto fleet = sim::lab_fleet(3);
    fleet[0].corrupt_rate = 1.0;
    sim::SimDriver sim(simcfg, fleet);
    sim.add_problem(std::make_shared<test::ToySumDataManager>(5000000));
    sim.run();
  }

  auto first_fields = [](const obs::Tracer& tracer, const char* ev) {
    std::vector<std::string> keys;
    for (const auto& line : tracer.lines()) {
      auto rec = obs::parse_trace_line(line);
      if (rec.ev != ev) continue;
      for (const auto& [k, v] : rec.fields) {
        if (k != "schema" && k != "t" && k != "ev") keys.push_back(k);
      }
      return keys;  // fields is an ordered map: keys come out sorted
    }
    return keys;
  };

  const std::map<std::string, std::vector<std::string>> pinned = {
      {"replica_issued", {"client", "cost_ops", "problem", "stage", "unit"}},
      {"unit_replicated", {"problem", "quorum", "replicas", "spot_check", "unit"}},
      {"vote_recorded", {"client", "digest", "problem", "unit", "votes"}},
      {"vote_quorum", {"digest", "problem", "unit", "votes"}},
      {"vote_mismatch", {"problem", "tie_breakers", "unit", "votes"}},
      {"result_rejected", {"name", "problem", "reason", "unit"}},
      {"donor_blacklisted", {"losses", "name", "score"}},
  };
  for (const auto& [ev, expected] : pinned) {
    auto server_keys = first_fields(server_tracer, ev.c_str());
    auto sim_keys = first_fields(sim_tracer, ev.c_str());
    ASSERT_FALSE(server_keys.empty()) << "server emitted no " << ev;
    ASSERT_FALSE(sim_keys.empty()) << "sim emitted no " << ev;
    EXPECT_EQ(server_keys, sim_keys) << ev;
    EXPECT_EQ(server_keys, expected) << ev;
  }
  dump_trace(server_tracer, "chaos_vote_schema_server");
  dump_trace(sim_tracer, "chaos_vote_schema_sim");
}

TEST(Chaos, WalReplayLosesNoAcceptedResultAcrossKill) {
  // A WAL'd server is killed with results accepted but NO recent
  // checkpoint (checkpointing is off entirely): everything the restarted
  // server knows comes from base-snapshot + record replay. Every result
  // acked before the kill must still be counted after it — the durability
  // window is zero, not checkpoint_interval_s.
  dsearch::register_algorithm();
  dprml::register_algorithm();

  Rng rng(311);
  auto queries = bio::make_queries(rng, 2, 60, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 40;
  spec.mean_length = 80;
  auto database = bio::make_database(rng, spec, queries);
  dsearch::DSearchConfig dcfg;
  dcfg.top_k = 8;
  auto tree = phylo::random_tree(rng, {7, 0.12, "t"});
  auto aln = phylo::simulate_alignment(rng, tree, phylo::SubstModel::jc69(),
                                       phylo::RateModel::uniform(), {250});
  dprml::DPRmlConfig pcfg;
  pcfg.model_spec = "JC69";
  pcfg.branch_tolerance = 1e-3;
  pcfg.eval_passes = 1;
  pcfg.refine_passes = 1;
  pcfg.use_eval_cache = false;

  std::vector<std::byte> ref_ds, ref_ml;
  {
    dsearch::DSearchDataManager dm(queries, database, dcfg);
    ref_ds = run_locally(dm, 2e5);
  }
  {
    dprml::DPRmlDataManager dm(aln, pcfg);
    ref_ml = run_locally(dm, 1.0);
  }

  std::string wal_dir = testing::TempDir() + "hdcs_chaos_wal";
  std::filesystem::remove_all(wal_dir);
  obs::Tracer tracer;
  tracer.to_memory();
  ServerConfig scfg;
  scfg.port = pick_port();
  scfg.scheduler.bounds.min_ops = 1;
  scfg.scheduler.lease_timeout = 1.5;
  scfg.scheduler.client_timeout = 1.5;
  scfg.policy_spec = "adaptive:0.02";
  scfg.tick_interval_s = 0.02;
  scfg.no_work_retry_s = 0.02;
  scfg.wal_dir = wal_dir;
  scfg.wal_segment_bytes = 16 << 10;  // force rotations under load
  scfg.tracer = &tracer;

  auto server = std::make_unique<Server>(scfg);
  server->start();
  auto pid_ds = server->submit_problem(
      std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg));
  auto pid_ml =
      server->submit_problem(std::make_shared<dprml::DPRmlDataManager>(aln, pcfg));

  constexpr int kDonors = 3;
  std::vector<std::thread> donors;
  std::atomic<int> donor_failures{0};
  for (int i = 0; i < kDonors; ++i) {
    donors.emplace_back([&, i] {
      ClientConfig ccfg;
      ccfg.server_port = scfg.port;
      ccfg.name = "durable-" + std::to_string(i);
      ccfg.max_connect_attempts = 0;
      try {
        Client(ccfg).run();
      } catch (const Error&) {
        donor_failures.fetch_add(1);
      }
    });
  }

  // Let real progress accrue, then kill. The accepted count read here is a
  // floor for what replay must reproduce: each of these results was WAL'd
  // and fsynced *before* its ack was sent.
  std::uint64_t accepted_before = 0;
  for (int i = 0; i < 1000 && accepted_before < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    accepted_before = server->stats().results_accepted;
  }
  ASSERT_GE(accepted_before, 5u) << "no progress before the kill";
  server.reset();

  server = std::make_unique<Server>(scfg);
  auto pid_ds2 = server->submit_problem(
      std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg));
  auto pid_ml2 =
      server->submit_problem(std::make_shared<dprml::DPRmlDataManager>(aln, pcfg));
  ASSERT_EQ(pid_ds2, pid_ds);
  ASSERT_EQ(pid_ml2, pid_ml);
  server->start();  // recovers from the WAL: snapshot + replay

  // Replay restored at least everything acked before the kill, and the
  // revived server entered a new term so stale pre-kill leases are fenced.
  EXPECT_GE(server->stats().results_accepted, accepted_before);
  EXPECT_GE(server->epoch(), 2u);
  EXPECT_GE(count_events(tracer, "wal_recovered"), 1);

  ASSERT_TRUE(server->wait_for_problem(pid_ds2, 120.0)) << "DSEARCH stalled";
  ASSERT_TRUE(server->wait_for_problem(pid_ml2, 120.0)) << "DPRml stalled";
  for (auto& t : donors) t.join();
  EXPECT_EQ(donor_failures.load(), 0);

  EXPECT_EQ(server->final_result(pid_ds2), ref_ds);
  EXPECT_EQ(server->final_result(pid_ml2), ref_ml);
  server->stop();
  dump_trace(tracer, "chaos_wal_replay_tcp");
  std::filesystem::remove_all(wal_dir);
}

TEST(Chaos, WalEnospcMidRunDegradesThenRestoresByteIdentical) {
  // The disk fills mid-run under a WAL'd server in kContinue mode: every
  // write into the WAL directory hits injected ENOSPC. The server must
  // degrade (epoch bump + durability_degraded on the timeline), keep
  // scheduling without crashing or hanging, then re-arm once space returns
  // — and the merged answers must be byte-identical to fault-free runs.
  dsearch::register_algorithm();
  dprml::register_algorithm();

  Rng rng(613);
  auto queries = bio::make_queries(rng, 2, 60, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 40;
  spec.mean_length = 80;
  auto database = bio::make_database(rng, spec, queries);
  dsearch::DSearchConfig dcfg;
  dcfg.top_k = 8;
  auto tree = phylo::random_tree(rng, {7, 0.12, "t"});
  auto aln = phylo::simulate_alignment(rng, tree, phylo::SubstModel::jc69(),
                                       phylo::RateModel::uniform(), {250});
  dprml::DPRmlConfig pcfg;
  pcfg.model_spec = "JC69";
  pcfg.branch_tolerance = 1e-3;
  pcfg.eval_passes = 1;
  pcfg.refine_passes = 1;
  pcfg.use_eval_cache = false;

  std::vector<std::byte> ref_ds, ref_ml;
  {
    dsearch::DSearchDataManager dm(queries, database, dcfg);
    ref_ds = run_locally(dm, 2e5);
  }
  {
    dprml::DPRmlDataManager dm(aln, pcfg);
    ref_ml = run_locally(dm, 1.0);
  }

  std::string wal_dir = testing::TempDir() + "hdcs_enospc_wal";
  std::filesystem::remove_all(wal_dir);
  obs::Tracer tracer;
  tracer.to_memory();
  ServerConfig scfg;
  scfg.port = pick_port();
  scfg.scheduler.bounds.min_ops = 1;
  scfg.scheduler.lease_timeout = 1.5;
  scfg.scheduler.client_timeout = 1.5;
  scfg.policy_spec = "adaptive:0.02";
  scfg.tick_interval_s = 0.02;
  scfg.no_work_retry_s = 0.02;
  scfg.wal_dir = wal_dir;
  scfg.wal_segment_bytes = 16 << 10;
  scfg.durability_mode = DurabilityMode::kContinue;
  scfg.rearm_retry_s = 0.1;  // fast re-arm probes for the test
  scfg.tracer = &tracer;

  auto server = std::make_unique<Server>(scfg);
  server->start();
  auto pid_ds = server->submit_problem(
      std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg));
  auto pid_ml =
      server->submit_problem(std::make_shared<dprml::DPRmlDataManager>(aln, pcfg));
  EXPECT_EQ(server->durability(), Server::Durability::kDurable);

  constexpr int kDonors = 3;
  std::vector<std::thread> donors;
  std::atomic<int> donor_failures{0};
  for (int i = 0; i < kDonors; ++i) {
    donors.emplace_back([&, i] {
      ClientConfig ccfg;
      ccfg.server_port = scfg.port;
      ccfg.name = "enospc-" + std::to_string(i);
      ccfg.max_connect_attempts = 0;
      ccfg.backoff_max_s = 0.2;
      try {
        Client(ccfg).run();
      } catch (const Error&) {
        donor_failures.fetch_add(1);
      }
    });
  }

  // Real durable progress first, so the degrade happens mid-run.
  std::uint64_t accepted_before = 0;
  for (int i = 0; i < 1000 && accepted_before < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    accepted_before = server->stats().results_accepted;
  }
  ASSERT_GE(accepted_before, 5u) << "no progress before the disk filled";
  std::uint64_t epoch_before = server->epoch();

  {
    // The disk fills: a 1-byte capacity means the very next WAL append (or
    // re-arm attempt) gets ENOSPC. Only the WAL directory is affected.
    vfs::StorageFaultSpec full_disk;
    full_disk.seed = 31;
    full_disk.disk_capacity_bytes = 1;
    full_disk.path_filter = "hdcs_enospc_wal";
    vfs::ScopedStorageFaultPlan scoped(full_disk);

    // The next accepted result's append/fsync fails -> degraded. The server
    // must neither crash nor stop scheduling.
    bool degraded = false;
    for (int i = 0; i < 1000 && !degraded; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      degraded = server->durability() == Server::Durability::kDegraded;
    }
    ASSERT_TRUE(degraded) << "server never degraded on ENOSPC";
    EXPECT_FALSE(server->storage_failed());  // kContinue keeps accepting
    EXPECT_GE(server->epoch(), epoch_before + 2) << "degrade must fence";
    EXPECT_NE(server->stats_json().find("\"durability\":\"degraded\""),
              std::string::npos);
    // Stay degraded for a while: re-arm probes keep failing on the full
    // disk and must not crash or flap the state.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    EXPECT_EQ(server->durability(), Server::Durability::kDegraded);
  }

  // Space is back: the watchdog's next probe rebuilds the WAL and restores.
  bool restored = false;
  for (int i = 0; i < 1000 && !restored; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    restored = server->durability() == Server::Durability::kDurable;
  }
  EXPECT_TRUE(restored) << "durability never re-armed after space returned";

  ASSERT_TRUE(server->wait_for_problem(pid_ds, 120.0)) << "DSEARCH stalled";
  ASSERT_TRUE(server->wait_for_problem(pid_ml, 120.0)) << "DPRml stalled";
  for (auto& t : donors) t.join();
  EXPECT_EQ(donor_failures.load(), 0);

  // Byte-identical answers: the full disk cost a durability window, never
  // a result.
  EXPECT_EQ(server->final_result(pid_ds), ref_ds);
  EXPECT_EQ(server->final_result(pid_ml), ref_ml);
  EXPECT_GE(count_events(tracer, "durability_degraded"), 1);
  EXPECT_GE(count_events(tracer, "durability_restored"), 1);
  server->stop();
  dump_trace(tracer, "chaos_wal_enospc_tcp");
  std::filesystem::remove_all(wal_dir);
}

TEST(Chaos, FailStopShedsDonorsAndNeverAcksNonDurably) {
  // kFailStop: the first storage fault freezes intake. Donors holding
  // finished units get retryable NACKs (never a silent non-durable ack),
  // the server reports storage_failed() so the embedding process can
  // checkpoint and exit non-zero, and nothing crashes or hangs.
  test::register_toy_algorithm();

  std::string wal_dir = testing::TempDir() + "hdcs_failstop_wal";
  std::filesystem::remove_all(wal_dir);
  obs::Tracer tracer;
  tracer.to_memory();
  ServerConfig scfg;
  scfg.scheduler.bounds.min_ops = 1000;
  scfg.policy_spec = "fixed:1000000";  // many small units
  scfg.tick_interval_s = 0.02;
  scfg.no_work_retry_s = 0.02;
  scfg.wal_dir = wal_dir;
  scfg.durability_mode = DurabilityMode::kFailStop;
  scfg.retry_later_s = 0.05;  // fast donor retries for the test
  scfg.tracer = &tracer;
  Server server(scfg);
  server.start();
  server.submit_problem(std::make_shared<test::ToySumDataManager>(100000000));

  auto& client_retries = obs::Registry::global().counter("client.retry_laters");
  std::uint64_t retries_before = client_retries.value();

  std::atomic<int> donor_failures{0};
  std::thread donor([&] {
    ClientConfig ccfg;
    ccfg.server_port = server.port();
    ccfg.name = "failstop-donor";
    ccfg.max_connect_attempts = 2;
    ccfg.backoff_max_s = 0.1;
    try {
      Client(ccfg).run();
    } catch (const Error&) {
      donor_failures.fetch_add(1);  // expected once the server is stopped
    }
  });

  std::uint64_t accepted_before = 0;
  for (int i = 0; i < 1000 && accepted_before < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    accepted_before = server.stats().results_accepted;
  }
  ASSERT_GE(accepted_before, 3u) << "no progress before the fault";

  // Every WAL fsync now fails. The next result submission trips fail-stop.
  vfs::StorageFaultSpec broken;
  broken.seed = 5;
  broken.sync_error_prob = 1.0;
  broken.path_filter = "hdcs_failstop_wal";
  vfs::ScopedStorageFaultPlan scoped(broken);

  bool failed = false;
  for (int i = 0; i < 1000 && !failed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    failed = server.storage_failed();
  }
  ASSERT_TRUE(failed) << "fail-stop never tripped";
  EXPECT_EQ(server.durability(), Server::Durability::kDegraded);

  // The donor's in-flight submission was NACKed retryable and it is now
  // riding the retry loop — no new results are merged, none are lost.
  std::uint64_t accepted_at_failure = server.stats().results_accepted;
  bool donor_retried = false;
  for (int i = 0; i < 1000 && !donor_retried; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    donor_retried = client_retries.value() > retries_before;
  }
  EXPECT_TRUE(donor_retried) << "donor never saw a retryable NACK";
  EXPECT_EQ(server.stats().results_accepted, accepted_at_failure);
  EXPECT_GE(count_events(tracer, "durability_degraded"), 1);
  EXPECT_GT(obs::Registry::global().counter("server.retry_laters").value(), 0u);

  // The embedding process reacts like hdcs_submit: stop and exit non-zero.
  // Stopping while a donor is mid-retry must not deadlock.
  server.stop();
  donor.join();
  dump_trace(tracer, "chaos_wal_failstop_tcp");
  std::filesystem::remove_all(wal_dir);
}

TEST(Chaos, StandbyPromotesAndFinishesAfterPrimaryKill) {
  // Full failover over real TCP: a WAL'd primary streams its state to a
  // hot standby; donors carry both endpoints. Mid-run the primary is
  // killed — the standby promotes (epoch bump), the donors rotate to it,
  // and both workloads finish byte-identical. Results computed under the
  // deposed term are fenced by epoch, never merged twice.
  dsearch::register_algorithm();
  dprml::register_algorithm();

  Rng rng(419);
  auto queries = bio::make_queries(rng, 2, 60, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 40;
  spec.mean_length = 80;
  auto database = bio::make_database(rng, spec, queries);
  dsearch::DSearchConfig dcfg;
  dcfg.top_k = 8;
  auto tree = phylo::random_tree(rng, {7, 0.12, "t"});
  auto aln = phylo::simulate_alignment(rng, tree, phylo::SubstModel::jc69(),
                                       phylo::RateModel::uniform(), {250});
  dprml::DPRmlConfig pcfg;
  pcfg.model_spec = "JC69";
  pcfg.branch_tolerance = 1e-3;
  pcfg.eval_passes = 1;
  pcfg.refine_passes = 1;
  pcfg.use_eval_cache = false;

  std::vector<std::byte> ref_ds, ref_ml;
  {
    dsearch::DSearchDataManager dm(queries, database, dcfg);
    ref_ds = run_locally(dm, 2e5);
  }
  {
    dprml::DPRmlDataManager dm(aln, pcfg);
    ref_ml = run_locally(dm, 1.0);
  }

  std::string wal_primary = testing::TempDir() + "hdcs_failover_primary";
  std::string wal_standby = testing::TempDir() + "hdcs_failover_standby";
  std::filesystem::remove_all(wal_primary);
  std::filesystem::remove_all(wal_standby);

  obs::Tracer tracer;  // shared: primary + standby write one timeline
  tracer.to_memory();
  ServerConfig pcfg_srv;
  pcfg_srv.port = pick_port();
  pcfg_srv.scheduler.bounds.min_ops = 1;
  pcfg_srv.scheduler.lease_timeout = 1.5;
  pcfg_srv.scheduler.client_timeout = 1.5;
  pcfg_srv.policy_spec = "adaptive:0.02";
  pcfg_srv.tick_interval_s = 0.02;
  pcfg_srv.no_work_retry_s = 0.02;
  pcfg_srv.wal_dir = wal_primary;
  pcfg_srv.tracer = &tracer;

  ServerConfig scfg_srv = pcfg_srv;
  scfg_srv.port = pick_port();
  scfg_srv.wal_dir = wal_standby;
  scfg_srv.primary_host = "127.0.0.1";
  scfg_srv.primary_port = pcfg_srv.port;
  scfg_srv.failover_timeout_s = 0.4;
  scfg_srv.standby_name = "standby-1";

  auto primary = std::make_unique<Server>(pcfg_srv);
  auto pid_ds = primary->submit_problem(
      std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg));
  auto pid_ml = primary->submit_problem(
      std::make_shared<dprml::DPRmlDataManager>(aln, pcfg));
  primary->start();

  // The standby registers the same problems (same order -> same ids), then
  // syncs the primary's exact snapshot and tails its record stream.
  Server standby(scfg_srv);
  auto pid_ds_s = standby.submit_problem(
      std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg));
  auto pid_ml_s = standby.submit_problem(
      std::make_shared<dprml::DPRmlDataManager>(aln, pcfg));
  ASSERT_EQ(pid_ds_s, pid_ds);
  ASSERT_EQ(pid_ml_s, pid_ml);
  standby.start();
  ASSERT_TRUE(standby.is_standby());

  for (int i = 0; i < 500 && !standby.standby_synced(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(standby.standby_synced()) << "standby never synced";

  // Donors know both endpoints; they stick with the one that answers.
  constexpr int kDonors = 3;
  std::vector<std::thread> donors;
  std::atomic<int> donor_failures{0};
  for (int i = 0; i < kDonors; ++i) {
    donors.emplace_back([&, i] {
      ClientConfig ccfg;
      ccfg.servers = {{"127.0.0.1", pcfg_srv.port}, {"127.0.0.1", scfg_srv.port}};
      ccfg.name = "ha-" + std::to_string(i);
      ccfg.max_connect_attempts = 0;
      ccfg.backoff_max_s = 0.2;  // keep the promotion gap cheap
      try {
        Client(ccfg).run();
      } catch (const Error&) {
        donor_failures.fetch_add(1);
      }
    });
  }

  // Progress on the primary, then kill it mid-run. Donors are mid-lease.
  std::uint64_t accepted_before = 0;
  for (int i = 0; i < 1000 && accepted_before < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    accepted_before = primary->stats().results_accepted;
  }
  ASSERT_GE(accepted_before, 5u) << "no progress before the kill";
  primary.reset();

  // The stream goes silent; after failover_timeout_s the standby promotes.
  for (int i = 0; i < 1000 && standby.is_standby(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(standby.is_standby()) << "standby never promoted";
  EXPECT_GE(standby.epoch(), 2u);  // a new term fences deposed-primary work

  ASSERT_TRUE(standby.wait_for_problem(pid_ds_s, 120.0)) << "DSEARCH stalled";
  ASSERT_TRUE(standby.wait_for_problem(pid_ml_s, 120.0)) << "DPRml stalled";
  for (auto& t : donors) t.join();
  EXPECT_EQ(donor_failures.load(), 0);

  // The replicated state picked up where the primary left off: everything
  // the primary acked was already on the standby, and the merged answers
  // are byte-identical to fault-free local runs.
  EXPECT_GE(standby.stats().results_accepted, accepted_before);
  EXPECT_EQ(standby.final_result(pid_ds_s), ref_ds);
  EXPECT_EQ(standby.final_result(pid_ml_s), ref_ml);

  // The failover left its audit trail on the shared timeline.
  EXPECT_GE(count_events(tracer, "replica_attached"), 1);
  EXPECT_GE(count_events(tracer, "standby_synced"), 1);
  EXPECT_GE(count_events(tracer, "failover_promoted"), 1);
  standby.stop();
  dump_trace(tracer, "chaos_failover_tcp");
  std::filesystem::remove_all(wal_primary);
  std::filesystem::remove_all(wal_standby);
}

TEST(Chaos, SimulatedFailoverMatchesFaultFreeRun) {
  // Virtual-time mirror: the same two workloads with the primary killed at
  // t=5s of simulated time. The promoted standby (epoch 2) finishes both;
  // answers are byte-identical to a run with no failover, and results
  // computed under the deposed term are fenced, never merged.
  dsearch::register_algorithm();
  dprml::register_algorithm();

  Rng rng(523);
  auto queries = bio::make_queries(rng, 2, 60, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 30;
  spec.mean_length = 80;
  auto database = bio::make_database(rng, spec, queries);
  dsearch::DSearchConfig dcfg;
  dcfg.top_k = 8;
  auto tree = phylo::random_tree(rng, {6, 0.12, "t"});
  auto aln = phylo::simulate_alignment(rng, tree, phylo::SubstModel::jc69(),
                                       phylo::RateModel::uniform(), {200});
  dprml::DPRmlConfig pcfg;
  pcfg.model_spec = "JC69";
  pcfg.branch_tolerance = 1e-3;
  pcfg.eval_passes = 1;
  pcfg.refine_passes = 1;
  pcfg.use_eval_cache = false;

  auto run_sim = [&](double kill_time, obs::Tracer* tracer) {
    sim::SimConfig simcfg;
    simcfg.reference_ops_per_sec = 1e6;
    simcfg.scheduler.lease_timeout = 30.0;
    simcfg.scheduler.bounds.min_ops = 1;
    simcfg.policy_spec = "adaptive:0.02";
    simcfg.no_work_retry_s = 0.25;
    simcfg.tick_interval_s = 0.5;
    simcfg.primary_kill_time_s = kill_time;
    simcfg.failover_delay_s = 0.5;
    simcfg.tracer = tracer;
    sim::SimDriver sim(simcfg, sim::lab_fleet(8));
    auto pid_ds = sim.add_problem(
        std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg));
    auto pid_ml =
        sim.add_problem(std::make_shared<dprml::DPRmlDataManager>(aln, pcfg));
    auto outcome = sim.run();
    return std::make_tuple(outcome, pid_ds, pid_ml);
  };

  auto [clean, pid_ds, pid_ml] = run_sim(-1, nullptr);
  EXPECT_EQ(clean.failovers, 0u);

  obs::Tracer tracer;
  tracer.to_memory();
  auto [chaotic, pid_ds2, pid_ml2] = run_sim(5.0, &tracer);
  EXPECT_EQ(chaotic.failovers, 1u);
  EXPECT_GT(chaotic.makespan_s, 5.0) << "kill fired after completion";

  // Same answers with and without the failover.
  EXPECT_EQ(chaotic.final_results.at(pid_ds2), clean.final_results.at(pid_ds));
  EXPECT_EQ(chaotic.final_results.at(pid_ml2), clean.final_results.at(pid_ml));

  // In-flight units finished under the deposed term were fenced by epoch
  // (machines compute through the outage and submit after promotion).
  EXPECT_GT(chaotic.scheduler.results_rejected_stale_epoch, 0u);
  EXPECT_GE(count_events(tracer, "standby_synced"), 1);
  EXPECT_GE(count_events(tracer, "failover_promoted"), 1);
  dump_trace(tracer, "chaos_failover_sim");
}

TEST(Chaos, PoisonUnitQuarantinedOverTcp) {
  test::register_toy_algorithm();
  ServerConfig scfg;
  scfg.scheduler.bounds.min_ops = 1000;
  scfg.scheduler.lease_timeout = 0.15;
  scfg.scheduler.client_timeout = 0.15;
  scfg.scheduler.max_attempts_per_unit = 2;
  scfg.policy_spec = "fixed:1000000000";  // the whole problem in one unit
  scfg.tick_interval_s = 0.02;
  scfg.no_work_retry_s = 0.02;
  Server server(scfg);
  server.start();
  auto pid = server.submit_problem(
      std::make_shared<test::ToySumDataManager>(100000));

  // The "poison" unit kills every donor that takes it: two crashers burn
  // the attempt cap.
  for (int attempt = 0; attempt < 2; ++attempt) {
    ClientConfig ccfg;
    ccfg.server_port = server.port();
    ccfg.name = "victim-" + std::to_string(attempt);
    ccfg.crash_after_units = 1;  // take the unit, vanish before submitting
    ccfg.send_heartbeats = false;
    Client(ccfg).run();
    // Wait for the client timeout to reap the crashed donor (and fail its
    // lease) before the next victim asks for work.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  }

  // Quarantined: a healthy donor gets nothing, the problem stays open, and
  // the stats snapshot (MSG_STATS / hdcs_top) reports the quarantine.
  ClientConfig ccfg;
  ccfg.server_port = server.port();
  ccfg.name = "healthy";
  ccfg.max_idle_polls = 3;
  auto stats = Client(ccfg).run();
  EXPECT_EQ(stats.units_processed, 0u);
  EXPECT_FALSE(server.wait_for_problem(pid, 0.2));
  auto json = server.stats_json();
  EXPECT_NE(json.find("\"units_quarantined\":1"), std::string::npos) << json;
  server.stop();
}

}  // namespace
}  // namespace hdcs::dist
