// The two paper applications running through the discrete-event simulator:
// results must be bit-identical to serial runs, and the Fig-1/Fig-2 shape
// phenomena must appear in miniature.

#include <gtest/gtest.h>

#include "bio/seqgen.hpp"
#include "dprml/dprml.hpp"
#include "dsearch/dsearch.hpp"
#include "phylo/simulate.hpp"
#include "sim/sim_driver.hpp"
#include "util/rng.hpp"

namespace hdcs {
namespace {

sim::SimConfig sim_config() {
  sim::SimConfig cfg;
  cfg.reference_ops_per_sec = 1e6;
  cfg.scheduler.lease_timeout = 1e5;
  cfg.scheduler.bounds.min_ops = 1;
  cfg.policy_spec = "adaptive:5";
  cfg.no_work_retry_s = 0.25;
  return cfg;
}

struct DSearchCase {
  std::vector<bio::Sequence> queries;
  std::vector<bio::Sequence> database;
  dsearch::DSearchConfig config;
};

DSearchCase dsearch_case(std::uint64_t seed) {
  Rng rng(seed);
  DSearchCase c;
  c.queries = bio::make_queries(rng, 2, 60, bio::Alphabet::kProtein);
  bio::DatabaseSpec spec;
  spec.num_sequences = 40;
  spec.mean_length = 80;
  spec.planted_homologs_per_query = 3;
  c.database = bio::make_database(rng, spec, c.queries);
  c.config.top_k = 8;
  return c;
}

TEST(DSearchSim, SimulatedFleetMatchesSerial) {
  dsearch::register_algorithm();
  auto c = dsearch_case(101);
  auto serial = dsearch::search_serial(c.queries, c.database, c.config);

  sim::SimDriver driver(sim_config(), sim::lab_fleet(6));
  auto dm = std::make_shared<dsearch::DSearchDataManager>(c.queries, c.database,
                                                          c.config);
  driver.add_problem(dm);
  auto out = driver.run();
  EXPECT_EQ(dm->result(), serial);
  EXPECT_GT(out.scheduler.units_issued, 1u);
}

TEST(DSearchSim, HeterogeneousFleetStillExact) {
  dsearch::register_algorithm();
  auto c = dsearch_case(103);
  auto serial = dsearch::search_serial(c.queries, c.database, c.config);

  sim::SimDriver driver(sim_config(), sim::heterogeneous_fleet(8));
  auto dm = std::make_shared<dsearch::DSearchDataManager>(c.queries, c.database,
                                                          c.config);
  driver.add_problem(dm);
  driver.run();
  EXPECT_EQ(dm->result(), serial);
}

TEST(DSearchSim, SpeedupGrowsWithFleet) {
  dsearch::register_algorithm();
  auto c = dsearch_case(107);
  auto makespan = [&](int machines) {
    sim::SimDriver driver(sim_config(), sim::lab_fleet(machines));
    driver.add_problem(std::make_shared<dsearch::DSearchDataManager>(
        c.queries, c.database, c.config));
    return driver.run().makespan_s;
  };
  double t1 = makespan(1);
  double t4 = makespan(4);
  EXPECT_GT(t1 / t4, 2.0) << "4 machines should be at least 2x faster";
}

phylo::Alignment dprml_case(std::uint64_t seed, int taxa, std::size_t sites) {
  Rng rng(seed);
  auto tree = phylo::random_tree(rng, {taxa, 0.12, "t"});
  auto model = phylo::SubstModel::jc69();
  return phylo::simulate_alignment(rng, tree, model, phylo::RateModel::uniform(),
                                   {sites});
}

dprml::DPRmlConfig dprml_config() {
  dprml::DPRmlConfig c;
  c.model_spec = "JC69";
  c.branch_tolerance = 1e-3;
  c.eval_passes = 1;
  c.refine_passes = 1;
  c.use_eval_cache = false;
  return c;
}

TEST(DPRmlSim, SimulatedFleetMatchesSerial) {
  dprml::register_algorithm();
  auto aln = dprml_case(109, 6, 250);
  auto cfg = dprml_config();
  auto serial = dprml::build_tree_serial(aln, cfg);

  sim::SimDriver driver(sim_config(), sim::lab_fleet(5));
  auto dm = std::make_shared<dprml::DPRmlDataManager>(aln, cfg);
  driver.add_problem(dm);
  driver.run();
  auto result = dm->result();
  EXPECT_EQ(result.newick, serial.newick);
  EXPECT_DOUBLE_EQ(result.log_likelihood, serial.log_likelihood);
}

TEST(DPRmlSim, SixInstancesBeatOneOnUtilization) {
  // Fig. 2's premise in miniature: staged DPRml leaves donors idle; running
  // several instances fills the gaps.
  dprml::register_algorithm();
  auto aln = dprml_case(113, 7, 200);
  auto cfg = dprml_config();

  auto utilization = [&](int instances) {
    sim::SimDriver driver(sim_config(), sim::lab_fleet(6));
    for (int i = 0; i < instances; ++i) {
      auto icfg = cfg;
      icfg.order_seed = static_cast<std::uint64_t>(i + 1);
      driver.add_problem(std::make_shared<dprml::DPRmlDataManager>(aln, icfg));
    }
    return driver.run().mean_utilization();
  };
  double u1 = utilization(1);
  double u3 = utilization(3);
  EXPECT_GT(u3, u1);
}

TEST(DPRmlSim, ChurnDoesNotChangeTheTree) {
  dprml::register_algorithm();
  auto aln = dprml_case(127, 6, 200);
  auto cfg = dprml_config();
  auto serial = dprml::build_tree_serial(aln, cfg);

  auto sim_cfg = sim_config();
  sim_cfg.scheduler.lease_timeout = 30.0;
  auto fleet = sim::lab_fleet(4);
  fleet[0].leave_time = 5.0;  // crash mid-run
  fleet[1].leave_time = 20.0;
  fleet[1].crash_on_leave = false;
  sim::SimDriver driver(sim_cfg, fleet);
  auto dm = std::make_shared<dprml::DPRmlDataManager>(aln, cfg);
  driver.add_problem(dm);
  driver.run();
  EXPECT_EQ(dm->result().newick, serial.newick);
}

TEST(MixedSim, BothApplicationsConcurrently) {
  // The deployed system ran bioinformatics workloads side by side; check
  // a DSEARCH problem and a DPRml problem share one fleet correctly.
  dsearch::register_algorithm();
  dprml::register_algorithm();
  auto dc = dsearch_case(131);
  auto serial_search = dsearch::search_serial(dc.queries, dc.database, dc.config);
  auto aln = dprml_case(137, 5, 200);
  auto pcfg = dprml_config();
  auto serial_tree = dprml::build_tree_serial(aln, pcfg);

  sim::SimDriver driver(sim_config(), sim::lab_fleet(8));
  auto search_dm = std::make_shared<dsearch::DSearchDataManager>(
      dc.queries, dc.database, dc.config);
  auto tree_dm = std::make_shared<dprml::DPRmlDataManager>(aln, pcfg);
  driver.add_problem(search_dm);
  driver.add_problem(tree_dm);
  auto out = driver.run();

  EXPECT_EQ(search_dm->result(), serial_search);
  EXPECT_EQ(tree_dm->result().newick, serial_tree.newick);
  EXPECT_EQ(out.completion_time_s.size(), 2u);
}

}  // namespace
}  // namespace hdcs
