#include "dprml/dprml.hpp"

#include <gtest/gtest.h>

#include "dist/local_runner.hpp"
#include "dist/scheduler_core.hpp"
#include "phylo/distance.hpp"
#include "phylo/simulate.hpp"
#include "util/error.hpp"

namespace hdcs::dprml {
namespace {

/// A small simulated dataset with strong phylogenetic signal.
phylo::Alignment make_dataset(std::uint64_t seed, int taxa, std::size_t sites,
                              phylo::Tree* true_tree_out = nullptr) {
  Rng rng(seed);
  auto tree = phylo::random_tree(rng, {taxa, 0.12, "t"});
  auto model = phylo::SubstModel::jc69();
  auto aln = phylo::simulate_alignment(rng, tree, model,
                                       phylo::RateModel::uniform(), {sites});
  if (true_tree_out) *true_tree_out = tree;
  return aln;
}

DPRmlConfig fast_config() {
  DPRmlConfig c;
  c.model_spec = "JC69";  // 1 rate category keeps tests quick
  c.branch_tolerance = 1e-3;
  c.eval_passes = 1;
  c.refine_passes = 1;
  c.use_eval_cache = false;  // tests control caching explicitly
  return c;
}

TEST(DPRmlConfig, ParsesAndValidates) {
  auto cfg = Config::parse(
      "model = HKY85+G4\n"
      "kappa = 3.5\n"
      "alpha = 0.8\n"
      "order_seed = 7\n"
      "refine_passes = 3\n");
  auto c = DPRmlConfig::from_config(cfg);
  EXPECT_EQ(c.model_spec, "HKY85+G4");
  EXPECT_DOUBLE_EQ(c.kappa, 3.5);
  EXPECT_EQ(c.order_seed, 7u);
  EXPECT_EQ(c.refine_passes, 3);

  EXPECT_THROW(DPRmlConfig::from_config(Config::parse("model = WAG\n")), InputError);
  EXPECT_THROW(DPRmlConfig::from_config(Config::parse("pendant_branch = 0\n")),
               InputError);
  EXPECT_THROW(DPRmlConfig::from_config(Config::parse("eval_passes = 0\n")),
               InputError);
}

TEST(DPRmlWire, ResultRoundTrip) {
  DPRmlResult r;
  r.newick = "((a:1,b:1):1,c:1);";
  r.log_likelihood = -123.5;
  r.stage_log_likelihoods = {-200.0, -150.0, -123.5};
  ByteWriter w;
  encode_dprml_result(w, r);
  ByteReader reader(w.data());
  auto decoded = decode_dprml_result(reader);
  EXPECT_EQ(decoded.newick, r.newick);
  EXPECT_DOUBLE_EQ(decoded.log_likelihood, r.log_likelihood);
  EXPECT_EQ(decoded.stage_log_likelihoods, r.stage_log_likelihoods);
}

TEST(DPRmlSerial, RecoversGeneratingTopology) {
  phylo::Tree true_tree;
  auto aln = make_dataset(41, 8, 800, &true_tree);
  auto result = build_tree_serial(aln, fast_config());
  auto built = phylo::Tree::parse_newick(result.newick);
  EXPECT_EQ(built.leaf_count(), 8);
  // Strong signal: stepwise ML should land on (or within one NNI of) the truth.
  EXPECT_LE(phylo::rf_distance(built, true_tree), 2);
  EXPECT_LT(result.log_likelihood, 0.0);
}

TEST(DPRmlSerial, StageLogLikelihoodsTrackInsertions) {
  auto aln = make_dataset(43, 6, 300);
  auto result = build_tree_serial(aln, fast_config());
  // One init + one refine per inserted taxon (taxa 4..6 => 3 refines).
  EXPECT_EQ(result.stage_log_likelihoods.size(), 1u + 3u);
  // Log-likelihood decreases as more taxa (more data) join — just check
  // the trace is finite and the last entry matches the result.
  EXPECT_DOUBLE_EQ(result.stage_log_likelihoods.back(), result.log_likelihood);
}

TEST(DPRmlSerial, OrderSeedChangesInsertionOrderNotQuality) {
  auto aln = make_dataset(47, 7, 600);
  auto c1 = fast_config();
  auto c2 = fast_config();
  c2.order_seed = 12345;
  auto r1 = build_tree_serial(aln, c1);
  auto r2 = build_tree_serial(aln, c2);
  // Different addition orders may produce different trees, but both must
  // be sensible (finite logL, right taxa).
  auto t1 = phylo::Tree::parse_newick(r1.newick);
  auto t2 = phylo::Tree::parse_newick(r2.newick);
  auto n1 = t1.leaf_names();
  auto n2 = t2.leaf_names();
  std::sort(n1.begin(), n1.end());
  std::sort(n2.begin(), n2.end());
  EXPECT_EQ(n1, n2);
}

TEST(DPRmlSerial, BeatsOrMatchesNeighborJoining) {
  // ML stepwise insertion should fit at least as well as the NJ topology
  // once both have optimized branch lengths (the paper's motivation for
  // ML over distance heuristics).
  phylo::Tree true_tree;
  auto aln = make_dataset(53, 8, 500, &true_tree);
  auto result = build_tree_serial(aln, fast_config());

  auto nj = phylo::nj_tree(aln);
  auto model = std::make_shared<phylo::SubstModel>(phylo::SubstModel::jc69());
  phylo::LikelihoodEngine engine(phylo::compress(aln), model,
                                 phylo::RateModel::uniform());
  double nj_logl = engine.optimize_all_branches(nj, 2, 1e-4);
  EXPECT_GE(result.log_likelihood, nj_logl - 1.0);
}

TEST(DPRmlDataManager, RejectsTinyAlignments) {
  phylo::Alignment aln;
  aln.names = {"a", "b", "c"};
  aln.rows = {"ACGT", "ACGT", "ACGT"};
  EXPECT_THROW(DPRmlDataManager(aln, fast_config()), InputError);
}

TEST(DPRmlDataManager, StagedUnitFlow) {
  auto aln = make_dataset(59, 5, 200);
  register_algorithm();
  DPRmlDataManager dm(aln, fast_config());
  auto data = dm.problem_data();
  DPRmlAlgorithm algo;
  algo.initialize(data);

  dist::SizeHint small{1.0};  // force one-edge eval batches

  // Init unit first; nothing else until its result lands.
  auto init = dm.next_unit(small);
  ASSERT_TRUE(init);
  EXPECT_FALSE(dm.next_unit(small).has_value());

  auto submit = [&](const dist::WorkUnit& u) {
    dist::ResultUnit r;
    r.problem_id = u.problem_id;
    r.unit_id = u.unit_id;
    r.stage = u.stage;
    r.payload = algo.process(u);
    dm.accept_result(r);
  };
  submit(*init);

  // Eval phase for taxon 4: 3 edges -> with tiny hints, 3 separate units.
  std::vector<dist::WorkUnit> evals;
  while (auto u = dm.next_unit(small)) evals.push_back(*u);
  EXPECT_EQ(evals.size(), 3u);
  // Barrier until all results arrive.
  submit(evals[0]);
  EXPECT_FALSE(dm.next_unit(small).has_value());
  submit(evals[1]);
  submit(evals[2]);

  // Mid-run insertion applies the worker-optimised branch lengths and goes
  // straight to the next taxon's eval phase (no refine barrier):
  // 2*4-3 = 5 edges.
  std::vector<dist::WorkUnit> evals2;
  while (auto u = dm.next_unit(small)) evals2.push_back(*u);
  EXPECT_EQ(evals2.size(), 5u);
  for (auto& u : evals2) submit(u);

  // The LAST insertion triggers the final full smoothing pass.
  auto refine = dm.next_unit(small);
  ASSERT_TRUE(refine);
  EXPECT_FALSE(dm.next_unit(small).has_value());
  submit(*refine);
  EXPECT_TRUE(dm.is_complete());
  EXPECT_GT(dm.remaining_ops_estimate(), -1.0);
}

TEST(DPRmlDataManager, BatchedEvalUnitsRespectHint) {
  auto aln = make_dataset(61, 8, 200);
  register_algorithm();
  DPRmlDataManager dm(aln, fast_config());
  DPRmlAlgorithm algo;
  auto data = dm.problem_data();
  algo.initialize(data);

  // Complete init with a huge hint.
  dist::SizeHint huge{1e18};
  auto init = dm.next_unit(huge);
  ASSERT_TRUE(init);
  dist::ResultUnit r;
  r.payload = algo.process(*init);
  dm.accept_result(r);

  // With a huge hint the whole eval stage is one batched unit.
  auto eval = dm.next_unit(huge);
  ASSERT_TRUE(eval);
  EXPECT_FALSE(dm.next_unit(huge).has_value());
  EXPECT_GT(eval->cost_ops, 0.0);
}

TEST(DPRmlDistributed, SchedulerCoreMatchesSerial) {
  auto aln = make_dataset(67, 6, 300);
  auto config = fast_config();
  auto serial = build_tree_serial(aln, config);

  register_algorithm();
  dist::SchedulerConfig scfg;
  scfg.lease_timeout = 1e6;
  scfg.bounds.min_ops = 1;
  dist::SchedulerCore core(scfg, std::make_unique<dist::FixedGranularity>(1.0));
  auto dm = std::make_shared<DPRmlDataManager>(aln, config);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();

  DPRmlAlgorithm a1, a2;
  a1.initialize(data);
  a2.initialize(data);
  auto c1 = core.client_joined("x", 1e6, 0.0);
  auto c2 = core.client_joined("y", 1e6, 0.0);

  double t = 0;
  int spins = 0;
  while (!core.problem_complete(pid)) {
    bool served = false;
    for (auto [cid, algo] : {std::pair{c1, &a1}, std::pair{c2, &a2}}) {
      auto unit = core.request_work(cid, t);
      if (!unit) continue;
      core.materialize_unit_blobs(*unit);
      served = true;
      dist::ResultUnit result;
      result.problem_id = unit->problem_id;
      result.unit_id = unit->unit_id;
      result.stage = unit->stage;
      result.payload = algo->process(*unit);
      core.submit_result(cid, result, t + 0.1);
    }
    t += 1;
    if (!served && ++spins > 10000) FAIL() << "scheduler deadlocked";
  }
  auto final_bytes = core.final_result(pid);
  ByteReader r{std::span<const std::byte>(final_bytes)};
  auto distributed = decode_dprml_result(r);
  EXPECT_EQ(distributed.newick, serial.newick);
  EXPECT_DOUBLE_EQ(distributed.log_likelihood, serial.log_likelihood);
}

TEST(DPRmlDistributed, ThreadedLocalRunIsByteIdenticalToSerial) {
  // DPRml has stage barriers (init -> per-taxon eval waves -> refine); the
  // threaded local runner must drain in-flight units at each barrier and
  // still produce the exact bytes of the serial run.
  auto aln = make_dataset(71, 6, 300);
  auto config = fast_config();
  register_algorithm();

  DPRmlDataManager serial_dm(aln, config);
  auto serial_bytes = dist::run_locally(serial_dm, 1.0);  // one-edge units

  for (std::size_t threads : {2, 4}) {
    DPRmlDataManager dm(aln, config);
    auto bytes = dist::run_locally(dm, 1.0, nullptr,
                                   dist::AlgorithmRegistry::global(), threads);
    EXPECT_EQ(bytes, serial_bytes) << threads << " threads";
  }
}

TEST(DPRmlNni, RearrangementNeverHurtsAndCanFixStepwiseErrors) {
  // NNI rounds must be monotone in likelihood, and on data where plain
  // stepwise insertion lands off the optimum they should improve it.
  for (std::uint64_t seed : {83u, 89u, 97u}) {
    phylo::Tree truth;
    auto aln = make_dataset(seed, 9, 250, &truth);
    auto base_cfg = fast_config();
    auto nni_cfg = base_cfg;
    nni_cfg.nni_rounds = 5;
    auto plain = build_tree_serial(aln, base_cfg);
    auto refined = build_tree_serial(aln, nni_cfg);
    EXPECT_GE(refined.log_likelihood, plain.log_likelihood - 1e-6)
        << "seed " << seed;
    auto t_plain = phylo::Tree::parse_newick(plain.newick);
    auto t_refined = phylo::Tree::parse_newick(refined.newick);
    EXPECT_LE(phylo::rf_distance(t_refined, truth),
              phylo::rf_distance(t_plain, truth) + 2)
        << "seed " << seed;
  }
}

TEST(DPRmlNni, ZeroRoundsMatchesPlainStepwise) {
  auto aln = make_dataset(101, 6, 200);
  auto cfg = fast_config();
  EXPECT_EQ(cfg.nni_rounds, 0);
  auto a = build_tree_serial(aln, cfg);
  cfg.nni_rounds = 0;
  auto b = build_tree_serial(aln, cfg);
  EXPECT_EQ(a.newick, b.newick);
}

TEST(DPRmlNni, DistributedMatchesSerialWithRearrangement) {
  auto aln = make_dataset(103, 7, 250);
  auto cfg = fast_config();
  cfg.nni_rounds = 3;
  auto serial = build_tree_serial(aln, cfg);

  register_algorithm();
  dist::SchedulerConfig scfg;
  scfg.lease_timeout = 1e6;
  scfg.bounds.min_ops = 1;
  dist::SchedulerCore core(scfg, std::make_unique<dist::FixedGranularity>(1.0));
  auto dm = std::make_shared<DPRmlDataManager>(aln, cfg);
  auto pid = core.submit_problem(dm);
  auto data = dm->problem_data();
  DPRmlAlgorithm algo;
  algo.initialize(data);
  auto cid = core.client_joined("x", 1e6, 0.0);

  double t = 0;
  int spins = 0;
  while (!core.problem_complete(pid)) {
    auto unit = core.request_work(cid, t);
    t += 1;
    if (!unit) {
      ASSERT_LT(++spins, 100000) << "deadlock";
      continue;
    }
    core.materialize_unit_blobs(*unit);
    dist::ResultUnit result;
    result.problem_id = unit->problem_id;
    result.unit_id = unit->unit_id;
    result.stage = unit->stage;
    result.payload = algo.process(*unit);
    core.submit_result(cid, result, t);
  }
  auto distributed = dm->result();
  EXPECT_EQ(distributed.newick, serial.newick);
  EXPECT_DOUBLE_EQ(distributed.log_likelihood, serial.log_likelihood);
}

TEST(DPRmlCache, CacheHitsProduceIdenticalResults) {
  EvalCache::global().clear();
  auto aln = make_dataset(71, 6, 250);
  auto cached_cfg = fast_config();
  cached_cfg.use_eval_cache = true;

  auto r1 = build_tree_serial(aln, cached_cfg);
  auto cache_after_first = EvalCache::global().size();
  EXPECT_GT(cache_after_first, 0u);
  auto r2 = build_tree_serial(aln, cached_cfg);  // all evals hit the cache
  EXPECT_EQ(r1.newick, r2.newick);
  EXPECT_DOUBLE_EQ(r1.log_likelihood, r2.log_likelihood);

  // And matches the uncached run.
  auto r3 = build_tree_serial(aln, fast_config());
  EXPECT_EQ(r1.newick, r3.newick);
  EvalCache::global().clear();
  EXPECT_EQ(EvalCache::global().size(), 0u);
}

TEST(DPRmlCache, DifferentProblemsDoNotCollide) {
  EvalCache::global().clear();
  auto aln_a = make_dataset(73, 5, 200);
  auto aln_b = make_dataset(79, 5, 200);
  auto cfg = fast_config();
  cfg.use_eval_cache = true;
  auto ra = build_tree_serial(aln_a, cfg);
  auto rb = build_tree_serial(aln_b, cfg);
  // Re-run A with B's entries in the cache; must be unchanged.
  auto ra2 = build_tree_serial(aln_a, cfg);
  EXPECT_EQ(ra.newick, ra2.newick);
  EXPECT_DOUBLE_EQ(ra.log_likelihood, ra2.log_likelihood);
  EXPECT_NE(ra.newick, rb.newick);
  EvalCache::global().clear();
}

}  // namespace
}  // namespace hdcs::dprml
