#include "dist/wire.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hdcs::dist {
namespace {

TEST(Wire, HelloRoundTrip) {
  HelloPayload p;
  p.client_name = "lab-piii-7";
  p.cores = 2;
  p.benchmark_ops_per_sec = 5.25e7;
  auto msg = encode_hello(p, 42);
  EXPECT_EQ(msg.correlation, 42u);
  auto q = decode_hello(msg);
  EXPECT_EQ(q.client_name, p.client_name);
  EXPECT_EQ(q.cores, p.cores);
  EXPECT_DOUBLE_EQ(q.benchmark_ops_per_sec, p.benchmark_ops_per_sec);
}

TEST(Wire, HelloAckRoundTrip) {
  HelloAckPayload p;
  p.client_id = 17;
  p.heartbeat_interval_s = 12.5;
  auto q = decode_hello_ack(encode_hello_ack(p, 1));
  EXPECT_EQ(q.client_id, 17u);
  EXPECT_DOUBLE_EQ(q.heartbeat_interval_s, 12.5);
}

TEST(Wire, WorkAssignmentRoundTrip) {
  WorkUnit unit;
  unit.problem_id = 3;
  unit.unit_id = 99;
  unit.stage = 7;
  unit.cost_ops = 1.5e6;
  ByteWriter w;
  w.str("chunk payload");
  unit.payload = w.take();

  auto decoded = decode_work_assignment(encode_work_assignment(unit, 5));
  EXPECT_EQ(decoded.problem_id, 3u);
  EXPECT_EQ(decoded.unit_id, 99u);
  EXPECT_EQ(decoded.stage, 7u);
  EXPECT_DOUBLE_EQ(decoded.cost_ops, 1.5e6);
  EXPECT_EQ(decoded.payload, unit.payload);
}

TEST(Wire, SubmitResultRoundTrip) {
  ResultUnit result;
  result.problem_id = 1;
  result.unit_id = 2;
  result.stage = 3;
  ByteWriter w;
  w.f64(-1234.5);
  result.payload = w.take();
  result.payload_crc = 0xdeadbeefu;  // v3: the donor's digest over payload

  auto [client, decoded] = decode_submit_result(encode_submit_result(9, result, 6));
  EXPECT_EQ(client, 9u);
  EXPECT_EQ(decoded.unit_id, 2u);
  EXPECT_EQ(decoded.payload, result.payload);
  EXPECT_EQ(decoded.payload_crc, 0xdeadbeefu);
}

TEST(Wire, SubmitResultV5ProfileTrailerRoundTrip) {
  ResultUnit result;
  result.problem_id = 1;
  result.unit_id = 2;
  result.stage = 3;
  obs::UnitProfile prof;
  prof.queue_wait_s = 0.015;
  prof.blob_fetch_s = 0.25;
  prof.decompress_s = 0.004;
  prof.compute_s = 2.75;
  prof.encode_s = 0.001;
  prof.threads = 4;
  prof.saturations = 17;
  result.profile = prof;

  auto [client, decoded] =
      decode_submit_result(encode_submit_result(9, result, 6, 5));
  EXPECT_EQ(client, 9u);
  ASSERT_TRUE(decoded.profile.has_value());
  EXPECT_DOUBLE_EQ(decoded.profile->queue_wait_s, 0.015);
  EXPECT_DOUBLE_EQ(decoded.profile->blob_fetch_s, 0.25);
  EXPECT_DOUBLE_EQ(decoded.profile->decompress_s, 0.004);
  EXPECT_DOUBLE_EQ(decoded.profile->compute_s, 2.75);
  EXPECT_DOUBLE_EQ(decoded.profile->encode_s, 0.001);
  EXPECT_EQ(decoded.profile->threads, 4u);
  EXPECT_EQ(decoded.profile->saturations, 17u);

  // A v5 frame without a profile carries only the presence flag.
  result.profile.reset();
  auto [c2, d2] = decode_submit_result(encode_submit_result(9, result, 7, 5));
  EXPECT_EQ(c2, 9u);
  EXPECT_FALSE(d2.profile.has_value());
}

TEST(Wire, SubmitResultV4FrameHasNoTrailer) {
  // A v4 encoder must stay bit-identical to the pre-v5 shape: a profile on
  // the ResultUnit is silently dropped, never written, so v3/v4 servers
  // (which expect_end after payload_crc) keep parsing the frame.
  ResultUnit result;
  result.problem_id = 1;
  result.unit_id = 2;
  ByteWriter w;
  w.str("payload");
  result.payload = w.take();
  result.payload_crc = 7;

  auto legacy = encode_submit_result(9, result, 6, 4);
  result.profile = obs::UnitProfile{};
  result.profile->compute_s = 1.25;
  auto with_profile = encode_submit_result(9, result, 6, 4);
  EXPECT_EQ(legacy.payload, with_profile.payload);
  EXPECT_EQ(legacy.version, 4u);

  auto [client, decoded] = decode_submit_result(legacy);
  EXPECT_EQ(client, 9u);
  EXPECT_FALSE(decoded.profile.has_value());
}

TEST(Wire, V6EpochRoundTripsOnWorkAndResult) {
  // v6 frames carry the fencing epoch on both the lease and the echo;
  // v5 frames must stay bit-identical to the pre-epoch shape.
  WorkUnit unit;
  unit.problem_id = 3;
  unit.unit_id = 99;
  unit.epoch = 7;
  auto v6 = decode_work_assignment(encode_work_assignment(unit, 5, 6));
  EXPECT_EQ(v6.epoch, 7u);
  auto v5 = decode_work_assignment(encode_work_assignment(unit, 5, 5));
  EXPECT_EQ(v5.epoch, 0u);  // absent from the frame -> default

  ResultUnit result;
  result.problem_id = 3;
  result.unit_id = 99;
  result.epoch = 7;
  auto [c6, r6] = decode_submit_result(encode_submit_result(9, result, 5, 6));
  EXPECT_EQ(c6, 9u);
  EXPECT_EQ(r6.epoch, 7u);
  auto [c5, r5] = decode_submit_result(encode_submit_result(9, result, 5, 5));
  EXPECT_EQ(c5, 9u);
  EXPECT_EQ(r5.epoch, 0u);

  // A v5 encoder drops the epoch without shifting any other field.
  ResultUnit plain = result;
  plain.epoch = 0;
  EXPECT_EQ(encode_submit_result(9, result, 5, 5).payload,
            encode_submit_result(9, plain, 5, 5).payload);
}

TEST(Wire, ReplicationPayloadsRoundTrip) {
  ReplicaHelloPayload hello;
  hello.standby_name = "standby-2";
  auto h = decode_replica_hello(encode_replica_hello(hello, 11));
  EXPECT_EQ(h.standby_name, "standby-2");

  ReplicaSnapshotPayload snap;
  snap.epoch = 3;
  snap.start_lsn = 4242;
  snap.snapshot_bytes = 123456;
  auto s = decode_replica_snapshot(encode_replica_snapshot(snap, 12));
  EXPECT_EQ(s.epoch, 3u);
  EXPECT_EQ(s.start_lsn, 4242u);
  EXPECT_EQ(s.snapshot_bytes, 123456u);

  WalAppendPayload batch;
  ByteWriter a, b;
  a.str("record one");
  b.u64(77);
  batch.records.push_back(a.take());
  batch.records.push_back(b.take());
  auto w = decode_wal_append(encode_wal_append(batch, 13));
  ASSERT_EQ(w.records.size(), 2u);
  EXPECT_EQ(w.records[0], batch.records[0]);
  EXPECT_EQ(w.records[1], batch.records[1]);
}

TEST(Wire, NoWorkRoundTrip) {
  NoWorkPayload p;
  p.retry_after_s = 2.5;
  p.all_problems_complete = true;
  auto q = decode_no_work(encode_no_work(p, 0));
  EXPECT_DOUBLE_EQ(q.retry_after_s, 2.5);
  EXPECT_TRUE(q.all_problems_complete);
}

TEST(Wire, ProblemDataHeaderRoundTrip) {
  ProblemDataHeaderPayload p;
  p.problem_id = 5;
  p.algorithm_name = "dsearch";
  p.data_bytes = 1234567;
  auto q = decode_problem_data_header(encode_problem_data_header(p, 0));
  EXPECT_EQ(q.problem_id, 5u);
  EXPECT_EQ(q.algorithm_name, "dsearch");
  EXPECT_EQ(q.data_bytes, 1234567u);
}

TEST(Wire, SmallIdMessagesRoundTrip) {
  EXPECT_EQ(decode_request_work(encode_request_work(7, 1)), 7u);
  EXPECT_EQ(decode_heartbeat(encode_heartbeat(8, 2)), 8u);
  EXPECT_EQ(decode_goodbye(encode_goodbye(9, 3)), 9u);
  EXPECT_EQ(decode_fetch_problem_data(encode_fetch_problem_data({11}, 4)).problem_id,
            11u);
  EXPECT_TRUE(decode_result_ack(encode_result_ack({true}, 5)).accepted);
}

TEST(Wire, WrongTypeThrowsProtocolError) {
  auto msg = encode_request_work(1, 1);
  EXPECT_THROW(decode_hello(msg), ProtocolError);
  EXPECT_THROW(decode_work_assignment(msg), ProtocolError);
}

TEST(Wire, TruncatedPayloadThrows) {
  auto msg = encode_hello({"name", 1, 2.0}, 1);
  msg.payload.pop_back();
  EXPECT_THROW(decode_hello(msg), SerializationError);
}

TEST(Wire, TrailingGarbageDetected) {
  auto msg = encode_request_work(1, 1);
  msg.payload.push_back(std::byte{0});
  EXPECT_THROW(decode_request_work(msg), SerializationError);
}

}  // namespace
}  // namespace hdcs::dist
