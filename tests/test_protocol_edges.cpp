// Protocol-level robustness: what the server does when peers misbehave
// (wrong versions, bogus ids, raw garbage) — the connection and the other
// clients must survive all of it.

#include <gtest/gtest.h>

#include <thread>

#include "dist/client.hpp"
#include "dist/server.hpp"
#include "dist/wire.hpp"
#include "net/bulk.hpp"
#include "tests/toy_problem.hpp"

namespace hdcs::dist {
namespace {

using test::ToySumDataManager;

ServerConfig server_config() {
  ServerConfig cfg;
  cfg.scheduler.bounds.min_ops = 1000;
  cfg.policy_spec = "adaptive:0.05";
  cfg.tick_interval_s = 0.05;
  cfg.no_work_retry_s = 0.02;
  test::register_toy_algorithm();
  return cfg;
}

net::TcpStream connect_to(const Server& server) {
  return net::TcpStream::connect("127.0.0.1", server.port());
}

TEST(ProtocolEdges, FetchUnknownProblemGetsErrorFrameNotDisconnect) {
  Server server(server_config());
  server.start();
  auto stream = connect_to(server);

  net::write_message(stream, encode_fetch_problem_data({999}, 1));
  auto reply = net::read_message(stream);
  EXPECT_EQ(reply.type, net::MessageType::kError);

  // The connection is still usable afterwards.
  net::write_message(stream, encode_hello({"late-hello", 1, 1e6}, 2));
  auto ack = decode_hello_ack(net::read_message(stream));
  EXPECT_GT(ack.client_id, 0u);
  server.stop();
}

TEST(ProtocolEdges, RequestWorkWithoutHelloGetsErrorFrame) {
  Server server(server_config());
  server.start();
  server.submit_problem(std::make_shared<ToySumDataManager>(1000));
  auto stream = connect_to(server);

  net::write_message(stream, encode_request_work(424242, 1));
  auto reply = net::read_message(stream);
  EXPECT_EQ(reply.type, net::MessageType::kError);
  server.stop();
}

TEST(ProtocolEdges, WrongProtocolVersionRejected) {
  Server server(server_config());
  server.start();
  auto stream = connect_to(server);

  // Hand-roll a frame with a bad version (full 24-byte v2 header: the
  // payload_len and payload_crc fields are present but never reached).
  ByteWriter w;
  w.u32(net::kMagic);
  w.u16(net::kProtocolVersion + 1);
  w.u16(static_cast<std::uint16_t>(net::MessageType::kHello));
  w.u64(1);
  w.u32(0);
  w.u32(0);
  stream.send_all(w.data());
  // Server drops the connection (ProtocolError path): our next read EOFs.
  std::vector<std::byte> buf(1);
  EXPECT_EQ(stream.recv_some(buf), 0u);
  server.stop();
}

TEST(ProtocolEdges, GarbageBytesDropOnlyThatConnection) {
  Server server(server_config());
  server.start();
  auto dm = std::make_shared<ToySumDataManager>(500000);
  auto pid = server.submit_problem(dm);

  // One vandal connection spews garbage...
  {
    auto vandal = connect_to(server);
    std::vector<std::byte> junk(64, std::byte{0x33});
    vandal.send_all(junk);
    std::vector<std::byte> buf(1);
    EXPECT_EQ(vandal.recv_some(buf), 0u);  // dropped
  }
  // ...while a well-behaved client finishes the problem normally.
  ClientConfig ccfg;
  ccfg.server_port = server.port();
  ccfg.name = "good-citizen";
  Client(ccfg).run();
  ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
  EXPECT_EQ(test::read_u64_result(server.final_result(pid)), dm->expected());
  server.stop();
}

TEST(ProtocolEdges, MalformedPayloadGetsErrorFrame) {
  Server server(server_config());
  server.start();
  auto stream = connect_to(server);

  // A Hello frame whose payload is truncated mid-string.
  net::Message msg;
  msg.type = net::MessageType::kHello;
  msg.correlation = 7;
  ByteWriter w;
  w.u32(1000);  // claims a 1000-byte name but provides none
  msg.payload = w.take();
  net::write_message(stream, msg);
  auto reply = net::read_message(stream);
  EXPECT_EQ(reply.type, net::MessageType::kError);
  EXPECT_EQ(reply.correlation, 7u);
  server.stop();
}

TEST(ProtocolEdges, HeartbeatForUnknownClientIsHarmless) {
  Server server(server_config());
  server.start();
  auto stream = connect_to(server);
  net::write_message(stream, encode_heartbeat(31337, 1));
  auto reply = net::read_message(stream);
  // Heartbeats for unknown ids are ignored (idempotent ack), matching
  // SchedulerCore::heartbeat's tolerant contract.
  EXPECT_EQ(reply.type, net::MessageType::kHeartbeatAck);
  server.stop();
}

TEST(ProtocolEdges, SubmitResultForForeignProblemRejectedGracefully) {
  Server server(server_config());
  server.start();
  auto stream = connect_to(server);
  net::write_message(stream, encode_hello({"h", 1, 1e6}, 1));
  auto ack = decode_hello_ack(net::read_message(stream));

  ResultUnit bogus;
  bogus.problem_id = 12345;
  bogus.unit_id = 1;
  net::write_message(stream, encode_submit_result(ack.client_id, bogus, 2));
  auto reply = decode_result_ack(net::read_message(stream));
  EXPECT_FALSE(reply.accepted);
  server.stop();
}

}  // namespace
}  // namespace hdcs::dist
