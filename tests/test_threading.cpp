#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/blocking_queue.hpp"
#include "util/thread_pool.hpp"

namespace hdcs {
namespace {

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueue, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(BlockingQueue, BoundedTryPushFailsWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(BlockingQueue, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));  // rejected after close
  EXPECT_EQ(q.pop(), 1);    // drains what's left
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    auto v = q.pop();
    EXPECT_EQ(v, std::nullopt);
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(woke);
}

TEST(BlockingQueue, ManyProducersManyConsumers) {
  BlockingQueue<int> q(16);
  constexpr int kProducers = 4, kPerProducer = 500;
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) sum += *v;
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (std::size_t i = kProducers; i < threads.size(); ++i) threads[i].join();

  long long expected = 0;
  for (int i = 0; i < kProducers * kPerProducer; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.submit([&] { count += 1; }));
  }
  pool.shutdown();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitWithResult) {
  ThreadPool pool(2);
  auto fut = pool.submit_with_result([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto fut = pool.submit_with_result([] { return 1; });
  EXPECT_EQ(fut.get(), 1);
}

}  // namespace
}  // namespace hdcs
