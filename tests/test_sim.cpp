#include "sim/sim_driver.hpp"

#include <gtest/gtest.h>

#include "dist/client.hpp"
#include "dist/server.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "tests/toy_problem.hpp"
#include "util/error.hpp"

namespace hdcs::sim {
namespace {

using test::ToySumDataManager;

SimConfig fast_config() {
  SimConfig cfg;
  cfg.reference_ops_per_sec = 1e6;
  cfg.scheduler.lease_timeout = 1e5;
  cfg.scheduler.bounds.min_ops = 1;
  cfg.policy_spec = "adaptive:5";
  cfg.no_work_retry_s = 0.5;
  test::register_toy_algorithm();
  return cfg;
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBrokenByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(3); });
  q.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule(q.now() + 1.0, chain);
  };
  q.schedule(0.0, chain);
  q.run_until();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.schedule(5.0, [&] { EXPECT_THROW(q.schedule(1.0, [] {}), Error); });
  q.run_until();
}

TEST(EventQueue, StopPredicateHalts) {
  EventQueue q;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    q.schedule(i, [&] { ++count; });
  }
  q.run_until([&] { return count >= 3; });
  EXPECT_EQ(count, 3);
}

TEST(Fleet, LabFleetHomogeneous) {
  auto fleet = lab_fleet(83);
  EXPECT_EQ(fleet.size(), 83u);
  for (const auto& m : fleet) {
    EXPECT_DOUBLE_EQ(m.speed, 1.0);
    EXPECT_LT(m.availability_mean, 1.0);
  }
}

TEST(Fleet, ClusterFleet64Cpus) {
  auto fleet = cluster_fleet();
  EXPECT_EQ(fleet.size(), 64u);
  for (const auto& m : fleet) EXPECT_DOUBLE_EQ(m.availability_mean, 1.0);
}

TEST(Fleet, CampusFleetMixAndSize) {
  Rng rng(1);
  auto fleet = campus_fleet(rng, 200);
  EXPECT_EQ(fleet.size(), 264u);
  double min_speed = 1e9, max_speed = 0;
  for (const auto& m : fleet) {
    min_speed = std::min(min_speed, m.speed);
    max_speed = std::max(max_speed, m.speed);
  }
  EXPECT_LT(min_speed, 0.5);
  EXPECT_GT(max_speed, 1.5);
}

TEST(SimDriver, FaultInjectionDelaysButNeverCorrupts) {
  auto cfg = fast_config();
  std::uint64_t expected = ToySumDataManager(2000000, 9).expected();

  // Fault-free reference run.
  SimDriver ref(cfg, lab_fleet(4));
  auto pid = ref.add_problem(std::make_shared<ToySumDataManager>(2000000, 9));
  auto base = ref.run();
  ASSERT_EQ(test::read_u64_result(base.final_results.at(pid)), expected);

  // Same workload through a storm of connect refusals and frame faults:
  // joins back off, torn frames are retransmitted, and the final merged
  // payload is byte-identical — faults cost time, never answers.
  auto chaos_cfg = cfg;
  chaos_cfg.faults.seed = 77;
  chaos_cfg.faults.connect_refuse_prob = 0.7;
  chaos_cfg.faults.recv_disconnect_prob = 0.05;
  chaos_cfg.faults.corrupt_prob = 0.05;
  chaos_cfg.faults.delay_prob = 0.2;
  SimDriver chaos(chaos_cfg, lab_fleet(4));
  auto pid2 = chaos.add_problem(std::make_shared<ToySumDataManager>(2000000, 9));
  auto stormy = chaos.run();
  EXPECT_EQ(stormy.final_results.at(pid2), base.final_results.at(pid));
  EXPECT_GT(stormy.joins_refused, 0u);
  EXPECT_GT(stormy.frames_retransmitted, 0u);
  EXPECT_GE(stormy.makespan_s, base.makespan_s);
}

TEST(SimDriver, FaultRunsAreDeterministicPerSeed) {
  auto cfg = fast_config();
  cfg.faults.seed = 5;
  cfg.faults.connect_refuse_prob = 0.5;
  cfg.faults.recv_disconnect_prob = 0.1;
  auto run_once = [&] {
    SimDriver sim(cfg, lab_fleet(6));
    sim.add_problem(std::make_shared<ToySumDataManager>(1000000, 2));
    return sim.run();
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.frames_retransmitted, b.frames_retransmitted);
  EXPECT_EQ(a.joins_refused, b.joins_refused);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(SimDriver, VirtualTimeCheckpointsEmitted) {
  auto cfg = fast_config();
  cfg.checkpoint_interval_s = 0.25;  // well inside the virtual makespan
  SimDriver sim(cfg, lab_fleet(4));
  auto pid = sim.add_problem(std::make_shared<ToySumDataManager>(5000000));
  auto out = sim.run();
  EXPECT_GT(out.checkpoints_saved, 0u);
  EXPECT_EQ(test::read_u64_result(out.final_results.at(pid)),
            ToySumDataManager(5000000).expected());
}

TEST(SimDriver, StorageFaultsDegradeAndRestoreWithoutChangingAnswers) {
  auto cfg = fast_config();
  cfg.checkpoint_interval_s = 0.25;
  std::uint64_t expected = ToySumDataManager(1000000).expected();

  // Fault-free reference.
  SimDriver ref(cfg, lab_fleet(4));
  auto pid = ref.add_problem(std::make_shared<ToySumDataManager>(1000000));
  auto base = ref.run();
  ASSERT_EQ(test::read_u64_result(base.final_results.at(pid)), expected);
  EXPECT_EQ(base.durability_degradations, 0u);

  // Intermittent checkpoint fsync failures: the server mirror degrades on a
  // failed save, re-arms on the next clean one, and the merged answer is
  // byte-identical — disk faults cost durability windows, never results.
  auto cfg2 = cfg;
  cfg2.storage_faults.seed = 11;
  cfg2.storage_faults.sync_error_prob = 0.5;
  SimDriver faulty(cfg2, lab_fleet(4));
  auto pid2 = faulty.add_problem(std::make_shared<ToySumDataManager>(1000000));
  auto out = faulty.run();
  EXPECT_EQ(out.final_results.at(pid2), base.final_results.at(pid));
  EXPECT_GE(out.durability_degradations, 1u);
  EXPECT_GE(out.durability_restores, 1u);
}

TEST(SimDriver, StorageFaultRunsAreDeterministicPerSeed) {
  auto run_once = [] {
    auto cfg = fast_config();
    cfg.checkpoint_interval_s = 0.25;
    cfg.storage_faults.seed = 3;
    cfg.storage_faults.sync_error_prob = 0.4;
    SimDriver sim(cfg, lab_fleet(4));
    sim.add_problem(std::make_shared<ToySumDataManager>(1000000));
    return sim.run();
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.durability_degradations, b.durability_degradations);
  EXPECT_EQ(a.durability_restores, b.durability_restores);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(SimDriver, MaxClientsShedsJoinsButWorkCompletes) {
  auto cfg = fast_config();
  cfg.max_clients = 2;
  SimDriver sim(cfg, lab_fleet(6));
  auto dm = std::make_shared<ToySumDataManager>(2000000);
  auto pid = sim.add_problem(dm);
  auto out = sim.run();
  EXPECT_GT(out.joins_shed, 0u);
  EXPECT_EQ(test::read_u64_result(out.final_results.at(pid)), dm->expected());
}

TEST(SimDriver, ProducesCorrectResult) {
  auto cfg = fast_config();
  SimDriver sim(cfg, lab_fleet(4));
  auto dm = std::make_shared<ToySumDataManager>(100000);
  auto pid = sim.add_problem(dm);
  auto out = sim.run();

  EXPECT_EQ(test::read_u64_result(out.final_results.at(pid)), dm->expected());
  EXPECT_GT(out.makespan_s, 0.0);
  EXPECT_GT(out.scheduler.units_issued, 0u);
  EXPECT_EQ(out.scheduler.units_issued, out.scheduler.results_accepted);
}

TEST(SimDriver, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto cfg = fast_config();
    SimDriver sim(cfg, lab_fleet(8));
    sim.add_problem(std::make_shared<ToySumDataManager>(200000));
    return sim.run().makespan_s;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(SimDriver, MoreMachinesFinishFaster) {
  auto makespan_with = [](int n) {
    auto cfg = fast_config();
    SimDriver sim(cfg, lab_fleet(n));
    sim.add_problem(std::make_shared<ToySumDataManager>(2000000));
    return sim.run().makespan_s;
  };
  double t1 = makespan_with(1);
  double t8 = makespan_with(8);
  EXPECT_LT(t8, t1 / 4.0);  // at least 4x speedup from 8 machines
}

TEST(SimDriver, FasterMachinesDoMoreUnits) {
  auto cfg = fast_config();
  std::vector<MachineSpec> fleet(2);
  fleet[0].name = "slow";
  fleet[0].speed = 0.25;
  fleet[1].name = "fast";
  fleet[1].speed = 2.0;
  SimDriver sim(cfg, fleet);
  sim.add_problem(std::make_shared<ToySumDataManager>(3000000));
  auto out = sim.run();
  ASSERT_EQ(out.machines.size(), 2u);
  const auto& slow = out.machines[0];
  const auto& fast = out.machines[1];
  EXPECT_GT(fast.units, slow.units);
}

TEST(SimDriver, CrashedMachineWorkIsRecovered) {
  auto cfg = fast_config();
  cfg.scheduler.lease_timeout = 2.0;
  auto fleet = lab_fleet(3);
  fleet[0].leave_time = 0.2;  // crashes early, mid-computation
  fleet[0].crash_on_leave = true;
  SimDriver sim(cfg, fleet);
  auto dm = std::make_shared<ToySumDataManager>(5000000);
  auto pid = sim.add_problem(dm);
  auto out = sim.run();
  EXPECT_EQ(test::read_u64_result(out.final_results.at(pid)), dm->expected());
  EXPECT_TRUE(out.machines[0].departed);
}

TEST(SimDriver, GracefulLeaveRequeuesImmediately) {
  auto cfg = fast_config();
  cfg.scheduler.lease_timeout = 1e6;  // expiry would never fire
  auto fleet = lab_fleet(3);
  fleet[1].leave_time = 5.0;
  fleet[1].crash_on_leave = false;  // sends Goodbye
  SimDriver sim(cfg, fleet);
  auto dm = std::make_shared<ToySumDataManager>(1000000);
  auto pid = sim.add_problem(dm);
  auto out = sim.run();
  EXPECT_EQ(test::read_u64_result(out.final_results.at(pid)), dm->expected());
}

TEST(SimDriver, RejoiningMachineContributesAgain) {
  auto cfg = fast_config();
  cfg.scheduler.lease_timeout = 20.0;
  auto fleet = lab_fleet(2);
  fleet[0].leave_time = 5.0;
  fleet[0].rejoin_time = 15.0;
  SimDriver sim(cfg, fleet);
  auto dm = std::make_shared<ToySumDataManager>(2000000);
  auto pid = sim.add_problem(dm);
  auto out = sim.run();
  EXPECT_EQ(test::read_u64_result(out.final_results.at(pid)), dm->expected());
  EXPECT_FALSE(out.machines[0].departed);
}

TEST(SimDriver, MultipleProblemsAllComplete) {
  auto cfg = fast_config();
  SimDriver sim(cfg, lab_fleet(6));
  std::vector<std::shared_ptr<ToySumDataManager>> dms;
  std::vector<dist::ProblemId> pids;
  for (int i = 0; i < 3; ++i) {
    dms.push_back(std::make_shared<ToySumDataManager>(300000, i * 1000));
    pids.push_back(sim.add_problem(dms.back()));
  }
  auto out = sim.run();
  for (std::size_t i = 0; i < pids.size(); ++i) {
    EXPECT_EQ(test::read_u64_result(out.final_results.at(pids[i])), dms[i]->expected());
    EXPECT_GT(out.completion_time_s.at(pids[i]), 0.0);
  }
}

TEST(SimDriver, StagedProblemSingleVsMultiInstanceUtilization) {
  // The Fig. 2 phenomenon in miniature: one staged problem leaves donors
  // idle at barriers; adding a second concurrent instance raises
  // utilization and total throughput.
  auto utilization_with_instances = [](int instances) {
    auto cfg = fast_config();
    SimDriver sim(cfg, lab_fleet(8));
    for (int i = 0; i < instances; ++i) {
      sim.add_problem(
          std::make_shared<ToySumDataManager>(400000, i, /*stages=*/20));
    }
    return sim.run().mean_utilization();
  };
  double u1 = utilization_with_instances(1);
  double u2 = utilization_with_instances(2);
  EXPECT_GT(u2, u1);
}

TEST(SimDriver, CacheSharedAcrossSweepRuns) {
  auto cfg = fast_config();
  std::shared_ptr<SimDriver::ResultCache> cache;
  std::uint64_t first_misses = 0;
  {
    SimDriver sim(cfg, lab_fleet(2));
    sim.add_problem(std::make_shared<ToySumDataManager>(100000));
    cache = sim.shared_cache();
    auto out = sim.run();
    first_misses = out.cache_misses;
    EXPECT_GT(first_misses, 0u);
    EXPECT_EQ(out.cache_hits, 0u);
  }
  {
    // Same problem, same granularity pattern -> should hit the cache.
    SimDriver sim(cfg, lab_fleet(2));
    sim.set_shared_cache(cache);
    sim.add_problem(std::make_shared<ToySumDataManager>(100000));
    auto out = sim.run();
    EXPECT_GT(out.cache_hits, 0u);
  }
}

TEST(SimDriver, OwnerOnOffModelMatchesLongRunAvailability) {
  // A donor whose owner is at the keyboard half the time should take about
  // twice as long as a dedicated machine on the same workload.
  auto makespan_with = [](double busy_mean, double free_mean) {
    auto cfg = fast_config();
    std::vector<MachineSpec> fleet(1);
    fleet[0].name = "m";
    if (busy_mean > 0) {
      fleet[0].owner_busy_mean = busy_mean;
      fleet[0].owner_free_mean = free_mean;
    } else {
      fleet[0].availability_mean = 1.0;
      fleet[0].availability_jitter = 0.0;
    }
    SimDriver sim(cfg, fleet);
    // ~100 s of compute spanning many owner on/off periods.
    auto dm = std::make_shared<ToySumDataManager>(100000000);
    auto pid = sim.add_problem(dm);
    auto out = sim.run();
    EXPECT_EQ(test::read_u64_result(out.final_results.at(pid)), dm->expected());
    return out.makespan_s;
  };
  double dedicated = makespan_with(0, 0);
  double half_idle = makespan_with(5.0, 5.0);  // 50% availability
  double ratio = half_idle / dedicated;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.8);
}

TEST(SimDriver, OwnerOnOffIsHeavyTailedButExact) {
  // Same mean availability, two models: the on/off donor must produce a
  // larger worst-unit stall than smooth jitter, with identical results.
  auto cfg = fast_config();
  cfg.policy_spec = "fixed:20000";  // many equal units
  auto run = [&](bool onoff) {
    auto fleet = lab_fleet(2, 0.5, 0.0);
    if (onoff) {
      for (auto& m : fleet) {
        m.owner_busy_mean = 60.0;
        m.owner_free_mean = 60.0;
      }
    }
    SimDriver sim(cfg, fleet);
    auto dm = std::make_shared<ToySumDataManager>(2000000);
    auto pid = sim.add_problem(dm);
    auto out = sim.run();
    return test::read_u64_result(out.final_results.at(pid));
  };
  EXPECT_EQ(run(false), run(true));  // availability model never changes answers
}

TEST(SimDriver, ApiMisuseThrows) {
  auto cfg = fast_config();
  {
    SimDriver sim(cfg, lab_fleet(1));
    EXPECT_THROW(sim.run(), Error);  // no problems
  }
  {
    SimDriver sim(cfg, {});
    sim.add_problem(std::make_shared<ToySumDataManager>(10));
    EXPECT_THROW(sim.run(), Error);  // empty fleet
  }
  {
    SimDriver sim(cfg, lab_fleet(1));
    sim.add_problem(std::make_shared<ToySumDataManager>(1000));
    sim.run();
    EXPECT_THROW(sim.run(), Error);  // run twice
    EXPECT_THROW(sim.add_problem(std::make_shared<ToySumDataManager>(10)), Error);
  }
}

TEST(SimDriver, AllDonorsGoneRaises) {
  auto cfg = fast_config();
  cfg.scheduler.lease_timeout = 5.0;
  auto fleet = lab_fleet(1);
  fleet[0].leave_time = 0.5;  // leaves almost immediately, never returns
  SimDriver sim(cfg, fleet);
  sim.add_problem(std::make_shared<ToySumDataManager>(100000000));
  EXPECT_THROW(sim.run(), Error);
}

TEST(SimDriver, TraceMatchesRealServerEventOrder) {
  // The tentpole property of the shared trace schema: a simulated run and a
  // real loopback-TCP run of the same single-client workload emit the same
  // event *types* in the same order. The fixed granularity policy pins the
  // unit count, and a lone strictly-serial client pins the interleaving; only
  // timestamps (virtual vs wall) and ids may differ.
  test::register_toy_algorithm();
  constexpr std::uint64_t kN = 400000;
  constexpr const char* kPolicy = "fixed:100000";  // exactly 4 units

  auto event_types = [](const std::vector<std::string>& lines) {
    std::vector<std::string> evs;
    for (const auto& line : lines) {
      auto rec = obs::parse_trace_line(line);
      // checkpoint/log are clock-driven chatter, not scheduling decisions.
      if (rec.ev == "checkpoint" || rec.ev == "log") continue;
      evs.push_back(rec.ev);
    }
    return evs;
  };

  obs::Tracer sim_tracer;
  sim_tracer.to_memory();
  {
    auto cfg = fast_config();
    cfg.policy_spec = kPolicy;
    cfg.tracer = &sim_tracer;
    MachineSpec spec;
    spec.name = "lone-donor";
    spec.availability_mean = 1.0;  // deterministic: no jitter, never leaves
    SimDriver sim(cfg, {spec});
    sim.add_problem(std::make_shared<ToySumDataManager>(kN));
    sim.run();
  }

  obs::Tracer srv_tracer;
  srv_tracer.to_memory();
  {
    dist::ServerConfig cfg;
    cfg.scheduler.bounds.min_ops = 1;
    cfg.policy_spec = kPolicy;
    cfg.tick_interval_s = 0.05;
    cfg.no_work_retry_s = 0.02;
    cfg.tracer = &srv_tracer;
    dist::Server server(cfg);
    server.start();
    auto pid = server.submit_problem(std::make_shared<ToySumDataManager>(kN));
    dist::ClientConfig ccfg;
    ccfg.server_port = server.port();
    ccfg.name = "lone-donor";
    dist::Client(ccfg).run();
    ASSERT_TRUE(server.wait_for_problem(pid, 30.0));
    server.stop();
  }

  auto sim_events = event_types(sim_tracer.lines());
  auto srv_events = event_types(srv_tracer.lines());
  ASSERT_FALSE(sim_events.empty());
  EXPECT_EQ(sim_events, srv_events);

  // And the shape is exactly the canonical single-client lifecycle: the
  // first issued unit triggers one problem-data blob transfer (the v4 data
  // plane); after that the donor's cache holds it silently. Every result
  // from a v5 donor lands a unit_profile right before its unit_completed.
  std::vector<std::string> expected{"client_joined"};
  for (int i = 0; i < 4; ++i) {
    expected.emplace_back("unit_issued");
    if (i == 0) expected.emplace_back("blob_sent");
    expected.emplace_back("unit_profile");
    expected.emplace_back("unit_completed");
  }
  expected.emplace_back("client_left");
  EXPECT_EQ(sim_events, expected);
}

}  // namespace
}  // namespace hdcs::sim
