#!/usr/bin/env python3
"""Perf gate over bench_align --smoke artifacts.

Compares the per-kernel throughputs in a freshly measured BENCH_ALIGN.json
against a committed baseline and fails (exit 1) when any kernel regresses
by more than --max-regress (default 20%). Keys present in the baseline must
exist in the current run — a silently vanished kernel is a failure, not a
pass. Throughput improvements are reported but never fail the gate; refresh
the committed baseline deliberately with `./build/bench/bench_align --smoke`.

Usage:
  bench_gate.py --baseline BENCH_ALIGN.json --current build/BENCH_ALIGN.json
  bench_gate.py --self-test          # prove the gate trips on a 25% slowdown
"""

import argparse
import json
import sys

KERNEL_KEY = "kernels_cells_per_sec"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    kernels = doc.get(KERNEL_KEY)
    if not isinstance(kernels, dict) or not kernels:
        raise SystemExit(f"{path}: missing or empty '{KERNEL_KEY}'")
    return kernels


def compare(baseline, current, max_regress):
    """Return (failures, lines): failed kernel names and a report table."""
    failures = []
    lines = []
    for name in sorted(baseline):
        base = float(baseline[name])
        floor = base * (1.0 - max_regress)
        if name not in current:
            failures.append(name)
            lines.append(f"  {name:24s} baseline {base:12.4g}  MISSING in current run")
            continue
        cur = float(current[name])
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok" if cur >= floor else "REGRESSED"
        if cur < floor:
            failures.append(name)
        lines.append(
            f"  {name:24s} baseline {base:12.4g}  current {cur:12.4g}"
            f"  ({ratio:6.2%})  {verdict}"
        )
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"  {name:24s} new kernel (not gated)")
    return failures, lines


def self_test(baseline_path, max_regress):
    baseline = load(baseline_path)
    # A fabricated 25% across-the-board slowdown must trip a 20% gate.
    slowed = {k: float(v) * 0.75 for k, v in baseline.items()}
    failures, _ = compare(baseline, slowed, max_regress)
    if set(failures) != set(baseline):
        print("self-test FAILED: 25% slowdown did not trip every kernel",
              file=sys.stderr)
        return 1
    # An identical run must pass.
    failures, _ = compare(baseline, dict(baseline), max_regress)
    if failures:
        print("self-test FAILED: identical run tripped the gate", file=sys.stderr)
        return 1
    # A vanished kernel must fail even when everything else is fast.
    partial = {k: float(v) * 2 for k, v in list(baseline.items())[1:]}
    failures, _ = compare(baseline, partial, max_regress)
    if len(failures) != 1:
        print("self-test FAILED: missing kernel not detected", file=sys.stderr)
        return 1
    print(f"self-test OK: gate trips on 25% slowdown at max-regress {max_regress:.0%}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", default="BENCH_ALIGN.json",
                    help="committed reference artifact (default: %(default)s)")
    ap.add_argument("--current", default="build/BENCH_ALIGN.json",
                    help="freshly measured artifact (default: %(default)s)")
    ap.add_argument("--max-regress", type=float, default=0.20,
                    help="allowed fractional slowdown per kernel (default: 0.20)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate logic against a fabricated slowdown")
    args = ap.parse_args()

    if not 0 <= args.max_regress < 1:
        raise SystemExit("--max-regress must be in [0, 1)")
    if args.self_test:
        return self_test(args.baseline, args.max_regress)

    baseline = load(args.baseline)
    current = load(args.current)
    failures, lines = compare(baseline, current, args.max_regress)
    print(f"bench gate: {args.current} vs {args.baseline} "
          f"(max regress {args.max_regress:.0%})")
    print("\n".join(lines))
    if failures:
        print(f"FAIL: {len(failures)} kernel(s) regressed beyond "
              f"{args.max_regress:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("PASS: no kernel regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
