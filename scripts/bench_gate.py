#!/usr/bin/env python3
"""Perf gate over bench smoke artifacts (BENCH_ALIGN.json, BENCH_LIKELIHOOD.json).

Two kinds of checks, both against a freshly measured artifact:

  1. Regression gate: every kernel throughput in the baseline's --section
     table must stay within --max-regress (default 20%) of the committed
     value. Keys present in the baseline must exist in the current run — a
     silently vanished kernel is a failure, not a pass. Improvements are
     reported but never fail the gate; refresh the committed baseline
     deliberately with the bench's --smoke mode.

  2. Minimum ratchets: repeatable --min PATH=VALUE flags assert absolute
     floors on dotted paths into the *current* artifact, e.g.
     --min speedup_batch_over_scalar.nw=3.0. This is how "the batch kernel
     must beat scalar by 3x" stays locked in even if both sides of the
     ratio drift together (which the relative gate would wave through).
     --max PATH=VALUE is the mirror image: an absolute ceiling, for
     quantities where growth is the regression (resident thread count,
     p99 latency). --ratchets-only skips the baseline comparison so
     artifacts without a committed reference (BENCH_NET.json) can still
     be gated on their floors and ceilings alone.

Usage:
  bench_gate.py --baseline BENCH_ALIGN.json --current build/BENCH_ALIGN.json \\
      --min speedup_batch_over_scalar.sw=3.0
  bench_gate.py --baseline BENCH_LIKELIHOOD.json \\
      --current build/BENCH_LIKELIHOOD.json --section kernels_evals_per_sec \\
      --min speedup_simd_over_scalar.partials=1.5
  bench_gate.py --ratchets-only --current build/BENCH_NET.json \\
      --min storm.joins_per_sec=300 --max storm.resident_threads=32
  bench_gate.py --self-test     # prove the gate trips on slowdowns and
                                # on ratchet violations
"""

import argparse
import json
import sys

DEFAULT_SECTION = "kernels_cells_per_sec"


def load(path, section):
    with open(path) as f:
        doc = json.load(f)
    kernels = doc.get(section)
    if not isinstance(kernels, dict) or not kernels:
        raise SystemExit(f"{path}: missing or empty '{section}'")
    return doc, kernels


def compare(baseline, current, max_regress):
    """Return (failures, lines): failed kernel names and a report table."""
    failures = []
    lines = []
    for name in sorted(baseline):
        base = float(baseline[name])
        floor = base * (1.0 - max_regress)
        if name not in current:
            failures.append(name)
            lines.append(f"  {name:24s} baseline {base:12.4g}  MISSING in current run")
            continue
        cur = float(current[name])
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok" if cur >= floor else "REGRESSED"
        if cur < floor:
            failures.append(name)
        lines.append(
            f"  {name:24s} baseline {base:12.4g}  current {cur:12.4g}"
            f"  ({ratio:6.2%})  {verdict}"
        )
    for name in sorted(set(current) - set(baseline)):
        lines.append(f"  {name:24s} new kernel (not gated)")
    return failures, lines


def resolve(doc, dotted):
    """Walk a dotted path through nested dicts; None when absent."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_ratchets(doc, ratchets):
    """Assert floors/ceilings on the current artifact.

    ratchets: [(path, bound, is_max)] — is_max False means the value must be
    >= bound (floor), True means <= bound (ceiling). A missing path always
    fails: a vanished metric must not silently pass its gate.
    """
    failures = []
    lines = []
    for path, bound, is_max in ratchets:
        kind = "<=" if is_max else ">="
        value = resolve(doc, path)
        if value is None:
            failures.append(path)
            lines.append(f"  {path:36s} MISSING (ratchet {kind} {bound:g})")
            continue
        value = float(value)
        ok = value <= bound if is_max else value >= bound
        if not ok:
            failures.append(path)
        verdict = "ok" if ok else ("ABOVE CEILING" if is_max else "BELOW RATCHET")
        lines.append(
            f"  {path:36s} {value:10.4g}  (ratchet {kind} {bound:g})  {verdict}"
        )
    return failures, lines


def check_mins(doc, mins):
    """Back-compat shim over check_ratchets for floor-only callers/tests."""
    return check_ratchets(doc, [(p, v, False) for p, v in mins])


def parse_ratchet(flag, text, is_max):
    path, sep, value = text.partition("=")
    if not sep or not path:
        raise SystemExit(f"{flag} wants PATH=VALUE, got '{text}'")
    try:
        return path, float(value), is_max
    except ValueError:
        raise SystemExit(f"{flag} {path}: '{value}' is not a number")


def self_test(baseline_path, max_regress):
    _, baseline = load(baseline_path, DEFAULT_SECTION)
    # A fabricated 25% across-the-board slowdown must trip a 20% gate.
    slowed = {k: float(v) * 0.75 for k, v in baseline.items()}
    failures, _ = compare(baseline, slowed, max_regress)
    if set(failures) != set(baseline):
        print("self-test FAILED: 25% slowdown did not trip every kernel",
              file=sys.stderr)
        return 1
    # An identical run must pass.
    failures, _ = compare(baseline, dict(baseline), max_regress)
    if failures:
        print("self-test FAILED: identical run tripped the gate", file=sys.stderr)
        return 1
    # A vanished kernel must fail even when everything else is fast.
    partial = {k: float(v) * 2 for k, v in list(baseline.items())[1:]}
    failures, _ = compare(baseline, partial, max_regress)
    if len(failures) != 1:
        print("self-test FAILED: missing kernel not detected", file=sys.stderr)
        return 1
    # Ratchets: a value below the floor, a missing path, and a passing value.
    doc = {"speedup": {"nw": 2.9, "sw": 5.0}}
    failures, _ = check_mins(doc, [("speedup.nw", 3.0)])
    if failures != ["speedup.nw"]:
        print("self-test FAILED: ratchet did not trip below the floor",
              file=sys.stderr)
        return 1
    failures, _ = check_mins(doc, [("speedup.vanished", 1.0)])
    if failures != ["speedup.vanished"]:
        print("self-test FAILED: missing ratchet path not detected",
              file=sys.stderr)
        return 1
    failures, _ = check_mins(doc, [("speedup.sw", 3.0), ("speedup.nw", 2.5)])
    if failures:
        print("self-test FAILED: satisfied ratchet tripped", file=sys.stderr)
        return 1
    # Ceilings: a value above the cap must trip, one below must pass, and a
    # missing path must fail just like a missing floor.
    caps = {"storm": {"resident_threads": 48, "joins_per_sec": 5000}}
    failures, _ = check_ratchets(caps, [("storm.resident_threads", 32.0, True)])
    if failures != ["storm.resident_threads"]:
        print("self-test FAILED: ceiling did not trip above the cap",
              file=sys.stderr)
        return 1
    failures, _ = check_ratchets(
        caps, [("storm.resident_threads", 64.0, True),
               ("storm.joins_per_sec", 300.0, False)])
    if failures:
        print("self-test FAILED: satisfied ceiling/floor mix tripped",
              file=sys.stderr)
        return 1
    failures, _ = check_ratchets(caps, [("storm.vanished", 1.0, True)])
    if failures != ["storm.vanished"]:
        print("self-test FAILED: missing ceiling path not detected",
              file=sys.stderr)
        return 1
    print(f"self-test OK: gate trips on 25% slowdown at max-regress "
          f"{max_regress:.0%} and on ratchet violations")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", default="BENCH_ALIGN.json",
                    help="committed reference artifact (default: %(default)s)")
    ap.add_argument("--current", default="build/BENCH_ALIGN.json",
                    help="freshly measured artifact (default: %(default)s)")
    ap.add_argument("--section", default=DEFAULT_SECTION,
                    help="throughput table compared between the two artifacts "
                         "(default: %(default)s)")
    ap.add_argument("--max-regress", type=float, default=0.20,
                    help="allowed fractional slowdown per kernel (default: 0.20)")
    ap.add_argument("--min", action="append", default=[], metavar="PATH=VALUE",
                    help="ratchet: dotted path into the current artifact that "
                         "must be >= VALUE (repeatable)")
    ap.add_argument("--max", action="append", default=[], metavar="PATH=VALUE",
                    help="ceiling: dotted path into the current artifact that "
                         "must be <= VALUE (repeatable)")
    ap.add_argument("--ratchets-only", action="store_true",
                    help="skip the baseline comparison; gate only on "
                         "--min/--max against the current artifact")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate logic against fabricated failures")
    args = ap.parse_args()

    if not 0 <= args.max_regress < 1:
        raise SystemExit("--max-regress must be in [0, 1)")
    if args.self_test:
        return self_test(args.baseline, args.max_regress)

    ratchets = [parse_ratchet("--min", m, False) for m in args.min]
    ratchets += [parse_ratchet("--max", m, True) for m in args.max]

    if args.ratchets_only:
        if not ratchets:
            raise SystemExit("--ratchets-only without --min/--max gates nothing")
        with open(args.current) as f:
            current_doc = json.load(f)
        failures, lines = check_ratchets(current_doc, ratchets)
        print(f"bench gate: {args.current} (ratchets only)")
        print("\n".join(lines))
        if failures:
            print(f"FAIL: {len(failures)} check(s) failed: "
                  f"{', '.join(failures)}", file=sys.stderr)
            return 1
        print("PASS: ratchets hold")
        return 0

    _, baseline = load(args.baseline, args.section)
    current_doc, current = load(args.current, args.section)
    failures, lines = compare(baseline, current, args.max_regress)
    print(f"bench gate: {args.current} vs {args.baseline} "
          f"(max regress {args.max_regress:.0%})")
    print("\n".join(lines))
    if ratchets:
        ratchet_failures, ratchet_lines = check_ratchets(current_doc, ratchets)
        print("\n".join(ratchet_lines))
        failures += ratchet_failures
    if failures:
        print(f"FAIL: {len(failures)} check(s) failed: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("PASS: no kernel regressed beyond the threshold; ratchets hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
