#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrency-
# sensitive suites (obs registry/tracer, scheduler, server/client).
#
#   scripts/verify.sh            # full: tier-1 + TSan subset
#   scripts/verify.sh --fast     # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "${1:-}" == "--fast" ]]; then
  echo "verify OK (tier-1 only)"
  exit 0
fi

echo "== TSan: obs + scheduler + integration tests =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan --target test_obs test_dist test_integration -j >/dev/null
ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
  -R 'Metrics|Jsonl|Tracer|MsgStats|Wire|Scheduler|ServerClient|Granularity'

echo "verify OK"
