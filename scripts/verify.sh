#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes: ThreadSanitizer over the
# concurrency-sensitive suites (obs registry/tracer, scheduler,
# server/client) and AddressSanitizer over the kernel equivalence
# suites (batch alignment vs scalar, SIMD dispatch tiers), then the
# bench smoke runs which re-assert equivalence before timing anything.
# The chaos suite (server kill/restart + donor churn + injected frame
# faults, tests/test_chaos.cpp) runs under BOTH sanitizers: it is the
# test most likely to expose races and lifetime bugs in the
# reconnect/checkpoint paths, and it must stay clean there, not just in
# the plain build. The Simd/BatchKernel suites additionally run with
# HDCS_SIMD=scalar so the no-SIMD dispatch path stays exercised.
#
#   scripts/verify.sh            # full: tier-1 + TSan + ASan + smoke
#   scripts/verify.sh --fast     # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "${1:-}" == "--fast" ]]; then
  echo "verify OK (tier-1 only)"
  exit 0
fi

echo "== kernel equivalence with SIMD forced off (HDCS_SIMD=scalar) =="
HDCS_SIMD=scalar ctest --test-dir build --output-on-failure -j"$(nproc)" \
  -R 'Simd|BatchKernel'

echo "== TSan: obs + scheduler + integration + chaos + data-plane tests =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan --target test_obs test_dist test_integration test_chaos test_data_plane test_wal test_vfs -j >/dev/null
ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
  -R 'Metrics|Jsonl|Tracer|MsgStats|Wire|Scheduler|ServerClient|Granularity|Chaos|DataPlane|BulkV4|BlobCache|Compress|Wal|Vfs'

echo "== ASan: kernel equivalence + SIMD tiers + chaos + data-plane =="
cmake --preset asan >/dev/null
cmake --build --preset asan --target test_bio test_properties test_simd test_dsearch test_chaos test_data_plane test_wal test_vfs test_checkpoint -j >/dev/null
ctest --test-dir build-asan --output-on-failure -j"$(nproc)" \
  -R 'Simd|BatchKernel|AlignScore|Banded|NeedlemanWunsch|SmithWaterman|SemiGlobal|DSearch|Chaos|DataPlane|BulkV4|BlobCache|Compress|Wal|Vfs|CheckpointFile'

echo "== bench_align --smoke (kernel equivalence + throughput snapshot) =="
# Writes into build/ so a verify run never dirties the committed
# BENCH_ALIGN.json; refresh that with: ./build/bench/bench_align --smoke
./build/bench/bench_align --smoke --out build/BENCH_ALIGN.json

echo "== bench_likelihood --smoke (tier bit-equality + throughput) =="
./build/bench/bench_likelihood --smoke --out build/BENCH_LIKELIHOOD.json

echo "== bench_net --storm (epoll server: 1k donors on a fixed thread budget) =="
cmake --build build --target bench_net -j >/dev/null
./build/bench/bench_net --storm 1000 --heartbeats 2 --out build/BENCH_NET.json

echo "== bench gate self-test + speedup ratchets on the fresh artifacts =="
# Self-compare (baseline = current) skips the machine-dependent absolute
# throughput comparison — CI does that against the committed baselines —
# but still enforces the machine-independent speedup ratchets locally.
python3 scripts/bench_gate.py --self-test
python3 scripts/bench_gate.py \
  --baseline build/BENCH_ALIGN.json --current build/BENCH_ALIGN.json \
  --min speedup_batch_over_scalar.sw=3.0 \
  --min speedup_batch_over_scalar.nw=3.0 \
  --min speedup_batch_over_scalar.semiglobal=3.0
python3 scripts/bench_gate.py --section kernels_evals_per_sec \
  --baseline build/BENCH_LIKELIHOOD.json \
  --current build/BENCH_LIKELIHOOD.json \
  --min speedup_simd_over_scalar.partials=1.5
python3 scripts/bench_gate.py --ratchets-only \
  --current build/BENCH_NET.json \
  --min storm.joins_per_sec=300 \
  --min storm.peak_concurrent=1000 \
  --max storm.failed_connects=0 \
  --max storm.resident_threads=32

echo "verify OK"
