# Empty compiler generated dependencies file for test_dsearch.
# This may be replaced when dependencies are built.
