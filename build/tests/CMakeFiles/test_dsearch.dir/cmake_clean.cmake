file(REMOVE_RECURSE
  "CMakeFiles/test_dsearch.dir/test_dsearch.cpp.o"
  "CMakeFiles/test_dsearch.dir/test_dsearch.cpp.o.d"
  "test_dsearch"
  "test_dsearch.pdb"
  "test_dsearch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
