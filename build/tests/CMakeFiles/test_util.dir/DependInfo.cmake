
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_byte_buffer.cpp" "tests/CMakeFiles/test_util.dir/test_byte_buffer.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/test_byte_buffer.cpp.o.d"
  "/root/repo/tests/test_config_strings.cpp" "tests/CMakeFiles/test_util.dir/test_config_strings.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/test_config_strings.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/test_util.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_threading.cpp" "tests/CMakeFiles/test_util.dir/test_threading.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/test_threading.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hdcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
