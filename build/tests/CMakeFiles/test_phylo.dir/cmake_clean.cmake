file(REMOVE_RECURSE
  "CMakeFiles/test_phylo.dir/test_alignment.cpp.o"
  "CMakeFiles/test_phylo.dir/test_alignment.cpp.o.d"
  "CMakeFiles/test_phylo.dir/test_likelihood.cpp.o"
  "CMakeFiles/test_phylo.dir/test_likelihood.cpp.o.d"
  "CMakeFiles/test_phylo.dir/test_matrix_optimize.cpp.o"
  "CMakeFiles/test_phylo.dir/test_matrix_optimize.cpp.o.d"
  "CMakeFiles/test_phylo.dir/test_model_fit.cpp.o"
  "CMakeFiles/test_phylo.dir/test_model_fit.cpp.o.d"
  "CMakeFiles/test_phylo.dir/test_subst_model.cpp.o"
  "CMakeFiles/test_phylo.dir/test_subst_model.cpp.o.d"
  "CMakeFiles/test_phylo.dir/test_tree.cpp.o"
  "CMakeFiles/test_phylo.dir/test_tree.cpp.o.d"
  "test_phylo"
  "test_phylo.pdb"
  "test_phylo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phylo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
