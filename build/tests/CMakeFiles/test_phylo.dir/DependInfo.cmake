
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alignment.cpp" "tests/CMakeFiles/test_phylo.dir/test_alignment.cpp.o" "gcc" "tests/CMakeFiles/test_phylo.dir/test_alignment.cpp.o.d"
  "/root/repo/tests/test_likelihood.cpp" "tests/CMakeFiles/test_phylo.dir/test_likelihood.cpp.o" "gcc" "tests/CMakeFiles/test_phylo.dir/test_likelihood.cpp.o.d"
  "/root/repo/tests/test_matrix_optimize.cpp" "tests/CMakeFiles/test_phylo.dir/test_matrix_optimize.cpp.o" "gcc" "tests/CMakeFiles/test_phylo.dir/test_matrix_optimize.cpp.o.d"
  "/root/repo/tests/test_model_fit.cpp" "tests/CMakeFiles/test_phylo.dir/test_model_fit.cpp.o" "gcc" "tests/CMakeFiles/test_phylo.dir/test_model_fit.cpp.o.d"
  "/root/repo/tests/test_subst_model.cpp" "tests/CMakeFiles/test_phylo.dir/test_subst_model.cpp.o" "gcc" "tests/CMakeFiles/test_phylo.dir/test_subst_model.cpp.o.d"
  "/root/repo/tests/test_tree.cpp" "tests/CMakeFiles/test_phylo.dir/test_tree.cpp.o" "gcc" "tests/CMakeFiles/test_phylo.dir/test_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phylo/CMakeFiles/hdcs_phylo.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/hdcs_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hdcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
