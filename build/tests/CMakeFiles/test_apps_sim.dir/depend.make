# Empty dependencies file for test_apps_sim.
# This may be replaced when dependencies are built.
