# Empty dependencies file for test_dprml.
# This may be replaced when dependencies are built.
