file(REMOVE_RECURSE
  "CMakeFiles/test_dprml.dir/test_dprml.cpp.o"
  "CMakeFiles/test_dprml.dir/test_dprml.cpp.o.d"
  "test_dprml"
  "test_dprml.pdb"
  "test_dprml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dprml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
