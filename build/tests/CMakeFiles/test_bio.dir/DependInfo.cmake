
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_align.cpp" "tests/CMakeFiles/test_bio.dir/test_align.cpp.o" "gcc" "tests/CMakeFiles/test_bio.dir/test_align.cpp.o.d"
  "/root/repo/tests/test_fasta.cpp" "tests/CMakeFiles/test_bio.dir/test_fasta.cpp.o" "gcc" "tests/CMakeFiles/test_bio.dir/test_fasta.cpp.o.d"
  "/root/repo/tests/test_scoring.cpp" "tests/CMakeFiles/test_bio.dir/test_scoring.cpp.o" "gcc" "tests/CMakeFiles/test_bio.dir/test_scoring.cpp.o.d"
  "/root/repo/tests/test_seqgen.cpp" "tests/CMakeFiles/test_bio.dir/test_seqgen.cpp.o" "gcc" "tests/CMakeFiles/test_bio.dir/test_seqgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/hdcs_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hdcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
