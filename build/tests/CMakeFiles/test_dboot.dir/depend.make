# Empty dependencies file for test_dboot.
# This may be replaced when dependencies are built.
