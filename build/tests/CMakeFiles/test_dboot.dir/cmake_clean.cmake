file(REMOVE_RECURSE
  "CMakeFiles/test_dboot.dir/test_dboot.cpp.o"
  "CMakeFiles/test_dboot.dir/test_dboot.cpp.o.d"
  "test_dboot"
  "test_dboot.pdb"
  "test_dboot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dboot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
