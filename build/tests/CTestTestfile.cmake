# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_bio[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_phylo[1]_include.cmake")
include("/root/repo/build/tests/test_dsearch[1]_include.cmake")
include("/root/repo/build/tests/test_dprml[1]_include.cmake")
include("/root/repo/build/tests/test_apps_sim[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_dboot[1]_include.cmake")
