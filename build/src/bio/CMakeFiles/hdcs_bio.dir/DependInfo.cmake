
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/align.cpp" "src/bio/CMakeFiles/hdcs_bio.dir/align.cpp.o" "gcc" "src/bio/CMakeFiles/hdcs_bio.dir/align.cpp.o.d"
  "/root/repo/src/bio/fasta.cpp" "src/bio/CMakeFiles/hdcs_bio.dir/fasta.cpp.o" "gcc" "src/bio/CMakeFiles/hdcs_bio.dir/fasta.cpp.o.d"
  "/root/repo/src/bio/scoring.cpp" "src/bio/CMakeFiles/hdcs_bio.dir/scoring.cpp.o" "gcc" "src/bio/CMakeFiles/hdcs_bio.dir/scoring.cpp.o.d"
  "/root/repo/src/bio/seqgen.cpp" "src/bio/CMakeFiles/hdcs_bio.dir/seqgen.cpp.o" "gcc" "src/bio/CMakeFiles/hdcs_bio.dir/seqgen.cpp.o.d"
  "/root/repo/src/bio/sequence.cpp" "src/bio/CMakeFiles/hdcs_bio.dir/sequence.cpp.o" "gcc" "src/bio/CMakeFiles/hdcs_bio.dir/sequence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hdcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
