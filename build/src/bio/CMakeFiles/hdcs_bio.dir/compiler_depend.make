# Empty compiler generated dependencies file for hdcs_bio.
# This may be replaced when dependencies are built.
