file(REMOVE_RECURSE
  "libhdcs_bio.a"
)
