file(REMOVE_RECURSE
  "CMakeFiles/hdcs_bio.dir/align.cpp.o"
  "CMakeFiles/hdcs_bio.dir/align.cpp.o.d"
  "CMakeFiles/hdcs_bio.dir/fasta.cpp.o"
  "CMakeFiles/hdcs_bio.dir/fasta.cpp.o.d"
  "CMakeFiles/hdcs_bio.dir/scoring.cpp.o"
  "CMakeFiles/hdcs_bio.dir/scoring.cpp.o.d"
  "CMakeFiles/hdcs_bio.dir/seqgen.cpp.o"
  "CMakeFiles/hdcs_bio.dir/seqgen.cpp.o.d"
  "CMakeFiles/hdcs_bio.dir/sequence.cpp.o"
  "CMakeFiles/hdcs_bio.dir/sequence.cpp.o.d"
  "libhdcs_bio.a"
  "libhdcs_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdcs_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
