# Empty compiler generated dependencies file for hdcs_net.
# This may be replaced when dependencies are built.
