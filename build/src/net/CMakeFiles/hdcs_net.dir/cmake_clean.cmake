file(REMOVE_RECURSE
  "CMakeFiles/hdcs_net.dir/bulk.cpp.o"
  "CMakeFiles/hdcs_net.dir/bulk.cpp.o.d"
  "CMakeFiles/hdcs_net.dir/message.cpp.o"
  "CMakeFiles/hdcs_net.dir/message.cpp.o.d"
  "CMakeFiles/hdcs_net.dir/socket.cpp.o"
  "CMakeFiles/hdcs_net.dir/socket.cpp.o.d"
  "libhdcs_net.a"
  "libhdcs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdcs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
