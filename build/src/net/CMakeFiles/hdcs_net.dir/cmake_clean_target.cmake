file(REMOVE_RECURSE
  "libhdcs_net.a"
)
