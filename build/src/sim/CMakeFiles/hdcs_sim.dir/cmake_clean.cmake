file(REMOVE_RECURSE
  "CMakeFiles/hdcs_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hdcs_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/hdcs_sim.dir/fleet.cpp.o"
  "CMakeFiles/hdcs_sim.dir/fleet.cpp.o.d"
  "CMakeFiles/hdcs_sim.dir/sim_driver.cpp.o"
  "CMakeFiles/hdcs_sim.dir/sim_driver.cpp.o.d"
  "libhdcs_sim.a"
  "libhdcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
