
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/hdcs_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/hdcs_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/fleet.cpp" "src/sim/CMakeFiles/hdcs_sim.dir/fleet.cpp.o" "gcc" "src/sim/CMakeFiles/hdcs_sim.dir/fleet.cpp.o.d"
  "/root/repo/src/sim/sim_driver.cpp" "src/sim/CMakeFiles/hdcs_sim.dir/sim_driver.cpp.o" "gcc" "src/sim/CMakeFiles/hdcs_sim.dir/sim_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/hdcs_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hdcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hdcs_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
