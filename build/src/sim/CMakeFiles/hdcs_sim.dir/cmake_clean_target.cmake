file(REMOVE_RECURSE
  "libhdcs_sim.a"
)
