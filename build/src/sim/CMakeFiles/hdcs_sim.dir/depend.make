# Empty dependencies file for hdcs_sim.
# This may be replaced when dependencies are built.
