file(REMOVE_RECURSE
  "libhdcs_dboot.a"
)
