# Empty dependencies file for hdcs_dboot.
# This may be replaced when dependencies are built.
