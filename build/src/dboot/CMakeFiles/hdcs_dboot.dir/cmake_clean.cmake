file(REMOVE_RECURSE
  "CMakeFiles/hdcs_dboot.dir/dboot.cpp.o"
  "CMakeFiles/hdcs_dboot.dir/dboot.cpp.o.d"
  "libhdcs_dboot.a"
  "libhdcs_dboot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdcs_dboot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
