
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phylo/alignment.cpp" "src/phylo/CMakeFiles/hdcs_phylo.dir/alignment.cpp.o" "gcc" "src/phylo/CMakeFiles/hdcs_phylo.dir/alignment.cpp.o.d"
  "/root/repo/src/phylo/distance.cpp" "src/phylo/CMakeFiles/hdcs_phylo.dir/distance.cpp.o" "gcc" "src/phylo/CMakeFiles/hdcs_phylo.dir/distance.cpp.o.d"
  "/root/repo/src/phylo/likelihood.cpp" "src/phylo/CMakeFiles/hdcs_phylo.dir/likelihood.cpp.o" "gcc" "src/phylo/CMakeFiles/hdcs_phylo.dir/likelihood.cpp.o.d"
  "/root/repo/src/phylo/matrix4.cpp" "src/phylo/CMakeFiles/hdcs_phylo.dir/matrix4.cpp.o" "gcc" "src/phylo/CMakeFiles/hdcs_phylo.dir/matrix4.cpp.o.d"
  "/root/repo/src/phylo/model_fit.cpp" "src/phylo/CMakeFiles/hdcs_phylo.dir/model_fit.cpp.o" "gcc" "src/phylo/CMakeFiles/hdcs_phylo.dir/model_fit.cpp.o.d"
  "/root/repo/src/phylo/optimize.cpp" "src/phylo/CMakeFiles/hdcs_phylo.dir/optimize.cpp.o" "gcc" "src/phylo/CMakeFiles/hdcs_phylo.dir/optimize.cpp.o.d"
  "/root/repo/src/phylo/simulate.cpp" "src/phylo/CMakeFiles/hdcs_phylo.dir/simulate.cpp.o" "gcc" "src/phylo/CMakeFiles/hdcs_phylo.dir/simulate.cpp.o.d"
  "/root/repo/src/phylo/subst_model.cpp" "src/phylo/CMakeFiles/hdcs_phylo.dir/subst_model.cpp.o" "gcc" "src/phylo/CMakeFiles/hdcs_phylo.dir/subst_model.cpp.o.d"
  "/root/repo/src/phylo/tree.cpp" "src/phylo/CMakeFiles/hdcs_phylo.dir/tree.cpp.o" "gcc" "src/phylo/CMakeFiles/hdcs_phylo.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/hdcs_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hdcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
