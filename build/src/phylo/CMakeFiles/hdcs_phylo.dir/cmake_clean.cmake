file(REMOVE_RECURSE
  "CMakeFiles/hdcs_phylo.dir/alignment.cpp.o"
  "CMakeFiles/hdcs_phylo.dir/alignment.cpp.o.d"
  "CMakeFiles/hdcs_phylo.dir/distance.cpp.o"
  "CMakeFiles/hdcs_phylo.dir/distance.cpp.o.d"
  "CMakeFiles/hdcs_phylo.dir/likelihood.cpp.o"
  "CMakeFiles/hdcs_phylo.dir/likelihood.cpp.o.d"
  "CMakeFiles/hdcs_phylo.dir/matrix4.cpp.o"
  "CMakeFiles/hdcs_phylo.dir/matrix4.cpp.o.d"
  "CMakeFiles/hdcs_phylo.dir/model_fit.cpp.o"
  "CMakeFiles/hdcs_phylo.dir/model_fit.cpp.o.d"
  "CMakeFiles/hdcs_phylo.dir/optimize.cpp.o"
  "CMakeFiles/hdcs_phylo.dir/optimize.cpp.o.d"
  "CMakeFiles/hdcs_phylo.dir/simulate.cpp.o"
  "CMakeFiles/hdcs_phylo.dir/simulate.cpp.o.d"
  "CMakeFiles/hdcs_phylo.dir/subst_model.cpp.o"
  "CMakeFiles/hdcs_phylo.dir/subst_model.cpp.o.d"
  "CMakeFiles/hdcs_phylo.dir/tree.cpp.o"
  "CMakeFiles/hdcs_phylo.dir/tree.cpp.o.d"
  "libhdcs_phylo.a"
  "libhdcs_phylo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdcs_phylo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
