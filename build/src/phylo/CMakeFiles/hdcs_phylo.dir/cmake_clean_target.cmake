file(REMOVE_RECURSE
  "libhdcs_phylo.a"
)
