# Empty compiler generated dependencies file for hdcs_phylo.
# This may be replaced when dependencies are built.
