file(REMOVE_RECURSE
  "CMakeFiles/hdcs_dprml.dir/dprml.cpp.o"
  "CMakeFiles/hdcs_dprml.dir/dprml.cpp.o.d"
  "libhdcs_dprml.a"
  "libhdcs_dprml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdcs_dprml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
