# Empty dependencies file for hdcs_dprml.
# This may be replaced when dependencies are built.
