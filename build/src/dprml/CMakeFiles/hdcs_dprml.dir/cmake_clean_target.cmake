file(REMOVE_RECURSE
  "libhdcs_dprml.a"
)
