file(REMOVE_RECURSE
  "libhdcs_dist.a"
)
