
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/client.cpp" "src/dist/CMakeFiles/hdcs_dist.dir/client.cpp.o" "gcc" "src/dist/CMakeFiles/hdcs_dist.dir/client.cpp.o.d"
  "/root/repo/src/dist/granularity.cpp" "src/dist/CMakeFiles/hdcs_dist.dir/granularity.cpp.o" "gcc" "src/dist/CMakeFiles/hdcs_dist.dir/granularity.cpp.o.d"
  "/root/repo/src/dist/local_runner.cpp" "src/dist/CMakeFiles/hdcs_dist.dir/local_runner.cpp.o" "gcc" "src/dist/CMakeFiles/hdcs_dist.dir/local_runner.cpp.o.d"
  "/root/repo/src/dist/registry.cpp" "src/dist/CMakeFiles/hdcs_dist.dir/registry.cpp.o" "gcc" "src/dist/CMakeFiles/hdcs_dist.dir/registry.cpp.o.d"
  "/root/repo/src/dist/scheduler_core.cpp" "src/dist/CMakeFiles/hdcs_dist.dir/scheduler_core.cpp.o" "gcc" "src/dist/CMakeFiles/hdcs_dist.dir/scheduler_core.cpp.o.d"
  "/root/repo/src/dist/server.cpp" "src/dist/CMakeFiles/hdcs_dist.dir/server.cpp.o" "gcc" "src/dist/CMakeFiles/hdcs_dist.dir/server.cpp.o.d"
  "/root/repo/src/dist/wire.cpp" "src/dist/CMakeFiles/hdcs_dist.dir/wire.cpp.o" "gcc" "src/dist/CMakeFiles/hdcs_dist.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hdcs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hdcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
