file(REMOVE_RECURSE
  "CMakeFiles/hdcs_dist.dir/client.cpp.o"
  "CMakeFiles/hdcs_dist.dir/client.cpp.o.d"
  "CMakeFiles/hdcs_dist.dir/granularity.cpp.o"
  "CMakeFiles/hdcs_dist.dir/granularity.cpp.o.d"
  "CMakeFiles/hdcs_dist.dir/local_runner.cpp.o"
  "CMakeFiles/hdcs_dist.dir/local_runner.cpp.o.d"
  "CMakeFiles/hdcs_dist.dir/registry.cpp.o"
  "CMakeFiles/hdcs_dist.dir/registry.cpp.o.d"
  "CMakeFiles/hdcs_dist.dir/scheduler_core.cpp.o"
  "CMakeFiles/hdcs_dist.dir/scheduler_core.cpp.o.d"
  "CMakeFiles/hdcs_dist.dir/server.cpp.o"
  "CMakeFiles/hdcs_dist.dir/server.cpp.o.d"
  "CMakeFiles/hdcs_dist.dir/wire.cpp.o"
  "CMakeFiles/hdcs_dist.dir/wire.cpp.o.d"
  "libhdcs_dist.a"
  "libhdcs_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdcs_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
