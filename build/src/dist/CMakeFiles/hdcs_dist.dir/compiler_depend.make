# Empty compiler generated dependencies file for hdcs_dist.
# This may be replaced when dependencies are built.
