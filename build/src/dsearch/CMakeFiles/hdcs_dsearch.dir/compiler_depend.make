# Empty compiler generated dependencies file for hdcs_dsearch.
# This may be replaced when dependencies are built.
