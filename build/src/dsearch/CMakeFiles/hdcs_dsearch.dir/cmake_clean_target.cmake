file(REMOVE_RECURSE
  "libhdcs_dsearch.a"
)
