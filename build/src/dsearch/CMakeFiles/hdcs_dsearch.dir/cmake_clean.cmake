file(REMOVE_RECURSE
  "CMakeFiles/hdcs_dsearch.dir/dsearch.cpp.o"
  "CMakeFiles/hdcs_dsearch.dir/dsearch.cpp.o.d"
  "libhdcs_dsearch.a"
  "libhdcs_dsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdcs_dsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
