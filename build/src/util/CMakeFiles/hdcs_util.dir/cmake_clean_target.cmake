file(REMOVE_RECURSE
  "libhdcs_util.a"
)
