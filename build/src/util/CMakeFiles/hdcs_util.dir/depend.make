# Empty dependencies file for hdcs_util.
# This may be replaced when dependencies are built.
