file(REMOVE_RECURSE
  "CMakeFiles/hdcs_util.dir/byte_buffer.cpp.o"
  "CMakeFiles/hdcs_util.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/hdcs_util.dir/config.cpp.o"
  "CMakeFiles/hdcs_util.dir/config.cpp.o.d"
  "CMakeFiles/hdcs_util.dir/logging.cpp.o"
  "CMakeFiles/hdcs_util.dir/logging.cpp.o.d"
  "CMakeFiles/hdcs_util.dir/strings.cpp.o"
  "CMakeFiles/hdcs_util.dir/strings.cpp.o.d"
  "CMakeFiles/hdcs_util.dir/thread_pool.cpp.o"
  "CMakeFiles/hdcs_util.dir/thread_pool.cpp.o.d"
  "libhdcs_util.a"
  "libhdcs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdcs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
