file(REMOVE_RECURSE
  "CMakeFiles/bench_align.dir/bench_align.cpp.o"
  "CMakeFiles/bench_align.dir/bench_align.cpp.o.d"
  "bench_align"
  "bench_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
