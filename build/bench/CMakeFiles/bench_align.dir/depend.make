# Empty dependencies file for bench_align.
# This may be replaced when dependencies are built.
