file(REMOVE_RECURSE
  "CMakeFiles/ablate_hedging.dir/ablate_hedging.cpp.o"
  "CMakeFiles/ablate_hedging.dir/ablate_hedging.cpp.o.d"
  "ablate_hedging"
  "ablate_hedging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_hedging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
