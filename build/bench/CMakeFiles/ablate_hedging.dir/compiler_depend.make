# Empty compiler generated dependencies file for ablate_hedging.
# This may be replaced when dependencies are built.
