# Empty compiler generated dependencies file for ablate_granularity.
# This may be replaced when dependencies are built.
