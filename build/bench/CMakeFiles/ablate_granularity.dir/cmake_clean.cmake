file(REMOVE_RECURSE
  "CMakeFiles/ablate_granularity.dir/ablate_granularity.cpp.o"
  "CMakeFiles/ablate_granularity.dir/ablate_granularity.cpp.o.d"
  "ablate_granularity"
  "ablate_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
