# Empty dependencies file for fig1_dsearch_speedup.
# This may be replaced when dependencies are built.
