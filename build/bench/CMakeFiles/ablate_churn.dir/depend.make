# Empty dependencies file for ablate_churn.
# This may be replaced when dependencies are built.
