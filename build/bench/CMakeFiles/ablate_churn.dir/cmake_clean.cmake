file(REMOVE_RECURSE
  "CMakeFiles/ablate_churn.dir/ablate_churn.cpp.o"
  "CMakeFiles/ablate_churn.dir/ablate_churn.cpp.o.d"
  "ablate_churn"
  "ablate_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
