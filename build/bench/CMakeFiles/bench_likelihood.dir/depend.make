# Empty dependencies file for bench_likelihood.
# This may be replaced when dependencies are built.
