file(REMOVE_RECURSE
  "CMakeFiles/bench_likelihood.dir/bench_likelihood.cpp.o"
  "CMakeFiles/bench_likelihood.dir/bench_likelihood.cpp.o.d"
  "bench_likelihood"
  "bench_likelihood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_likelihood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
