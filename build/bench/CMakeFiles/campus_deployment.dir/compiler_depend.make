# Empty compiler generated dependencies file for campus_deployment.
# This may be replaced when dependencies are built.
