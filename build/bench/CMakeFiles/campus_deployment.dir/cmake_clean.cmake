file(REMOVE_RECURSE
  "CMakeFiles/campus_deployment.dir/campus_deployment.cpp.o"
  "CMakeFiles/campus_deployment.dir/campus_deployment.cpp.o.d"
  "campus_deployment"
  "campus_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
