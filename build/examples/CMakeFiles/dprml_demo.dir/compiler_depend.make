# Empty compiler generated dependencies file for dprml_demo.
# This may be replaced when dependencies are built.
