file(REMOVE_RECURSE
  "CMakeFiles/dprml_demo.dir/dprml_demo.cpp.o"
  "CMakeFiles/dprml_demo.dir/dprml_demo.cpp.o.d"
  "dprml_demo"
  "dprml_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dprml_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
