# Empty dependencies file for dboot_demo.
# This may be replaced when dependencies are built.
