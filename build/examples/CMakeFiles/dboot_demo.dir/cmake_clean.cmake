file(REMOVE_RECURSE
  "CMakeFiles/dboot_demo.dir/dboot_demo.cpp.o"
  "CMakeFiles/dboot_demo.dir/dboot_demo.cpp.o.d"
  "dboot_demo"
  "dboot_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dboot_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
