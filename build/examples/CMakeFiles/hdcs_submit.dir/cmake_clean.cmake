file(REMOVE_RECURSE
  "CMakeFiles/hdcs_submit.dir/hdcs_submit.cpp.o"
  "CMakeFiles/hdcs_submit.dir/hdcs_submit.cpp.o.d"
  "hdcs_submit"
  "hdcs_submit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdcs_submit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
