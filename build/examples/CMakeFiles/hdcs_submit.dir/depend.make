# Empty dependencies file for hdcs_submit.
# This may be replaced when dependencies are built.
