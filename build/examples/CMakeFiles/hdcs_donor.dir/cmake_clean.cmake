file(REMOVE_RECURSE
  "CMakeFiles/hdcs_donor.dir/hdcs_donor.cpp.o"
  "CMakeFiles/hdcs_donor.dir/hdcs_donor.cpp.o.d"
  "hdcs_donor"
  "hdcs_donor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdcs_donor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
