# Empty compiler generated dependencies file for hdcs_donor.
# This may be replaced when dependencies are built.
