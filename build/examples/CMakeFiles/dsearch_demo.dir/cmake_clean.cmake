file(REMOVE_RECURSE
  "CMakeFiles/dsearch_demo.dir/dsearch_demo.cpp.o"
  "CMakeFiles/dsearch_demo.dir/dsearch_demo.cpp.o.d"
  "dsearch_demo"
  "dsearch_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsearch_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
