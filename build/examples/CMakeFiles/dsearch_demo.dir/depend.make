# Empty dependencies file for dsearch_demo.
# This may be replaced when dependencies are built.
