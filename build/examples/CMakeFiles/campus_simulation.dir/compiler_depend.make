# Empty compiler generated dependencies file for campus_simulation.
# This may be replaced when dependencies are built.
