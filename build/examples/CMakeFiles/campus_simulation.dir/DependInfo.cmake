
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/campus_simulation.cpp" "examples/CMakeFiles/campus_simulation.dir/campus_simulation.cpp.o" "gcc" "examples/CMakeFiles/campus_simulation.dir/campus_simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsearch/CMakeFiles/hdcs_dsearch.dir/DependInfo.cmake"
  "/root/repo/build/src/dprml/CMakeFiles/hdcs_dprml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hdcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phylo/CMakeFiles/hdcs_phylo.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/hdcs_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/hdcs_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hdcs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hdcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
