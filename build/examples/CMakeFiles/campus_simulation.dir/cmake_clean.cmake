file(REMOVE_RECURSE
  "CMakeFiles/campus_simulation.dir/campus_simulation.cpp.o"
  "CMakeFiles/campus_simulation.dir/campus_simulation.cpp.o.d"
  "campus_simulation"
  "campus_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
