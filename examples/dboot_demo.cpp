// DBOOT demo: distributed bootstrap support values for a phylogeny.
//
// A third application on the same distributed system — the paper's point
// is that the platform is programmable, not single-purpose. Replicates are
// farmed out to donors; support percentages annotate the reference tree.
//
//   dboot_demo [alignment.fasta [config.txt]]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "dboot/dboot.hpp"
#include "dist/client.hpp"
#include "dist/server.hpp"
#include "phylo/simulate.hpp"
#include "util/stopwatch.hpp"

using namespace hdcs;

namespace {
std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) throw IoError(std::string("cannot open ") + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}
}  // namespace

int main(int argc, char** argv) {
  phylo::Alignment alignment;
  Config file_cfg;
  if (argc >= 2) {
    alignment = phylo::Alignment::from_fasta(read_file(argv[1]));
    if (argc >= 3) file_cfg = Config::load(argv[2]);
  } else {
    std::puts("no alignment given; simulating 12 taxa x 800 sites (JC69)");
    Rng rng(77);
    auto tree = phylo::random_tree(rng, {12, 0.12, "taxon"});
    auto model = phylo::SubstModel::jc69();
    alignment = phylo::simulate_alignment(rng, tree, model,
                                          phylo::RateModel::uniform(), {800});
    file_cfg = Config::parse("replicates = 200\nseed = 5\n");
  }
  auto config = dboot::DBootConfig::from_config(file_cfg);
  std::printf("alignment: %zu taxa x %zu sites, %zu bootstrap replicates\n",
              alignment.taxon_count(), alignment.site_count(),
              config.replicates);

  dboot::register_algorithm();
  dist::ServerConfig scfg;
  scfg.policy_spec = "adaptive:0.1";
  scfg.scheduler.bounds.min_ops = 1;
  dist::Server server(scfg);
  server.start();
  auto dm = std::make_shared<dboot::DBootDataManager>(alignment, config);
  auto pid = server.submit_problem(dm);

  Stopwatch watch;
  std::vector<std::thread> donors;
  for (int i = 0; i < 4; ++i) {
    donors.emplace_back([&server, i] {
      dist::ClientConfig ccfg;
      ccfg.server_port = server.port();
      ccfg.name = "donor-" + std::to_string(i);
      dist::Client(ccfg).run();
    });
  }
  for (auto& d : donors) d.join();
  server.wait_for_problem(pid);
  auto stats = server.stats();
  server.stop();

  auto result = dm->result();
  std::printf("done in %.2fs (%llu units)\n\nreference NJ tree:\n%s\n\n",
              watch.seconds(),
              static_cast<unsigned long long>(stats.units_issued),
              result.reference_newick.c_str());

  std::printf("%-8s %s\n", "support", "split (smaller side)");
  for (const auto& [split, count] : result.support) {
    std::string members;
    for (const auto& name : split) {
      if (!members.empty()) members += ", ";
      members += name;
    }
    std::printf("%6.1f%%  {%s}\n", result.support_percent(split),
                members.c_str());
  }
  return 0;
}
