// DSEARCH demo: sensitive database searching over the distributed system.
//
// Mirrors the paper's workflow (§3.1): inputs are a FASTA database, FASTA
// queries, a scoring scheme and a configuration file. With no arguments a
// synthetic protein database with planted homolog families is generated so
// the demo is self-contained; pass paths to use real files:
//
//   dsearch_demo [database.fasta queries.fasta [config.txt]]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "bio/seqgen.hpp"
#include "dist/client.hpp"
#include "dist/server.hpp"
#include "dsearch/dsearch.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace hdcs;

namespace {
std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) throw IoError(std::string("cannot open ") + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}
}  // namespace

int main(int argc, char** argv) {
  std::vector<bio::Sequence> database, queries;
  Config file_cfg;

  if (argc >= 3) {
    database = bio::parse_fasta_auto(read_file(argv[1]));
    queries = bio::parse_fasta_auto(read_file(argv[2]));
    if (argc >= 4) file_cfg = Config::load(argv[3]);
  } else {
    std::puts("no inputs given; generating a synthetic protein database");
    Rng rng(2005);
    queries = bio::make_queries(rng, 2, 120, bio::Alphabet::kProtein);
    bio::DatabaseSpec spec;
    spec.num_sequences = 400;
    spec.mean_length = 150;
    spec.planted_homologs_per_query = 5;
    database = bio::make_database(rng, spec, queries);
    file_cfg = Config::parse(
        "algorithm = smith-waterman\n"
        "scoring = blosum62\n"
        "top_k = 8\n");
  }
  auto config = dsearch::DSearchConfig::from_config(file_cfg);
  std::printf("database: %zu sequences (%zu residues), %zu queries, "
              "algorithm=%s scoring=%s\n",
              database.size(), bio::total_residues(database), queries.size(),
              bio::to_string(config.mode), config.scoring.c_str());

  // Serial reference timing.
  Stopwatch serial_watch;
  auto serial = dsearch::search_serial(queries, database, config);
  double serial_s = serial_watch.seconds();

  // Distributed run: one server + four donor threads over loopback.
  dsearch::register_algorithm();
  dist::ServerConfig scfg;
  scfg.policy_spec = "adaptive:0.1";
  scfg.scheduler.bounds.min_ops = 10'000;
  dist::Server server(scfg);
  server.start();
  auto dm = std::make_shared<dsearch::DSearchDataManager>(queries, database,
                                                          config);
  auto pid = server.submit_problem(dm);

  Stopwatch dist_watch;
  std::vector<std::thread> donors;
  for (int i = 0; i < 4; ++i) {
    donors.emplace_back([&server, i] {
      dist::ClientConfig ccfg;
      ccfg.server_port = server.port();
      ccfg.name = "donor-" + std::to_string(i);
      dist::Client(ccfg).run();
    });
  }
  for (auto& d : donors) d.join();
  server.wait_for_problem(pid);
  double dist_s = dist_watch.seconds();
  auto result = dm->result();
  auto stats = server.stats();
  server.stop();

  if (result != serial) {
    std::puts("ERROR: distributed result differs from serial reference!");
    return 1;
  }
  std::printf("distributed == serial  (serial %.2fs, distributed %.2fs on one "
              "box, %llu units)\n",
              serial_s, dist_s,
              static_cast<unsigned long long>(stats.units_issued));

  const auto& score_stats = dm->score_statistics();
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::printf("\n=== hits for %s (background: mean %.1f, sd %.1f over %llu "
                "sequences) ===\n",
                queries[q].id.c_str(), score_stats[q].mean(),
                score_stats[q].stddev(),
                static_cast<unsigned long long>(score_stats[q].count));
    std::printf("%4s  %-20s %8s %8s\n", "rank", "subject", "score", "z");
    for (std::size_t rank = 0; rank < result[q].size(); ++rank) {
      const auto& hit = result[q][rank];
      std::printf("%4zu  %-20s %8lld %8.1f\n", rank + 1, hit.db_id.c_str(),
                  static_cast<long long>(hit.score),
                  score_stats[q].z_score(static_cast<double>(hit.score)));
    }
  }
  return 0;
}
