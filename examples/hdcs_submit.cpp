// hdcs_submit: the deployable server-side program.
//
// Starts the distributed server, submits one problem described by a config
// file (the paper's user workflow: "they just provide a DataManager, an
// Algorithm, additional required classes, and data to be processed"),
// waits for donors to finish it, and writes the result.
//
// Usage:
//   hdcs_submit --app dsearch --db db.fasta --queries q.fasta
//               [--config search.cfg] [--port 4090] [--output hits.txt]
//               [--checkpoint state.ckpt] [--checkpoint-interval 30]
//               [--replicas 2] [--quorum 2] [--spot-check 0.05]
//               [--wal-dir state.wal] [--standby-of HOST:PORT]
//               [--failover-timeout 2]
//               [--durability continue|fail-stop] [--wal-budget-mb 0]
//               [--max-clients 0] [--blob-budget-mb 0]
//               [--io-threads 1] [--workers 4] [--max-write-buffer-mb 64]
//   hdcs_submit --app dprml  --alignment aln.fasta [--config ml.cfg] ...
//   hdcs_submit --app dboot  --alignment aln.fasta [--config boot.cfg] ...
//
// --checkpoint PATH makes the server autosave its scheduling state
// (durable tmp+fsync+rename writes) every --checkpoint-interval seconds;
// rerunning the same hdcs_submit command after a crash restores from the
// file and finishes the remaining units instead of starting over. The
// config file can also set max_attempts_per_unit to quarantine "poison"
// units that repeatedly kill donors (see docs/ROBUSTNESS.md).
//
// --wal-dir DIR turns on the write-ahead log: every accepted result is
// fsynced durable before its ack, so a kill -9 loses nothing (rerun the
// same command to replay). --standby-of HOST:PORT starts this process as a
// hot standby of a primary running with the same problems: it mirrors the
// primary's state live and promotes itself — bumping the fencing epoch —
// once the primary has been silent for --failover-timeout seconds. Point
// donors at both with  hdcs_donor --servers primary:P,standby:P.
//
// SIGINT/SIGTERM shut down gracefully: a final durable checkpoint is
// written and connected donors are told to stop (kShutdown on their next
// request) instead of relying on the autosave window.
//
// --durability picks what a WAL/checkpoint disk fault does: "continue"
// (default) keeps scheduling non-durably and re-arms when the disk
// recovers; "fail-stop" drains and exits with status 3 so an operator (or
// a supervisor) restarts onto healthy storage. --wal-budget-mb caps the
// WAL directory (forced compaction sheds folded segments before ENOSPC);
// --max-clients and --blob-budget-mb shed load with RetryLater NACKs that
// v7 donors honour with backoff. See docs/ROBUSTNESS.md.
//
// --replicas K enables result certification: every unit is computed by K
// distinct donors and merged only when --quorum digests agree (default:
// majority of K). Donors with a clean voting record run un-replicated,
// audited at random with probability --spot-check; donors that lose votes
// are re-replicated and eventually blacklisted.
//
// Donor machines then run:  hdcs_donor --host <ip> --port <port>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "dboot/dboot.hpp"
#include "dist/server.hpp"
#include "dprml/dprml.hpp"
#include "dsearch/dsearch.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace hdcs;

namespace {

/// Set by the SIGINT/SIGTERM handler; the wait loop polls it and runs the
/// graceful-shutdown path (final checkpoint + drain) instead of dying with
/// up to checkpoint_interval_s of un-saved bookkeeping.
std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

struct Args {
  std::map<std::string, std::string> values;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw InputError("expected --flag, got: " + key);
      }
      if (i + 1 >= argc) throw InputError("missing value for " + key);
      args.values[key.substr(2)] = argv[++i];
    }
    return args;
  }

  [[nodiscard]] std::string get(const std::string& key) const {
    auto it = values.find(key);
    if (it == values.end()) throw InputError("missing required --" + key);
    return it->second;
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const {
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_output(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    std::fputs(text.c_str(), stdout);
    return;
  }
  std::ofstream out(path);
  if (!out) throw IoError("cannot write " + path);
  out << text;
  std::printf("result written to %s\n", path.c_str());
}

int run(int argc, char** argv) {
  auto args = Args::parse(argc, argv);
  std::string app = args.get("app");
  Config file_cfg = args.values.count("config")
                        ? Config::load(args.get("config"))
                        : Config();

  dist::ServerConfig scfg;
  scfg.port = static_cast<std::uint16_t>(parse_i64(args.get("port", "0")));
  scfg.policy_spec = file_cfg.get_str("policy", "adaptive:15");
  scfg.scheduler.lease_timeout = file_cfg.get_f64("lease_timeout", 600);
  scfg.scheduler.client_timeout = file_cfg.get_f64("client_timeout", 120);
  scfg.scheduler.hedge_endgame = file_cfg.get_bool("hedge_endgame", true);
  scfg.scheduler.max_attempts_per_unit =
      static_cast<int>(file_cfg.get_i64("max_attempts_per_unit", 0));
  // Result certification: --replicas K leases every unit to K distinct
  // donors and accepts a payload only on --quorum agreeing digests
  // (default: majority). Trusted donors drop back to one copy, audited
  // with probability --spot-check. See docs/ROBUSTNESS.md.
  scfg.scheduler.replication_factor = static_cast<int>(parse_i64(args.get(
      "replicas", file_cfg.get_str("replication_factor", "1"))));
  scfg.scheduler.quorum = static_cast<int>(
      parse_i64(args.get("quorum", file_cfg.get_str("quorum", "0"))));
  scfg.scheduler.spot_check_rate = parse_f64(args.get(
      "spot-check", file_cfg.get_str("spot_check_rate", "0.05")));
  scfg.checkpoint_path = args.get("checkpoint", "");
  scfg.checkpoint_interval_s = parse_f64(args.get("checkpoint-interval", "30"));
  // Durability + failover (docs/ROBUSTNESS.md): --wal-dir logs every core
  // mutation (results fsynced before ack); --standby-of makes this process
  // a hot standby that mirrors the named primary and promotes when its
  // stream goes silent for --failover-timeout seconds.
  scfg.wal_dir = args.get("wal-dir", "");
  std::string standby_of = args.get("standby-of", "");
  if (!standby_of.empty()) {
    auto colon = standby_of.rfind(':');
    if (colon == std::string::npos) {
      throw InputError("--standby-of expects HOST:PORT, got: " + standby_of);
    }
    scfg.primary_host = standby_of.substr(0, colon);
    scfg.primary_port =
        static_cast<std::uint16_t>(parse_i64(standby_of.substr(colon + 1)));
  }
  scfg.failover_timeout_s = parse_f64(args.get("failover-timeout", "2"));
  // Storage-fault posture + overload control (docs/ROBUSTNESS.md).
  std::string durability = args.get("durability", "continue");
  if (durability == "fail-stop") {
    scfg.durability_mode = dist::DurabilityMode::kFailStop;
  } else if (durability != "continue") {
    throw InputError("--durability expects continue|fail-stop, got: " +
                     durability);
  }
  scfg.wal_dir_budget_bytes = static_cast<std::uint64_t>(
      parse_i64(args.get("wal-budget-mb", "0"))) * 1024 * 1024;
  scfg.max_clients = static_cast<int>(parse_i64(args.get("max-clients", "0")));
  scfg.blob_inflight_budget_bytes = static_cast<std::size_t>(
      parse_i64(args.get("blob-budget-mb", "0"))) * 1024 * 1024;
  // Event-loop I/O: --io-threads epoll loops + --workers scheduler/disk
  // workers are the whole thread budget no matter how many donors connect;
  // --max-write-buffer-mb bounds each connection's write queue before
  // backpressure pauses its reads (docs/PROTOCOL.md).
  scfg.io_threads = static_cast<int>(parse_i64(args.get("io-threads", "1")));
  scfg.worker_threads = static_cast<int>(parse_i64(args.get("workers", "4")));
  scfg.max_write_buffer_bytes = static_cast<std::size_t>(
      parse_i64(args.get("max-write-buffer-mb", "64"))) * 1024 * 1024;

  // --trace FILE appends the structured scheduling event log (JSONL);
  // summarise it afterwards with tools/trace_summary.
  obs::Tracer tracer;
  std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    tracer.open(trace_path);
    scfg.tracer = &tracer;
  }

  std::shared_ptr<dist::DataManager> dm;
  if (app == "dsearch") {
    dsearch::register_algorithm();
    auto db = bio::parse_fasta_auto(read_file(args.get("db")));
    auto queries = bio::parse_fasta_auto(read_file(args.get("queries")));
    dm = std::make_shared<dsearch::DSearchDataManager>(
        queries, db, dsearch::DSearchConfig::from_config(file_cfg));
  } else if (app == "dprml") {
    dprml::register_algorithm();
    auto aln = phylo::Alignment::from_fasta(read_file(args.get("alignment")));
    dm = std::make_shared<dprml::DPRmlDataManager>(
        aln, dprml::DPRmlConfig::from_config(file_cfg));
  } else if (app == "dboot") {
    dboot::register_algorithm();
    auto aln = phylo::Alignment::from_fasta(read_file(args.get("alignment")));
    dm = std::make_shared<dboot::DBootDataManager>(
        aln, dboot::DBootConfig::from_config(file_cfg));
  } else {
    throw InputError("unknown --app '" + app + "' (dsearch | dprml | dboot)");
  }

  dist::Server server(scfg);
  server.start();
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  auto keep_dm = dm;  // results are read back through the concrete manager
  auto pid = server.submit_problem(dm);
  std::printf("serving problem %llu on 127.0.0.1:%u%s — point donors here "
              "(hdcs_donor --host 127.0.0.1 --port %u)\n",
              static_cast<unsigned long long>(pid), server.port(),
              server.is_standby() ? " [standby]" : "",
              server.port());

  // Poll so SIGINT/SIGTERM can interrupt the wait: on a signal, write a
  // final durable checkpoint (best effort) and drain — donors get a clean
  // kShutdown instead of a dead socket, and nothing depends on the last
  // autosave having happened recently.
  while (!server.wait_for_problem(pid, 0.2)) {
    if (server.storage_failed()) {
      // Fail-stop tripped: the server is already draining (donors keep
      // their buffered results). Save what the (possibly dead) disk will
      // take, stop, and exit distinctly so supervisors can tell "disk
      // gone" from an ordinary crash.
      std::fprintf(stderr,
                   "storage failure (fail-stop): draining and exiting\n");
      try {
        server.save_checkpoint();
      } catch (const Error& e) {
        std::fprintf(stderr, "final checkpoint failed: %s\n", e.what());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      server.stop();
      return 3;
    }
    int sig = g_signal.load();
    if (sig != 0) {
      std::fprintf(stderr, "signal %d: checkpointing and draining\n", sig);
      try {
        server.save_checkpoint();
      } catch (const Error& e) {
        std::fprintf(stderr, "final checkpoint failed: %s\n", e.what());
      }
      server.drain();
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      server.stop();
      return 128 + sig;
    }
  }
  auto stats = server.stats();
  std::printf("complete: %llu units (%llu reissued, %llu hedged)\n",
              static_cast<unsigned long long>(stats.units_issued),
              static_cast<unsigned long long>(stats.units_reissued),
              static_cast<unsigned long long>(stats.units_hedged));

  // Render the result for humans.
  std::ostringstream out;
  if (app == "dsearch") {
    auto result =
        std::static_pointer_cast<dsearch::DSearchDataManager>(keep_dm)->result();
    for (std::size_t q = 0; q < result.size(); ++q) {
      out << "query " << q << "\n";
      for (std::size_t rank = 0; rank < result[q].size(); ++rank) {
        out << "  " << (rank + 1) << "\t" << result[q][rank].db_id << "\t"
            << result[q][rank].score << "\n";
      }
    }
  } else if (app == "dprml") {
    auto result =
        std::static_pointer_cast<dprml::DPRmlDataManager>(keep_dm)->result();
    out << "logL\t" << format_f64(result.log_likelihood, 6) << "\n"
        << result.newick << "\n";
  } else {
    auto result =
        std::static_pointer_cast<dboot::DBootDataManager>(keep_dm)->result();
    out << result.reference_newick << "\n";
    for (const auto& [split, count] : result.support) {
      out << format_f64(result.support_percent(split), 1) << "%\t{";
      bool first = true;
      for (const auto& name : split) {
        if (!first) out << ",";
        out << name;
        first = false;
      }
      out << "}\n";
    }
  }
  write_output(args.get("output", "-"), out.str());
  server.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
