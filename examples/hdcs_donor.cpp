// hdcs_donor: the deployable donor-side program.
//
// Run this as a low-priority background service on any spare machine (the
// paper deployed it on ~200 lab PCs): it connects to the server, measures
// its own speed, and donates cycles until told to stop.
//
// Usage:
//   hdcs_donor --host 10.0.0.1 --port 4090 [--name lab3-pc07]
//              [--persist true] [--throttle 1] [--cpus 2] [--threads 1]
//              [--max-connect-attempts 8] [--backoff-initial 0.05]
//              [--backoff-max 2] [--servers 10.0.0.1:4090,10.0.0.2:4090]
//
// --servers A:P,B:P
//                 ordered failover list (supersedes --host/--port): the
//                 donor sticks with the endpoint that last answered and
//                 rotates to the next on a failed connect or handshake —
//                 so listing a primary and its hot standby keeps the donor
//                 working through a failover (docs/ROBUSTNESS.md).
// --persist true  keeps polling for new problems forever (service mode);
//                 the default exits once all submitted problems finish.
// --throttle N    pretends to be an N-times slower machine (testing aid).
// --cpus N        runs N independent donor clients (one per CPU, each with
//                 its own connection and work units).
// --threads N     worker threads *inside* each unit (deterministic merge;
//                 the result payload is byte-identical to --threads 1).
//                 Prefer --cpus for throughput; --threads for latency on
//                 large units. See docs/KERNELS.md.
// --max-connect-attempts N
//                 consecutive failed connects before giving up; 0 retries
//                 forever (the right setting for a deployed service, and
//                 the default when --persist true). 1 = fail fast.
// --backoff-initial S / --backoff-max S
//                 reconnect backoff window: the delay starts at the
//                 initial value, doubles per failure up to the max, with
//                 per-donor jitter. See docs/ROBUSTNESS.md.
// --cache-dir D   persist the blob cache (database chunks, stage trees)
//                 under directory D so a restarted donor skips
//                 re-downloading blobs it already has. Empty = memory only.
// --cache-mb N / --cache-disk-mb N
//                 memory / disk budgets for that cache (default 64 / 256).
// --protocol V    speak protocol version V (3..7); 3 disables the
//                 blob cache path for servers predating the v4 data
//                 plane; 4 omits the v5 span-profile trailer; 5 omits
//                 the v6 epoch echo (its results cannot be fenced after
//                 a failover).
// --corrupt-rate P [--corrupt-seed N]
//                 fault injection (test-only): corrupt fraction P of
//                 result payloads before submitting — a "lying donor"
//                 for exercising the server's replication voting. The
//                 corrupted bytes carry a matching digest, so only
//                 quorum voting catches them. Deterministic per
//                 (seed, name, unit).

#include <cstdio>
#include <map>

#include "dboot/dboot.hpp"
#include "dist/client.hpp"
#include "dprml/dprml.hpp"
#include "dsearch/dsearch.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace hdcs;

int main(int argc, char** argv) {
  try {
    std::map<std::string, std::string> args;
    for (int i = 1; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) throw InputError("expected --flag: " + key);
      args[key.substr(2)] = argv[i + 1];
    }
    auto get = [&](const std::string& key, const std::string& def) {
      auto it = args.find(key);
      return it == args.end() ? def : it->second;
    };

    // A donor binary must carry every Algorithm it may be asked to run
    // (the C++ stand-in for Java's mobile code; see dist/registry.hpp).
    dsearch::register_algorithm();
    dprml::register_algorithm();
    dboot::register_algorithm();

    dist::ClientConfig cfg;
    std::string servers = get("servers", "");
    if (!servers.empty()) {
      for (const auto& entry : split(servers, ',')) {
        auto colon = entry.rfind(':');
        if (colon == std::string::npos)
          throw InputError("--servers expects HOST:PORT,... got: " + entry);
        cfg.servers.push_back(
            {entry.substr(0, colon),
             static_cast<std::uint16_t>(parse_i64(entry.substr(colon + 1)))});
      }
    } else {
      cfg.server_host = get("host", "127.0.0.1");
      cfg.server_port = static_cast<std::uint16_t>(parse_i64(get("port", "")));
    }
    cfg.name = get("name", "donor");
    cfg.throttle = parse_f64(get("throttle", "1"));
    cfg.exit_when_idle = !parse_bool(get("persist", "false"));
    auto threads = parse_i64(get("threads", "1"));
    if (threads < 1) throw InputError("--threads must be >= 1");
    cfg.exec_threads = static_cast<std::size_t>(threads);
    // A persistent donor should outlast any server outage by default; an
    // on-demand donor keeps the bounded default so typos fail fast.
    cfg.max_connect_attempts = static_cast<int>(parse_i64(
        get("max-connect-attempts", cfg.exit_when_idle ? "8" : "0")));
    cfg.backoff_initial_s = parse_f64(get("backoff-initial", "0.05"));
    cfg.backoff_max_s = parse_f64(get("backoff-max", "2"));
    if (cfg.backoff_initial_s <= 0 || cfg.backoff_max_s < cfg.backoff_initial_s)
      throw InputError("--backoff-max must be >= --backoff-initial > 0");
    cfg.corrupt_rate = parse_f64(get("corrupt-rate", "0"));
    if (cfg.corrupt_rate < 0 || cfg.corrupt_rate > 1)
      throw InputError("--corrupt-rate must be in [0, 1]");
    cfg.corrupt_seed =
        static_cast<std::uint64_t>(parse_i64(get("corrupt-seed", "0")));
    cfg.blob_cache_dir = get("cache-dir", "");
    cfg.blob_cache_bytes =
        static_cast<std::size_t>(parse_i64(get("cache-mb", "64"))) * 1024 * 1024;
    cfg.blob_cache_disk_bytes =
        static_cast<std::size_t>(parse_i64(get("cache-disk-mb", "256"))) * 1024 *
        1024;
    auto protocol = parse_i64(get("protocol", "7"));
    if (protocol < net::kMinProtocolVersion || protocol > net::kProtocolVersion)
      throw InputError("--protocol must be 3..7");
    cfg.protocol_version = static_cast<int>(protocol);

    int cpus = static_cast<int>(parse_i64(get("cpus", "1")));

    set_log_level(LogLevel::kInfo);
    const std::string& host0 =
        cfg.servers.empty() ? cfg.server_host : cfg.servers.front().host;
    std::uint16_t port0 =
        cfg.servers.empty() ? cfg.server_port : cfg.servers.front().port;
    std::printf("donating %d cpu(s) to %s:%u%s as '%s'%s\n", cpus,
                host0.c_str(), port0,
                cfg.servers.size() > 1 ? " (+failover)" : "", cfg.name.c_str(),
                cfg.exit_when_idle ? "" : " (service mode)");
    auto all_stats = dist::Client::run_pool(cfg, cpus);
    std::uint64_t units = 0;
    double seconds = 0;
    for (const auto& s : all_stats) {
      units += s.units_processed;
      seconds += s.compute_seconds;
    }
    std::printf("done: %llu units processed, %.1f s of compute donated\n",
                static_cast<unsigned long long>(units), seconds);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::fprintf(stderr,
                 "usage: hdcs_donor --host <ip> --port <port> [--name n] "
                 "[--servers a:p,b:p] "
                 "[--persist true|false] [--throttle x] [--cpus n] "
                 "[--threads n] [--max-connect-attempts n] "
                 "[--backoff-initial s] [--backoff-max s] [--cache-dir d] "
                 "[--cache-mb n] [--cache-disk-mb n] [--protocol 3..7]\n");
    return 1;
  }
}
