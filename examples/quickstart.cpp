// Quickstart: write a Problem for the distributed system in ~60 lines.
//
// The user-facing programming model is exactly the paper's (§2.1): extend
// DataManager (how to partition the problem and merge results, server side)
// and Algorithm (the computation, client side), register the Algorithm,
// submit the Problem. Here: numerically integrate f(x) = 4/(1+x^2) over
// [0,1] — i.e. compute pi — by splitting the interval into work units.
//
// This example runs everything in one process: a real TCP server and three
// real TCP donor clients on loopback, which is also how the integration
// tests exercise the system.

#include <cmath>
#include <cstdio>
#include <thread>

#include "dist/client.hpp"
#include "dist/local_runner.hpp"
#include "dist/server.hpp"
#include "util/byte_buffer.hpp"

namespace {

using namespace hdcs;

constexpr const char* kPiAlgorithm = "quickstart-pi";
constexpr std::uint64_t kTotalSteps = 20'000'000;

// ---- client side: the computation ----------------------------------------
class PiAlgorithm final : public dist::Algorithm {
 public:
  void initialize(std::span<const std::byte> problem_data) override {
    ByteReader r(problem_data);
    total_steps_ = r.u64();
  }

  std::vector<std::byte> process(const dist::WorkUnit& unit) override {
    ByteReader r(unit.payload);
    std::uint64_t begin = r.u64();
    std::uint64_t end = r.u64();
    double h = 1.0 / static_cast<double>(total_steps_);
    double sum = 0;
    for (std::uint64_t i = begin; i < end; ++i) {
      double x = (static_cast<double>(i) + 0.5) * h;
      sum += 4.0 / (1.0 + x * x);
    }
    ByteWriter w;
    w.f64(sum * h);
    return w.take();
  }

 private:
  std::uint64_t total_steps_ = 0;
};

// ---- server side: partitioning and merging -------------------------------
class PiDataManager final : public dist::DataManager {
 public:
  explicit PiDataManager(std::uint64_t steps) : steps_(steps) {}

  std::string algorithm_name() const override { return kPiAlgorithm; }

  std::vector<std::byte> problem_data() const override {
    ByteWriter w;
    w.u64(steps_);
    return w.take();
  }

  std::optional<dist::WorkUnit> next_unit(const dist::SizeHint& hint) override {
    if (cursor_ >= steps_) return std::nullopt;
    auto span = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(hint.target_ops));
    std::uint64_t end = std::min(cursor_ + span, steps_);
    dist::WorkUnit unit;
    unit.cost_ops = static_cast<double>(end - cursor_);
    ByteWriter w;
    w.u64(cursor_);
    w.u64(end);
    unit.payload = w.take();
    cursor_ = end;
    ++outstanding_;
    return unit;
  }

  void accept_result(const dist::ResultUnit& result) override {
    ByteReader r(result.payload);
    pi_ += r.f64();
    --outstanding_;
  }

  bool is_complete() const override {
    return cursor_ >= steps_ && outstanding_ == 0;
  }

  std::vector<std::byte> final_result() const override {
    ByteWriter w;
    w.f64(pi_);
    return w.take();
  }

  double remaining_ops_estimate() const override {
    return static_cast<double>(steps_ - cursor_);
  }

 private:
  std::uint64_t steps_;
  std::uint64_t cursor_ = 0;
  int outstanding_ = 0;
  double pi_ = 0;
};

}  // namespace

int main() {
  using namespace hdcs;

  // 1. Register the client-side Algorithm under the name the DataManager
  //    advertises (the stand-in for Java mobile code).
  dist::AlgorithmRegistry::global().replace(
      kPiAlgorithm, [] { return std::make_unique<PiAlgorithm>(); });

  // 2. Start the server and submit the problem.
  dist::ServerConfig server_cfg;
  server_cfg.policy_spec = "adaptive:0.2";  // ~0.2 s of work per unit
  server_cfg.scheduler.bounds.min_ops = 100'000;
  server_cfg.scheduler.bounds.max_ops = 2'000'000;  // >= 10 units: the first
  // donor to ask must not walk off with the whole problem before the
  // others have even connected.
  dist::Server server(server_cfg);
  server.start();
  auto problem = server.submit_problem(
      std::make_shared<PiDataManager>(kTotalSteps));
  std::printf("server on 127.0.0.1:%u, problem %llu submitted\n", server.port(),
              static_cast<unsigned long long>(problem));

  // 3. Donate three "machines" (threads here; separate hosts in real life).
  std::vector<std::thread> donors;
  for (int i = 0; i < 3; ++i) {
    donors.emplace_back([&server, i] {
      dist::ClientConfig cfg;
      cfg.server_port = server.port();
      cfg.name = "donor-" + std::to_string(i);
      auto stats = dist::Client(cfg).run();
      std::printf("  %s processed %llu units\n", cfg.name.c_str(),
                  static_cast<unsigned long long>(stats.units_processed));
    });
  }
  for (auto& d : donors) d.join();

  // 4. Collect the merged answer.
  server.wait_for_problem(problem);
  auto bytes = server.final_result(problem);
  ByteReader r{std::span<const std::byte>(bytes)};
  double pi = r.f64();
  auto stats = server.stats();
  server.stop();

  std::printf("pi ~= %.10f (error %.2e)\n", pi, std::fabs(pi - 3.14159265358979));
  std::printf("units issued: %llu, reissued: %llu\n",
              static_cast<unsigned long long>(stats.units_issued),
              static_cast<unsigned long long>(stats.units_reissued));
  return 0;
}
