// hdcs_top — poll a live server's MSG_STATS endpoint.
//
// Connects to a running hdcs server (see hdcs_submit/hdcs_donor), sends a
// FetchStats frame and prints the JSON snapshot: scheduler counters
// (including the replication/vote counters and results_rejected_*), the
// per-client table — with each donor's `rep` reputation score,
// `blacklisted` flag and vote win/loss record — and the process metrics
// registry. No Hello handshake is needed; any connection may ask for
// stats.
//
//   hdcs_top --port 5005                    one snapshot, pretty-printed
//   hdcs_top --port 5005 --watch 2          repeat every 2 s until killed
//   hdcs_top --port 5005 --raw              the JSON document verbatim

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "dist/wire.hpp"
#include "net/message.hpp"
#include "util/error.hpp"

namespace {

struct Args {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double watch_s = -1;  // <0 = single shot
  bool raw = false;
  bool include_clients = true;
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      a.host = next();
    } else if (arg == "--port") {
      a.port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--watch") {
      a.watch_s = std::stod(next());
    } else if (arg == "--raw") {
      a.raw = true;
    } else if (arg == "--no-clients") {
      a.include_clients = false;
    } else {
      std::fprintf(stderr,
                   "usage: hdcs_top --port P [--host H] [--watch SECONDS] "
                   "[--raw] [--no-clients]\n");
      std::exit(arg == "--help" ? 0 : 2);
    }
  }
  if (a.port == 0) {
    std::fprintf(stderr, "hdcs_top: --port is required\n");
    std::exit(2);
  }
  return a;
}

/// Indent a one-line JSON document for terminal reading. Purely lexical
/// (tracks string/escape state and brace depth) — no parser needed.
std::string prettify(const std::string& json, int max_depth = 2) {
  std::string out;
  out.reserve(json.size() * 2);
  int depth = 0;
  bool in_string = false, escaped = false;
  auto newline = [&] {
    out += '\n';
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
  };
  for (char c : json) {
    if (in_string) {
      out += c;
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        out += c;
        break;
      case '{':
      case '[':
        out += c;
        ++depth;
        if (depth <= max_depth) newline();
        break;
      case '}':
      case ']':
        --depth;
        if (depth < max_depth) newline();
        out += c;
        break;
      case ',':
        out += c;
        if (depth <= max_depth) newline();
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string fetch_snapshot(const Args& a, std::uint64_t correlation) {
  auto stream = hdcs::net::TcpStream::connect(a.host, a.port);
  hdcs::dist::FetchStatsPayload req;
  req.include_clients = a.include_clients;
  hdcs::net::write_message(stream,
                           hdcs::dist::encode_fetch_stats(req, correlation));
  hdcs::net::Message reply = hdcs::net::read_message(stream);
  return hdcs::dist::decode_stats_snapshot(reply).json;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);
  std::uint64_t correlation = 1;
  try {
    for (;;) {
      std::string json = fetch_snapshot(args, correlation++);
      std::printf("%s\n", args.raw ? json.c_str() : prettify(json).c_str());
      if (args.watch_s < 0) break;
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::duration<double>(args.watch_s));
    }
  } catch (const hdcs::Error& e) {
    std::fprintf(stderr, "hdcs_top: %s\n", e.what());
    return 1;
  }
  return 0;
}
