// hdcs_top — poll a live server's MSG_STATS endpoint.
//
// Connects to a running hdcs server (see hdcs_submit/hdcs_donor), sends a
// FetchStats frame and prints the JSON snapshot: scheduler counters
// (including the replication/vote counters and results_rejected_*), the
// per-client table — with each donor's `rep` reputation score,
// `blacklisted` flag and vote win/loss record — and the process metrics
// registry. No Hello handshake is needed; any connection may ask for
// stats.
//
//   hdcs_top --port 5005                    one snapshot, pretty-printed
//   hdcs_top --port 5005 --watch 2          repeat every 2 s until killed
//   hdcs_top --port 5005 --raw              the JSON document verbatim

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "dist/wire.hpp"
#include "net/message.hpp"
#include "util/error.hpp"

namespace {

struct Args {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double watch_s = -1;  // <0 = single shot
  bool raw = false;
  bool include_clients = true;
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      a.host = next();
    } else if (arg == "--port") {
      a.port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--watch") {
      a.watch_s = std::stod(next());
    } else if (arg == "--raw") {
      a.raw = true;
    } else if (arg == "--no-clients") {
      a.include_clients = false;
    } else {
      std::fprintf(stderr,
                   "usage: hdcs_top --port P [--host H] [--watch SECONDS] "
                   "[--raw] [--no-clients]\n");
      std::exit(arg == "--help" ? 0 : 2);
    }
  }
  if (a.port == 0) {
    std::fprintf(stderr, "hdcs_top: --port is required\n");
    std::exit(2);
  }
  return a;
}

/// Indent a one-line JSON document for terminal reading. Purely lexical
/// (tracks string/escape state and brace depth) — no parser needed.
std::string prettify(const std::string& json, int max_depth = 2) {
  std::string out;
  out.reserve(json.size() * 2);
  int depth = 0;
  bool in_string = false, escaped = false;
  auto newline = [&] {
    out += '\n';
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
  };
  for (char c : json) {
    if (in_string) {
      out += c;
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        out += c;
        break;
      case '{':
      case '[':
        out += c;
        ++depth;
        if (depth <= max_depth) newline();
        break;
      case '}':
      case ']':
        --depth;
        if (depth < max_depth) newline();
        out += c;
        break;
      case ',':
        out += c;
        if (depth <= max_depth) newline();
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Lexically pull the number following `"key":` out of a JSON document.
/// Metric and counter names are unique across the snapshot, so no real
/// parser is needed. `from` restricts the search start (nested lookups).
double find_number(const std::string& json, const std::string& key,
                   std::size_t from = 0, bool* found = nullptr) {
  std::string needle = "\"" + key + "\":";
  std::size_t at = json.find(needle, from);
  if (found) *found = at != std::string::npos;
  if (at == std::string::npos) return 0;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

/// The `sub` number inside the object value of `"obj":{...}` — e.g. the
/// "sum" of one named histogram in the metrics registry snapshot.
double find_nested_number(const std::string& json, const std::string& obj,
                          const std::string& sub, bool* found = nullptr) {
  std::size_t at = json.find("\"" + obj + "\":{");
  if (at == std::string::npos) {
    if (found) *found = false;
    return 0;
  }
  return find_number(json, sub, at, found);
}

/// The string value following `"key":"` — empty when absent.
std::string find_string(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  std::size_t at = json.find(needle);
  if (at == std::string::npos) return {};
  std::size_t start = at + needle.size();
  std::size_t end = json.find('"', start);
  if (end == std::string::npos) return {};
  return json.substr(start, end - start);
}

/// One-glance header above the pretty JSON: donor count, scheduler
/// backlog, bulk-plane cache hit-rate, and the mean per-phase span costs
/// from the v5 unit profiles (absent until a v5 donor submits).
void print_digest(const std::string& json) {
  double connected = find_number(json, "connected_clients");
  double pending = find_number(json, "units_pending");
  double hits = find_number(json, "bulk.blobs_cache_hit");
  double sent = find_number(json, "bulk.blobs_sent");
  std::string tier = find_string(json, "simd_tier");
  // v6: role (primary vs unpromoted standby), fencing epoch, and the WAL
  // position — absent from pre-v6 servers, so only printed when present.
  std::string role = find_string(json, "role");
  if (!role.empty()) {
    double epoch = find_number(json, "epoch");
    bool has_lsn = false;
    double lsn = find_number(json, "wal_lsn", 0, &has_lsn);
    std::printf("%s | epoch %.0f", role.c_str(), epoch);
    if (has_lsn && lsn > 0) std::printf(" | wal lsn %.0f", lsn);
    // v7: the durability state machine (durable / degraded / none) — the
    // operator's first stop when a disk is dying under the server.
    std::string durability = find_string(json, "durability");
    if (!durability.empty() && durability != "none") {
      std::printf(" | %s", durability.c_str());
    }
    std::printf("\n");
  }
  std::printf("donors %.0f | pending %.0f", connected, pending);
  if (!tier.empty()) std::printf(" | simd %s", tier.c_str());
  if (hits + sent > 0) {
    std::printf(" | blob cache hit-rate %.1f%% (%.0f hit / %.0f sent)",
                100.0 * hits / (hits + sent), hits, sent);
  }
  std::printf("\n");
  // Event-loop health (epoll servers): registered fds, per-connection
  // write-queue high water, and loop lag p99 — how late the loop thread
  // runs its posted work, the first number to look at when heartbeat RTTs
  // climb. Absent from pre-loop servers, so only printed when present.
  bool has_loop = false;
  double loop_fds = find_number(json, "net.loop.fds", 0, &has_loop);
  if (has_loop) {
    std::printf("loop: %.0f fds", loop_fds);
    double hwm = find_number(json, "net.loop.write_queue_hwm");
    std::printf(" | write-queue hwm %.0f KiB", hwm / 1024.0);
    bool has_lag = false;
    double lag_count = find_nested_number(json, "net.loop.lag_s", "count",
                                          &has_lag);
    if (has_lag && lag_count > 0) {
      double lag_p99 = find_nested_number(json, "net.loop.lag_s", "p99");
      std::printf(" | lag p99 %.3gms", 1e3 * lag_p99);
    }
    double stalls = find_number(json, "net.loop.backpressure_stalls");
    double shed = find_number(json, "net.loop.connections_shed");
    if (stalls > 0) std::printf(" | backpressure stalls %.0f", stalls);
    if (shed > 0) std::printf(" | shed %.0f", shed);
    std::printf("\n");
  }
  constexpr const char* kPhases[] = {"queue_wait", "blob_fetch", "decompress",
                                     "compute",    "encode",     "submit"};
  std::string line;
  for (const char* phase : kPhases) {
    std::string name = std::string("unit.") + phase + "_s";
    bool found = false;
    double count = find_nested_number(json, name, "count", &found);
    if (!found || count <= 0) continue;
    double sum = find_nested_number(json, name, "sum");
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %s %.3gms", phase,
                  1e3 * sum / count);
    line += buf;
  }
  if (!line.empty()) std::printf("phase means:%s\n", line.c_str());
}

std::string fetch_snapshot(const Args& a, std::uint64_t correlation) {
  auto stream = hdcs::net::TcpStream::connect(a.host, a.port);
  hdcs::dist::FetchStatsPayload req;
  req.include_clients = a.include_clients;
  hdcs::net::write_message(stream,
                           hdcs::dist::encode_fetch_stats(req, correlation));
  hdcs::net::Message reply = hdcs::net::read_message(stream);
  return hdcs::dist::decode_stats_snapshot(reply).json;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);
  std::uint64_t correlation = 1;
  try {
    for (;;) {
      std::string json = fetch_snapshot(args, correlation++);
      if (args.raw) {
        std::printf("%s\n", json.c_str());
      } else {
        print_digest(json);
        std::printf("%s\n", prettify(json).c_str());
      }
      if (args.watch_s < 0) break;
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::duration<double>(args.watch_s));
    }
  } catch (const hdcs::Error& e) {
    std::fprintf(stderr, "hdcs_top: %s\n", e.what());
    return 1;
  }
  return 0;
}
