// Campus deployment simulation: the paper's testbed at full scale.
//
// "We have deployed the distributed system in our university across 3
// locations ... approximately 200 desktop PCs of various modest
// specifications (Pentium IIs up to Pentium IVs ...) and on every node of
// an IBM Linux cluster (32 Dual PIII 1GHz nodes) with all machines
// connecting via a 100 Mbit/s network to a single server" (§3).
//
// This example reconstructs that fleet in the discrete-event simulator and
// runs a DSEARCH job plus two DPRml instances across it concurrently,
// reporting per-class contribution statistics — the kind of telemetry the
// original operators would have watched.

#include <cstdio>
#include <cstring>
#include <map>

#include "bio/seqgen.hpp"
#include "dprml/dprml.hpp"
#include "dsearch/dsearch.hpp"
#include "obs/trace.hpp"
#include "phylo/simulate.hpp"
#include "sim/sim_driver.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

using namespace hdcs;

int main(int argc, char** argv) {
  // Optional: --trace FILE writes the scheduling event log (virtual-time
  // JSONL, same schema as a live server's trace).
  obs::Tracer tracer;
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];
  }
  try {
    if (!trace_path.empty()) tracer.open(trace_path);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  set_log_level(LogLevel::kError);
  Rng rng(42);
  auto fleet = sim::campus_fleet(rng, 200);
  std::printf("campus fleet: %zu donor CPUs (200 desktops + 32 dual-CPU "
              "cluster nodes)\n",
              fleet.size());

  sim::SimConfig cfg;
  cfg.reference_ops_per_sec = 5e7;  // a PIII-1GHz in abstract ops/s
  cfg.policy_spec = "adaptive:15";
  cfg.scheduler.lease_timeout = 3600;
  cfg.scheduler.bounds.min_ops = 1e5;
  cfg.seed = 7;
  if (tracer.enabled()) cfg.tracer = &tracer;

  sim::SimDriver driver(cfg, fleet);

  // Workload 1: a DSEARCH job.
  dsearch::register_algorithm();
  Rng wl(99);
  auto queries = bio::make_queries(wl, 2, 150, bio::Alphabet::kProtein);
  bio::DatabaseSpec dbspec;
  dbspec.num_sequences = 4000;
  dbspec.mean_length = 140;
  auto database = bio::make_database(wl, dbspec, queries);
  dsearch::DSearchConfig dcfg;
  dcfg.top_k = 10;
  // Present the database as ~2500x larger to the scheduler/simulator so
  // the virtual job is hours long (like the paper's searches) while the
  // actual alignment work stays laptop-sized.
  dcfg.cost_scale = 2500;
  auto search_dm =
      std::make_shared<dsearch::DSearchDataManager>(queries, database, dcfg);
  auto search_pid = driver.add_problem(search_dm);

  // Workload 2+3: two DPRml instances (stochastic algorithm, multiple runs).
  dprml::register_algorithm();
  auto tree = phylo::random_tree(wl, {24, 0.1, "t"});
  auto model = phylo::SubstModel::jc69();
  auto alignment =
      phylo::simulate_alignment(wl, tree, model, phylo::RateModel::uniform(), {200});
  dprml::DPRmlConfig pcfg;
  pcfg.model_spec = "JC69";
  pcfg.branch_tolerance = 1e-2;
  pcfg.refine_passes = 1;
  std::vector<dist::ProblemId> tree_pids;
  for (int i = 0; i < 2; ++i) {
    auto icfg = pcfg;
    icfg.order_seed = static_cast<std::uint64_t>(i + 1);
    tree_pids.push_back(driver.add_problem(
        std::make_shared<dprml::DPRmlDataManager>(alignment, icfg)));
  }

  auto out = driver.run();

  std::printf("\nall problems complete at t = %.0f virtual seconds\n",
              out.makespan_s);
  std::printf("  DSEARCH finished at t = %.0f s\n",
              out.completion_time_s.at(search_pid));
  for (auto pid : tree_pids) {
    std::printf("  DPRml instance %llu finished at t = %.0f s\n",
                static_cast<unsigned long long>(pid),
                out.completion_time_s.at(pid));
  }
  std::printf("scheduler: %llu units issued, %llu reissued, mean donor "
              "utilization %.1f%%\n",
              static_cast<unsigned long long>(out.scheduler.units_issued),
              static_cast<unsigned long long>(out.scheduler.units_reissued),
              100.0 * out.mean_utilization());
  std::printf("network: %.1f MB moved in %llu messages\n",
              out.bytes_transferred / 1e6,
              static_cast<unsigned long long>(out.messages));

  // Contribution by machine class: group on the name prefix.
  std::map<std::string, std::pair<std::uint64_t, double>> by_class;
  for (const auto& m : out.machines) {
    std::string cls;
    if (m.name.rfind("cluster", 0) == 0) {
      cls = "cluster-dual-piii";  // collapse the 64 cluster CPUs
    } else {
      cls = m.name.substr(0, m.name.rfind('-'));
    }
    by_class[cls].first += m.units;
    by_class[cls].second += m.busy_s;
  }
  std::printf("\n%-22s %8s %12s\n", "machine class", "units", "busy (s)");
  for (const auto& [cls, stats] : by_class) {
    std::printf("%-22s %8llu %12.0f\n", cls.c_str(),
                static_cast<unsigned long long>(stats.first), stats.second);
  }
  return 0;
}
