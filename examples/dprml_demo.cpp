// DPRml demo: distributed phylogeny reconstruction by maximum likelihood.
//
// With no arguments a 16-taxon DNA alignment is simulated from a known
// random tree (so the demo can report how close the reconstruction is to
// the truth); pass an aligned FASTA plus optional config to run real data:
//
//   dprml_demo [alignment.fasta [config.txt]]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "dist/client.hpp"
#include "dist/server.hpp"
#include "dprml/dprml.hpp"
#include "phylo/distance.hpp"
#include "phylo/model_fit.hpp"
#include "phylo/simulate.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

using namespace hdcs;

namespace {
std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) throw IoError(std::string("cannot open ") + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}
}  // namespace

int main(int argc, char** argv) {
  phylo::Alignment alignment;
  Config file_cfg;
  std::optional<phylo::Tree> truth;

  if (argc >= 2) {
    alignment = phylo::Alignment::from_fasta(read_file(argv[1]));
    if (argc >= 3) file_cfg = Config::load(argv[2]);
  } else {
    std::puts("no alignment given; simulating 16 taxa x 600 sites (HKY85+G4)");
    Rng rng(1905);
    auto tree = phylo::random_tree(rng, {16, 0.1, "taxon"});
    Config params;
    params.set("kappa", "2.5");
    params.set("alpha", "0.6");
    auto spec = phylo::ModelSpec::parse("HKY85+G4", params);
    alignment =
        phylo::simulate_alignment(rng, tree, *spec.model, spec.rates, {600});
    truth = tree;
    file_cfg = Config::parse(
        "model = HKY85+G4\n"
        "kappa = 2.5\n"
        "alpha = 0.6\n"
        "branch_tolerance = 1e-3\n");
  }
  auto config = dprml::DPRmlConfig::from_config(file_cfg);
  std::printf("alignment: %zu taxa x %zu sites, model %s\n",
              alignment.taxon_count(), alignment.site_count(),
              config.model_spec.c_str());

  // Pre-flight model screening on the NJ tree (DPRml's pitch is good model
  // fit; this is how a user would pick the spec for the run).
  {
    auto patterns = phylo::compress(alignment);
    auto nj_guide = phylo::nj_tree(alignment);
    auto pi = phylo::empirical_base_frequencies(alignment);
    Config params;
    params.set("basefreq", format_f64(pi[0], 4) + "," + format_f64(pi[1], 4) +
                               "," + format_f64(pi[2], 4) + "," +
                               format_f64(pi[3], 4));
    auto kappa_fit =
        phylo::fit_scalar(patterns, nj_guide, "HKY85", params, "kappa", 0.5, 20);
    params.set("kappa", format_f64(kappa_fit.value, 6));
    auto alpha_fit = phylo::fit_scalar(patterns, nj_guide, "HKY85+G4", params,
                                       "alpha", 0.05, 10);
    params.set("alpha", format_f64(alpha_fit.value, 6));
    auto ranking = phylo::rank_models(
        patterns, nj_guide, {"JC69", "K80", "HKY85", "HKY85+G4"}, params);
    std::printf("\nmodel screening on the NJ guide tree (kappa~%.2f, "
                "alpha~%.2f):\n",
                kappa_fit.value, alpha_fit.value);
    std::printf("  %-10s %12s %6s %12s\n", "model", "logL", "k", "AIC");
    for (const auto& m : ranking) {
      std::printf("  %-10s %12.1f %6d %12.1f\n", m.spec.c_str(),
                  m.log_likelihood, m.free_parameters, m.aic);
    }
    std::printf("  -> AIC favours %s\n\n", ranking.front().spec.c_str());
  }

  // Distributed build: server + three donor threads.
  dprml::register_algorithm();
  dist::ServerConfig scfg;
  scfg.policy_spec = "adaptive:0.2";
  scfg.scheduler.bounds.min_ops = 1;
  dist::Server server(scfg);
  server.start();
  auto dm = std::make_shared<dprml::DPRmlDataManager>(alignment, config);
  auto pid = server.submit_problem(dm);

  Stopwatch watch;
  std::vector<std::thread> donors;
  for (int i = 0; i < 3; ++i) {
    donors.emplace_back([&server, i] {
      dist::ClientConfig ccfg;
      ccfg.server_port = server.port();
      ccfg.name = "donor-" + std::to_string(i);
      dist::Client(ccfg).run();
    });
  }
  for (auto& d : donors) d.join();
  server.wait_for_problem(pid);
  double elapsed = watch.seconds();
  auto result = dm->result();
  auto stats = server.stats();
  server.stop();

  std::printf("built in %.2fs, %llu work units, final log-likelihood %.4f\n",
              elapsed, static_cast<unsigned long long>(stats.units_issued),
              result.log_likelihood);
  std::printf("stagewise log-likelihoods:");
  for (double l : result.stage_log_likelihoods) std::printf(" %.1f", l);
  std::puts("");
  std::printf("\nML tree:\n%s\n", result.newick.c_str());

  auto built = phylo::Tree::parse_newick(result.newick);
  if (truth) {
    int rf = phylo::rf_distance(built, *truth);
    std::printf("\nRobinson-Foulds distance to the generating tree: %d %s\n", rf,
                rf == 0 ? "(exact recovery)" : "");
  }
  // Compare against the distance-based heuristic baseline (NJ).
  auto nj = phylo::nj_tree(alignment);
  auto spec = phylo::ModelSpec::parse(config.model_spec, config.model_params());
  phylo::LikelihoodEngine engine(phylo::compress(alignment), spec.model,
                                 spec.rates);
  double nj_logl = engine.optimize_all_branches(nj, 2, 1e-3);
  std::printf("NJ baseline log-likelihood after branch fitting: %.4f (ML %s)\n",
              nj_logl,
              result.log_likelihood >= nj_logl ? "wins or ties" : "LOSES");
  return 0;
}
