#pragma once
// DSEARCH: sensitive database searching using distributed computing
// (paper §3.1; Keane & Naughton, Bioinformatics 2004 [8]).
//
// The search "is parallelised by splitting the database into dynamically
// sized units that are subsequently searched on the donor machines", with
// granularity "dynamically controlled during each search to match the
// processing abilities of the current set of donor machines".
//
// Mapping onto the dist layer:
//   problem_data  = the query sequences + search configuration (small,
//                   shipped once per donor).
//   WorkUnit      = a dynamically sized database chunk — the sequences
//                   themselves ride in the unit payload, exactly as in the
//                   paper's design (donors never hold the whole database).
//   ResultUnit    = per-query top-k hits within the chunk.
//   merge         = exact top-k merge (safe because an element outside a
//                   chunk's top-k is dominated by k better elements and can
//                   never enter the global top-k).
//
// Inputs mirror the paper: "a FASTA database file, a FASTA query sequences
// file, a scoring scheme, and a configuration file".

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bio/align.hpp"
#include "bio/align_batch.hpp"
#include "bio/fasta.hpp"
#include "bio/scoring.hpp"
#include "dist/algorithm.hpp"
#include "dist/data_manager.hpp"
#include "dist/registry.hpp"
#include "util/byte_buffer.hpp"
#include "util/config.hpp"
#include "util/thread_pool.hpp"

namespace hdcs::dsearch {

inline constexpr const char* kAlgorithmName = "dsearch";

struct DSearchConfig {
  bio::AlignMode mode = bio::AlignMode::kLocal;
  std::string scoring = "blosum62";
  int gap_open = -1;    // -1 = scheme default
  int gap_extend = -1;  // -1 = scheme default
  std::size_t top_k = 20;
  std::size_t band = 16;  // banded mode only
  /// Simulation workload magnifier: multiplies every unit's virtual
  /// cost_ops (the database *appears* cost_scale times larger to the
  /// scheduler and the simulator) without changing what is computed.
  /// 1.0 for real deployments; see DESIGN.md on scaled-world simulation.
  double cost_scale = 1.0;

  /// Parse from a user config file ("algorithm", "scoring", "gap_open",
  /// "gap_extend", "top_k", "band"). Unknown algorithms/schemes throw.
  static DSearchConfig from_config(const Config& cfg);
  [[nodiscard]] bio::ScoringScheme make_scheme() const;
};

struct Hit {
  std::string db_id;
  std::int64_t score = 0;

  /// Ranking order: higher score first, then id for determinism.
  friend bool operator<(const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.db_id < b.db_id;
  }
  friend bool operator==(const Hit& a, const Hit& b) {
    return a.score == b.score && a.db_id == b.db_id;
  }
};

/// Per-query ranked hits; the search's final output.
using SearchResult = std::vector<std::vector<Hit>>;

/// Running moments of ALL alignment scores seen for one query (not just the
/// top-k): the background distribution a hit is judged against. Sensitive
/// search is about separating true homology from this background — the
/// z-score makes that separation explicit.
struct QueryScoreStats {
  std::uint64_t count = 0;
  double sum = 0;
  double sum_squares = 0;

  void add(double score) {
    count += 1;
    sum += score;
    sum_squares += score * score;
  }
  void merge(const QueryScoreStats& other) {
    count += other.count;
    sum += other.sum;
    sum_squares += other.sum_squares;
  }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0 : sum / static_cast<double>(count);
  }
  [[nodiscard]] double stddev() const;
  /// Standard score of `score` against the background; 0 if degenerate.
  [[nodiscard]] double z_score(double score) const;
};

/// Serial reference implementation (ground truth and the T(1) baseline).
/// Pass `stats` to also collect the per-query background distribution.
SearchResult search_serial(const std::vector<bio::Sequence>& queries,
                           const std::vector<bio::Sequence>& database,
                           const DSearchConfig& config,
                           std::vector<QueryScoreStats>* stats = nullptr);

/// The server-side half: chunks the database, merges hit lists.
class DSearchDataManager final : public dist::DataManager {
 public:
  DSearchDataManager(std::vector<bio::Sequence> queries,
                     std::vector<bio::Sequence> database, DSearchConfig config);

  [[nodiscard]] std::string algorithm_name() const override;
  [[nodiscard]] std::vector<std::byte> problem_data() const override;
  std::optional<dist::WorkUnit> next_unit(const dist::SizeHint& hint) override;
  void accept_result(const dist::ResultUnit& result) override;
  [[nodiscard]] bool is_complete() const override;
  [[nodiscard]] std::vector<std::byte> final_result() const override;
  [[nodiscard]] double remaining_ops_estimate() const override;

  /// Decoded final answer (same data as final_result()).
  [[nodiscard]] SearchResult result() const;
  /// Background score distribution per query (merged from every chunk).
  [[nodiscard]] const std::vector<QueryScoreStats>& score_statistics() const {
    return stats_;
  }

  [[nodiscard]] bool supports_snapshot() const override { return true; }
  void snapshot(ByteWriter& w) const override;
  void restore(ByteReader& r) override;

 private:
  std::vector<bio::Sequence> queries_;
  std::vector<bio::Sequence> database_;
  DSearchConfig config_;
  std::size_t total_query_len_ = 0;
  std::size_t cursor_ = 0;      // next database sequence to hand out
  int outstanding_ = 0;
  SearchResult merged_;         // running top-k per query
  std::vector<QueryScoreStats> stats_;  // background distribution per query
};

/// The client-side half: searches one chunk against all queries, through
/// the batch kernel layer (bio/align_batch.hpp) — query profiles are built
/// once per problem in initialize() and reused for every chunk.
class DSearchAlgorithm final : public dist::Algorithm {
 public:
  void initialize(std::span<const std::byte> problem_data) override;
  std::vector<std::byte> process(const dist::WorkUnit& unit) override;

  /// Split each chunk's database sequences into blocks scored on a
  /// util::ThreadPool. Blocks are merged back in database order and
  /// score sums are exact integer arithmetic, so the payload stays
  /// byte-identical to single-threaded execution (docs/KERNELS.md).
  void set_parallelism(std::size_t threads) override;

 private:
  std::vector<bio::Sequence> queries_;
  std::vector<bio::QueryProfile> profiles_;
  DSearchConfig config_;
  std::optional<bio::ScoringScheme> scheme_;
  std::size_t threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // created lazily on first chunk
};

/// Register DSearchAlgorithm under kAlgorithmName (idempotent).
void register_algorithm();

// ---- wire helpers (exposed for tests) ----
void encode_config(ByteWriter& w, const DSearchConfig& config);
DSearchConfig decode_config(ByteReader& r);
void encode_sequences(ByteWriter& w, const std::vector<bio::Sequence>& seqs);
std::vector<bio::Sequence> decode_sequences(ByteReader& r);
void encode_result(ByteWriter& w, const SearchResult& result);
SearchResult decode_result(ByteReader& r);
void encode_stats(ByteWriter& w, const std::vector<QueryScoreStats>& stats);
std::vector<QueryScoreStats> decode_stats(ByteReader& r);

/// Merge `incoming` into `accumulated` keeping the top-k of each query.
void merge_topk(SearchResult& accumulated, const SearchResult& incoming,
                std::size_t top_k);

}  // namespace hdcs::dsearch
