#include "dsearch/dsearch.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"
#include "util/strings.hpp"

namespace hdcs::dsearch {

DSearchConfig DSearchConfig::from_config(const Config& cfg) {
  DSearchConfig c;
  c.mode = bio::parse_align_mode(cfg.get_str("algorithm", "local"));
  c.scoring = to_lower(cfg.get_str("scoring", "blosum62"));
  c.gap_open = static_cast<int>(cfg.get_i64("gap_open", -1));
  c.gap_extend = static_cast<int>(cfg.get_i64("gap_extend", -1));
  auto top_k = cfg.get_i64("top_k", 20);
  if (top_k < 1) throw InputError("top_k must be >= 1");
  c.top_k = static_cast<std::size_t>(top_k);
  auto band = cfg.get_i64("band", 16);
  if (band < 1) throw InputError("band must be >= 1");
  c.band = static_cast<std::size_t>(band);
  c.cost_scale = cfg.get_f64("cost_scale", 1.0);
  if (c.cost_scale <= 0) throw InputError("cost_scale must be > 0");
  (void)c.make_scheme();  // validate the scoring name early
  return c;
}

bio::ScoringScheme DSearchConfig::make_scheme() const {
  return bio::ScoringScheme::from_name(scoring, gap_open, gap_extend);
}

double QueryScoreStats::stddev() const {
  if (count < 2) return 0;
  double m = mean();
  double var = sum_squares / static_cast<double>(count) - m * m;
  return var > 0 ? std::sqrt(var) : 0;
}

double QueryScoreStats::z_score(double score) const {
  double sd = stddev();
  if (sd <= 0) return 0;
  return (score - mean()) / sd;
}

// ---- wire helpers ----

void encode_config(ByteWriter& w, const DSearchConfig& config) {
  w.u8(static_cast<std::uint8_t>(config.mode));
  w.str(config.scoring);
  w.i32(config.gap_open);
  w.i32(config.gap_extend);
  w.u32(static_cast<std::uint32_t>(config.top_k));
  w.u32(static_cast<std::uint32_t>(config.band));
  w.f64(config.cost_scale);
}

DSearchConfig decode_config(ByteReader& r) {
  DSearchConfig c;
  c.mode = static_cast<bio::AlignMode>(r.u8());
  c.scoring = r.str();
  c.gap_open = r.i32();
  c.gap_extend = r.i32();
  c.top_k = r.u32();
  c.band = r.u32();
  c.cost_scale = r.f64();
  return c;
}

void encode_sequences(ByteWriter& w, const std::vector<bio::Sequence>& seqs) {
  w.u32(static_cast<std::uint32_t>(seqs.size()));
  for (const auto& s : seqs) {
    w.str(s.id);
    w.str(s.residues);
  }
}

std::vector<bio::Sequence> decode_sequences(ByteReader& r) {
  std::uint32_t n = r.u32();
  std::vector<bio::Sequence> seqs;
  seqs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    bio::Sequence s;
    s.id = r.str();
    s.residues = r.str();
    seqs.push_back(std::move(s));
  }
  return seqs;
}

void encode_result(ByteWriter& w, const SearchResult& result) {
  w.u32(static_cast<std::uint32_t>(result.size()));
  for (const auto& hits : result) {
    w.u32(static_cast<std::uint32_t>(hits.size()));
    for (const auto& h : hits) {
      w.str(h.db_id);
      w.i64(h.score);
    }
  }
}

SearchResult decode_result(ByteReader& r) {
  SearchResult result(r.u32());
  for (auto& hits : result) {
    hits.resize(r.u32());
    for (auto& h : hits) {
      h.db_id = r.str();
      h.score = r.i64();
    }
  }
  return result;
}

void encode_stats(ByteWriter& w, const std::vector<QueryScoreStats>& stats) {
  w.u32(static_cast<std::uint32_t>(stats.size()));
  for (const auto& s : stats) {
    w.u64(s.count);
    w.f64(s.sum);
    w.f64(s.sum_squares);
  }
}

std::vector<QueryScoreStats> decode_stats(ByteReader& r) {
  std::vector<QueryScoreStats> stats(r.u32());
  for (auto& s : stats) {
    s.count = r.u64();
    s.sum = r.f64();
    s.sum_squares = r.f64();
  }
  return stats;
}

void merge_topk(SearchResult& accumulated, const SearchResult& incoming,
                std::size_t top_k) {
  if (accumulated.size() != incoming.size()) {
    throw Error("merge_topk: query count mismatch");
  }
  for (std::size_t q = 0; q < accumulated.size(); ++q) {
    auto& acc = accumulated[q];
    acc.insert(acc.end(), incoming[q].begin(), incoming[q].end());
    std::sort(acc.begin(), acc.end());
    if (acc.size() > top_k) acc.resize(top_k);
  }
}

namespace {

/// Query profiles are built once per problem and shared read-only by every
/// block/thread (QueryProfile is immutable after construction).
std::vector<bio::QueryProfile> build_profiles(
    const std::vector<bio::Sequence>& queries,
    const bio::ScoringScheme& scheme) {
  std::vector<bio::QueryProfile> profiles;
  profiles.reserve(queries.size());
  for (const auto& q : queries) profiles.emplace_back(q.residues, scheme);
  return profiles;
}

/// Raw scores for database sequences [begin, end): scores[q][i - begin] is
/// profile q vs chunk[i]. The unit of work handed to pool threads.
struct BlockScores {
  std::vector<std::vector<std::int64_t>> scores;
  bio::BatchMetrics metrics;
};

BlockScores score_block(const std::vector<bio::QueryProfile>& profiles,
                        const std::vector<bio::Sequence>& chunk,
                        std::size_t begin, std::size_t end,
                        const DSearchConfig& config,
                        const bio::ScoringScheme& scheme) {
  // DP scratch is reused across blocks, chunks, and queries by each thread.
  static thread_local bio::AlignScratch scratch;
  BlockScores out;
  std::vector<std::string_view> views;
  views.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    views.emplace_back(chunk[i].residues);
  }
  out.scores.reserve(profiles.size());
  for (const auto& profile : profiles) {
    out.scores.push_back(bio::batch_align_scores(config.mode, profile, views,
                                                 scheme, config.band, scratch,
                                                 &out.metrics));
  }
  return out;
}

/// Score one chunk of database sequences against all queries; returns
/// per-query top-k (already sorted). With a pool, database sequences are
/// split into contiguous blocks scored concurrently and merged back in
/// database order; scores are integers (exact as doubles), so stats sums
/// and the hit ranking — hence the encoded payload — are byte-identical
/// for every thread count.
SearchResult search_chunk(const std::vector<bio::QueryProfile>& profiles,
                          const std::vector<bio::Sequence>& chunk,
                          const DSearchConfig& config,
                          const bio::ScoringScheme& scheme,
                          std::vector<QueryScoreStats>* stats = nullptr,
                          bio::BatchMetrics* metrics = nullptr,
                          ThreadPool* pool = nullptr) {
  std::vector<BlockScores> blocks;
  std::size_t n_blocks =
      pool ? std::min(pool->size(), chunk.size()) : std::size_t{1};
  if (n_blocks > 1) {
    // Contiguous split; block boundaries only affect which thread computes
    // a score, never its value or its merge position.
    std::vector<std::future<BlockScores>> futures;
    futures.reserve(n_blocks);
    std::size_t per_block = (chunk.size() + n_blocks - 1) / n_blocks;
    for (std::size_t b = 0; b < n_blocks; ++b) {
      std::size_t begin = std::min(b * per_block, chunk.size());
      std::size_t end = std::min(begin + per_block, chunk.size());
      futures.push_back(pool->submit_with_result(
          [&profiles, &chunk, begin, end, &config, &scheme] {
            return score_block(profiles, chunk, begin, end, config, scheme);
          }));
    }
    blocks.reserve(n_blocks);
    for (auto& f : futures) blocks.push_back(f.get());
  } else {
    blocks.push_back(
        score_block(profiles, chunk, 0, chunk.size(), config, scheme));
  }

  SearchResult result(profiles.size());
  if (stats) stats->assign(profiles.size(), QueryScoreStats{});
  std::size_t base = 0;
  for (const auto& block : blocks) {
    for (std::size_t q = 0; q < profiles.size(); ++q) {
      const auto& scores = block.scores[q];
      auto& hits = result[q];
      for (std::size_t i = 0; i < scores.size(); ++i) {
        Hit hit;
        hit.db_id = chunk[base + i].id;
        hit.score = scores[i];
        if (stats) (*stats)[q].add(static_cast<double>(hit.score));
        hits.push_back(std::move(hit));
      }
    }
    base += block.scores.empty() ? 0 : block.scores[0].size();
    if (metrics) {
      metrics->cells += block.metrics.cells;
      metrics->saturations += block.metrics.saturations;
    }
  }
  for (auto& hits : result) {
    std::sort(hits.begin(), hits.end());
    if (hits.size() > config.top_k) hits.resize(config.top_k);
  }
  return result;
}

}  // namespace

SearchResult search_serial(const std::vector<bio::Sequence>& queries,
                           const std::vector<bio::Sequence>& database,
                           const DSearchConfig& config,
                           std::vector<QueryScoreStats>* stats) {
  auto scheme = config.make_scheme();
  auto profiles = build_profiles(queries, scheme);
  return search_chunk(profiles, database, config, scheme, stats);
}

// ---- DataManager ----

DSearchDataManager::DSearchDataManager(std::vector<bio::Sequence> queries,
                                       std::vector<bio::Sequence> database,
                                       DSearchConfig config)
    : queries_(std::move(queries)),
      database_(std::move(database)),
      config_(std::move(config)),
      merged_(queries_.size()),
      stats_(queries_.size()) {
  if (queries_.empty()) throw InputError("DSEARCH: no query sequences");
  if (database_.empty()) throw InputError("DSEARCH: empty database");
  total_query_len_ = bio::total_residues(queries_);
  if (total_query_len_ == 0) throw InputError("DSEARCH: empty queries");
}

std::string DSearchDataManager::algorithm_name() const { return kAlgorithmName; }

std::vector<std::byte> DSearchDataManager::problem_data() const {
  ByteWriter w;
  encode_config(w, config_);
  encode_sequences(w, queries_);
  return w.take();
}

std::optional<dist::WorkUnit> DSearchDataManager::next_unit(
    const dist::SizeHint& hint) {
  if (cursor_ >= database_.size()) return std::nullopt;

  // Dynamically sized chunk: accumulate database sequences until the DP
  // cell count reaches the scheduler's target for this donor.
  std::size_t begin = cursor_;
  double cost = 0;
  while (cursor_ < database_.size()) {
    double seq_cost = config_.cost_scale *
                      bio::alignment_cost_ops(total_query_len_,
                                              database_[cursor_].length());
    if (cursor_ > begin && cost + seq_cost > hint.target_ops) break;
    cost += seq_cost;
    ++cursor_;
  }

  dist::WorkUnit unit;
  unit.stage = 0;
  unit.cost_ops = cost;
  ByteWriter w;
  std::vector<bio::Sequence> chunk(database_.begin() + begin,
                                   database_.begin() + cursor_);
  encode_sequences(w, chunk);
  // The chunk rides as a content-addressed blob (empty payload): replicas
  // of this unit — and re-issues after a lease expiry — share one download
  // through the donor cache. A v3 donor still works: the server flattens
  // blobs back into the payload in order, which reproduces the legacy
  // payload byte-for-byte.
  unit.blobs.push_back(dist::make_work_blob(w.take()));
  ++outstanding_;
  return unit;
}

void DSearchDataManager::accept_result(const dist::ResultUnit& result) {
  ByteReader r(result.payload);
  auto chunk_result = decode_result(r);
  auto chunk_stats = decode_stats(r);
  r.expect_end();
  merge_topk(merged_, chunk_result, config_.top_k);
  if (chunk_stats.size() != stats_.size()) {
    throw Error("DSEARCH: stats query-count mismatch");
  }
  for (std::size_t q = 0; q < stats_.size(); ++q) {
    stats_[q].merge(chunk_stats[q]);
  }
  --outstanding_;
}

bool DSearchDataManager::is_complete() const {
  return cursor_ >= database_.size() && outstanding_ == 0;
}

std::vector<std::byte> DSearchDataManager::final_result() const {
  ByteWriter w;
  encode_result(w, merged_);
  encode_stats(w, stats_);
  return w.take();
}

double DSearchDataManager::remaining_ops_estimate() const {
  double ops = 0;
  for (std::size_t i = cursor_; i < database_.size(); ++i) {
    ops += bio::alignment_cost_ops(total_query_len_, database_[i].length());
  }
  return ops * config_.cost_scale;
}

SearchResult DSearchDataManager::result() const { return merged_; }

void DSearchDataManager::snapshot(ByteWriter& w) const {
  w.u64(cursor_);
  w.i32(outstanding_);
  encode_result(w, merged_);
  encode_stats(w, stats_);
}

void DSearchDataManager::restore(ByteReader& r) {
  cursor_ = r.u64();
  outstanding_ = r.i32();
  merged_ = decode_result(r);
  stats_ = decode_stats(r);
}

// ---- Algorithm ----

void DSearchAlgorithm::initialize(std::span<const std::byte> problem_data) {
  ByteReader r(problem_data);
  config_ = decode_config(r);
  queries_ = decode_sequences(r);
  r.expect_end();
  scheme_ = config_.make_scheme();
  profiles_ = build_profiles(queries_, *scheme_);
  // 0=scalar 1=sse2 2=avx2: which alignment-kernel tier chunk_search will
  // dispatch on this host (util/simd.hpp).
  obs::Registry::global().gauge("simd.tier")
      .set(static_cast<double>(static_cast<int>(simd_tier())));
}

void DSearchAlgorithm::set_parallelism(std::size_t threads) {
  threads_ = std::max<std::size_t>(threads, 1);
  if (threads_ <= 1) pool_.reset();
}

std::vector<std::byte> DSearchAlgorithm::process(const dist::WorkUnit& unit) {
  if (!scheme_) throw Error("DSearchAlgorithm: process before initialize");
  // v4 units carry the chunk in blobs[0]; a flattened (v3) unit carries the
  // same bytes in the payload.
  ByteReader r(unit.blobs.empty() ? std::span<const std::byte>(unit.payload)
                                  : std::span<const std::byte>(
                                        unit.blobs.front().bytes));
  auto chunk = decode_sequences(r);
  r.expect_end();
  if (threads_ > 1 && !pool_) pool_ = std::make_unique<ThreadPool>(threads_);
  std::vector<QueryScoreStats> stats;
  bio::BatchMetrics metrics;
  auto result = search_chunk(profiles_, chunk, config_, *scheme_, &stats,
                             &metrics, pool_.get());
  auto& reg = obs::Registry::global();
  reg.counter("align.cells_total").inc(metrics.cells);
  reg.counter("align.batch_saturations").inc(metrics.saturations);
  ByteWriter w;
  encode_result(w, result);
  encode_stats(w, stats);
  return w.take();
}

void register_algorithm() {
  dist::AlgorithmRegistry::global().replace(
      kAlgorithmName, [] { return std::make_unique<DSearchAlgorithm>(); });
}

}  // namespace hdcs::dsearch
