#pragma once
// Framed control-plane messages — the C++ stand-in for the paper's Java RMI.
//
// Wire frame:   magic(u32) version(u16) type(u16) correlation(u64)
//               payload_len(u32) payload_crc(u32) payload[payload_len]
//
// payload_crc is CRC-32 of the payload bytes (version 2): a corrupted
// frame surfaces as ProtocolError and tears the connection down instead of
// feeding garbage to the dist layer; the peer reconnects and retransmits.
//
// RMI gives the Java system typed request/response calls between the client,
// server and remote interface. We reproduce the same semantics with a typed
// message enum and a correlation id the requester chooses and the responder
// echoes. Payloads are ByteWriter-encoded by the dist layer.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "util/byte_buffer.hpp"

namespace hdcs::net {

inline constexpr std::uint32_t kMagic = 0x48444353;  // "HDCS"
// v2 added the frame payload_crc; v3 added the result-digest field to
// SubmitResult (donor-computed CRC-32 over the result payload); v4 added
// the content-addressed bulk-data plane (blob-referencing WorkAssignment,
// FetchBlobs/BlobData, compressed blob transfer); v5 added the optional
// span-profile trailer to SubmitResult (donor-measured per-phase
// durations); v6 added the server epoch (failover term) to WorkAssignment
// and SubmitResult plus the hot-standby replication stream (ReplicaHello /
// ReplicaSnapshot / WalAppend); v7 added the retryable RetryLater NACK
// (overload shedding / degraded durability — back off retry_after_s and
// retry, don't treat it as an error). v3..v6 peers are still accepted: the
// server answers every request at the requester's version, and sends
// RetryLater only to v7+ peers (older ones get an error frame, which their
// existing backoff/reconnect paths already handle).
inline constexpr std::uint16_t kProtocolVersion = 7;
inline constexpr std::uint16_t kMinProtocolVersion = 3;
inline constexpr std::size_t kFrameHeaderBytes = 24;
/// Upper bound on a single frame; bulk data uses the chunked bulk channel.
inline constexpr std::uint32_t kMaxPayload = 64u * 1024 * 1024;

enum class MessageType : std::uint16_t {
  // Client -> server
  kHello = 1,          // client registers: name, cores, benchmark score
  kRequestWork = 2,    // idle worker asks for a unit
  kSubmitResult = 3,   // finished unit's result payload
  kHeartbeat = 4,      // liveness + progress
  kFetchProblemData = 5,  // ask for a problem's bulk input data
  kGoodbye = 6,        // orderly departure (donor machine reclaimed)
  kFetchStats = 7,     // MSG_STATS: ask for a live metrics snapshot
  kFetchBlobs = 8,     // v4: NEED list — digests missing from donor cache
  kReplicaHello = 9,   // v6: a hot standby asks to tail this primary's WAL

  // Server -> client
  kHelloAck = 32,      // assigned client id
  kWorkAssignment = 33,  // a WorkUnit
  kNoWorkAvailable = 34,  // nothing to do right now; retry after delay
  kProblemData = 35,   // bulk data header (payload follows on bulk channel)
  kResultAck = 36,
  kHeartbeatAck = 37,
  kShutdown = 38,      // server is stopping; client should exit
  kStatsSnapshot = 39, // MSG_STATS reply: JSON metrics snapshot
  kBlobData = 40,      // v4: per-digest present flags; bodies follow on bulk
  kReplicaSnapshot = 41,  // v6: exact-snapshot header; bytes follow on bulk
  kWalAppend = 42,     // v6: a batch of live WAL records for the standby
  kRetryLater = 43,    // v7: retryable NACK — back off retry_after_s, retry

  // Either direction
  kError = 64,
};

const char* to_string(MessageType type);

struct Message {
  MessageType type = MessageType::kError;
  std::uint64_t correlation = 0;
  /// Frame version this message was read with / will be written as. A v3
  /// donor's requests arrive marked 3 and the server mirrors that version
  /// into its responses, so payload codecs know which fields to expect.
  std::uint16_t version = kProtocolVersion;
  std::vector<std::byte> payload;

  [[nodiscard]] ByteReader reader() const { return ByteReader(payload); }
};

/// Write one frame. Throws IoError on transport failure.
void write_message(TcpStream& stream, const Message& msg);

/// Read one frame. Throws ProtocolError on bad magic/version/length or a
/// payload CRC mismatch, ConnectionClosed on clean EOF at a frame boundary.
Message read_message(TcpStream& stream);

/// Serialize one frame (header + payload) to bytes without touching a
/// socket — the event-loop server encodes onto per-connection write queues.
/// Bumps the same net.frames_sent / net.bytes_sent counters write_message
/// does, at encode time (the queue owns delivery from here).
std::vector<std::byte> encode_frame(const Message& msg);

/// Convenience: build a message whose payload is a single string (errors).
Message make_error(std::uint64_t correlation, const std::string& text);

}  // namespace hdcs::net
