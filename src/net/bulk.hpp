#pragma once
// Bulk data channel.
//
// "Data files, which may be large, are transmitted using ordinary sockets,
// which is more efficient than RMI" (paper §2.2). Control frames are capped
// at kMaxPayload; anything bigger — a FASTA database, an alignment — moves
// through this chunked transfer with a leading u64 length and a trailing
// CRC32 so truncation or corruption is detected rather than silently merged.

#include <cstdint>
#include <span>
#include <vector>

#include "net/socket.hpp"

namespace hdcs::net {

inline constexpr std::size_t kBulkChunk = 256 * 1024;

/// CRC-32 (IEEE, reflected) of a byte span.
std::uint32_t crc32(std::span<const std::byte> data);

/// Send length + chunks + CRC.
void send_blob(TcpStream& stream, std::span<const std::byte> data);

/// Receive a blob; throws ProtocolError on CRC mismatch, IoError on size
/// above max_bytes (guards against a corrupt length header allocating GBs).
std::vector<std::byte> recv_blob(TcpStream& stream,
                                 std::size_t max_bytes = 1ull << 32);

}  // namespace hdcs::net
