#pragma once
// Bulk data channel.
//
// "Data files, which may be large, are transmitted using ordinary sockets,
// which is more efficient than RMI" (paper §2.2). Control frames are capped
// at kMaxPayload; anything bigger — a FASTA database, an alignment — moves
// through this chunked transfer with a leading u64 length and a trailing
// CRC32 so truncation or corruption is detected rather than silently merged.

#include <cstdint>
#include <span>
#include <vector>

#include "net/socket.hpp"

namespace hdcs::net {

inline constexpr std::size_t kBulkChunk = 256 * 1024;

/// Default receive-side blob cap. The old default of 4 GiB meant one
/// corrupt length header could exhaust donor RAM; anything bigger than this
/// must be opted into via ClientConfig/ServerConfig::max_blob_bytes.
inline constexpr std::size_t kDefaultMaxBlobBytes = 256ull * 1024 * 1024;

/// CRC-32 (IEEE, reflected) of a byte span.
std::uint32_t crc32(std::span<const std::byte> data);

/// Send length + chunks + CRC.
void send_blob(TcpStream& stream, std::span<const std::byte> data);

/// Serialize a v3 blob (length + CRC header, then the body) to bytes for a
/// non-blocking write queue. Same wire bytes and counters as send_blob.
std::vector<std::byte> encode_blob(std::span<const std::byte> data);

/// Receive a blob; throws ProtocolError on CRC mismatch, IoError on size
/// above max_bytes (guards against a corrupt length header allocating GBs).
std::vector<std::byte> recv_blob(TcpStream& stream,
                                 std::size_t max_bytes = kDefaultMaxBlobBytes);

/// What send_blob_v4 put on the wire (for byte accounting and trace events).
struct BlobWireInfo {
  std::uint64_t raw_bytes = 0;
  std::uint64_t wire_bytes = 0;  // header + body actually transmitted
  bool compressed = false;
};

/// Protocol-v4 blob transfer with transparent compression:
///
///   u64 raw_size | u32 crc32(raw) | u8 flags | u64 wire_size | body chunks
///
/// flags bit 0 = body is lz_compress output (raw otherwise). Incompressible
/// data is sent stored, so the flag — not a heuristic — decides decoding.
/// The CRC is always over the *raw* bytes and is checked after
/// decompression, so corruption anywhere surfaces as ProtocolError.
BlobWireInfo send_blob_v4(TcpStream& stream, std::span<const std::byte> data);

/// Serialize a v4 blob (header + possibly-compressed body) to bytes for a
/// non-blocking write queue. Same wire bytes and counters as send_blob_v4.
struct EncodedBlobV4 {
  std::vector<std::byte> bytes;
  BlobWireInfo info;
};
EncodedBlobV4 encode_blob_v4(std::span<const std::byte> data);

/// Receive a v4 blob. Both raw_size and wire_size are bounded by max_bytes
/// before any allocation. When `decompress_s` is non-null, the wall seconds
/// spent in LZ decompression are *added* to it (span profiling).
std::vector<std::byte> recv_blob_v4(
    TcpStream& stream, std::size_t max_bytes = kDefaultMaxBlobBytes,
    double* decompress_s = nullptr);

}  // namespace hdcs::net

namespace hdcs::obs {
class Counter;
}

namespace hdcs::net {

/// The bulk-data-plane counters (process-global registry). One accessor so
/// the TCP server, the donor client and the simulator bump the same names:
///   bulk.blobs_sent       blobs actually transferred (server->donor)
///   bulk.blobs_cache_hit  transfers avoided by a donor cache hit
///   bulk.bytes_raw        uncompressed bytes of transferred blobs
///   bulk.bytes_wire       bytes put on the wire for them (post-compression)
struct BulkPlaneMetrics {
  obs::Counter& blobs_sent;
  obs::Counter& blobs_cache_hit;
  obs::Counter& bytes_raw;
  obs::Counter& bytes_wire;
};
BulkPlaneMetrics& bulk_plane_metrics();

}  // namespace hdcs::net
