#include "net/bulk.hpp"

#include <array>

#include "obs/metrics.hpp"
#include "util/byte_buffer.hpp"

namespace hdcs::net {

namespace {
struct BulkMetrics {
  obs::Counter& blobs_sent = obs::Registry::global().counter("net.blobs_sent");
  obs::Counter& blobs_received =
      obs::Registry::global().counter("net.blobs_received");
  obs::Counter& bulk_bytes_sent =
      obs::Registry::global().counter("net.bulk_bytes_sent");
  obs::Counter& bulk_bytes_received =
      obs::Registry::global().counter("net.bulk_bytes_received");
};
BulkMetrics& bulk_metrics() {
  static BulkMetrics m;
  return m;
}
}  // namespace

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::byte b : data) {
    c = table[(c ^ static_cast<std::uint8_t>(b)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void send_blob(TcpStream& stream, std::span<const std::byte> data) {
  ByteWriter header(12);
  header.u64(data.size());
  header.u32(crc32(data));
  stream.send_all(header.data());
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t n = std::min(kBulkChunk, data.size() - off);
    stream.send_all(data.subspan(off, n));
    off += n;
  }
  bulk_metrics().blobs_sent.inc();
  bulk_metrics().bulk_bytes_sent.inc(header.size() + data.size());
}

std::vector<std::byte> recv_blob(TcpStream& stream, std::size_t max_bytes) {
  std::byte header_buf[12];
  stream.recv_all(header_buf);
  ByteReader header(header_buf);
  std::uint64_t size = header.u64();
  std::uint32_t expected_crc = header.u32();
  if (size > max_bytes) {
    throw IoError("bulk blob too large: " + std::to_string(size) + " bytes");
  }
  std::vector<std::byte> data(size);
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t n = std::min(kBulkChunk, data.size() - off);
    stream.recv_all(std::span(data).subspan(off, n));
    off += n;
  }
  if (crc32(data) != expected_crc) {
    throw ProtocolError("bulk blob CRC mismatch");
  }
  bulk_metrics().blobs_received.inc();
  bulk_metrics().bulk_bytes_received.inc(sizeof(header_buf) + data.size());
  return data;
}

}  // namespace hdcs::net
