#include "net/bulk.hpp"

#include <array>

#include "net/compress.hpp"
#include "obs/metrics.hpp"
#include "util/byte_buffer.hpp"
#include "util/stopwatch.hpp"

namespace hdcs::net {

namespace {
struct BulkMetrics {
  obs::Counter& blobs_sent = obs::Registry::global().counter("net.blobs_sent");
  obs::Counter& blobs_received =
      obs::Registry::global().counter("net.blobs_received");
  obs::Counter& bulk_bytes_sent =
      obs::Registry::global().counter("net.bulk_bytes_sent");
  obs::Counter& bulk_bytes_received =
      obs::Registry::global().counter("net.bulk_bytes_received");
};
BulkMetrics& bulk_metrics() {
  static BulkMetrics m;
  return m;
}
}  // namespace

BulkPlaneMetrics& bulk_plane_metrics() {
  auto& reg = obs::Registry::global();
  static BulkPlaneMetrics m{
      reg.counter("bulk.blobs_sent"), reg.counter("bulk.blobs_cache_hit"),
      reg.counter("bulk.bytes_raw"), reg.counter("bulk.bytes_wire")};
  return m;
}

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::byte b : data) {
    c = table[(c ^ static_cast<std::uint8_t>(b)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void send_blob(TcpStream& stream, std::span<const std::byte> data) {
  ByteWriter header(12);
  header.u64(data.size());
  header.u32(crc32(data));
  stream.send_all(header.data());
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t n = std::min(kBulkChunk, data.size() - off);
    stream.send_all(data.subspan(off, n));
    off += n;
  }
  bulk_metrics().blobs_sent.inc();
  bulk_metrics().bulk_bytes_sent.inc(header.size() + data.size());
}

std::vector<std::byte> encode_blob(std::span<const std::byte> data) {
  ByteWriter out(12 + data.size());
  out.u64(data.size());
  out.u32(crc32(data));
  out.raw(data);
  bulk_metrics().blobs_sent.inc();
  bulk_metrics().bulk_bytes_sent.inc(out.size());
  return out.take();
}

std::vector<std::byte> recv_blob(TcpStream& stream, std::size_t max_bytes) {
  std::byte header_buf[12];
  stream.recv_all(header_buf, kMidStreamStallMs);
  ByteReader header(header_buf);
  std::uint64_t size = header.u64();
  std::uint32_t expected_crc = header.u32();
  if (size > max_bytes) {
    throw IoError("bulk blob too large: " + std::to_string(size) + " bytes");
  }
  std::vector<std::byte> data(size);
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t n = std::min(kBulkChunk, data.size() - off);
    stream.recv_all(std::span(data).subspan(off, n), kMidStreamStallMs);
    off += n;
  }
  if (crc32(data) != expected_crc) {
    throw ProtocolError("bulk blob CRC mismatch");
  }
  bulk_metrics().blobs_received.inc();
  bulk_metrics().bulk_bytes_received.inc(sizeof(header_buf) + data.size());
  return data;
}

namespace {
// raw_size | crc32(raw) | flags | wire_size | crc32(header). The trailing
// header CRC lets the receiver reject a corrupted length field *before*
// trusting it — without it, a flipped wire_size byte makes the receiver
// wait for bytes the sender never sent, and the body CRC (checked only
// after a full read) can never run.
constexpr std::size_t kBlobV4LengthsBytes = 8 + 4 + 1 + 8;
constexpr std::size_t kBlobV4HeaderBytes = kBlobV4LengthsBytes + 4;
constexpr std::uint8_t kBlobFlagCompressed = 1;

void send_chunked(TcpStream& stream, std::span<const std::byte> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t n = std::min(kBulkChunk, data.size() - off);
    stream.send_all(data.subspan(off, n));
    off += n;
  }
}
}  // namespace

BlobWireInfo send_blob_v4(TcpStream& stream, std::span<const std::byte> data) {
  auto compressed = lz_compress(data);
  std::span<const std::byte> body =
      compressed ? std::span<const std::byte>(*compressed) : data;
  ByteWriter header(kBlobV4HeaderBytes);
  header.u64(data.size());
  header.u32(crc32(data));
  header.u8(compressed ? kBlobFlagCompressed : 0);
  header.u64(body.size());
  header.u32(crc32(header.data()));
  stream.send_all(header.data());
  send_chunked(stream, body);
  bulk_metrics().blobs_sent.inc();
  bulk_metrics().bulk_bytes_sent.inc(header.size() + body.size());
  return BlobWireInfo{data.size(), header.size() + body.size(),
                      compressed.has_value()};
}

EncodedBlobV4 encode_blob_v4(std::span<const std::byte> data) {
  auto compressed = lz_compress(data);
  std::span<const std::byte> body =
      compressed ? std::span<const std::byte>(*compressed) : data;
  ByteWriter out(kBlobV4HeaderBytes + body.size());
  out.u64(data.size());
  out.u32(crc32(data));
  out.u8(compressed ? kBlobFlagCompressed : 0);
  out.u64(body.size());
  out.u32(crc32(out.data()));
  out.raw(body);
  bulk_metrics().blobs_sent.inc();
  bulk_metrics().bulk_bytes_sent.inc(out.size());
  BlobWireInfo info{data.size(), kBlobV4HeaderBytes + body.size(),
                    compressed.has_value()};
  return EncodedBlobV4{out.take(), info};
}

std::vector<std::byte> recv_blob_v4(TcpStream& stream, std::size_t max_bytes,
                                    double* decompress_s) {
  std::byte header_buf[kBlobV4HeaderBytes];
  stream.recv_all(header_buf, kMidStreamStallMs);
  ByteReader header(header_buf);
  std::uint64_t raw_size = header.u64();
  std::uint32_t expected_crc = header.u32();
  std::uint8_t flags = header.u8();
  std::uint64_t wire_size = header.u64();
  std::uint32_t header_crc = header.u32();
  if (crc32(std::span(header_buf).first(kBlobV4LengthsBytes)) != header_crc) {
    throw ProtocolError("bulk blob header CRC mismatch");
  }
  if (raw_size > max_bytes || wire_size > max_bytes) {
    throw IoError("bulk blob too large: raw " + std::to_string(raw_size) +
                  " / wire " + std::to_string(wire_size) + " bytes");
  }
  if (flags & ~kBlobFlagCompressed) {
    throw ProtocolError("bulk blob: unknown flags");
  }
  bool is_compressed = flags & kBlobFlagCompressed;
  if (!is_compressed && wire_size != raw_size) {
    throw ProtocolError("bulk blob: stored size mismatch");
  }
  std::vector<std::byte> body(wire_size);
  std::size_t off = 0;
  while (off < body.size()) {
    std::size_t n = std::min(kBulkChunk, body.size() - off);
    stream.recv_all(std::span(body).subspan(off, n), kMidStreamStallMs);
    off += n;
  }
  std::vector<std::byte> data;
  if (is_compressed) {
    Stopwatch inflate;
    data = lz_decompress(body, raw_size);
    if (decompress_s) *decompress_s += inflate.seconds();
  } else {
    data = std::move(body);
  }
  if (crc32(data) != expected_crc) {
    throw ProtocolError("bulk blob CRC mismatch");
  }
  bulk_metrics().blobs_received.inc();
  bulk_metrics().bulk_bytes_received.inc(sizeof(header_buf) + wire_size);
  return data;
}

}  // namespace hdcs::net
