#pragma once
// Minimal LZ77 block codec for the bulk-data plane (no external deps).
//
// The format is LZ4-shaped: a stream of sequences, each a token byte whose
// high nibble is the literal length and low nibble the match length minus
// the 4-byte minimum (15 in either nibble extends via 255-run bytes),
// followed by the literals and a little-endian u16 match offset. The final
// sequence is literals-only. This keeps the decoder a tight, fully
// bounds-checked loop — the compressor can be naive (greedy hash-table
// matcher) because donors decompress far more often than the server
// compresses a given blob.
//
// Compression is advisory: lz_compress() returns nullopt when the encoded
// form would not be smaller (random bytes, already-compressed data), and
// the blob wire format carries a per-blob "stored" flag so such data passes
// through untouched. Decompression of attacker-controlled bytes is safe:
// every read and copy is bounds-checked and malformed input throws
// ProtocolError, never reads or writes out of range.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace hdcs::net {

/// Compress `src`. Returns nullopt when the compressed form would not be
/// strictly smaller than the input (caller sends the raw bytes instead).
std::optional<std::vector<std::byte>> lz_compress(std::span<const std::byte> src);

/// Decompress a block produced by lz_compress. `raw_size` is the expected
/// decoded size (carried separately on the wire); output is exactly that
/// long. Throws ProtocolError on any malformed input.
std::vector<std::byte> lz_decompress(std::span<const std::byte> src,
                                     std::size_t raw_size);

}  // namespace hdcs::net
