#include "net/message.hpp"

#include <algorithm>
#include <cstdio>

#include "net/bulk.hpp"
#include "net/frame_reader.hpp"
#include "obs/metrics.hpp"

namespace hdcs::net {

namespace {
// Process-wide wire counters. Looked up once (registry references are
// stable for its lifetime); updates are single relaxed atomics.
struct WireMetrics {
  obs::Counter& frames_sent = obs::Registry::global().counter("net.frames_sent");
  obs::Counter& frames_received =
      obs::Registry::global().counter("net.frames_received");
  obs::Counter& bytes_sent = obs::Registry::global().counter("net.bytes_sent");
  obs::Counter& bytes_received =
      obs::Registry::global().counter("net.bytes_received");
};
WireMetrics& wire_metrics() {
  static WireMetrics m;
  return m;
}
}  // namespace

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "Hello";
    case MessageType::kRequestWork: return "RequestWork";
    case MessageType::kSubmitResult: return "SubmitResult";
    case MessageType::kHeartbeat: return "Heartbeat";
    case MessageType::kFetchProblemData: return "FetchProblemData";
    case MessageType::kGoodbye: return "Goodbye";
    case MessageType::kFetchStats: return "FetchStats";
    case MessageType::kFetchBlobs: return "FetchBlobs";
    case MessageType::kReplicaHello: return "ReplicaHello";
    case MessageType::kHelloAck: return "HelloAck";
    case MessageType::kWorkAssignment: return "WorkAssignment";
    case MessageType::kNoWorkAvailable: return "NoWorkAvailable";
    case MessageType::kProblemData: return "ProblemData";
    case MessageType::kResultAck: return "ResultAck";
    case MessageType::kHeartbeatAck: return "HeartbeatAck";
    case MessageType::kShutdown: return "Shutdown";
    case MessageType::kStatsSnapshot: return "StatsSnapshot";
    case MessageType::kBlobData: return "BlobData";
    case MessageType::kReplicaSnapshot: return "ReplicaSnapshot";
    case MessageType::kWalAppend: return "WalAppend";
    case MessageType::kRetryLater: return "RetryLater";
    case MessageType::kError: return "Error";
  }
  return "Unknown";
}

void write_message(TcpStream& stream, const Message& msg) {
  ByteWriter header(kFrameHeaderBytes);
  header.u32(kMagic);
  header.u16(msg.version);
  header.u16(static_cast<std::uint16_t>(msg.type));
  header.u64(msg.correlation);
  header.u32(static_cast<std::uint32_t>(msg.payload.size()));
  header.u32(crc32(msg.payload));
  stream.send_all(header.data());
  if (!msg.payload.empty()) stream.send_all(msg.payload);
  wire_metrics().frames_sent.inc();
  wire_metrics().bytes_sent.inc(header.size() + msg.payload.size());
}

Message read_message(TcpStream& stream) {
  std::byte header_buf[kFrameHeaderBytes];
  stream.recv_all(header_buf);
  ByteReader header(header_buf);
  std::uint32_t magic = header.u32();
  if (magic != kMagic) {
    char hex[16];
    std::snprintf(hex, sizeof(hex), "%08x", magic);
    throw ProtocolError(std::string("bad frame magic 0x") + hex);
  }
  std::uint16_t version = header.u16();
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " + std::to_string(version));
  }
  Message msg;
  msg.version = version;
  msg.type = static_cast<MessageType>(header.u16());
  msg.correlation = header.u64();
  std::uint32_t len = header.u32();
  if (len > kMaxPayload) {
    throw ProtocolError("frame payload too large: " + std::to_string(len));
  }
  std::uint32_t expected_crc = header.u32();
  // The header announced len bytes that are already in flight; a bounded
  // stall wait means a corrupted payload_len (recv-side fault injection
  // flips bytes the frame CRC can only check after a full read) cannot
  // wedge the reader forever against a peer that sent fewer bytes.
  msg.payload.resize(len);
  if (len > 0) stream.recv_all(msg.payload, kMidStreamStallMs);
  if (std::uint32_t got = crc32(msg.payload); got != expected_crc) {
    throw ProtocolError("frame payload CRC mismatch (" +
                        std::string(to_string(msg.type)) + " frame)");
  }
  wire_metrics().frames_received.inc();
  wire_metrics().bytes_received.inc(sizeof(header_buf) + msg.payload.size());
  return msg;
}

std::vector<std::byte> encode_frame(const Message& msg) {
  ByteWriter out(kFrameHeaderBytes + msg.payload.size());
  out.u32(kMagic);
  out.u16(msg.version);
  out.u16(static_cast<std::uint16_t>(msg.type));
  out.u64(msg.correlation);
  out.u32(static_cast<std::uint32_t>(msg.payload.size()));
  out.u32(crc32(msg.payload));
  out.raw(msg.payload);
  wire_metrics().frames_sent.inc();
  wire_metrics().bytes_sent.inc(out.size());
  return out.take();
}

// FrameReader lives here (not frame_reader.cpp) so the incremental path
// shares wire_metrics() and stays in lockstep with read_message above —
// any validation change has to touch both, side by side.
void FrameReader::feed(std::span<const std::byte> data,
                       std::vector<Message>& out) {
  for (;;) {
    if (!in_payload_) {
      std::size_t take = std::min(data.size(), kFrameHeaderBytes - have_);
      std::copy_n(data.data(), take, header_.data() + have_);
      have_ += take;
      data = data.subspan(take);
      if (have_ < kFrameHeaderBytes) return;
      ByteReader header(header_);
      std::uint32_t magic = header.u32();
      if (magic != kMagic) {
        char hex[16];
        std::snprintf(hex, sizeof(hex), "%08x", magic);
        throw ProtocolError(std::string("bad frame magic 0x") + hex);
      }
      std::uint16_t version = header.u16();
      if (version < kMinProtocolVersion || version > kProtocolVersion) {
        throw ProtocolError("unsupported protocol version " +
                            std::to_string(version));
      }
      msg_ = Message{};
      msg_.version = version;
      msg_.type = static_cast<MessageType>(header.u16());
      msg_.correlation = header.u64();
      std::uint32_t len = header.u32();
      if (len > kMaxPayload) {
        throw ProtocolError("frame payload too large: " + std::to_string(len));
      }
      expected_crc_ = header.u32();
      msg_.payload.resize(len);
      payload_have_ = 0;
      have_ = 0;
      in_payload_ = true;
    }
    std::size_t take = std::min(data.size(), msg_.payload.size() - payload_have_);
    std::copy_n(data.data(), take, msg_.payload.data() + payload_have_);
    payload_have_ += take;
    data = data.subspan(take);
    if (payload_have_ < msg_.payload.size()) return;
    if (std::uint32_t got = crc32(msg_.payload); got != expected_crc_) {
      throw ProtocolError("frame payload CRC mismatch (" +
                          std::string(to_string(msg_.type)) + " frame)");
    }
    wire_metrics().frames_received.inc();
    wire_metrics().bytes_received.inc(kFrameHeaderBytes + msg_.payload.size());
    in_payload_ = false;
    out.push_back(std::move(msg_));
    msg_ = Message{};
    if (data.empty()) return;
  }
}

Message make_error(std::uint64_t correlation, const std::string& text) {
  Message msg;
  msg.type = MessageType::kError;
  msg.correlation = correlation;
  ByteWriter w;
  w.str(text);
  msg.payload = w.take();
  return msg;
}

}  // namespace hdcs::net
