#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace hdcs::net {

namespace {
struct LoopMetrics {
  obs::Counter& wakeups = obs::Registry::global().counter("net.loop.wakeups");
  obs::Histogram& lag_s = obs::Registry::global().histogram("net.loop.lag_s");
  obs::Gauge& fds = obs::Registry::global().gauge("net.loop.fds");
};
LoopMetrics& loop_metrics() {
  static LoopMetrics m;
  return m;
}

[[noreturn]] void throw_errno(const char* what) {
  throw IoError(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr marks the wake fd
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw_errno("epoll_ctl(wake fd)");
  }
}

EventLoop::~EventLoop() {
  loop_metrics().fds.add(-static_cast<double>(fds_.size()));
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard lock(post_mu_);
    posted_.push_back({std::move(fn), std::chrono::steady_clock::now()});
  }
  std::uint64_t one = 1;
  // A full eventfd counter (impossible in practice) would mean the loop is
  // already hopelessly behind; the pending value still wakes it.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::stop() {
  {
    std::lock_guard lock(post_mu_);
    stop_requested_ = true;
  }
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_wake_fd() {
  std::uint64_t buf;
  while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::run_posted() {
  std::vector<PostedTask> tasks;
  {
    std::lock_guard lock(post_mu_);
    tasks.swap(posted_);
    if (stop_requested_) stopping_ = true;
  }
  auto now = std::chrono::steady_clock::now();
  for (auto& t : tasks) {
    loop_metrics().lag_s.observe(
        std::chrono::duration<double>(now - t.at).count());
    t.fn();
  }
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  auto reg = std::make_unique<Registration>();
  reg->cb = std::move(cb);
  reg->events = events;
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = reg.get();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(add)");
  }
  fds_[fd] = std::move(reg);
  loop_metrics().fds.add(1);
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) throw Error("modify_fd: fd not registered");
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = it->second.get();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(mod)");
  }
  it->second->events = events;
}

void EventLoop::remove_fd(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  it->second->dead = true;
  // DEL can only fail if the fd is already gone (closed early); that still
  // removes it from the epoll set, so the registration teardown proceeds.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  if (dispatching_) {
    graveyard_.push_back(std::move(it->second));
  }
  fds_.erase(it);
  loop_metrics().fds.add(-1);
}

void EventLoop::add_periodic(double interval_s, std::function<void()> fn) {
  Periodic p;
  p.interval_s = interval_s;
  p.fn = std::move(fn);
  p.next = std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(interval_s));
  periodics_.push_back(std::move(p));
}

int EventLoop::timeout_ms_until_next_periodic() const {
  if (periodics_.empty()) return 200;
  auto now = std::chrono::steady_clock::now();
  double best = 0.2;
  for (const auto& p : periodics_) {
    double dt = std::chrono::duration<double>(p.next - now).count();
    if (dt < best) best = dt;
  }
  if (best <= 0) return 0;
  return static_cast<int>(best * 1000) + 1;
}

void EventLoop::run() {
  loop_thread_ = std::this_thread::get_id();
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  while (!stopping_) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents,
                         timeout_ms_until_next_periodic());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    loop_metrics().wakeups.inc();
    bool woken = false;
    dispatching_ = true;
    for (int i = 0; i < n; ++i) {
      auto* reg = static_cast<Registration*>(events[i].data.ptr);
      if (reg == nullptr) {
        woken = true;
        continue;
      }
      if (reg->dead) continue;
      reg->cb(events[i].events);
    }
    dispatching_ = false;
    graveyard_.clear();
    if (woken) drain_wake_fd();
    run_posted();  // also picks up stop() requests
    auto now = std::chrono::steady_clock::now();
    for (auto& p : periodics_) {
      if (now < p.next) continue;
      loop_metrics().lag_s.observe(
          std::chrono::duration<double>(now - p.next).count());
      p.next = now + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(p.interval_s));
      p.fn();
    }
  }
}

}  // namespace hdcs::net
