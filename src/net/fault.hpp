#pragma once
// Deterministic network fault injection.
//
// A FaultPlan is a seeded stream of fault decisions (connect refusal,
// mid-frame disconnect, truncated send, corrupted byte, added latency)
// that TcpStream consults at its choke points — connect(), send_all(),
// recv_all(). Install one process-wide with ScopedFaultPlan and every
// connection in the process (server handlers, donor work loops, heartbeat
// channels) rides through the same storm; the chaos tests use this to
// prove the end-to-end system converges to byte-identical results anyway.
//
// Decisions are drawn from one mutex-guarded Rng, so a given seed produces
// one reproducible decision *sequence*; which thread consumes which
// decision still depends on scheduling, which is exactly the point — the
// system must tolerate any assignment of faults to operations.
//
// The simulator reuses the same plan in virtual time: it never sleeps or
// breaks sockets, but draws frame_fault()/delay_s() to charge retransmit
// and latency penalties (see sim/sim_driver.cpp).
//
// With no plan installed the per-operation overhead is one relaxed atomic
// load (the default for every non-chaos build and test).

#include <cstdint>
#include <mutex>
#include <optional>

#include "util/rng.hpp"

namespace hdcs::net {

struct FaultSpec {
  std::uint64_t seed = 1;
  /// TcpStream::connect() throws IoError without touching the network.
  double connect_refuse_prob = 0;
  /// recv_all() tears the connection down before reading (mid-frame EOF).
  double recv_disconnect_prob = 0;
  /// send_all() writes only a prefix, then breaks the pipe both ways.
  double send_truncate_prob = 0;
  /// One byte of a completed recv_all() is flipped (frame/bulk CRCs must
  /// catch this — corruption is detected, never merged).
  double corrupt_prob = 0;
  /// Added latency: with delay_prob, stall uniform [0, delay_max_s].
  double delay_prob = 0;
  double delay_max_s = 0.002;

  [[nodiscard]] bool any() const {
    return connect_refuse_prob > 0 || recv_disconnect_prob > 0 ||
           send_truncate_prob > 0 || corrupt_prob > 0 || delay_prob > 0;
  }
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultSpec spec);

  // Decision points. Each draws from the shared stream and bumps the
  // matching net.fault.* counter when it fires (thread-safe).
  [[nodiscard]] bool refuse_connect();
  [[nodiscard]] bool drop_recv();
  /// Bytes to keep of a `len`-byte send (always < len), nullopt = intact.
  [[nodiscard]] std::optional<std::size_t> truncate_send(std::size_t len);
  /// Index of the byte to flip in a `len`-byte recv, nullopt = intact.
  [[nodiscard]] std::optional<std::size_t> corrupt_byte(std::size_t len);
  /// Seconds of injected latency for this operation (0 = none).
  [[nodiscard]] double delay_s();

  /// Combined "this frame was lost somehow" draw for the virtual-time
  /// simulator: disconnect + truncate + corrupt folded into one decision
  /// (over TCP each of those ends in a reconnect-and-retransmit anyway).
  [[nodiscard]] bool frame_fault();

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

 private:
  [[nodiscard]] bool draw(double prob);

  FaultSpec spec_;
  std::mutex mu_;
  Rng rng_;
};

/// Install `plan` as the process-global plan consulted by every TcpStream
/// operation; nullptr turns injection off (the default). The plan must
/// outlive its installation.
void install_fault_plan(FaultPlan* plan);
[[nodiscard]] FaultPlan* installed_fault_plan();

/// RAII install/uninstall for tests.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultSpec spec) : plan_(spec) {
    install_fault_plan(&plan_);
  }
  ~ScopedFaultPlan() { install_fault_plan(nullptr); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  [[nodiscard]] FaultPlan& plan() { return plan_; }

 private:
  FaultPlan plan_;
};

}  // namespace hdcs::net
