#pragma once
// Non-blocking epoll event loop.
//
// One EventLoop drives many file descriptors from a single thread: fds are
// registered with a callback, epoll_wait dispatches readiness, and an
// eventfd lets any thread wake the loop to run posted tasks. The dist
// server runs one loop per --io-thread and keeps every blocking operation
// (scheduler calls, WAL fsyncs, checkpoint saves) on a worker pool, so ten
// thousand idle donor connections cost file descriptors, not OS threads.
//
// Threading contract:
//   - run() executes on exactly one thread (the "loop thread").
//   - add_fd / modify_fd / remove_fd / add_periodic are loop-thread-only
//     (call them from a posted task or a callback).
//   - post() and stop() are safe from any thread.
//
// Observability (process-global registry):
//   net.loop.wakeups   epoll_wait returns (counter)
//   net.loop.lag_s     post()->run and timer scheduled->fired latency
//   net.loop.fds       registered fds across all loops (gauge, +/- deltas)

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace hdcs::net {

class EventLoop {
 public:
  /// Receives the raw epoll event mask (EPOLLIN / EPOLLOUT / EPOLLERR...).
  using FdCallback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Dispatch events until stop(). Call on the loop's dedicated thread.
  void run();

  /// Ask run() to return; safe from any thread, idempotent.
  void stop();

  /// Run `fn` on the loop thread soon; safe from any thread. Tasks posted
  /// after the loop exits are discarded when the loop is destroyed.
  void post(std::function<void()> fn);

  [[nodiscard]] bool on_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

  /// Register `fd` for `events`; `cb` fires with the ready mask. The fd is
  /// not owned — the caller closes it after remove_fd.
  void add_fd(int fd, std::uint32_t events, FdCallback cb);
  void modify_fd(int fd, std::uint32_t events);
  /// Unregister. Safe from inside a callback (pending events for the fd in
  /// the current dispatch batch are dropped, and fd-number reuse by a later
  /// add_fd in the same batch is not confused with the dead registration).
  void remove_fd(int fd);

  /// Run `fn` every interval_s while the loop runs (loop thread only; the
  /// first firing is one interval from now). Used for stall sweeps.
  void add_periodic(double interval_s, std::function<void()> fn);

  /// Registered fd count (loop thread only; for tests and stats).
  [[nodiscard]] std::size_t fd_count() const { return fds_.size(); }

 private:
  struct Registration {
    FdCallback cb;
    std::uint32_t events = 0;
    bool dead = false;
  };
  struct Periodic {
    double interval_s;
    std::function<void()> fn;
    std::chrono::steady_clock::time_point next;
  };
  struct PostedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point at;
  };

  void drain_wake_fd();
  void run_posted();
  [[nodiscard]] int timeout_ms_until_next_periodic() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread::id loop_thread_;
  bool stopping_ = false;  // loop thread's view; set via a posted stop task

  std::mutex post_mu_;
  std::vector<PostedTask> posted_;
  bool stop_requested_ = false;  // guarded by post_mu_

  // Registrations are heap-allocated so epoll_event.data.ptr stays valid;
  // removed ones park in graveyard_ until the current dispatch batch ends.
  std::unordered_map<int, std::unique_ptr<Registration>> fds_;
  std::vector<std::unique_ptr<Registration>> graveyard_;
  bool dispatching_ = false;

  std::vector<Periodic> periodics_;
};

}  // namespace hdcs::net
