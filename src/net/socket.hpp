#pragma once
// RAII TCP sockets (POSIX).
//
// The paper's system uses Java RMI for control traffic and plain sockets for
// bulk data. In C++ both ride on these wrappers: TcpListener accepts,
// TcpStream moves bytes. All errors surface as hdcs::IoError; EOF during a
// full-length read is a distinct ConnectionClosed so callers can tell a
// clean peer shutdown from corruption.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "util/error.hpp"

namespace hdcs::net {

/// Peer closed the connection mid-read.
class ConnectionClosed : public IoError {
 public:
  ConnectionClosed() : IoError("connection closed by peer") {}
};

/// Owns a socket file descriptor; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Max silence tolerated mid-structure (between a length header and the
/// bytes it announces) before the read is abandoned as a stalled peer.
inline constexpr int kMidStreamStallMs = 10'000;

/// Connected TCP stream with whole-buffer send/recv.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(Socket sock) : sock_(std::move(sock)) {}

  /// Connect to host:port; throws IoError on failure.
  static TcpStream connect(const std::string& host, std::uint16_t port);

  /// Begin a non-blocking connect; returns a nonblocking stream whose
  /// handshake may still be in flight (EINPROGRESS). Wait for writability,
  /// then check socket_error() == 0. Connection-storm clients use this to
  /// drive thousands of concurrent dials from one thread.
  static TcpStream connect_nonblocking(const std::string& host,
                                       std::uint16_t port);

  /// Pending SO_ERROR (0 if none) — resolves a non-blocking connect.
  [[nodiscard]] int socket_error() const;

  /// Send the entire buffer; throws IoError / ConnectionClosed.
  void send_all(std::span<const std::byte> data);

  /// Receive exactly data.size() bytes; throws ConnectionClosed on EOF.
  /// With stall_timeout_ms >= 0, throws IoError if the peer goes silent
  /// for that long mid-read — used after a header has announced bytes
  /// that must already be in flight, so a corrupted length field cannot
  /// block the reader forever (the bytes it waits for were never sent).
  void recv_all(std::span<std::byte> data, int stall_timeout_ms = -1);

  /// Receive up to data.size() bytes; returns 0 on orderly EOF.
  std::size_t recv_some(std::span<std::byte> data);

  /// Non-blocking receive: nullopt if the read would block, 0 on orderly
  /// EOF, else bytes received. Throws ConnectionClosed on peer reset.
  /// No fault injection — event-loop callers inject at the framing layer.
  std::optional<std::size_t> recv_nb(std::span<std::byte> data);

  /// Non-blocking send of whatever the kernel buffer takes: nullopt if it
  /// would block (zero bytes accepted), else bytes sent (may be short).
  /// Throws ConnectionClosed on EPIPE / peer reset.
  std::optional<std::size_t> send_nb(std::span<const std::byte> data);

  /// Returns true if a read would not block within timeout_ms.
  [[nodiscard]] bool readable(int timeout_ms) const;

  void set_nodelay(bool on);
  void set_nonblocking(bool on);
  void shutdown_write();
  void close() { sock_.close(); }
  [[nodiscard]] bool valid() const { return sock_.valid(); }
  [[nodiscard]] int fd() const { return sock_.fd(); }

 private:
  Socket sock_;
};

/// Listening TCP socket bound to 127.0.0.1 (this repo only talks loopback).
class TcpListener {
 public:
  /// Bind+listen; port 0 picks an ephemeral port (see port()).
  static TcpListener bind(std::uint16_t port);

  /// Accept one connection; nullopt on timeout. The listener fd is
  /// non-blocking, so a peer that resets between readiness and ::accept
  /// surfaces as EAGAIN and is treated as a spurious wakeup (nullopt)
  /// instead of blocking the acceptor in ::accept.
  std::optional<TcpStream> accept(int timeout_ms);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return sock_.fd(); }
  void close() { sock_.close(); }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

}  // namespace hdcs::net
