#pragma once
// Donor-side content-addressed blob cache (protocol v4 bulk-data plane).
//
// Blobs are immutable byte strings addressed by a 64-bit FNV-1a digest of
// their content. A donor keeps every blob it has downloaded in a bounded
// LRU memory tier, optionally mirrored to a disk directory so the cache
// survives donor restarts — the BOINC/Condor trick that lets a re-leased or
// replicated unit skip re-downloading the database chunk it shares with an
// earlier unit. get() re-verifies the digest on every hit; a mismatch
// (bit-rot, a truncated disk file, another process scribbling on the cache
// dir) silently evicts the entry and reports a miss, so the caller simply
// re-fetches from the server — corruption can cost a transfer, never a
// wrong input.
//
// Not thread-safe: each dist::Client owns one cache and touches it only
// from its work-loop thread.

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace hdcs::net {

/// 64-bit FNV-1a content digest — the blob address. Matches the digest the
/// scheduler computes when interning blobs, so both sides agree by
/// construction.
std::uint64_t blob_digest(std::span<const std::byte> data);

struct BlobCacheConfig {
  /// LRU byte budget for the in-memory tier.
  std::size_t memory_budget_bytes = 64ull * 1024 * 1024;
  /// Optional disk tier: blobs are written as `<dir>/<digest hex>.blob`.
  /// Empty = memory only. The directory is created if missing.
  std::string disk_dir;
  /// Byte budget for the disk tier (oldest files evicted first).
  std::size_t disk_budget_bytes = 256ull * 1024 * 1024;
};

class BlobCache {
 public:
  explicit BlobCache(BlobCacheConfig config = {});

  /// Look a blob up by digest (memory first, then disk). A disk hit is
  /// promoted to the memory tier. Returns nullopt on miss or when the
  /// stored bytes no longer hash to `digest` (the corrupt copy is dropped).
  std::optional<std::vector<std::byte>> get(std::uint64_t digest);

  /// Insert a blob. The digest is trusted (callers verify on receive); a
  /// blob larger than the memory budget still lands on disk when a disk
  /// tier is configured.
  void put(std::uint64_t digest, std::vector<std::byte> bytes);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;       // memory-tier LRU evictions
    std::uint64_t corrupt_dropped = 0; // digest-mismatch entries discarded
    std::uint64_t disk_write_failures = 0;  // disk-tier puts that failed
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t memory_bytes() const { return memory_bytes_; }
  [[nodiscard]] std::size_t disk_bytes() const { return disk_bytes_; }

 private:
  struct Entry {
    std::uint64_t digest;
    std::vector<std::byte> bytes;
  };
  using LruList = std::list<Entry>;

  [[nodiscard]] std::string disk_path(std::uint64_t digest) const;
  void trim_memory();
  void trim_disk();
  void disk_put(std::uint64_t digest, std::span<const std::byte> bytes);
  std::optional<std::vector<std::byte>> disk_get(std::uint64_t digest);
  void disk_drop(std::uint64_t digest);

  BlobCacheConfig config_;
  LruList lru_;  // front = most recently used
  std::map<std::uint64_t, LruList::iterator> index_;
  std::size_t memory_bytes_ = 0;
  // Disk tier bookkeeping: sizes plus insertion order for budget eviction.
  std::map<std::uint64_t, std::size_t> disk_index_;
  std::list<std::uint64_t> disk_order_;  // front = oldest
  std::size_t disk_bytes_ = 0;
  Stats stats_;
};

}  // namespace hdcs::net
