#include "net/blob_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/error.hpp"
#include "util/vfs.hpp"

namespace hdcs::net {

namespace fs = std::filesystem;

std::uint64_t blob_digest(std::span<const std::byte> data) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (std::byte b : data) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

BlobCache::BlobCache(BlobCacheConfig config) : config_(std::move(config)) {
  if (config_.disk_dir.empty()) return;
  std::error_code ec;
  fs::create_directories(config_.disk_dir, ec);
  // Adopt blobs left by a previous run, oldest first so budget eviction
  // drops the stalest ones. Unparseable names are ignored, not deleted.
  std::vector<std::pair<fs::file_time_type, std::pair<std::uint64_t, std::size_t>>>
      found;
  for (const auto& entry : fs::directory_iterator(config_.disk_dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".blob") continue;
    unsigned long long digest = 0;
    if (std::sscanf(path.stem().string().c_str(), "%16llx", &digest) != 1) {
      continue;
    }
    found.emplace_back(
        entry.last_write_time(ec),
        std::pair{static_cast<std::uint64_t>(digest),
                  static_cast<std::size_t>(entry.file_size(ec))});
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [mtime, blob] : found) {
    disk_index_[blob.first] = blob.second;
    disk_order_.push_back(blob.first);
    disk_bytes_ += blob.second;
  }
  trim_disk();
}

std::string BlobCache::disk_path(std::uint64_t digest) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.blob",
                static_cast<unsigned long long>(digest));
  return (fs::path(config_.disk_dir) / name).string();
}

std::optional<std::vector<std::byte>> BlobCache::get(std::uint64_t digest) {
  if (auto it = index_.find(digest); it != index_.end()) {
    if (blob_digest(it->second->bytes) != digest) {
      ++stats_.corrupt_dropped;
      memory_bytes_ -= it->second->bytes.size();
      lru_.erase(it->second);
      index_.erase(it);
      disk_drop(digest);
      ++stats_.misses;
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return it->second->bytes;
  }
  if (auto bytes = disk_get(digest)) {
    ++stats_.hits;
    auto copy = *bytes;
    // Promote: re-insert into the memory tier (disk copy stays).
    lru_.push_front(Entry{digest, std::move(*bytes)});
    index_[digest] = lru_.begin();
    memory_bytes_ += lru_.front().bytes.size();
    trim_memory();
    return copy;
  }
  ++stats_.misses;
  return std::nullopt;
}

void BlobCache::put(std::uint64_t digest, std::vector<std::byte> bytes) {
  disk_put(digest, bytes);
  if (auto it = index_.find(digest); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  std::size_t size = bytes.size();
  lru_.push_front(Entry{digest, std::move(bytes)});
  index_[digest] = lru_.begin();
  memory_bytes_ += size;
  trim_memory();
}

void BlobCache::trim_memory() {
  while (memory_bytes_ > config_.memory_budget_bytes && !lru_.empty()) {
    Entry& victim = lru_.back();
    memory_bytes_ -= victim.bytes.size();
    index_.erase(victim.digest);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void BlobCache::disk_put(std::uint64_t digest,
                         std::span<const std::byte> bytes) {
  if (config_.disk_dir.empty() || disk_index_.count(digest)) return;
  if (bytes.size() > config_.disk_budget_bytes) return;
  // tmp + fsync + atomic rename: a crash or an I/O error mid-write must
  // never leave a truncated `<digest>.blob` behind — a torn blob would be
  // adopted by the next run's constructor and only caught (and recounted
  // as corruption) at get() time. A failed write degrades this put to
  // memory-only and sheds the oldest half of the disk tier: the likely
  // cause is a full disk, and freeing space here is the cheapest relief.
  const std::string path = disk_path(digest);
  const std::string tmp = path + ".tmp";
  try {
    auto f = vfs::File::create(tmp);
    f.write_all(bytes);
    f.sync();
    f.close();
    vfs::rename_file(tmp, path);
  } catch (const IoError&) {
    ++stats_.disk_write_failures;
    vfs::remove_file(tmp);
    const std::size_t target = config_.disk_budget_bytes / 2;
    while (disk_bytes_ > target && !disk_order_.empty()) {
      disk_drop(disk_order_.front());
    }
    return;
  }
  disk_index_[digest] = bytes.size();
  disk_order_.push_back(digest);
  disk_bytes_ += bytes.size();
  trim_disk();
}

std::optional<std::vector<std::byte>> BlobCache::disk_get(
    std::uint64_t digest) {
  auto it = disk_index_.find(digest);
  if (it == disk_index_.end()) return std::nullopt;
  std::ifstream in(disk_path(digest), std::ios::binary);
  std::vector<std::byte> bytes(it->second);
  if (in) {
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }
  if (!in || static_cast<std::size_t>(in.gcount()) != bytes.size() ||
      blob_digest(bytes) != digest) {
    ++stats_.corrupt_dropped;
    disk_drop(digest);
    return std::nullopt;
  }
  return bytes;
}

void BlobCache::disk_drop(std::uint64_t digest) {
  auto it = disk_index_.find(digest);
  if (it == disk_index_.end()) return;
  disk_bytes_ -= it->second;
  disk_index_.erase(it);
  disk_order_.remove(digest);
  // Through the vfs so an installed capacity plan credits the bytes back —
  // evicting under disk pressure must genuinely free budget.
  vfs::remove_file(disk_path(digest));
}

void BlobCache::trim_disk() {
  while (disk_bytes_ > config_.disk_budget_bytes && !disk_order_.empty()) {
    disk_drop(disk_order_.front());
  }
}

}  // namespace hdcs::net
