#include "net/compress.hpp"

#include <cstdint>

#include "net/socket.hpp"

namespace hdcs::net {

namespace {

constexpr std::size_t kHashBits = 13;
constexpr std::uint32_t kNoPos = 0xffffffffu;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 0xffff;
// Below this there is nothing to win; above it the greedy matcher earns its
// keep. Also keeps the 4-byte hash reads trivially in range.
constexpr std::size_t kMinCompressInput = 16;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                    static_cast<std::uint32_t>(p[1]) << 8 |
                    static_cast<std::uint32_t>(p[2]) << 16 |
                    static_cast<std::uint32_t>(p[3]) << 24;
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_len(std::vector<std::byte>& out, std::size_t len) {
  while (len >= 255) {
    out.push_back(std::byte{255});
    len -= 255;
  }
  out.push_back(static_cast<std::byte>(len));
}

// token | [literal-length extension] | literals | offset u16 | [match ext.]
// A zero offset-less tail is written by the caller for the final literals.
void put_sequence(std::vector<std::byte>& out, std::span<const std::byte> src,
                  std::size_t lit_start, std::size_t lit_len,
                  std::size_t offset, std::size_t match_len) {
  std::size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  std::size_t match_nibble =
      offset == 0 ? 0
                  : (match_len - kMinMatch < 15 ? match_len - kMinMatch : 15);
  out.push_back(static_cast<std::byte>(lit_nibble << 4 | match_nibble));
  if (lit_nibble == 15) put_len(out, lit_len - 15);
  out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(lit_start),
             src.begin() + static_cast<std::ptrdiff_t>(lit_start + lit_len));
  if (offset == 0) return;  // final sequence: literals only
  out.push_back(static_cast<std::byte>(offset & 0xff));
  out.push_back(static_cast<std::byte>(offset >> 8));
  if (match_nibble == 15) put_len(out, match_len - kMinMatch - 15);
}

}  // namespace

std::optional<std::vector<std::byte>> lz_compress(
    std::span<const std::byte> src) {
  const std::size_t n = src.size();
  if (n < kMinCompressInput) return std::nullopt;
  const auto* p = reinterpret_cast<const std::uint8_t*>(src.data());
  std::vector<std::byte> out;
  out.reserve(n / 2);
  std::vector<std::uint32_t> head(std::size_t{1} << kHashBits, kNoPos);
  // Matches stop short of the last 5 bytes so the final sequence always has
  // literals to carry (same tail rule as LZ4).
  const std::size_t match_limit = n - 5;
  std::size_t lit_start = 0;
  std::size_t i = 0;
  while (i + kMinMatch <= match_limit) {
    std::uint32_t h = hash4(p + i);
    std::uint32_t cand = head[h];
    head[h] = static_cast<std::uint32_t>(i);
    if (cand != kNoPos && i - cand <= kMaxOffset && p[cand] == p[i] &&
        p[cand + 1] == p[i + 1] && p[cand + 2] == p[i + 2] &&
        p[cand + 3] == p[i + 3]) {
      std::size_t len = kMinMatch;
      while (i + len < match_limit && p[cand + len] == p[i + len]) ++len;
      put_sequence(out, src, lit_start, i - lit_start, i - cand, len);
      i += len;
      lit_start = i;
      if (out.size() >= n) return std::nullopt;  // not winning, stop early
    } else {
      ++i;
    }
  }
  put_sequence(out, src, lit_start, n - lit_start, 0, 0);
  if (out.size() >= n) return std::nullopt;
  return out;
}

std::vector<std::byte> lz_decompress(std::span<const std::byte> src,
                                     std::size_t raw_size) {
  std::vector<std::byte> out;
  out.reserve(raw_size);
  std::size_t ip = 0;
  const std::size_t ie = src.size();
  auto fail = [](const char* what) -> std::size_t {
    throw ProtocolError(std::string("lz_decompress: ") + what);
  };
  auto extend_len = [&](std::size_t base) {
    std::size_t len = base;
    if (base == 15) {
      std::uint8_t b = 255;
      while (b == 255) {
        if (ip >= ie) fail("truncated length run");
        b = static_cast<std::uint8_t>(src[ip++]);
        len += b;
        if (len > raw_size) fail("length run exceeds raw size");
      }
    }
    return len;
  };
  while (ip < ie) {
    std::uint8_t token = static_cast<std::uint8_t>(src[ip++]);
    std::size_t lit_len = extend_len(token >> 4);
    if (lit_len > ie - ip) fail("literal run past end of input");
    if (lit_len > raw_size - out.size()) fail("literal run past raw size");
    out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(ip),
               src.begin() + static_cast<std::ptrdiff_t>(ip + lit_len));
    ip += lit_len;
    if (ip == ie) break;  // final sequence carries no match
    if (ie - ip < 2) fail("truncated match offset");
    std::size_t offset = static_cast<std::uint8_t>(src[ip]) |
                         static_cast<std::size_t>(
                             static_cast<std::uint8_t>(src[ip + 1]))
                             << 8;
    ip += 2;
    if (offset == 0 || offset > out.size()) fail("match offset out of range");
    std::size_t match_len = kMinMatch + extend_len(token & 0xf);
    if (match_len > raw_size - out.size()) fail("match run past raw size");
    // Byte-by-byte on purpose: offsets shorter than the match length mean
    // the match overlaps its own output (run-length encoding).
    for (std::size_t k = 0; k < match_len; ++k) {
      out.push_back(out[out.size() - offset]);
    }
  }
  if (out.size() != raw_size) fail("decoded size mismatch");
  return out;
}

}  // namespace hdcs::net
