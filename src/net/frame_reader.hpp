#pragma once
// Incremental (non-blocking) frame parser.
//
// read_message() owns the blocking path: it can sit in recv until a whole
// frame arrives. An event-loop server instead gets bytes in arbitrary
// slices — half a header, three frames and a tail, one byte at a time —
// and FrameReader turns any such slicing into the same Message stream,
// byte-identical to read_message: same magic/version/length checks, same
// payload-CRC rejection, same error strings, same wire counters. A fuzz
// test (tests/test_net.cpp) feeds every message type through both paths at
// every split point and asserts identical decodes.
//
// Usage: feed() every received slice; completed messages append to `out`.
// ProtocolError means the stream is poisoned — tear the connection down
// exactly as the blocking path would.

#include <array>
#include <span>
#include <vector>

#include "net/message.hpp"

namespace hdcs::net {

class FrameReader {
 public:
  /// Consume `data`, appending every completed message to `out`.
  /// Throws ProtocolError on bad magic/version/length or payload CRC
  /// mismatch (same conditions and messages as read_message).
  void feed(std::span<const std::byte> data, std::vector<Message>& out);

  /// True while a frame is partially read (a header or payload has begun
  /// but not finished) — the state in which peer silence is a mid-structure
  /// stall rather than an idle connection.
  [[nodiscard]] bool mid_frame() const { return have_ > 0 || in_payload_; }

  /// Bytes buffered toward the incomplete frame (tests / introspection).
  [[nodiscard]] std::size_t pending_bytes() const {
    return in_payload_ ? kFrameHeaderBytes + payload_have_ : have_;
  }

 private:
  std::array<std::byte, kFrameHeaderBytes> header_{};
  std::size_t have_ = 0;  // header bytes collected so far
  bool in_payload_ = false;
  Message msg_;  // under construction once the header validated
  std::uint32_t expected_crc_ = 0;
  std::size_t payload_have_ = 0;
};

}  // namespace hdcs::net
