#include "net/fault.hpp"

#include <atomic>

#include "obs/metrics.hpp"

namespace hdcs::net {

namespace {
std::atomic<FaultPlan*> g_plan{nullptr};

struct FaultMetrics {
  obs::Counter& connects_refused =
      obs::Registry::global().counter("net.fault.connects_refused");
  obs::Counter& recv_disconnects =
      obs::Registry::global().counter("net.fault.recv_disconnects");
  obs::Counter& sends_truncated =
      obs::Registry::global().counter("net.fault.sends_truncated");
  obs::Counter& bytes_corrupted =
      obs::Registry::global().counter("net.fault.bytes_corrupted");
  obs::Counter& delays_injected =
      obs::Registry::global().counter("net.fault.delays_injected");
};
FaultMetrics& fault_metrics() {
  static FaultMetrics m;
  return m;
}
}  // namespace

FaultPlan::FaultPlan(FaultSpec spec) : spec_(spec), rng_(spec.seed) {}

bool FaultPlan::draw(double prob) {
  if (prob <= 0) return false;
  std::lock_guard lock(mu_);
  return rng_.next_double() < prob;
}

bool FaultPlan::refuse_connect() {
  bool hit = draw(spec_.connect_refuse_prob);
  if (hit) fault_metrics().connects_refused.inc();
  return hit;
}

bool FaultPlan::drop_recv() {
  bool hit = draw(spec_.recv_disconnect_prob);
  if (hit) fault_metrics().recv_disconnects.inc();
  return hit;
}

std::optional<std::size_t> FaultPlan::truncate_send(std::size_t len) {
  if (len == 0 || !draw(spec_.send_truncate_prob)) return std::nullopt;
  fault_metrics().sends_truncated.inc();
  std::lock_guard lock(mu_);
  return static_cast<std::size_t>(rng_.next_below(len));
}

std::optional<std::size_t> FaultPlan::corrupt_byte(std::size_t len) {
  if (len == 0 || !draw(spec_.corrupt_prob)) return std::nullopt;
  fault_metrics().bytes_corrupted.inc();
  std::lock_guard lock(mu_);
  return static_cast<std::size_t>(rng_.next_below(len));
}

double FaultPlan::delay_s() {
  if (!draw(spec_.delay_prob)) return 0;
  fault_metrics().delays_injected.inc();
  std::lock_guard lock(mu_);
  return rng_.uniform(0, spec_.delay_max_s);
}

bool FaultPlan::frame_fault() {
  double p = spec_.recv_disconnect_prob + spec_.send_truncate_prob +
             spec_.corrupt_prob;
  return draw(p < 1.0 ? p : 1.0);
}

void install_fault_plan(FaultPlan* plan) {
  g_plan.store(plan, std::memory_order_release);
}

FaultPlan* installed_fault_plan() {
  return g_plan.load(std::memory_order_acquire);
}

}  // namespace hdcs::net
