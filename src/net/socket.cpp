#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "net/fault.hpp"

namespace hdcs::net {

namespace {
[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

void set_fd_nonblocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) != 0) {
    throw_errno("fcntl(F_SETFL)");
  }
}

sockaddr_in parse_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw IoError("invalid IPv4 address: " + host);
  }
  return addr;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

void maybe_inject_delay(FaultPlan* fp) {
  if (double d = fp->delay_s(); d > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(d));
  }
}

void send_loop(int fd, std::span<const std::byte> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) throw ConnectionClosed();
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}
}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  if (FaultPlan* fp = installed_fault_plan()) {
    maybe_inject_delay(fp);
    if (fp->refuse_connect()) {
      throw IoError("injected fault: connection refused to " + host + ":" +
                    std::to_string(port));
    }
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);

  sockaddr_in addr = parse_addr(host, port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  TcpStream stream(std::move(sock));
  stream.set_nodelay(true);
  return stream;
}

TcpStream TcpStream::connect_nonblocking(const std::string& host,
                                         std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);
  set_fd_nonblocking(fd, true);

  sockaddr_in addr = parse_addr(host, port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  return TcpStream{std::move(sock)};
}

int TcpStream::socket_error() const {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(sock_.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    throw_errno("getsockopt(SO_ERROR)");
  }
  return err;
}

void TcpStream::send_all(std::span<const std::byte> data) {
  if (FaultPlan* fp = installed_fault_plan()) {
    maybe_inject_delay(fp);
    if (auto keep = fp->truncate_send(data.size())) {
      // Deliver only a prefix so the peer sees a torn frame, then break the
      // connection both ways — the peer gets EOF mid-read, we get EPIPE.
      send_loop(sock_.fd(), data.subspan(0, *keep));
      ::shutdown(sock_.fd(), SHUT_RDWR);
      throw ConnectionClosed();
    }
  }
  send_loop(sock_.fd(), data);
}

void TcpStream::recv_all(std::span<std::byte> data, int stall_timeout_ms) {
  FaultPlan* fp = installed_fault_plan();
  if (fp) {
    maybe_inject_delay(fp);
    if (fp->drop_recv()) {
      ::shutdown(sock_.fd(), SHUT_RDWR);
      throw ConnectionClosed();
    }
  }
  std::size_t got = 0;
  while (got < data.size()) {
    if (stall_timeout_ms >= 0 && !readable(stall_timeout_ms)) {
      throw IoError("peer stalled mid-read: got " + std::to_string(got) +
                    " of " + std::to_string(data.size()) + " bytes");
    }
    ssize_t n = ::recv(sock_.fd(), data.data() + got, data.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) throw ConnectionClosed();
      throw_errno("recv");
    }
    if (n == 0) throw ConnectionClosed();
    got += static_cast<std::size_t>(n);
  }
  if (fp) {
    // Flip one received byte; the frame/bulk CRCs must turn this into a
    // detected ProtocolError rather than silently merged garbage.
    if (auto idx = fp->corrupt_byte(data.size())) data[*idx] ^= std::byte{0x20};
  }
}

std::size_t TcpStream::recv_some(std::span<std::byte> data) {
  for (;;) {
    ssize_t n = ::recv(sock_.fd(), data.data(), data.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return 0;
      throw_errno("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

std::optional<std::size_t> TcpStream::recv_nb(std::span<std::byte> data) {
  for (;;) {
    ssize_t n = ::recv(sock_.fd(), data.data(), data.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
      if (errno == ECONNRESET) throw ConnectionClosed();
      throw_errno("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

std::optional<std::size_t> TcpStream::send_nb(std::span<const std::byte> data) {
  for (;;) {
    ssize_t n = ::send(sock_.fd(), data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
      if (errno == EPIPE || errno == ECONNRESET) throw ConnectionClosed();
      throw_errno("send");
    }
    return static_cast<std::size_t>(n);
  }
}

bool TcpStream::readable(int timeout_ms) const {
  pollfd pfd{};
  pfd.fd = sock_.fd();
  pfd.events = POLLIN;
  int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return false;
    throw_errno("poll");
  }
  return rc > 0;
}

void TcpStream::set_nodelay(bool on) {
  int v = on ? 1 : 0;
  if (::setsockopt(sock_.fd(), IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) != 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

void TcpStream::set_nonblocking(bool on) {
  set_fd_nonblocking(sock_.fd(), on);
}

void TcpStream::shutdown_write() {
  ::shutdown(sock_.fd(), SHUT_WR);  // best-effort; peer may already be gone
}

TcpListener TcpListener::bind(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  TcpListener listener;
  listener.sock_ = Socket(fd);

  int reuse = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse)) != 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind port " + std::to_string(port));
  }
  // Non-blocking so ::accept after readiness can never block the acceptor
  // (the peer may reset in the window between poll/epoll and accept), and a
  // deep backlog so a connection storm's SYN burst isn't refused at 128.
  set_fd_nonblocking(fd, true);
  if (::listen(fd, SOMAXCONN) != 0) throw_errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

std::optional<TcpStream> TcpListener::accept(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = sock_.fd();
  pfd.events = POLLIN;
  int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return std::nullopt;
    throw_errno("poll");
  }
  if (rc == 0) return std::nullopt;
  int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) {
    // EAGAIN: the ready connection vanished (peer reset) before we got
    // here — a spurious wakeup, not an error, now that the fd is O_NONBLOCK.
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return std::nullopt;
    }
    throw_errno("accept");
  }
  TcpStream stream{Socket(fd)};
  stream.set_nodelay(true);
  return stream;
}

}  // namespace hdcs::net
