#include "dprml/dprml.hpp"

#include <algorithm>
#include <array>
#include <mutex>

#include "dist/local_runner.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"
#include "util/strings.hpp"

namespace hdcs::dprml {

namespace {
std::uint64_t fnv64(std::span<const std::byte> data) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::byte b : data) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

/// How many Brent evaluations one branch optimisation costs, roughly.
constexpr double kEvalsPerBranch = 15.0;
}  // namespace

DPRmlConfig DPRmlConfig::from_config(const Config& cfg) {
  DPRmlConfig c;
  c.model_spec = cfg.get_str("model", "HKY85+G4");
  c.kappa = cfg.get_f64("kappa", 2.0);
  c.alpha = cfg.get_f64("alpha", 0.5);
  c.pinv = cfg.get_f64("pinv", 0.1);
  c.basefreq = cfg.get_str("basefreq", "");
  c.gtr_rates = cfg.get_str("gtr_rates", "");
  c.order_seed = static_cast<std::uint64_t>(cfg.get_i64("order_seed", 0));
  c.pendant_branch = cfg.get_f64("pendant_branch", 0.1);
  c.branch_tolerance = cfg.get_f64("branch_tolerance", 1e-3);
  c.eval_passes = static_cast<int>(cfg.get_i64("eval_passes", 1));
  c.refine_passes = static_cast<int>(cfg.get_i64("refine_passes", 2));
  c.full_refine_every = static_cast<int>(cfg.get_i64("full_refine_every", 5));
  c.use_eval_cache = cfg.get_bool("use_eval_cache", true);
  c.nni_rounds = static_cast<int>(cfg.get_i64("nni_rounds", 0));
  if (c.nni_rounds < 0) throw InputError("nni_rounds must be >= 0");
  c.cost_scale = cfg.get_f64("cost_scale", 1.0);
  if (c.cost_scale <= 0) throw InputError("cost_scale must be > 0");
  if (c.pendant_branch <= 0) throw InputError("pendant_branch must be > 0");
  if (c.eval_passes < 1 || c.refine_passes < 1) {
    throw InputError("optimisation passes must be >= 1");
  }
  if (c.full_refine_every < 1) {
    throw InputError("full_refine_every must be >= 1");
  }
  // Validate the model spec early so bad configs fail at submission time.
  phylo::ModelSpec::parse(c.model_spec, c.model_params());
  return c;
}

Config DPRmlConfig::model_params() const {
  Config params;
  params.set("kappa", format_f64(kappa, 10));
  params.set("alpha", format_f64(alpha, 10));
  params.set("pinv", format_f64(pinv, 10));
  if (!basefreq.empty()) params.set("basefreq", basefreq);
  if (!gtr_rates.empty()) params.set("gtr_rates", gtr_rates);
  return params;
}

// ---- wire helpers ----

namespace {
void encode_config_fields(ByteWriter& w, const DPRmlConfig& c) {
  w.str(c.model_spec);
  w.f64(c.kappa);
  w.f64(c.alpha);
  w.f64(c.pinv);
  w.str(c.basefreq);
  w.str(c.gtr_rates);
  w.u64(c.order_seed);
  w.f64(c.pendant_branch);
  w.f64(c.branch_tolerance);
  w.i32(c.eval_passes);
  w.i32(c.refine_passes);
  w.i32(c.full_refine_every);
  w.boolean(c.use_eval_cache);
  w.i32(c.nni_rounds);
  w.f64(c.cost_scale);
}

DPRmlConfig decode_config_fields(ByteReader& r) {
  DPRmlConfig c;
  c.model_spec = r.str();
  c.kappa = r.f64();
  c.alpha = r.f64();
  c.pinv = r.f64();
  c.basefreq = r.str();
  c.gtr_rates = r.str();
  c.order_seed = r.u64();
  c.pendant_branch = r.f64();
  c.branch_tolerance = r.f64();
  c.eval_passes = r.i32();
  c.refine_passes = r.i32();
  c.full_refine_every = r.i32();
  c.use_eval_cache = r.boolean();
  c.nni_rounds = r.i32();
  c.cost_scale = r.f64();
  return c;
}
}  // namespace

void encode_dprml_result(ByteWriter& w, const DPRmlResult& r) {
  w.str(r.newick);
  w.f64(r.log_likelihood);
  w.f64_vec(r.stage_log_likelihoods);
}

DPRmlResult decode_dprml_result(ByteReader& r) {
  DPRmlResult out;
  out.newick = r.str();
  out.log_likelihood = r.f64();
  out.stage_log_likelihoods = r.f64_vec();
  return out;
}

void encode_init_unit(ByteWriter& w, const std::vector<std::string>& taxa) {
  w.u8(static_cast<std::uint8_t>(UnitKind::kInit));
  w.str_vec(taxa);
}

void encode_eval_unit(ByteWriter& w, const EvalUnitPayload& p) {
  w.u8(static_cast<std::uint8_t>(UnitKind::kEval));
  w.str(p.tree_newick);
  w.str(p.taxon);
  w.u32(static_cast<std::uint32_t>(p.edge_nodes.size()));
  for (int e : p.edge_nodes) w.i32(e);
}

void encode_refine_unit(ByteWriter& w, const std::string& newick, bool full,
                        const std::string& focus_taxon) {
  w.u8(static_cast<std::uint8_t>(UnitKind::kRefine));
  w.str(newick);
  w.boolean(full);
  w.str(focus_taxon);
}

// ---- eval cache ----

EvalCache& EvalCache::global() {
  static EvalCache cache;
  return cache;
}

std::optional<CachedEval> EvalCache::lookup(const std::string& key) const {
  std::lock_guard lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void EvalCache::store(const std::string& key, const CachedEval& value) {
  std::lock_guard lock(mutex_);
  map_[key] = value;
}

void EvalCache::clear() {
  std::lock_guard lock(mutex_);
  map_.clear();
}

std::size_t EvalCache::size() const {
  std::lock_guard lock(mutex_);
  return map_.size();
}

// ---- DataManager ----

DPRmlDataManager::DPRmlDataManager(phylo::Alignment alignment, DPRmlConfig config)
    : alignment_(std::move(alignment)), config_(std::move(config)) {
  alignment_.validate();
  if (alignment_.taxon_count() < 4) {
    throw InputError("DPRml: need at least 4 taxa (3-taxon trees are unique)");
  }
  order_ = alignment_.names;
  if (config_.order_seed != 0) {
    Rng rng(config_.order_seed);
    rng.shuffle(order_);
  }
  auto patterns = phylo::compress(alignment_);
  auto spec = phylo::ModelSpec::parse(config_.model_spec, config_.model_params());
  pattern_cost_ = static_cast<double>(patterns.patterns) *
                  static_cast<double>(spec.rates.category_count()) * 32.0 *
                  config_.cost_scale;
}

std::string DPRmlDataManager::algorithm_name() const { return kAlgorithmName; }

std::vector<std::byte> DPRmlDataManager::problem_data() const {
  ByteWriter w;
  encode_config_fields(w, config_);
  w.str(alignment_.to_fasta());
  return w.take();
}

double DPRmlDataManager::per_edge_cost() const {
  // One candidate = 3 branch optimisations on a tree with ~next_taxon_
  // leaves: nodes x pattern_cost x Brent evals x passes.
  double nodes = 2.0 * std::max(3, next_taxon_);
  return nodes * pattern_cost_ * kEvalsPerBranch * 3.0 * config_.eval_passes;
}

std::optional<dist::WorkUnit> DPRmlDataManager::next_unit(
    const dist::SizeHint& hint) {
  dist::WorkUnit unit;
  unit.stage = stage_;

  switch (phase_) {
    case Phase::kInit: {
      if (init_issued_) return std::nullopt;  // barrier on the init result
      init_issued_ = true;
      outstanding_ = 1;
      ByteWriter w;
      encode_init_unit(w, {order_[0], order_[1], order_[2]});
      unit.payload = w.take();
      unit.cost_ops = 3.0 * 6.0 * pattern_cost_ * kEvalsPerBranch;
      return unit;
    }
    case Phase::kEval: {
      if (pending_edges_.empty()) return std::nullopt;  // barrier
      auto batch = static_cast<std::size_t>(
          std::max(1.0, hint.target_ops / per_edge_cost()));
      batch = std::min(batch, pending_edges_.size());

      // Shared-tree layout: fixed fields in the payload, the stage's tree
      // in a content-addressed blob. Every batch of this stage references
      // the same blob, so donors download the tree once per stage.
      ByteWriter w;
      w.u8(static_cast<std::uint8_t>(UnitKind::kEvalShared));
      w.str(order_[static_cast<std::size_t>(next_taxon_)]);
      w.u32(static_cast<std::uint32_t>(batch));
      for (std::size_t i = 0; i < batch; ++i) w.i32(pending_edges_[i]);
      pending_edges_.erase(pending_edges_.begin(),
                           pending_edges_.begin() + static_cast<std::ptrdiff_t>(batch));
      unit.payload = w.take();
      unit.blobs.push_back(dist::make_work_blob(
          {as_bytes(current_tree_).begin(), as_bytes(current_tree_).end()}));
      unit.cost_ops = static_cast<double>(batch) * per_edge_cost();
      outstanding_ += 1;
      return unit;
    }
    case Phase::kRefine: {
      if (refine_issued_) return std::nullopt;
      refine_issued_ = true;
      outstanding_ = 1;
      ByteWriter w;
      encode_refine_unit(w, current_tree_, refine_full_,
                         order_[static_cast<std::size_t>(next_taxon_)]);
      unit.payload = w.take();
      // Local smoothing touches ~5 branches; a full pass touches them all.
      double branches = refine_full_ ? 2.0 * (next_taxon_ + 1) : 5.0;
      unit.cost_ops = branches * pattern_cost_ * kEvalsPerBranch *
                      config_.refine_passes * 2.0 * (next_taxon_ + 1);
      return unit;
    }
    case Phase::kNni: {
      if (pending_nni_.empty()) return std::nullopt;  // barrier
      auto batch = static_cast<std::size_t>(
          std::max(1.0, hint.target_ops / per_edge_cost()));
      batch = std::min(batch, pending_nni_.size());

      ByteWriter w;
      w.u8(static_cast<std::uint8_t>(UnitKind::kNniEvalShared));
      w.u32(static_cast<std::uint32_t>(batch));
      for (std::size_t i = 0; i < batch; ++i) {
        w.i32(pending_nni_[i].edge_node);
        w.u8(static_cast<std::uint8_t>(pending_nni_[i].variant));
      }
      pending_nni_.erase(pending_nni_.begin(),
                         pending_nni_.begin() + static_cast<std::ptrdiff_t>(batch));
      unit.payload = w.take();
      unit.blobs.push_back(dist::make_work_blob(
          {as_bytes(current_tree_).begin(), as_bytes(current_tree_).end()}));
      unit.cost_ops = static_cast<double>(batch) * per_edge_cost();
      outstanding_ += 1;
      return unit;
    }
    case Phase::kDone:
      return std::nullopt;
  }
  return std::nullopt;
}

void DPRmlDataManager::start_nni_phase() {
  in_rearrangement_ = true;
  nni_rounds_done_ += 1;
  phase_ = Phase::kNni;
  stage_ += 1;
  auto tree = phylo::Tree::parse_newick(current_tree_);
  pending_nni_.clear();
  nni_scores_.clear();
  outstanding_ = 0;
  for (int edge : tree.internal_edges()) {
    pending_nni_.push_back({edge, 0});
    pending_nni_.push_back({edge, 1});
  }
  if (pending_nni_.empty()) phase_ = Phase::kDone;  // degenerate tiny tree
}

void DPRmlDataManager::start_eval_phase() {
  phase_ = Phase::kEval;
  stage_ += 1;
  auto tree = phylo::Tree::parse_newick(current_tree_);
  pending_edges_ = tree.edge_nodes();
  scores_.clear();
  outstanding_ = 0;
}

void DPRmlDataManager::accept_result(const dist::ResultUnit& result) {
  ByteReader r(result.payload);
  auto kind = static_cast<UnitKind>(r.u8());
  outstanding_ -= 1;

  switch (kind) {
    case UnitKind::kInit: {
      current_tree_ = r.str();
      current_logl_ = r.f64();
      r.expect_end();
      stage_logl_.push_back(current_logl_);
      start_eval_phase();
      break;
    }
    case UnitKind::kEval: {
      std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        CandidateScore s;
        s.edge_node = r.i32();
        s.log_likelihood = r.f64();
        s.leaf_bl = r.f64();
        s.mid_bl = r.f64();
        s.edge_bl = r.f64();
        scores_.push_back(s);
      }
      r.expect_end();
      if (outstanding_ == 0 && pending_edges_.empty()) {
        // Stage barrier cleared: pick the ML-best insertion point
        // (ties broken by edge id for determinism).
        if (scores_.empty()) throw Error("DPRml: eval stage with no scores");
        const CandidateScore* best = &scores_.front();
        for (const auto& s : scores_) {
          if (s.log_likelihood > best->log_likelihood ||
              (s.log_likelihood == best->log_likelihood &&
               s.edge_node < best->edge_node)) {
            best = &s;
          }
        }
        auto tree = phylo::Tree::parse_newick(current_tree_);
        int leaf = tree.insert_leaf_on_edge(
            best->edge_node, order_[static_cast<std::size_t>(next_taxon_)],
            std::max(best->leaf_bl, 1e-8));
        int mid = tree.parent(leaf);
        tree.set_branch_length(mid, std::max(best->mid_bl, 0.0));
        tree.set_branch_length(best->edge_node, std::max(best->edge_bl, 0.0));
        current_tree_ = tree.to_newick();
        current_logl_ = best->log_likelihood;
        stage_ += 1;
        // Periodic global smoothing (fastDNAml): every Nth insertion and
        // after the last one; other insertions continue straight to the
        // next taxon with the worker-optimised branch lengths applied.
        int inserted = next_taxon_ - 2;  // 1-based count of insertions
        bool full_due = (inserted % config_.full_refine_every == 0) ||
                        (next_taxon_ + 1 >= static_cast<int>(order_.size()));
        if (full_due) {
          phase_ = Phase::kRefine;
          refine_issued_ = false;
          refine_full_ = true;
        } else {
          stage_logl_.push_back(current_logl_);
          next_taxon_ += 1;
          start_eval_phase();
        }
      }
      break;
    }
    case UnitKind::kRefine: {
      current_tree_ = r.str();
      current_logl_ = r.f64();
      r.expect_end();
      stage_logl_.push_back(current_logl_);
      if (!in_rearrangement_) {
        next_taxon_ += 1;
        if (next_taxon_ < static_cast<int>(order_.size())) {
          start_eval_phase();
          break;
        }
      }
      // Stepwise insertion is finished (or a post-NNI smoothing landed):
      // keep rearranging while rounds remain, otherwise we are done.
      if (config_.nni_rounds > nni_rounds_done_) {
        start_nni_phase();
      } else {
        phase_ = Phase::kDone;
      }
      break;
    }
    case UnitKind::kNniEval: {
      std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        NniCandidate c;
        c.edge_node = r.i32();
        c.variant = r.u8();
        double logl = r.f64();
        nni_scores_.emplace_back(c, logl);
      }
      r.expect_end();
      if (outstanding_ == 0 && pending_nni_.empty()) {
        // Round barrier cleared: apply the best improving rearrangement.
        const std::pair<NniCandidate, double>* best = nullptr;
        for (const auto& cand : nni_scores_) {
          if (!best || cand.second > best->second ||
              (cand.second == best->second &&
               (cand.first.edge_node < best->first.edge_node ||
                (cand.first.edge_node == best->first.edge_node &&
                 cand.first.variant < best->first.variant)))) {
            best = &cand;
          }
        }
        if (best && best->second > current_logl_ + 1e-9) {
          auto tree = phylo::Tree::parse_newick(current_tree_);
          tree.nni(best->first.edge_node, best->first.variant);
          current_tree_ = tree.to_newick();
          current_logl_ = best->second;
          // Smooth the rearranged tree, then (maybe) go again.
          phase_ = Phase::kRefine;
          stage_ += 1;
          refine_issued_ = false;
          refine_full_ = true;
        } else {
          phase_ = Phase::kDone;  // local optimum: stop early
        }
      }
      break;
    }
    default:
      throw ProtocolError("DPRml: unknown result kind");
  }
}

bool DPRmlDataManager::is_complete() const { return phase_ == Phase::kDone; }

std::vector<std::byte> DPRmlDataManager::final_result() const {
  ByteWriter w;
  encode_dprml_result(w, result());
  return w.take();
}

DPRmlResult DPRmlDataManager::result() const {
  DPRmlResult r;
  r.newick = current_tree_;
  r.log_likelihood = current_logl_;
  r.stage_log_likelihoods = stage_logl_;
  return r;
}

double DPRmlDataManager::remaining_ops_estimate() const {
  double ops = 0;
  const int total = static_cast<int>(order_.size());
  for (int k = std::max(next_taxon_, 3); k < total; ++k) {
    double edges = 2.0 * k - 3.0;
    ops += edges * per_edge_cost();
  }
  return ops;
}

void DPRmlDataManager::snapshot(ByteWriter& w) const {
  w.str(current_tree_);
  w.f64(current_logl_);
  w.f64_vec(stage_logl_);
  w.u8(static_cast<std::uint8_t>(phase_));
  w.i32(next_taxon_);
  w.u32(stage_);
  w.u32(static_cast<std::uint32_t>(pending_edges_.size()));
  for (int e : pending_edges_) w.i32(e);
  w.i32(outstanding_);
  w.u32(static_cast<std::uint32_t>(scores_.size()));
  for (const auto& sc : scores_) {
    w.i32(sc.edge_node);
    w.f64(sc.log_likelihood);
    w.f64(sc.leaf_bl);
    w.f64(sc.mid_bl);
    w.f64(sc.edge_bl);
  }
  w.u32(static_cast<std::uint32_t>(pending_nni_.size()));
  for (const auto& c : pending_nni_) {
    w.i32(c.edge_node);
    w.u8(static_cast<std::uint8_t>(c.variant));
  }
  w.u32(static_cast<std::uint32_t>(nni_scores_.size()));
  for (const auto& [c, logl] : nni_scores_) {
    w.i32(c.edge_node);
    w.u8(static_cast<std::uint8_t>(c.variant));
    w.f64(logl);
  }
  w.boolean(in_rearrangement_);
  w.i32(nni_rounds_done_);
  w.boolean(init_issued_);
  w.boolean(refine_issued_);
  w.boolean(refine_full_);
}

void DPRmlDataManager::restore(ByteReader& r) {
  current_tree_ = r.str();
  current_logl_ = r.f64();
  stage_logl_ = r.f64_vec();
  phase_ = static_cast<Phase>(r.u8());
  next_taxon_ = r.i32();
  stage_ = r.u32();
  pending_edges_.resize(r.u32());
  for (auto& e : pending_edges_) e = r.i32();
  outstanding_ = r.i32();
  scores_.resize(r.u32());
  for (auto& sc : scores_) {
    sc.edge_node = r.i32();
    sc.log_likelihood = r.f64();
    sc.leaf_bl = r.f64();
    sc.mid_bl = r.f64();
    sc.edge_bl = r.f64();
  }
  pending_nni_.resize(r.u32());
  for (auto& c : pending_nni_) {
    c.edge_node = r.i32();
    c.variant = r.u8();
  }
  nni_scores_.resize(r.u32());
  for (auto& [c, logl] : nni_scores_) {
    c.edge_node = r.i32();
    c.variant = r.u8();
    logl = r.f64();
  }
  in_rearrangement_ = r.boolean();
  nni_rounds_done_ = r.i32();
  init_issued_ = r.boolean();
  refine_issued_ = r.boolean();
  refine_full_ = r.boolean();
}

// ---- Algorithm ----

void DPRmlAlgorithm::initialize(std::span<const std::byte> problem_data) {
  ByteReader r(problem_data);
  config_ = decode_config_fields(r);
  alignment_ = phylo::Alignment::from_fasta(r.str());
  r.expect_end();

  auto spec = phylo::ModelSpec::parse(config_.model_spec, config_.model_params());
  model_ = spec.model;
  rates_ = spec.rates;
  patterns_ = phylo::compress(alignment_);
  engine_ = std::make_unique<phylo::LikelihoodEngine>(*patterns_, model_, rates_);
  // 0=scalar 1=sse2 2=avx2: which partials-kernel tier the likelihood
  // engine will dispatch on this host (util/simd.hpp).
  obs::Registry::global().gauge("simd.tier")
      .set(static_cast<double>(static_cast<int>(simd_tier())));

  // Cache keys must distinguish different problems (alignment + model).
  ByteWriter key;
  encode_config_fields(key, config_);
  key.str(alignment_.to_fasta());
  cache_prefix_ = std::to_string(fnv64(key.data())) + "|";
}

namespace {

/// The shared tree of a kEvalShared/kNniEvalShared unit: blobs[0] on a v4
/// donor, or the bytes the server appended to the payload when flattening
/// for a v3 donor. Either way the Newick occupies the tail of the decoded
/// stream, so both paths read identical bytes.
std::string shared_tree_newick(const dist::WorkUnit& unit, ByteReader& r) {
  if (!unit.blobs.empty()) {
    r.expect_end();
    const auto& b = unit.blobs.front().bytes;
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
  auto rest = r.raw(r.remaining());
  return std::string(reinterpret_cast<const char*>(rest.data()), rest.size());
}

}  // namespace

std::vector<std::byte> DPRmlAlgorithm::process(const dist::WorkUnit& unit) {
  if (!engine_) throw Error("DPRmlAlgorithm: process before initialize");
  ByteReader r(unit.payload);
  auto kind = static_cast<UnitKind>(r.u8());
  // Shared-tree units answer with the legacy kind byte, so the
  // DataManager's merge path (and result dedup across mixed v3/v4 donor
  // fleets) never sees the transport difference.
  UnitKind result_kind = kind;
  if (kind == UnitKind::kEvalShared) result_kind = UnitKind::kEval;
  if (kind == UnitKind::kNniEvalShared) result_kind = UnitKind::kNniEval;
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(result_kind));

  switch (kind) {
    case UnitKind::kInit: {
      auto taxa = r.str_vec();
      r.expect_end();
      if (taxa.size() != 3) throw ProtocolError("init unit needs 3 taxa");
      auto tree = phylo::Tree::three_taxon(taxa[0], taxa[1], taxa[2],
                                           config_.pendant_branch);
      double logl =
          engine_->optimize_all_branches(tree, config_.refine_passes,
                                         config_.branch_tolerance);
      out.str(tree.to_newick());
      out.f64(logl);
      break;
    }
    case UnitKind::kEval:
    case UnitKind::kEvalShared: {
      std::string newick, taxon;
      std::uint32_t n = 0;
      std::vector<int> edges;
      if (kind == UnitKind::kEval) {
        newick = r.str();
        taxon = r.str();
        n = r.u32();
        edges.resize(n);
        for (auto& e : edges) e = r.i32();
        r.expect_end();
      } else {
        taxon = r.str();
        n = r.u32();
        edges.resize(n);
        for (auto& e : edges) e = r.i32();
        newick = shared_tree_newick(unit, r);
      }

      out.u32(n);
      auto emit = [&out](int edge, const CachedEval& e) {
        out.i32(edge);
        out.f64(e.log_likelihood);
        out.f64(e.leaf_bl);
        out.f64(e.mid_bl);
        out.f64(e.edge_bl);
      };
      for (int edge : edges) {
        std::string key;
        if (config_.use_eval_cache) {
          key = cache_prefix_ + newick + "|" + taxon + "|" + std::to_string(edge);
          if (auto hit = EvalCache::global().lookup(key)) {
            emit(edge, *hit);
            continue;
          }
        }
        auto tree = phylo::Tree::parse_newick(newick);
        int leaf = tree.insert_leaf_on_edge(edge, taxon, config_.pendant_branch);
        int mid = tree.parent(leaf);
        // Optimise the three branches the insertion created/changed
        // (fastDNAml's local optimisation when scoring a placement).
        std::array<int, 3> local = {leaf, mid, edge};
        CachedEval e;
        e.log_likelihood = engine_->optimize_branches(
            tree, local, config_.eval_passes, config_.branch_tolerance);
        e.leaf_bl = tree.branch_length(leaf);
        e.mid_bl = tree.branch_length(mid);
        e.edge_bl = tree.branch_length(edge);
        if (config_.use_eval_cache) EvalCache::global().store(key, e);
        emit(edge, e);
      }
      break;
    }
    case UnitKind::kNniEval:
    case UnitKind::kNniEvalShared: {
      std::string newick;
      std::uint32_t n = 0;
      std::vector<NniCandidate> cands;
      if (kind == UnitKind::kNniEval) {
        newick = r.str();
        n = r.u32();
        cands.resize(n);
        for (auto& c : cands) {
          c.edge_node = r.i32();
          c.variant = r.u8();
        }
        r.expect_end();
      } else {
        n = r.u32();
        cands.resize(n);
        for (auto& c : cands) {
          c.edge_node = r.i32();
          c.variant = r.u8();
        }
        newick = shared_tree_newick(unit, r);
      }

      out.u32(n);
      for (const auto& c : cands) {
        std::string key;
        if (config_.use_eval_cache) {
          key = cache_prefix_ + "N|" + newick + "|" +
                std::to_string(c.edge_node) + "|" + std::to_string(c.variant);
          if (auto hit = EvalCache::global().lookup(key)) {
            out.i32(c.edge_node);
            out.u8(static_cast<std::uint8_t>(c.variant));
            out.f64(hit->log_likelihood);
            continue;
          }
        }
        auto tree = phylo::Tree::parse_newick(newick);
        tree.nni(c.edge_node, c.variant);
        // Optimise the swapped edge and its surroundings.
        std::vector<int> local = {c.edge_node};
        if (tree.parent(c.edge_node) != tree.root()) {
          local.push_back(tree.parent(c.edge_node));
        }
        for (int child : tree.at(c.edge_node).children) local.push_back(child);
        double logl = engine_->optimize_branches(tree, local, config_.eval_passes,
                                                 config_.branch_tolerance);
        if (config_.use_eval_cache) {
          CachedEval e;
          e.log_likelihood = logl;
          EvalCache::global().store(key, e);
        }
        out.i32(c.edge_node);
        out.u8(static_cast<std::uint8_t>(c.variant));
        out.f64(logl);
      }
      break;
    }
    case UnitKind::kRefine: {
      std::string newick = r.str();
      bool full = r.boolean();
      std::string focus = r.str();
      r.expect_end();
      auto tree = phylo::Tree::parse_newick(newick);
      double logl;
      if (full) {
        logl = engine_->optimize_all_branches(tree, config_.refine_passes,
                                              config_.branch_tolerance);
      } else {
        // Local smoothing: the new pendant branch, the split edge halves,
        // and the edges adjacent to the insertion point.
        int leaf = tree.find_leaf(focus)
                       ? *tree.find_leaf(focus)
                       : throw ProtocolError("refine: focus taxon not in tree");
        int mid = tree.parent(leaf);
        std::vector<int> local = {leaf};
        if (mid != tree.root()) local.push_back(mid);
        for (int child : tree.at(mid).children) {
          if (child != leaf) local.push_back(child);
        }
        if (mid != tree.root() && tree.parent(mid) != tree.root()) {
          local.push_back(tree.parent(mid));
        }
        logl = engine_->optimize_branches(tree, local, config_.refine_passes,
                                          config_.branch_tolerance);
      }
      out.str(tree.to_newick());
      out.f64(logl);
      break;
    }
    default:
      throw ProtocolError("DPRml: unknown unit kind");
  }
  return out.take();
}

void register_algorithm() {
  dist::AlgorithmRegistry::global().replace(
      kAlgorithmName, [] { return std::make_unique<DPRmlAlgorithm>(); });
}

DPRmlResult build_tree_serial(const phylo::Alignment& alignment,
                              const DPRmlConfig& config) {
  register_algorithm();
  DPRmlDataManager dm(alignment, config);
  auto bytes = dist::run_locally(dm, 1e18);
  ByteReader r{std::span<const std::byte>(bytes)};
  auto result = decode_dprml_result(r);
  r.expect_end();
  return result;
}

}  // namespace hdcs::dprml
