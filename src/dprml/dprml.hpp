#pragma once
// DPRml: Distributed Phylogeny Reconstruction by Maximum Likelihood
// (paper §3.2; Keane et al., Bioinformatics 2004 [9]).
//
// Stepwise insertion (the "already proven tree building algorithm" of
// fastDNAml [11, 16]) as a staged distributed computation:
//
//   stage 0            one unit: optimise the unique 3-taxon tree.
//   stage 3k+1 (eval)  taxon k is tried against every edge of the current
//                      tree; edges are batched into dynamically sized units
//                      and each candidate insertion is scored by ML on a
//                      donor machine. Barrier: the best edge can only be
//                      chosen once every batch has reported.
//   every Nth insertion (and the last): one "refine" unit re-optimises
//                      all branch lengths of the accepted tree (fastDNAml's
//                      periodic global smoothing). Other insertions apply
//                      the winner's locally-optimised branch lengths
//                      directly, with no extra barrier.
//   ... until all taxa are inserted; the final refined tree is the result.
//
// The stage barriers are why a single DPRml instance leaves donors idle
// ("DPRml is a staged computation so running a single instance of the
// application will result in clients becoming idle whilst waiting for
// stages to be completed") and why Fig. 2 measures six instances running
// simultaneously — the scheduler interleaves their units.

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/algorithm.hpp"
#include "dist/data_manager.hpp"
#include "dist/registry.hpp"
#include "phylo/likelihood.hpp"
#include "util/byte_buffer.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace hdcs::dprml {

inline constexpr const char* kAlgorithmName = "dprml";

struct DPRmlConfig {
  std::string model_spec = "HKY85+G4";
  double kappa = 2.0;
  double alpha = 0.5;
  double pinv = 0.1;          // used only with +I
  std::string basefreq;       // "a,c,g,t"; empty = equal
  std::string gtr_rates;      // 6 values; empty = all 1
  /// Taxon addition order: 0 = alignment order, else shuffle seed.
  std::uint64_t order_seed = 0;
  double pendant_branch = 0.1;     // initial length for a new leaf
  double branch_tolerance = 1e-3;  // Brent x-tolerance
  int eval_passes = 1;             // optimisation sweeps when scoring a candidate
  int refine_passes = 2;           // sweeps in the refine stage
  /// fastDNAml-style smoothing schedule: most insertions are followed by a
  /// *local* refine (the branches around the new leaf); every Nth
  /// insertion — and the last one — triggers a full-tree re-optimisation.
  int full_refine_every = 5;
  /// Enable the process-wide candidate evaluation cache (deterministic
  /// function of payload; shared across simulator sweep runs).
  bool use_eval_cache = true;
  /// Rounds of NNI (nearest-neighbour-interchange) rearrangement after the
  /// last insertion: each round scores every NNI neighbour of the current
  /// tree on the donors, applies the best if it improves the likelihood,
  /// then re-smooths. 0 disables (plain stepwise insertion). This is the
  /// "local rearrangements" option of the fastDNAml family [11, 16].
  int nni_rounds = 0;
  /// Simulation workload magnifier: multiplies every unit's virtual
  /// cost_ops (the alignment *appears* cost_scale times longer to the
  /// scheduler/simulator) without changing what is computed. 1.0 for real
  /// deployments; see DESIGN.md on scaled-world simulation.
  double cost_scale = 1.0;

  static DPRmlConfig from_config(const Config& cfg);
  /// The Config carrying the model's numeric parameters.
  [[nodiscard]] Config model_params() const;
};

/// One candidate insertion score (eval unit results). The optimised local
/// branch lengths ride along so the master can apply the winning insertion
/// without re-computing anything (parallel fastDNAml's protocol [16]).
struct CandidateScore {
  int edge_node = -1;
  double log_likelihood = 0;
  double leaf_bl = 0;  // pendant branch of the new taxon
  double mid_bl = 0;   // upper half of the split edge
  double edge_bl = 0;  // lower half of the split edge
};

/// One NNI rearrangement candidate: swap `variant` across the internal
/// edge above `edge_node`.
struct NniCandidate {
  int edge_node = -1;
  int variant = 0;
};

/// Final output of a DPRml run.
struct DPRmlResult {
  std::string newick;
  double log_likelihood = 0;
  std::vector<double> stage_log_likelihoods;  // after each refine
};

void encode_dprml_result(ByteWriter& w, const DPRmlResult& r);
DPRmlResult decode_dprml_result(ByteReader& r);

/// Serial reference: full stepwise-insertion run in-process.
DPRmlResult build_tree_serial(const phylo::Alignment& alignment,
                              const DPRmlConfig& config);

class DPRmlDataManager final : public dist::DataManager {
 public:
  DPRmlDataManager(phylo::Alignment alignment, DPRmlConfig config);

  [[nodiscard]] std::string algorithm_name() const override;
  [[nodiscard]] std::vector<std::byte> problem_data() const override;
  std::optional<dist::WorkUnit> next_unit(const dist::SizeHint& hint) override;
  void accept_result(const dist::ResultUnit& result) override;
  [[nodiscard]] bool is_complete() const override;
  [[nodiscard]] std::vector<std::byte> final_result() const override;
  [[nodiscard]] double remaining_ops_estimate() const override;

  [[nodiscard]] DPRmlResult result() const;
  [[nodiscard]] int taxa_inserted() const { return next_taxon_; }

  [[nodiscard]] bool supports_snapshot() const override { return true; }
  void snapshot(ByteWriter& w) const override;
  void restore(ByteReader& r) override;

 private:
  enum class Phase { kInit, kEval, kRefine, kNni, kDone };

  void start_eval_phase();
  void start_nni_phase();
  [[nodiscard]] double per_edge_cost() const;

  phylo::Alignment alignment_;
  DPRmlConfig config_;
  std::vector<std::string> order_;   // taxon insertion order
  std::string current_tree_;         // refined Newick of the accepted tree
  double current_logl_ = 0;
  std::vector<double> stage_logl_;

  Phase phase_ = Phase::kInit;
  int next_taxon_ = 3;               // index into order_ of the taxon being added
  std::uint32_t stage_ = 0;
  std::vector<int> pending_edges_;   // eval phase: edges not yet handed out
  int outstanding_ = 0;
  std::vector<CandidateScore> scores_;  // eval phase: collected candidates
  std::vector<NniCandidate> pending_nni_;   // NNI phase: not yet handed out
  std::vector<std::pair<NniCandidate, double>> nni_scores_;
  bool in_rearrangement_ = false;
  int nni_rounds_done_ = 0;
  bool init_issued_ = false;
  bool refine_issued_ = false;
  bool refine_full_ = false;         // current refine: full or local smoothing
  double pattern_cost_ = 0;          // cached cost basis
};

class DPRmlAlgorithm final : public dist::Algorithm {
 public:
  void initialize(std::span<const std::byte> problem_data) override;
  std::vector<std::byte> process(const dist::WorkUnit& unit) override;

 private:
  std::optional<phylo::PatternAlignment> patterns_;
  phylo::Alignment alignment_;
  DPRmlConfig config_;
  std::shared_ptr<const phylo::SubstModel> model_;
  phylo::RateModel rates_;
  std::unique_ptr<phylo::LikelihoodEngine> engine_;
  std::string cache_prefix_;  // problem identity for the global eval cache
};

/// Register DPRmlAlgorithm under kAlgorithmName (idempotent).
void register_algorithm();

// ---- unit payload kinds (exposed for tests) ----
enum class UnitKind : std::uint8_t {
  kInit = 0,
  kEval = 1,
  kRefine = 2,
  kNniEval = 3,
  /// Blob-backed eval/NNI variants (protocol v4 data plane): the fixed
  /// fields stay in the payload and the shared tree Newick rides in
  /// blobs[0] — every batch of the same stage references one interned
  /// blob, so a donor downloads the tree once per stage instead of once
  /// per unit. The tree bytes sit at the *end*, so a v3 donor that
  /// receives the server-flattened payload (blob appended) decodes the
  /// identical bytes. Results are reported with the legacy kind byte.
  kEvalShared = 4,
  kNniEvalShared = 5,
};

struct EvalUnitPayload {
  std::string tree_newick;
  std::string taxon;
  std::vector<int> edge_nodes;
};

void encode_init_unit(ByteWriter& w, const std::vector<std::string>& taxa);
void encode_eval_unit(ByteWriter& w, const EvalUnitPayload& p);
/// full=false: local smoothing around `focus_taxon` (the just-inserted leaf).
void encode_refine_unit(ByteWriter& w, const std::string& newick, bool full,
                        const std::string& focus_taxon);

/// Cached candidate evaluation: score + optimised local branch lengths.
struct CachedEval {
  double log_likelihood = 0;
  double leaf_bl = 0;
  double mid_bl = 0;
  double edge_bl = 0;
};

/// Process-wide candidate score cache: (problem, tree, taxon, edge) ->
/// CachedEval. Deterministic, so safe to share across problems and
/// simulator runs.
class EvalCache {
 public:
  static EvalCache& global();
  std::optional<CachedEval> lookup(const std::string& key) const;
  void store(const std::string& key, const CachedEval& value);
  void clear();
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, CachedEval> map_;
};

}  // namespace hdcs::dprml
