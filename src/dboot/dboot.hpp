#pragma once
// DBOOT: distributed bootstrap support estimation.
//
// The paper emphasises that the system is *programmable* — "numerous
// different scientific applications have been created to run on the
// system" (§3) — rather than hard-coded to one task like SETI@home. DBOOT
// is a third bioinformatics application exercising that claim: classical
// Felsenstein bootstrap support for a phylogeny. Sites of the alignment
// are resampled with replacement B times; a tree is built for each
// replicate; the support of a split is the fraction of replicate trees
// containing it. Bootstrapping is embarrassingly parallel across
// replicates — a perfect fit for the task-farming model — and each
// replicate is seeded from its index, so the result is independent of how
// replicates are batched into units.
//
// Replicate trees are built with neighbor joining (JC distances), the
// standard quick choice for bootstrap screening; the reference tree whose
// splits are annotated is the NJ tree of the original alignment.

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dist/algorithm.hpp"
#include "dist/data_manager.hpp"
#include "dist/registry.hpp"
#include "phylo/alignment.hpp"
#include "phylo/tree.hpp"
#include "util/byte_buffer.hpp"
#include "util/config.hpp"

namespace hdcs::dboot {

inline constexpr const char* kAlgorithmName = "dboot";

struct DBootConfig {
  std::size_t replicates = 100;
  std::uint64_t seed = 1;  // master seed; replicate r uses hash(seed, r)

  static DBootConfig from_config(const Config& cfg);
};

/// A split is the set of taxon names on one side of an internal edge,
/// canonicalized to the side NOT containing the lexicographically smallest
/// taxon (so both orientations map to one key).
using Split = std::set<std::string>;

/// Extract canonical nontrivial splits from an unrooted tree.
std::set<Split> tree_splits(const phylo::Tree& tree);

struct DBootResult {
  std::string reference_newick;  // NJ tree of the original alignment
  std::size_t replicates = 0;
  /// Support (replicate count) per canonical split of the reference tree.
  std::map<Split, std::size_t> support;

  /// Support as a percentage for one split; 0 if absent.
  [[nodiscard]] double support_percent(const Split& split) const;
};

void encode_dboot_result(ByteWriter& w, const DBootResult& r);
DBootResult decode_dboot_result(ByteReader& r);

/// Serial reference implementation.
DBootResult bootstrap_serial(const phylo::Alignment& alignment,
                             const DBootConfig& config);

/// Resample columns with replacement, deterministically from (seed,
/// replicate index). Exposed so tests can pin the replicate stream.
phylo::Alignment resample_alignment(const phylo::Alignment& alignment,
                                    std::uint64_t seed, std::uint64_t replicate);

class DBootDataManager final : public dist::DataManager {
 public:
  DBootDataManager(phylo::Alignment alignment, DBootConfig config);

  [[nodiscard]] std::string algorithm_name() const override;
  [[nodiscard]] std::vector<std::byte> problem_data() const override;
  std::optional<dist::WorkUnit> next_unit(const dist::SizeHint& hint) override;
  void accept_result(const dist::ResultUnit& result) override;
  [[nodiscard]] bool is_complete() const override;
  [[nodiscard]] std::vector<std::byte> final_result() const override;
  [[nodiscard]] double remaining_ops_estimate() const override;

  [[nodiscard]] DBootResult result() const;

  [[nodiscard]] bool supports_snapshot() const override { return true; }
  void snapshot(ByteWriter& w) const override;
  void restore(ByteReader& r) override;

 private:
  [[nodiscard]] double per_replicate_cost() const;

  phylo::Alignment alignment_;
  DBootConfig config_;
  std::string reference_newick_;
  std::set<Split> reference_splits_;
  std::map<Split, std::size_t> support_;
  std::size_t next_replicate_ = 0;
  std::size_t merged_replicates_ = 0;
  int outstanding_ = 0;
};

class DBootAlgorithm final : public dist::Algorithm {
 public:
  void initialize(std::span<const std::byte> problem_data) override;
  std::vector<std::byte> process(const dist::WorkUnit& unit) override;

 private:
  phylo::Alignment alignment_;
  DBootConfig config_;
};

/// Register DBootAlgorithm under kAlgorithmName (idempotent).
void register_algorithm();

}  // namespace hdcs::dboot
