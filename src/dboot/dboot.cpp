#include "dboot/dboot.hpp"

#include <algorithm>

#include "phylo/distance.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hdcs::dboot {

DBootConfig DBootConfig::from_config(const Config& cfg) {
  DBootConfig c;
  auto reps = cfg.get_i64("replicates", 100);
  if (reps < 1) throw InputError("replicates must be >= 1");
  c.replicates = static_cast<std::size_t>(reps);
  c.seed = static_cast<std::uint64_t>(cfg.get_i64("seed", 1));
  return c;
}

std::set<Split> tree_splits(const phylo::Tree& tree) {
  auto names = tree.leaf_names();
  std::set<std::string> all(names.begin(), names.end());
  if (all.empty()) return {};
  const std::string& ref = *all.begin();

  std::set<Split> out;
  std::map<int, Split> below;
  for (int node : tree.postorder()) {
    Split s;
    if (tree.is_leaf(node)) {
      s.insert(tree.at(node).name);
    } else {
      for (int c : tree.at(node).children) {
        s.insert(below[c].begin(), below[c].end());
      }
    }
    if (node != tree.root() && !tree.is_leaf(node) && s.size() >= 2 &&
        s.size() <= all.size() - 2) {
      Split canonical = s;
      if (canonical.count(ref)) {
        Split flipped;
        for (const auto& name : all) {
          if (!canonical.count(name)) flipped.insert(name);
        }
        canonical = std::move(flipped);
      }
      out.insert(std::move(canonical));
    }
    below[node] = std::move(s);
  }
  return out;
}

double DBootResult::support_percent(const Split& split) const {
  auto it = support.find(split);
  if (it == support.end() || replicates == 0) return 0;
  return 100.0 * static_cast<double>(it->second) /
         static_cast<double>(replicates);
}

namespace {
void encode_split_counts(ByteWriter& w, const std::map<Split, std::size_t>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [split, count] : m) {
    w.str_vec(std::vector<std::string>(split.begin(), split.end()));
    w.u64(count);
  }
}

std::map<Split, std::size_t> decode_split_counts(ByteReader& r) {
  std::map<Split, std::size_t> m;
  std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    auto names = r.str_vec();
    std::uint64_t count = r.u64();
    m.emplace(Split(names.begin(), names.end()), count);
  }
  return m;
}

void encode_dboot_config(ByteWriter& w, const DBootConfig& c) {
  w.u64(c.replicates);
  w.u64(c.seed);
}

DBootConfig decode_dboot_config(ByteReader& r) {
  DBootConfig c;
  c.replicates = r.u64();
  c.seed = r.u64();
  return c;
}
}  // namespace

void encode_dboot_result(ByteWriter& w, const DBootResult& r) {
  w.str(r.reference_newick);
  w.u64(r.replicates);
  encode_split_counts(w, r.support);
}

DBootResult decode_dboot_result(ByteReader& r) {
  DBootResult out;
  out.reference_newick = r.str();
  out.replicates = r.u64();
  out.support = decode_split_counts(r);
  return out;
}

phylo::Alignment resample_alignment(const phylo::Alignment& alignment,
                                    std::uint64_t seed, std::uint64_t replicate) {
  // Mix (seed, replicate) so the column stream depends only on the
  // replicate index, never on batching.
  Rng rng(seed * 0x9e3779b97f4a7c15ull + replicate * 0xbf58476d1ce4e5b9ull + 1);
  std::size_t sites = alignment.site_count();
  std::vector<std::size_t> picks(sites);
  for (auto& p : picks) p = rng.next_below(sites);

  phylo::Alignment out;
  out.names = alignment.names;
  out.rows.reserve(alignment.rows.size());
  for (const auto& row : alignment.rows) {
    std::string resampled(sites, 'A');
    for (std::size_t s = 0; s < sites; ++s) resampled[s] = row[picks[s]];
    out.rows.push_back(std::move(resampled));
  }
  return out;
}

namespace {
/// Count splits of `replicates` bootstrap trees of `alignment`.
std::map<Split, std::size_t> count_replicate_splits(
    const phylo::Alignment& alignment, const DBootConfig& config,
    std::uint64_t begin, std::uint64_t end) {
  std::map<Split, std::size_t> counts;
  for (std::uint64_t r = begin; r < end; ++r) {
    auto resampled = resample_alignment(alignment, config.seed, r);
    auto tree = phylo::nj_tree(resampled);
    for (const auto& split : tree_splits(tree)) {
      counts[split] += 1;
    }
  }
  return counts;
}
}  // namespace

DBootResult bootstrap_serial(const phylo::Alignment& alignment,
                             const DBootConfig& config) {
  alignment.validate();
  DBootResult result;
  auto reference = phylo::nj_tree(alignment);
  result.reference_newick = reference.to_newick();
  result.replicates = config.replicates;
  auto reference_splits = tree_splits(reference);
  auto counts = count_replicate_splits(alignment, config, 0, config.replicates);
  for (const auto& split : reference_splits) {
    auto it = counts.find(split);
    result.support[split] = it == counts.end() ? 0 : it->second;
  }
  return result;
}

// ---- DataManager ----

DBootDataManager::DBootDataManager(phylo::Alignment alignment, DBootConfig config)
    : alignment_(std::move(alignment)), config_(config) {
  alignment_.validate();
  if (alignment_.taxon_count() < 4) {
    throw InputError("DBOOT: need at least 4 taxa for nontrivial splits");
  }
  auto reference = phylo::nj_tree(alignment_);
  reference_newick_ = reference.to_newick();
  reference_splits_ = tree_splits(reference);
  for (const auto& split : reference_splits_) support_[split] = 0;
}

std::string DBootDataManager::algorithm_name() const { return kAlgorithmName; }

std::vector<std::byte> DBootDataManager::problem_data() const {
  ByteWriter w;
  encode_dboot_config(w, config_);
  w.str(alignment_.to_fasta());
  return w.take();
}

double DBootDataManager::per_replicate_cost() const {
  // JC distances O(n^2 L) + NJ O(n^3).
  double n = static_cast<double>(alignment_.taxon_count());
  double l = static_cast<double>(alignment_.site_count());
  return n * n * l + n * n * n;
}

std::optional<dist::WorkUnit> DBootDataManager::next_unit(
    const dist::SizeHint& hint) {
  if (next_replicate_ >= config_.replicates) return std::nullopt;
  auto batch = static_cast<std::size_t>(
      std::max(1.0, hint.target_ops / per_replicate_cost()));
  batch = std::min(batch, config_.replicates - next_replicate_);

  dist::WorkUnit unit;
  unit.cost_ops = static_cast<double>(batch) * per_replicate_cost();
  ByteWriter w;
  w.u64(next_replicate_);
  w.u64(next_replicate_ + batch);
  unit.payload = w.take();
  next_replicate_ += batch;
  ++outstanding_;
  return unit;
}

void DBootDataManager::accept_result(const dist::ResultUnit& result) {
  ByteReader r(result.payload);
  std::uint64_t replicate_count = r.u64();
  auto counts = decode_split_counts(r);
  r.expect_end();
  for (const auto& [split, count] : counts) {
    auto it = support_.find(split);
    if (it != support_.end()) it->second += count;
    // Splits outside the reference tree are tallied by workers but not
    // reported — the output annotates the reference topology only.
  }
  merged_replicates_ += replicate_count;
  --outstanding_;
}

bool DBootDataManager::is_complete() const {
  return next_replicate_ >= config_.replicates && outstanding_ == 0;
}

std::vector<std::byte> DBootDataManager::final_result() const {
  ByteWriter w;
  encode_dboot_result(w, result());
  return w.take();
}

double DBootDataManager::remaining_ops_estimate() const {
  return static_cast<double>(config_.replicates - next_replicate_) *
         per_replicate_cost();
}

DBootResult DBootDataManager::result() const {
  DBootResult r;
  r.reference_newick = reference_newick_;
  r.replicates = merged_replicates_;
  r.support = support_;
  return r;
}

void DBootDataManager::snapshot(ByteWriter& w) const {
  w.u64(next_replicate_);
  w.u64(merged_replicates_);
  w.i32(outstanding_);
  encode_split_counts(w, support_);
}

void DBootDataManager::restore(ByteReader& r) {
  next_replicate_ = r.u64();
  merged_replicates_ = r.u64();
  outstanding_ = r.i32();
  support_ = decode_split_counts(r);
}

// ---- Algorithm ----

void DBootAlgorithm::initialize(std::span<const std::byte> problem_data) {
  ByteReader r(problem_data);
  config_ = decode_dboot_config(r);
  alignment_ = phylo::Alignment::from_fasta(r.str());
  r.expect_end();
}

std::vector<std::byte> DBootAlgorithm::process(const dist::WorkUnit& unit) {
  ByteReader r(unit.payload);
  std::uint64_t begin = r.u64();
  std::uint64_t end = r.u64();
  r.expect_end();
  if (end <= begin || end > config_.replicates) {
    throw ProtocolError("DBOOT: bad replicate range");
  }
  auto counts = count_replicate_splits(alignment_, config_, begin, end);
  ByteWriter w;
  w.u64(end - begin);
  encode_split_counts(w, counts);
  return w.take();
}

void register_algorithm() {
  dist::AlgorithmRegistry::global().replace(
      kAlgorithmName, [] { return std::make_unique<DBootAlgorithm>(); });
}

}  // namespace hdcs::dboot
