#include "sim/sim_driver.hpp"

#include <algorithm>

#include "dist/checkpoint_file.hpp"
#include "net/bulk.hpp"
#include "net/compress.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/byte_buffer.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace hdcs::sim {

namespace {
/// FNV-1a over bytes; used to key the result cache by problem identity.
std::uint64_t fnv64(std::span<const std::byte> data) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::byte b : data) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr double kControlBytes = 32;  // request/ack payloads are tiny

// Fixed per-blob framing of the v4 bulk format (raw size + CRC + flags +
// wire size + header CRC), mirrored from net::send_blob_v4 for virtual
// byte accounting.
constexpr double kBlobV4HeaderBytes = 8 + 4 + 1 + 8 + 4;

// Virtual reconnect backoff under injected connect faults — mirrors the
// real donor's ClientConfig defaults so simulated and TCP chaos agree.
constexpr double kJoinBackoffInitial = 0.05;
constexpr double kJoinBackoffMax = 2.0;
constexpr double kJoinBackoffJitter = 0.25;
}  // namespace

double SimOutcome::mean_utilization() const {
  if (machines.empty() || makespan_s <= 0) return 0;
  double busy = 0;
  for (const auto& m : machines) busy += m.busy_s;
  return busy / (static_cast<double>(machines.size()) * makespan_s);
}

SimDriver::SimDriver(SimConfig config, std::vector<MachineSpec> fleet)
    : config_(std::move(config)),
      core_(config_.scheduler, dist::make_policy(config_.policy_spec)),
      rng_(config_.seed) {
  core_.set_tracer(config_.tracer);
  if (config_.faults.any()) {
    fault_plan_ = std::make_unique<net::FaultPlan>(config_.faults);
  }
  if (config_.storage_faults.any()) {
    storage_plan_ = std::make_unique<vfs::StorageFaultPlan>(config_.storage_faults);
  }
  machines_.reserve(fleet.size());
  for (auto& spec : fleet) {
    Machine m;
    m.spec = std::move(spec);
    m.rng = rng_.fork();
    machines_.push_back(std::move(m));
  }
  if (config_.cache_results && !cache_) {
    cache_ = std::make_shared<ResultCache>();
  }
}

SimDriver::~SimDriver() = default;

dist::ProblemId SimDriver::add_problem(std::shared_ptr<dist::DataManager> dm) {
  if (ran_) throw Error("SimDriver: add_problem after run()");
  dist::ProblemId id = core_.submit_problem(dm);
  ProblemCtx ctx;
  ctx.dm = std::move(dm);
  problems_.emplace(id, std::move(ctx));
  return id;
}

double SimDriver::wall_time_for_compute(Machine& m, double compute_s) {
  const auto& spec = m.spec;
  if (spec.owner_busy_mean <= 0 || spec.owner_free_mean <= 0) {
    // Per-unit jitter model: a smeared effective availability.
    return compute_s / availability_draw(m);
  }
  // Owner on/off model: alternate FREE/BUSY periods until enough free
  // time has accumulated. Start state is drawn from the stationary
  // distribution of the alternating renewal process.
  double wall = 0;
  double still_needed = compute_s;
  double p_free = spec.owner_free_mean /
                  (spec.owner_free_mean + spec.owner_busy_mean);
  bool free_now = m.rng.next_double() < p_free;
  for (;;) {
    if (free_now) {
      double period = m.rng.exponential(spec.owner_free_mean);
      if (period >= still_needed) return wall + still_needed;
      wall += period;
      still_needed -= period;
    } else {
      wall += m.rng.exponential(spec.owner_busy_mean);
    }
    free_now = !free_now;
  }
}

double SimDriver::availability_draw(Machine& m) {
  double a = m.spec.availability_mean +
             m.spec.availability_jitter * m.rng.uniform(-1.0, 1.0);
  return std::clamp(a, 0.05, 1.0);
}

double SimDriver::transfer(double ready_at, double payload_bytes) {
  double start = std::max(ready_at, link_busy_until_);
  double done = start + (payload_bytes + config_.network.frame_overhead_bytes) /
                            config_.network.bandwidth_bps;
  link_busy_until_ = done;
  bytes_ += payload_bytes + config_.network.frame_overhead_bytes;
  messages_ += 1;
  return done;
}

double SimDriver::server_handle(double arrival, double payload_bytes) {
  double start = std::max(arrival, server_busy_until_);
  double done = start + config_.network.server_overhead_s +
                payload_bytes * config_.network.server_per_byte_s;
  server_busy_until_ = done;
  return done;
}

std::vector<std::byte> SimDriver::execute_unit(const dist::WorkUnit& unit) {
  ProblemCtx& ctx = problems_.at(unit.problem_id);
  std::string key;
  if (cache_) {
    // Key on (problem data hash, blob digests, unit payload) — stable
    // across SimDriver instances so fleet-size sweeps share one cache. The
    // digests matter: blob-bearing units may have identical (even empty)
    // payloads and differ only in the content they reference.
    if (!ctx.data_hashed) {
      auto data = ctx.dm->problem_data();
      ctx.data_hash = fnv64(data);
      ctx.data_hashed = true;
    }
    key.reserve(16 + 21 * unit.blobs.size() + unit.payload.size());
    key.append(std::to_string(ctx.data_hash));
    for (const auto& blob : unit.blobs) {
      key.push_back('/');
      key.append(std::to_string(blob.digest));
    }
    key.push_back(':');
    key.append(reinterpret_cast<const char*>(unit.payload.data()),
               unit.payload.size());
    auto cached = cache_->find(key);
    if (cached != cache_->end()) {
      cache_hits_ += 1;
      return cached->second;
    }
    cache_misses_ += 1;
  }
  if (!ctx.algorithm) {
    ctx.algorithm = config_.registry->create(ctx.dm->algorithm_name());
    auto data = ctx.dm->problem_data();
    ctx.algorithm->initialize(data);
  }
  auto result = ctx.algorithm->process(unit);
  if (cache_) (*cache_)[key] = result;
  return result;
}

double SimDriver::blob_wire_bytes(std::uint64_t digest,
                                  std::span<const std::byte> bytes) {
  auto it = blob_wire_bytes_.find(digest);
  if (it != blob_wire_bytes_.end()) return it->second;
  auto compressed = net::lz_compress(bytes);
  double wire = kBlobV4HeaderBytes + static_cast<double>(
                    compressed ? compressed->size() : bytes.size());
  blob_wire_bytes_.emplace(digest, wire);
  return wire;
}

double SimDriver::deliver_blob(Machine& m, double ready, std::uint64_t digest,
                               std::span<const std::byte> bytes) {
  auto& bm = net::bulk_plane_metrics();
  if (m.have_blobs.count(digest)) {
    blob_cache_hits_ += 1;
    bm.blobs_cache_hit.inc();
    if (config_.tracer) {
      config_.tracer->event(queue_.now(), "blob_cache_hit")
          .u64("client", m.client_id)
          .u64("digest", digest)
          .u64("size", bytes.size());
    }
    return ready;
  }
  double wire = blob_wire_bytes(digest, bytes);
  double done = transfer(ready, wire) + config_.network.latency_s;
  m.have_blobs.insert(digest);
  blobs_sent_ += 1;
  blob_bytes_raw_ += static_cast<double>(bytes.size());
  blob_bytes_wire_ += wire;
  bm.blobs_sent.inc();
  bm.bytes_raw.inc(bytes.size());
  bm.bytes_wire.inc(static_cast<std::uint64_t>(wire));
  if (config_.tracer) {
    config_.tracer->event(queue_.now(), "blob_sent")
        .u64("client", m.client_id)
        .u64("digest", digest)
        .u64("raw", bytes.size())
        .u64("wire", static_cast<std::uint64_t>(wire))
        .boolean("compressed",
                 wire - kBlobV4HeaderBytes < static_cast<double>(bytes.size()));
  }
  return done;
}

bool SimDriver::frame_lost() {
  if (!fault_plan_ || !fault_plan_->frame_fault()) return false;
  frames_retransmitted_ += 1;
  return true;
}

void SimDriver::refresh_session(Machine& m) {
  double benchmark = config_.reference_ops_per_sec * m.spec.speed *
                     m.spec.availability_mean;
  m.client_id = core_.client_joined(m.spec.name, benchmark, queue_.now());
  m.session = server_session_;
}

void SimDriver::primary_kill() {
  if (core_.all_complete()) return;
  // The hot standby's shadow core is, by construction, a replay of the
  // primary's record stream — model the handoff by round-tripping the
  // scheduler through its exact snapshot bytes, the same bytes the TCP
  // standby holds. From here until promotion the server answers nothing.
  ByteWriter w;
  core_.snapshot_exact(w);
  auto snap = w.take();
  ByteReader r(snap);
  core_.restore_exact(r);
  r.expect_end();
  server_down_ = true;
  if (config_.tracer) {
    config_.tracer->event(queue_.now(), "standby_synced")
        .u64("epoch", core_.epoch())
        .u64("lsn", 0)
        .u64("snapshot_bytes", snap.size());
  }
  queue_.schedule(queue_.now() + config_.failover_delay_s, [this] {
    // Promotion: new term, then sweep the dead primary's client rows so
    // their leases requeue now. Machines re-Hello on their next exchange;
    // results they computed under the deposed term are fenced by epoch.
    double t = queue_.now();
    std::uint64_t next = core_.epoch() + 1;
    core_.bump_epoch(next);
    for (const auto& c : core_.all_client_stats()) {
      if (c.active) core_.client_left(c.id, t);
    }
    server_session_ += 1;
    server_down_ = false;
    failovers_ += 1;
    if (config_.tracer) {
      config_.tracer->event(t, "failover_promoted")
          .u64("epoch", next)
          .str("reason", "sim_primary_kill");
    }
  });
}

void SimDriver::machine_join(std::size_t idx) {
  Machine& m = machines_[idx];
  if (server_down_) {
    queue_.schedule(queue_.now() + config_.no_work_retry_s,
                    [this, idx] { machine_join(idx); });
    return;
  }
  if (fault_plan_ && fault_plan_->refuse_connect()) {
    // Connection refused: back off exactly like a real donor (doubling,
    // capped, jittered) and try again — the machine never gives up.
    joins_refused_ += 1;
    m.join_backoff = m.join_backoff <= 0
                         ? kJoinBackoffInitial
                         : std::min(m.join_backoff * 2, kJoinBackoffMax);
    double jitter = 1.0 + kJoinBackoffJitter * m.rng.uniform(-1.0, 1.0);
    queue_.schedule(queue_.now() + m.join_backoff * jitter,
                    [this, idx] { machine_join(idx); });
    return;
  }
  m.alive = true;
  m.ever_joined = true;
  // A rejoin models a donor restart with a memory-only cache: every blob
  // (problem data included) must be re-negotiated.
  m.have_blobs.clear();
  m.have_data.clear();
  int gen = m.generation;

  // Hello: control message to the server, reply comes back, then the
  // machine starts its request loop.
  double handled = server_handle(transfer(queue_.now(), kControlBytes) +
                                     config_.network.latency_s,
                                 kControlBytes);
  queue_.schedule(handled, [this, idx, gen, handled] {
    Machine& mm = machines_[idx];
    if (!mm.alive || mm.generation != gen) return;
    if (server_down_) {  // the primary died while the Hello was in flight
      queue_.schedule(queue_.now() + config_.no_work_retry_s,
                      [this, idx] { machine_join(idx); });
      return;
    }
    if (config_.max_clients > 0 &&
        core_.active_client_count() >= config_.max_clients) {
      // Overload shed (ServerConfig::max_clients mirror): the Hello is
      // NACKed with retry_later at handling time — the same point the real
      // server sheds — and the machine rides the capped join backoff a
      // refused connect uses.
      joins_shed_ += 1;
      if (config_.tracer) {
        config_.tracer->event(queue_.now(), "retry_later")
            .str("reason", "max_clients")
            .str("name", mm.spec.name);
      }
      mm.alive = false;
      mm.join_backoff = mm.join_backoff <= 0
                            ? kJoinBackoffInitial
                            : std::min(mm.join_backoff * 2, kJoinBackoffMax);
      double jitter = 1.0 + kJoinBackoffJitter * mm.rng.uniform(-1.0, 1.0);
      queue_.schedule(queue_.now() + mm.join_backoff * jitter,
                      [this, idx] { machine_join(idx); });
      return;
    }
    mm.join_backoff = 0;
    refresh_session(mm);
    double reply_at = transfer(handled, kControlBytes) + config_.network.latency_s;
    queue_.schedule(reply_at, [this, idx, gen] { machine_request_work(idx, gen); });
  });
}

void SimDriver::machine_leave(std::size_t idx) {
  Machine& m = machines_[idx];
  if (!m.alive) return;
  m.generation += 1;  // invalidate in-flight events
  m.alive = false;
  if (!m.spec.crash_on_leave) {
    core_.client_left(m.client_id, queue_.now());
  }
  if (m.spec.rejoin_time >= 0 && m.spec.rejoin_time > queue_.now()) {
    queue_.schedule(m.spec.rejoin_time, [this, idx] { machine_join(idx); });
  } else {
    m.departed_for_good = true;
  }
}

void SimDriver::machine_request_work(std::size_t idx, int gen) {
  Machine& m = machines_[idx];
  if (!m.alive || m.generation != gen) return;

  if (server_down_) {
    // Dead primary: the donor's request fails and it retries with backoff
    // until the standby promotes and starts answering.
    queue_.schedule(queue_.now() + config_.no_work_retry_s,
                    [this, idx, gen] { machine_request_work(idx, gen); });
    return;
  }
  if (frame_lost()) {
    // Torn RequestWork exchange: over TCP the donor tears the session down
    // and retransmits on a fresh one; in virtual time that is a pure delay.
    queue_.schedule(queue_.now() + config_.no_work_retry_s,
                    [this, idx, gen] { machine_request_work(idx, gen); });
    return;
  }
  double send_at = queue_.now() + (fault_plan_ ? fault_plan_->delay_s() : 0);
  double handled = server_handle(transfer(send_at, kControlBytes) +
                                     config_.network.latency_s,
                                 kControlBytes);
  queue_.schedule(handled, [this, idx, gen] {
    Machine& mm = machines_[idx];
    if (!mm.alive || mm.generation != gen) return;
    if (server_down_) {  // killed while the request was in flight
      queue_.schedule(queue_.now() + config_.no_work_retry_s,
                      [this, idx, gen] { machine_request_work(idx, gen); });
      return;
    }
    // A promoted standby swept the old client rows: the TCP donor would
    // get an error frame and re-Hello on the same connection; mirror that
    // before asking for work.
    if (mm.session != server_session_) refresh_session(mm);

    const double lease_start = queue_.now();  // == the lease's issued_at
    auto unit = core_.request_work(mm.client_id, queue_.now());
    if (!unit) {
      if (core_.all_complete()) return;  // donor goes quiet; run is over
      double reply_at =
          transfer(queue_.now(), kControlBytes) + config_.network.latency_s;
      queue_.schedule(reply_at + config_.no_work_retry_s,
                      [this, idx, gen] { machine_request_work(idx, gen); });
      return;
    }

    // Bulk data rides the content-addressed blob plane: the problem data
    // (first contact only — its digest lands in the machine's cache) and
    // every blob the unit references, each charged at compressed wire size
    // and skipped entirely on a cache hit.
    double ready = queue_.now();
    if (std::find(mm.have_data.begin(), mm.have_data.end(),
                  unit->problem_id) == mm.have_data.end()) {
      std::uint64_t pdata_digest = core_.problem_data_digest(unit->problem_id);
      if (auto pdata = core_.blob_bytes(pdata_digest)) {
        ready = deliver_blob(mm, ready, pdata_digest, *pdata);
      }
      mm.have_data.push_back(unit->problem_id);
    }
    for (auto& blob : unit->blobs) {
      auto bytes = core_.blob_bytes(blob.digest);
      if (!bytes) {
        // Unreachable by construction (an issued unit pins its blobs), but
        // a hard error beats silently computing on missing input.
        throw Error("sim: issued unit references an unknown blob");
      }
      ready = deliver_blob(mm, ready, blob.digest, *bytes);
      blob.bytes = *bytes;  // materialize for execute_unit / the Algorithm
    }

    // Ship the unit frame itself, then compute.
    double unit_arrival =
        transfer(ready, static_cast<double>(unit->payload.size())) +
        config_.network.latency_s;
    double compute_s =
        unit->cost_ops / (config_.reference_ops_per_sec * mm.spec.speed);
    double duration = wall_time_for_compute(mm, compute_s);
    double finish = unit_arrival + duration;

    // Mirror of the v5 donor span profile, in virtual time. Phases tile
    // the lease exactly: blob_fetch + queue_wait + compute == finish -
    // lease_start, so the scheduler-derived submit residual equals the
    // result's return trip with no clamp — components sum to elapsed_s
    // *exactly*, which tests pin. (decompress/encode are wall-clock
    // artifacts the virtual machine model has no cost for.)
    obs::UnitProfile prof;
    prof.blob_fetch_s = ready - lease_start;
    prof.queue_wait_s = unit_arrival - ready;
    prof.compute_s = duration;

    queue_.schedule(finish, [this, idx, gen, u = *unit, duration, prof] {
      Machine& m2 = machines_[idx];
      if (!m2.alive || m2.generation != gen) return;  // crashed mid-compute
      m2.busy_s += duration;
      m2.units += 1;

      dist::ResultUnit result;
      result.problem_id = u.problem_id;
      result.unit_id = u.unit_id;
      result.stage = u.stage;
      // Echo the lease's term (v6 fencing): if a standby promoted while
      // this unit computed, the stale epoch gets the result rejected.
      result.epoch = u.epoch;
      auto& saturation_counter =
          obs::Registry::global().counter("align.batch_saturations");
      const std::uint64_t saturations_before = saturation_counter.value();
      result.payload = execute_unit(u);
      result.profile = prof;
      result.profile->saturations =
          saturation_counter.value() - saturations_before;
      if (m2.spec.corrupt_rate > 0 && !result.payload.empty() &&
          m2.rng.next_double() < m2.spec.corrupt_rate) {
        // Lying donor: flip a byte of the *submitted copy* (never the
        // shared result cache) and sign the lie with a matching digest so
        // only replication voting can reject it.
        auto at = static_cast<std::size_t>(
            m2.rng.next_below(result.payload.size()));
        result.payload[at] ^= std::byte{0x5a};
      }
      result.payload_crc = net::crc32(result.payload);
      machine_submit(idx, gen, std::move(result));
    });
  });
}

void SimDriver::machine_submit(std::size_t idx, int gen,
                               dist::ResultUnit result) {
  Machine& m = machines_[idx];
  if (!m.alive || m.generation != gen) return;  // a crashed donor loses its buffer
  if (server_down_) {
    // Dead primary: the donor buffers the computed result across its
    // reconnect attempts and resubmits once a server answers.
    queue_.schedule(queue_.now() + config_.no_work_retry_s,
                    [this, idx, gen, r = std::move(result)]() mutable {
                      machine_submit(idx, gen, std::move(r));
                    });
    return;
  }
  double submit_at = queue_.now();
  if (frame_lost()) {
    // Torn SubmitResult frame: the donor buffers the computed result
    // across the reconnect and resubmits — the work is never redone,
    // only delayed (matches Client's pending-result semantics).
    submit_at += config_.no_work_retry_s;
  }
  if (fault_plan_) submit_at += fault_plan_->delay_s();
  double res_handled = server_handle(
      transfer(submit_at, static_cast<double>(result.payload.size())) +
          config_.network.latency_s,
      static_cast<double>(result.payload.size()));
  queue_.schedule(res_handled, [this, idx, gen, r = std::move(result),
                                res_handled]() mutable {
    Machine& m3 = machines_[idx];
    if (server_down_) {  // killed while the result frame was in flight
      queue_.schedule(queue_.now() + config_.no_work_retry_s,
                      [this, idx, gen, r = std::move(r)]() mutable {
                        machine_submit(idx, gen, std::move(r));
                      });
      return;
    }
    // Promoted standby since we last said Hello: re-register first — the
    // result still carries the deposed term's epoch, so the fence (not
    // the fresh client id) decides its fate.
    if (m3.session != server_session_ && m3.alive && m3.generation == gen) {
      refresh_session(m3);
    }
    core_.submit_result(m3.client_id, r, queue_.now());
    // Record completion times as problems finish.
    for (auto& [pid, pctx] : problems_) {
      if (!pctx.complete_recorded && pctx.dm->is_complete()) {
        pctx.complete_recorded = true;
        completion_time_[pid] = queue_.now();
        last_completion_ = queue_.now();
      }
    }
    if (!m3.alive || m3.generation != gen) return;
    double ack_at =
        transfer(res_handled, kControlBytes) + config_.network.latency_s;
    queue_.schedule(ack_at, [this, idx, gen] { machine_request_work(idx, gen); });
  });
}

void SimDriver::schedule_tick() {
  queue_.schedule(queue_.now() + config_.tick_interval_s, [this] {
    if (queue_.now() > config_.max_sim_time) {
      throw Error("simulation exceeded max_sim_time — deadlocked workload?");
    }
    // A dead primary ticks nothing; the standby's shadow core is driven by
    // the (now silent) record stream, not a local clock.
    if (!server_down_) core_.tick(queue_.now());
    if (core_.all_complete()) return;
    bool any_donor_left = false;
    for (const auto& m : machines_) {
      if (m.alive || !m.ever_joined ||
          (m.spec.rejoin_time >= 0 && !m.departed_for_good &&
           m.spec.rejoin_time > queue_.now())) {
        any_donor_left = true;
        break;
      }
    }
    if (!any_donor_left) {
      throw Error("all donors departed with problems incomplete");
    }
    schedule_tick();
  });
}

void SimDriver::schedule_checkpoint() {
  queue_.schedule(queue_.now() + config_.checkpoint_interval_s, [this] {
    if (core_.all_complete()) return;
    ByteWriter w;
    core_.checkpoint(w);
    auto payload = w.take();
    // Storage-fault chaos: draw the virtual disk's verdict on this save
    // (write then fsync, the same two failure points the real
    // write_checkpoint_file has). An injected failure takes the TCP
    // server's exact durable -> degraded transition: epoch bump (+2, the
    // restart-collision fence) and a durability_degraded event; the next
    // clean save restores. config_.checkpoint_path is NOT written on an
    // injected failure — the virtual disk rejected the bytes.
    if (storage_plan_) {
      std::size_t keep = 0;
      auto wf = storage_plan_->write_fault("sim:checkpoint", payload.size(), keep);
      bool failed = wf != vfs::StorageFaultPlan::WriteFault::kNone ||
                    storage_plan_->fail_sync("sim:checkpoint");
      if (failed) {
        if (!degraded_) {
          degraded_ = true;
          durability_degradations_ += 1;
          std::uint64_t next = core_.epoch() + 2;
          core_.bump_epoch(next);
          if (config_.tracer) {
            config_.tracer->event(queue_.now(), "durability_degraded")
                .str("reason", "checkpoint_save")
                .u64("epoch", next);
          }
        }
        schedule_checkpoint();
        return;
      }
    }
    if (!config_.checkpoint_path.empty()) {
      dist::write_checkpoint_file(config_.checkpoint_path, payload);
    }
    dist::record_checkpoint_saved(config_.tracer, queue_.now(), payload.size(),
                                  core_.problem_count(),
                                  core_.in_flight_units());
    checkpoints_saved_ += 1;
    if (degraded_) {
      degraded_ = false;
      durability_restores_ += 1;
      if (config_.tracer) {
        config_.tracer->event(queue_.now(), "durability_restored")
            .u64("epoch", core_.epoch());
      }
    }
    schedule_checkpoint();
  });
}

SimOutcome SimDriver::run() {
  if (ran_) throw Error("SimDriver: run() called twice");
  ran_ = true;
  if (problems_.empty()) throw Error("SimDriver: no problems added");
  if (machines_.empty()) throw Error("SimDriver: empty fleet");

  for (std::size_t i = 0; i < machines_.size(); ++i) {
    queue_.schedule(machines_[i].spec.join_time, [this, i] { machine_join(i); });
    if (machines_[i].spec.leave_time >= 0) {
      queue_.schedule(machines_[i].spec.leave_time,
                      [this, i] { machine_leave(i); });
    }
  }
  schedule_tick();
  if (config_.checkpoint_interval_s > 0) schedule_checkpoint();
  if (config_.primary_kill_time_s >= 0) {
    queue_.schedule(config_.primary_kill_time_s, [this] { primary_kill(); });
  }

  queue_.run_until([this] { return core_.all_complete(); });

  if (!core_.all_complete()) {
    throw Error("simulation ended with incomplete problems (all donors gone?)");
  }

  // Donors that were still attached when the last problem completed say an
  // orderly goodbye, so the trace ends the same way a real server run does
  // (client_left is idempotent, so machines that already left are safe).
  for (auto& m : machines_) {
    if (m.alive) {
      core_.client_left(m.client_id, queue_.now());
      m.alive = false;
      m.generation += 1;
    }
  }

  SimOutcome out;
  out.makespan_s = last_completion_;
  out.scheduler = core_.stats();
  out.messages = messages_;
  out.bytes_transferred = bytes_;
  out.events_executed = queue_.executed();
  out.cache_hits = cache_hits_;
  out.cache_misses = cache_misses_;
  out.checkpoints_saved = checkpoints_saved_;
  out.frames_retransmitted = frames_retransmitted_;
  out.joins_refused = joins_refused_;
  out.failovers = failovers_;
  out.durability_degradations = durability_degradations_;
  out.durability_restores = durability_restores_;
  out.joins_shed = joins_shed_;
  out.blobs_sent = blobs_sent_;
  out.blob_cache_hits = blob_cache_hits_;
  out.blob_bytes_raw = blob_bytes_raw_;
  out.blob_bytes_wire = blob_bytes_wire_;
  out.completion_time_s = completion_time_;
  for (const auto& m : machines_) {
    MachineOutcome mo;
    mo.name = m.spec.name;
    mo.busy_s = m.busy_s;
    mo.units = m.units;
    mo.departed = m.departed_for_good;
    out.machines.push_back(std::move(mo));
  }
  for (auto& [pid, ctx] : problems_) {
    out.final_results[pid] = ctx.dm->final_result();
  }
  return out;
}

}  // namespace hdcs::sim
