#pragma once
// Discrete-event engine: a time-ordered queue of callbacks.
//
// Ties are broken by insertion order (seq), which together with seeded RNGs
// makes every simulation fully deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hdcs::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  void schedule(double at, Callback fn);

  /// Pop and run the earliest event. Returns false if the queue is empty.
  bool step();

  /// Run until empty or until predicate() becomes true (checked between
  /// events). Returns the final time.
  double run_until(const std::function<bool()>& stop = nullptr);

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hdcs::sim
