#pragma once
// Machine and fleet models for the deployment the paper describes (§3):
// ~200 desktop PCs from Pentium II to Pentium IV running as low-priority
// background services ("semi-idle"), a 32-node dual-PIII-1GHz IBM cluster,
// and one PIII-500 server on a shared 100 Mbit/s network.
//
// Speeds are relative to the paper's reference donor, a Pentium III 1 GHz
// (speed = 1.0). Availability is the fraction of cycles the low-priority
// donor process actually gets; "semi-idle" lab machines hover below 1.0.

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace hdcs::sim {

struct MachineSpec {
  std::string name;
  double speed = 1.0;              // relative CPU speed (PIII-1GHz = 1.0)
  double availability_mean = 1.0;  // mean fraction of cycles available
  double availability_jitter = 0.0;  // +/- uniform jitter drawn per unit
  double join_time = 0.0;
  double leave_time = -1.0;  // < 0: stays forever
  bool crash_on_leave = true;  // true: vanish (lease expiry recovers);
                               // false: orderly Goodbye
  double rejoin_time = -1.0;   // < 0: never rejoins

  /// Owner-activity model. When owner_busy_mean > 0, the donor alternates
  /// between FREE periods (full speed, duration ~ Exp(owner_free_mean))
  /// and BUSY periods (owner at the keyboard, donor gets nothing,
  /// duration ~ Exp(owner_busy_mean)). Long-run availability is then
  /// free/(free+busy) and availability_mean/jitter are ignored. This makes
  /// unit turnaround heavy-tailed — a unit that lands just before the
  /// owner sits down stalls for the whole session — which is the
  /// behaviour the lease/hedging machinery exists for.
  double owner_busy_mean = 0.0;  // <= 0: use the per-unit jitter model
  double owner_free_mean = 0.0;

  /// Lying donor (compute fault injection): fraction of this machine's
  /// result payloads that are corrupted before submission, drawn from the
  /// machine's deterministic RNG. The corrupted payload carries a matching
  /// digest, so only the scheduler's replication voting can catch it.
  double corrupt_rate = 0.0;
};

/// Fig. 1's testbed: n homogeneous PIII-1GHz lab machines, semi-idle.
std::vector<MachineSpec> lab_fleet(int n, double availability_mean = 0.85,
                                   double availability_jitter = 0.10);

/// The 32-node dual-PIII-1GHz cluster: 64 donor "machines" (one per CPU),
/// fully idle (dedicated nodes).
std::vector<MachineSpec> cluster_fleet();

/// The full campus deployment: ~200 mixed desktops (PII-300 .. PIV-2400,
/// drawn reproducibly from `rng`) plus the 32-node cluster.
std::vector<MachineSpec> campus_fleet(hdcs::Rng& rng, int desktops = 200);

/// A deliberately lopsided fleet for the granularity ablation: half slow
/// PII-class machines, half fast PIV-class machines.
std::vector<MachineSpec> heterogeneous_fleet(int n);

}  // namespace hdcs::sim
