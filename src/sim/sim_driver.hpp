#pragma once
// Discrete-event simulation of the distributed system.
//
// Drives the *real* SchedulerCore and the *real* application DataManagers /
// Algorithms, but replaces wall-clock compute and network transfer with a
// cost model in virtual time. Each unit's result payload is produced by
// actually executing the registered Algorithm (so merged answers are
// bit-identical to a serial run); the time *charged* for it is
//
//     cost_ops / (reference_ops_per_sec * machine.speed * availability)
//
// The network model captures what limited the paper's deployment: one
// server (a PIII-500) on one shared 100 Mbit/s link. All bytes in or out of
// the server serialise through a FIFO link resource, and every message
// costs server CPU — this is what bends Fig. 1 away from linear speedup at
// high processor counts.

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/data_manager.hpp"
#include "dist/registry.hpp"
#include "dist/scheduler_core.hpp"
#include "net/fault.hpp"
#include "sim/event_queue.hpp"
#include "sim/fleet.hpp"
#include "util/rng.hpp"
#include "util/vfs.hpp"

namespace hdcs::sim {

struct NetworkSpec {
  double latency_s = 0.5e-3;          // one-way control-message latency
  double bandwidth_bps = 100e6 / 8;   // shared 100 Mbit/s server link, bytes/s
  double server_overhead_s = 1.2e-3;  // server CPU per handled message
  double server_per_byte_s = 2e-8;    // server CPU per payload byte
  double frame_overhead_bytes = 64;   // header + TCP/IP framing per message
};

struct SimConfig {
  NetworkSpec network;
  dist::SchedulerConfig scheduler;
  std::string policy_spec = "adaptive:15";
  /// ops/sec of the reference machine (PIII 1 GHz, speed = 1.0).
  double reference_ops_per_sec = 5e7;
  double no_work_retry_s = 2.0;
  double tick_interval_s = 1.0;
  std::uint64_t seed = 1;
  /// Memoize unit results by payload (deterministic algorithms only) so
  /// sweeping fleet sizes over the same problem re-executes nothing.
  bool cache_results = true;
  /// Hard stop (virtual seconds); exceeded => Error (deadlock guard).
  double max_sim_time = 5e7;
  const dist::AlgorithmRegistry* registry = &dist::AlgorithmRegistry::global();
  /// Optional structured event trace, stamped with *virtual* seconds. Same
  /// schema as the TCP server's trace. Must outlive the driver; not owned.
  obs::Tracer* tracer = nullptr;
  /// Periodic durable checkpoints in *virtual* time: every interval the
  /// scheduler state is serialized (and, when checkpoint_path is set,
  /// written durably to disk) with the same checkpoint_saved event and
  /// checkpoint.* metrics the TCP server emits. 0 = off.
  double checkpoint_interval_s = 0;
  std::string checkpoint_path;
  /// Deterministic network fault model, sharing net::FaultSpec with the
  /// TCP layer: connect refusals delay a machine's join (retried with the
  /// same capped exponential backoff a real donor uses) and frame faults
  /// charge a retransmit penalty on the request/submit paths. Faults cost
  /// virtual time and messages, never results.
  net::FaultSpec faults;
  /// Virtual-time mirror of the hot-standby failover chaos (>= 0 = on): at
  /// this instant the primary dies — scheduler state round-trips through
  /// its exact snapshot bytes into the standby's shadow core
  /// (standby_synced event) and the server stops answering. After
  /// failover_delay_s the standby promotes: epoch bump + client sweep
  /// (failover_promoted event). Machines retry through the outage, re-Hello
  /// on their next exchange, and results computed under the deposed term
  /// are fenced by epoch exactly like the TCP path.
  double primary_kill_time_s = -1;
  double failover_delay_s = 0.5;
  /// Virtual-time mirror of the storage-fault chaos, sharing
  /// vfs::StorageFaultSpec with the real disk layer. A LOCAL plan (never
  /// installed globally — the sim's own checkpoint_path writes stay clean)
  /// is drawn at each virtual checkpoint save: an injected write/sync
  /// failure degrades durability (epoch bump + durability_degraded event,
  /// the TCP server's exact transition), and the next clean save restores
  /// it (durability_restored). Results are never lost — only the durable
  /// window moves, exactly like DurabilityMode::kContinue.
  vfs::StorageFaultSpec storage_faults;
  /// Overload mirror of ServerConfig::max_clients: a machine whose join
  /// would exceed this many active clients is shed with a retry_later
  /// event and retries with the donor's capped join backoff. 0 = off.
  int max_clients = 0;
};

struct MachineOutcome {
  std::string name;
  double busy_s = 0;          // virtual seconds spent computing
  std::uint64_t units = 0;
  bool departed = false;
};

struct SimOutcome {
  double makespan_s = 0;  // virtual time at which the last problem completed
  std::vector<MachineOutcome> machines;
  dist::SchedulerStats scheduler;
  std::uint64_t messages = 0;
  double bytes_transferred = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Virtual-time checkpoint saves (0 unless checkpoint_interval_s > 0).
  std::uint64_t checkpoints_saved = 0;
  /// Control frames lost to injected faults and retransmitted.
  std::uint64_t frames_retransmitted = 0;
  /// Join attempts refused by injected connect faults and backed off.
  std::uint64_t joins_refused = 0;
  /// Standby promotions executed (primary_kill_time_s chaos). Stale-epoch
  /// rejections land in scheduler.results_rejected_stale_epoch.
  std::uint64_t failovers = 0;
  /// Storage-fault chaos (storage_faults spec): durable -> degraded
  /// transitions taken and degraded -> durable recoveries.
  std::uint64_t durability_degradations = 0;
  std::uint64_t durability_restores = 0;
  /// Joins shed by the max_clients overload mirror (each retries later).
  std::uint64_t joins_shed = 0;
  /// Bulk-data plane (mirrors the TCP bulk.* counters): blobs actually
  /// shipped over the virtual link vs transfers avoided because the
  /// machine already held the digest, plus the raw/wire byte totals (wire
  /// < raw when the simulated compression bites).
  std::uint64_t blobs_sent = 0;
  std::uint64_t blob_cache_hits = 0;
  double blob_bytes_raw = 0;
  double blob_bytes_wire = 0;
  std::map<dist::ProblemId, std::vector<std::byte>> final_results;
  std::map<dist::ProblemId, double> completion_time_s;

  /// Aggregate donor utilisation: busy time / (machines * makespan).
  [[nodiscard]] double mean_utilization() const;
};

class SimDriver {
 public:
  SimDriver(SimConfig config, std::vector<MachineSpec> fleet);
  ~SimDriver();

  /// Register a problem before run(). Several may run concurrently.
  dist::ProblemId add_problem(std::shared_ptr<dist::DataManager> dm);

  /// Run the simulation until all problems complete; returns the outcome.
  /// Throws Error if the virtual clock exceeds max_sim_time.
  SimOutcome run();

  /// Share one result cache across several SimDriver runs (fleet-size
  /// sweeps): pass the map returned by take_cache() of the previous run.
  using ResultCache = std::unordered_map<std::string, std::vector<std::byte>>;
  void set_shared_cache(std::shared_ptr<ResultCache> cache) { cache_ = std::move(cache); }
  [[nodiscard]] std::shared_ptr<ResultCache> shared_cache() const { return cache_; }

 private:
  struct Machine {
    MachineSpec spec;
    dist::ClientId client_id = 0;
    int generation = 0;  // bumped on leave; stale events check it
    bool alive = false;
    bool ever_joined = false;
    Rng rng{0};
    double busy_s = 0;
    std::uint64_t units = 0;
    bool departed_for_good = false;
    /// Digests this machine holds (its virtual blob cache, memory-tier
    /// semantics: cleared on rejoin). Problem data and unit blobs both
    /// live here — one dedup plane, like the real donor.
    std::set<std::uint64_t> have_blobs;
    /// Problems whose data this machine has initialized — a real donor
    /// builds its Algorithm once per problem and never consults the blob
    /// plane for that data again, so neither does the simulated one.
    std::vector<dist::ProblemId> have_data;
    double join_backoff = 0;  // current reconnect delay under connect faults
    /// Which server incarnation this machine's client id belongs to; when
    /// it trails server_session_ (a standby promoted), the next exchange
    /// re-Hellos for a fresh id first — the TCP donor's error-frame path.
    std::uint64_t session = 0;
  };

  struct ProblemCtx {
    std::shared_ptr<dist::DataManager> dm;
    std::unique_ptr<dist::Algorithm> algorithm;  // lazily initialized
    bool complete_recorded = false;
    std::uint64_t data_hash = 0;     // cached FNV of problem_data()
    bool data_hashed = false;
  };

  // --- simulation mechanics ---
  void machine_join(std::size_t idx);
  void machine_request_work(std::size_t idx, int gen);
  void machine_submit(std::size_t idx, int gen, dist::ResultUnit result);
  void machine_leave(std::size_t idx);
  /// Re-Hello a machine whose session predates the current server
  /// incarnation (fresh client id, same blob cache — the donor process
  /// survived, only the server changed).
  void refresh_session(Machine& m);
  void primary_kill();
  double transfer(double ready_at, double payload_bytes);  // shared link FIFO
  /// Wall-clock time to accrue `compute_s` of donor CPU on machine m,
  /// under its availability model (jitter or owner on/off periods).
  double wall_time_for_compute(Machine& m, double compute_s);
  double server_handle(double arrival, double payload_bytes);  // server CPU FIFO
  std::vector<std::byte> execute_unit(const dist::WorkUnit& unit);
  /// Wire bytes a v4 transfer of this blob would cost (header + compressed
  /// body, memoised per digest — blobs are immutable).
  double blob_wire_bytes(std::uint64_t digest, std::span<const std::byte> bytes);
  /// Deliver one blob to machine `m` unless it already holds the digest.
  /// Charges the shared link (compressed wire size) on a miss and emits the
  /// same blob_sent / blob_cache_hit events and bulk.* counters as the TCP
  /// server. Returns when the blob is available on the machine.
  double deliver_blob(Machine& m, double ready, std::uint64_t digest,
                      std::span<const std::byte> bytes);
  double availability_draw(Machine& m);
  void schedule_tick();
  void schedule_checkpoint();
  /// Draws a frame fault for one control exchange; true = the frame was
  /// torn and the caller should retransmit after a penalty.
  bool frame_lost();

  SimConfig config_;
  std::vector<Machine> machines_;
  EventQueue queue_;
  dist::SchedulerCore core_;
  std::map<dist::ProblemId, ProblemCtx> problems_;
  std::shared_ptr<ResultCache> cache_;
  std::unique_ptr<net::FaultPlan> fault_plan_;
  std::unique_ptr<vfs::StorageFaultPlan> storage_plan_;  // local, not installed
  Rng rng_;

  double link_busy_until_ = 0;
  double server_busy_until_ = 0;
  std::uint64_t messages_ = 0;
  double bytes_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t checkpoints_saved_ = 0;
  std::uint64_t frames_retransmitted_ = 0;
  std::uint64_t joins_refused_ = 0;
  bool server_down_ = false;        // between primary kill and promotion
  std::uint64_t server_session_ = 1;  // bumped at promotion
  std::uint64_t failovers_ = 0;
  bool degraded_ = false;  // storage-fault chaos durability state
  std::uint64_t durability_degradations_ = 0;
  std::uint64_t durability_restores_ = 0;
  std::uint64_t joins_shed_ = 0;
  std::map<std::uint64_t, double> blob_wire_bytes_;  // digest -> wire cost
  std::uint64_t blobs_sent_ = 0;
  std::uint64_t blob_cache_hits_ = 0;
  double blob_bytes_raw_ = 0;
  double blob_bytes_wire_ = 0;
  double last_completion_ = 0;
  std::map<dist::ProblemId, double> completion_time_;
  bool ran_ = false;
};

}  // namespace hdcs::sim
