#include "sim/fleet.hpp"

namespace hdcs::sim {

std::vector<MachineSpec> lab_fleet(int n, double availability_mean,
                                   double availability_jitter) {
  std::vector<MachineSpec> fleet;
  fleet.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    MachineSpec m;
    m.name = "lab-piii-" + std::to_string(i);
    m.speed = 1.0;
    m.availability_mean = availability_mean;
    m.availability_jitter = availability_jitter;
    fleet.push_back(m);
  }
  return fleet;
}

std::vector<MachineSpec> cluster_fleet() {
  std::vector<MachineSpec> fleet;
  fleet.reserve(64);
  for (int node = 0; node < 32; ++node) {
    for (int cpu = 0; cpu < 2; ++cpu) {
      MachineSpec m;
      m.name = "cluster-" + std::to_string(node) + "-cpu" + std::to_string(cpu);
      m.speed = 1.0;               // PIII 1 GHz
      m.availability_mean = 1.0;   // dedicated nodes
      m.availability_jitter = 0.0;
      fleet.push_back(m);
    }
  }
  return fleet;
}

std::vector<MachineSpec> campus_fleet(hdcs::Rng& rng, int desktops) {
  // CPU classes in the paper's lab mix (PII..PIV), speeds relative to
  // PIII-1GHz ~ clock ratio with a small microarchitecture factor.
  struct CpuClass {
    const char* name;
    double speed;
    double weight;
  };
  static const CpuClass kClasses[] = {
      {"pii-300", 0.30, 0.15},  {"pii-450", 0.45, 0.15},
      {"piii-600", 0.60, 0.20}, {"piii-1000", 1.00, 0.25},
      {"piv-1800", 1.60, 0.15}, {"piv-2400", 2.10, 0.10},
  };
  std::vector<double> weights;
  for (const auto& c : kClasses) weights.push_back(c.weight);

  std::vector<MachineSpec> fleet;
  fleet.reserve(static_cast<std::size_t>(desktops) + 64);
  for (int i = 0; i < desktops; ++i) {
    const auto& cls = kClasses[rng.categorical(weights)];
    MachineSpec m;
    m.name = std::string("desk-") + cls.name + "-" + std::to_string(i);
    m.speed = cls.speed;
    // Desktops are in use during the day: noticeably semi-idle.
    m.availability_mean = rng.uniform(0.55, 0.95);
    m.availability_jitter = 0.15;
    fleet.push_back(m);
  }
  auto cluster = cluster_fleet();
  fleet.insert(fleet.end(), cluster.begin(), cluster.end());
  return fleet;
}

std::vector<MachineSpec> heterogeneous_fleet(int n) {
  std::vector<MachineSpec> fleet;
  fleet.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    MachineSpec m;
    bool fast = (i % 2) == 0;
    m.name = (fast ? "fast-" : "slow-") + std::to_string(i);
    m.speed = fast ? 2.0 : 0.3;
    m.availability_mean = 0.9;
    m.availability_jitter = 0.05;
    fleet.push_back(m);
  }
  return fleet;
}

}  // namespace hdcs::sim
