#include "sim/event_queue.hpp"

#include "util/error.hpp"

namespace hdcs::sim {

void EventQueue::schedule(double at, Callback fn) {
  if (at < now_) {
    throw Error("EventQueue: scheduling into the past (at=" + std::to_string(at) +
                ", now=" + std::to_string(now_) + ")");
  }
  events_.push(Event{at, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (events_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle (shared state via std::function is cheap
  // relative to simulated work).
  Event ev = events_.top();
  events_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

double EventQueue::run_until(const std::function<bool()>& stop) {
  while (!events_.empty()) {
    if (stop && stop()) break;
    step();
  }
  return now_;
}

}  // namespace hdcs::sim
