#pragma once
// FASTA reading and writing.
//
// DSEARCH's inputs are "a FASTA database file, a FASTA query sequences
// file, a scoring scheme, and a configuration file" (paper §3.1).

#include <iosfwd>
#include <string>
#include <vector>

#include "bio/sequence.hpp"

namespace hdcs::bio {

/// Parse FASTA text; validates residues against `alphabet` (or guesses per
/// sequence when nullopt-like auto mode is requested via guess=true).
std::vector<Sequence> parse_fasta(std::string_view text, Alphabet alphabet);

/// Parse with per-file alphabet auto-detection (first sequence decides).
std::vector<Sequence> parse_fasta_auto(std::string_view text,
                                       Alphabet* detected = nullptr);

/// Load from a file; throws IoError if unreadable.
std::vector<Sequence> load_fasta(const std::string& path, Alphabet alphabet);

/// Write FASTA with 70-column wrapping.
std::string to_fasta(const std::vector<Sequence>& seqs, std::size_t width = 70);
void write_fasta(const std::string& path, const std::vector<Sequence>& seqs,
                 std::size_t width = 70);

/// Total residue count across sequences (the database "size" DSEARCH's
/// granularity control works in).
std::size_t total_residues(const std::vector<Sequence>& seqs);

}  // namespace hdcs::bio
