#include "bio/seqgen.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hdcs::bio {

namespace {
std::string_view canonical_residues(Alphabet alphabet) {
  // Exclude ambiguity codes so generated data is clean.
  return alphabet == Alphabet::kDna ? std::string_view("ACGT")
                                    : std::string_view("ACDEFGHIKLMNPQRSTVWY");
}

char random_residue(Rng& rng, Alphabet alphabet) {
  auto set = canonical_residues(alphabet);
  return set[rng.next_below(set.size())];
}
}  // namespace

std::string random_residues(Rng& rng, std::size_t length, Alphabet alphabet) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) out.push_back(random_residue(rng, alphabet));
  return out;
}

Sequence random_sequence(Rng& rng, std::size_t length, Alphabet alphabet,
                         const std::string& prefix, std::size_t index) {
  Sequence s;
  s.id = prefix + std::to_string(index);
  s.residues = random_residues(rng, length, alphabet);
  return s;
}

std::string mutate(Rng& rng, std::string_view residues, Alphabet alphabet,
                   double mutation_rate, double indel_rate) {
  std::string out;
  out.reserve(residues.size() + 8);
  for (char c : residues) {
    double r = rng.next_double();
    if (r < indel_rate / 2) {
      continue;  // deletion
    }
    if (r < indel_rate) {
      out.push_back(random_residue(rng, alphabet));  // insertion before c
    }
    if (rng.next_double() < mutation_rate) {
      char repl = random_residue(rng, alphabet);
      out.push_back(repl);
    } else {
      out.push_back(c);
    }
  }
  if (out.empty()) out.push_back(random_residue(rng, alphabet));
  return out;
}

std::vector<Sequence> make_database(Rng& rng, const DatabaseSpec& spec,
                                    const std::vector<Sequence>& queries) {
  if (spec.mean_length < spec.min_length) {
    throw InputError("DatabaseSpec: mean_length < min_length");
  }
  std::vector<Sequence> db;
  db.reserve(spec.num_sequences +
             queries.size() * spec.planted_homologs_per_query);

  for (std::size_t i = 0; i < spec.num_sequences; ++i) {
    // Exponential length distribution around the mean, floored at min.
    auto len = static_cast<std::size_t>(rng.exponential(
        static_cast<double>(spec.mean_length - spec.min_length)));
    len += spec.min_length;
    db.push_back(random_sequence(rng, len, spec.alphabet, "bg_", i));
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t k = 0; k < spec.planted_homologs_per_query; ++k) {
      Sequence s;
      s.id = "hom_" + std::to_string(q) + "_" + std::to_string(k);
      s.description = "homolog of " + queries[q].id;
      s.residues = mutate(rng, queries[q].residues, spec.alphabet,
                          spec.mutation_rate, spec.indel_rate);
      db.push_back(std::move(s));
    }
  }
  // Shuffle so homologs are not clustered at the end (which would bias
  // chunked search experiments).
  rng.shuffle(db);
  return db;
}

std::vector<Sequence> make_queries(Rng& rng, std::size_t count, std::size_t length,
                                   Alphabet alphabet) {
  std::vector<Sequence> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(random_sequence(rng, length, alphabet, "query_", i));
  }
  return out;
}

}  // namespace hdcs::bio
