#pragma once
// Lane-parallel int16 alignment kernels behind the runtime SIMD dispatch
// (util/simd.hpp). One kernel table per tier:
//
//   portable_kernels()  fixed-width-lane C++ compiled at the baseline
//                       target ISA (auto-vectorized; the "sse2" tier)
//   avx2_kernels()      hand-written AVX2 intrinsics from the -mavx2
//                       translation unit; forwards to portable when the
//                       binary was built without AVX2 support
//
// Both tables implement the same contract (docs/KERNELS.md):
//
//   sw  Smith–Waterman. best[l] is the lane's running maximum clamped to
//       [0, kSat16]; best[l] >= kSat16 means the lane saturated and must
//       be re-run exactly. Otherwise best[l] is the exact score.
//   nw  Needleman–Wunsch (global). out[l] = H(n, len[l]); bit l of
//       *railed set when the lane's clamped state touched kFloor16 or
//       kSat16 inside the lane's live region — the int16 value may then
//       be wrong and the caller re-runs the lane in int64.
//   sg  Semi-global (query global, subject ends free): out[l] =
//       max over t <= len[l] of H(n, t); same rail contract as nw.
//
// Callers must guarantee, per lane: len >= 1, profile.lane_safe(), and
// oe + max(query_len, len) * ext < -kFloor16 so every boundary cell is
// representable without clamping (batch_align_scores prechecks this and
// routes ineligible lanes straight to the exact kernels).

#include "bio/align_batch.hpp"

namespace hdcs::bio::lanes {

/// Up to kBatchLanes encoded subjects advancing in lockstep. Unused lanes
/// have len == 0, are fed kPadSymbol columns and never touch seq[].
struct LaneBatch {
  const std::uint8_t* seq[kBatchLanes] = {};
  std::size_t len[kBatchLanes] = {};
  std::size_t max_len = 0;
};

using SwFn = void (*)(const QueryProfile&, const LaneBatch&, std::int16_t oe,
                      std::int16_t ext, AlignScratch&,
                      std::int16_t best[kBatchLanes]);
using GlobalFn = void (*)(const QueryProfile&, const LaneBatch&,
                          std::int16_t oe, std::int16_t ext, AlignScratch&,
                          std::int16_t out[kBatchLanes], std::uint32_t* railed);

struct Kernels {
  SwFn sw;
  GlobalFn nw;
  GlobalFn sg;
};

const Kernels& portable_kernels();
const Kernels& avx2_kernels();

}  // namespace hdcs::bio::lanes
