#include "bio/fasta.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hdcs::bio {

namespace {
struct RawRecord {
  std::string header;
  std::string body;
};

std::vector<RawRecord> split_records(std::string_view text) {
  std::vector<RawRecord> records;
  RawRecord* current = nullptr;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = trim(text.substr(start, end - start));
    if (!line.empty()) {
      if (line.front() == '>') {
        records.push_back(RawRecord{std::string(line.substr(1)), {}});
        current = &records.back();
      } else if (line.front() != ';') {  // ';' comments (legacy FASTA)
        if (!current) {
          throw InputError("FASTA: sequence data before first '>' header");
        }
        current->body.append(line);
      }
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return records;
}

Sequence to_sequence(const RawRecord& rec, Alphabet alphabet) {
  Sequence seq;
  auto header = trim(rec.header);
  std::size_t space = header.find_first_of(" \t");
  if (space == std::string_view::npos) {
    seq.id = std::string(header);
  } else {
    seq.id = std::string(header.substr(0, space));
    seq.description = std::string(trim(header.substr(space + 1)));
  }
  if (seq.id.empty()) throw InputError("FASTA: empty sequence id");
  seq.residues = normalize_residues(rec.body, alphabet);
  if (seq.residues.empty()) {
    throw InputError("FASTA: sequence '" + seq.id + "' has no residues");
  }
  return seq;
}
}  // namespace

std::vector<Sequence> parse_fasta(std::string_view text, Alphabet alphabet) {
  auto records = split_records(text);
  if (records.empty()) throw InputError("FASTA: no sequences found");
  std::vector<Sequence> seqs;
  seqs.reserve(records.size());
  for (const auto& rec : records) seqs.push_back(to_sequence(rec, alphabet));
  return seqs;
}

std::vector<Sequence> parse_fasta_auto(std::string_view text, Alphabet* detected) {
  auto records = split_records(text);
  if (records.empty()) throw InputError("FASTA: no sequences found");
  Alphabet alphabet = guess_alphabet(records.front().body);
  if (detected) *detected = alphabet;
  std::vector<Sequence> seqs;
  seqs.reserve(records.size());
  for (const auto& rec : records) seqs.push_back(to_sequence(rec, alphabet));
  return seqs;
}

std::vector<Sequence> load_fasta(const std::string& path, Alphabet alphabet) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open FASTA file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_fasta(ss.str(), alphabet);
}

std::string to_fasta(const std::vector<Sequence>& seqs, std::size_t width) {
  if (width == 0) width = 70;
  std::string out;
  for (const auto& seq : seqs) {
    out.push_back('>');
    out.append(seq.id);
    if (!seq.description.empty()) {
      out.push_back(' ');
      out.append(seq.description);
    }
    out.push_back('\n');
    for (std::size_t i = 0; i < seq.residues.size(); i += width) {
      out.append(seq.residues.substr(i, width));
      out.push_back('\n');
    }
  }
  return out;
}

void write_fasta(const std::string& path, const std::vector<Sequence>& seqs,
                 std::size_t width) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write FASTA file: " + path);
  out << to_fasta(seqs, width);
}

std::size_t total_residues(const std::vector<Sequence>& seqs) {
  std::size_t n = 0;
  for (const auto& s : seqs) n += s.residues.size();
  return n;
}

}  // namespace hdcs::bio
