#include "bio/align.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace hdcs::bio {

AlignMode parse_align_mode(const std::string& name) {
  std::string n = to_lower(name);
  if (n == "global" || n == "nw" || n == "needleman-wunsch") return AlignMode::kGlobal;
  if (n == "local" || n == "sw" || n == "smith-waterman") return AlignMode::kLocal;
  if (n == "semiglobal" || n == "glocal") return AlignMode::kSemiGlobal;
  if (n == "banded") return AlignMode::kBanded;
  throw InputError("unknown alignment mode: " + name);
}

const char* to_string(AlignMode mode) {
  switch (mode) {
    case AlignMode::kGlobal: return "global";
    case AlignMode::kLocal: return "local";
    case AlignMode::kSemiGlobal: return "semiglobal";
    case AlignMode::kBanded: return "banded";
  }
  return "?";
}

namespace {
using Row = std::vector<std::int64_t>;

struct GapCosts {
  std::int64_t open_extend;  // cost of starting a gap (open + first extend)
  std::int64_t extend;
};

GapCosts gap_costs(const ScoringScheme& s) {
  return {static_cast<std::int64_t>(s.gap_open()) + s.gap_extend(),
          static_cast<std::int64_t>(s.gap_extend())};
}
}  // namespace

// Gotoh, score only. H = best ending in match/mismatch or either gap state;
// E = gap in `a` (consuming b), F = gap in `b` (consuming a).
std::int64_t nw_score(std::string_view a, std::string_view b,
                      const ScoringScheme& s) {
  const auto [oe, ext] = gap_costs(s);
  const std::size_t m = b.size();
  Row h_prev(m + 1), h_cur(m + 1), f(m + 1, kNegInf);

  h_prev[0] = 0;
  for (std::size_t j = 1; j <= m; ++j) {
    h_prev[j] = -(oe + static_cast<std::int64_t>(j - 1) * ext);
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    h_cur[0] = -(oe + static_cast<std::int64_t>(i - 1) * ext);
    std::int64_t e = kNegInf;
    for (std::size_t j = 1; j <= m; ++j) {
      e = std::max(h_cur[j - 1] - oe, e - ext);
      f[j] = std::max(h_prev[j] - oe, f[j] - ext);
      std::int64_t diag = h_prev[j - 1] + s.score(a[i - 1], b[j - 1]);
      h_cur[j] = std::max({diag, e, f[j]});
    }
    std::swap(h_prev, h_cur);
  }
  return h_prev[m];
}

std::int64_t sw_score(std::string_view a, std::string_view b,
                      const ScoringScheme& s) {
  const auto [oe, ext] = gap_costs(s);
  const std::size_t m = b.size();
  Row h_prev(m + 1, 0), h_cur(m + 1, 0), f(m + 1, kNegInf);
  std::int64_t best = 0;

  for (std::size_t i = 1; i <= a.size(); ++i) {
    h_cur[0] = 0;
    std::int64_t e = kNegInf;
    for (std::size_t j = 1; j <= m; ++j) {
      e = std::max(h_cur[j - 1] - oe, e - ext);
      f[j] = std::max(h_prev[j] - oe, f[j] - ext);
      std::int64_t diag = h_prev[j - 1] + s.score(a[i - 1], b[j - 1]);
      h_cur[j] = std::max<std::int64_t>({0, diag, e, f[j]});
      best = std::max(best, h_cur[j]);
    }
    std::swap(h_prev, h_cur);
  }
  return best;
}

std::int64_t semiglobal_score(std::string_view a, std::string_view b,
                              const ScoringScheme& s) {
  const auto [oe, ext] = gap_costs(s);
  const std::size_t m = b.size();
  // Leading gap in b is free: H[0][j] = 0. Query gaps still cost.
  Row h_prev(m + 1, 0), h_cur(m + 1), f(m + 1, kNegInf);

  for (std::size_t i = 1; i <= a.size(); ++i) {
    h_cur[0] = -(oe + static_cast<std::int64_t>(i - 1) * ext);
    std::int64_t e = kNegInf;
    for (std::size_t j = 1; j <= m; ++j) {
      e = std::max(h_cur[j - 1] - oe, e - ext);
      f[j] = std::max(h_prev[j] - oe, f[j] - ext);
      std::int64_t diag = h_prev[j - 1] + s.score(a[i - 1], b[j - 1]);
      h_cur[j] = std::max({diag, e, f[j]});
    }
    std::swap(h_prev, h_cur);
  }
  // Trailing gap in b free: best over the last row.
  return *std::max_element(h_prev.begin(), h_prev.end());
}

std::int64_t banded_nw_score(std::string_view a, std::string_view b,
                             const ScoringScheme& s, std::size_t band) {
  const std::size_t n = a.size(), m = b.size();
  const std::size_t diff = n > m ? n - m : m - n;
  if (band < diff) {
    throw InputError("banded alignment: band " + std::to_string(band) +
                     " cannot bridge length difference " + std::to_string(diff));
  }
  const auto [oe, ext] = gap_costs(s);
  const auto k = static_cast<std::ptrdiff_t>(band);

  // Row-indexed DP over j in [lo_i, hi_i] where the band follows the main
  // diagonal j ~ i. Cells outside the band are kNegInf.
  Row h_prev(m + 1, kNegInf), h_cur(m + 1, kNegInf), f(m + 1, kNegInf);
  h_prev[0] = 0;
  for (std::size_t j = 1; j <= m && static_cast<std::ptrdiff_t>(j) <= k; ++j) {
    h_prev[j] = -(oe + static_cast<std::int64_t>(j - 1) * ext);
  }
  for (std::size_t i = 1; i <= n; ++i) {
    auto lo = std::max<std::ptrdiff_t>(1, static_cast<std::ptrdiff_t>(i) - k);
    auto hi = std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(m),
                                       static_cast<std::ptrdiff_t>(i) + k);
    // Reset cells the band has moved past.
    if (lo >= 1) h_cur[lo - 1] = kNegInf;
    if (static_cast<std::ptrdiff_t>(i) <= k) {
      h_cur[0] = -(oe + static_cast<std::int64_t>(i - 1) * ext);
    }
    std::int64_t e = kNegInf;
    // kNegInf is a "half infinity" (INT64_MIN/4): low enough that a cell
    // fed from outside the band loses every max() against a real path, yet
    // far enough from INT64_MIN that the band loop can subtract penalties
    // and add substitution scores unconditionally — no per-cell guards.
    for (auto j = lo; j <= hi; ++j) {
      auto ju = static_cast<std::size_t>(j);
      e = std::max(h_cur[ju - 1] - oe, e - ext);
      f[ju] = std::max(h_prev[ju] - oe, f[ju] - ext);
      std::int64_t diag = h_prev[ju - 1] + s.score(a[i - 1], b[ju - 1]);
      h_cur[ju] = std::max({diag, e, f[ju]});
    }
    // Invalidate the cell just beyond the band's right edge for next row.
    if (hi + 1 <= static_cast<std::ptrdiff_t>(m)) {
      h_cur[static_cast<std::size_t>(hi + 1)] = kNegInf;
      f[static_cast<std::size_t>(hi + 1)] = kNegInf;
    }
    std::swap(h_prev, h_cur);
  }
  if (h_prev[m] <= kNegInf / 2) {
    throw Error("banded alignment: no path within band (internal)");
  }
  return h_prev[m];
}

std::int64_t align_score(AlignMode mode, std::string_view a, std::string_view b,
                         const ScoringScheme& s, std::size_t band,
                         AlignDiagnostics* diag) {
  if (diag) *diag = AlignDiagnostics{};
  switch (mode) {
    case AlignMode::kGlobal: return nw_score(a, b, s);
    case AlignMode::kLocal: return sw_score(a, b, s);
    case AlignMode::kSemiGlobal: return semiglobal_score(a, b, s);
    case AlignMode::kBanded: {
      std::size_t diff = a.size() > b.size() ? a.size() - b.size()
                                             : b.size() - a.size();
      std::size_t k = std::max(band, diff + 1);
      if (k != band) {
        // A too-narrow band used to be widened silently, letting DSEARCH
        // configs claim a band they never ran with. Warn (rate-limited so a
        // whole-database search can't flood the log) and report the band
        // actually used via `diag`.
        static std::atomic<int> warnings_left{5};
        int left = warnings_left.fetch_sub(1);
        if (left > 0) {
          LOG_WARN("banded alignment: band " << band
                   << " cannot bridge length difference " << diff
                   << "; widened to " << k
                   << (left == 1 ? " (suppressing further band warnings)"
                                 : ""));
        }
      }
      if (diag) {
        diag->effective_band = k;
        diag->band_widened = (k != band);
      }
      return banded_nw_score(a, b, s, k);
    }
  }
  throw InputError("bad alignment mode");
}

namespace {
enum class Tb : std::uint8_t { kDiag, kE, kF, kStop };

struct FullDp {
  std::size_t n, m;
  std::vector<std::int64_t> h, e, f;
  std::vector<Tb> tb_h;        // how H was achieved
  std::vector<bool> e_open;    // E came from H (gap opened) vs extended
  std::vector<bool> f_open;

  FullDp(std::size_t n_, std::size_t m_)
      : n(n_), m(m_), h((n + 1) * (m + 1), kNegInf), e(h.size(), kNegInf),
        f(h.size(), kNegInf), tb_h(h.size(), Tb::kStop), e_open(h.size(), false),
        f_open(h.size(), false) {}

  [[nodiscard]] std::size_t at(std::size_t i, std::size_t j) const {
    return i * (m + 1) + j;
  }
};

AlignmentResult traceback(const FullDp& dp, std::string_view a, std::string_view b,
                          std::size_t i, std::size_t j, bool local) {
  AlignmentResult res;
  res.a_end = i;
  res.b_end = j;
  std::string ra, rb;
  enum class State { kH, kE, kF } state = State::kH;
  while (i > 0 || j > 0) {
    std::size_t idx = dp.at(i, j);
    if (state == State::kH) {
      Tb t = dp.tb_h[idx];
      if (local && t == Tb::kStop) break;
      if (t == Tb::kDiag) {
        ra.push_back(a[i - 1]);
        rb.push_back(b[j - 1]);
        --i;
        --j;
      } else if (t == Tb::kE) {
        state = State::kE;
      } else if (t == Tb::kF) {
        state = State::kF;
      } else {
        break;  // hit the origin in global mode
      }
    } else if (state == State::kE) {
      // gap in a: consume b[j-1]
      ra.push_back('-');
      rb.push_back(b[j - 1]);
      bool opened = dp.e_open[idx];
      --j;
      state = opened ? State::kH : State::kE;
    } else {
      ra.push_back(a[i - 1]);
      rb.push_back('-');
      bool opened = dp.f_open[idx];
      --i;
      state = opened ? State::kH : State::kF;
    }
  }
  res.a_begin = i;
  res.b_begin = j;
  std::reverse(ra.begin(), ra.end());
  std::reverse(rb.begin(), rb.end());
  res.aligned_a = std::move(ra);
  res.aligned_b = std::move(rb);
  return res;
}

AlignmentResult full_align(std::string_view a, std::string_view b,
                           const ScoringScheme& s, bool local) {
  const auto [oe, ext] = gap_costs(s);
  const std::size_t n = a.size(), m = b.size();
  FullDp dp(n, m);

  dp.h[dp.at(0, 0)] = 0;
  dp.tb_h[dp.at(0, 0)] = Tb::kStop;
  for (std::size_t j = 1; j <= m; ++j) {
    std::size_t idx = dp.at(0, j);
    if (local) {
      dp.h[idx] = 0;
      dp.tb_h[idx] = Tb::kStop;
    } else {
      dp.e[idx] = -(oe + static_cast<std::int64_t>(j - 1) * ext);
      dp.e_open[idx] = (j == 1);
      dp.h[idx] = dp.e[idx];
      dp.tb_h[idx] = Tb::kE;
    }
  }
  for (std::size_t i = 1; i <= n; ++i) {
    std::size_t idx0 = dp.at(i, 0);
    if (local) {
      dp.h[idx0] = 0;
      dp.tb_h[idx0] = Tb::kStop;
    } else {
      dp.f[idx0] = -(oe + static_cast<std::int64_t>(i - 1) * ext);
      dp.f_open[idx0] = (i == 1);
      dp.h[idx0] = dp.f[idx0];
      dp.tb_h[idx0] = Tb::kF;
    }
  }

  std::int64_t best = 0;
  std::size_t best_i = 0, best_j = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      std::size_t idx = dp.at(i, j);
      std::size_t left = dp.at(i, j - 1);
      std::size_t up = dp.at(i - 1, j);
      std::size_t diag_idx = dp.at(i - 1, j - 1);

      std::int64_t e_from_h = dp.h[left] == kNegInf ? kNegInf : dp.h[left] - oe;
      std::int64_t e_from_e = dp.e[left] == kNegInf ? kNegInf : dp.e[left] - ext;
      dp.e[idx] = std::max(e_from_h, e_from_e);
      dp.e_open[idx] = e_from_h >= e_from_e;

      std::int64_t f_from_h = dp.h[up] == kNegInf ? kNegInf : dp.h[up] - oe;
      std::int64_t f_from_f = dp.f[up] == kNegInf ? kNegInf : dp.f[up] - ext;
      dp.f[idx] = std::max(f_from_h, f_from_f);
      dp.f_open[idx] = f_from_h >= f_from_f;

      std::int64_t diag = dp.h[diag_idx] + s.score(a[i - 1], b[j - 1]);
      std::int64_t h = diag;
      Tb t = Tb::kDiag;
      if (dp.e[idx] > h) {
        h = dp.e[idx];
        t = Tb::kE;
      }
      if (dp.f[idx] > h) {
        h = dp.f[idx];
        t = Tb::kF;
      }
      if (local && h < 0) {
        h = 0;
        t = Tb::kStop;
      }
      dp.h[idx] = h;
      dp.tb_h[idx] = t;
      if (local && h > best) {
        best = h;
        best_i = i;
        best_j = j;
      }
    }
  }

  AlignmentResult res;
  if (local) {
    res = traceback(dp, a, b, best_i, best_j, true);
    res.score = best;
  } else {
    res = traceback(dp, a, b, n, m, false);
    res.score = dp.h[dp.at(n, m)];
  }
  return res;
}
}  // namespace

AlignmentResult nw_align(std::string_view a, std::string_view b,
                         const ScoringScheme& s) {
  return full_align(a, b, s, /*local=*/false);
}

AlignmentResult sw_align(std::string_view a, std::string_view b,
                         const ScoringScheme& s) {
  return full_align(a, b, s, /*local=*/true);
}

double percent_identity(std::string_view aligned_a, std::string_view aligned_b) {
  if (aligned_a.size() != aligned_b.size()) {
    throw InputError("percent_identity: aligned strings differ in length");
  }
  if (aligned_a.empty()) return 0;
  std::size_t same = 0;
  for (std::size_t i = 0; i < aligned_a.size(); ++i) {
    if (aligned_a[i] == aligned_b[i] && aligned_a[i] != '-') ++same;
  }
  return 100.0 * static_cast<double>(same) / static_cast<double>(aligned_a.size());
}

}  // namespace hdcs::bio
