#pragma once
// Synthetic sequence workload generation.
//
// The paper searched real genomic databases; we have none offline, so
// experiments use generated databases with controlled statistics: random
// background sequences plus "planted" families derived from a query by
// point mutation and indels, so searches have true positives to rank.
// Everything is driven by a seeded Rng for reproducibility.

#include <string>
#include <vector>

#include "bio/sequence.hpp"
#include "util/rng.hpp"

namespace hdcs::bio {

struct DatabaseSpec {
  std::size_t num_sequences = 1000;
  std::size_t mean_length = 300;
  std::size_t min_length = 50;
  Alphabet alphabet = Alphabet::kProtein;
  /// For every query planted, this many mutated homologs are inserted.
  std::size_t planted_homologs_per_query = 5;
  /// Per-residue substitution probability for planted homologs.
  double mutation_rate = 0.15;
  /// Per-residue indel probability for planted homologs.
  double indel_rate = 0.02;
};

/// Random residues, uniform over the canonical alphabet (no N/X/B/Z).
std::string random_residues(Rng& rng, std::size_t length, Alphabet alphabet);

/// One random sequence with id "<prefix><index>".
Sequence random_sequence(Rng& rng, std::size_t length, Alphabet alphabet,
                         const std::string& prefix, std::size_t index);

/// Apply point mutations + indels (a crude homolog model).
std::string mutate(Rng& rng, std::string_view residues, Alphabet alphabet,
                   double mutation_rate, double indel_rate);

/// Build a database with planted homologs of each query. Homolog ids are
/// "hom_<q>_<k>" so tests can check they rank above background.
std::vector<Sequence> make_database(Rng& rng, const DatabaseSpec& spec,
                                    const std::vector<Sequence>& queries);

/// Convenience: spec.num_queries random queries of the given length.
std::vector<Sequence> make_queries(Rng& rng, std::size_t count,
                                   std::size_t length, Alphabet alphabet);

}  // namespace hdcs::bio
