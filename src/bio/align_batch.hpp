#pragma once
// High-throughput batch alignment kernels — DSEARCH's hot path.
//
// The scalar kernels in bio/align.hpp score one (query, subject) pair at a
// time, call ScoringScheme::score() per DP cell and allocate fresh rows per
// pair. This layer restructures that work for throughput (docs/KERNELS.md):
//
//   1. Sequences are encoded once into the scheme's packed alphabet and the
//      query becomes a *score profile* — a (symbol x query-position) table —
//      so the inner loop is a pure array walk.
//   2. SW, NW and semi-global all run in lane-parallel int16 kernels:
//      kBatchLanes database sequences advance in lockstep, one DP column
//      per step, packed in length-sorted order so the lanes of a batch
//      finish together. The kernels live behind the runtime SIMD dispatch
//      (util/simd.hpp): an AVX2 intrinsics tier, a portable fixed-width
//      lane tier, and a scalar tier that skips the lanes entirely.
//   3. int16 saturation is detected per lane — SW by its clamped running
//      best reaching kSat16, NW/semi-global by any live H cell touching
//      the kFloor16/kSat16 rails — and flagged lanes are re-run through
//      the exact int64 kernels, so every tier's results are bit-identical
//      to bio/align.hpp (see align_lanes.hpp and docs/KERNELS.md).
//   4. All per-pair allocation is hoisted into AlignScratch, one per thread.
//
// batch_align_scores() is the only entry point DSEARCH needs; everything
// else is exposed for tests and benchmarks.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bio/align.hpp"
#include "bio/scoring.hpp"

namespace hdcs::bio {

/// Lanes of the int16 Smith–Waterman kernel: 16 int16 values fill one AVX2
/// register (two SSE2 registers). Fixed so the lane loops have a
/// compile-time trip count.
inline constexpr std::size_t kBatchLanes = 16;

/// Profile symbols: every ScoringScheme index plus one trailing padding
/// symbol. Finished lanes are fed kPadSymbol, whose profile column is
/// kFloor16 everywhere — a padded column can never raise a local score.
inline constexpr std::size_t kProfileSymbols = ScoringScheme::kAlphabetSize + 1;
inline constexpr std::uint8_t kPadSymbol =
    static_cast<std::uint8_t>(ScoringScheme::kAlphabetSize);

/// int16 domain: H is clamped into [0, kSat16]. Scores grow by bounded
/// per-cell steps, so if a lane's running best stays below kSat16 no clamp
/// ever fired and the int16 result is exact; otherwise the lane saturated
/// and is recomputed in int64.
inline constexpr std::int16_t kSat16 = 32000;

/// "Half minus-infinity" for int16 state: loses every max() against a real
/// cell, yet one more gap subtraction cannot underflow the type.
inline constexpr std::int16_t kFloor16 = -16000;

/// Encode residues as ScoringScheme packed indices.
void encode_residues(std::string_view seq, std::vector<std::uint8_t>& out);

/// Per-query score profile: score(query[i], symbol) for every symbol, laid
/// out symbol-major so a subject residue selects one contiguous column.
/// Built once per (query, scheme) and reused across the whole database.
class QueryProfile {
 public:
  QueryProfile(std::string_view query, const ScoringScheme& scheme);

  [[nodiscard]] std::size_t length() const { return n_; }
  [[nodiscard]] const std::string& query() const { return query_; }
  /// False when matrix entries or gap costs are too large for the int16
  /// lane kernel's no-overflow guarantees; batch falls back to int64.
  [[nodiscard]] bool lane_safe() const { return lane_safe_; }

  [[nodiscard]] const std::int16_t* column16(std::uint8_t symbol) const {
    return profile16_.data() + static_cast<std::size_t>(symbol) * n_;
  }
  [[nodiscard]] const std::int32_t* column32(std::uint8_t symbol) const {
    return profile32_.data() + static_cast<std::size_t>(symbol) * n_;
  }

 private:
  std::string query_;
  std::size_t n_ = 0;
  bool lane_safe_ = true;
  std::vector<std::int16_t> profile16_;  // [symbol][query position]
  std::vector<std::int32_t> profile32_;
};

/// Work/saturation accounting for one batch call. The caller (DSEARCH)
/// forwards these into the obs registry as align.cells_total and
/// align.batch_saturations; bio itself stays observability-free.
struct BatchMetrics {
  std::uint64_t cells = 0;        // semantic DP cells (query_len x subject_len)
  std::uint64_t saturations = 0;  // int16 lanes re-run through int64 (any mode)
};

/// Reusable per-thread DP state. Buffers grow to the largest problem seen
/// and are never shrunk; one AlignScratch per thread, never shared.
struct AlignScratch {
  std::vector<std::int16_t> h16, e16;     // int16 lane state, (n+1)*kBatchLanes
  std::vector<std::uint8_t> enc;          // encoded subjects, concatenated
  std::vector<std::size_t> enc_offset;    // per-subject offsets into enc
  std::vector<std::size_t> order;         // length-sorted packing order
  // int64 rows for the profile kernels (two H rows ping-ponged + one F row).
  std::vector<std::int64_t> row_h, row_h2, row_f;
};

/// Score every subject in `db` against the profile's query. Results are
/// bit-identical to calling the corresponding bio/align.hpp scalar kernel
/// (via align_score) per pair, in the same order as `db`.
/// `band` is the requested band for AlignMode::kBanded (widened exactly as
/// align_score widens it); ignored otherwise.
std::vector<std::int64_t> batch_align_scores(
    AlignMode mode, const QueryProfile& profile,
    std::span<const std::string_view> db, const ScoringScheme& scheme,
    std::size_t band, AlignScratch& scratch, BatchMetrics* metrics = nullptr);

// ---- exposed for tests/benchmarks ----

/// Transposed (subject-major) profile kernels; exact int64 arithmetic.
std::int64_t nw_score_profile(const QueryProfile& profile,
                              std::span<const std::uint8_t> subject,
                              const ScoringScheme& scheme, AlignScratch& scratch);
std::int64_t semiglobal_score_profile(const QueryProfile& profile,
                                      std::span<const std::uint8_t> subject,
                                      const ScoringScheme& scheme,
                                      AlignScratch& scratch);

}  // namespace hdcs::bio
