#include "bio/align_batch.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "bio/align_lanes.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace hdcs::bio {

void encode_residues(std::string_view seq, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(seq.size());
  for (char c : seq) {
    out.push_back(static_cast<std::uint8_t>(ScoringScheme::index_of(c)));
  }
}

QueryProfile::QueryProfile(std::string_view query, const ScoringScheme& scheme)
    : query_(query), n_(query.size()) {
  profile16_.assign(kProfileSymbols * n_, kFloor16);
  profile32_.assign(kProfileSymbols * n_, kFloor16);

  std::vector<std::uint8_t> enc;
  encode_residues(query, enc);

  // The lane kernel's no-overflow argument needs bounded per-cell steps:
  // kSat16 + |substitution| must fit int16, and kFloor16 minus one gap step
  // must not underflow it. Real matrices are tiny (<= 17), real gaps < 100.
  constexpr int kLaneSubLimit = 500;   // kSat16 + 500 < INT16_MAX
  constexpr int kLaneGapLimit = 4000;  // kFloor16 - 4000 > INT16_MIN
  const int oe = scheme.gap_open() + scheme.gap_extend();
  const int ext = scheme.gap_extend();
  if (oe > kLaneGapLimit || ext > kLaneGapLimit || oe < 0 || ext < 0) {
    lane_safe_ = false;
  }

  for (std::size_t sym = 0; sym < ScoringScheme::kAlphabetSize; ++sym) {
    std::int16_t* col16 = profile16_.data() + sym * n_;
    std::int32_t* col32 = profile32_.data() + sym * n_;
    for (std::size_t i = 0; i < n_; ++i) {
      int sc = scheme.score_indexed(sym, enc[i]);
      if (std::abs(sc) > kLaneSubLimit) lane_safe_ = false;
      col16[i] = static_cast<std::int16_t>(sc);
      col32[i] = sc;
    }
  }
  // kPadSymbol column stays kFloor16 (from the assign above).
}

namespace {

struct GapCosts {
  std::int64_t open_extend;
  std::int64_t extend;
};

GapCosts gap_costs(const ScoringScheme& s) {
  return {static_cast<std::int64_t>(s.gap_open()) + s.gap_extend(),
          static_cast<std::int64_t>(s.gap_extend())};
}

}  // namespace

// Transposed Gotoh, subject rows x query columns, so the profile column for
// the row's subject residue is walked contiguously. The optimum of global
// alignment is symmetric (substitution matrices are validated symmetric),
// so this equals nw_score(query, subject) exactly.
//
// Two ping-ponged H rows rather than one updated in place, and H(i, j-1)
// carried in a register across j: re-loading the value stored one iteration
// earlier puts a store-to-load forward on the serial E chain and costs ~2x.
std::int64_t nw_score_profile(const QueryProfile& p,
                              std::span<const std::uint8_t> subject,
                              const ScoringScheme& scheme,
                              AlignScratch& sc) {
  const auto [oe, ext] = gap_costs(scheme);
  const std::size_t n = p.length(), m = subject.size();
  sc.row_h.resize(n + 1);
  sc.row_h2.resize(n + 1);
  sc.row_f.resize(n + 1);
  std::int64_t* h_prev = sc.row_h.data();
  std::int64_t* h_cur = sc.row_h2.data();
  std::int64_t* const f = sc.row_f.data();

  h_prev[0] = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    h_prev[j] = -(oe + static_cast<std::int64_t>(j - 1) * ext);
    f[j] = kNegInf;
  }
  for (std::size_t i = 1; i <= m; ++i) {
    const std::int32_t* col = p.column32(subject[i - 1]);
    std::int64_t hc = -(oe + static_cast<std::int64_t>(i - 1) * ext);
    h_cur[0] = hc;
    std::int64_t e = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      e = std::max(hc - oe, e - ext);
      std::int64_t fj = std::max(h_prev[j] - oe, f[j] - ext);
      f[j] = fj;
      std::int64_t diag = h_prev[j - 1] + col[j - 1];
      hc = std::max({diag, e, fj});
      h_cur[j] = hc;
    }
    std::swap(h_prev, h_cur);
  }
  return h_prev[n];
}

// Transposed semi-global: query (columns) global, subject (rows) free at
// both ends — H(i, 0) = 0 models the free leading subject gap and the best
// over the last column models the free trailing one. Same optimisation
// problem as semiglobal_score(query, subject), hence the same value.
std::int64_t semiglobal_score_profile(const QueryProfile& p,
                                      std::span<const std::uint8_t> subject,
                                      const ScoringScheme& scheme,
                                      AlignScratch& sc) {
  const auto [oe, ext] = gap_costs(scheme);
  const std::size_t n = p.length(), m = subject.size();
  sc.row_h.resize(n + 1);
  sc.row_h2.resize(n + 1);
  sc.row_f.resize(n + 1);
  std::int64_t* h_prev = sc.row_h.data();
  std::int64_t* h_cur = sc.row_h2.data();
  std::int64_t* const f = sc.row_f.data();

  h_prev[0] = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    h_prev[j] = -(oe + static_cast<std::int64_t>(j - 1) * ext);
    f[j] = kNegInf;
  }
  std::int64_t best = h_prev[n];
  for (std::size_t i = 1; i <= m; ++i) {
    const std::int32_t* col = p.column32(subject[i - 1]);
    std::int64_t hc = 0;
    h_cur[0] = hc;
    std::int64_t e = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      e = std::max(hc - oe, e - ext);
      std::int64_t fj = std::max(h_prev[j] - oe, f[j] - ext);
      f[j] = fj;
      std::int64_t diag = h_prev[j - 1] + col[j - 1];
      hc = std::max({diag, e, fj});
      h_cur[j] = hc;
    }
    std::swap(h_prev, h_cur);
    best = std::max(best, h_prev[n]);
  }
  return best;
}

std::vector<std::int64_t> batch_align_scores(
    AlignMode mode, const QueryProfile& profile,
    std::span<const std::string_view> db, const ScoringScheme& scheme,
    std::size_t band, AlignScratch& scratch, BatchMetrics* metrics) {
  const std::size_t n = profile.length();
  std::vector<std::int64_t> scores(db.size());
  BatchMetrics local;
  BatchMetrics& m = metrics ? *metrics : local;

  // Encode every subject once, concatenated into scratch.
  scratch.enc.clear();
  scratch.enc_offset.assign(db.size() + 1, 0);
  for (std::size_t i = 0; i < db.size(); ++i) {
    for (char c : db[i]) {
      scratch.enc.push_back(
          static_cast<std::uint8_t>(ScoringScheme::index_of(c)));
    }
    scratch.enc_offset[i + 1] = scratch.enc.size();
  }
  auto subject = [&](std::size_t i) {
    return std::span<const std::uint8_t>(
        scratch.enc.data() + scratch.enc_offset[i],
        scratch.enc_offset[i + 1] - scratch.enc_offset[i]);
  };

  // Exact int64 scoring for one pair — the fallback for saturated/railed/
  // ineligible lanes and the entire path for the scalar dispatch tier.
  // Bit-identical to align_score(mode, ...) per pair.
  auto exact = [&](std::size_t i) -> std::int64_t {
    switch (mode) {
      case AlignMode::kLocal:
        return sw_score(profile.query(), db[i], scheme);
      case AlignMode::kGlobal:
        return nw_score_profile(profile, subject(i), scheme, scratch);
      default:
        return semiglobal_score_profile(profile, subject(i), scheme, scratch);
    }
  };

  switch (mode) {
    case AlignMode::kLocal:
    case AlignMode::kGlobal:
    case AlignMode::kSemiGlobal: {
      const auto [oe, ext] = gap_costs(scheme);
      const SimdTier tier = simd_tier();
      const lanes::Kernels* kern = nullptr;
      if (tier == SimdTier::kAvx2) {
        kern = &lanes::avx2_kernels();
      } else if (tier == SimdTier::kSse2) {
        kern = &lanes::portable_kernels();
      }
      if (kern == nullptr || !profile.lane_safe() || n == 0) {
        for (std::size_t i = 0; i < db.size(); ++i) {
          scores[i] = exact(i);
          m.cells += static_cast<std::uint64_t>(n) * db[i].size();
        }
        break;
      }

      // NW/semi-global boundary cells H(i,0)/H(0,t) reach -(oe + L*ext);
      // a lane is int16-eligible only when those are representable without
      // clamping. SW boundaries are 0, always eligible.
      auto lane_eligible = [&](std::size_t len) {
        if (mode == AlignMode::kLocal) return true;
        if (len == 0) return false;  // exact path is O(n), not worth a lane
        std::int64_t worst =
            oe + static_cast<std::int64_t>(std::max(n, len)) * ext;
        return worst < -static_cast<std::int64_t>(kFloor16);
      };

      // Pack lanes in length-sorted order so the 16 lanes of a batch finish
      // together instead of the longest subject dragging 15 idle lanes.
      // Results scatter back through the original index: output order (and
      // every value) is unchanged.
      auto& order = scratch.order;
      order.resize(db.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return db[a].size() > db[b].size();
                       });

      const auto oe16 = static_cast<std::int16_t>(oe);
      const auto ext16 = static_cast<std::int16_t>(ext);
      for (std::size_t base = 0; base < order.size(); base += kBatchLanes) {
        const std::size_t count = std::min(kBatchLanes, order.size() - base);
        lanes::LaneBatch batch;
        std::size_t lane_idx[kBatchLanes];
        std::size_t used = 0;
        for (std::size_t k = 0; k < count; ++k) {
          const std::size_t i = order[base + k];
          auto s = subject(i);
          m.cells += static_cast<std::uint64_t>(n) * s.size();
          if (!lane_eligible(s.size())) {
            scores[i] = exact(i);
            continue;
          }
          batch.seq[used] = s.data();
          batch.len[used] = s.size();
          batch.max_len = std::max(batch.max_len, s.size());
          lane_idx[used++] = i;
        }
        if (used == 0) continue;

        std::int16_t out[kBatchLanes];
        std::uint32_t railed = 0;
        switch (mode) {
          case AlignMode::kLocal:
            kern->sw(profile, batch, oe16, ext16, scratch, out);
            for (std::size_t k = 0; k < used; ++k) {
              if (out[k] >= kSat16) railed |= 1u << k;
            }
            break;
          case AlignMode::kGlobal:
            kern->nw(profile, batch, oe16, ext16, scratch, out, &railed);
            break;
          default:
            kern->sg(profile, batch, oe16, ext16, scratch, out, &railed);
            break;
        }
        for (std::size_t k = 0; k < used; ++k) {
          const std::size_t i = lane_idx[k];
          if ((railed >> k) & 1u) {
            // Score left the int16 domain: exact int64 re-run.
            m.saturations += 1;
            scores[i] = exact(i);
          } else {
            scores[i] = out[k];
          }
        }
      }
      break;
    }
    case AlignMode::kBanded: {
      for (std::size_t i = 0; i < db.size(); ++i) {
        AlignDiagnostics diag;
        scores[i] = align_score(AlignMode::kBanded, profile.query(), db[i],
                                scheme, band, &diag);
        m.cells += std::min(
            static_cast<std::uint64_t>(n) * db[i].size(),
            static_cast<std::uint64_t>(n) * (2 * diag.effective_band + 1));
      }
      break;
    }
    default:
      throw InputError("batch_align_scores: bad alignment mode");
  }
  return scores;
}

}  // namespace hdcs::bio
