#include "bio/align_batch.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"

namespace hdcs::bio {

void encode_residues(std::string_view seq, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(seq.size());
  for (char c : seq) {
    out.push_back(static_cast<std::uint8_t>(ScoringScheme::index_of(c)));
  }
}

QueryProfile::QueryProfile(std::string_view query, const ScoringScheme& scheme)
    : query_(query), n_(query.size()) {
  profile16_.assign(kProfileSymbols * n_, kFloor16);
  profile32_.assign(kProfileSymbols * n_, kFloor16);

  std::vector<std::uint8_t> enc;
  encode_residues(query, enc);

  // The lane kernel's no-overflow argument needs bounded per-cell steps:
  // kSat16 + |substitution| must fit int16, and kFloor16 minus one gap step
  // must not underflow it. Real matrices are tiny (<= 17), real gaps < 100.
  constexpr int kLaneSubLimit = 500;   // kSat16 + 500 < INT16_MAX
  constexpr int kLaneGapLimit = 4000;  // kFloor16 - 4000 > INT16_MIN
  const int oe = scheme.gap_open() + scheme.gap_extend();
  const int ext = scheme.gap_extend();
  if (oe > kLaneGapLimit || ext > kLaneGapLimit || oe < 0 || ext < 0) {
    lane_safe_ = false;
  }

  for (std::size_t sym = 0; sym < ScoringScheme::kAlphabetSize; ++sym) {
    std::int16_t* col16 = profile16_.data() + sym * n_;
    std::int32_t* col32 = profile32_.data() + sym * n_;
    for (std::size_t i = 0; i < n_; ++i) {
      int sc = scheme.score_indexed(sym, enc[i]);
      if (std::abs(sc) > kLaneSubLimit) lane_safe_ = false;
      col16[i] = static_cast<std::int16_t>(sc);
      col32[i] = sc;
    }
  }
  // kPadSymbol column stays kFloor16 (from the assign above).
}

namespace {

struct GapCosts {
  std::int64_t open_extend;
  std::int64_t extend;
};

GapCosts gap_costs(const ScoringScheme& s) {
  return {static_cast<std::int64_t>(s.gap_open()) + s.gap_extend(),
          static_cast<std::int64_t>(s.gap_extend())};
}

/// One lane batch: up to kBatchLanes encoded subjects advancing in lockstep.
/// Unused lanes have len == 0 and never contribute.
struct LaneBatch {
  const std::uint8_t* seq[kBatchLanes] = {};
  std::size_t len[kBatchLanes] = {};
  std::size_t max_len = 0;
};

/// Lane-parallel Smith–Waterman, int16. Writes each lane's running maximum
/// into best[]; a lane with best >= kSat16 saturated and must be re-run in
/// int64. Non-saturated lanes are exact (see header).
void sw_lanes16(const QueryProfile& p, const LaneBatch& batch, int oe, int ext,
                AlignScratch& sc, std::int16_t best[kBatchLanes]) {
  const std::size_t n = p.length();
  sc.h16.assign((n + 1) * kBatchLanes, 0);
  sc.e16.assign((n + 1) * kBatchLanes, kFloor16);
  std::int16_t* const h = sc.h16.data();
  std::int16_t* const e = sc.e16.data();

  alignas(64) std::int16_t f[kBatchLanes];
  alignas(64) std::int16_t hdiag[kBatchLanes];
  alignas(64) std::int16_t sub[kBatchLanes];
  alignas(64) std::int16_t bst[kBatchLanes] = {};
  const std::int16_t* col[kBatchLanes];
  const auto oe16 = static_cast<std::int16_t>(oe);
  const auto ext16 = static_cast<std::int16_t>(ext);

  for (std::size_t t = 0; t < batch.max_len; ++t) {
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      std::uint8_t symbol = t < batch.len[l] ? batch.seq[l][t] : kPadSymbol;
      col[l] = p.column16(symbol);
    }
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      f[l] = kFloor16;  // F(0, j) = -inf
      hdiag[l] = 0;     // H(0, j-1) = 0
    }
    for (std::size_t i = 1; i <= n; ++i) {
      const std::int16_t* const hup = h + (i - 1) * kBatchLanes;  // H(i-1, j)
      std::int16_t* const hrow = h + i * kBatchLanes;
      std::int16_t* const erow = e + i * kBatchLanes;
      for (std::size_t l = 0; l < kBatchLanes; ++l) sub[l] = col[l][i - 1];
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        // All arithmetic stays inside int16: H in [0, kSat16], E/F in
        // [kFloor16 - ext, kSat16], |sub| <= kLaneScoreLimit.
        auto fl = static_cast<std::int16_t>(std::max<std::int16_t>(
            static_cast<std::int16_t>(hup[l] - oe16),
            static_cast<std::int16_t>(f[l] - ext16)));
        std::int16_t old_h = hrow[l];  // H(i, j-1)
        auto el = static_cast<std::int16_t>(std::max<std::int16_t>(
            static_cast<std::int16_t>(old_h - oe16),
            static_cast<std::int16_t>(erow[l] - ext16)));
        auto hn = static_cast<std::int16_t>(hdiag[l] + sub[l]);
        hn = std::max(hn, el);
        hn = std::max(hn, fl);
        hn = std::max<std::int16_t>(hn, 0);
        hn = std::min(hn, kSat16);
        hdiag[l] = old_h;
        hrow[l] = hn;
        erow[l] = el;
        f[l] = fl;
        bst[l] = std::max(bst[l], hn);
      }
    }
  }
  for (std::size_t l = 0; l < kBatchLanes; ++l) best[l] = bst[l];
}

}  // namespace

// Transposed Gotoh, subject rows x query columns, so the profile column for
// the row's subject residue is walked contiguously. The optimum of global
// alignment is symmetric (substitution matrices are validated symmetric),
// so this equals nw_score(query, subject) exactly.
//
// Two ping-ponged H rows rather than one updated in place, and H(i, j-1)
// carried in a register across j: re-loading the value stored one iteration
// earlier puts a store-to-load forward on the serial E chain and costs ~2x.
std::int64_t nw_score_profile(const QueryProfile& p,
                              std::span<const std::uint8_t> subject,
                              const ScoringScheme& scheme,
                              AlignScratch& sc) {
  const auto [oe, ext] = gap_costs(scheme);
  const std::size_t n = p.length(), m = subject.size();
  sc.row_h.resize(n + 1);
  sc.row_h2.resize(n + 1);
  sc.row_f.resize(n + 1);
  std::int64_t* h_prev = sc.row_h.data();
  std::int64_t* h_cur = sc.row_h2.data();
  std::int64_t* const f = sc.row_f.data();

  h_prev[0] = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    h_prev[j] = -(oe + static_cast<std::int64_t>(j - 1) * ext);
    f[j] = kNegInf;
  }
  for (std::size_t i = 1; i <= m; ++i) {
    const std::int32_t* col = p.column32(subject[i - 1]);
    std::int64_t hc = -(oe + static_cast<std::int64_t>(i - 1) * ext);
    h_cur[0] = hc;
    std::int64_t e = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      e = std::max(hc - oe, e - ext);
      std::int64_t fj = std::max(h_prev[j] - oe, f[j] - ext);
      f[j] = fj;
      std::int64_t diag = h_prev[j - 1] + col[j - 1];
      hc = std::max({diag, e, fj});
      h_cur[j] = hc;
    }
    std::swap(h_prev, h_cur);
  }
  return h_prev[n];
}

// Transposed semi-global: query (columns) global, subject (rows) free at
// both ends — H(i, 0) = 0 models the free leading subject gap and the best
// over the last column models the free trailing one. Same optimisation
// problem as semiglobal_score(query, subject), hence the same value.
std::int64_t semiglobal_score_profile(const QueryProfile& p,
                                      std::span<const std::uint8_t> subject,
                                      const ScoringScheme& scheme,
                                      AlignScratch& sc) {
  const auto [oe, ext] = gap_costs(scheme);
  const std::size_t n = p.length(), m = subject.size();
  sc.row_h.resize(n + 1);
  sc.row_h2.resize(n + 1);
  sc.row_f.resize(n + 1);
  std::int64_t* h_prev = sc.row_h.data();
  std::int64_t* h_cur = sc.row_h2.data();
  std::int64_t* const f = sc.row_f.data();

  h_prev[0] = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    h_prev[j] = -(oe + static_cast<std::int64_t>(j - 1) * ext);
    f[j] = kNegInf;
  }
  std::int64_t best = h_prev[n];
  for (std::size_t i = 1; i <= m; ++i) {
    const std::int32_t* col = p.column32(subject[i - 1]);
    std::int64_t hc = 0;
    h_cur[0] = hc;
    std::int64_t e = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      e = std::max(hc - oe, e - ext);
      std::int64_t fj = std::max(h_prev[j] - oe, f[j] - ext);
      f[j] = fj;
      std::int64_t diag = h_prev[j - 1] + col[j - 1];
      hc = std::max({diag, e, fj});
      h_cur[j] = hc;
    }
    std::swap(h_prev, h_cur);
    best = std::max(best, h_prev[n]);
  }
  return best;
}

std::vector<std::int64_t> batch_align_scores(
    AlignMode mode, const QueryProfile& profile,
    std::span<const std::string_view> db, const ScoringScheme& scheme,
    std::size_t band, AlignScratch& scratch, BatchMetrics* metrics) {
  const std::size_t n = profile.length();
  std::vector<std::int64_t> scores(db.size());
  BatchMetrics local;
  BatchMetrics& m = metrics ? *metrics : local;

  // Encode every subject once, concatenated into scratch.
  scratch.enc.clear();
  scratch.enc_offset.assign(db.size() + 1, 0);
  for (std::size_t i = 0; i < db.size(); ++i) {
    for (char c : db[i]) {
      scratch.enc.push_back(
          static_cast<std::uint8_t>(ScoringScheme::index_of(c)));
    }
    scratch.enc_offset[i + 1] = scratch.enc.size();
  }
  auto subject = [&](std::size_t i) {
    return std::span<const std::uint8_t>(
        scratch.enc.data() + scratch.enc_offset[i],
        scratch.enc_offset[i + 1] - scratch.enc_offset[i]);
  };

  switch (mode) {
    case AlignMode::kLocal: {
      const bool lanes_ok = profile.lane_safe() && n > 0;
      for (std::size_t base = 0; base < db.size(); base += kBatchLanes) {
        const std::size_t count = std::min(kBatchLanes, db.size() - base);
        if (!lanes_ok) {
          for (std::size_t k = 0; k < count; ++k) {
            scores[base + k] = sw_score(profile.query(), db[base + k], scheme);
            m.cells += static_cast<std::uint64_t>(n) * db[base + k].size();
          }
          continue;
        }
        LaneBatch batch;
        for (std::size_t k = 0; k < count; ++k) {
          auto s = subject(base + k);
          batch.seq[k] = s.data();
          batch.len[k] = s.size();
          batch.max_len = std::max(batch.max_len, s.size());
          m.cells += static_cast<std::uint64_t>(n) * s.size();
        }
        std::int16_t best[kBatchLanes];
        sw_lanes16(profile, batch, scheme.gap_open() + scheme.gap_extend(),
                   scheme.gap_extend(), scratch, best);
        for (std::size_t k = 0; k < count; ++k) {
          if (best[k] >= kSat16) {
            // Score left the int16 domain: exact int64 re-run.
            m.saturations += 1;
            scores[base + k] = sw_score(profile.query(), db[base + k], scheme);
          } else {
            scores[base + k] = best[k];
          }
        }
      }
      break;
    }
    case AlignMode::kGlobal: {
      for (std::size_t i = 0; i < db.size(); ++i) {
        scores[i] = nw_score_profile(profile, subject(i), scheme, scratch);
        m.cells += static_cast<std::uint64_t>(n) * db[i].size();
      }
      break;
    }
    case AlignMode::kSemiGlobal: {
      for (std::size_t i = 0; i < db.size(); ++i) {
        scores[i] = semiglobal_score_profile(profile, subject(i), scheme,
                                             scratch);
        m.cells += static_cast<std::uint64_t>(n) * db[i].size();
      }
      break;
    }
    case AlignMode::kBanded: {
      for (std::size_t i = 0; i < db.size(); ++i) {
        AlignDiagnostics diag;
        scores[i] = align_score(AlignMode::kBanded, profile.query(), db[i],
                                scheme, band, &diag);
        m.cells += std::min(
            static_cast<std::uint64_t>(n) * db[i].size(),
            static_cast<std::uint64_t>(n) * (2 * diag.effective_band + 1));
      }
      break;
    }
    default:
      throw InputError("batch_align_scores: bad alignment mode");
  }
  return scores;
}

}  // namespace hdcs::bio
