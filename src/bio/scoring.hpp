#pragma once
// Substitution scoring schemes with affine gap penalties.
//
// A gap of length L costs  gap_open + L * gap_extend  (both stored
// positive; kernels subtract them). Built-ins: BLOSUM62 and PAM250 for
// protein, match/mismatch for DNA — the "scoring scheme" input of DSEARCH.

#include <array>
#include <cstdint>
#include <string>

#include "bio/sequence.hpp"

namespace hdcs::bio {

class ScoringScheme {
 public:
  static ScoringScheme blosum62(int gap_open = 11, int gap_extend = 1);
  static ScoringScheme pam250(int gap_open = 10, int gap_extend = 1);
  static ScoringScheme dna(int match = 5, int mismatch = -4, int gap_open = 10,
                           int gap_extend = 1);

  /// Config-driven lookup: "blosum62", "pam250", "dna". Throws InputError.
  static ScoringScheme from_name(const std::string& name, int gap_open = -1,
                                 int gap_extend = -1);

  /// Substitution score for two residues (upper-case ASCII).
  [[nodiscard]] int score(char a, char b) const {
    return matrix_[index(a)][index(b)];
  }

  /// Packed-alphabet size and residue -> index mapping, shared with the
  /// batch kernels (bio/align_batch.hpp) that pre-encode sequences once
  /// instead of calling score() per DP cell.
  static constexpr std::size_t kAlphabetSize = 27;  // 'A'..'Z' + other
  static std::size_t index_of(char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<std::size_t>(c - 'A')
                                  : kAlphabetSize - 1;
  }

  /// Substitution score by packed indices (both < kAlphabetSize).
  [[nodiscard]] int score_indexed(std::size_t a, std::size_t b) const {
    return matrix_[a][b];
  }

  [[nodiscard]] int gap_open() const { return gap_open_; }
  [[nodiscard]] int gap_extend() const { return gap_extend_; }
  [[nodiscard]] Alphabet alphabet() const { return alphabet_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  static constexpr std::size_t kSize = kAlphabetSize;
  static std::size_t index(char c) { return index_of(c); }
  /// Parse a whitespace table "letters\nrow per letter"; validates symmetry.
  static ScoringScheme from_table(const char* letters, const char* table,
                                  Alphabet alphabet, std::string name,
                                  int gap_open, int gap_extend);

  std::array<std::array<std::int16_t, kSize>, kSize> matrix_{};
  int gap_open_ = 0;
  int gap_extend_ = 0;
  Alphabet alphabet_ = Alphabet::kProtein;
  std::string name_;
};

}  // namespace hdcs::bio
