#pragma once
// Biological sequences: DNA and protein, with validation.
//
// Residues are stored as upper-case ASCII; alignment kernels index scoring
// matrices directly by character, so validation happens once at parse time
// rather than per DP cell.

#include <string>
#include <string_view>
#include <vector>

namespace hdcs::bio {

enum class Alphabet { kDna, kProtein };

/// Canonical residue sets ('-' and '*' are never stored in a Sequence).
inline constexpr std::string_view kDnaResidues = "ACGTUN";
inline constexpr std::string_view kProteinResidues = "ACDEFGHIKLMNPQRSTVWYBZX";

[[nodiscard]] bool is_valid_residue(char c, Alphabet alphabet);

/// Guess the alphabet from content: sequences that are >= 90% ACGTUN are
/// treated as DNA (the heuristic FASTA tools use).
[[nodiscard]] Alphabet guess_alphabet(std::string_view residues);

struct Sequence {
  std::string id;           // FASTA identifier (first word of header)
  std::string description;  // rest of the header line
  std::string residues;     // validated, upper-cased

  [[nodiscard]] std::size_t length() const { return residues.size(); }
};

/// Validate + upper-case; throws InputError naming the bad character.
std::string normalize_residues(std::string_view raw, Alphabet alphabet);

/// DNA helpers.
char complement(char base);
std::string reverse_complement(std::string_view dna);

/// Map A,C,G,T(,U) -> 0..3; N/other -> 4. Used by the phylo likelihood code.
int dna_index(char base);
/// Inverse of dna_index for 0..3.
char dna_base(int index);

}  // namespace hdcs::bio
