#pragma once
// Pairwise sequence alignment kernels.
//
// DSEARCH offers "one of the built-in search algorithms" (paper §3.1):
// Needleman–Wunsch global alignment [10], Smith–Waterman local alignment
// [14], plus two further exact kernels — semi-global (query embedded in a
// database sequence, the natural mode for database search) and a k-banded
// global alignment standing in for the subquadratic algorithm of [4]
// (see DESIGN.md, substitutions).
//
// All kernels use Gotoh's three-state recurrence for affine gaps
// (gap of length L costs open + L*extend). Score-only variants run in
// O(min) memory and are DSEARCH's hot path; traceback variants materialise
// the full DP matrices and return the aligned strings.

#include <cstdint>
#include <string>
#include <string_view>

#include "bio/scoring.hpp"

namespace hdcs::bio {

enum class AlignMode {
  kGlobal,      // Needleman–Wunsch
  kLocal,       // Smith–Waterman
  kSemiGlobal,  // query global, free gaps at subject ends
  kBanded,      // k-banded Needleman–Wunsch
};

/// Parse "global" | "local" | "semiglobal" | "banded" (config files).
AlignMode parse_align_mode(const std::string& name);
const char* to_string(AlignMode mode);

/// Score sentinel: effectively -infinity, safe to add penalties to.
inline constexpr std::int64_t kNegInf = INT64_MIN / 4;

struct AlignmentResult {
  std::int64_t score = 0;
  std::string aligned_a;  // with '-' for gaps
  std::string aligned_b;
  // Half-open residue ranges actually aligned (whole sequence for global).
  std::size_t a_begin = 0, a_end = 0;
  std::size_t b_begin = 0, b_end = 0;
};

// ---- score-only kernels (O(min(n,m)) rows of memory) ----

std::int64_t nw_score(std::string_view a, std::string_view b,
                      const ScoringScheme& s);
std::int64_t sw_score(std::string_view a, std::string_view b,
                      const ScoringScheme& s);
/// Query `a` aligned end-to-end; gaps before/after the match in `b` free.
std::int64_t semiglobal_score(std::string_view a, std::string_view b,
                              const ScoringScheme& s);
/// Global alignment restricted to |i - j·n/m| <= band. band must admit a
/// path (band >= |n-m| after diagonal adjustment) or InputError is thrown.
std::int64_t banded_nw_score(std::string_view a, std::string_view b,
                             const ScoringScheme& s, std::size_t band);

/// Side-channel facts about how a score was computed. Today this exists so
/// banded searches can't silently run with a different band than requested:
/// a band too narrow to bridge |n-m| is widened to diff+1 (and logged).
struct AlignDiagnostics {
  std::size_t effective_band = 0;  // band actually used (banded mode only)
  bool band_widened = false;       // requested band could not bridge |n-m|
};

/// Dispatch by mode (banded uses `band`). Pass `diag` to learn the
/// effective band; widening is WARN-logged either way.
std::int64_t align_score(AlignMode mode, std::string_view a, std::string_view b,
                         const ScoringScheme& s, std::size_t band = 0,
                         AlignDiagnostics* diag = nullptr);

// ---- traceback kernels (O(n·m) memory) ----

AlignmentResult nw_align(std::string_view a, std::string_view b,
                         const ScoringScheme& s);
AlignmentResult sw_align(std::string_view a, std::string_view b,
                         const ScoringScheme& s);

/// Abstract cost (DP cell updates) of scoring a against b — the currency
/// of WorkUnit::cost_ops.
inline double alignment_cost_ops(std::size_t len_a, std::size_t len_b) {
  return static_cast<double>(len_a) * static_cast<double>(len_b);
}

/// Percent identity of two aligned strings (same length, '-' gaps).
double percent_identity(std::string_view aligned_a, std::string_view aligned_b);

}  // namespace hdcs::bio
