#include "bio/sequence.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace hdcs::bio {

bool is_valid_residue(char c, Alphabet alphabet) {
  char u = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  std::string_view set =
      alphabet == Alphabet::kDna ? kDnaResidues : kProteinResidues;
  return set.find(u) != std::string_view::npos;
}

Alphabet guess_alphabet(std::string_view residues) {
  if (residues.empty()) return Alphabet::kDna;
  std::size_t dna_like = 0;
  for (char c : residues) {
    if (is_valid_residue(c, Alphabet::kDna)) ++dna_like;
  }
  return (10 * dna_like >= 9 * residues.size()) ? Alphabet::kDna
                                                : Alphabet::kProtein;
}

std::string normalize_residues(std::string_view raw, Alphabet alphabet) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    char u = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (!is_valid_residue(u, alphabet)) {
      throw InputError(std::string("invalid residue '") + c + "' for " +
                       (alphabet == Alphabet::kDna ? "DNA" : "protein") +
                       " sequence");
    }
    out.push_back(u == 'U' && alphabet == Alphabet::kDna ? 'T' : u);
  }
  return out;
}

char complement(char base) {
  switch (base) {
    case 'A': return 'T';
    case 'C': return 'G';
    case 'G': return 'C';
    case 'T': return 'A';
    case 'N': return 'N';
    default:
      throw InputError(std::string("cannot complement residue '") + base + "'");
  }
}

std::string reverse_complement(std::string_view dna) {
  std::string out;
  out.reserve(dna.size());
  for (auto it = dna.rbegin(); it != dna.rend(); ++it) out.push_back(complement(*it));
  return out;
}

int dna_index(char base) {
  switch (base) {
    case 'A': return 0;
    case 'C': return 1;
    case 'G': return 2;
    case 'T':
    case 'U': return 3;
    default: return 4;
  }
}

char dna_base(int index) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  if (index < 0 || index > 3) throw InputError("dna_base index out of range");
  return kBases[index];
}

}  // namespace hdcs::bio
