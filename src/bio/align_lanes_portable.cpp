// Portable fixed-width-lane kernels — the "sse2" dispatch tier. Plain C++
// over kBatchLanes-wide arrays with compile-time trip counts; the compiler
// auto-vectorizes the lane loops at whatever the baseline target ISA is
// (SSE2 on x86-64). The AVX2 tier (align_lanes_avx2.cpp) implements the
// identical contract with explicit intrinsics.
//
// Correctness of the int16 rails (see align_lanes.hpp and docs/KERNELS.md):
// H is clamped into [kFloor16, kSat16] every cell. Given lane_safe()
// (|sub| <= 500, 0 <= oe, ext <= 4000) no intermediate leaves int16:
//   H - oe        >= kFloor16 - 4000           = -20000
//   E, F          >= kFloor16 - 4000 (max with H - oe pulls them back)
//   E - ext       >= kFloor16 - 8000           = -24000
//   Hdiag + sub   >= kFloor16 + kFloor16       = -32000  (pad column)
//   Hdiag + sub   <= kSat16 + 500              =  32500
// A clamped E or F can only corrupt H by dragging it onto the floor rail,
// and the kernels track min/max of every live H cell, so any lane whose
// state touched a rail is flagged and re-run exactly by the caller.

#include "bio/align_lanes.hpp"

namespace hdcs::bio::lanes {

namespace {

/// Lane-parallel Smith–Waterman, int16. Writes each lane's running maximum
/// into best[]; a lane with best >= kSat16 saturated and must be re-run in
/// int64. Non-saturated lanes are exact: H >= 0 always, so the floor rail
/// is unreachable and the only clamp is the kSat16 ceiling, which the
/// running maximum witnesses.
void sw_lanes16_portable(const QueryProfile& p, const LaneBatch& batch,
                         std::int16_t oe16, std::int16_t ext16,
                         AlignScratch& sc, std::int16_t best[kBatchLanes]) {
  const std::size_t n = p.length();
  sc.h16.assign((n + 1) * kBatchLanes, 0);
  sc.e16.assign((n + 1) * kBatchLanes, kFloor16);
  std::int16_t* const h = sc.h16.data();
  std::int16_t* const e = sc.e16.data();

  alignas(64) std::int16_t f[kBatchLanes];
  alignas(64) std::int16_t hdiag[kBatchLanes];
  alignas(64) std::int16_t sub[kBatchLanes];
  alignas(64) std::int16_t bst[kBatchLanes] = {};
  const std::int16_t* col[kBatchLanes];

  for (std::size_t t = 0; t < batch.max_len; ++t) {
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      std::uint8_t symbol = t < batch.len[l] ? batch.seq[l][t] : kPadSymbol;
      col[l] = p.column16(symbol);
    }
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      f[l] = kFloor16;  // F(0, j) = -inf
      hdiag[l] = 0;     // H(0, j-1) = 0
    }
    for (std::size_t i = 1; i <= n; ++i) {
      const std::int16_t* const hup = h + (i - 1) * kBatchLanes;  // H(i-1, j)
      std::int16_t* const hrow = h + i * kBatchLanes;
      std::int16_t* const erow = e + i * kBatchLanes;
      for (std::size_t l = 0; l < kBatchLanes; ++l) sub[l] = col[l][i - 1];
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        auto fl = static_cast<std::int16_t>(std::max<std::int16_t>(
            static_cast<std::int16_t>(hup[l] - oe16),
            static_cast<std::int16_t>(f[l] - ext16)));
        std::int16_t old_h = hrow[l];  // H(i, j-1)
        auto el = static_cast<std::int16_t>(std::max<std::int16_t>(
            static_cast<std::int16_t>(old_h - oe16),
            static_cast<std::int16_t>(erow[l] - ext16)));
        auto hn = static_cast<std::int16_t>(hdiag[l] + sub[l]);
        hn = std::max(hn, el);
        hn = std::max(hn, fl);
        hn = std::max<std::int16_t>(hn, 0);
        hn = std::min(hn, kSat16);
        hdiag[l] = old_h;
        hrow[l] = hn;
        erow[l] = el;
        f[l] = fl;
        bst[l] = std::max(bst[l], hn);
      }
    }
  }
  for (std::size_t l = 0; l < kBatchLanes; ++l) best[l] = bst[l];
}

/// Shared NW / semi-global lane kernel. Orientation matches the exact
/// profile kernels: column t holds H(query position i, subject position
/// t+1); F gaps consume the query (serial in i, per column), E gaps consume
/// the subject (carried across columns per i).
///
/// kSemi == false (NW): H(0, t) = -(oe + (t-1)ext), answer H(n, len).
/// kSemi == true  (SG): H(0, t) = 0,  answer max over t <= len of H(n, t).
/// Both share the penalized init column H(i, 0) = -(oe + (i-1)ext).
template <bool kSemi>
void global_lanes16(const QueryProfile& p, const LaneBatch& batch,
                    std::int16_t oe16, std::int16_t ext16, AlignScratch& sc,
                    std::int16_t out[kBatchLanes], std::uint32_t* railed) {
  const std::size_t n = p.length();
  sc.h16.resize((n + 1) * kBatchLanes);
  sc.e16.resize((n + 1) * kBatchLanes);
  std::int16_t* const h = sc.h16.data();
  std::int16_t* const e = sc.e16.data();

  for (std::size_t i = 0; i <= n; ++i) {
    // Caller prechecked oe + n*ext < -kFloor16, so this cast is exact.
    auto hv = static_cast<std::int16_t>(
        i == 0 ? 0
               : -(oe16 + static_cast<std::int32_t>(i - 1) * ext16));
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      h[i * kBatchLanes + l] = hv;
      e[i * kBatchLanes + l] = kFloor16;  // E(i, 0) = -inf
    }
  }

  alignas(64) std::int16_t f[kBatchLanes];
  alignas(64) std::int16_t hdiag[kBatchLanes];
  alignas(64) std::int16_t sub[kBatchLanes];
  alignas(64) std::int16_t amask[kBatchLanes];
  alignas(64) std::int16_t minacc[kBatchLanes] = {};
  alignas(64) std::int16_t maxacc[kBatchLanes] = {};
  alignas(64) std::int16_t best[kBatchLanes];
  const std::int16_t* col[kBatchLanes];

  // Semi-global answers include the t = 0 term H(n, 0) (subject fully
  // skipped); NW answers are captured when a lane reaches its length.
  for (std::size_t l = 0; l < kBatchLanes; ++l) {
    best[l] = kSemi ? h[n * kBatchLanes + l] : 0;
  }

  for (std::size_t t = 0; t < batch.max_len; ++t) {
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      std::uint8_t symbol = t < batch.len[l] ? batch.seq[l][t] : kPadSymbol;
      col[l] = p.column16(symbol);
      amask[l] = t < batch.len[l] ? static_cast<std::int16_t>(-1) : 0;
    }
    // Boundary row 0 for this column: H(0, t+1). Bounded by the longest
    // lane's precheck, so the int16 cast is exact.
    auto h0 = static_cast<std::int16_t>(
        kSemi ? 0 : -(oe16 + static_cast<std::int32_t>(t) * ext16));
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      f[l] = kFloor16;               // F(0, t+1) = -inf
      hdiag[l] = h[l];               // H(0, t)
      h[l] = h0;
    }
    for (std::size_t i = 1; i <= n; ++i) {
      const std::int16_t* const hup = h + (i - 1) * kBatchLanes;
      std::int16_t* const hrow = h + i * kBatchLanes;
      std::int16_t* const erow = e + i * kBatchLanes;
      for (std::size_t l = 0; l < kBatchLanes; ++l) sub[l] = col[l][i - 1];
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        auto fl = static_cast<std::int16_t>(std::max<std::int16_t>(
            static_cast<std::int16_t>(hup[l] - oe16),
            static_cast<std::int16_t>(f[l] - ext16)));
        std::int16_t old_h = hrow[l];  // H(i, t)
        auto el = static_cast<std::int16_t>(std::max<std::int16_t>(
            static_cast<std::int16_t>(old_h - oe16),
            static_cast<std::int16_t>(erow[l] - ext16)));
        auto hn = static_cast<std::int16_t>(hdiag[l] + sub[l]);
        hn = std::max(hn, el);
        hn = std::max(hn, fl);
        hn = std::max(hn, kFloor16);
        hn = std::min(hn, kSat16);
        hdiag[l] = old_h;
        hrow[l] = hn;
        erow[l] = el;
        f[l] = fl;
        // Rail witness, live lanes only (pad columns clamp by design).
        auto hm = static_cast<std::int16_t>(hn & amask[l]);
        minacc[l] = std::min(minacc[l], hm);
        maxacc[l] = std::max(maxacc[l], hm);
      }
    }
    if constexpr (kSemi) {
      const std::int16_t* const last = h + n * kBatchLanes;
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        auto v = static_cast<std::int16_t>((last[l] & amask[l]) |
                                           (kFloor16 & ~amask[l]));
        best[l] = std::max(best[l], v);
      }
    } else {
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        if (batch.len[l] == t + 1) best[l] = h[n * kBatchLanes + l];
      }
    }
  }

  std::uint32_t r = 0;
  for (std::size_t l = 0; l < kBatchLanes; ++l) {
    if (minacc[l] <= kFloor16 || maxacc[l] >= kSat16) r |= 1u << l;
    out[l] = best[l];
  }
  *railed = r;
}

void nw_lanes16_portable(const QueryProfile& p, const LaneBatch& b,
                         std::int16_t oe, std::int16_t ext, AlignScratch& sc,
                         std::int16_t out[kBatchLanes], std::uint32_t* railed) {
  global_lanes16<false>(p, b, oe, ext, sc, out, railed);
}

void sg_lanes16_portable(const QueryProfile& p, const LaneBatch& b,
                         std::int16_t oe, std::int16_t ext, AlignScratch& sc,
                         std::int16_t out[kBatchLanes], std::uint32_t* railed) {
  global_lanes16<true>(p, b, oe, ext, sc, out, railed);
}

}  // namespace

const Kernels& portable_kernels() {
  static const Kernels k{&sw_lanes16_portable, &nw_lanes16_portable,
                         &sg_lanes16_portable};
  return k;
}

}  // namespace hdcs::bio::lanes
