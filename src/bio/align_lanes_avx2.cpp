// AVX2 tier of the lane kernels: the same contract as
// align_lanes_portable.cpp, written with explicit _mm256 intrinsics —
// kBatchLanes (16) int16 lanes are exactly one 256-bit register, so every
// lane loop of the portable kernel collapses to a handful of instructions.
//
// This translation unit is compiled with -mavx2 (see src/bio/CMakeLists.txt)
// and nothing else: no -mfma, so no multiply-add contraction, and the
// runtime dispatch (util/simd.hpp) only selects this table when cpuid
// reports AVX2, so the intrinsics never execute on older hardware. When the
// toolchain cannot target AVX2 at all (non-x86 builds), the table forwards
// to the portable kernels; dispatch would not pick it there anyway.
//
// The per-cell profile gather (sub[l] = col[l][i-1]) stays scalar: AVX2 has
// no 16-bit gather, and 16 L1-resident loads keep pace with the arithmetic.

#include "bio/align_lanes.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace hdcs::bio::lanes {

namespace {

inline __m256i load(const std::int16_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void store(std::int16_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

void sw_lanes16_avx2(const QueryProfile& p, const LaneBatch& batch,
                     std::int16_t oe16, std::int16_t ext16, AlignScratch& sc,
                     std::int16_t best[kBatchLanes]) {
  const std::size_t n = p.length();
  sc.h16.assign((n + 1) * kBatchLanes, 0);
  sc.e16.assign((n + 1) * kBatchLanes, kFloor16);
  std::int16_t* const h = sc.h16.data();
  std::int16_t* const e = sc.e16.data();

  const __m256i voe = _mm256_set1_epi16(oe16);
  const __m256i vext = _mm256_set1_epi16(ext16);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vsat = _mm256_set1_epi16(kSat16);
  __m256i vbst = vzero;

  alignas(32) std::int16_t sub[kBatchLanes];
  const std::int16_t* col[kBatchLanes];

  for (std::size_t t = 0; t < batch.max_len; ++t) {
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      std::uint8_t symbol = t < batch.len[l] ? batch.seq[l][t] : kPadSymbol;
      col[l] = p.column16(symbol);
    }
    __m256i vf = _mm256_set1_epi16(kFloor16);  // F(0, j) = -inf
    __m256i vhdiag = vzero;                    // H(0, j-1) = 0
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t l = 0; l < kBatchLanes; ++l) sub[l] = col[l][i - 1];
      const __m256i vsub = load(sub);
      const __m256i vhup = load(h + (i - 1) * kBatchLanes);  // H(i-1, j)
      vf = _mm256_max_epi16(_mm256_sub_epi16(vhup, voe),
                            _mm256_sub_epi16(vf, vext));
      const __m256i vold = load(h + i * kBatchLanes);  // H(i, j-1)
      const __m256i ve =
          _mm256_max_epi16(_mm256_sub_epi16(vold, voe),
                           _mm256_sub_epi16(load(e + i * kBatchLanes), vext));
      __m256i vhn = _mm256_add_epi16(vhdiag, vsub);
      vhn = _mm256_max_epi16(vhn, ve);
      vhn = _mm256_max_epi16(vhn, vf);
      vhn = _mm256_max_epi16(vhn, vzero);
      vhn = _mm256_min_epi16(vhn, vsat);
      vhdiag = vold;
      store(h + i * kBatchLanes, vhn);
      store(e + i * kBatchLanes, ve);
      vbst = _mm256_max_epi16(vbst, vhn);
    }
  }
  store(best, vbst);
}

template <bool kSemi>
void global_lanes16_avx2(const QueryProfile& p, const LaneBatch& batch,
                         std::int16_t oe16, std::int16_t ext16,
                         AlignScratch& sc, std::int16_t out[kBatchLanes],
                         std::uint32_t* railed) {
  const std::size_t n = p.length();
  sc.h16.resize((n + 1) * kBatchLanes);
  sc.e16.resize((n + 1) * kBatchLanes);
  std::int16_t* const h = sc.h16.data();
  std::int16_t* const e = sc.e16.data();

  const __m256i vfloor = _mm256_set1_epi16(kFloor16);
  for (std::size_t i = 0; i <= n; ++i) {
    auto hv = static_cast<std::int16_t>(
        i == 0 ? 0 : -(oe16 + static_cast<std::int32_t>(i - 1) * ext16));
    store(h + i * kBatchLanes, _mm256_set1_epi16(hv));
    store(e + i * kBatchLanes, vfloor);  // E(i, 0) = -inf
  }

  const __m256i voe = _mm256_set1_epi16(oe16);
  const __m256i vext = _mm256_set1_epi16(ext16);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vsat = _mm256_set1_epi16(kSat16);
  __m256i vminacc = vzero;
  __m256i vmaxacc = vzero;
  __m256i vbest = kSemi ? load(h + n * kBatchLanes) : vzero;
  if constexpr (!kSemi) store(out, vzero);  // lanes with len 0 stay 0

  alignas(32) std::int16_t sub[kBatchLanes];
  alignas(32) std::int16_t amask[kBatchLanes];
  const std::int16_t* col[kBatchLanes];

  for (std::size_t t = 0; t < batch.max_len; ++t) {
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      std::uint8_t symbol = t < batch.len[l] ? batch.seq[l][t] : kPadSymbol;
      col[l] = p.column16(symbol);
      amask[l] = t < batch.len[l] ? static_cast<std::int16_t>(-1) : 0;
    }
    const __m256i vamask = load(amask);
    auto h0 = static_cast<std::int16_t>(
        kSemi ? 0 : -(oe16 + static_cast<std::int32_t>(t) * ext16));
    __m256i vf = vfloor;       // F(0, t+1) = -inf
    __m256i vhdiag = load(h);  // H(0, t)
    store(h, _mm256_set1_epi16(h0));
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t l = 0; l < kBatchLanes; ++l) sub[l] = col[l][i - 1];
      const __m256i vsub = load(sub);
      const __m256i vhup = load(h + (i - 1) * kBatchLanes);
      vf = _mm256_max_epi16(_mm256_sub_epi16(vhup, voe),
                            _mm256_sub_epi16(vf, vext));
      const __m256i vold = load(h + i * kBatchLanes);  // H(i, t)
      const __m256i ve =
          _mm256_max_epi16(_mm256_sub_epi16(vold, voe),
                           _mm256_sub_epi16(load(e + i * kBatchLanes), vext));
      __m256i vhn = _mm256_add_epi16(vhdiag, vsub);
      vhn = _mm256_max_epi16(vhn, ve);
      vhn = _mm256_max_epi16(vhn, vf);
      vhn = _mm256_max_epi16(vhn, vfloor);
      vhn = _mm256_min_epi16(vhn, vsat);
      vhdiag = vold;
      store(h + i * kBatchLanes, vhn);
      store(e + i * kBatchLanes, ve);
      // Rail witness over live lanes (dead lanes mask to 0, never a rail).
      const __m256i vhm = _mm256_and_si256(vhn, vamask);
      vminacc = _mm256_min_epi16(vminacc, vhm);
      vmaxacc = _mm256_max_epi16(vmaxacc, vhm);
    }
    if constexpr (kSemi) {
      const __m256i vlast = load(h + n * kBatchLanes);
      vbest = _mm256_max_epi16(vbest,
                               _mm256_blendv_epi8(vfloor, vlast, vamask));
    } else {
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        if (batch.len[l] == t + 1) out[l] = h[n * kBatchLanes + l];
      }
    }
  }
  if constexpr (kSemi) store(out, vbest);

  const __m256i vlow =
      _mm256_cmpgt_epi16(_mm256_set1_epi16(kFloor16 + 1), vminacc);
  const __m256i vhigh =
      _mm256_cmpgt_epi16(vmaxacc, _mm256_set1_epi16(kSat16 - 1));
  const auto bytes = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_or_si256(vlow, vhigh)));
  std::uint32_t r = 0;
  for (std::size_t l = 0; l < kBatchLanes; ++l) {
    if ((bytes >> (2 * l)) & 1u) r |= 1u << l;
  }
  *railed = r;
}

void nw_lanes16_avx2(const QueryProfile& p, const LaneBatch& b,
                     std::int16_t oe, std::int16_t ext, AlignScratch& sc,
                     std::int16_t out[kBatchLanes], std::uint32_t* railed) {
  global_lanes16_avx2<false>(p, b, oe, ext, sc, out, railed);
}

void sg_lanes16_avx2(const QueryProfile& p, const LaneBatch& b,
                     std::int16_t oe, std::int16_t ext, AlignScratch& sc,
                     std::int16_t out[kBatchLanes], std::uint32_t* railed) {
  global_lanes16_avx2<true>(p, b, oe, ext, sc, out, railed);
}

}  // namespace

const Kernels& avx2_kernels() {
  static const Kernels k{&sw_lanes16_avx2, &nw_lanes16_avx2, &sg_lanes16_avx2};
  return k;
}

}  // namespace hdcs::bio::lanes

#else  // !defined(__AVX2__)

namespace hdcs::bio::lanes {

// Built without AVX2 support (non-x86 target or ancient toolchain): the
// dispatch never selects this tier on such hosts, but keep the table well
// defined by forwarding to the portable kernels.
const Kernels& avx2_kernels() { return portable_kernels(); }

}  // namespace hdcs::bio::lanes

#endif
