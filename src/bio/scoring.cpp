#include "bio/scoring.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hdcs::bio {

namespace {
// Standard BLOSUM62 (NCBI), residue order on the first line.
constexpr const char* kBlosum62Letters = "ARNDCQEGHILKMFPSTWYVBZX";
constexpr const char* kBlosum62 = R"( 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1
-2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1
-1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1
 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1)";

// Standard PAM250 (Dayhoff MDM78).
constexpr const char* kPam250Letters = "ARNDCQEGHILKMFPSTWYVBZX";
constexpr const char* kPam250 = R"( 2 -2  0  0 -2  0  0  1 -1 -1 -2 -1 -1 -3  1  1  1 -6 -3  0  0  0  0
-2  6  0 -1 -4  1 -1 -3  2 -2 -3  3  0 -4  0  0 -1  2 -4 -2 -1  0 -1
 0  0  2  2 -4  1  1  0  2 -2 -3  1 -2 -3  0  1  0 -4 -2 -2  2  1  0
 0 -1  2  4 -5  2  3  1  1 -2 -4  0 -3 -6 -1  0  0 -7 -4 -2  3  3 -1
-2 -4 -4 -5 12 -5 -5 -3 -3 -2 -6 -5 -5 -4 -3  0 -2 -8  0 -2 -4 -5 -3
 0  1  1  2 -5  4  2 -1  3 -2 -2  1 -1 -5  0 -1 -1 -5 -4 -2  1  3 -1
 0 -1  1  3 -5  2  4  0  1 -2 -3  0 -2 -5 -1  0  0 -7 -4 -2  3  3 -1
 1 -3  0  1 -3 -1  0  5 -2 -3 -4 -2 -3 -5  0  1  0 -7 -5 -1  0  0 -1
-1  2  2  1 -3  3  1 -2  6 -2 -2  0 -2 -2  0 -1 -1 -3  0 -2  1  2 -1
-1 -2 -2 -2 -2 -2 -2 -3 -2  5  2 -2  2  1 -2 -1  0 -5 -1  4 -2 -2 -1
-2 -3 -3 -4 -6 -2 -3 -4 -2  2  6 -3  4  2 -3 -3 -2 -2 -1  2 -3 -3 -1
-1  3  1  0 -5  1  0 -2  0 -2 -3  5  0 -5 -1  0  0 -3 -4 -2  1  0 -1
-1  0 -2 -3 -5 -1 -2 -3 -2  2  4  0  6  0 -2 -2 -1 -4 -2  2 -2 -2 -1
-3 -4 -3 -6 -4 -5 -5 -5 -2  1  2 -5  0  9 -5 -3 -3  0  7 -1 -4 -5 -2
 1  0  0 -1 -3  0 -1  0  0 -2 -3 -1 -2 -5  6  1  0 -6 -5 -1 -1  0 -1
 1  0  1  0  0 -1  0  1 -1 -1 -3  0 -2 -3  1  2  1 -2 -3 -1  0  0  0
 1 -1  0  0 -2 -1  0  0 -1  0 -2  0 -1 -3  0  1  3 -5 -3  0  0 -1  0
-6  2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4  0 -6 -2 -5 17  0 -6 -5 -6 -4
-3 -4 -2 -4  0 -4 -4 -5  0 -1 -1 -4 -2  7 -5 -3 -3  0 10 -2 -3 -4 -2
 0 -2 -2 -2 -2 -2 -2 -1 -2  4  2 -2  2 -1 -1 -1  0 -6 -2  4 -2 -2 -1
 0 -1  2  3 -4  1  3  0  1 -2 -3  1 -2 -4 -1  0  0 -5 -3 -2  3  2 -1
 0  0  1  3 -5  3  3  0  2 -2 -3  0 -2 -5  0  0 -1 -6 -4 -2  2  3 -1
 0 -1  0 -1 -3 -1 -1 -1 -1 -1 -1 -1 -1 -2 -1  0  0 -4 -2 -1 -1 -1 -1)";
}  // namespace

ScoringScheme ScoringScheme::from_table(const char* letters, const char* table,
                                        Alphabet alphabet, std::string name,
                                        int gap_open, int gap_extend) {
  ScoringScheme s;
  s.alphabet_ = alphabet;
  s.name_ = std::move(name);
  s.gap_open_ = gap_open;
  s.gap_extend_ = gap_extend;
  if (gap_open < 0 || gap_extend < 0) {
    throw InputError("gap penalties must be non-negative (costs)");
  }

  std::string_view order(letters);
  std::istringstream in(table);
  std::vector<std::vector<int>> rows;
  std::string line;
  while (std::getline(in, line)) {
    auto fields = split_ws(line);
    if (fields.empty()) continue;
    std::vector<int> row;
    row.reserve(fields.size());
    for (const auto& f : fields) row.push_back(static_cast<int>(parse_i64(f)));
    rows.push_back(std::move(row));
  }
  if (rows.size() != order.size()) {
    throw Error("scoring table '" + s.name_ + "': row count mismatch");
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != order.size()) {
      throw Error("scoring table '" + s.name_ + "': row " + std::to_string(i) +
                  " width mismatch");
    }
  }
  // Substitution matrices are symmetric; a failed check means a data typo.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < rows.size(); ++j) {
      if (rows[i][j] != rows[j][i]) {
        throw Error("scoring table '" + s.name_ + "' not symmetric at (" +
                    std::string(1, order[i]) + "," + std::string(1, order[j]) + ")");
      }
    }
  }
  // Unlisted characters score as the worst substitution in the table.
  int worst = 0;
  for (const auto& row : rows) {
    for (int v : row) worst = std::min(worst, v);
  }
  for (auto& row : s.matrix_) row.fill(static_cast<std::int16_t>(worst));
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = 0; j < order.size(); ++j) {
      s.matrix_[index(order[i])][index(order[j])] =
          static_cast<std::int16_t>(rows[i][j]);
    }
  }
  return s;
}

ScoringScheme ScoringScheme::blosum62(int gap_open, int gap_extend) {
  return from_table(kBlosum62Letters, kBlosum62, Alphabet::kProtein, "blosum62",
                    gap_open, gap_extend);
}

ScoringScheme ScoringScheme::pam250(int gap_open, int gap_extend) {
  return from_table(kPam250Letters, kPam250, Alphabet::kProtein, "pam250",
                    gap_open, gap_extend);
}

ScoringScheme ScoringScheme::dna(int match, int mismatch, int gap_open,
                                 int gap_extend) {
  ScoringScheme s;
  s.alphabet_ = Alphabet::kDna;
  s.name_ = "dna";
  s.gap_open_ = gap_open;
  s.gap_extend_ = gap_extend;
  if (gap_open < 0 || gap_extend < 0) {
    throw InputError("gap penalties must be non-negative (costs)");
  }
  for (auto& row : s.matrix_) row.fill(static_cast<std::int16_t>(mismatch));
  for (char c : std::string_view("ACGT")) {
    s.matrix_[index(c)][index(c)] = static_cast<std::int16_t>(match);
  }
  // N matches nothing and mismatches nothing.
  for (char c : std::string_view("ACGTN")) {
    s.matrix_[index('N')][index(c)] = 0;
    s.matrix_[index(c)][index('N')] = 0;
  }
  return s;
}

ScoringScheme ScoringScheme::from_name(const std::string& name, int gap_open,
                                       int gap_extend) {
  std::string n = to_lower(name);
  if (n == "blosum62") {
    return blosum62(gap_open < 0 ? 11 : gap_open, gap_extend < 0 ? 1 : gap_extend);
  }
  if (n == "pam250") {
    return pam250(gap_open < 0 ? 10 : gap_open, gap_extend < 0 ? 1 : gap_extend);
  }
  if (n == "dna") {
    return dna(5, -4, gap_open < 0 ? 10 : gap_open, gap_extend < 0 ? 1 : gap_extend);
  }
  throw InputError("unknown scoring scheme: " + name);
}

}  // namespace hdcs::bio
