#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/error.hpp"

namespace hdcs {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

long long parse_i64(std::string_view s) {
  auto t = trim(s);
  long long v = 0;
  auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec != std::errc() || ptr != t.data() + t.size()) {
    throw InputError("not an integer: '" + std::string(s) + "'");
  }
  return v;
}

double parse_f64(std::string_view s) {
  auto t = trim(s);
  double v = 0;
  auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec != std::errc() || ptr != t.data() + t.size()) {
    throw InputError("not a number: '" + std::string(s) + "'");
  }
  return v;
}

bool parse_bool(std::string_view s) {
  auto t = trim(s);
  if (iequals(t, "true") || iequals(t, "yes") || iequals(t, "on") || t == "1") return true;
  if (iequals(t, "false") || iequals(t, "no") || iequals(t, "off") || t == "0") return false;
  throw InputError("not a boolean: '" + std::string(s) + "'");
}

std::string format_f64(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace hdcs
