#pragma once
// Runtime SIMD dispatch: one tier selected at startup, every vectorized
// kernel (bio lane kernels, phylo partials kernels) branches on it once per
// batch, never per cell. Three tiers:
//
//   kScalar  exact reference paths, no lane kernels at all. Ground truth
//            for the equivalence tests and the degraded-hardware escape
//            hatch (HDCS_SIMD=scalar).
//   kSse2    portable fixed-width-lane kernels compiled at the baseline
//            target ISA (SSE2 on x86-64; whatever the baseline vector ISA
//            is elsewhere). Always available.
//   kAvx2    hand-written AVX2 intrinsics in dedicated -mavx2 translation
//            units; selected only when cpuid reports AVX2.
//
// Selection order: HDCS_SIMD=scalar|sse2|avx2 if set (clamped down to what
// the hardware supports, with a warning), else the highest detected tier.
// The choice is cached after the first query; set_simd_tier()/
// ScopedSimdTier exist so tests and benchmarks can pin a tier without
// re-exec'ing under a different environment.
//
// Every tier produces bit-identical results: the alignment kernels are
// exact-or-fallback (int16 saturation reruns through int64), and the
// likelihood kernels preserve the scalar summation order and never use
// FMA contraction (docs/KERNELS.md).

#include <string_view>

namespace hdcs {

enum class SimdTier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// The tier every dispatching kernel uses (env override applied, cached).
SimdTier simd_tier();

/// Highest tier the hardware supports, ignoring the override.
SimdTier simd_tier_detected();

inline bool simd_tier_available(SimdTier t) {
  return static_cast<int>(t) <= static_cast<int>(simd_tier_detected());
}

/// Pin the tier at runtime (clamped to the detected ceiling). Not intended
/// for use while kernels are running on other threads.
void set_simd_tier(SimdTier t);

const char* to_string(SimdTier t);

/// Parse "scalar"/"sse2"/"avx2" (case-insensitive). False on junk.
bool parse_simd_tier(std::string_view text, SimdTier* out);

/// RAII tier pin for tests/benchmarks; restores the previous tier.
class ScopedSimdTier {
 public:
  explicit ScopedSimdTier(SimdTier t) : prev_(simd_tier()) { set_simd_tier(t); }
  ~ScopedSimdTier() { set_simd_tier(prev_); }
  ScopedSimdTier(const ScopedSimdTier&) = delete;
  ScopedSimdTier& operator=(const ScopedSimdTier&) = delete;

 private:
  SimdTier prev_;
};

}  // namespace hdcs
