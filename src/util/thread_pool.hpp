#pragma once
// Fixed-size thread pool.
//
// The TCP client uses one worker thread per local core so a single donor
// process can contribute several "virtual donors" (matching the paper's
// dual-CPU cluster nodes). Also used by tests to run server+clients locally.

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/blocking_queue.hpp"
#include "util/error.hpp"

namespace hdcs {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns false if the pool is shutting down.
  bool submit(std::function<void()> task);

  /// Enqueue and get a future for the result.
  template <typename F>
  auto submit_with_result(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    if (!submit([task] { (*task)(); })) {
      throw Error("ThreadPool: submit after shutdown");
    }
    return fut;
  }

  /// Stop accepting work, run what is queued, join all threads.
  void shutdown();

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

 private:
  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
};

}  // namespace hdcs
