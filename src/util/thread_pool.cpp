#include "util/thread_pool.hpp"

#include "util/error.hpp"

namespace hdcs {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] {
      while (auto task = tasks_.pop()) {
        (*task)();
      }
    });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  return tasks_.push(std::move(task));
}

void ThreadPool::shutdown() {
  tasks_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace hdcs
