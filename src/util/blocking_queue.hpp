#pragma once
// Bounded MPMC blocking queue with close() semantics.
//
// Used between the server's connection handlers and its scheduler thread,
// and inside the thread pool. close() wakes all waiters: producers get
// `false` from push, consumers drain the remaining items then get nullopt.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace hdcs {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity = SIZE_MAX) : capacity_(capacity) {}

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool try_push(T item) {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace hdcs
