#include "util/config.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace hdcs {

Config Config::parse(std::string_view text) {
  Config cfg;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = trim(text.substr(start, end - start));
    ++line_no;
    start = end + 1;
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw InputError("config line " + std::to_string(line_no) +
                       ": expected 'key = value', got '" + std::string(line) + "'");
    }
    std::string_view key = trim(line.substr(0, eq));
    std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw InputError("config line " + std::to_string(line_no) + ": empty key");
    }
    cfg.set(key, value);
    if (end == text.size()) break;
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open config file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void Config::set(std::string_view key, std::string_view value) {
  values_[to_lower(key)] = std::string(value);
}

bool Config::has(std::string_view key) const {
  return values_.count(to_lower(key)) != 0;
}

std::string Config::get_str(std::string_view key) const {
  auto it = values_.find(to_lower(key));
  if (it == values_.end()) {
    throw InputError("missing required config key: " + std::string(key));
  }
  return it->second;
}

long long Config::get_i64(std::string_view key) const {
  try {
    return parse_i64(get_str(key));
  } catch (const InputError& e) {
    throw InputError("config key '" + std::string(key) + "': " + e.what());
  }
}

double Config::get_f64(std::string_view key) const {
  try {
    return parse_f64(get_str(key));
  } catch (const InputError& e) {
    throw InputError("config key '" + std::string(key) + "': " + e.what());
  }
}

bool Config::get_bool(std::string_view key) const {
  try {
    return parse_bool(get_str(key));
  } catch (const InputError& e) {
    throw InputError("config key '" + std::string(key) + "': " + e.what());
  }
}

std::string Config::get_str(std::string_view key, std::string_view def) const {
  return has(key) ? get_str(key) : std::string(def);
}

long long Config::get_i64(std::string_view key, long long def) const {
  return has(key) ? get_i64(key) : def;
}

double Config::get_f64(std::string_view key, double def) const {
  return has(key) ? get_f64(key) : def;
}

bool Config::get_bool(std::string_view key, bool def) const {
  return has(key) ? get_bool(key) : def;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

std::string Config::to_string() const {
  std::ostringstream ss;
  for (const auto& [k, v] : values_) ss << k << " = " << v << "\n";
  return ss.str();
}

}  // namespace hdcs
