#pragma once
// Explicit little-endian binary serialization.
//
// This is the wire format shared by the network layer (framed messages) and
// the application layer (WorkUnit / ResultUnit payloads). Everything is
// written explicitly — no struct memcpy — so the format is identical across
// compilers and architectures, which is the point of a heterogeneous system.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace hdcs {

/// Append-only binary writer. Little-endian, length-prefixed containers.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) string.
  void str(std::string_view s);
  /// Length-prefixed (u32) raw bytes.
  void bytes(std::span<const std::byte> b);
  /// Raw bytes with no length prefix (caller knows the size).
  void raw(std::span<const std::byte> b);

  void f64_vec(const std::vector<double>& v);
  void u32_vec(const std::vector<std::uint32_t>& v);
  void u64_vec(const std::vector<std::uint64_t>& v);
  void str_vec(const std::vector<std::string>& v);

  [[nodiscard]] const std::vector<std::byte>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }
  std::vector<std::byte> buf_;
};

/// Bounds-checked binary reader over a borrowed span. Throws
/// SerializationError on underflow; never reads past the span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}
  /// Guard against binding the span to a temporary buffer (dangling view).
  explicit ByteReader(std::vector<std::byte>&&) = delete;

  std::uint8_t u8();
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }

  std::string str();
  std::vector<std::byte> bytes();
  /// Borrow `n` raw bytes (no copy); the view is valid while the source is.
  std::span<const std::byte> raw(std::size_t n);

  std::vector<double> f64_vec();
  std::vector<std::uint32_t> u32_vec();
  std::vector<std::uint64_t> u64_vec();
  std::vector<std::string> str_vec();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }
  /// Throws unless the whole buffer was consumed — catches format drift.
  void expect_end() const;

 private:
  template <typename T>
  T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Convenience: view a string's bytes as std::byte span.
inline std::span<const std::byte> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

}  // namespace hdcs
