#pragma once
// Wall-clock stopwatch for coarse timing (client self-benchmark, examples).

#include <chrono>

namespace hdcs {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hdcs
