#pragma once
// Deterministic, seedable random number generation.
//
// Everything in this repo that uses randomness (workload generators, the
// availability traces in the simulator, stochastic tree search) goes through
// Rng so that every experiment is reproducible from a single seed.
// xoshiro256** core with a splitmix64 seeder (Blackman & Vigna).

#include <cstdint>
#include <cmath>
#include <numbers>
#include <vector>

namespace hdcs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling, rejection-corrected.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Standard normal via Box–Muller (spare cached).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = 0;
    do {
      u1 = next_double();
    } while (u1 <= 0);
    double u2 = next_double();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given mean (mean = 1/rate).
  double exponential(double mean) {
    double u;
    do {
      u = next_double();
    } while (u <= 0);
    return -mean * std::log(u);
  }

  /// Gamma(shape, scale) via Marsaglia–Tsang; shape > 0.
  double gamma(double shape, double scale) {
    if (shape < 1.0) {
      // Boost to shape+1 then correct (Marsaglia–Tsang trick).
      double u;
      do {
        u = next_double();
      } while (u <= 0);
      return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = normal();
      double v = 1.0 + c * x;
      if (v <= 0) continue;
      v = v * v * v;
      double u = next_double();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
      if (u > 0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
    }
  }

  /// Sample an index from unnormalised non-negative weights.
  std::size_t categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = next_double() * total;
    double acc = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.size() - 1;
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (e.g. one per simulated machine).
  Rng fork() { return Rng(next_u64()); }

  // ---- exact-state capture (WAL / replication) ----
  //
  // The scheduler's integrity RNG must survive an exact snapshot/restore
  // round-trip bit-for-bit, or a replayed core would draw different
  // spot-check decisions than the live core it mirrors. The Box–Muller
  // spare is folded in so `normal()` streams also resume exactly.

  struct State {
    std::uint64_t s[4] = {};
    double spare = 0;
    bool has_spare = false;
  };

  [[nodiscard]] State state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.spare = spare_;
    st.has_spare = has_spare_;
    return st;
  }

  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    spare_ = st.spare;
    has_spare_ = st.has_spare;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4] = {};
  double spare_ = 0;
  bool has_spare_ = false;
};

}  // namespace hdcs
