#pragma once
// Small string helpers used by the config parser and the file-format readers.

#include <string>
#include <string_view>
#include <vector>

namespace hdcs {

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on any run of whitespace; no empty fields.
std::vector<std::string> split_ws(std::string_view s);

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive equality (ASCII).
bool iequals(std::string_view a, std::string_view b);

/// Parse helpers — throw hdcs::InputError with the offending text on failure.
long long parse_i64(std::string_view s);
double parse_f64(std::string_view s);
bool parse_bool(std::string_view s);

/// Format a double with fixed precision (locale-independent).
std::string format_f64(double v, int precision = 3);

}  // namespace hdcs
