#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace hdcs {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
std::function<void(LogLevel, const std::string&)> g_sink;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace log_detail {
void emit(LogLevel level, const std::string& msg) {
  std::lock_guard lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  using namespace std::chrono;
  auto now = duration_cast<milliseconds>(steady_clock::now().time_since_epoch()).count();
  std::fprintf(stderr, "[%10lld.%03lld] %s %s\n", static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), level_name(level), msg.c_str());
}
}  // namespace log_detail

}  // namespace hdcs
