#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

namespace hdcs {

namespace {
using Sink = std::function<void(LogLevel, const std::string&)>;

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;  // guards the shared_ptr swap only, never the call
std::shared_ptr<const Sink> g_sink;

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Small stable per-thread tag; std::thread::id prints as an opaque long
/// number, a 4-digit counter reads better in interleaved output.
unsigned thread_tag() {
  static std::atomic<unsigned> next{1};
  thread_local unsigned tag = next.fetch_add(1) % 10000;
  return tag;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
  std::shared_ptr<const Sink> next;
  if (sink) next = std::make_shared<const Sink>(std::move(sink));
  std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(next);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

void log_to_stderr(LogLevel level, const std::string& msg) {
  double t = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           process_epoch())
                 .count();
  std::fprintf(stderr, "[%10.3f] [tid %04u] %-5s %s\n", t, thread_tag(),
               log_level_name(level), msg.c_str());
}

namespace log_detail {
void emit(LogLevel level, const std::string& msg) {
  std::shared_ptr<const Sink> sink;
  {
    std::lock_guard lock(g_sink_mutex);
    sink = g_sink;
  }
  if (sink) {
    (*sink)(level, msg);
  } else {
    log_to_stderr(level, msg);
  }
}
}  // namespace log_detail

}  // namespace hdcs
