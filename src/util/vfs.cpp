#include "util/vfs.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace hdcs::vfs {

namespace {

// The installed plan is shared-owned: an operation that loaded it keeps it
// alive even if a test's fault scope ends mid-operation (a server thread
// can be inside a faulted compact when the scope unwinds), so uninstall
// never races the plan's destructor. The atomic flag keeps the common
// no-plan path lock-free.
std::atomic<bool> g_plan_installed{false};
std::mutex g_plan_mu;
std::shared_ptr<StorageFaultPlan> g_plan;

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

/// Write every byte of `data` to `fd`, retrying short writes and EINTR.
void write_raw(int fd, const std::string& path,
               std::span<const std::byte> data) {
  const auto* p = reinterpret_cast<const char*>(data.data());
  std::size_t remaining = data.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write " + path);
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
}

}  // namespace

// ---- StorageFaultPlan ----

StorageFaultPlan::StorageFaultPlan(StorageFaultSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed) {}

bool StorageFaultPlan::matches(const std::string& path) const {
  return spec_.path_filter.empty() ||
         path.find(spec_.path_filter) != std::string::npos;
}

bool StorageFaultPlan::draw(double prob) {
  if (prob <= 0) return false;
  return rng_.next_double() < prob;
}

bool StorageFaultPlan::fail_open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!matches(path)) return false;
  if (!draw(spec_.open_error_prob)) return false;
  ++stats_.open_errors;
  return true;
}

StorageFaultPlan::WriteFault StorageFaultPlan::write_fault(
    const std::string& path, std::size_t len, std::size_t& keep_prefix) {
  keep_prefix = 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (!matches(path)) return WriteFault::kNone;
  if (draw(spec_.write_error_prob)) {
    ++stats_.write_errors;
    return WriteFault::kError;
  }
  if (draw(spec_.short_write_prob)) {
    keep_prefix = len == 0 ? 0 : static_cast<std::size_t>(rng_.next_below(len));
    ++stats_.short_writes;
    live_bytes_ += keep_prefix;
    sizes_[path] += keep_prefix;
    return WriteFault::kShort;
  }
  if (spec_.disk_capacity_bytes > 0 &&
      live_bytes_ + len > spec_.disk_capacity_bytes) {
    keep_prefix = live_bytes_ >= spec_.disk_capacity_bytes
                      ? 0
                      : static_cast<std::size_t>(spec_.disk_capacity_bytes -
                                                 live_bytes_);
    ++stats_.enospc;
    live_bytes_ += keep_prefix;
    sizes_[path] += keep_prefix;
    return WriteFault::kNoSpace;
  }
  live_bytes_ += len;
  sizes_[path] += len;
  return WriteFault::kNone;
}

bool StorageFaultPlan::fail_sync(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!matches(path)) return false;
  if (!draw(spec_.sync_error_prob)) return false;
  ++stats_.sync_errors;
  return true;
}

StorageFaultPlan::RenameFault StorageFaultPlan::rename_fault(
    const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!matches(to)) return RenameFault::kNone;
  if (draw(spec_.rename_error_prob)) {
    ++stats_.rename_errors;
    return RenameFault::kError;
  }
  if (draw(spec_.torn_rename_prob)) {
    ++stats_.torn_renames;
    return RenameFault::kTorn;
  }
  return RenameFault::kNone;
}

bool StorageFaultPlan::fail_unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!matches(path)) return false;
  if (!draw(spec_.unlink_error_prob)) return false;
  ++stats_.unlink_errors;
  return true;
}

void StorageFaultPlan::note_unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sizes_.find(path);
  if (it == sizes_.end()) return;
  live_bytes_ -= it->second;
  sizes_.erase(it);
}

void StorageFaultPlan::note_truncate(const std::string& path,
                                     std::uint64_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sizes_.find(path);
  if (it == sizes_.end()) return;  // never charged: nothing to credit back
  if (it->second > new_size) {
    live_bytes_ -= it->second - new_size;
    it->second = new_size;
  }
  if (it->second == 0) sizes_.erase(it);
}

void StorageFaultPlan::note_rename(const std::string& from,
                                   const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t moved = 0;
  if (auto it = sizes_.find(from); it != sizes_.end()) {
    moved = it->second;
    sizes_.erase(it);
  }
  if (auto it = sizes_.find(to); it != sizes_.end()) {
    live_bytes_ -= it->second;  // the rename replaced the old destination
    sizes_.erase(it);
  }
  if (moved > 0) sizes_[to] = moved;
}

StorageFaultPlan::Stats StorageFaultPlan::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t StorageFaultPlan::live_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_bytes_;
}

void install_storage_fault_plan(std::shared_ptr<StorageFaultPlan> plan) {
  std::lock_guard<std::mutex> lock(g_plan_mu);
  g_plan = std::move(plan);
  g_plan_installed.store(g_plan != nullptr, std::memory_order_release);
}

std::shared_ptr<StorageFaultPlan> installed_storage_fault_plan() {
  if (!g_plan_installed.load(std::memory_order_acquire)) return nullptr;
  std::lock_guard<std::mutex> lock(g_plan_mu);
  return g_plan;
}

// ---- File ----

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      poisoned_(std::exchange(other.poisoned_, false)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    poisoned_ = std::exchange(other.poisoned_, false);
  }
  return *this;
}

File::~File() { close(); }

File File::create(const std::string& path) {
  if (auto plan = installed_storage_fault_plan();
      plan && plan->fail_open(path)) {
    throw IoError("open " + path + ": injected I/O error");
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open " + path);
  if (auto plan = installed_storage_fault_plan()) plan->note_truncate(path, 0);
  return File(fd, path);
}

File File::append(const std::string& path, bool create_missing) {
  if (auto plan = installed_storage_fault_plan();
      plan && plan->fail_open(path)) {
    throw IoError("open " + path + ": injected I/O error");
  }
  const int flags = O_WRONLY | O_APPEND | (create_missing ? O_CREAT : 0);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throw_errno("open " + path);
  return File(fd, path);
}

void File::write_all(std::span<const std::byte> data) {
  if (fd_ < 0) throw IoError("write " + path_ + ": file not open");
  if (poisoned_) {
    throw IoError("write " + path_ +
                  ": handle poisoned by failed fsync (rebuild the file)");
  }
  if (data.empty()) return;
  if (auto plan = installed_storage_fault_plan()) {
    std::size_t keep = 0;
    switch (plan->write_fault(path_, data.size(), keep)) {
      case StorageFaultPlan::WriteFault::kError:
        throw IoError("write " + path_ + ": injected I/O error");
      case StorageFaultPlan::WriteFault::kShort:
        write_raw(fd_, path_, data.first(keep));
        throw IoError("write " + path_ + ": injected short write (" +
                      std::to_string(keep) + "/" +
                      std::to_string(data.size()) + " bytes landed)");
      case StorageFaultPlan::WriteFault::kNoSpace:
        write_raw(fd_, path_, data.first(keep));
        throw IoError("write " + path_ + ": No space left on device (injected" +
                      (keep > 0 ? ", " + std::to_string(keep) +
                                      " bytes landed first)"
                                : ")"));
      case StorageFaultPlan::WriteFault::kNone:
        break;
    }
  }
  write_raw(fd_, path_, data);
}

void File::sync() {
  if (fd_ < 0) throw IoError("fsync " + path_ + ": file not open");
  if (poisoned_) {
    throw IoError("fsync " + path_ +
                  ": handle poisoned by earlier failed fsync (rebuild the "
                  "file, do not retry the fsync)");
  }
  if (auto plan = installed_storage_fault_plan();
      plan && plan->fail_sync(path_)) {
    poisoned_ = true;
    throw IoError("fsync " + path_ + ": injected I/O error");
  }
  if (::fsync(fd_) != 0) {
    poisoned_ = true;
    throw_errno("fsync " + path_);
  }
}

void File::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  poisoned_ = false;
}

// ---- free functions ----

std::vector<std::byte> read_file(const std::string& path) {
  auto bytes = read_file_if_exists(path);
  if (!bytes) throw IoError("open " + path + ": " + std::strerror(ENOENT));
  return std::move(*bytes);
}

std::optional<std::vector<std::byte>> read_file_if_exists(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw_errno("open " + path);
  }
  std::vector<std::byte> out;
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("read " + path);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

void make_dirs(const std::string& dir) {
  if (dir.empty()) return;
  std::string partial;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t next = dir.find('/', pos + 1);
    partial = next == std::string::npos ? dir : dir.substr(0, next);
    pos = next;
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      throw_errno("mkdir " + partial);
    }
  }
}

void rename_file(const std::string& from, const std::string& to) {
  auto plan = installed_storage_fault_plan();
  if (plan) {
    switch (plan->rename_fault(to)) {
      case StorageFaultPlan::RenameFault::kError:
        throw IoError("rename " + from + " -> " + to + ": injected I/O error");
      case StorageFaultPlan::RenameFault::kTorn: {
        // A crash mid-rename on a non-atomic filesystem: the destination
        // ends up a truncated copy of the source, the source is gone.
        // Performed with raw syscalls so the carnage itself is not
        // re-faulted.
        const auto src = read_file(from);
        const std::size_t prefix = src.size() / 2;
        const int fd = ::open(to.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
          write_raw(fd, to, std::span<const std::byte>(src).first(prefix));
          ::close(fd);
        }
        ::unlink(from.c_str());
        plan->note_rename(from, to);
        plan->note_truncate(to, prefix);
        throw IoError("rename " + from + " -> " + to +
                      ": injected torn rename (" + std::to_string(prefix) +
                      "/" + std::to_string(src.size()) + " bytes at " + to +
                      ")");
      }
      case StorageFaultPlan::RenameFault::kNone:
        break;
    }
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    throw_errno("rename " + from + " -> " + to);
  }
  if (plan) plan->note_rename(from, to);
}

bool remove_file(const std::string& path) noexcept {
  auto plan = installed_storage_fault_plan();
  if (plan && plan->fail_unlink(path)) return false;
  if (::unlink(path.c_str()) != 0) return false;
  if (plan) plan->note_unlink(path);
  return true;
}

void truncate_file(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    throw_errno("truncate " + path);
  }
  if (auto plan = installed_storage_fault_plan()) {
    plan->note_truncate(path, size);
  }
}

void sync_parent_dir(const std::string& path) noexcept {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);  // best-effort; some filesystems refuse directory fsync
    ::close(fd);
  }
}

std::uint64_t dir_bytes(const std::string& dir) noexcept {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  std::uint64_t total = 0;
  while (dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      total += static_cast<std::uint64_t>(st.st_size);
    }
  }
  ::closedir(d);
  return total;
}

bool exists(const std::string& path) noexcept {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace hdcs::vfs
