#pragma once
// Minimal thread-safe leveled logger.
//
// The server, clients and simulator all log through this; tests silence it
// by raising the level. Deliberately not configurable beyond level + sink to
// keep hot paths free of formatting machinery.
//
// Sink contract: emitters copy the installed sink under a short lock and
// invoke it OUTSIDE the lock, so set_log_sink() is safe to call while other
// threads are mid-emit, and a sink that itself logs cannot deadlock. A sink
// being replaced may still receive a few in-flight messages; callers that
// need a hard cut-off should quiesce their threads first.

#include <functional>
#include <sstream>
#include <string>

namespace hdcs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_detail {
void emit(LogLevel level, const std::string& msg);
}

/// Global minimum level; messages below it are discarded before formatting.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirect output (default: stderr). Pass nullptr to restore the default.
/// Safe to call concurrently with emitting threads (see sink contract).
void set_log_sink(std::function<void(LogLevel, const std::string&)> sink);

/// The default sink: "[   12.345] [tid 0421] WARN  msg" to stderr, where
/// the timestamp is monotonic seconds since process start and tid is a
/// stable per-thread tag. Exposed so custom sinks (e.g. the obs tracer
/// bridge) can chain to it.
void log_to_stderr(LogLevel level, const std::string& msg);

/// "DEBUG" / "INFO" / "WARN" / "ERROR" (trimmed, for structured sinks).
const char* log_level_name(LogLevel level);

/// Stream-style log statement: LOG_INFO("client " << id << " joined");
#define HDCS_LOG(level, expr)                                         \
  do {                                                                \
    if (static_cast<int>(level) >= static_cast<int>(::hdcs::log_level())) { \
      std::ostringstream hdcs_log_ss;                                 \
      hdcs_log_ss << expr;                                            \
      ::hdcs::log_detail::emit(level, hdcs_log_ss.str());             \
    }                                                                 \
  } while (0)

#define LOG_DEBUG(expr) HDCS_LOG(::hdcs::LogLevel::kDebug, expr)
#define LOG_INFO(expr) HDCS_LOG(::hdcs::LogLevel::kInfo, expr)
#define LOG_WARN(expr) HDCS_LOG(::hdcs::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) HDCS_LOG(::hdcs::LogLevel::kError, expr)

}  // namespace hdcs
