#pragma once
// Minimal thread-safe leveled logger.
//
// The server, clients and simulator all log through this; tests silence it
// by raising the level. Deliberately not configurable beyond level + sink to
// keep hot paths free of formatting machinery.

#include <functional>
#include <sstream>
#include <string>

namespace hdcs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_detail {
void emit(LogLevel level, const std::string& msg);
}

/// Global minimum level; messages below it are discarded before formatting.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirect output (default: stderr). Pass nullptr to restore the default.
void set_log_sink(std::function<void(LogLevel, const std::string&)> sink);

/// Stream-style log statement: LOG_INFO("client " << id << " joined");
#define HDCS_LOG(level, expr)                                         \
  do {                                                                \
    if (static_cast<int>(level) >= static_cast<int>(::hdcs::log_level())) { \
      std::ostringstream hdcs_log_ss;                                 \
      hdcs_log_ss << expr;                                            \
      ::hdcs::log_detail::emit(level, hdcs_log_ss.str());             \
    }                                                                 \
  } while (0)

#define LOG_DEBUG(expr) HDCS_LOG(::hdcs::LogLevel::kDebug, expr)
#define LOG_INFO(expr) HDCS_LOG(::hdcs::LogLevel::kInfo, expr)
#define LOG_WARN(expr) HDCS_LOG(::hdcs::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) HDCS_LOG(::hdcs::LogLevel::kError, expr)

}  // namespace hdcs
