#pragma once
// Key=value configuration files.
//
// Both DSEARCH and DPRml are driven by "a straightforward configuration
// file" (paper §3.1, §3.2). Format: one `key = value` per line, `#` or `;`
// comments, blank lines ignored, later keys override earlier ones. Keys are
// case-insensitive and stored lower-cased.

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hdcs {

class Config {
 public:
  Config() = default;

  /// Parse from text; throws InputError on malformed lines.
  static Config parse(std::string_view text);
  /// Parse from a file; throws IoError if unreadable.
  static Config load(const std::string& path);

  void set(std::string_view key, std::string_view value);

  [[nodiscard]] bool has(std::string_view key) const;

  /// Required getters — throw InputError naming the missing/invalid key.
  [[nodiscard]] std::string get_str(std::string_view key) const;
  [[nodiscard]] long long get_i64(std::string_view key) const;
  [[nodiscard]] double get_f64(std::string_view key) const;
  [[nodiscard]] bool get_bool(std::string_view key) const;

  /// Defaulted getters.
  [[nodiscard]] std::string get_str(std::string_view key, std::string_view def) const;
  [[nodiscard]] long long get_i64(std::string_view key, long long def) const;
  [[nodiscard]] double get_f64(std::string_view key, double def) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool def) const;

  /// All keys in sorted order (for round-tripping / diagnostics).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Serialize back to `key = value` lines (sorted by key).
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace hdcs
