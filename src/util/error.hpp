#pragma once
// Error taxonomy for the hdcs library.
//
// All recoverable failures surface as subclasses of hdcs::Error so callers
// can catch the whole library with one handler, or pick off a category
// (I/O vs. protocol vs. user input) when they can act on it.

#include <stdexcept>
#include <string>

namespace hdcs {

/// Root of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Operating-system level I/O failure (sockets, files).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Malformed wire data: bad magic, truncated frame, version mismatch.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// Invalid user-supplied input: bad config key, malformed FASTA/Newick,
/// out-of-range parameter.
class InputError : public Error {
 public:
  explicit InputError(const std::string& what) : Error(what) {}
};

/// Serialization buffer underflow / overflow.
class SerializationError : public ProtocolError {
 public:
  explicit SerializationError(const std::string& what) : ProtocolError(what) {}
};

}  // namespace hdcs
