#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/logging.hpp"

namespace hdcs {

namespace {

SimdTier detect() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
  return SimdTier::kSse2;  // SSE2 is baseline on x86-64
#else
  // The "sse2" tier is plain fixed-width-lane C++, portable to any ISA.
  return SimdTier::kSse2;
#endif
}

SimdTier initial_tier() {
  SimdTier detected = detect();
  const char* env = std::getenv("HDCS_SIMD");
  if (env == nullptr || *env == '\0') return detected;
  SimdTier requested;
  if (!parse_simd_tier(env, &requested)) {
    LOG_WARN("HDCS_SIMD=" << env
                          << " is not scalar|sse2|avx2; using detected tier "
                          << to_string(detected));
    return detected;
  }
  if (static_cast<int>(requested) > static_cast<int>(detected)) {
    LOG_WARN("HDCS_SIMD=" << env << " not supported by this CPU; clamping to "
                          << to_string(detected));
    return detected;
  }
  return requested;
}

// -1 = not yet selected. Lazy so the env override works no matter when the
// first kernel runs, without static-init-order games.
std::atomic<int> g_tier{-1};

}  // namespace

SimdTier simd_tier_detected() {
  static const SimdTier t = detect();
  return t;
}

SimdTier simd_tier() {
  int t = g_tier.load(std::memory_order_relaxed);
  if (t >= 0) return static_cast<SimdTier>(t);
  SimdTier chosen = initial_tier();
  int expected = -1;
  if (g_tier.compare_exchange_strong(expected, static_cast<int>(chosen),
                                     std::memory_order_relaxed)) {
    return chosen;
  }
  return static_cast<SimdTier>(expected);
}

void set_simd_tier(SimdTier t) {
  if (!simd_tier_available(t)) t = simd_tier_detected();
  g_tier.store(static_cast<int>(t), std::memory_order_relaxed);
}

const char* to_string(SimdTier t) {
  switch (t) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kSse2: return "sse2";
    case SimdTier::kAvx2: return "avx2";
  }
  return "?";
}

bool parse_simd_tier(std::string_view text, SimdTier* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  if (lower == "scalar") *out = SimdTier::kScalar;
  else if (lower == "sse2") *out = SimdTier::kSse2;
  else if (lower == "avx2") *out = SimdTier::kAvx2;
  else return false;
  return true;
}

}  // namespace hdcs
