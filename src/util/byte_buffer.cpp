#include "util/byte_buffer.hpp"

#include <bit>
#include <cstring>

namespace hdcs {

void ByteWriter::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(as_bytes(s));
}

void ByteWriter::bytes(std::span<const std::byte> b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void ByteWriter::raw(std::span<const std::byte> b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void ByteWriter::f64_vec(const std::vector<double>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) f64(x);
}

void ByteWriter::u32_vec(const std::vector<std::uint32_t>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (auto x : v) u32(x);
}

void ByteWriter::u64_vec(const std::vector<std::uint64_t>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (auto x : v) u64(x);
}

void ByteWriter::str_vec(const std::vector<std::string>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& s : v) str(s);
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw SerializationError("ByteReader underflow: need " + std::to_string(n) +
                             " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

double ByteReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::byte> ByteReader::bytes() {
  std::uint32_t n = u32();
  auto view = raw(n);
  return {view.begin(), view.end()};
}

std::span<const std::byte> ByteReader::raw(std::size_t n) {
  need(n);
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::vector<double> ByteReader::f64_vec() {
  std::uint32_t n = u32();
  std::vector<double> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(f64());
  return v;
}

std::vector<std::uint32_t> ByteReader::u32_vec() {
  std::uint32_t n = u32();
  std::vector<std::uint32_t> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(u32());
  return v;
}

std::vector<std::uint64_t> ByteReader::u64_vec() {
  std::uint32_t n = u32();
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(u64());
  return v;
}

std::vector<std::string> ByteReader::str_vec() {
  std::uint32_t n = u32();
  std::vector<std::string> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(str());
  return v;
}

void ByteReader::expect_end() const {
  if (!at_end()) {
    throw SerializationError("ByteReader: " + std::to_string(remaining()) +
                             " trailing bytes after decode");
  }
}

}  // namespace hdcs
