#pragma once
// Deterministic storage-fault injection over POSIX file I/O.
//
// The disk is a fault domain exactly like the network: ENOSPC, EIO, short
// writes, failed fsyncs and non-atomic renames all happen in production,
// and every durable path in this repo (WAL segments, checkpoint files, the
// blob cache disk tier) must have defined behaviour when they do. This
// header mirrors net/fault.hpp's FaultPlan idiom for files: a seeded
// StorageFaultPlan is installed process-wide (ScopedStorageFaultPlan in
// tests) and every vfs operation consults it at its choke point —
// open/create, write, fsync, rename, unlink — so a single seed reproduces
// one storm across WAL, checkpoints and caches at once.
//
// Fault model:
//   - open_error_prob: create/append fails with injected EIO.
//   - write_error_prob: a write fails with EIO after landing 0 bytes.
//   - short_write_prob: a random prefix lands, then ENOSPC — the torn-tail
//     case WAL recovery must truncate.
//   - sync_error_prob: fsync reports EIO. Per fsyncgate semantics the
//     caller must treat the file's durability as unknown and rebuild it;
//     re-fsyncing the same descriptor is a bug, never a retry.
//   - rename_error_prob: rename fails cleanly (destination untouched).
//   - torn_rename_prob: rename "fails" leaving the destination a truncated
//     copy of the source — a crash on a non-atomic filesystem. Readers must
//     detect this (CRC envelopes), never consume it silently.
//   - unlink_error_prob: unlink fails; the file (and its capacity charge)
//     stays.
//   - disk_capacity_bytes: a deterministic disk-budget model. The plan
//     tracks the live bytes written through the vfs per path; once the
//     total would exceed the capacity a write gets ENOSPC (after the
//     prefix that still fits lands — real filesystems fill up mid-write).
//     Unlinks and truncates credit bytes back, so WAL compaction genuinely
//     frees space: the degrade -> compact -> re-arm loop closes.
//   - path_filter: only paths containing this substring are faulted (and
//     capacity-charged), so a test can break the WAL directory while the
//     result files on the same real disk stay writable.
//
// With no plan installed every operation is a thin RAII wrapper over the
// raw syscalls (one relaxed atomic load of overhead), throwing IoError
// with strerror text on real failure — the same taxonomy either way, so
// callers cannot tell injected faults from real ones. That is the point.
//
// Layering note: this lives in hdcs_util, *below* the obs metrics
// registry, so fault counters live inside the plan (stats()) rather than
// in obs counters; the dist/net layers mirror what they care about.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace hdcs::vfs {

struct StorageFaultSpec {
  std::uint64_t seed = 1;
  double open_error_prob = 0;
  double write_error_prob = 0;
  double short_write_prob = 0;
  double sync_error_prob = 0;
  double rename_error_prob = 0;
  double torn_rename_prob = 0;
  double unlink_error_prob = 0;
  /// 0 = unlimited. See the capacity model above.
  std::uint64_t disk_capacity_bytes = 0;
  /// Only paths containing this substring are faulted; empty = all paths.
  std::string path_filter;

  [[nodiscard]] bool any() const {
    return open_error_prob > 0 || write_error_prob > 0 ||
           short_write_prob > 0 || sync_error_prob > 0 ||
           rename_error_prob > 0 || torn_rename_prob > 0 ||
           unlink_error_prob > 0 || disk_capacity_bytes > 0;
  }
};

class StorageFaultPlan {
 public:
  explicit StorageFaultPlan(StorageFaultSpec spec);

  /// Injected-fault counters (thread-safe snapshot). These are the plan's
  /// own bookkeeping — "how hostile was the storm" — distinct from the
  /// consumer-side failure counters the dist layer exports to obs.
  struct Stats {
    std::uint64_t open_errors = 0;
    std::uint64_t write_errors = 0;
    std::uint64_t short_writes = 0;
    std::uint64_t sync_errors = 0;
    std::uint64_t rename_errors = 0;
    std::uint64_t torn_renames = 0;
    std::uint64_t unlink_errors = 0;
    std::uint64_t enospc = 0;  // capacity-model rejections

    [[nodiscard]] std::uint64_t injected() const {
      return open_errors + write_errors + short_writes + sync_errors +
             rename_errors + torn_renames + unlink_errors + enospc;
    }
  };

  enum class WriteFault { kNone, kError, kShort, kNoSpace };
  enum class RenameFault { kNone, kError, kTorn };

  // Decision points, called by the vfs operations below. Each draws from
  // the shared seeded stream (thread-safe) and updates the capacity ledger
  // for the outcome it announces.
  [[nodiscard]] bool fail_open(const std::string& path);
  /// Outcome for writing `len` bytes to `path`. kShort/kNoSpace set
  /// `keep_prefix` to the bytes that still land (charged to the ledger).
  [[nodiscard]] WriteFault write_fault(const std::string& path,
                                       std::size_t len,
                                       std::size_t& keep_prefix);
  [[nodiscard]] bool fail_sync(const std::string& path);
  [[nodiscard]] RenameFault rename_fault(const std::string& to);
  [[nodiscard]] bool fail_unlink(const std::string& path);

  // Capacity-ledger maintenance for operations that free or move bytes.
  void note_unlink(const std::string& path);
  void note_truncate(const std::string& path, std::uint64_t new_size);
  void note_rename(const std::string& from, const std::string& to);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const StorageFaultSpec& spec() const { return spec_; }
  /// Live bytes currently charged against disk_capacity_bytes.
  [[nodiscard]] std::uint64_t live_bytes() const;

 private:
  [[nodiscard]] bool matches(const std::string& path) const;
  [[nodiscard]] bool draw(double prob);  // mu_ held

  StorageFaultSpec spec_;
  mutable std::mutex mu_;
  Rng rng_;
  Stats stats_;
  std::uint64_t live_bytes_ = 0;
  std::unordered_map<std::string, std::uint64_t> sizes_;
};

/// Install `plan` as the process-global plan consulted by every vfs
/// operation; nullptr turns injection off (the default). Ownership is
/// shared: an operation that grabbed the plan keeps it alive even if it is
/// uninstalled mid-flight (a server thread can be inside a faulted compact
/// when the test's fault scope ends), so uninstall never races destruction.
void install_storage_fault_plan(std::shared_ptr<StorageFaultPlan> plan);
[[nodiscard]] std::shared_ptr<StorageFaultPlan> installed_storage_fault_plan();

/// RAII install/uninstall for tests.
class ScopedStorageFaultPlan {
 public:
  explicit ScopedStorageFaultPlan(StorageFaultSpec spec)
      : plan_(std::make_shared<StorageFaultPlan>(spec)) {
    install_storage_fault_plan(plan_);
  }
  ~ScopedStorageFaultPlan() { install_storage_fault_plan(nullptr); }
  ScopedStorageFaultPlan(const ScopedStorageFaultPlan&) = delete;
  ScopedStorageFaultPlan& operator=(const ScopedStorageFaultPlan&) = delete;

  [[nodiscard]] StorageFaultPlan& plan() { return *plan_; }

 private:
  std::shared_ptr<StorageFaultPlan> plan_;
};

/// RAII file handle for the durable write paths. All mutating operations
/// throw IoError (real or injected); close() and the destructor are
/// best-effort and never throw. After sync() throws, the handle refuses
/// further writes/syncs — fsyncgate: the kernel may have dropped the dirty
/// pages, so the only safe continuation is to rebuild the file, not to
/// retry the fsync.
class File {
 public:
  File() = default;
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// O_WRONLY | O_CREAT | O_TRUNC, 0644.
  static File create(const std::string& path);
  /// O_WRONLY | O_APPEND (| O_CREAT when `create_missing`).
  static File append(const std::string& path, bool create_missing = false);

  /// Write every byte or throw IoError. A short-write injection lands its
  /// prefix before throwing (the on-disk file really is torn).
  void write_all(std::span<const std::byte> data);
  /// fsync. Throws IoError on real or injected failure and poisons the
  /// handle (see class comment).
  void sync();
  /// Close, ignoring errors. Idempotent.
  void close() noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
  bool poisoned_ = false;  // a sync failed; no further mutation allowed
};

/// Whole-file read. Throws IoError on any failure, including ENOENT.
std::vector<std::byte> read_file(const std::string& path);
/// Whole-file read; nullopt when the file does not exist.
std::optional<std::vector<std::byte>> read_file_if_exists(
    const std::string& path);

/// mkdir -p. Throws IoError.
void make_dirs(const std::string& dir);

/// rename(2) with clean-failure and torn-rename injection. Throws IoError
/// on failure; after a torn injection the destination holds a truncated
/// copy of the source (which is consumed), exactly like a crash on a
/// non-atomic filesystem.
void rename_file(const std::string& from, const std::string& to);

/// unlink(2). Returns false (without throwing) when the file is already
/// gone or the unlink failed — callers of this repo tolerate a stale file
/// (WAL recovery skips pre-base segments record-by-record).
bool remove_file(const std::string& path) noexcept;

/// truncate(2). Throws IoError.
void truncate_file(const std::string& path, std::uint64_t size);

/// fsync the parent directory of `path` (makes a rename durable).
/// Best-effort: some filesystems refuse O_RDONLY on directories.
void sync_parent_dir(const std::string& path) noexcept;

/// Total bytes of regular files directly inside `dir` (no recursion; the
/// WAL and blob-cache layouts are flat). 0 when the directory is missing.
/// Read-only — never faulted.
std::uint64_t dir_bytes(const std::string& dir) noexcept;

[[nodiscard]] bool exists(const std::string& path) noexcept;

}  // namespace hdcs::vfs
