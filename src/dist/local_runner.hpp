#pragma once
// Serial in-process execution of a Problem.
//
// Runs the DataManager and Algorithm back to back with no network and no
// scheduler. This is (a) the ground truth for correctness tests — the
// distributed answer must match it bit for bit — and (b) the T(1) baseline
// for the speedup figures.

#include <memory>
#include <vector>

#include "dist/algorithm.hpp"
#include "dist/data_manager.hpp"
#include "dist/registry.hpp"

namespace hdcs::dist {

struct LocalRunStats {
  std::uint64_t units = 0;
  double total_cost_ops = 0;
};

/// Run to completion; returns the DataManager's final_result().
/// `unit_ops` is the SizeHint used for every unit.
///
/// `threads` > 1 fans independent units onto a util::ThreadPool (one
/// Algorithm instance per worker, mirroring real donors) while results are
/// merged back in unit-issue order — so the answer is byte-identical to the
/// serial run even for order-sensitive DataManagers. Stage barriers are
/// honoured: when next_unit() withholds units, in-flight results are
/// drained in order until the barrier lifts.
std::vector<std::byte> run_locally(
    DataManager& dm, double unit_ops = 1e6, LocalRunStats* stats = nullptr,
    const AlgorithmRegistry& registry = AlgorithmRegistry::global(),
    std::size_t threads = 1);

}  // namespace hdcs::dist
