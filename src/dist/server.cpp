#include "dist/server.hpp"

#include <sys/epoll.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "dist/checkpoint_file.hpp"
#include "dist/wire.hpp"
#include "net/bulk.hpp"
#include "net/fault.hpp"
#include "net/frame_reader.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/simd.hpp"
#include "util/stopwatch.hpp"
#include "util/vfs.hpp"

namespace hdcs::dist {

namespace {
// Request-handling latency, one histogram per client->server message type.
// Measures decode + scheduling + encode, i.e. everything between reading
// the request frame and writing the response frame.
obs::Histogram* handler_histogram(net::MessageType type) {
  auto& reg = obs::Registry::global();
  auto make = [&reg](const char* name) {
    return &reg.histogram(std::string("server.handle_s.") + name,
                          obs::Histogram::latency_bounds());
  };
  switch (type) {
    case net::MessageType::kHello: {
      static obs::Histogram* h = make("Hello");
      return h;
    }
    case net::MessageType::kRequestWork: {
      static obs::Histogram* h = make("RequestWork");
      return h;
    }
    case net::MessageType::kSubmitResult: {
      static obs::Histogram* h = make("SubmitResult");
      return h;
    }
    case net::MessageType::kHeartbeat: {
      static obs::Histogram* h = make("Heartbeat");
      return h;
    }
    case net::MessageType::kFetchProblemData: {
      static obs::Histogram* h = make("FetchProblemData");
      return h;
    }
    case net::MessageType::kFetchBlobs: {
      static obs::Histogram* h = make("FetchBlobs");
      return h;
    }
    case net::MessageType::kFetchStats: {
      static obs::Histogram* h = make("FetchStats");
      return h;
    }
    default:
      return nullptr;  // Goodbye closes the connection; others are errors
  }
}

obs::Gauge& connected_gauge() {
  static obs::Gauge* g =
      &obs::Registry::global().gauge("server.connected_clients");
  return *g;
}

// Event-loop health counters (net.loop.wakeups / lag_s / fds live in
// net/event_loop.cpp; these are the server-side flow-control ones).
struct LoopIoMetrics {
  obs::Counter& eagain_writes =
      obs::Registry::global().counter("net.loop.eagain_writes");
  obs::Counter& backpressure_stalls =
      obs::Registry::global().counter("net.loop.backpressure_stalls");
  obs::Counter& connections_shed =
      obs::Registry::global().counter("net.loop.connections_shed");
  obs::Gauge& write_queue_hwm =
      obs::Registry::global().gauge("net.loop.write_queue_hwm");
};
LoopIoMetrics& loop_io_metrics() {
  static LoopIoMetrics m;
  return m;
}
}  // namespace

// One hot standby's outbound record queue. Handlers push (under
// core_mutex_, in core-mutation order) the same encoded payloads the WAL
// stores; the replica connection's thread drains them into WalAppend
// batches. A standby that stops acking while records pile up overflows and
// is disconnected — it resyncs from a fresh snapshot instead of wedging
// the primary on an unbounded queue.
struct Server::ReplicaFeed {
  static constexpr std::size_t kMaxQueued = 1u << 16;

  std::mutex m;
  std::condition_variable cv;
  std::deque<std::vector<std::byte>> q;
  bool overflow = false;

  void push(const std::vector<std::byte>& rec) {
    {
      std::lock_guard lock(m);
      if (q.size() >= kMaxQueued) {
        overflow = true;
        q.clear();
      } else {
        q.push_back(rec);
      }
    }
    cv.notify_one();
  }
};

// One epoll loop, its thread, and the connections pinned to it. `conns` is
// touched only from the loop's own thread.
struct Server::IoLoop {
  net::EventLoop loop;
  std::thread thread;
  std::unordered_set<std::shared_ptr<Conn>> conns;
};

// Per-connection state machine. Everything here is owned by the
// connection's loop thread, except client_id (read by workers for log
// lines, written on the loop thread as Hello/Goodbye outcomes land).
struct Server::Conn {
  net::TcpStream stream;
  IoLoop* io = nullptr;
  net::FrameReader reader;
  std::deque<net::Message> inbox;  // parsed requests awaiting a worker slot
  bool busy = false;               // one worker job in flight at a time
  bool closed = false;
  bool paused = false;            // backpressure: EPOLLIN off
  bool want_write = false;        // EPOLLOUT armed (kernel buffer was full)
  bool close_after_flush = false; // Goodbye: close once the queue drains
  std::uint32_t armed = 0;        // epoll mask currently registered
  std::atomic<ClientId> client_id{0};

  struct Chunk {
    std::vector<std::byte> bytes;
    std::size_t off = 0;
    /// Blob-budget bytes released when this chunk finishes sending (or the
    /// connection dies with it queued).
    std::size_t release = 0;
  };
  std::deque<Chunk> outq;
  std::size_t outq_bytes = 0;

  /// Mid-structure stall guard: set while the reader is inside a frame,
  /// re-armed on every read that makes progress, swept at 1 Hz.
  std::chrono::steady_clock::time_point read_deadline{};
  /// Write-stall guard: set when the queue is non-empty and the kernel
  /// refuses bytes; cleared on any write progress.
  std::chrono::steady_clock::time_point write_deadline{};
};

// What a worker hands back to the loop thread: response frames (and bulk
// bodies) already encoded to wire bytes, plus connection-state directives.
struct Server::HandlerOutcome {
  std::vector<std::vector<std::byte>> chunks;  // enqueued in order
  std::size_t inflight_charged = 0;  // blob budget to release after send
  ClientId became_client = 0;        // Hello assigned this id
  bool clear_client = false;         // Goodbye: drop the id before close
  bool close = false;                // close once chunks are flushed
  bool replica = false;              // detach into a replication session
  net::Message request;              // original frame (replica detach)
};

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      core_(config_.scheduler, make_policy(config_.policy_spec)),
      epoch_(std::chrono::steady_clock::now()) {
  core_.set_tracer(config_.tracer);
  // 0=scalar 1=sse2 2=avx2 (util/simd.hpp); which kernel tier this process
  // dispatches — visible in metrics dumps and hdcs_top.
  obs::Registry::global().gauge("simd.tier")
      .set(static_cast<double>(static_cast<int>(simd_tier())));
}

Server::~Server() { stop(); }

double Server::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Server::start() {
  if (running_.exchange(true)) return;
  bool wal_recovered = false;
  if (!config_.wal_dir.empty()) {
    WalConfig wc;
    wc.dir = config_.wal_dir;
    wc.segment_bytes = config_.wal_segment_bytes;
    wal_ = std::make_unique<WalLog>(wc);
    wal_->set_tracer(config_.tracer);
    WalRecovery rec = wal_->take_recovery();
    if (rec.base_snapshot || !rec.tail.empty()) {
      std::lock_guard lock(core_mutex_);
      // Replay with the tracer detached: the recovered mutations were
      // already traced by the previous life of this scheduler.
      core_.set_tracer(nullptr);
      if (rec.base_snapshot) {
        ByteReader r(*rec.base_snapshot);
        core_.restore_exact(r);
        r.expect_end();
      }
      for (const WalRecord& wrec : rec.tail) apply_wal_record(core_, wrec);
      core_.set_tracer(config_.tracer);
      double t = now();
      // New term: the torn-off tail may have held unsynced RequestWork
      // records whose unit ids this core will reuse — fence their stale
      // results by epoch, and sweep the dead connections' client rows.
      enter_new_term("wal_recovery", t);
      last_compact_lsn_ = wal_->next_lsn();
      wal_recovered = true;
      if (config_.tracer) {
        config_.tracer->event(t, "wal_recovered")
            .u64("records", rec.records_replayable)
            .u64("lsn", wal_->next_lsn())
            .u64("epoch", core_.epoch())
            .u64("torn_bytes", rec.torn_bytes_truncated);
      }
      LOG_INFO("WAL recovery from " << config_.wal_dir << ": "
               << rec.records_replayable << " records over "
               << rec.segments_scanned << " segments, resuming at lsn "
               << wal_->next_lsn() << " epoch " << core_.epoch());
      progress_cv_.notify_all();
    }
  }
  if (!wal_recovered && !config_.checkpoint_path.empty() &&
      config_.restore_on_start) {
    if (auto blob = read_checkpoint_file(config_.checkpoint_path)) {
      LOG_INFO("restoring checkpoint from " << config_.checkpoint_path << " ("
                                            << blob->size() << " bytes)");
      restore_checkpoint(*blob);
    }
  }
  if (wal_) repl_lsn_ = wal_->next_lsn();
  durability_.store(static_cast<int>(
      wal_ || !config_.checkpoint_path.empty() ? Durability::kDurable
                                               : Durability::kNone));
  obs::Registry::global().gauge("server.durability")
      .set(static_cast<double>(durability_.load()));
  listener_ = net::TcpListener::bind(config_.port);
  port_ = listener_.port();
  if (!config_.primary_host.empty()) standby_.store(true);
  workers_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(std::max(1, config_.worker_threads)));
  io_.clear();
  const int nloops = std::max(1, config_.io_threads);
  for (int i = 0; i < nloops; ++i) io_.push_back(std::make_unique<IoLoop>());
  for (auto& io : io_) {
    IoLoop* iop = io.get();
    // add_periodic/add_fd are loop-thread-only; queue the setup so it runs
    // as the loop's first task.
    iop->loop.post([this, iop] {
      iop->loop.add_periodic(1.0, [this, iop] { sweep_conns(*iop); });
    });
  }
  io_[0]->loop.post([this] {
    io_[0]->loop.add_fd(listener_.fd(), EPOLLIN,
                        [this](std::uint32_t) { accept_ready(); });
  });
  for (auto& io : io_) {
    IoLoop* iop = io.get();
    iop->thread = std::thread([iop] { iop->loop.run(); });
  }
  housekeeper_ = std::thread([this] { housekeeping_loop(); });
  if (standby_.load()) {
    replica_ = std::thread([this] { replica_loop(); });
    LOG_INFO("standby listening on 127.0.0.1:" << port_ << ", syncing from "
             << config_.primary_host << ":" << config_.primary_port);
  } else {
    LOG_INFO("server listening on 127.0.0.1:" << port_);
  }
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Tear connections down on their own loop threads (each posts its
  // client_left to the workers), stop the loops, then drain the worker
  // queue — shutdown() runs what is queued before joining.
  if (!io_.empty()) {
    io_[0]->loop.post([this] {
      io_[0]->loop.remove_fd(listener_.fd());
      listener_.close();
    });
  }
  for (auto& io : io_) {
    IoLoop* iop = io.get();
    iop->loop.post([this, iop] {
      auto conns = iop->conns;  // disconnect mutates the set
      for (const auto& c : conns) conn_disconnect(c, nullptr);
    });
  }
  for (auto& io : io_) io->loop.stop();
  for (auto& io : io_) {
    if (io->thread.joinable()) io->thread.join();
  }
  if (workers_) workers_->shutdown();
  if (replica_.joinable()) replica_.join();
  if (housekeeper_.joinable()) housekeeper_.join();
  std::vector<std::thread> replicas;
  {
    std::lock_guard lock(replica_threads_mutex_);
    replicas.swap(replica_threads_);
  }
  for (auto& t : replicas) {
    if (t.joinable()) t.join();
  }
  io_.clear();
  workers_.reset();
  progress_cv_.notify_all();
}

ProblemId Server::submit_problem(std::shared_ptr<DataManager> dm) {
  std::lock_guard lock(core_mutex_);
  ProblemId id = core_.submit_problem(std::move(dm));
  progress_cv_.notify_all();
  return id;
}

bool Server::wait_for_problem(ProblemId id, double timeout_s) {
  std::unique_lock lock(core_mutex_);
  auto done = [&] { return core_.problem_complete(id) || !running_.load(); };
  if (timeout_s < 0) {
    progress_cv_.wait(lock, done);
  } else {
    progress_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), done);
  }
  return core_.problem_complete(id);
}

bool Server::wait_for_all(double timeout_s) {
  std::unique_lock lock(core_mutex_);
  auto done = [&] { return core_.all_complete() || !running_.load(); };
  if (timeout_s < 0) {
    progress_cv_.wait(lock, done);
  } else {
    progress_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), done);
  }
  return core_.all_complete();
}

std::vector<std::byte> Server::final_result(ProblemId id) {
  std::lock_guard lock(core_mutex_);
  return core_.final_result(id);
}

std::vector<std::byte> Server::checkpoint() {
  std::lock_guard lock(core_mutex_);
  ByteWriter w;
  core_.checkpoint(w);
  return w.take();
}

void Server::restore_checkpoint(std::span<const std::byte> data) {
  std::lock_guard lock(core_mutex_);
  ByteReader r(data);
  core_.restore(r);
  r.expect_end();
  progress_cv_.notify_all();
}

bool Server::save_checkpoint() {
  if (config_.checkpoint_path.empty()) return false;
  std::vector<std::byte> blob;
  std::size_t problems = 0;
  std::size_t in_flight = 0;
  double t = 0;
  {
    std::lock_guard lock(core_mutex_);
    ByteWriter w;
    core_.checkpoint(w);
    blob = w.take();
    problems = core_.problem_count();
    in_flight = core_.in_flight_units();
    t = now();
  }
  write_checkpoint_file(config_.checkpoint_path, blob);
  record_checkpoint_saved(config_.tracer, t, blob.size(), problems, in_flight);
  return true;
}

SchedulerStats Server::stats() {
  std::lock_guard lock(core_mutex_);
  return core_.stats();
}

std::vector<ClientInfo> Server::client_stats() {
  std::lock_guard lock(core_mutex_);
  return core_.all_client_stats();
}

namespace {
std::string json_num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}
}  // namespace

std::string Server::stats_json(bool include_clients) {
  SchedulerStats s;
  std::vector<ClientInfo> clients;
  std::uint64_t evicted_completed;
  std::size_t pending;
  std::uint64_t term;
  std::uint64_t wal_lsn;
  double t;
  {
    std::lock_guard lock(core_mutex_);
    s = core_.stats();
    if (include_clients) clients = core_.all_client_stats();
    evicted_completed = core_.evicted_units_completed();
    pending = core_.pending_units();
    term = core_.epoch();
    wal_lsn = wal_ ? wal_->next_lsn() : 0;
    t = now();
  }
  // Mirrored as a gauge so registry-only consumers (render_text dumps,
  // hdcs_top's metrics pane) see the backlog too.
  obs::Registry::global().gauge("scheduler.units_pending")
      .set(static_cast<double>(pending));
  std::ostringstream out;
  out << "{\"schema\":" << obs::kTraceSchemaVersion << ",\"now\":" << json_num(t)
      << ",\"simd_tier\":\"" << to_string(simd_tier()) << "\""
      << ",\"role\":\"" << (standby_.load() ? "standby" : "primary") << "\""
      << ",\"durability\":\""
      << (durability() == Durability::kDurable
              ? "durable"
              : durability() == Durability::kDegraded ? "degraded" : "none")
      << "\""
      << ",\"epoch\":" << term << ",\"wal_lsn\":" << wal_lsn
      << ",\"connected_clients\":" << connected_.load() << ",\"scheduler\":{"
      << "\"units_issued\":" << s.units_issued
      << ",\"units_reissued\":" << s.units_reissued
      << ",\"units_hedged\":" << s.units_hedged
      << ",\"results_accepted\":" << s.results_accepted
      << ",\"duplicate_results_dropped\":" << s.duplicate_results_dropped
      << ",\"stale_results_dropped\":" << s.stale_results_dropped
      << ",\"work_requests_unserved\":" << s.work_requests_unserved
      << ",\"clients_expired\":" << s.clients_expired
      << ",\"units_quarantined\":" << s.units_quarantined
      << ",\"units_replicated\":" << s.units_replicated
      << ",\"replicas_issued\":" << s.replicas_issued
      << ",\"spot_checks\":" << s.spot_checks
      << ",\"votes_recorded\":" << s.votes_recorded
      << ",\"vote_quorums\":" << s.vote_quorums
      << ",\"vote_mismatches\":" << s.vote_mismatches
      << ",\"results_rejected_mismatch\":" << s.results_rejected_mismatch
      << ",\"results_rejected_digest\":" << s.results_rejected_digest
      << ",\"results_rejected_blacklisted\":" << s.results_rejected_blacklisted
      << ",\"results_rejected_stale_epoch\":" << s.results_rejected_stale_epoch
      << ",\"donors_blacklisted\":" << s.donors_blacklisted
      << ",\"clients_evicted\":" << s.clients_evicted
      << ",\"evicted_units_completed\":" << evicted_completed
      << ",\"units_pending\":" << pending << "}";
  if (include_clients) {
    out << ",\"clients\":[";
    bool first = true;
    for (const auto& c : clients) {
      if (!first) out << ",";
      first = false;
      out << "{\"id\":" << c.id << ",\"name\":\"" << obs::json_escape(c.name)
          << "\",\"active\":" << (c.active ? "true" : "false")
          << ",\"benchmark_ops_per_sec\":" << json_num(c.stats.benchmark_ops_per_sec)
          << ",\"ewma_ops_per_sec\":" << json_num(c.stats.ewma_ops_per_sec)
          << ",\"units_completed\":" << c.stats.units_completed
          << ",\"outstanding\":" << c.stats.outstanding
          << ",\"last_seen\":" << json_num(c.stats.last_seen)
          << ",\"rep\":" << json_num(c.reputation)
          << ",\"blacklisted\":" << (c.blacklisted ? "true" : "false")
          << ",\"vote_wins\":" << c.vote_wins
          << ",\"vote_losses\":" << c.vote_losses << "}";
    }
    out << "]";
  }
  out << ",\"metrics\":" << obs::Registry::global().render_json() << "}";
  return out.str();
}

int Server::connected_clients() { return connected_.load(); }

void Server::accept_ready() {
  // Loop-0 thread. Drain the (non-blocking) listener: one EPOLLIN can
  // cover a whole burst of queued connections.
  while (running_.load()) {
    std::optional<net::TcpStream> stream;
    try {
      stream = listener_.accept(0);
    } catch (const IoError& e) {
      if (running_.load()) LOG_ERROR("accept failed: " << e.what());
      return;
    }
    if (!stream) return;
    IoLoop& target = *io_[next_loop_++ % io_.size()];
    if (&target == io_[0].get()) {
      register_conn(target, std::move(*stream));
    } else {
      auto s = std::make_shared<net::TcpStream>(std::move(*stream));
      target.loop.post(
          [this, &target, s] { register_conn(target, std::move(*s)); });
    }
  }
}

void Server::register_conn(IoLoop& io, net::TcpStream stream) {
  if (!running_.load()) return;
  auto c = std::make_shared<Conn>();
  c->stream = std::move(stream);
  c->io = &io;
  c->stream.set_nonblocking(true);
  c->armed = EPOLLIN;
  io.loop.add_fd(c->stream.fd(), EPOLLIN,
                 [this, c](std::uint32_t events) { conn_event(c, events); });
  io.conns.insert(c);
  connected_gauge().set(connected_.fetch_add(1) + 1);
}

void Server::conn_event(std::shared_ptr<Conn> c, std::uint32_t events) {
  if (c->closed) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    conn_disconnect(std::move(c), "peer closed");
    return;
  }
  try {
    if (events & EPOLLOUT) conn_flush(c);
    if (c->closed) return;
    if ((events & EPOLLIN) && !c->paused) conn_readable(c);
  } catch (const net::ConnectionClosed&) {
    LOG_INFO("client connection closed (client " << c->client_id.load()
                                                 << ")");
    conn_disconnect(std::move(c), nullptr);
  } catch (const Error& e) {
    LOG_WARN("handler error (client " << c->client_id.load()
                                      << "): " << e.what());
    conn_disconnect(std::move(c), nullptr);
  }
}

void Server::conn_readable(const std::shared_ptr<Conn>& c) {
  // Same fault-injection points the blocking recv path has: a delay, a
  // dropped read (connection torn down), then a corrupted byte among the
  // received bytes — which the frame CRCs must catch downstream.
  net::FaultPlan* fp = net::installed_fault_plan();
  if (fp) {
    if (double d = fp->delay_s(); d > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(d));
    }
    if (fp->drop_recv()) {
      conn_disconnect(c, nullptr);
      return;
    }
  }
  std::array<std::byte, 16384> buf;
  std::vector<net::Message> msgs;
  bool progressed = false;
  // Bounded per event so one firehose sender cannot starve the loop's
  // other connections; level-triggered epoll re-fires for the rest.
  for (int round = 0; round < 64; ++round) {
    auto n = c->stream.recv_nb(buf);
    if (!n) break;  // EAGAIN
    if (*n == 0) {  // orderly EOF
      LOG_INFO("client connection closed (client " << c->client_id.load()
                                                   << ")");
      conn_disconnect(c, nullptr);
      return;
    }
    progressed = true;
    std::span<std::byte> data(buf.data(), *n);
    if (fp) {
      if (auto idx = fp->corrupt_byte(*n)) data[*idx] ^= std::byte{0x20};
    }
    c->reader.feed(data, msgs);  // ProtocolError -> conn_event's catch
  }
  if (c->reader.mid_frame()) {
    // Re-arm on progress: the guard fires on *silence* mid-frame, exactly
    // like the blocking path's recv_all stall timeout.
    if (progressed ||
        c->read_deadline == std::chrono::steady_clock::time_point{}) {
      c->read_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(net::kMidStreamStallMs);
    }
  } else {
    c->read_deadline = {};
  }
  for (auto& m : msgs) c->inbox.push_back(std::move(m));
  conn_pump(c);
}

void Server::conn_pump(const std::shared_ptr<Conn>& c) {
  if (c->busy || c->closed || c->inbox.empty()) return;
  net::Message request = std::move(c->inbox.front());
  c->inbox.pop_front();
  c->busy = true;
  auto self = c;
  bool accepted = workers_->submit([this, self,
                                    request = std::move(request)]() mutable {
    HandlerOutcome out = handle_request(self, request);
    self->io->loop.post([this, self, out = std::move(out)]() mutable {
      deliver(self, std::move(out));
    });
  });
  if (!accepted) c->busy = false;  // shutting down; stop() closes the conn
}

void Server::deliver(const std::shared_ptr<Conn>& c, HandlerOutcome out) {
  if (out.became_client) c->client_id.store(out.became_client);
  if (out.clear_client) c->client_id.store(0);
  if (c->closed) {
    // The connection died while the worker was busy: nothing to send, but
    // the budget charge must come back, and a client that joined through a
    // now-dead connection must be swept out of the scheduler.
    if (out.inflight_charged) {
      blob_inflight_bytes_.fetch_sub(out.inflight_charged);
    }
    if (out.became_client) client_left_async(out.became_client);
    return;
  }
  c->busy = false;
  if (out.replica) {
    detach_replica(c, std::move(out.request));
    return;
  }
  for (std::size_t i = 0; i < out.chunks.size(); ++i) {
    const bool last = i + 1 == out.chunks.size();
    conn_enqueue(c, std::move(out.chunks[i]),
                 last ? out.inflight_charged : 0);
  }
  if (out.chunks.empty() && out.inflight_charged) {
    blob_inflight_bytes_.fetch_sub(out.inflight_charged);
  }
  if (out.close) c->close_after_flush = true;
  conn_flush(c);
  if (!c->closed) conn_pump(c);
}

void Server::conn_enqueue(const std::shared_ptr<Conn>& c,
                          std::vector<std::byte> bytes, std::size_t release) {
  if (c->closed) {
    if (release) blob_inflight_bytes_.fetch_sub(release);
    return;
  }
  c->outq_bytes += bytes.size();
  std::size_t prev = write_hwm_.load(std::memory_order_relaxed);
  while (c->outq_bytes > prev &&
         !write_hwm_.compare_exchange_weak(prev, c->outq_bytes)) {
  }
  loop_io_metrics().write_queue_hwm.set(
      static_cast<double>(write_hwm_.load(std::memory_order_relaxed)));
  c->outq.push_back(Conn::Chunk{std::move(bytes), 0, release});
}

void Server::conn_flush(const std::shared_ptr<Conn>& c) {
  if (c->closed) return;
  net::FaultPlan* fp = net::installed_fault_plan();
  try {
    while (!c->outq.empty()) {
      Conn::Chunk& ch = c->outq.front();
      std::span<const std::byte> rest = std::span(ch.bytes).subspan(ch.off);
      if (fp && !rest.empty()) {
        if (double d = fp->delay_s(); d > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(d));
        }
        if (auto keep = fp->truncate_send(rest.size())) {
          // Mirror the blocking path: deliver only a prefix so the peer
          // sees a torn frame, then break the connection.
          if (*keep > 0) c->stream.send_nb(rest.subspan(0, *keep));
          conn_disconnect(c, nullptr);
          return;
        }
      }
      auto n = c->stream.send_nb(rest);
      if (!n) {
        loop_io_metrics().eagain_writes.inc();
        break;
      }
      ch.off += *n;
      c->outq_bytes -= *n;
      if (*n > 0) c->write_deadline = {};  // progress: the donor is draining
      if (ch.off == ch.bytes.size()) {
        if (ch.release) blob_inflight_bytes_.fetch_sub(ch.release);
        c->outq.pop_front();
      } else if (*n == 0) {
        break;
      }
    }
  } catch (const net::ConnectionClosed&) {
    conn_disconnect(c, nullptr);
    return;
  }
  if (c->outq.empty()) {
    c->want_write = false;
    c->write_deadline = {};
    if (c->close_after_flush) {
      conn_disconnect(c, nullptr);
      return;
    }
  } else {
    c->want_write = true;
    if (c->write_deadline == std::chrono::steady_clock::time_point{}) {
      c->write_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config_.write_stall_timeout_s));
    }
  }
  // Backpressure: a queue past the bound stops reads (no new requests, no
  // new responses) until the donor drains half of it. Kernel-buffer-full
  // is not a disconnect — only a full *stall* (sweep_conns) is.
  if (!c->paused && c->outq_bytes > config_.max_write_buffer_bytes) {
    c->paused = true;
    loop_io_metrics().backpressure_stalls.inc();
  } else if (c->paused && c->outq_bytes <= config_.max_write_buffer_bytes / 2) {
    c->paused = false;
  }
  sync_conn_events(c);
}

void Server::sync_conn_events(const std::shared_ptr<Conn>& c) {
  if (c->closed) return;
  std::uint32_t want = (c->paused ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
                       (c->want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  if (want == c->armed) return;
  c->io->loop.modify_fd(c->stream.fd(), want);
  c->armed = want;
}

void Server::sweep_conns(IoLoop& io) {
  const auto now = std::chrono::steady_clock::now();
  constexpr std::chrono::steady_clock::time_point kUnset{};
  std::vector<std::shared_ptr<Conn>> stalled_read;
  std::vector<std::shared_ptr<Conn>> stalled_write;
  for (const auto& c : io.conns) {
    if (c->read_deadline != kUnset && now >= c->read_deadline &&
        c->reader.mid_frame()) {
      stalled_read.push_back(c);
    } else if (c->write_deadline != kUnset && now >= c->write_deadline) {
      stalled_write.push_back(c);
    }
  }
  for (auto& c : stalled_read) {
    LOG_WARN("handler error (client "
             << c->client_id.load() << "): peer stalled mid-read: got "
             << c->reader.pending_bytes() << " bytes of an unfinished frame");
    conn_disconnect(std::move(c), nullptr);
  }
  for (auto& c : stalled_write) {
    loop_io_metrics().connections_shed.inc();
    LOG_WARN("shedding stalled connection (client "
             << c->client_id.load() << "): " << c->outq_bytes
             << " bytes undrained for " << config_.write_stall_timeout_s
             << "s");
    conn_disconnect(std::move(c), nullptr);
  }
}

void Server::conn_disconnect(std::shared_ptr<Conn> c, const char* reason) {
  if (c->closed) return;
  c->closed = true;
  c->io->loop.remove_fd(c->stream.fd());
  for (const auto& ch : c->outq) {
    if (ch.release) blob_inflight_bytes_.fetch_sub(ch.release);
  }
  c->outq.clear();
  c->outq_bytes = 0;
  c->inbox.clear();
  c->stream.close();
  c->io->conns.erase(c);
  connected_gauge().set(connected_.fetch_sub(1) - 1);
  if (reason) {
    LOG_WARN("handler error (client " << c->client_id.load()
                                      << "): " << reason);
  }
  if (ClientId id = c->client_id.exchange(0)) client_left_async(id);
}

void Server::client_left_async(ClientId id) {
  workers_->submit([this, id] {
    {
      std::lock_guard lock(core_mutex_);
      double t = now();
      core_.client_left(id, t);
      WalRecord rec;
      rec.op = WalOp::kClientLeft;
      rec.now = t;
      rec.arg = id;
      log_record(std::move(rec));
    }
    progress_cv_.notify_all();
  });
}

void Server::detach_replica(const std::shared_ptr<Conn>& c,
                            net::Message hello) {
  // The connection becomes a long-lived replication session: pull it off
  // the loop, restore blocking mode, and give it a dedicated thread (hot
  // standbys are few; the blocking serve_replica path stays byte-exact).
  c->closed = true;
  c->io->loop.remove_fd(c->stream.fd());
  c->io->conns.erase(c);
  net::TcpStream stream = std::move(c->stream);
  try {
    stream.set_nonblocking(false);
    for (const auto& ch : c->outq) {
      stream.send_all(std::span(ch.bytes).subspan(ch.off));
    }
  } catch (const Error& e) {
    LOG_WARN("replica handoff failed: " << e.what());
    connected_gauge().set(connected_.fetch_sub(1) - 1);
    return;
  }
  std::lock_guard lock(replica_threads_mutex_);
  replica_threads_.emplace_back(
      [this, s = std::move(stream), hello = std::move(hello)]() mutable {
        serve_replica(s, hello);
        connected_gauge().set(connected_.fetch_sub(1) - 1);
      });
}

void Server::housekeeping_loop() {
  double last_checkpoint = now();
  double last_rearm = now();
  double last_budget_check = now();
  while (running_.load()) {
    // A standby's shadow core is driven only by the primary's record
    // stream (which includes the primary's own Tick records with the
    // primary's clock); ticking it locally would double-expire leases.
    if (!standby_.load()) {
      {
        std::lock_guard lock(core_mutex_);
        double t = now();
        core_.tick(t);
        WalRecord rec;
        rec.op = WalOp::kTick;
        rec.now = t;
        log_record(std::move(rec));  // doubles as a replication keepalive
        try {
          maybe_compact_locked(t);
        } catch (const Error& e) {
          // A full disk must not kill scheduling; retry next interval.
          LOG_ERROR("wal compaction failed: " << e.what());
        }
      }
      progress_cv_.notify_all();
      if (!config_.checkpoint_path.empty() &&
          now() - last_checkpoint >= config_.checkpoint_interval_s) {
        last_checkpoint = now();
        try {
          save_checkpoint();
        } catch (const Error& e) {
          LOG_ERROR("checkpoint autosave failed: " << e.what());
          // Checkpoint-only durability: a failed autosave IS the
          // durability loss (there is no WAL underneath to catch it).
          if (!wal_) {
            std::lock_guard lock(core_mutex_);
            degrade_locked("checkpoint_save", now());
          }
        }
      }
      // Degraded -> durable re-arm: rebuild the WAL (or prove a
      // checkpoint lands) on a steady cadence until the disk recovers.
      if (static_cast<Durability>(durability_.load()) ==
              Durability::kDegraded &&
          !storage_failed_.load() &&
          now() - last_rearm >= config_.rearm_retry_s) {
        last_rearm = now();
        try_rearm();
      }
      // Disk-budget watchdog: compaction folds segments into one base
      // snapshot, so forcing it under pressure sheds WAL bytes before the
      // device itself runs dry (which would degrade us the hard way).
      if (wal_ && config_.wal_dir_budget_bytes > 0 &&
          static_cast<Durability>(durability_.load()) ==
              Durability::kDurable &&
          now() - last_budget_check >= 2.0) {
        last_budget_check = now();
        const std::uint64_t used = vfs::dir_bytes(config_.wal_dir);
        if (used > config_.wal_dir_budget_bytes) {
          obs::Registry::global().counter("storage.budget_compactions").inc();
          try {
            compact_wal();
          } catch (const Error& e) {
            LOG_ERROR("budget compaction failed: " << e.what());
          }
          const std::uint64_t after = vfs::dir_bytes(config_.wal_dir);
          if (after > config_.wal_dir_budget_bytes) {
            LOG_WARN("wal dir still over budget after compaction ("
                     << after << " > " << config_.wal_dir_budget_bytes
                     << " bytes)");
          }
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(config_.tick_interval_s));
  }
}

std::uint64_t Server::epoch() {
  std::lock_guard lock(core_mutex_);
  return core_.epoch();
}

void Server::drain() {
  draining_.store(true);
  progress_cv_.notify_all();
}

void Server::compact_wal() {
  std::lock_guard lock(core_mutex_);
  if (!wal_) return;
  ByteWriter w;
  core_.snapshot_exact(w);
  auto snap = w.take();
  wal_->compact(snap, now());
  last_compact_lsn_ = wal_->next_lsn();
}

void Server::maybe_compact_locked(double t) {
  if (!wal_ || config_.wal_compact_every == 0) return;
  if (wal_->next_lsn() - last_compact_lsn_ < config_.wal_compact_every) return;
  ByteWriter w;
  core_.snapshot_exact(w);
  auto snap = w.take();
  wal_->compact(snap, t);
  last_compact_lsn_ = wal_->next_lsn();
}

void Server::log_record(WalRecord rec) {
  // While degraded the WAL is frozen (its segment failed; only compact()
  // rebuilds it) — records flow to the replica feeds only, numbered by
  // repl_lsn_, so a hot standby stays exact through the primary's bad-disk
  // window.
  const bool degraded = static_cast<Durability>(durability_.load()) ==
                        Durability::kDegraded;
  const bool use_wal = wal_ != nullptr && !degraded;
  if (!use_wal && feeds_.empty()) return;
  rec.lsn = use_wal ? wal_->next_lsn() : repl_lsn_;
  bool append_failed = false;
  if (use_wal) {
    try {
      wal_->append(rec);
    } catch (const Error& e) {
      // The record still goes out on the feeds below — the standby's
      // shadow core must apply everything the primary's live core applied,
      // or post-degrade records would hit a diverged shadow — and only
      // then do we degrade (whose own kEpoch record is feeds-only).
      LOG_ERROR("wal append failed: " << e.what());
      append_failed = true;
    }
  }
  repl_lsn_ = rec.lsn + 1;
  if (!feeds_.empty()) {
    auto bytes = encode_wal_record(rec);
    for (const auto& feed : feeds_) feed->push(bytes);
  }
  if (append_failed) degrade_locked("wal_append", rec.now);
}

void Server::enter_new_term(const char* reason, double t) {
  std::uint64_t next = core_.epoch() + 1;
  core_.bump_epoch(next);
  WalRecord rec;
  rec.op = WalOp::kEpoch;
  rec.now = t;
  rec.arg = next;
  log_record(std::move(rec));
  // Every active client row belongs to the previous term — its connection
  // died with the old server. Sweeping them requeues their leases now
  // instead of waiting out the lease timeout; reconnecting donors re-Hello
  // and get fresh ids.
  for (const auto& c : core_.all_client_stats()) {
    if (!c.active) continue;
    core_.client_left(c.id, t);
    WalRecord left;
    left.op = WalOp::kClientLeft;
    left.now = t;
    left.arg = c.id;
    log_record(std::move(left));
  }
  if (wal_ && !wal_->failed()) {
    try {
      wal_->sync();
    } catch (const Error& e) {
      LOG_ERROR("wal sync failed entering new term: " << e.what());
      degrade_locked("wal_sync", t);
    }
  }
  LOG_INFO("entered epoch " << core_.epoch() << " (" << reason << ")");
}

void Server::degrade_locked(const char* reason, double t) {
  const auto current = static_cast<Durability>(durability_.load());
  if (current != Durability::kDurable) return;
  durability_.store(static_cast<int>(Durability::kDegraded));
  auto& reg = obs::Registry::global();
  reg.gauge("server.durability").set(static_cast<double>(durability_.load()));
  reg.counter("server.durability_degradations").inc();
  // The feeds take over the lsn sequence exactly where the WAL stopped.
  if (wal_) repl_lsn_ = std::max(repl_lsn_, wal_->next_lsn());
  // Fence the degraded window: +2, not +1, so a crash-while-degraded
  // restart (replay durable state, then enter_new_term's +1) lands on a
  // DIFFERENT epoch than this one — nothing issued or accepted while
  // non-durable can ever be merged into the revived durable core.
  const std::uint64_t next = core_.epoch() + 2;
  core_.bump_epoch(next);
  WalRecord rec;
  rec.op = WalOp::kEpoch;
  rec.now = t;
  rec.arg = next;
  log_record(std::move(rec));  // feeds-only: durability_ is already degraded
  if (config_.tracer) {
    config_.tracer->event(t, "durability_degraded")
        .str("reason", reason)
        .u64("epoch", next);
  }
  if (config_.durability_mode == DurabilityMode::kFailStop) {
    storage_failed_.store(true);
    draining_.store(true);
    LOG_ERROR("durability lost (" << reason << "): fail-stop — draining, "
              << "epoch " << next);
  } else {
    LOG_ERROR("durability degraded (" << reason << "): continuing non-durable "
              << "at epoch " << next << "; re-arm every "
              << config_.rearm_retry_s << "s");
  }
  progress_cv_.notify_all();
}

bool Server::try_rearm() {
  std::lock_guard lock(core_mutex_);
  if (static_cast<Durability>(durability_.load()) != Durability::kDegraded) {
    return true;
  }
  const double t = now();
  try {
    if (wal_) {
      // Rebuild: fresh base snapshot at the feeds' lsn, fresh segment. A
      // still-broken disk throws out of the checkpoint write and we stay
      // degraded for the next retry.
      ByteWriter w;
      core_.snapshot_exact(w);
      auto snap = w.take();
      wal_->reset(snap, repl_lsn_, t);
      wal_->sync();
      last_compact_lsn_ = wal_->next_lsn();
    } else {
      ByteWriter w;
      core_.checkpoint(w);
      auto blob = w.take();
      write_checkpoint_file(config_.checkpoint_path, blob);
      record_checkpoint_saved(config_.tracer, t, blob.size(),
                              core_.problem_count(), core_.in_flight_units());
    }
  } catch (const Error& e) {
    LOG_WARN("durability re-arm failed: " << e.what());
    return false;
  }
  durability_.store(static_cast<int>(Durability::kDurable));
  auto& reg = obs::Registry::global();
  reg.gauge("server.durability").set(static_cast<double>(durability_.load()));
  reg.counter("server.durability_restores").inc();
  if (config_.tracer) {
    config_.tracer->event(t, "durability_restored").u64("epoch", core_.epoch());
  }
  LOG_INFO("durability restored (epoch " << core_.epoch() << ")");
  return true;
}

Server::HandlerOutcome Server::handle_request(const std::shared_ptr<Conn>& c,
                                              const net::Message& request) {
  HandlerOutcome out;
  // Retryable NACK: v7+ donors get a structured RetryLater (they back off
  // and keep their buffered state); older donors get an error frame and
  // ride their existing reconnect/backoff paths.
  auto retry_or_error = [this](const net::Message& req, const char* reason) {
    obs::Registry::global().counter("server.retry_laters").inc();
    if (req.version >= 7) {
      RetryLaterPayload p;
      p.retry_after_s = config_.retry_later_s;
      p.reason = reason;
      return encode_retry_later(p, req.correlation);
    }
    return net::make_error(req.correlation,
                           std::string("retry later: ") + reason);
  };
  net::Message response;
  bool have_response = true;
  bool send_bulk = false;
  std::vector<std::byte> bulk;
  // FetchBlobs bodies: shared_ptrs collected under the core lock, encoded
  // (and compressed) after the response frame without holding it.
  std::vector<std::pair<std::uint64_t,
                        std::shared_ptr<const std::vector<std::byte>>>>
      blob_bodies;
  ClientId blob_client = 0;
  std::size_t inflight_charged = 0;
  ClientId client_id = 0;  // Hello-assigned, mirrored into the outcome
  Stopwatch handle_timer;

  try {
      if (standby_.load() && request.type != net::MessageType::kFetchStats) {
        // An unpromoted standby serves monitoring but no work: donors see
        // an error, drop the session, and fail over to the next endpoint
        // in their --servers list.
        response = net::make_error(request.correlation, "standby: not serving");
      } else if (draining_.load() &&
                 (request.type == net::MessageType::kRequestWork ||
                  request.type == net::MessageType::kHeartbeat)) {
        // Graceful shutdown: in-flight submissions still land, but no new
        // work goes out and polling donors are told to disconnect.
        response.type = net::MessageType::kShutdown;
        response.correlation = request.correlation;
      } else if (storage_failed_.load() &&
                 (request.type == net::MessageType::kHello ||
                  request.type == net::MessageType::kSubmitResult)) {
        // Fail-stop after a storage fault: no new sessions, and results
        // are NACKed rather than accepted-but-lost — the donor keeps its
        // buffered copy for the restarted server. (FetchStats stays up so
        // operators can see why; RequestWork/Heartbeat already get
        // kShutdown from the draining guard above.)
        response = retry_or_error(request, "fail_stop");
      } else switch (request.type) {
        case net::MessageType::kHello: {
          auto hello = decode_hello(request);
          std::lock_guard lock(core_mutex_);
          double t = now();
          if (config_.max_clients > 0 &&
              core_.active_client_count() >= config_.max_clients) {
            // Shed before joining: the donor never becomes scheduler state,
            // so no lease/eviction bookkeeping is spent on it.
            obs::Registry::global().counter("server.clients_shed").inc();
            if (config_.tracer) {
              config_.tracer->event(t, "retry_later")
                  .str("reason", "max_clients")
                  .str("name", hello.client_name);
            }
            response = retry_or_error(request, "max_clients");
            break;
          }
          client_id = core_.client_joined(hello.client_name,
                                          hello.benchmark_ops_per_sec, t);
          WalRecord rec;
          rec.op = WalOp::kClientJoined;
          rec.now = t;
          rec.arg = client_id;
          rec.name = hello.client_name;
          rec.benchmark = hello.benchmark_ops_per_sec;
          log_record(std::move(rec));
          HelloAckPayload ack;
          ack.client_id = client_id;
          ack.heartbeat_interval_s = config_.heartbeat_interval_s;
          response = encode_hello_ack(ack, request.correlation);
          break;
        }
        case net::MessageType::kRequestWork: {
          ClientId id = decode_request_work(request);
          std::lock_guard lock(core_mutex_);
          double t = now();
          auto unit = core_.request_work(id, t);
          {
            // Logged even when nothing was issued: an unserved request
            // still mutates stats and policy state, and replay must walk
            // the exact same path (an InputError above skips the log, the
            // same way it skips the core mutation).
            WalRecord rec;
            rec.op = WalOp::kRequestWork;
            rec.now = t;
            rec.arg = id;
            log_record(std::move(rec));
          }
          if (unit) {
            if (request.version >= 4) {
              response = encode_work_assignment(*unit, request.correlation,
                                                request.version);
            } else {
              // Legacy donor: inline each referenced blob by appending its
              // bytes to the payload, in blob order — applications lay
              // their payloads out so this flattened form decodes with the
              // pre-v4 logic.
              WorkUnit flat = *unit;
              for (const WorkBlob& blob : flat.blobs) {
                auto bytes = core_.blob_bytes(blob.digest);
                if (bytes) {
                  flat.payload.insert(flat.payload.end(), bytes->begin(),
                                      bytes->end());
                }
              }
              flat.blobs.clear();
              response =
                  encode_work_assignment(flat, request.correlation, 3);
            }
          } else {
            NoWorkPayload p;
            p.retry_after_s = config_.no_work_retry_s;
            p.all_problems_complete = core_.all_complete();
            response = encode_no_work(p, request.correlation);
          }
          break;
        }
        case net::MessageType::kSubmitResult: {
          auto [id, result] = decode_submit_result(request);
          ResultAckPayload ack;
          {
            std::lock_guard lock(core_mutex_);
            double t = now();
            ack.accepted = core_.submit_result(id, result, t);
            WalRecord rec;
            rec.op = WalOp::kSubmitResult;
            rec.now = t;
            rec.arg = id;
            rec.result = result;
            log_record(std::move(rec));
            // The accepted result must be durable before the donor learns
            // it was accepted — the ack is what lets it drop its buffered
            // copy, so after this fsync a kill -9 loses nothing. Once
            // degraded there is nothing left to fsync; kContinue acks
            // anyway (accepted-but-non-durable, epoch already fenced),
            // kFailStop NACKs below so the donor keeps its copy.
            if (wal_ && ack.accepted &&
                static_cast<Durability>(durability_.load()) ==
                    Durability::kDurable) {
              try {
                wal_->sync();
              } catch (const Error& e) {
                LOG_ERROR("wal sync failed: " << e.what());
                degrade_locked("wal_sync", t);
              }
            }
          }
          progress_cv_.notify_all();
          if (storage_failed_.load()) {
            response = retry_or_error(request, "fail_stop");
          } else {
            response = encode_result_ack(ack, request.correlation);
          }
          break;
        }
        case net::MessageType::kFetchProblemData: {
          auto fetch = decode_fetch_problem_data(request);
          ProblemDataHeaderPayload header;
          header.problem_id = fetch.problem_id;
          {
            std::lock_guard lock(core_mutex_);
            const DataManager& dm = core_.data_manager(fetch.problem_id);
            header.algorithm_name = dm.algorithm_name();
            header.data_bytes = core_.problem_data_bytes(fetch.problem_id);
            header.data_digest = core_.problem_data_digest(fetch.problem_id);
            if (request.version < 4) {
              // v3: the data itself follows on the bulk channel. v4 donors
              // instead resolve data_digest through their cache/FetchBlobs.
              bulk = *core_.blob_bytes(header.data_digest);
              send_bulk = true;
            }
          }
          response = encode_problem_data_header(header, request.correlation,
                                                request.version);
          break;
        }
        case net::MessageType::kFetchBlobs: {
          auto fetch = decode_fetch_blobs(request);
          BlobDataPayload reply;
          {
            std::lock_guard lock(core_mutex_);
            for (std::uint64_t digest : fetch.digests) {
              auto bytes = core_.blob_bytes(digest);
              bool ok = bytes && bytes->size() <= config_.max_blob_bytes;
              reply.blobs.push_back({digest, ok});
              if (ok) blob_bodies.emplace_back(digest, std::move(bytes));
            }
          }
          blob_client = fetch.client_id;
          // Global in-flight budget: bodies sit in memory from here until
          // the socket writes below finish, so a burst of cold donors can
          // multiply resident bytes. Over budget -> shed the whole fetch
          // (the donor retries; partial replies would poison its cache
          // accounting).
          if (config_.blob_inflight_budget_bytes > 0 && !blob_bodies.empty()) {
            std::size_t total = 0;
            for (const auto& [digest, bytes] : blob_bodies) {
              total += bytes->size();
            }
            if (blob_inflight_bytes_.load() + total >
                config_.blob_inflight_budget_bytes) {
              blob_bodies.clear();
              obs::Registry::global().counter("server.blob_fetches_shed").inc();
              if (config_.tracer) {
                config_.tracer->event(now(), "retry_later")
                    .str("reason", "blob_budget")
                    .str("name", "client:" + std::to_string(fetch.client_id));
              }
              response = retry_or_error(request, "blob_budget");
              break;
            }
            blob_inflight_bytes_.fetch_add(total);
            inflight_charged = total;
          }
          response = encode_blob_data(reply, request.correlation);
          break;
        }
        case net::MessageType::kHeartbeat: {
          ClientId id = decode_heartbeat(request);
          {
            std::lock_guard lock(core_mutex_);
            double t = now();
            core_.heartbeat(id, t);
            WalRecord rec;
            rec.op = WalOp::kHeartbeat;
            rec.now = t;
            rec.arg = id;
            log_record(std::move(rec));
          }
          response.type = net::MessageType::kHeartbeatAck;
          response.correlation = request.correlation;
          break;
        }
        case net::MessageType::kFetchStats: {
          auto fetch = decode_fetch_stats(request);
          StatsSnapshotPayload snap;
          snap.json = stats_json(fetch.include_clients);
          response = encode_stats_snapshot(snap, request.correlation);
          break;
        }
        case net::MessageType::kGoodbye: {
          ClientId id = decode_goodbye(request);
          {
            std::lock_guard lock(core_mutex_);
            double t = now();
            core_.client_left(id, t);
            WalRecord rec;
            rec.op = WalOp::kClientLeft;
            rec.now = t;
            rec.arg = id;
            log_record(std::move(rec));
          }
          progress_cv_.notify_all();
          // Client is gone: no response, drop the conn's id (the departure
          // is already recorded) and close once the queue drains.
          have_response = false;
          out.clear_client = true;
          out.close = true;
          break;
        }
        case net::MessageType::kReplicaHello: {
          // The connection becomes a replication session: the loop detaches
          // it onto a dedicated blocking thread (serve_replica cleans up
          // its own feed registration).
          out.replica = true;
          out.request = request;
          return out;
        }
        default:
          response = net::make_error(request.correlation,
                                     std::string("unexpected message type: ") +
                                         net::to_string(request.type));
          break;
      }
  } catch (const Error& e) {
    // A bad request (unknown problem, expired client, malformed payload)
    // must not kill the connection: report it to the peer.
    LOG_WARN("request failed (client "
             << (client_id ? client_id : c->client_id.load())
             << "): " << e.what());
    response = net::make_error(request.correlation, e.what());
  }

  if (obs::Histogram* h = handler_histogram(request.type)) {
    h->observe(handle_timer.seconds());
  }
  out.became_client = client_id;
  out.inflight_charged = inflight_charged;
  if (have_response) {
    // Answer at the requester's protocol version: a v3 donor must never
    // see a v4 frame. Frames and bulk bodies are encoded here, on the
    // worker — the loop thread only moves bytes.
    response.version = request.version;
    out.chunks.push_back(net::encode_frame(response));
    if (send_bulk) out.chunks.push_back(net::encode_blob(bulk));
    for (const auto& [digest, bytes] : blob_bodies) {
      auto enc = net::encode_blob_v4(*bytes);
      auto& bm = net::bulk_plane_metrics();
      bm.blobs_sent.inc();
      bm.bytes_raw.inc(enc.info.raw_bytes);
      bm.bytes_wire.inc(enc.info.wire_bytes);
      if (config_.tracer) {
        config_.tracer->event(now(), "blob_sent")
            .u64("client", blob_client)
            .u64("digest", digest)
            .u64("raw", enc.info.raw_bytes)
            .u64("wire", enc.info.wire_bytes)
            .boolean("compressed", enc.info.compressed);
      }
      out.chunks.push_back(std::move(enc.bytes));
    }
  }
  return out;
}

void Server::serve_replica(net::TcpStream& stream, const net::Message& request) {
  auto feed = std::make_shared<ReplicaFeed>();
  std::string standby_name = "?";
  try {
    auto hello = decode_replica_hello(request);
    standby_name = hello.standby_name;
    ReplicaSnapshotPayload header;
    std::vector<std::byte> snapshot;
    {
      std::lock_guard lock(core_mutex_);
      ByteWriter w;
      core_.snapshot_exact(w);
      snapshot = w.take();
      header.epoch = core_.epoch();
      // A failed WAL no longer tracks the stream position; repl_lsn_ does.
      header.start_lsn = (wal_ && !wal_->failed()) ? wal_->next_lsn() : repl_lsn_;
      // Registered under the same lock that serialises mutations: every
      // record logged after this point reaches the queue, so snapshot +
      // stream covers the state with no gap.
      feeds_.push_back(feed);
    }
    header.snapshot_bytes = snapshot.size();
    net::Message resp = encode_replica_snapshot(header, request.correlation);
    resp.version = request.version;
    net::write_message(stream, resp);
    net::send_blob_v4(stream, snapshot);
    obs::Registry::global().counter("server.replica_syncs").inc();
    if (config_.tracer) {
      config_.tracer->event(now(), "replica_attached")
          .str("name", standby_name)
          .u64("epoch", header.epoch)
          .u64("lsn", header.start_lsn)
          .u64("snapshot_bytes", snapshot.size());
    }
    LOG_INFO("standby '" << standby_name << "' attached (epoch " << header.epoch
                         << ", lsn " << header.start_lsn << ", "
                         << snapshot.size() << " snapshot bytes)");
    std::uint64_t correlation = 1;
    while (running_.load()) {
      WalAppendPayload batch;
      bool overflow = false;
      {
        std::unique_lock fl(feed->m);
        feed->cv.wait_for(fl, std::chrono::milliseconds(200),
                          [&] { return !feed->q.empty() || feed->overflow; });
        overflow = feed->overflow;
        std::size_t n = std::min<std::size_t>(feed->q.size(), 512);
        for (std::size_t i = 0; i < n; ++i) {
          batch.records.push_back(std::move(feed->q.front()));
          feed->q.pop_front();
        }
      }
      if (overflow) {
        throw ProtocolError("standby fell behind the record stream");
      }
      // An empty wake is fine: Tick records arrive every tick interval, so
      // a healthy stream is never silent for long.
      if (batch.records.empty()) continue;
      net::Message m = encode_wal_append(batch, correlation++);
      m.version = request.version;
      net::write_message(stream, m);
      // Wait for the ack so a dead/wedged standby is noticed and its queue
      // stops growing (the poll keeps stop() responsive).
      while (running_.load() && !stream.readable(200)) {}
      if (!running_.load()) break;
      net::Message ack = net::read_message(stream);
      if (ack.type != net::MessageType::kResultAck) {
        throw ProtocolError(std::string("standby sent unexpected ") +
                            net::to_string(ack.type));
      }
    }
  } catch (const net::ConnectionClosed&) {
    LOG_INFO("standby '" << standby_name << "' disconnected");
  } catch (const Error& e) {
    LOG_WARN("replication to standby '" << standby_name
                                        << "' failed: " << e.what());
  }
  std::lock_guard lock(core_mutex_);
  std::erase(feeds_, feed);
}

void Server::replica_loop() {
  using clock = std::chrono::steady_clock;
  auto last_contact = clock::now();
  auto silent_s = [&] {
    return std::chrono::duration<double>(clock::now() - last_contact).count();
  };
  while (running_.load() && standby_.load()) {
    try {
      auto stream =
          net::TcpStream::connect(config_.primary_host, config_.primary_port);
      ReplicaHelloPayload hello;
      hello.standby_name = config_.standby_name;
      net::write_message(stream, encode_replica_hello(hello, 1));
      while (running_.load() && !stream.readable(200)) {}
      if (!running_.load()) return;
      net::Message resp = net::read_message(stream);
      auto header = decode_replica_snapshot(resp);
      auto snapshot = net::recv_blob_v4(
          stream, static_cast<std::size_t>(header.snapshot_bytes) + 1024);
      {
        std::lock_guard lock(core_mutex_);
        ByteReader r(snapshot);
        core_.restore_exact(r);
        r.expect_end();
        repl_lsn_ = header.start_lsn;
        if (wal_) {
          wal_->reset(snapshot, header.start_lsn, now());
          wal_->sync();
          last_compact_lsn_ = header.start_lsn;
        }
      }
      standby_synced_.store(true);
      last_contact = clock::now();
      progress_cv_.notify_all();
      obs::Registry::global().gauge("server.standby_synced").set(1);
      if (config_.tracer) {
        config_.tracer->event(now(), "standby_synced")
            .u64("epoch", header.epoch)
            .u64("lsn", header.start_lsn)
            .u64("snapshot_bytes", snapshot.size());
      }
      LOG_INFO("standby synced from " << config_.primary_host << ":"
               << config_.primary_port << " (epoch " << header.epoch
               << ", lsn " << header.start_lsn << ")");
      // Tail the live stream. The primary's Tick records double as
      // keepalives, so silence beyond the failover timeout means it died.
      while (running_.load() && standby_.load()) {
        if (!stream.readable(200)) {
          if (silent_s() >= config_.failover_timeout_s) {
            promote("primary stream silent");
            return;
          }
          continue;
        }
        net::Message m = net::read_message(stream);
        if (m.type != net::MessageType::kWalAppend) {
          throw ProtocolError(std::string("primary sent unexpected ") +
                              net::to_string(m.type));
        }
        auto batch = decode_wal_append(m);
        {
          std::lock_guard lock(core_mutex_);
          for (const auto& bytes : batch.records) {
            WalRecord rec = decode_wal_record(bytes);
            if (wal_) wal_->append(rec);  // primary's lsn, kept verbatim
            repl_lsn_ = rec.lsn + 1;
            apply_wal_record(core_, rec);
          }
          if (wal_) wal_->sync();
        }
        progress_cv_.notify_all();
        ResultAckPayload ack;
        ack.accepted = true;
        net::Message am = encode_result_ack(ack, m.correlation);
        am.version = m.version;
        net::write_message(stream, am);
        last_contact = clock::now();
      }
      return;
    } catch (const Error& e) {
      if (!running_.load() || !standby_.load()) return;
      if (standby_synced_.load() && silent_s() >= config_.failover_timeout_s) {
        promote("primary unreachable");
        return;
      }
      // Not synced yet (or the primary only just vanished): keep trying.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

void Server::promote(const char* reason) {
  double t;
  std::uint64_t new_epoch;
  {
    std::lock_guard lock(core_mutex_);
    t = now();
    enter_new_term(reason, t);
    new_epoch = core_.epoch();
    standby_.store(false);
  }
  obs::Registry::global().counter("server.failovers").inc();
  if (config_.tracer) {
    config_.tracer->event(t, "failover_promoted")
        .u64("epoch", new_epoch)
        .str("reason", reason);
  }
  LOG_INFO("standby promoted to primary (epoch " << new_epoch
                                                 << "): " << reason);
  progress_cv_.notify_all();
}

}  // namespace hdcs::dist
