#include "dist/server.hpp"

#include <chrono>

#include "dist/wire.hpp"
#include "net/bulk.hpp"
#include "util/logging.hpp"

namespace hdcs::dist {

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      core_(config_.scheduler, make_policy(config_.policy_spec)),
      epoch_(std::chrono::steady_clock::now()) {}

Server::~Server() { stop(); }

double Server::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Server::start() {
  if (running_.exchange(true)) return;
  listener_ = net::TcpListener::bind(config_.port);
  port_ = listener_.port();
  acceptor_ = std::thread([this] { acceptor_loop(); });
  housekeeper_ = std::thread([this] { housekeeping_loop(); });
  LOG_INFO("server listening on 127.0.0.1:" << port_);
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  if (housekeeper_.joinable()) housekeeper_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard lock(handlers_mutex_);
    handlers.swap(handlers_);
  }
  for (auto& t : handlers) {
    if (t.joinable()) t.join();
  }
  progress_cv_.notify_all();
}

ProblemId Server::submit_problem(std::shared_ptr<DataManager> dm) {
  std::lock_guard lock(core_mutex_);
  ProblemId id = core_.submit_problem(std::move(dm));
  progress_cv_.notify_all();
  return id;
}

bool Server::wait_for_problem(ProblemId id, double timeout_s) {
  std::unique_lock lock(core_mutex_);
  auto done = [&] { return core_.problem_complete(id) || !running_.load(); };
  if (timeout_s < 0) {
    progress_cv_.wait(lock, done);
  } else {
    progress_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), done);
  }
  return core_.problem_complete(id);
}

bool Server::wait_for_all(double timeout_s) {
  std::unique_lock lock(core_mutex_);
  auto done = [&] { return core_.all_complete() || !running_.load(); };
  if (timeout_s < 0) {
    progress_cv_.wait(lock, done);
  } else {
    progress_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), done);
  }
  return core_.all_complete();
}

std::vector<std::byte> Server::final_result(ProblemId id) {
  std::lock_guard lock(core_mutex_);
  return core_.final_result(id);
}

std::vector<std::byte> Server::checkpoint() {
  std::lock_guard lock(core_mutex_);
  ByteWriter w;
  core_.checkpoint(w);
  return w.take();
}

void Server::restore_checkpoint(std::span<const std::byte> data) {
  std::lock_guard lock(core_mutex_);
  ByteReader r(data);
  core_.restore(r);
  r.expect_end();
  progress_cv_.notify_all();
}

SchedulerStats Server::stats() {
  std::lock_guard lock(core_mutex_);
  return core_.stats();
}

int Server::connected_clients() { return connected_.load(); }

void Server::acceptor_loop() {
  while (running_.load()) {
    std::optional<net::TcpStream> stream;
    try {
      stream = listener_.accept(200);
    } catch (const IoError& e) {
      if (!running_.load()) break;
      LOG_ERROR("accept failed: " << e.what());
      continue;
    }
    if (!stream) continue;
    std::lock_guard lock(handlers_mutex_);
    handlers_.emplace_back(
        [this, s = std::move(*stream)]() mutable { handler_loop(std::move(s)); });
  }
}

void Server::housekeeping_loop() {
  while (running_.load()) {
    {
      std::lock_guard lock(core_mutex_);
      core_.tick(now());
    }
    progress_cv_.notify_all();
    std::this_thread::sleep_for(std::chrono::duration<double>(config_.tick_interval_s));
  }
}

void Server::handler_loop(net::TcpStream stream) {
  connected_.fetch_add(1);
  ClientId client_id = 0;
  try {
    while (running_.load()) {
      if (!stream.readable(200)) continue;
      net::Message request = net::read_message(stream);
      net::Message response;
      bool send_bulk = false;
      std::vector<std::byte> bulk;

      try {
      switch (request.type) {
        case net::MessageType::kHello: {
          auto hello = decode_hello(request);
          std::lock_guard lock(core_mutex_);
          client_id = core_.client_joined(hello.client_name,
                                          hello.benchmark_ops_per_sec, now());
          HelloAckPayload ack;
          ack.client_id = client_id;
          ack.heartbeat_interval_s = config_.heartbeat_interval_s;
          response = encode_hello_ack(ack, request.correlation);
          break;
        }
        case net::MessageType::kRequestWork: {
          ClientId id = decode_request_work(request);
          std::lock_guard lock(core_mutex_);
          auto unit = core_.request_work(id, now());
          if (unit) {
            response = encode_work_assignment(*unit, request.correlation);
          } else {
            NoWorkPayload p;
            p.retry_after_s = config_.no_work_retry_s;
            p.all_problems_complete = core_.all_complete();
            response = encode_no_work(p, request.correlation);
          }
          break;
        }
        case net::MessageType::kSubmitResult: {
          auto [id, result] = decode_submit_result(request);
          ResultAckPayload ack;
          {
            std::lock_guard lock(core_mutex_);
            ack.accepted = core_.submit_result(id, result, now());
          }
          progress_cv_.notify_all();
          response = encode_result_ack(ack, request.correlation);
          break;
        }
        case net::MessageType::kFetchProblemData: {
          auto fetch = decode_fetch_problem_data(request);
          ProblemDataHeaderPayload header;
          header.problem_id = fetch.problem_id;
          {
            std::lock_guard lock(core_mutex_);
            const DataManager& dm = core_.data_manager(fetch.problem_id);
            header.algorithm_name = dm.algorithm_name();
            bulk = dm.problem_data();
          }
          header.data_bytes = bulk.size();
          response = encode_problem_data_header(header, request.correlation);
          send_bulk = true;
          break;
        }
        case net::MessageType::kHeartbeat: {
          ClientId id = decode_heartbeat(request);
          {
            std::lock_guard lock(core_mutex_);
            core_.heartbeat(id, now());
          }
          response.type = net::MessageType::kHeartbeatAck;
          response.correlation = request.correlation;
          break;
        }
        case net::MessageType::kGoodbye: {
          ClientId id = decode_goodbye(request);
          {
            std::lock_guard lock(core_mutex_);
            core_.client_left(id, now());
          }
          progress_cv_.notify_all();
          connected_.fetch_sub(1);
          return;  // client is gone; close the connection
        }
        default:
          response = net::make_error(request.correlation,
                                     std::string("unexpected message type: ") +
                                         net::to_string(request.type));
          break;
      }
      } catch (const net::ConnectionClosed&) {
        throw;  // transport is gone; handled by the outer catch
      } catch (const Error& e) {
        // A bad request (unknown problem, expired client, malformed
        // payload) must not kill the connection: report it to the peer.
        LOG_WARN("request failed (client " << client_id << "): " << e.what());
        response = net::make_error(request.correlation, e.what());
      }

      net::write_message(stream, response);
      if (send_bulk) net::send_blob(stream, bulk);
    }
  } catch (const net::ConnectionClosed&) {
    LOG_INFO("client connection closed (client " << client_id << ")");
  } catch (const Error& e) {
    LOG_WARN("handler error (client " << client_id << "): " << e.what());
  }
  if (client_id != 0) {
    std::lock_guard lock(core_mutex_);
    core_.client_left(client_id, now());
  }
  progress_cv_.notify_all();
  connected_.fetch_sub(1);
}

}  // namespace hdcs::dist
