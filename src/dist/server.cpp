#include "dist/server.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "dist/checkpoint_file.hpp"
#include "dist/wire.hpp"
#include "net/bulk.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/simd.hpp"
#include "util/stopwatch.hpp"
#include "util/vfs.hpp"

namespace hdcs::dist {

namespace {
// Request-handling latency, one histogram per client->server message type.
// Measures decode + scheduling + encode, i.e. everything between reading
// the request frame and writing the response frame.
obs::Histogram* handler_histogram(net::MessageType type) {
  auto& reg = obs::Registry::global();
  auto make = [&reg](const char* name) {
    return &reg.histogram(std::string("server.handle_s.") + name,
                          obs::Histogram::latency_bounds());
  };
  switch (type) {
    case net::MessageType::kHello: {
      static obs::Histogram* h = make("Hello");
      return h;
    }
    case net::MessageType::kRequestWork: {
      static obs::Histogram* h = make("RequestWork");
      return h;
    }
    case net::MessageType::kSubmitResult: {
      static obs::Histogram* h = make("SubmitResult");
      return h;
    }
    case net::MessageType::kHeartbeat: {
      static obs::Histogram* h = make("Heartbeat");
      return h;
    }
    case net::MessageType::kFetchProblemData: {
      static obs::Histogram* h = make("FetchProblemData");
      return h;
    }
    case net::MessageType::kFetchBlobs: {
      static obs::Histogram* h = make("FetchBlobs");
      return h;
    }
    case net::MessageType::kFetchStats: {
      static obs::Histogram* h = make("FetchStats");
      return h;
    }
    default:
      return nullptr;  // Goodbye closes the connection; others are errors
  }
}

obs::Gauge& connected_gauge() {
  static obs::Gauge* g =
      &obs::Registry::global().gauge("server.connected_clients");
  return *g;
}
}  // namespace

// One hot standby's outbound record queue. Handlers push (under
// core_mutex_, in core-mutation order) the same encoded payloads the WAL
// stores; the replica connection's thread drains them into WalAppend
// batches. A standby that stops acking while records pile up overflows and
// is disconnected — it resyncs from a fresh snapshot instead of wedging
// the primary on an unbounded queue.
struct Server::ReplicaFeed {
  static constexpr std::size_t kMaxQueued = 1u << 16;

  std::mutex m;
  std::condition_variable cv;
  std::deque<std::vector<std::byte>> q;
  bool overflow = false;

  void push(const std::vector<std::byte>& rec) {
    {
      std::lock_guard lock(m);
      if (q.size() >= kMaxQueued) {
        overflow = true;
        q.clear();
      } else {
        q.push_back(rec);
      }
    }
    cv.notify_one();
  }
};

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      core_(config_.scheduler, make_policy(config_.policy_spec)),
      epoch_(std::chrono::steady_clock::now()) {
  core_.set_tracer(config_.tracer);
  // 0=scalar 1=sse2 2=avx2 (util/simd.hpp); which kernel tier this process
  // dispatches — visible in metrics dumps and hdcs_top.
  obs::Registry::global().gauge("simd.tier")
      .set(static_cast<double>(static_cast<int>(simd_tier())));
}

Server::~Server() { stop(); }

double Server::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Server::start() {
  if (running_.exchange(true)) return;
  bool wal_recovered = false;
  if (!config_.wal_dir.empty()) {
    WalConfig wc;
    wc.dir = config_.wal_dir;
    wc.segment_bytes = config_.wal_segment_bytes;
    wal_ = std::make_unique<WalLog>(wc);
    wal_->set_tracer(config_.tracer);
    WalRecovery rec = wal_->take_recovery();
    if (rec.base_snapshot || !rec.tail.empty()) {
      std::lock_guard lock(core_mutex_);
      // Replay with the tracer detached: the recovered mutations were
      // already traced by the previous life of this scheduler.
      core_.set_tracer(nullptr);
      if (rec.base_snapshot) {
        ByteReader r(*rec.base_snapshot);
        core_.restore_exact(r);
        r.expect_end();
      }
      for (const WalRecord& wrec : rec.tail) apply_wal_record(core_, wrec);
      core_.set_tracer(config_.tracer);
      double t = now();
      // New term: the torn-off tail may have held unsynced RequestWork
      // records whose unit ids this core will reuse — fence their stale
      // results by epoch, and sweep the dead connections' client rows.
      enter_new_term("wal_recovery", t);
      last_compact_lsn_ = wal_->next_lsn();
      wal_recovered = true;
      if (config_.tracer) {
        config_.tracer->event(t, "wal_recovered")
            .u64("records", rec.records_replayable)
            .u64("lsn", wal_->next_lsn())
            .u64("epoch", core_.epoch())
            .u64("torn_bytes", rec.torn_bytes_truncated);
      }
      LOG_INFO("WAL recovery from " << config_.wal_dir << ": "
               << rec.records_replayable << " records over "
               << rec.segments_scanned << " segments, resuming at lsn "
               << wal_->next_lsn() << " epoch " << core_.epoch());
      progress_cv_.notify_all();
    }
  }
  if (!wal_recovered && !config_.checkpoint_path.empty() &&
      config_.restore_on_start) {
    if (auto blob = read_checkpoint_file(config_.checkpoint_path)) {
      LOG_INFO("restoring checkpoint from " << config_.checkpoint_path << " ("
                                            << blob->size() << " bytes)");
      restore_checkpoint(*blob);
    }
  }
  if (wal_) repl_lsn_ = wal_->next_lsn();
  durability_.store(static_cast<int>(
      wal_ || !config_.checkpoint_path.empty() ? Durability::kDurable
                                               : Durability::kNone));
  obs::Registry::global().gauge("server.durability")
      .set(static_cast<double>(durability_.load()));
  listener_ = net::TcpListener::bind(config_.port);
  port_ = listener_.port();
  if (!config_.primary_host.empty()) standby_.store(true);
  acceptor_ = std::thread([this] { acceptor_loop(); });
  housekeeper_ = std::thread([this] { housekeeping_loop(); });
  if (standby_.load()) {
    replica_ = std::thread([this] { replica_loop(); });
    LOG_INFO("standby listening on 127.0.0.1:" << port_ << ", syncing from "
             << config_.primary_host << ":" << config_.primary_port);
  } else {
    LOG_INFO("server listening on 127.0.0.1:" << port_);
  }
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Join the acceptor before closing the listener: accept() polls with a
  // short timeout and rechecks running_, and closing the fd under it would
  // race with its reads of the descriptor.
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  if (replica_.joinable()) replica_.join();
  if (housekeeper_.joinable()) housekeeper_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard lock(handlers_mutex_);
    handlers.swap(handlers_);
  }
  for (auto& t : handlers) {
    if (t.joinable()) t.join();
  }
  progress_cv_.notify_all();
}

ProblemId Server::submit_problem(std::shared_ptr<DataManager> dm) {
  std::lock_guard lock(core_mutex_);
  ProblemId id = core_.submit_problem(std::move(dm));
  progress_cv_.notify_all();
  return id;
}

bool Server::wait_for_problem(ProblemId id, double timeout_s) {
  std::unique_lock lock(core_mutex_);
  auto done = [&] { return core_.problem_complete(id) || !running_.load(); };
  if (timeout_s < 0) {
    progress_cv_.wait(lock, done);
  } else {
    progress_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), done);
  }
  return core_.problem_complete(id);
}

bool Server::wait_for_all(double timeout_s) {
  std::unique_lock lock(core_mutex_);
  auto done = [&] { return core_.all_complete() || !running_.load(); };
  if (timeout_s < 0) {
    progress_cv_.wait(lock, done);
  } else {
    progress_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), done);
  }
  return core_.all_complete();
}

std::vector<std::byte> Server::final_result(ProblemId id) {
  std::lock_guard lock(core_mutex_);
  return core_.final_result(id);
}

std::vector<std::byte> Server::checkpoint() {
  std::lock_guard lock(core_mutex_);
  ByteWriter w;
  core_.checkpoint(w);
  return w.take();
}

void Server::restore_checkpoint(std::span<const std::byte> data) {
  std::lock_guard lock(core_mutex_);
  ByteReader r(data);
  core_.restore(r);
  r.expect_end();
  progress_cv_.notify_all();
}

bool Server::save_checkpoint() {
  if (config_.checkpoint_path.empty()) return false;
  std::vector<std::byte> blob;
  std::size_t problems = 0;
  std::size_t in_flight = 0;
  double t = 0;
  {
    std::lock_guard lock(core_mutex_);
    ByteWriter w;
    core_.checkpoint(w);
    blob = w.take();
    problems = core_.problem_count();
    in_flight = core_.in_flight_units();
    t = now();
  }
  write_checkpoint_file(config_.checkpoint_path, blob);
  record_checkpoint_saved(config_.tracer, t, blob.size(), problems, in_flight);
  return true;
}

SchedulerStats Server::stats() {
  std::lock_guard lock(core_mutex_);
  return core_.stats();
}

std::vector<ClientInfo> Server::client_stats() {
  std::lock_guard lock(core_mutex_);
  return core_.all_client_stats();
}

namespace {
std::string json_num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}
}  // namespace

std::string Server::stats_json(bool include_clients) {
  SchedulerStats s;
  std::vector<ClientInfo> clients;
  std::uint64_t evicted_completed;
  std::size_t pending;
  std::uint64_t term;
  std::uint64_t wal_lsn;
  double t;
  {
    std::lock_guard lock(core_mutex_);
    s = core_.stats();
    if (include_clients) clients = core_.all_client_stats();
    evicted_completed = core_.evicted_units_completed();
    pending = core_.pending_units();
    term = core_.epoch();
    wal_lsn = wal_ ? wal_->next_lsn() : 0;
    t = now();
  }
  // Mirrored as a gauge so registry-only consumers (render_text dumps,
  // hdcs_top's metrics pane) see the backlog too.
  obs::Registry::global().gauge("scheduler.units_pending")
      .set(static_cast<double>(pending));
  std::ostringstream out;
  out << "{\"schema\":" << obs::kTraceSchemaVersion << ",\"now\":" << json_num(t)
      << ",\"simd_tier\":\"" << to_string(simd_tier()) << "\""
      << ",\"role\":\"" << (standby_.load() ? "standby" : "primary") << "\""
      << ",\"durability\":\""
      << (durability() == Durability::kDurable
              ? "durable"
              : durability() == Durability::kDegraded ? "degraded" : "none")
      << "\""
      << ",\"epoch\":" << term << ",\"wal_lsn\":" << wal_lsn
      << ",\"connected_clients\":" << connected_.load() << ",\"scheduler\":{"
      << "\"units_issued\":" << s.units_issued
      << ",\"units_reissued\":" << s.units_reissued
      << ",\"units_hedged\":" << s.units_hedged
      << ",\"results_accepted\":" << s.results_accepted
      << ",\"duplicate_results_dropped\":" << s.duplicate_results_dropped
      << ",\"stale_results_dropped\":" << s.stale_results_dropped
      << ",\"work_requests_unserved\":" << s.work_requests_unserved
      << ",\"clients_expired\":" << s.clients_expired
      << ",\"units_quarantined\":" << s.units_quarantined
      << ",\"units_replicated\":" << s.units_replicated
      << ",\"replicas_issued\":" << s.replicas_issued
      << ",\"spot_checks\":" << s.spot_checks
      << ",\"votes_recorded\":" << s.votes_recorded
      << ",\"vote_quorums\":" << s.vote_quorums
      << ",\"vote_mismatches\":" << s.vote_mismatches
      << ",\"results_rejected_mismatch\":" << s.results_rejected_mismatch
      << ",\"results_rejected_digest\":" << s.results_rejected_digest
      << ",\"results_rejected_blacklisted\":" << s.results_rejected_blacklisted
      << ",\"results_rejected_stale_epoch\":" << s.results_rejected_stale_epoch
      << ",\"donors_blacklisted\":" << s.donors_blacklisted
      << ",\"clients_evicted\":" << s.clients_evicted
      << ",\"evicted_units_completed\":" << evicted_completed
      << ",\"units_pending\":" << pending << "}";
  if (include_clients) {
    out << ",\"clients\":[";
    bool first = true;
    for (const auto& c : clients) {
      if (!first) out << ",";
      first = false;
      out << "{\"id\":" << c.id << ",\"name\":\"" << obs::json_escape(c.name)
          << "\",\"active\":" << (c.active ? "true" : "false")
          << ",\"benchmark_ops_per_sec\":" << json_num(c.stats.benchmark_ops_per_sec)
          << ",\"ewma_ops_per_sec\":" << json_num(c.stats.ewma_ops_per_sec)
          << ",\"units_completed\":" << c.stats.units_completed
          << ",\"outstanding\":" << c.stats.outstanding
          << ",\"last_seen\":" << json_num(c.stats.last_seen)
          << ",\"rep\":" << json_num(c.reputation)
          << ",\"blacklisted\":" << (c.blacklisted ? "true" : "false")
          << ",\"vote_wins\":" << c.vote_wins
          << ",\"vote_losses\":" << c.vote_losses << "}";
    }
    out << "]";
  }
  out << ",\"metrics\":" << obs::Registry::global().render_json() << "}";
  return out.str();
}

int Server::connected_clients() { return connected_.load(); }

void Server::acceptor_loop() {
  while (running_.load()) {
    std::optional<net::TcpStream> stream;
    try {
      stream = listener_.accept(200);
    } catch (const IoError& e) {
      if (!running_.load()) break;
      LOG_ERROR("accept failed: " << e.what());
      continue;
    }
    if (!stream) continue;
    std::lock_guard lock(handlers_mutex_);
    handlers_.emplace_back(
        [this, s = std::move(*stream)]() mutable { handler_loop(std::move(s)); });
  }
}

void Server::housekeeping_loop() {
  double last_checkpoint = now();
  double last_rearm = now();
  double last_budget_check = now();
  while (running_.load()) {
    // A standby's shadow core is driven only by the primary's record
    // stream (which includes the primary's own Tick records with the
    // primary's clock); ticking it locally would double-expire leases.
    if (!standby_.load()) {
      {
        std::lock_guard lock(core_mutex_);
        double t = now();
        core_.tick(t);
        WalRecord rec;
        rec.op = WalOp::kTick;
        rec.now = t;
        log_record(std::move(rec));  // doubles as a replication keepalive
        try {
          maybe_compact_locked(t);
        } catch (const Error& e) {
          // A full disk must not kill scheduling; retry next interval.
          LOG_ERROR("wal compaction failed: " << e.what());
        }
      }
      progress_cv_.notify_all();
      if (!config_.checkpoint_path.empty() &&
          now() - last_checkpoint >= config_.checkpoint_interval_s) {
        last_checkpoint = now();
        try {
          save_checkpoint();
        } catch (const Error& e) {
          LOG_ERROR("checkpoint autosave failed: " << e.what());
          // Checkpoint-only durability: a failed autosave IS the
          // durability loss (there is no WAL underneath to catch it).
          if (!wal_) {
            std::lock_guard lock(core_mutex_);
            degrade_locked("checkpoint_save", now());
          }
        }
      }
      // Degraded -> durable re-arm: rebuild the WAL (or prove a
      // checkpoint lands) on a steady cadence until the disk recovers.
      if (static_cast<Durability>(durability_.load()) ==
              Durability::kDegraded &&
          !storage_failed_.load() &&
          now() - last_rearm >= config_.rearm_retry_s) {
        last_rearm = now();
        try_rearm();
      }
      // Disk-budget watchdog: compaction folds segments into one base
      // snapshot, so forcing it under pressure sheds WAL bytes before the
      // device itself runs dry (which would degrade us the hard way).
      if (wal_ && config_.wal_dir_budget_bytes > 0 &&
          static_cast<Durability>(durability_.load()) ==
              Durability::kDurable &&
          now() - last_budget_check >= 2.0) {
        last_budget_check = now();
        const std::uint64_t used = vfs::dir_bytes(config_.wal_dir);
        if (used > config_.wal_dir_budget_bytes) {
          obs::Registry::global().counter("storage.budget_compactions").inc();
          try {
            compact_wal();
          } catch (const Error& e) {
            LOG_ERROR("budget compaction failed: " << e.what());
          }
          const std::uint64_t after = vfs::dir_bytes(config_.wal_dir);
          if (after > config_.wal_dir_budget_bytes) {
            LOG_WARN("wal dir still over budget after compaction ("
                     << after << " > " << config_.wal_dir_budget_bytes
                     << " bytes)");
          }
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(config_.tick_interval_s));
  }
}

std::uint64_t Server::epoch() {
  std::lock_guard lock(core_mutex_);
  return core_.epoch();
}

void Server::drain() {
  draining_.store(true);
  progress_cv_.notify_all();
}

void Server::compact_wal() {
  std::lock_guard lock(core_mutex_);
  if (!wal_) return;
  ByteWriter w;
  core_.snapshot_exact(w);
  auto snap = w.take();
  wal_->compact(snap, now());
  last_compact_lsn_ = wal_->next_lsn();
}

void Server::maybe_compact_locked(double t) {
  if (!wal_ || config_.wal_compact_every == 0) return;
  if (wal_->next_lsn() - last_compact_lsn_ < config_.wal_compact_every) return;
  ByteWriter w;
  core_.snapshot_exact(w);
  auto snap = w.take();
  wal_->compact(snap, t);
  last_compact_lsn_ = wal_->next_lsn();
}

void Server::log_record(WalRecord rec) {
  // While degraded the WAL is frozen (its segment failed; only compact()
  // rebuilds it) — records flow to the replica feeds only, numbered by
  // repl_lsn_, so a hot standby stays exact through the primary's bad-disk
  // window.
  const bool degraded = static_cast<Durability>(durability_.load()) ==
                        Durability::kDegraded;
  const bool use_wal = wal_ != nullptr && !degraded;
  if (!use_wal && feeds_.empty()) return;
  rec.lsn = use_wal ? wal_->next_lsn() : repl_lsn_;
  bool append_failed = false;
  if (use_wal) {
    try {
      wal_->append(rec);
    } catch (const Error& e) {
      // The record still goes out on the feeds below — the standby's
      // shadow core must apply everything the primary's live core applied,
      // or post-degrade records would hit a diverged shadow — and only
      // then do we degrade (whose own kEpoch record is feeds-only).
      LOG_ERROR("wal append failed: " << e.what());
      append_failed = true;
    }
  }
  repl_lsn_ = rec.lsn + 1;
  if (!feeds_.empty()) {
    auto bytes = encode_wal_record(rec);
    for (const auto& feed : feeds_) feed->push(bytes);
  }
  if (append_failed) degrade_locked("wal_append", rec.now);
}

void Server::enter_new_term(const char* reason, double t) {
  std::uint64_t next = core_.epoch() + 1;
  core_.bump_epoch(next);
  WalRecord rec;
  rec.op = WalOp::kEpoch;
  rec.now = t;
  rec.arg = next;
  log_record(std::move(rec));
  // Every active client row belongs to the previous term — its connection
  // died with the old server. Sweeping them requeues their leases now
  // instead of waiting out the lease timeout; reconnecting donors re-Hello
  // and get fresh ids.
  for (const auto& c : core_.all_client_stats()) {
    if (!c.active) continue;
    core_.client_left(c.id, t);
    WalRecord left;
    left.op = WalOp::kClientLeft;
    left.now = t;
    left.arg = c.id;
    log_record(std::move(left));
  }
  if (wal_ && !wal_->failed()) {
    try {
      wal_->sync();
    } catch (const Error& e) {
      LOG_ERROR("wal sync failed entering new term: " << e.what());
      degrade_locked("wal_sync", t);
    }
  }
  LOG_INFO("entered epoch " << core_.epoch() << " (" << reason << ")");
}

void Server::degrade_locked(const char* reason, double t) {
  const auto current = static_cast<Durability>(durability_.load());
  if (current != Durability::kDurable) return;
  durability_.store(static_cast<int>(Durability::kDegraded));
  auto& reg = obs::Registry::global();
  reg.gauge("server.durability").set(static_cast<double>(durability_.load()));
  reg.counter("server.durability_degradations").inc();
  // The feeds take over the lsn sequence exactly where the WAL stopped.
  if (wal_) repl_lsn_ = std::max(repl_lsn_, wal_->next_lsn());
  // Fence the degraded window: +2, not +1, so a crash-while-degraded
  // restart (replay durable state, then enter_new_term's +1) lands on a
  // DIFFERENT epoch than this one — nothing issued or accepted while
  // non-durable can ever be merged into the revived durable core.
  const std::uint64_t next = core_.epoch() + 2;
  core_.bump_epoch(next);
  WalRecord rec;
  rec.op = WalOp::kEpoch;
  rec.now = t;
  rec.arg = next;
  log_record(std::move(rec));  // feeds-only: durability_ is already degraded
  if (config_.tracer) {
    config_.tracer->event(t, "durability_degraded")
        .str("reason", reason)
        .u64("epoch", next);
  }
  if (config_.durability_mode == DurabilityMode::kFailStop) {
    storage_failed_.store(true);
    draining_.store(true);
    LOG_ERROR("durability lost (" << reason << "): fail-stop — draining, "
              << "epoch " << next);
  } else {
    LOG_ERROR("durability degraded (" << reason << "): continuing non-durable "
              << "at epoch " << next << "; re-arm every "
              << config_.rearm_retry_s << "s");
  }
  progress_cv_.notify_all();
}

bool Server::try_rearm() {
  std::lock_guard lock(core_mutex_);
  if (static_cast<Durability>(durability_.load()) != Durability::kDegraded) {
    return true;
  }
  const double t = now();
  try {
    if (wal_) {
      // Rebuild: fresh base snapshot at the feeds' lsn, fresh segment. A
      // still-broken disk throws out of the checkpoint write and we stay
      // degraded for the next retry.
      ByteWriter w;
      core_.snapshot_exact(w);
      auto snap = w.take();
      wal_->reset(snap, repl_lsn_, t);
      wal_->sync();
      last_compact_lsn_ = wal_->next_lsn();
    } else {
      ByteWriter w;
      core_.checkpoint(w);
      auto blob = w.take();
      write_checkpoint_file(config_.checkpoint_path, blob);
      record_checkpoint_saved(config_.tracer, t, blob.size(),
                              core_.problem_count(), core_.in_flight_units());
    }
  } catch (const Error& e) {
    LOG_WARN("durability re-arm failed: " << e.what());
    return false;
  }
  durability_.store(static_cast<int>(Durability::kDurable));
  auto& reg = obs::Registry::global();
  reg.gauge("server.durability").set(static_cast<double>(durability_.load()));
  reg.counter("server.durability_restores").inc();
  if (config_.tracer) {
    config_.tracer->event(t, "durability_restored").u64("epoch", core_.epoch());
  }
  LOG_INFO("durability restored (epoch " << core_.epoch() << ")");
  return true;
}

void Server::handler_loop(net::TcpStream stream) {
  connected_gauge().set(connected_.fetch_add(1) + 1);
  ClientId client_id = 0;
  // Retryable NACK: v7+ donors get a structured RetryLater (they back off
  // and keep their buffered state); older donors get an error frame and
  // ride their existing reconnect/backoff paths.
  auto retry_or_error = [this](const net::Message& request,
                               const char* reason) {
    obs::Registry::global().counter("server.retry_laters").inc();
    if (request.version >= 7) {
      RetryLaterPayload p;
      p.retry_after_s = config_.retry_later_s;
      p.reason = reason;
      return encode_retry_later(p, request.correlation);
    }
    return net::make_error(request.correlation,
                           std::string("retry later: ") + reason);
  };
  try {
    while (running_.load()) {
      if (!stream.readable(200)) continue;
      net::Message request = net::read_message(stream);
      net::Message response;
      bool send_bulk = false;
      std::vector<std::byte> bulk;
      // FetchBlobs bodies: shared_ptrs collected under the core lock, sent
      // (and compressed) after the response frame without holding it.
      std::vector<
          std::pair<std::uint64_t,
                    std::shared_ptr<const std::vector<std::byte>>>>
          blob_bodies;
      ClientId blob_client = 0;
      std::size_t inflight_charged = 0;
      Stopwatch handle_timer;

      try {
      if (standby_.load() && request.type != net::MessageType::kFetchStats) {
        // An unpromoted standby serves monitoring but no work: donors see
        // an error, drop the session, and fail over to the next endpoint
        // in their --servers list.
        response = net::make_error(request.correlation, "standby: not serving");
      } else if (draining_.load() &&
                 (request.type == net::MessageType::kRequestWork ||
                  request.type == net::MessageType::kHeartbeat)) {
        // Graceful shutdown: in-flight submissions still land, but no new
        // work goes out and polling donors are told to disconnect.
        response.type = net::MessageType::kShutdown;
        response.correlation = request.correlation;
      } else if (storage_failed_.load() &&
                 (request.type == net::MessageType::kHello ||
                  request.type == net::MessageType::kSubmitResult)) {
        // Fail-stop after a storage fault: no new sessions, and results
        // are NACKed rather than accepted-but-lost — the donor keeps its
        // buffered copy for the restarted server. (FetchStats stays up so
        // operators can see why; RequestWork/Heartbeat already get
        // kShutdown from the draining guard above.)
        response = retry_or_error(request, "fail_stop");
      } else switch (request.type) {
        case net::MessageType::kHello: {
          auto hello = decode_hello(request);
          std::lock_guard lock(core_mutex_);
          double t = now();
          if (config_.max_clients > 0 &&
              core_.active_client_count() >= config_.max_clients) {
            // Shed before joining: the donor never becomes scheduler state,
            // so no lease/eviction bookkeeping is spent on it.
            obs::Registry::global().counter("server.clients_shed").inc();
            if (config_.tracer) {
              config_.tracer->event(t, "retry_later")
                  .str("reason", "max_clients")
                  .str("name", hello.client_name);
            }
            response = retry_or_error(request, "max_clients");
            break;
          }
          client_id = core_.client_joined(hello.client_name,
                                          hello.benchmark_ops_per_sec, t);
          WalRecord rec;
          rec.op = WalOp::kClientJoined;
          rec.now = t;
          rec.arg = client_id;
          rec.name = hello.client_name;
          rec.benchmark = hello.benchmark_ops_per_sec;
          log_record(std::move(rec));
          HelloAckPayload ack;
          ack.client_id = client_id;
          ack.heartbeat_interval_s = config_.heartbeat_interval_s;
          response = encode_hello_ack(ack, request.correlation);
          break;
        }
        case net::MessageType::kRequestWork: {
          ClientId id = decode_request_work(request);
          std::lock_guard lock(core_mutex_);
          double t = now();
          auto unit = core_.request_work(id, t);
          {
            // Logged even when nothing was issued: an unserved request
            // still mutates stats and policy state, and replay must walk
            // the exact same path (an InputError above skips the log, the
            // same way it skips the core mutation).
            WalRecord rec;
            rec.op = WalOp::kRequestWork;
            rec.now = t;
            rec.arg = id;
            log_record(std::move(rec));
          }
          if (unit) {
            if (request.version >= 4) {
              response = encode_work_assignment(*unit, request.correlation,
                                                request.version);
            } else {
              // Legacy donor: inline each referenced blob by appending its
              // bytes to the payload, in blob order — applications lay
              // their payloads out so this flattened form decodes with the
              // pre-v4 logic.
              WorkUnit flat = *unit;
              for (const WorkBlob& blob : flat.blobs) {
                auto bytes = core_.blob_bytes(blob.digest);
                if (bytes) {
                  flat.payload.insert(flat.payload.end(), bytes->begin(),
                                      bytes->end());
                }
              }
              flat.blobs.clear();
              response =
                  encode_work_assignment(flat, request.correlation, 3);
            }
          } else {
            NoWorkPayload p;
            p.retry_after_s = config_.no_work_retry_s;
            p.all_problems_complete = core_.all_complete();
            response = encode_no_work(p, request.correlation);
          }
          break;
        }
        case net::MessageType::kSubmitResult: {
          auto [id, result] = decode_submit_result(request);
          ResultAckPayload ack;
          {
            std::lock_guard lock(core_mutex_);
            double t = now();
            ack.accepted = core_.submit_result(id, result, t);
            WalRecord rec;
            rec.op = WalOp::kSubmitResult;
            rec.now = t;
            rec.arg = id;
            rec.result = result;
            log_record(std::move(rec));
            // The accepted result must be durable before the donor learns
            // it was accepted — the ack is what lets it drop its buffered
            // copy, so after this fsync a kill -9 loses nothing. Once
            // degraded there is nothing left to fsync; kContinue acks
            // anyway (accepted-but-non-durable, epoch already fenced),
            // kFailStop NACKs below so the donor keeps its copy.
            if (wal_ && ack.accepted &&
                static_cast<Durability>(durability_.load()) ==
                    Durability::kDurable) {
              try {
                wal_->sync();
              } catch (const Error& e) {
                LOG_ERROR("wal sync failed: " << e.what());
                degrade_locked("wal_sync", t);
              }
            }
          }
          progress_cv_.notify_all();
          if (storage_failed_.load()) {
            response = retry_or_error(request, "fail_stop");
          } else {
            response = encode_result_ack(ack, request.correlation);
          }
          break;
        }
        case net::MessageType::kFetchProblemData: {
          auto fetch = decode_fetch_problem_data(request);
          ProblemDataHeaderPayload header;
          header.problem_id = fetch.problem_id;
          {
            std::lock_guard lock(core_mutex_);
            const DataManager& dm = core_.data_manager(fetch.problem_id);
            header.algorithm_name = dm.algorithm_name();
            header.data_bytes = core_.problem_data_bytes(fetch.problem_id);
            header.data_digest = core_.problem_data_digest(fetch.problem_id);
            if (request.version < 4) {
              // v3: the data itself follows on the bulk channel. v4 donors
              // instead resolve data_digest through their cache/FetchBlobs.
              bulk = *core_.blob_bytes(header.data_digest);
              send_bulk = true;
            }
          }
          response = encode_problem_data_header(header, request.correlation,
                                                request.version);
          break;
        }
        case net::MessageType::kFetchBlobs: {
          auto fetch = decode_fetch_blobs(request);
          BlobDataPayload reply;
          {
            std::lock_guard lock(core_mutex_);
            for (std::uint64_t digest : fetch.digests) {
              auto bytes = core_.blob_bytes(digest);
              bool ok = bytes && bytes->size() <= config_.max_blob_bytes;
              reply.blobs.push_back({digest, ok});
              if (ok) blob_bodies.emplace_back(digest, std::move(bytes));
            }
          }
          blob_client = fetch.client_id;
          // Global in-flight budget: bodies sit in memory from here until
          // the socket writes below finish, so a burst of cold donors can
          // multiply resident bytes. Over budget -> shed the whole fetch
          // (the donor retries; partial replies would poison its cache
          // accounting).
          if (config_.blob_inflight_budget_bytes > 0 && !blob_bodies.empty()) {
            std::size_t total = 0;
            for (const auto& [digest, bytes] : blob_bodies) {
              total += bytes->size();
            }
            if (blob_inflight_bytes_.load() + total >
                config_.blob_inflight_budget_bytes) {
              blob_bodies.clear();
              obs::Registry::global().counter("server.blob_fetches_shed").inc();
              if (config_.tracer) {
                config_.tracer->event(now(), "retry_later")
                    .str("reason", "blob_budget")
                    .str("name", "client:" + std::to_string(fetch.client_id));
              }
              response = retry_or_error(request, "blob_budget");
              break;
            }
            blob_inflight_bytes_.fetch_add(total);
            inflight_charged = total;
          }
          response = encode_blob_data(reply, request.correlation);
          break;
        }
        case net::MessageType::kHeartbeat: {
          ClientId id = decode_heartbeat(request);
          {
            std::lock_guard lock(core_mutex_);
            double t = now();
            core_.heartbeat(id, t);
            WalRecord rec;
            rec.op = WalOp::kHeartbeat;
            rec.now = t;
            rec.arg = id;
            log_record(std::move(rec));
          }
          response.type = net::MessageType::kHeartbeatAck;
          response.correlation = request.correlation;
          break;
        }
        case net::MessageType::kFetchStats: {
          auto fetch = decode_fetch_stats(request);
          StatsSnapshotPayload snap;
          snap.json = stats_json(fetch.include_clients);
          response = encode_stats_snapshot(snap, request.correlation);
          break;
        }
        case net::MessageType::kGoodbye: {
          ClientId id = decode_goodbye(request);
          {
            std::lock_guard lock(core_mutex_);
            double t = now();
            core_.client_left(id, t);
            WalRecord rec;
            rec.op = WalOp::kClientLeft;
            rec.now = t;
            rec.arg = id;
            log_record(std::move(rec));
          }
          progress_cv_.notify_all();
          connected_gauge().set(connected_.fetch_sub(1) - 1);
          return;  // client is gone; close the connection
        }
        case net::MessageType::kReplicaHello: {
          // The connection becomes a replication session: snapshot now,
          // then live records until one side dies. serve_replica cleans up
          // its own feed registration.
          serve_replica(stream, request);
          connected_gauge().set(connected_.fetch_sub(1) - 1);
          return;
        }
        default:
          response = net::make_error(request.correlation,
                                     std::string("unexpected message type: ") +
                                         net::to_string(request.type));
          break;
      }
      } catch (const net::ConnectionClosed&) {
        throw;  // transport is gone; handled by the outer catch
      } catch (const Error& e) {
        // A bad request (unknown problem, expired client, malformed
        // payload) must not kill the connection: report it to the peer.
        LOG_WARN("request failed (client " << client_id << "): " << e.what());
        response = net::make_error(request.correlation, e.what());
      }

      if (obs::Histogram* h = handler_histogram(request.type)) {
        h->observe(handle_timer.seconds());
      }
      // Answer at the requester's protocol version: a v3 donor must never
      // see a v4 frame.
      response.version = request.version;
      try {
        net::write_message(stream, response);
        if (send_bulk) net::send_blob(stream, bulk);
        for (const auto& [digest, bytes] : blob_bodies) {
          auto info = net::send_blob_v4(stream, *bytes);
          auto& bm = net::bulk_plane_metrics();
          bm.blobs_sent.inc();
          bm.bytes_raw.inc(info.raw_bytes);
          bm.bytes_wire.inc(info.wire_bytes);
          if (config_.tracer) {
            config_.tracer->event(now(), "blob_sent")
                .u64("client", blob_client)
                .u64("digest", digest)
                .u64("raw", info.raw_bytes)
                .u64("wire", info.wire_bytes)
                .boolean("compressed", info.compressed);
          }
        }
      } catch (...) {
        // The budget is charged until the socket writes finish; a dead
        // connection must release it or the budget leaks shut.
        if (inflight_charged) blob_inflight_bytes_.fetch_sub(inflight_charged);
        throw;
      }
      if (inflight_charged) blob_inflight_bytes_.fetch_sub(inflight_charged);
    }
  } catch (const net::ConnectionClosed&) {
    LOG_INFO("client connection closed (client " << client_id << ")");
  } catch (const Error& e) {
    LOG_WARN("handler error (client " << client_id << "): " << e.what());
  }
  if (client_id != 0) {
    std::lock_guard lock(core_mutex_);
    double t = now();
    core_.client_left(client_id, t);
    WalRecord rec;
    rec.op = WalOp::kClientLeft;
    rec.now = t;
    rec.arg = client_id;
    log_record(std::move(rec));
  }
  progress_cv_.notify_all();
  connected_gauge().set(connected_.fetch_sub(1) - 1);
}

void Server::serve_replica(net::TcpStream& stream, const net::Message& request) {
  auto feed = std::make_shared<ReplicaFeed>();
  std::string standby_name = "?";
  try {
    auto hello = decode_replica_hello(request);
    standby_name = hello.standby_name;
    ReplicaSnapshotPayload header;
    std::vector<std::byte> snapshot;
    {
      std::lock_guard lock(core_mutex_);
      ByteWriter w;
      core_.snapshot_exact(w);
      snapshot = w.take();
      header.epoch = core_.epoch();
      // A failed WAL no longer tracks the stream position; repl_lsn_ does.
      header.start_lsn = (wal_ && !wal_->failed()) ? wal_->next_lsn() : repl_lsn_;
      // Registered under the same lock that serialises mutations: every
      // record logged after this point reaches the queue, so snapshot +
      // stream covers the state with no gap.
      feeds_.push_back(feed);
    }
    header.snapshot_bytes = snapshot.size();
    net::Message resp = encode_replica_snapshot(header, request.correlation);
    resp.version = request.version;
    net::write_message(stream, resp);
    net::send_blob_v4(stream, snapshot);
    obs::Registry::global().counter("server.replica_syncs").inc();
    if (config_.tracer) {
      config_.tracer->event(now(), "replica_attached")
          .str("name", standby_name)
          .u64("epoch", header.epoch)
          .u64("lsn", header.start_lsn)
          .u64("snapshot_bytes", snapshot.size());
    }
    LOG_INFO("standby '" << standby_name << "' attached (epoch " << header.epoch
                         << ", lsn " << header.start_lsn << ", "
                         << snapshot.size() << " snapshot bytes)");
    std::uint64_t correlation = 1;
    while (running_.load()) {
      WalAppendPayload batch;
      bool overflow = false;
      {
        std::unique_lock fl(feed->m);
        feed->cv.wait_for(fl, std::chrono::milliseconds(200),
                          [&] { return !feed->q.empty() || feed->overflow; });
        overflow = feed->overflow;
        std::size_t n = std::min<std::size_t>(feed->q.size(), 512);
        for (std::size_t i = 0; i < n; ++i) {
          batch.records.push_back(std::move(feed->q.front()));
          feed->q.pop_front();
        }
      }
      if (overflow) {
        throw ProtocolError("standby fell behind the record stream");
      }
      // An empty wake is fine: Tick records arrive every tick interval, so
      // a healthy stream is never silent for long.
      if (batch.records.empty()) continue;
      net::Message m = encode_wal_append(batch, correlation++);
      m.version = request.version;
      net::write_message(stream, m);
      // Wait for the ack so a dead/wedged standby is noticed and its queue
      // stops growing (the poll keeps stop() responsive).
      while (running_.load() && !stream.readable(200)) {}
      if (!running_.load()) break;
      net::Message ack = net::read_message(stream);
      if (ack.type != net::MessageType::kResultAck) {
        throw ProtocolError(std::string("standby sent unexpected ") +
                            net::to_string(ack.type));
      }
    }
  } catch (const net::ConnectionClosed&) {
    LOG_INFO("standby '" << standby_name << "' disconnected");
  } catch (const Error& e) {
    LOG_WARN("replication to standby '" << standby_name
                                        << "' failed: " << e.what());
  }
  std::lock_guard lock(core_mutex_);
  std::erase(feeds_, feed);
}

void Server::replica_loop() {
  using clock = std::chrono::steady_clock;
  auto last_contact = clock::now();
  auto silent_s = [&] {
    return std::chrono::duration<double>(clock::now() - last_contact).count();
  };
  while (running_.load() && standby_.load()) {
    try {
      auto stream =
          net::TcpStream::connect(config_.primary_host, config_.primary_port);
      ReplicaHelloPayload hello;
      hello.standby_name = config_.standby_name;
      net::write_message(stream, encode_replica_hello(hello, 1));
      while (running_.load() && !stream.readable(200)) {}
      if (!running_.load()) return;
      net::Message resp = net::read_message(stream);
      auto header = decode_replica_snapshot(resp);
      auto snapshot = net::recv_blob_v4(
          stream, static_cast<std::size_t>(header.snapshot_bytes) + 1024);
      {
        std::lock_guard lock(core_mutex_);
        ByteReader r(snapshot);
        core_.restore_exact(r);
        r.expect_end();
        repl_lsn_ = header.start_lsn;
        if (wal_) {
          wal_->reset(snapshot, header.start_lsn, now());
          wal_->sync();
          last_compact_lsn_ = header.start_lsn;
        }
      }
      standby_synced_.store(true);
      last_contact = clock::now();
      progress_cv_.notify_all();
      obs::Registry::global().gauge("server.standby_synced").set(1);
      if (config_.tracer) {
        config_.tracer->event(now(), "standby_synced")
            .u64("epoch", header.epoch)
            .u64("lsn", header.start_lsn)
            .u64("snapshot_bytes", snapshot.size());
      }
      LOG_INFO("standby synced from " << config_.primary_host << ":"
               << config_.primary_port << " (epoch " << header.epoch
               << ", lsn " << header.start_lsn << ")");
      // Tail the live stream. The primary's Tick records double as
      // keepalives, so silence beyond the failover timeout means it died.
      while (running_.load() && standby_.load()) {
        if (!stream.readable(200)) {
          if (silent_s() >= config_.failover_timeout_s) {
            promote("primary stream silent");
            return;
          }
          continue;
        }
        net::Message m = net::read_message(stream);
        if (m.type != net::MessageType::kWalAppend) {
          throw ProtocolError(std::string("primary sent unexpected ") +
                              net::to_string(m.type));
        }
        auto batch = decode_wal_append(m);
        {
          std::lock_guard lock(core_mutex_);
          for (const auto& bytes : batch.records) {
            WalRecord rec = decode_wal_record(bytes);
            if (wal_) wal_->append(rec);  // primary's lsn, kept verbatim
            repl_lsn_ = rec.lsn + 1;
            apply_wal_record(core_, rec);
          }
          if (wal_) wal_->sync();
        }
        progress_cv_.notify_all();
        ResultAckPayload ack;
        ack.accepted = true;
        net::Message am = encode_result_ack(ack, m.correlation);
        am.version = m.version;
        net::write_message(stream, am);
        last_contact = clock::now();
      }
      return;
    } catch (const Error& e) {
      if (!running_.load() || !standby_.load()) return;
      if (standby_synced_.load() && silent_s() >= config_.failover_timeout_s) {
        promote("primary unreachable");
        return;
      }
      // Not synced yet (or the primary only just vanished): keep trying.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

void Server::promote(const char* reason) {
  double t;
  std::uint64_t new_epoch;
  {
    std::lock_guard lock(core_mutex_);
    t = now();
    enter_new_term(reason, t);
    new_epoch = core_.epoch();
    standby_.store(false);
  }
  obs::Registry::global().counter("server.failovers").inc();
  if (config_.tracer) {
    config_.tracer->event(t, "failover_promoted")
        .u64("epoch", new_epoch)
        .str("reason", reason);
  }
  LOG_INFO("standby promoted to primary (epoch " << new_epoch
                                                 << "): " << reason);
  progress_cv_.notify_all();
}

}  // namespace hdcs::dist
